# Tier-1 verification is `make check`; `make ci` adds vet and the race
# detector, which is what makes the concurrent experiment runner
# (singleflight cache + worker pool) trustworthy.

GO ?= go

.PHONY: build test race vet bench check verify ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race run matters most for internal/core (the concurrent runner), but
# runs the whole module so nothing regresses silently.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

check: build test

# The verification harness: the full benchmark × technique matrix under the
# cycle-level invariant checker (with the race detector — the checked matrix
# exercises the parallel runner), the golden-corpus drift check, and a
# checked end-to-end run of the verify subcommand on a small machine.
# Regenerate the corpus after an intentional model change with:
#   go test ./internal/core -run GoldenMatrix -update
verify:
	$(GO) test -race ./internal/check/
	$(GO) test ./internal/core -run GoldenMatrix
	$(GO) run ./cmd/warpedgates verify -sms 2 -scale 0.1

ci: build vet test race verify
