# Tier-1 verification is `make check`; `make ci` adds vet and the race
# detector, which is what makes the concurrent experiment runner
# (singleflight cache + worker pool) trustworthy.

GO ?= go

.PHONY: build test race vet bench check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race run matters most for internal/core (the concurrent runner), but
# runs the whole module so nothing regresses silently.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

check: build test

ci: build vet test race
