# Tier-1 verification is `make check`; `make ci` adds vet and the race
# detector, which is what makes the concurrent experiment runner
# (singleflight cache + worker pool) trustworthy.

GO ?= go

.PHONY: build test race vet bench bench-short bench-compare bench-history bench-go calibrate check verify store-faults serve-test sweep-test ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race run matters most for internal/core (the concurrent runner), but
# runs the whole module so nothing regresses silently.
race:
	$(GO) test -race ./...

# The profiled bench harness: times the full benchmark × technique matrix
# with and without the idle fast-forward, measures the steady-state
# per-cycle cost (which must report 0 allocs/cycle), and writes
# BENCH_sim.json. bench-short is the CI-sized variant; FLOOR (default 0 =
# off) gates the intra-run scaling curve — `make bench-short FLOOR=1.5`
# exits 1 if 2 workers don't reach a 1.5x speedup. On single-core hosts the
# gate cannot be measured: it logs the reason to stderr and exits 3, so CI
# can tell a skipped gate from a passed (0) or failed (1) one. MAKESPAN
# (default 0 = off) gates the adaptive-vs-static full-matrix wall time the
# same way — `make bench-short FLOOR=1.5 MAKESPAN=1.2` — enforced at >= 4
# cores, informational at 2-3, exit 3 below 2.
FLOOR ?= 0
MAKESPAN ?= 0
bench:
	$(GO) run ./cmd/warpedgates bench -sms 6 -scale 0.25 -floor $(FLOOR) -makespan-floor $(MAKESPAN) -out BENCH_sim.json

bench-short:
	$(GO) run ./cmd/warpedgates bench -sms 2 -scale 0.1 -floor $(FLOOR) -makespan-floor $(MAKESPAN) -out BENCH_sim.json

# Regenerate the committed cost-model calibration table. Deterministic: a
# diff against the committed file means the simulator's cycle counts moved
# (commit the new table with the change that moved them).
calibrate:
	$(GO) run ./cmd/warpedgates bench -calibrate internal/core/costdata.json

# Cell-by-cell comparison of two bench artifacts:
#   make bench-compare OLD=BENCH_old.json NEW=BENCH_sim.json
OLD ?= BENCH_old.json
NEW ?= BENCH_sim.json
bench-compare:
	$(GO) run ./cmd/warpedgates benchcmp $(OLD) $(NEW)

# Trajectory across every BENCH_*.json snapshot in DIR (filename order =
# chronology for date-stamped names), gated: exits nonzero when the newest
# snapshot's steady-state ns/cycle regresses more than REGRESS% against the
# best snapshot in the trajectory.
DIR ?= .
REGRESS ?= 10
bench-history:
	$(GO) run ./cmd/warpedgates benchcmp -history $(DIR) -regress $(REGRESS)

# Go micro-benchmarks; sub-benchmark names are stable so
#   go test -bench Matrix -count 10 ./internal/sim | benchstat old.txt new.txt
# compares cells across commits.
bench-go:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

check: build test

# The verification harness: the full benchmark × technique matrix under the
# cycle-level invariant checker (with the race detector — the checked matrix
# exercises both the parallel runner and, via TestCheckedMatrixIntraRunWorkers,
# the phase-split parallel engine), the golden-corpus drift check, and checked
# end-to-end runs of the verify subcommand on a small machine with the serial
# and the parallel engine (-workers 2, one goroutine per SM).
# Regenerate the corpus after an intentional model change with:
#   go test ./internal/core -run GoldenMatrix -update
# The -store run is the durability proof: the checked matrix populates a
# fresh store, a cold runner replays every cell from it, and the command
# fails unless all 108 reports come back byte-identical to fresh simulation.
verify:
	$(GO) test -race ./internal/check/
	$(GO) test ./internal/core -run GoldenMatrix
	$(GO) run ./cmd/warpedgates verify -sms 2 -scale 0.1
	$(GO) run -race ./cmd/warpedgates verify -sms 2 -scale 0.1 -workers 2
	$(GO) run ./cmd/warpedgates verify -sms 2 -scale 0.1 -store "$$(mktemp -d)"

# The crash-safety suite under the race detector: the durable report store,
# its fault-injection filesystem (fail-nth-write sweeps, torn writes, ENOSPC,
# read corruption), and the runner's cancellation/watchdog/panic paths.
store-faults:
	$(GO) test -race ./internal/store/ ./internal/faultfs/
	$(GO) test -race -run 'TestRunCtx|TestMaxWall|TestRunMany|TestPanic|TestLRU|TestSingleflight|TestRunnerStore' ./internal/core/

# The HTTP service suite under the race detector: the table-driven API
# contract (status codes, quota/backpressure 429s, drain 503s), the
# end-to-end lifecycle test (served report bytes equal direct simulation,
# across a server restart with zero re-simulation), and the
# cancellation/deadline semantics (SSE disconnect, deadline_ms, forced
# drain).
serve-test:
	$(GO) test -race ./internal/serve/

# The sweep-engine suite under the race detector: grid expansion and shard
# partition properties, the end-to-end store-dedup proof (re-running a
# >500-cell sweep on a cold engine simulates zero cells — every cell is a
# store hit), the sampled-sweep speedup run, the sampled-mode golden-corpus
# error ceiling (worst-cell cycle error must stay within the documented 5%
# bound, with instruction/CTA counts conserved exactly), and the service's
# sweep endpoints. Wall-clock speedup floors are logged but not asserted
# under -race (it taxes detailed and sampled modes unevenly).
sweep-test:
	$(GO) test -race ./internal/sweep/
	$(GO) test -race -run 'TestSampled' ./internal/sim/
	$(GO) test -race -run 'TestSweep|TestSampledJob' ./internal/serve/

ci: build vet test race verify store-faults serve-test sweep-test
