// Package warpedgates's bench harness regenerates every table and figure of
// the paper's evaluation (§7). One testing.B benchmark exists per figure;
// each prints the same rows/series the paper's figure reports, then times
// the (memoized) regeneration.
//
// Run the full harness with:
//
//	go test -bench=. -benchmem
//
// Environment knobs (for quicker runs on small machines):
//
//	WARPEDGATES_SMS=6      simulate 6 SMs instead of the GTX480's 15
//	WARPEDGATES_SCALE=0.5  halve every benchmark's work
//	WARPEDGATES_J=4        cap the simulation worker pool at 4 (default:
//	                       all cores; figure output is identical at any J)
//	WARPEDGATES_WORKERS=4  step SMs inside each simulation on 4 goroutines
//	                       (default 1 = serial engine; output is identical
//	                       at any worker count — the runner divides its J
//	                       budget so jobs x workers stays within J)
package warpedgates

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/isa"
)

// benchRunner is shared across all figure benchmarks so simulations are run
// exactly once per unique configuration regardless of benchmark order.
var (
	benchRunnerOnce sync.Once
	benchRunner     *core.Runner
)

func getRunner() *core.Runner {
	benchRunnerOnce.Do(func() {
		cfg := config.GTX480()
		if v := os.Getenv("WARPEDGATES_SMS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				cfg.NumSMs = n
			}
		}
		if v := os.Getenv("WARPEDGATES_WORKERS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				cfg.IntraRunWorkers = n
			}
		}
		benchRunner = core.NewRunner(cfg)
		if v := os.Getenv("WARPEDGATES_SCALE"); v != "" {
			if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
				benchRunner.Scale = f
			}
		}
		if v := os.Getenv("WARPEDGATES_J"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				benchRunner.Parallelism = n
			}
		}
	})
	return benchRunner
}

// printOnce prints a figure's table exactly once per process, so bench
// output carries each reproduced figure once regardless of b.N.
var printedFigures sync.Map

func printFigure(id string, body fmt.Stringer) {
	if _, loaded := printedFigures.LoadOrStore(id, true); !loaded {
		fmt.Printf("\n%s\n", body)
	}
}

// BenchmarkFig1b regenerates paper Figure 1b: the baseline vs conventional
// power gating energy breakdown of the INT and FP units.
func BenchmarkFig1b(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig1b(r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig1b", res.Table)
	}
}

// BenchmarkFig3 regenerates paper Figure 3: the hotspot idle-period-length
// distribution under ConvPG, GATES, and GATES+Blackout.
func BenchmarkFig3(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig3(r, "hotspot")
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig3", res.Table)
	}
}

// BenchmarkFig4 regenerates paper Figure 4: the scheduling walkthrough
// comparing two-level and GATES issue order on the microkernel.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig4()
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig4", res.Table)
	}
}

// BenchmarkFig5a regenerates paper Figure 5a: per-benchmark instruction mix.
func BenchmarkFig5a(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig5a(r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig5a", res.Table)
	}
}

// BenchmarkFig5b regenerates paper Figure 5b: active warp set occupancy.
func BenchmarkFig5b(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig5b(r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig5b", res.Table)
	}
}

// BenchmarkFig6 regenerates paper Figure 6: the critical-wakeup/runtime
// correlation across static idle-detect values 0..10.
func BenchmarkFig6(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig6(r, 0, 10)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig6", res.Table)
	}
}

// BenchmarkFig8a regenerates paper Figure 8a: normalized INT idle-cycle
// fraction under GATES, Coordinated Blackout and Warped Gates.
func BenchmarkFig8a(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig8(r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig8a", res.TableA)
	}
}

// BenchmarkFig8b regenerates paper Figure 8b: compensated-state cycles.
func BenchmarkFig8b(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig8(r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig8b", res.TableB)
	}
}

// BenchmarkFig8c regenerates paper Figure 8c: wakeups normalized to ConvPG.
func BenchmarkFig8c(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig8(r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig8c", res.TableC)
	}
}

// BenchmarkFig9a regenerates paper Figure 9a: INT static energy savings for
// all five techniques (the paper's headline 20.1% -> 31.6%).
func BenchmarkFig9a(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig9(r, isa.INT)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig9a", res.Table)
	}
}

// BenchmarkFig9b regenerates paper Figure 9b: FP static energy savings
// (the paper's headline 31.4% -> 46.5%), excluding integer-only benchmarks.
func BenchmarkFig9b(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig9(r, isa.FP)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig9b", res.Table)
	}
}

// BenchmarkFig10 regenerates paper Figure 10: normalized performance of all
// five techniques.
func BenchmarkFig10(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig10(r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig10", res.Table)
	}
}

// BenchmarkFig11a regenerates paper Figure 11a: sensitivity to break-even
// time (9, 14, 19 cycles).
func BenchmarkFig11a(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig11BET(r, []int{9, 14, 19})
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig11a", res.Table)
	}
}

// BenchmarkFig11b regenerates paper Figure 11b: sensitivity to wakeup delay
// (3, 6, 9 cycles).
func BenchmarkFig11b(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig11Wakeup(r, []int{3, 6, 9})
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig11b", res.Table)
	}
}

// BenchmarkHWOverhead regenerates paper §7.5: the area and power overhead of
// the added counters, plus the §7.3 chip-level savings estimate.
func BenchmarkHWOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.RunHWOverhead(config.GTX480().NumSPClusters)
		printFigure("hw", res.Table)
		printFigure("chip", core.ChipSavings(0.30, 0.45))
	}
}

// BenchmarkAblationClusters extends the paper's §5 discussion of clustered
// GPGPU trends (Fermi 2 clusters, GCN 4, Kepler 6): Warped Gates savings as
// a function of the SP cluster count.
func BenchmarkAblationClusters(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunAblationClusters(r, []int{2, 4, 6})
		if err != nil {
			b.Fatal(err)
		}
		printFigure("ablation-clusters", res.Table)
	}
}

// BenchmarkAblationMaxHold sweeps the GATES forced-priority-switch threshold
// (§4's designer safety valve against starvation).
func BenchmarkAblationMaxHold(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunAblationMaxHold(r, []int{0, 16, 64, 256})
		if err != nil {
			b.Fatal(err)
		}
		printFigure("ablation-maxhold", res.Table)
	}
}

// BenchmarkAblationScheduler compares loose round-robin, the two-level
// scheduler and GATES under conventional gating.
func BenchmarkAblationScheduler(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunAblationScheduler(r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("ablation-scheduler", res.Table)
	}
}

// BenchmarkAblationAuxBlackout extends Blackout to the SFU/LDST units, the
// generalization the paper mentions (§3) but does not evaluate.
func BenchmarkAblationAuxBlackout(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunAblationAuxBlackout(r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("ablation-aux", res.Table)
	}
}

// BenchmarkAblationIdleDetect sweeps the static idle-detect window under
// conventional gating — the naive mitigation §4 dismisses.
func BenchmarkAblationIdleDetect(b *testing.B) {
	r := getRunner()
	for i := 0; i < b.N; i++ {
		res, err := core.RunAblationIdleDetect(r, []int{2, 5, 10, 20})
		if err != nil {
			b.Fatal(err)
		}
		printFigure("ablation-idledetect", res.Table)
	}
}
