// Quickstart: simulate one GPGPU benchmark under the paper's full proposal
// (Warped Gates = GATES scheduling + Coordinated Blackout + Adaptive idle
// detect) and print where the static energy went.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/isa"
	"warpedgates/internal/power"
)

func main() {
	// The paper's machine: a GTX480-like GPGPU with 15 SMs, two SP clusters
	// per SM, idle-detect 5, break-even time 14, wakeup delay 3. Shrink it
	// to 4 SMs so the example finishes in a couple of seconds.
	cfg := config.GTX480()
	cfg.NumSMs = 4

	runner := core.NewRunner(cfg)
	runner.Scale = 0.5 // half-size workload for a fast first run

	const bench = "hotspot"
	baseline, err := runner.Run(bench, core.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	warped, err := runner.Run(bench, core.WarpedGates)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s on %d SMs\n", bench, cfg.NumSMs)
	fmt.Printf("  baseline:    %d cycles, %.1f active warps on average\n",
		baseline.Cycles, baseline.ActiveWarpAvg)
	fmt.Printf("  warped gates: %d cycles (%.1f%% slowdown)\n",
		warped.Cycles, 100*(float64(warped.Cycles)/float64(baseline.Cycles)-1))

	model := power.Default(cfg.BreakEven)
	for _, class := range []isa.Class{isa.INT, isa.FP} {
		bd := model.AnalyzeAgainst(warped, baseline, class)
		d := warped.Domains[class]
		fmt.Printf("  %-3s units: %.1f%% static energy saved "+
			"(%d gating events, %d wakeups, %.1f%% of cycles gated)\n",
			class, 100*bd.StaticSavings(), d.GatingEvents, d.Wakeups,
			100*float64(d.GatedCycles)/float64(d.CellCycles()))
	}
}
