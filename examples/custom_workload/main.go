// Custom workload: use the kernel-builder DSL to define your own GPGPU
// workloads and evaluate every power-gating technique on them. This is the
// library-as-a-library path: everything the figure harness does for the
// paper's 18 benchmarks works the same for profiles you write yourself.
//
// Two contrasting kernels are evaluated:
//
//   - "busy" keeps the CUDA cores nearly saturated (high ILP, cache-resident
//     tiles, full occupancy). Idle windows are short, so gating of any kind
//     mostly pays overhead — the paper's backprop/lavaMD regime, where
//     conventional gating can go net-negative;
//   - "memory-bound" stalls on DRAM constantly (pointer-chasing loads, tiny
//     occupancy). Execution units idle in long windows and Blackout recovers
//     a large share of their leakage.
//
// Run with:
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/power"
	"warpedgates/internal/sim"
)

func main() {
	busy := kernels.Profile{
		Name:    "busy",
		FracINT: 0.45, FracFP: 0.38, FracSFU: 0.02, FracLDST: 0.15,
		BodyLen: 96, Iterations: 12,
		DepWindow: 10, LoadUseGap: 8,
		SharedFrac: 0.6, StoreFrac: 0.2,
		Pattern: isa.PatternCoalesced, RandomFrac: 0.02,
		WorkingLines: 128, NumRegions: 2,
		IMulFrac: 0.08, FDivFrac: 0.02,
		WarpsPerCTA: 8, MaxConcurrentCTAs: 5, CTAsPerSM: 10,
	}
	memoryBound := kernels.Profile{
		Name:    "memory-bound",
		FracINT: 0.55, FracFP: 0.12, FracSFU: 0.00, FracLDST: 0.33,
		BodyLen: 64, Iterations: 8,
		DepWindow: 3, LoadUseGap: 1,
		SharedFrac: 0.05, StoreFrac: 0.2,
		Pattern: isa.PatternRandom, RandomFrac: 0.6,
		WorkingLines: 8192, NumRegions: 4,
		IMulFrac: 0.05, FDivFrac: 0,
		WarpsPerCTA: 4, MaxConcurrentCTAs: 2, CTAsPerSM: 4,
	}

	cfg := config.GTX480()
	cfg.NumSMs = 4
	model := power.Default(cfg.BreakEven)

	for _, profile := range []kernels.Profile{busy, memoryBound} {
		kernel, err := profile.Build()
		if err != nil {
			log.Fatal(err)
		}
		run := func(t core.Technique) *sim.Report {
			gpu, err := sim.NewGPU(t.Apply(cfg), kernel)
			if err != nil {
				log.Fatal(err)
			}
			return gpu.Run()
		}
		base := run(core.Baseline)
		fmt.Printf("kernel %q: %d cycles baseline, %.1f avg warps, INT idle %.0f%%, FP idle %.0f%%\n",
			kernel.Name, base.Cycles, base.ActiveWarpAvg,
			base.Domains[isa.INT].IdleFraction()*100, base.Domains[isa.FP].IdleFraction()*100)
		fmt.Printf("  %-14s %12s %12s %12s\n", "technique", "INT savings", "FP savings", "performance")
		for _, t := range core.GatedTechniques() {
			rep := run(t)
			fmt.Printf("  %-14s %11.1f%% %11.1f%% %12.4f\n", t,
				model.AnalyzeAgainst(rep, base, isa.INT).StaticSavings()*100,
				model.AnalyzeAgainst(rep, base, isa.FP).StaticSavings()*100,
				float64(base.Cycles)/float64(rep.Cycles))
		}
		fmt.Println()
	}
	fmt.Println("Busy kernels barely reward gating (conventional gating can go negative);")
	fmt.Println("memory-bound kernels leave long idle windows that Blackout converts to savings.")
}
