// Idle-window study: reproduce the paper's Figure 3 on any benchmark —
// the distribution of execution-unit idle-period lengths under conventional
// power gating, GATES, and GATES+Blackout, partitioned into the three
// regions that decide whether gating a window wastes, loses, or saves energy.
//
// Run with:
//
//	go run ./examples/idle_windows [benchmark]
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
)

func main() {
	bench := "hotspot" // the paper's Figure 3 benchmark
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	cfg := config.GTX480()
	cfg.NumSMs = 4
	runner := core.NewRunner(cfg)
	runner.Scale = 0.5

	res, err := core.RunFig3(runner, bench)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Idle period distribution for %s (idle-detect %d, break-even %d)\n\n",
		bench, cfg.IdleDetect, cfg.BreakEven)
	fmt.Printf("%-14s %-28s %-28s %-28s\n", "",
		"wasted (< idle-detect)", "net loss (< idle+BET)", "net savings (>= idle+BET)")
	for _, row := range res.Rows {
		fmt.Printf("%-14s %-28s %-28s %-28s\n", row.Technique,
			bar(row.Wasted), bar(row.Negative), bar(row.Positive))
	}
	fmt.Println()
	fmt.Println("Reading the rows like the paper's Figure 3:")
	fmt.Println("  - ConvPG: most idle periods die inside the idle-detect window;")
	fmt.Println("  - GATES reorders warps by type, shifting mass to the right;")
	fmt.Println("  - Blackout forbids early wakeups, so the middle region (windows")
	fmt.Println("    gated but woken before break-even) is exactly empty.")
}

// bar renders a fraction as a 20-char bar plus a percentage.
func bar(f float64) string {
	n := int(f*20 + 0.5)
	return fmt.Sprintf("%-20s %5.1f%%", strings.Repeat("#", n), f*100)
}
