// Adaptive tuning: show the paper's §5.1 Adaptive idle detect mechanism in
// action. We sweep the static idle-detect window for Blackout gating on a
// wakeup-sensitive benchmark, print the resulting critical-wakeup rates and
// runtimes (the correlation behind the paper's Figure 6), and then run the
// full Warped Gates configuration to show the adaptive controller landing at
// a good operating point automatically.
//
// Run with:
//
//	go run ./examples/adaptive_tuning [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/isa"
	"warpedgates/internal/power"
	"warpedgates/internal/stats"
)

func main() {
	bench := "cutcp" // paper: many uncompensated windows under ConvPG
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	cfg := config.GTX480()
	cfg.NumSMs = 4
	runner := core.NewRunner(cfg)
	runner.Scale = 0.5
	model := power.Default(cfg.BreakEven)

	base, err := runner.Run(bench, core.Baseline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Static idle-detect sweep for %s under Coordinated Blackout:\n\n", bench)
	fmt.Printf("%12s %18s %12s %12s\n", "idle-detect", "criticals/1k cyc", "runtime", "INT savings")
	var xs, ys []float64
	for id := 0; id <= 10; id++ {
		c := core.CoordBlackout.Apply(cfg)
		c.IdleDetect = id
		rep, err := runner.RunCfg(bench, c)
		if err != nil {
			log.Fatal(err)
		}
		crit := rep.CriticalWakeupsPer1000(isa.INT) + rep.CriticalWakeupsPer1000(isa.FP)
		runtime := float64(rep.Cycles) / float64(base.Cycles)
		savings := model.AnalyzeAgainst(rep, base, isa.INT).StaticSavings()
		fmt.Printf("%12d %18.2f %12.4f %11.1f%%\n", id, crit, runtime, savings*100)
		xs = append(xs, crit)
		ys = append(ys, runtime)
	}
	fmt.Printf("\nPearson r(criticals, runtime) = %.3f — the correlation the paper's\n", stats.Pearson(xs, ys))
	fmt.Println("Figure 6 uses to justify critical wakeups as the adaptation signal.")

	warped, err := runner.Run(bench, core.WarpedGates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWarped Gates (adaptive window, bounded %d..%d): runtime %.4f, INT savings %.1f%%\n",
		cfg.IdleDetectMin, cfg.IdleDetectMax,
		float64(warped.Cycles)/float64(base.Cycles),
		model.AnalyzeAgainst(warped, base, isa.INT).StaticSavings()*100)
	fmt.Println("The adaptive controller tracks the best static point without tuning.")
}
