// Scheduler comparison: reproduce the paper's Figure 4 walkthrough, showing
// how the baseline two-level warp scheduler intersperses INT and FP
// instructions (leaving short, ungateable pipeline bubbles) while GATES
// clusters them by type (coalescing the bubbles into long idle runs).
//
// Run with:
//
//	go run ./examples/scheduler_comparison
package main

import (
	"fmt"
	"log"
	"strings"

	"warpedgates/internal/core"
	"warpedgates/internal/isa"
)

func main() {
	res, err := core.RunFig4()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Paper Figure 4 — one scheduler, one SP cluster, ALU latency 4, ii 1.")
	fmt.Println("Active warp set: INT INT FP INT FP INT INT INT INT FP FP INT")
	fmt.Println()
	for _, s := range []core.Fig4Schedule{res.TwoLevel, res.GATES} {
		fmt.Printf("%s schedule:\n", s.Scheduler)
		fmt.Printf("  issue order: %s\n", renderIssues(s.Issues))
		fmt.Printf("  INT pipe timeline: %s\n", renderTimeline(s, isa.INT))
		fmt.Printf("  FP  pipe timeline: %s\n", renderTimeline(s, isa.FP))
		fmt.Printf("  INT idle runs: %v    FP idle runs: %v\n\n",
			s.IdlePeriodsINT, s.IdlePeriodsFP)
	}
	fmt.Println("GATES turns the FP pipe's scattered bubbles into one long idle run,")
	fmt.Println("long enough for power gating to pass break-even (paper Fig. 4).")
}

func renderIssues(issues []core.Fig4Issue) string {
	parts := make([]string, len(issues))
	for i, is := range issues {
		parts[i] = fmt.Sprintf("c%d:%s", is.Cycle, is.Class)
	}
	return strings.Join(parts, " ")
}

// renderTimeline draws B for cycles with an instruction in the pipe and
// . for idle cycles, over the schedule's span (latency 4 per instruction).
func renderTimeline(s core.Fig4Schedule, class isa.Class) string {
	span := int(s.Span)
	if span > 40 {
		span = 40
	}
	busy := make([]bool, span)
	for _, is := range s.Issues {
		if is.Class != class {
			continue
		}
		for c := int(is.Cycle); c < int(is.Cycle)+4 && c < span; c++ {
			busy[c] = true
		}
	}
	var b strings.Builder
	for _, v := range busy {
		if v {
			b.WriteByte('B')
		} else {
			b.WriteByte('.')
		}
	}
	return b.String()
}
