package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags carries the -cpuprofile/-memprofile options shared by every
// subcommand that runs simulations.
type profileFlags struct {
	cpu *string
	mem *string

	cpuFile *os.File
}

// addProfileFlags registers the profiling options on fs.
func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	return &profileFlags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write an allocation profile to this file on exit"),
	}
}

// start begins CPU profiling if requested. Callers must arrange for stop to
// run on every exit path (defer it right after a successful start).
func (p *profileFlags) start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

// stop ends CPU profiling and writes the allocation profile if requested.
// Profile-write failures are reported on stderr rather than clobbering the
// subcommand's own error.
func (p *profileFlags) stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "warpedgates: closing cpu profile: %v\n", err)
		}
		p.cpuFile = nil
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warpedgates: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // flush dead objects so the profile shows live + cumulative allocs accurately
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "warpedgates: writing mem profile: %v\n", err)
		}
	}
}
