package main

import (
	"encoding/json"
	"fmt"
	"os"

	"warpedgates/internal/stats"
)

// cmdBenchcmp compares two BENCH_sim.json artifacts (old first, new second)
// cell by cell, printing per-cell wall-clock speedups plus the steady-state
// and intra-run-scaling deltas. Its exit status is always zero — the tool
// reports, thresholds are the reader's policy — but cells present in only
// one file are called out so silent matrix drift can't hide.
func cmdBenchcmp(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("benchcmp wants exactly two arguments: OLD.json NEW.json")
	}
	oldRep, err := readBenchReport(args[0])
	if err != nil {
		return err
	}
	newRep, err := readBenchReport(args[1])
	if err != nil {
		return err
	}
	if oldRep.SMs != newRep.SMs || oldRep.Scale != newRep.Scale || oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		fmt.Printf("note: machine mismatch — old sms=%d scale=%g cores=%d, new sms=%d scale=%g cores=%d; speedups conflate code and configuration\n",
			oldRep.SMs, oldRep.Scale, oldRep.GOMAXPROCS, newRep.SMs, newRep.Scale, newRep.GOMAXPROCS)
	}

	type cellKey struct{ bench, tech string }
	oldCells := make(map[cellKey]benchCell, len(oldRep.Cells))
	for _, c := range oldRep.Cells {
		oldCells[cellKey{c.Bench, c.Technique}] = c
	}

	t := stats.NewTable(fmt.Sprintf("bench comparison: %s -> %s", args[0], args[1]),
		"benchmark", "technique", "old ms", "new ms", "speedup", "old ns/cyc", "new ns/cyc")
	matched := 0
	for _, nc := range newRep.Cells {
		oc, ok := oldCells[cellKey{nc.Bench, nc.Technique}]
		if !ok {
			fmt.Printf("note: %s/%s only in %s\n", nc.Bench, nc.Technique, args[1])
			continue
		}
		delete(oldCells, cellKey{nc.Bench, nc.Technique})
		matched++
		// A non-positive wall time means the cell was not measured (or the
		// clock misbehaved); a "0.00x" there would read as a real regression.
		speedup := interface{}("n/a")
		if nc.WallMS > 0 && oc.WallMS > 0 {
			speedup = oc.WallMS / nc.WallMS
		}
		t.AddRowf(nc.Bench, nc.Technique, oc.WallMS, nc.WallMS, speedup, oc.NsPerCycle, nc.NsPerCycle)
	}
	for k := range oldCells {
		fmt.Printf("note: %s/%s only in %s\n", k.bench, k.tech, args[0])
	}
	fmt.Println(t)

	if o, n := oldRep.SteadyState, newRep.SteadyState; o.NsPerCycle > 0 && n.NsPerCycle > 0 {
		fmt.Printf("steady state: %.0f -> %.0f ns/cycle (%.2fx), %g -> %g allocs/cycle\n",
			o.NsPerCycle, n.NsPerCycle, o.NsPerCycle/n.NsPerCycle, o.AllocsPerCycle, n.AllocsPerCycle)
	}
	if o, n := oldRep.Totals, newRep.Totals; o.FastForwardMS > 0 && n.FastForwardMS > 0 {
		fmt.Printf("matrix wall: %.0f -> %.0f ms (%.2fx)\n",
			o.FastForwardMS, n.FastForwardMS, o.FastForwardMS/n.FastForwardMS)
	}
	for _, which := range []struct {
		name string
		rep  *benchReport
	}{{args[0], oldRep}, {args[1], newRep}} {
		if len(which.rep.IntraRunScaling) == 0 {
			continue
		}
		fmt.Printf("intra-run scaling in %s (%d cores):", which.name, which.rep.GOMAXPROCS)
		for _, pt := range which.rep.IntraRunScaling {
			fmt.Printf(" w%d=%.2fx", pt.Workers, pt.Speedup)
		}
		fmt.Println()
	}
	fmt.Printf("compared %d cells\n", matched)
	return nil
}

// readBenchReport loads one BENCH_sim.json payload.
func readBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
