package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"warpedgates/internal/stats"
)

// cmdBenchcmp compares BENCH_sim.json artifacts. With two positional
// arguments (old first, new second) it compares cell by cell, printing
// per-cell wall-clock speedups plus the steady-state and intra-run-scaling
// deltas; that mode's exit status is always zero — the tool reports,
// thresholds are the reader's policy — but cells present in only one file
// are called out so silent matrix drift can't hide. With -history DIR it
// walks every BENCH_*.json snapshot in the directory instead, prints the
// per-cell trajectory, and exits nonzero when the newest snapshot's
// steady-state cost regressed more than -regress percent past the best one.
func cmdBenchcmp(args []string) error {
	fs := flag.NewFlagSet("benchcmp", flag.ExitOnError)
	history := fs.String("history", "", "directory of BENCH_*.json snapshots: print the whole trajectory instead of comparing two files")
	regress := fs.Float64("regress", 10, "with -history: tolerated steady-state ns/cycle regression of the newest snapshot over the best one, in percent (0 disables the gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *history != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("benchcmp: -history takes no positional arguments")
		}
		return benchcmpHistory(os.Stdout, *history, *regress)
	}
	args = fs.Args()
	if len(args) != 2 {
		return fmt.Errorf("benchcmp wants exactly two arguments: OLD.json NEW.json (or -history DIR)")
	}
	oldRep, err := readBenchReport(args[0])
	if err != nil {
		return err
	}
	newRep, err := readBenchReport(args[1])
	if err != nil {
		return err
	}
	if oldRep.SMs != newRep.SMs || oldRep.Scale != newRep.Scale || oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		fmt.Printf("note: machine mismatch — old sms=%d scale=%g cores=%d, new sms=%d scale=%g cores=%d; speedups conflate code and configuration\n",
			oldRep.SMs, oldRep.Scale, oldRep.GOMAXPROCS, newRep.SMs, newRep.Scale, newRep.GOMAXPROCS)
	}

	type cellKey struct{ bench, tech string }
	oldCells := make(map[cellKey]benchCell, len(oldRep.Cells))
	for _, c := range oldRep.Cells {
		oldCells[cellKey{c.Bench, c.Technique}] = c
	}

	t := stats.NewTable(fmt.Sprintf("bench comparison: %s -> %s", args[0], args[1]),
		"benchmark", "technique", "old ms", "new ms", "speedup", "old ns/cyc", "new ns/cyc")
	matched := 0
	for _, nc := range newRep.Cells {
		oc, ok := oldCells[cellKey{nc.Bench, nc.Technique}]
		if !ok {
			fmt.Printf("note: %s/%s only in %s\n", nc.Bench, nc.Technique, args[1])
			continue
		}
		delete(oldCells, cellKey{nc.Bench, nc.Technique})
		matched++
		// A non-positive wall time means the cell was not measured (or the
		// clock misbehaved); a "0.00x" there would read as a real regression.
		speedup := interface{}("n/a")
		if nc.WallMS > 0 && oc.WallMS > 0 {
			speedup = oc.WallMS / nc.WallMS
		}
		t.AddRowf(nc.Bench, nc.Technique, oc.WallMS, nc.WallMS, speedup, oc.NsPerCycle, nc.NsPerCycle)
	}
	for k := range oldCells {
		fmt.Printf("note: %s/%s only in %s\n", k.bench, k.tech, args[0])
	}
	fmt.Println(t)

	if o, n := oldRep.SteadyState, newRep.SteadyState; o.NsPerCycle > 0 && n.NsPerCycle > 0 {
		fmt.Printf("steady state: %.0f -> %.0f ns/cycle (%.2fx), %g -> %g allocs/cycle\n",
			o.NsPerCycle, n.NsPerCycle, o.NsPerCycle/n.NsPerCycle, o.AllocsPerCycle, n.AllocsPerCycle)
	}
	if o, n := oldRep.Totals, newRep.Totals; o.FastForwardMS > 0 && n.FastForwardMS > 0 {
		fmt.Printf("matrix wall: %.0f -> %.0f ms (%.2fx)\n",
			o.FastForwardMS, n.FastForwardMS, o.FastForwardMS/n.FastForwardMS)
	}
	for _, which := range []struct {
		name string
		rep  *benchReport
	}{{args[0], oldRep}, {args[1], newRep}} {
		if len(which.rep.IntraRunScaling) == 0 {
			continue
		}
		fmt.Printf("intra-run scaling in %s (%d cores):", which.name, which.rep.GOMAXPROCS)
		for _, pt := range which.rep.IntraRunScaling {
			fmt.Printf(" w%d=%.2fx", pt.Workers, pt.Speedup)
		}
		fmt.Println()
	}
	for _, which := range []struct {
		name string
		rep  *benchReport
	}{{args[0], oldRep}, {args[1], newRep}} {
		if m := which.rep.Makespan; m.StaticMS > 0 && m.AdaptiveMS > 0 {
			fmt.Printf("makespan in %s (%d cores): static %.0f ms, adaptive %.0f ms, %.2fx\n",
				which.name, which.rep.GOMAXPROCS, m.StaticMS, m.AdaptiveMS, m.Speedup)
		}
	}
	fmt.Printf("compared %d cells\n", matched)
	return nil
}

// benchcmpHistory renders the regression dashboard over a directory of
// BENCH_*.json snapshots, ordered by filename (date-stamped names — e.g.
// BENCH_2026-08-08.json — give a chronological trajectory for free). The
// per-cell table tracks ns/cycle across every snapshot plus the newest-vs-
// first delta; the steady-state gate compares the newest snapshot against
// the best in the trajectory and fails past the tolerated regression.
func benchcmpHistory(w io.Writer, dir string, regressPct float64) error {
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	sort.Strings(files)
	if len(files) < 2 {
		return fmt.Errorf("benchcmp: -history needs at least two BENCH_*.json snapshots in %s, found %d", dir, len(files))
	}
	reps := make([]*benchReport, len(files))
	labels := make([]string, len(files))
	for i, f := range files {
		if reps[i], err = readBenchReport(f); err != nil {
			return err
		}
		labels[i] = strings.TrimSuffix(strings.TrimPrefix(filepath.Base(f), "BENCH_"), ".json")
	}
	first, last := reps[0], reps[len(reps)-1]
	for i, r := range reps[1:] {
		if r.SMs != first.SMs || r.Scale != first.Scale || r.GOMAXPROCS != first.GOMAXPROCS {
			fmt.Fprintf(w, "note: machine mismatch — %s ran sms=%d scale=%g cores=%d, %s ran sms=%d scale=%g cores=%d; deltas conflate code and configuration\n",
				labels[0], first.SMs, first.Scale, first.GOMAXPROCS,
				labels[i+1], r.SMs, r.Scale, r.GOMAXPROCS)
			break
		}
	}

	// Per-cell ns/cycle across the trajectory. The newest snapshot defines
	// the row set; older snapshots missing a cell show "-".
	type cellKey struct{ bench, tech string }
	perSnap := make([]map[cellKey]float64, len(reps))
	for i, r := range reps {
		perSnap[i] = make(map[cellKey]float64, len(r.Cells))
		for _, c := range r.Cells {
			perSnap[i][cellKey{c.Bench, c.Technique}] = c.NsPerCycle
		}
	}
	header := append([]string{"benchmark", "technique"}, labels...)
	header = append(header, "delta")
	t := stats.NewTable(fmt.Sprintf("bench history: %s (%d snapshots, ns/cycle)", dir, len(reps)), header...)
	for _, c := range last.Cells {
		k := cellKey{c.Bench, c.Technique}
		row := []string{c.Bench, c.Technique}
		for i := range reps {
			if v, ok := perSnap[i][k]; ok && v > 0 {
				row = append(row, fmt.Sprintf("%.1f", v))
			} else {
				row = append(row, "-")
			}
		}
		delta := "-"
		if v0, ok := perSnap[0][k]; ok && v0 > 0 && c.NsPerCycle > 0 {
			delta = fmt.Sprintf("%+.1f%%", (c.NsPerCycle-v0)/v0*100)
		}
		t.AddRow(append(row, delta)...)
	}
	fmt.Fprintln(w, t)

	fmt.Fprintln(w, "steady state (hot loop, one busy SM):")
	best, bestLabel := 0.0, ""
	for i, r := range reps {
		ns := r.SteadyState.NsPerCycle
		if ns <= 0 {
			fmt.Fprintf(w, "  %-24s (no measurement)\n", labels[i])
			continue
		}
		fmt.Fprintf(w, "  %-24s %.0f ns/cycle, %g allocs/cycle\n", labels[i], ns, r.SteadyState.AllocsPerCycle)
		if best == 0 || ns < best {
			best, bestLabel = ns, labels[i]
		}
	}
	newest := last.SteadyState.NsPerCycle
	switch {
	case regressPct <= 0:
		fmt.Fprintln(w, "steady-state gate disabled (-regress 0)")
	case newest <= 0:
		return fmt.Errorf("benchcmp: newest snapshot %s has no steady-state measurement to gate on", labels[len(labels)-1])
	case best > 0 && newest > best*(1+regressPct/100):
		return fmt.Errorf("benchcmp: steady-state regression: %s is %.0f ns/cycle, %.1f%% above the best snapshot %s (%.0f ns/cycle, limit %g%%)",
			labels[len(labels)-1], newest, (newest-best)/best*100, bestLabel, best, regressPct)
	default:
		fmt.Fprintf(w, "steady-state gate: %s at %.0f ns/cycle is within %g%% of the best (%s, %.0f ns/cycle)\n",
			labels[len(labels)-1], newest, regressPct, bestLabel, best)
	}
	return nil
}

// readBenchReport loads one BENCH_sim.json payload.
func readBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
