package main

import (
	"flag"
	"fmt"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/isa"
	"warpedgates/internal/paper"
	"warpedgates/internal/stats"
)

// cmdCompare regenerates the headline results and prints them side by side
// with the values the paper reports, producing the paper-vs-measured record
// mechanically (the source of EXPERIMENTS.md's summary tables).
func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	sms := fs.Int("sms", 15, "number of SMs")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	jobs := fs.Int("j", 0, "max concurrent simulations (0 = all cores)")
	workers := addWorkersFlag(fs)
	schedFlag := addSchedFlag(fs)
	storeDir := addStoreFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sched, err := core.ParseSchedMode(*schedFlag)
	if err != nil {
		return err
	}
	cfg := config.GTX480()
	cfg.NumSMs = *sms
	cfg.IntraRunWorkers = *workers
	r := core.NewRunner(cfg)
	r.Scale = *scale
	r.Parallelism = *jobs
	r.Sched = sched
	st, err := attachStore(r, *storeDir)
	if err != nil {
		return err
	}
	defer reportStoreHealth(st)

	fig9a, err := core.RunFig9(r, isa.INT)
	if err != nil {
		return err
	}
	fig9b, err := core.RunFig9(r, isa.FP)
	if err != nil {
		return err
	}
	fig10, err := core.RunFig10(r)
	if err != nil {
		return err
	}

	t := stats.NewTable("Paper vs measured — suite-level results",
		"metric", "technique", "paper", "measured", "delta")
	addRow := func(metric string, tech core.Technique, paperVal, measured float64) {
		t.AddRowf(metric, tech.String(), paperVal, measured, measured-paperVal)
	}
	for _, tech := range core.GatedTechniques() {
		addRow("Fig9a INT savings", tech, paper.Fig9aINTSavings[tech.String()], fig9a.Average[tech])
	}
	for _, tech := range core.GatedTechniques() {
		addRow("Fig9b FP savings", tech, paper.Fig9bFPSavings[tech.String()], fig9b.Average[tech])
	}
	for _, tech := range core.GatedTechniques() {
		addRow("Fig10 performance", tech, paper.Fig10Performance[tech.String()], fig10.Geomean[tech])
	}
	fmt.Println(t)

	// The qualitative claims the reproduction must preserve.
	checks := stats.NewTable("Shape checks", "claim", "holds")
	claim := func(name string, ok bool) { checks.AddRowf(name, ok) }
	claim("FP savings > INT savings (Warped Gates)",
		fig9b.Average[core.WarpedGates] > fig9a.Average[core.WarpedGates])
	claim("Blackout > ConvPG on INT savings",
		fig9a.Average[core.CoordBlackout] > fig9a.Average[core.ConvPG])
	claim("Warped Gates >= 1.3x ConvPG INT savings",
		fig9a.Average[core.WarpedGates] >= 1.3*fig9a.Average[core.ConvPG])
	claim("Naive Blackout is the slowest technique",
		fig10.Geomean[core.NaiveBlackout] <= fig10.Geomean[core.ConvPG] &&
			fig10.Geomean[core.NaiveBlackout] <= fig10.Geomean[core.CoordBlackout] &&
			fig10.Geomean[core.NaiveBlackout] <= fig10.Geomean[core.WarpedGates])
	// Small tolerance: Coordinated Blackout and Warped Gates are within each
	// other's noise band on performance (the paper separates them by ~1%).
	const eps = 0.005
	claim("Warped Gates fastest of the blackout techniques",
		fig10.Geomean[core.WarpedGates] >= fig10.Geomean[core.NaiveBlackout]-eps &&
			fig10.Geomean[core.WarpedGates] >= fig10.Geomean[core.CoordBlackout]-eps)
	fmt.Println(checks)
	return nil
}
