package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/store"
	"warpedgates/internal/sweep"
)

// cmdSweep runs a declarative parameter-grid sweep: a spec (JSON file and/or
// axis flags) expands to canonical jobs, deduplicates against the report
// store, optionally takes one shard of the sorted job-key space, and writes
// a per-sweep JSON report with aggregates.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	specPath := fs.String("spec", "", "JSON sweep spec file (flags below override its axes)")
	benches := fs.String("benches", "", "comma-separated benchmark names (empty = all)")
	techs := fs.String("techniques", "", "comma-separated technique names (empty = all)")
	smsList := fs.String("sms", "", "comma-separated SM counts (empty = base config)")
	scales := fs.String("scales", "", "comma-separated workload scales (empty = 1.0)")
	seeds := fs.String("seeds", "", "comma-separated seeds (empty = base config)")
	idles := fs.String("idle-detects", "", "comma-separated idle-detect thresholds (empty = base config)")
	bets := fs.String("break-evens", "", "comma-separated break-even times (empty = base config)")
	wakes := fs.String("wakeup-delays", "", "comma-separated wakeup delays (empty = base config)")
	sample := fs.String("sample", "", "interval sampling as detail/period cycles, e.g. 1000/5000 (empty = detailed)")
	shard := fs.String("shard", "", "run only shard i/n of the sorted job-key space, e.g. 0/4")
	jobs := fs.Int("j", 0, "max concurrent cells (0 = all cores)")
	workers := addWorkersFlag(fs)
	schedFlag := addSchedFlag(fs)
	storeDir := addStoreFlag(fs)
	out := fs.String("out", "", "write the full sweep report as JSON to this file")
	verbose := fs.Bool("v", false, "print per-cell progress")
	dry := fs.Bool("n", false, "expand and print the cell count and keys, run nothing")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec sweep.Spec
	if *specPath != "" {
		b, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		dec := json.NewDecoder(strings.NewReader(string(b)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return fmt.Errorf("sweep spec %s: %w", *specPath, err)
		}
	}
	if *benches != "" {
		spec.Benches = splitList(*benches)
	}
	if *techs != "" {
		spec.Techniques = splitList(*techs)
	}
	var err error
	if spec.SMs, err = overrideInts(*smsList, spec.SMs); err != nil {
		return fmt.Errorf("-sms: %w", err)
	}
	if spec.IdleDetects, err = overrideInts(*idles, spec.IdleDetects); err != nil {
		return fmt.Errorf("-idle-detects: %w", err)
	}
	if spec.BreakEvens, err = overrideInts(*bets, spec.BreakEvens); err != nil {
		return fmt.Errorf("-break-evens: %w", err)
	}
	if spec.WakeupDelays, err = overrideInts(*wakes, spec.WakeupDelays); err != nil {
		return fmt.Errorf("-wakeup-delays: %w", err)
	}
	if *scales != "" {
		spec.Scales = spec.Scales[:0]
		for _, s := range splitList(*scales) {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("-scales: %w", err)
			}
			spec.Scales = append(spec.Scales, f)
		}
	}
	if *seeds != "" {
		spec.Seeds = spec.Seeds[:0]
		for _, s := range splitList(*seeds) {
			u, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				return fmt.Errorf("-seeds: %w", err)
			}
			spec.Seeds = append(spec.Seeds, u)
		}
	}
	if *sample != "" {
		d, p, err := parseSample(*sample)
		if err != nil {
			return err
		}
		spec.SampleDetail, spec.SamplePeriod = d, p
	}
	shardI, shardN, err := parseShard(*shard)
	if err != nil {
		return err
	}

	base := config.GTX480()
	base.IntraRunWorkers = *workers

	if *dry {
		cells, err := sweep.Expand(spec, base)
		if err != nil {
			return err
		}
		if cells, err = sweep.Shard(cells, base, shardI, shardN); err != nil {
			return err
		}
		fmt.Printf("%d cells\n", len(cells))
		for _, c := range cells {
			fmt.Println(c.Key(base))
		}
		return nil
	}

	var st *store.Store
	if *storeDir != "" {
		if st, err = store.Open(*storeDir); err != nil {
			return err
		}
	}
	sched, err := core.ParseSchedMode(*schedFlag)
	if err != nil {
		return err
	}
	eng := &sweep.Engine{
		Base:        base,
		Store:       st,
		Parallelism: *jobs,
		Sched:       sched,
	}
	if *verbose {
		eng.Progress = func(done, total int, res sweep.CellResult) {
			status := fmt.Sprintf("cycles=%d", res.Cycles)
			if res.Err != "" {
				status = "error: " + res.Err
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s %s\n", done, total, res.Key, status)
		}
	}
	rep, err := eng.Run(context.Background(), spec, shardI, shardN)
	reportStoreHealth(st)
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())
	if *out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d of %d cells failed", rep.Failed, rep.Cells)
	}
	return nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// overrideInts parses a comma-separated int list, keeping prev when the flag
// is unset.
func overrideInts(s string, prev []int) ([]int, error) {
	if s == "" {
		return prev, nil
	}
	var out []int
	for _, v := range splitList(s) {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// parseSample parses the detail/period pair of the -sample flag.
func parseSample(s string) (detail, period int, err error) {
	d, p, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-sample: want detail/period cycles, e.g. 1000/5000, got %q", s)
	}
	if detail, err = strconv.Atoi(d); err != nil {
		return 0, 0, fmt.Errorf("-sample: %w", err)
	}
	if period, err = strconv.Atoi(p); err != nil {
		return 0, 0, fmt.Errorf("-sample: %w", err)
	}
	return detail, period, nil
}

// parseShard parses -shard i/n; empty means the whole grid.
func parseShard(s string) (i, n int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard: want i/n, e.g. 0/4, got %q", s)
	}
	if i, err = strconv.Atoi(a); err != nil {
		return 0, 0, fmt.Errorf("-shard: %w", err)
	}
	if n, err = strconv.Atoi(b); err != nil {
		return 0, 0, fmt.Errorf("-shard: %w", err)
	}
	return i, n, nil
}
