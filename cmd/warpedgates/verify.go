package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"warpedgates/internal/check"
	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/kernels"
)

// cmdVerify runs the benchmark × technique matrix with the cycle-level
// invariant checker attached to every simulation and reports the verdict.
// It exits non-zero on the first violation (the error names the benchmark,
// cycle, rule and the offending lane).
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	sms := fs.Int("sms", 15, "number of SMs")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	jobs := fs.Int("j", 0, "max concurrent simulations (0 = all cores)")
	workers := addWorkersFlag(fs)
	bench := fs.String("bench", "", "verify a single benchmark (default: all)")
	tech := fs.String("tech", "", "verify a single technique (default: all)")
	verbose := fs.Bool("v", false, "print progress")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	defer prof.stop()

	benches := kernels.BenchmarkNames
	if *bench != "" {
		if _, err := kernels.Benchmark(*bench); err != nil {
			return err
		}
		benches = []string{*bench}
	}
	techs := core.AllTechniques()
	if *tech != "" {
		t, err := core.ParseTechnique(*tech)
		if err != nil {
			return err
		}
		techs = []core.Technique{t}
	}

	cfg := config.GTX480()
	cfg.NumSMs = *sms
	cfg.IntraRunWorkers = *workers
	r := core.NewRunner(cfg)
	r.Scale = *scale
	r.Parallelism = *jobs
	var sum check.Summary
	r.Instrument = check.Instrument(&sum)
	if *verbose {
		r.Progress = func(b string, c config.Config) {
			fmt.Fprintf(os.Stderr, "  checking %s under %s/%s\n", b, c.Scheduler, c.Gating)
		}
	}

	jobList := make([]core.Job, 0, len(benches)*len(techs))
	for _, b := range benches {
		for _, t := range techs {
			jobList = append(jobList, core.Job{Bench: b, Cfg: t.Apply(cfg)})
		}
	}

	t0 := time.Now()
	reps, err := r.RunMany(jobList)
	if err != nil {
		return err
	}

	fmt.Printf("%-10s", "benchmark")
	for _, t := range techs {
		fmt.Printf(" %13s", t)
	}
	fmt.Println()
	i := 0
	for _, b := range benches {
		fmt.Printf("%-10s", b)
		for range techs {
			fmt.Printf(" %13d", reps[i].Cycles)
			i++
		}
		fmt.Println()
	}
	runs, checks := sum.Snapshot()
	fmt.Printf("\nverified %d simulations (%d benchmarks x %d techniques) in %v: %d invariant evaluations, 0 violations\n",
		runs, len(benches), len(techs), time.Since(t0).Round(time.Millisecond), checks)
	return nil
}
