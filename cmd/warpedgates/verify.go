package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"warpedgates/internal/check"
	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
	"warpedgates/internal/store"
)

// cmdVerify runs the benchmark × technique matrix with the cycle-level
// invariant checker attached to every simulation and reports the verdict.
// It exits non-zero on the first violation (the error names the benchmark,
// cycle, rule and the offending lane).
//
// With -store DIR it additionally proves the durable tier faithful: the
// checked run populates the store, then a cold runner (empty in-memory cache,
// same store) replays the matrix and every cell must (a) be served from the
// store — hit count equals cell count — and (b) fingerprint byte-identically
// to the freshly simulated report.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	sms := fs.Int("sms", 15, "number of SMs")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	jobs := fs.Int("j", 0, "max concurrent simulations (0 = all cores)")
	workers := addWorkersFlag(fs)
	schedFlag := addSchedFlag(fs)
	bench := fs.String("bench", "", "verify a single benchmark (default: all)")
	tech := fs.String("tech", "", "verify a single technique (default: all)")
	verbose := fs.Bool("v", false, "print progress")
	storeDir := addStoreFlag(fs)
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	defer prof.stop()
	sched, err := core.ParseSchedMode(*schedFlag)
	if err != nil {
		return err
	}

	benches := kernels.BenchmarkNames
	if *bench != "" {
		if _, err := kernels.Benchmark(*bench); err != nil {
			return err
		}
		benches = []string{*bench}
	}
	techs := core.AllTechniques()
	if *tech != "" {
		t, err := core.ParseTechnique(*tech)
		if err != nil {
			return err
		}
		techs = []core.Technique{t}
	}

	cfg := config.GTX480()
	cfg.NumSMs = *sms
	cfg.IntraRunWorkers = *workers
	r := core.NewRunner(cfg)
	r.Scale = *scale
	r.Parallelism = *jobs
	r.Sched = sched
	// The checked pass deliberately runs without the store attached: a store
	// hit bypasses instrumentation, so pre-existing entries would silently
	// skip invariant checking. Every cell simulates fresh here; the store
	// proof below commits and replays them afterwards.
	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir); err != nil {
			return err
		}
	}
	var sum check.Summary
	r.Instrument = check.Instrument(&sum)
	if *verbose {
		r.Progress = func(b string, c config.Config) {
			fmt.Fprintf(os.Stderr, "  checking %s under %s/%s\n", b, c.Scheduler, c.Gating)
		}
	}

	jobList := make([]core.Job, 0, len(benches)*len(techs))
	for _, b := range benches {
		for _, t := range techs {
			jobList = append(jobList, core.Job{Bench: b, Cfg: t.Apply(cfg)})
		}
	}

	t0 := time.Now()
	reps, err := r.RunMany(jobList)
	if err != nil {
		return err
	}

	fmt.Printf("%-10s", "benchmark")
	for _, t := range techs {
		fmt.Printf(" %13s", t)
	}
	fmt.Println()
	i := 0
	for _, b := range benches {
		fmt.Printf("%-10s", b)
		for range techs {
			fmt.Printf(" %13d", reps[i].Cycles)
			i++
		}
		fmt.Println()
	}
	runs, checks := sum.Snapshot()
	fmt.Printf("\nverified %d simulations (%d benchmarks x %d techniques) in %v: %d invariant evaluations, 0 violations\n",
		runs, len(benches), len(techs), time.Since(t0).Round(time.Millisecond), checks)
	if st == nil {
		return nil
	}
	return verifyStore(st, cfg, *scale, *jobs, jobList, reps)
}

// verifyStore proves the durable tier returns bytes identical to fresh
// simulation. It commits every checked report to the store, then replays the
// matrix on a cold runner — empty in-memory cache, same store — and requires
// that (a) the store served every cell (its hit counter advanced by exactly
// the cell count, so nothing was silently re-simulated) and (b) each replayed
// report fingerprints identically to the fresh one.
func verifyStore(st *store.Store, cfg config.Config, scale float64, jobs int,
	jobList []core.Job, fresh []*sim.Report) error {
	for i, j := range jobList {
		payload, err := sim.EncodeReport(fresh[i])
		if err != nil {
			return fmt.Errorf("verify: encode %s: %w", j.Bench, err)
		}
		if err := st.Put(core.JobKey(j.Bench, j.Cfg, scale), payload); err != nil {
			return fmt.Errorf("verify: store put %s: %w", j.Bench, err)
		}
	}
	before := st.Health().Hits

	cold := core.NewRunner(cfg)
	cold.Scale = scale
	cold.Parallelism = jobs
	cold.Store = st
	replayed, err := cold.RunMany(jobList)
	if err != nil {
		return fmt.Errorf("verify: store replay: %w", err)
	}

	if got, want := st.Health().Hits-before, uint64(len(jobList)); got != want {
		return fmt.Errorf("verify: store served %d of %d cells — the rest were re-simulated instead of read back", got, want)
	}
	for i, j := range jobList {
		f, c := core.FingerprintReport(fresh[i]), core.FingerprintReport(replayed[i])
		if f != c {
			return fmt.Errorf("verify: store round-trip diverged for %s under %s/%s:\n fresh:  %s\n cached: %s",
				j.Bench, j.Cfg.Scheduler, j.Cfg.Gating, f, c)
		}
	}
	fmt.Printf("store proof: %d cells committed, replayed cold from %s, all fingerprints byte-identical\n",
		len(jobList), st.Dir())
	reportStoreHealth(st)
	return nil
}
