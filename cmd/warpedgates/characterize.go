package main

import (
	"flag"
	"fmt"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/isa"
	"warpedgates/internal/stats"
)

// cmdCharacterize prints the workload characterization of the benchmark
// suite in one table: dynamic instruction mix (paper Fig. 5a), active-warp
// occupancy (Fig. 5b), cache behaviour and baseline idle fractions — the
// inputs a reader needs to judge how closely the synthetic suite matches the
// paper's workloads.
func cmdCharacterize(args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	sms := fs.Int("sms", 15, "number of SMs")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	jobs := fs.Int("j", 0, "max concurrent simulations (0 = all cores)")
	workers := addWorkersFlag(fs)
	schedFlag := addSchedFlag(fs)
	storeDir := addStoreFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sched, err := core.ParseSchedMode(*schedFlag)
	if err != nil {
		return err
	}
	cfg := config.GTX480()
	cfg.NumSMs = *sms
	cfg.IntraRunWorkers = *workers
	r := core.NewRunner(cfg)
	r.Scale = *scale
	r.Parallelism = *jobs
	r.Sched = sched
	st, err := attachStore(r, *storeDir)
	if err != nil {
		return err
	}
	defer reportStoreHealth(st)

	reps, err := r.RunAllParallel(core.Baseline)
	if err != nil {
		return err
	}
	t := stats.NewTable("Benchmark suite characterization (baseline two-level, no gating)",
		"benchmark", "cycles", "INT", "FP", "SFU", "LDST",
		"warps avg", "warps max", "L1 miss", "INT idle", "FP idle")
	for _, nr := range reps {
		rep := nr.Report
		mix := rep.InstructionMix()
		t.AddRowf(nr.Benchmark, rep.Cycles,
			mix[isa.INT], mix[isa.FP], mix[isa.SFU], mix[isa.LDST],
			rep.ActiveWarpAvg, rep.ActiveWarpMax, rep.L1MissRate,
			rep.Domains[isa.INT].IdleFraction(), rep.Domains[isa.FP].IdleFraction())
	}
	fmt.Println(t)
	return nil
}
