package main

import (
	"flag"
	"fmt"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
	"warpedgates/internal/trace"
)

// cmdTrace renders an ASCII waveform of one SM's gating-domain states over a
// cycle window — '#' busy, '.' idle, 'u' gated uncompensated, 'C' gated
// compensated, 'w' waking up. It makes the paper's mechanisms visible:
// under Warped Gates the secondary clusters show long C runs while under
// conventional gating they flicker between '.' and 'u'.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	bench := fs.String("bench", "hotspot", "benchmark name")
	tech := fs.String("tech", "WarpedGates", "technique name")
	smID := fs.Int("sm", 0, "SM to trace")
	from := fs.Int64("from", 500, "first cycle of the trace window")
	cycles := fs.Int64("cycles", 240, "window length in cycles")
	width := fs.Int("width", 120, "waveform row width")
	scale := fs.Float64("scale", 0.5, "workload scale factor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t, err := core.ParseTechnique(*tech)
	if err != nil {
		return err
	}
	cfg := t.Apply(config.GTX480())
	cfg.NumSMs = *smID + 1
	cfg.MaxCycles = int(*from + *cycles + 10000)

	k, err := kernels.Benchmark(*bench)
	if err != nil {
		return err
	}
	if *scale != 1.0 {
		k = k.Scale(*scale)
	}
	gpu, err := sim.NewGPU(cfg, k)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(*smID, *from, *from+*cycles)
	rec.Attach(gpu)
	gpu.Run()

	fmt.Printf("%s under %s\n", *bench, t)
	fmt.Print(rec.Waveform(*width))
	fmt.Println()
	for _, l := range rec.Lanes() {
		fmt.Printf("%-5s busy %5.1f%%  gated %5.1f%%\n",
			l, rec.BusyFraction(l)*100, rec.GatedFraction(l)*100)
	}
	return nil
}
