package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// historyReport builds a minimal BENCH_sim.json snapshot with one cell and
// the given steady-state cost.
func historyReport(steadyNs float64, cellNs float64) *benchReport {
	rep := &benchReport{SMs: 6, Scale: 0.25, GOMAXPROCS: 4}
	rep.SteadyState.Bench = "hotspot"
	rep.SteadyState.Technique = "WarpedGates"
	rep.SteadyState.NsPerCycle = steadyNs
	rep.SteadyState.AllocsPerCycle = 0
	rep.Cells = []benchCell{{
		Bench: "hotspot", Technique: "WarpedGates",
		Cycles: 100000, WallMS: cellNs / 10, NsPerCycle: cellNs,
	}}
	return rep
}

// writeHistory lays snapshots into dir as BENCH_<label>.json files; labels
// must sort in trajectory order, mirroring date-stamped names in real use.
func writeHistory(t *testing.T, dir string, snaps map[string]*benchReport) {
	t.Helper()
	for label, rep := range snaps {
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "BENCH_"+label+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBenchcmpHistory pins the regression-dashboard contract: the trajectory
// table renders every snapshot, and the steady-state gate exits nonzero only
// past the tolerated regression.
func TestBenchcmpHistory(t *testing.T) {
	t.Run("improving trajectory passes", func(t *testing.T) {
		dir := t.TempDir()
		writeHistory(t, dir, map[string]*benchReport{
			"2026-08-01": historyReport(500, 900),
			"2026-08-02": historyReport(450, 850),
			"2026-08-03": historyReport(400, 800),
		})
		var out strings.Builder
		if err := benchcmpHistory(&out, dir, 10); err != nil {
			t.Fatalf("improving history failed the gate: %v", err)
		}
		for _, want := range []string{"2026-08-01", "2026-08-03", "hotspot", "WarpedGates", "-11.1%", "steady-state gate"} {
			if !strings.Contains(out.String(), want) {
				t.Errorf("dashboard missing %q:\n%s", want, out.String())
			}
		}
	})
	t.Run("regression within tolerance passes", func(t *testing.T) {
		dir := t.TempDir()
		writeHistory(t, dir, map[string]*benchReport{
			"a": historyReport(400, 800),
			"b": historyReport(430, 800), // +7.5% over the best
		})
		if err := benchcmpHistory(io.Discard, dir, 10); err != nil {
			t.Fatalf("7.5%% regression failed a 10%% gate: %v", err)
		}
	})
	t.Run("regression past tolerance fails", func(t *testing.T) {
		dir := t.TempDir()
		writeHistory(t, dir, map[string]*benchReport{
			"a": historyReport(400, 800),
			"b": historyReport(480, 800), // +20% over the best
		})
		err := benchcmpHistory(io.Discard, dir, 10)
		if err == nil {
			t.Fatal("20% steady-state regression passed a 10% gate")
		}
		if !strings.Contains(err.Error(), "steady-state regression") {
			t.Fatalf("unexpected gate error: %v", err)
		}
		if exitCode(err) != 1 {
			t.Fatalf("gate failure maps to exit %d, want 1", exitCode(err))
		}
	})
	t.Run("gate disabled reports only", func(t *testing.T) {
		dir := t.TempDir()
		writeHistory(t, dir, map[string]*benchReport{
			"a": historyReport(400, 800),
			"b": historyReport(480, 800),
		})
		if err := benchcmpHistory(io.Discard, dir, 0); err != nil {
			t.Fatalf("-regress 0 must disable the gate: %v", err)
		}
	})
	t.Run("fewer than two snapshots is an error", func(t *testing.T) {
		dir := t.TempDir()
		writeHistory(t, dir, map[string]*benchReport{"only": historyReport(400, 800)})
		if err := benchcmpHistory(io.Discard, dir, 10); err == nil {
			t.Fatal("single-snapshot history accepted")
		}
	})
	t.Run("missing steady state in newest snapshot fails the gate", func(t *testing.T) {
		dir := t.TempDir()
		writeHistory(t, dir, map[string]*benchReport{
			"a": historyReport(400, 800),
			"b": historyReport(0, 800),
		})
		if err := benchcmpHistory(io.Discard, dir, 10); err == nil {
			t.Fatal("gate passed with no newest steady-state measurement")
		}
	})
}
