package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"warpedgates/internal/core"
	"warpedgates/internal/store"
)

// addStoreFlag registers the shared -store flag: a directory holding the
// durable report store. Every subcommand that runs simulations accepts it;
// reports then persist across processes, and cached results are byte-
// identical to fresh simulation (the golden corpus pins this).
func addStoreFlag(fs *flag.FlagSet) *string {
	return fs.String("store", "",
		"durable report store directory (reports persist across processes; empty = disabled)")
}

// attachStore opens the report store at dir — when one was requested — and
// attaches it to the runner as the durable cache tier.
func attachStore(r *core.Runner, dir string) (*store.Store, error) {
	if dir == "" {
		return nil, nil
	}
	s, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	r.Store = s
	return s, nil
}

// reportStoreHealth prints the store's counters to stderr after a run, so
// operators see hit rates and — critically — write errors and quarantines,
// which never fail runs but do mean the durable tier is degraded.
func reportStoreHealth(s *store.Store) {
	if s == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "store %s: %s\n", s.Dir(), s.Health())
}

// cmdStore dispatches the store maintenance subcommands; today that is
// `store verify`, the offline scrub walk.
func cmdStore(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("store: missing subcommand (try: store verify -store DIR)")
	}
	switch args[0] {
	case "verify":
		return cmdStoreVerify(args[1:])
	default:
		return fmt.Errorf("store: unknown subcommand %q (try: store verify -store DIR)", args[0])
	}
}

// cmdStoreVerify runs the scrub walk: every committed entry re-read and
// checksum-verified, corrupt entries quarantined, crash-orphaned temp files
// swept. It exits non-zero when the walk quarantined anything, so a CI or
// cron invocation alarms on bit-rot while still leaving the store itself in
// a consistent, serving state.
func cmdStoreVerify(args []string) error {
	fs := flag.NewFlagSet("store verify", flag.ExitOnError)
	dir := addStoreFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("store verify: -store DIR is required")
	}
	s, err := store.Open(*dir)
	if err != nil {
		return err
	}
	rep, err := s.Verify()
	if err != nil {
		return err
	}
	fmt.Printf("store %s: %s\n", *dir, rep)
	if n := len(rep.Quarantined); n > 0 {
		return fmt.Errorf("store verify: quarantined %d corrupt entr%s: %s",
			n, plural(n, "y", "ies"), strings.Join(rep.Quarantined, ", "))
	}
	return nil
}

// plural picks the singular or plural suffix for n.
func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
