package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
	"warpedgates/internal/store"
)

// errFloorSkipped marks a -floor gate that could not run because the host
// cannot schedule two workers in parallel. main maps it to exit code 3 so CI
// can tell "gate passed" (0) from "gate could not be measured" (3).
var errFloorSkipped = errors.New("bench: floor gate skipped")

// benchCell is one benchmark × technique measurement.
type benchCell struct {
	Bench          string  `json:"bench"`
	Technique      string  `json:"technique"`
	Cycles         int64   `json:"cycles"`
	WallMS         float64 `json:"wall_ms"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// scalingPoint is one intra-run worker count on the scaling curve.
type scalingPoint struct {
	Workers        int     `json:"workers"`
	WallMS         float64 `json:"wall_ms"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	// Speedup is serial wall time over this point's wall time (>1 = faster).
	// Interpret it against "gomaxprocs": on a single-core host the parallel
	// engine can only pay barrier overhead, so points below 1 are expected
	// there and say nothing about multi-core scaling.
	Speedup float64 `json:"speedup"`
}

// benchReport is the BENCH_sim.json payload.
type benchReport struct {
	SMs   int     `json:"sms"`
	Scale float64 `json:"scale"`
	// GOMAXPROCS records how many cores the measurement could actually use —
	// required context for judging IntraRunScaling.
	GOMAXPROCS int `json:"gomaxprocs"`

	// SteadyState measures the hot loop alone (one busy SM, warmed buffers):
	// its allocs_per_cycle is the zero-allocation claim of the simulator.
	SteadyState struct {
		Bench          string  `json:"bench"`
		Technique      string  `json:"technique"`
		NsPerCycle     float64 `json:"ns_per_cycle"`
		AllocsPerCycle float64 `json:"allocs_per_cycle"`
	} `json:"steady_state"`

	// Cells cover the full benchmark × technique matrix with the idle
	// fast-forward enabled; their alloc counts include device construction,
	// amortized over the run.
	Cells []benchCell `json:"cells"`

	// IntraRunScaling is the phase-split engine's scaling curve: hotspot
	// under the full proposal with fast-forward disabled (so the stepped
	// loop dominates), re-run at growing intra-run worker counts. The
	// workers=1 point is the serial engine and anchors the speedups.
	IntraRunScaling []scalingPoint `json:"intra_run_scaling"`

	// MemBanksScaling varies the bank-sharded arbitration width on the same
	// stepped run (fixed worker count): the multi-core tuning data the
	// MemBanks default is judged against. The banks=1 point (unified model)
	// anchors the speedups.
	MemBanksScaling []memBanksPoint `json:"mem_banks_scaling,omitempty"`

	// Makespan times the full benchmark × technique matrix through the
	// job-level runner twice — static split vs the adaptive two-level
	// schedule (cost-model LPT + tail worker reallocation) — on fresh
	// runners, so it measures scheduling, not caching. Speedup is
	// static_ms/adaptive_ms; interpret against "gomaxprocs" (a single-core
	// host can only measure scheduling overhead).
	Makespan struct {
		Jobs       int     `json:"jobs"`
		JobWorkers int     `json:"job_workers"`
		StaticMS   float64 `json:"static_ms"`
		AdaptiveMS float64 `json:"adaptive_ms"`
		Speedup    float64 `json:"speedup"`
	} `json:"makespan"`

	Totals struct {
		FastForwardMS float64 `json:"fast_forward_ms"`
		SteppedMS     float64 `json:"stepped_ms"`
		Speedup       float64 `json:"speedup"`
	} `json:"totals"`
}

// memBanksPoint is one bank count on the arbitration-sharding curve.
type memBanksPoint struct {
	Banks   int     `json:"banks"`
	WallMS  float64 `json:"wall_ms"`
	Speedup float64 `json:"speedup"`
}

// cmdBench times the full benchmark × technique matrix serially (one
// simulation at a time, bypassing the runner's memoization so every cell is
// really executed), measures the steady-state per-cycle cost, reruns the
// matrix with the idle fast-forward disabled for the speedup baseline, and
// writes everything as JSON.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	sms := fs.Int("sms", 6, "number of SMs")
	scale := fs.Float64("scale", 0.25, "workload scale factor")
	workers := addWorkersFlag(fs)
	out := fs.String("out", "BENCH_sim.json", "output JSON path")
	floor := fs.Float64("floor", 0, "minimum intra-run speedup at 2 workers; exit nonzero below it (0 disables; exit 3 on single-core hosts that cannot measure it)")
	makespanFloor := fs.Float64("makespan-floor", 0, "minimum adaptive-vs-static matrix makespan speedup; enforced at >=4 cores, informational at 2-3, exit 3 on single-core hosts (0 disables)")
	calibrate := fs.String("calibrate", "", "write the cost-model calibration table to this file and exit (canonical path: internal/core/costdata.json)")
	storeDir := addStoreFlag(fs)
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *calibrate != "" {
		return writeCalibration(*calibrate)
	}
	if err := prof.start(); err != nil {
		return err
	}
	defer prof.stop()

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir); err != nil {
			return err
		}
		defer reportStoreHealth(st)
	}

	base := config.GTX480()
	base.NumSMs = *sms
	base.IntraRunWorkers = *workers

	var rep benchReport
	rep.SMs = *sms
	rep.Scale = *scale
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)

	runCell := func(bench string, tech core.Technique, disableFF bool) (benchCell, *sim.Report, config.Config, error) {
		cfg := tech.Apply(base)
		cfg.DisableFastForward = disableFF
		k := kernels.MustBenchmark(bench).Scale(*scale)
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		gpu, err := sim.NewGPU(cfg, k)
		if err != nil {
			return benchCell{}, nil, cfg, err
		}
		r := gpu.Run()
		wall := time.Since(t0)
		runtime.ReadMemStats(&m1)
		cell := benchCell{
			Bench:     bench,
			Technique: tech.String(),
			Cycles:    r.Cycles,
			WallMS:    float64(wall.Nanoseconds()) / 1e6,
		}
		if r.Cycles > 0 {
			cell.NsPerCycle = float64(wall.Nanoseconds()) / float64(r.Cycles)
			cell.AllocsPerCycle = float64(m1.Mallocs-m0.Mallocs) / float64(r.Cycles)
		}
		return cell, r, cfg, nil
	}

	// commitCell persists a finished report to the durable store, after the
	// timing window closes so store I/O never pollutes a measurement. Bench
	// runs every cell for real either way; with -store, that effort also warms
	// the same cache later run/figure/verify invocations hit.
	commitCell := func(bench string, cfg config.Config, r *sim.Report) {
		if st == nil {
			return
		}
		payload, err := sim.EncodeReport(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: store encode %s: %v\n", bench, err)
			return
		}
		if err := st.Put(core.JobKey(bench, cfg, *scale), payload); err != nil {
			fmt.Fprintf(os.Stderr, "bench: store put %s: %v\n", bench, err)
		}
	}

	techs := core.AllTechniques()
	fmt.Fprintf(os.Stderr, "bench: %d benchmarks x %d techniques at sms=%d scale=%g\n",
		len(kernels.BenchmarkNames), len(techs), *sms, *scale)
	for _, bench := range kernels.BenchmarkNames {
		for _, tech := range techs {
			cell, r, cfg, err := runCell(bench, tech, false)
			if err != nil {
				return err
			}
			commitCell(bench, cfg, r)
			rep.Cells = append(rep.Cells, cell)
			rep.Totals.FastForwardMS += cell.WallMS
		}
	}
	for _, bench := range kernels.BenchmarkNames {
		for _, tech := range techs {
			cell, _, _, err := runCell(bench, tech, true)
			if err != nil {
				return err
			}
			rep.Totals.SteppedMS += cell.WallMS
		}
	}
	if rep.Totals.FastForwardMS > 0 {
		rep.Totals.Speedup = rep.Totals.SteppedMS / rep.Totals.FastForwardMS
	}

	// Intra-run scaling curve: the same stepped run at growing worker
	// counts. Candidate counts are clamped to the SM count (extra workers
	// would shard nothing) and deduplicated; -sms 15 yields the full
	// {1,2,4,8,15} curve of the GTX480 machine.
	scaleCfg := core.WarpedGates.Apply(base)
	scaleCfg.DisableFastForward = true
	scaleKernel := kernels.MustBenchmark("hotspot").Scale(*scale)
	var serialMS float64
	for _, w := range []int{1, 2, 4, 8, *sms} {
		if w > *sms {
			continue
		}
		if n := len(rep.IntraRunScaling); n > 0 && rep.IntraRunScaling[n-1].Workers == w {
			continue
		}
		cfg := scaleCfg
		cfg.IntraRunWorkers = w
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		gpu, err := sim.NewGPU(cfg, scaleKernel)
		if err != nil {
			return err
		}
		r := gpu.Run()
		wall := time.Since(t0)
		runtime.ReadMemStats(&m1)
		pt := scalingPoint{Workers: w, WallMS: float64(wall.Nanoseconds()) / 1e6}
		if r.Cycles > 0 {
			pt.NsPerCycle = float64(wall.Nanoseconds()) / float64(r.Cycles)
			pt.AllocsPerCycle = float64(m1.Mallocs-m0.Mallocs) / float64(r.Cycles)
		}
		if w == 1 {
			serialMS = pt.WallMS
		}
		if serialMS > 0 && pt.WallMS > 0 {
			pt.Speedup = serialMS / pt.WallMS
		}
		rep.IntraRunScaling = append(rep.IntraRunScaling, pt)
	}

	// Arbitration-sharding curve: the same stepped run at a fixed worker
	// count, varying MemBanks across every power of two the GTX480 memory
	// geometry admits. banks=1 is the unified model; the default
	// (EffectiveMemBanks) should sit at or near the curve's minimum on a
	// multi-core host.
	banksWorkers := 4
	if banksWorkers > *sms {
		banksWorkers = *sms
	}
	var banks1MS float64
	for _, b := range []int{1, 2, 4, 8} {
		cfg := scaleCfg
		cfg.IntraRunWorkers = banksWorkers
		cfg.MemBanks = b
		if err := cfg.Validate(); err != nil {
			continue // geometry does not admit this bank count
		}
		runtime.GC()
		t0 := time.Now()
		gpu, err := sim.NewGPU(cfg, scaleKernel)
		if err != nil {
			return err
		}
		gpu.Run()
		pt := memBanksPoint{Banks: b, WallMS: float64(time.Since(t0).Nanoseconds()) / 1e6}
		if b == 1 {
			banks1MS = pt.WallMS
		}
		if banks1MS > 0 && pt.WallMS > 0 {
			pt.Speedup = banks1MS / pt.WallMS
		}
		rep.MemBanksScaling = append(rep.MemBanksScaling, pt)
	}

	// Makespan: the full matrix through the job-level runner, static split
	// vs adaptive two-level scheduling. Fresh runner per mode (empty cache,
	// no store) so both time real simulation; IntraRunWorkers=1 gives the
	// static mode the widest job-level split, and under adaptive the lease
	// pool grows tail runs beyond it.
	runMatrix := func(mode core.SchedMode) (float64, error) {
		mb := base
		mb.IntraRunWorkers = 1
		r := core.NewRunner(mb)
		r.Scale = *scale
		r.Sched = mode
		jobs := make([]core.Job, 0, len(kernels.BenchmarkNames)*len(techs))
		for _, bench := range kernels.BenchmarkNames {
			for _, tech := range techs {
				jobs = append(jobs, core.Job{Bench: bench, Cfg: tech.Apply(mb)})
			}
		}
		runtime.GC()
		t0 := time.Now()
		if _, err := r.RunMany(jobs); err != nil {
			return 0, err
		}
		return float64(time.Since(t0).Nanoseconds()) / 1e6, nil
	}
	rep.Makespan.Jobs = len(kernels.BenchmarkNames) * len(techs)
	rep.Makespan.JobWorkers = rep.GOMAXPROCS
	if rep.Makespan.JobWorkers > rep.Makespan.Jobs {
		rep.Makespan.JobWorkers = rep.Makespan.Jobs
	}
	staticMS, err := runMatrix(core.SchedStatic)
	if err != nil {
		return err
	}
	adaptiveMS, err := runMatrix(core.SchedAdaptive)
	if err != nil {
		return err
	}
	rep.Makespan.StaticMS, rep.Makespan.AdaptiveMS = staticMS, adaptiveMS
	if rep.Makespan.AdaptiveMS > 0 {
		rep.Makespan.Speedup = rep.Makespan.StaticMS / rep.Makespan.AdaptiveMS
	}

	// Steady-state hot-loop cost: a busy SM under the full proposal. Ten
	// retire-ring revolutions of warmup let the event arena reach its
	// high-water mark, after which the measured window allocates nothing.
	steadyCfg := core.WarpedGates.Apply(config.GTX480())
	steadyKernel := kernels.MustBenchmark("hotspot").Scale(100)
	ns, allocs, err := sim.MeasureSteadyCycle(steadyCfg, steadyKernel, 10*16384, 100000)
	if err != nil {
		return err
	}
	rep.SteadyState.Bench = "hotspot"
	rep.SteadyState.Technique = core.WarpedGates.String()
	rep.SteadyState.NsPerCycle = ns
	rep.SteadyState.AllocsPerCycle = allocs

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("steady state: %.0f ns/cycle, %g allocs/cycle\n", ns, allocs)
	fmt.Printf("matrix: fast-forward %.0f ms, stepped %.0f ms, speedup %.2fx\n",
		rep.Totals.FastForwardMS, rep.Totals.SteppedMS, rep.Totals.Speedup)
	fmt.Printf("intra-run scaling (hotspot stepped, %d cores):", rep.GOMAXPROCS)
	for _, pt := range rep.IntraRunScaling {
		fmt.Printf(" w%d=%.2fx", pt.Workers, pt.Speedup)
	}
	fmt.Println()
	fmt.Printf("mem-banks scaling (hotspot stepped, %d workers):", banksWorkers)
	for _, pt := range rep.MemBanksScaling {
		fmt.Printf(" b%d=%.2fx", pt.Banks, pt.Speedup)
	}
	fmt.Println()
	fmt.Printf("makespan (%d jobs, %d job workers): static %.0f ms, adaptive %.0f ms, speedup %.2fx\n",
		rep.Makespan.Jobs, rep.Makespan.JobWorkers, rep.Makespan.StaticMS, rep.Makespan.AdaptiveMS, rep.Makespan.Speedup)
	fmt.Printf("wrote %s (%d cells)\n", *out, len(rep.Cells))
	if err := checkScalingFloor(&rep, *floor); err != nil {
		return err
	}
	return checkMakespanFloor(&rep, *makespanFloor)
}

// writeCalibration regenerates the committed cost-model calibration table by
// running every benchmark once at the fixed calibration point and writing the
// canonical encoding. Running it against internal/core/costdata.json must
// produce no diff: the table is deterministic, so a diff means the simulator's
// cycle counts moved and the embedded table is stale.
func writeCalibration(path string) error {
	t, err := core.CalibrateCostTable()
	if err != nil {
		return err
	}
	data, err := t.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks at sms=%d scale=%g)\n",
		path, len(t.Cells), core.CalCostSMS, core.CalCostScale)
	return nil
}

// checkScalingFloor enforces the -floor gate: the 2-worker point of the
// intra-run scaling curve must reach the given speedup. On a host where the
// runtime cannot schedule two workers in parallel the curve measures only
// barrier overhead, so the gate logs the skip reason to stderr and returns an
// error wrapping errFloorSkipped — exit code 3, distinct from both a pass (0)
// and a real failure (1) — rather than fail on a machine that cannot exhibit
// scaling at all. WARPEDGATES_FORCE_FLOOR=1 disables the self-skip: a CI job
// that knows it runs multi-core sets it so a misdetected GOMAXPROCS can only
// fail loudly (exit 1), never skip silently (exit 3 reads as a warning there).
func checkScalingFloor(rep *benchReport, floor float64) error {
	if floor <= 0 {
		return nil
	}
	if rep.GOMAXPROCS < 2 {
		if os.Getenv("WARPEDGATES_FORCE_FLOOR") == "1" {
			fmt.Fprintf(os.Stderr, "bench: WARPEDGATES_FORCE_FLOOR=1 — enforcing -floor %.2f despite GOMAXPROCS=%d\n",
				floor, rep.GOMAXPROCS)
		} else {
			fmt.Fprintf(os.Stderr, "bench: -floor %.2f skipped — GOMAXPROCS=%d cannot run workers in parallel\n",
				floor, rep.GOMAXPROCS)
			return fmt.Errorf("%w: GOMAXPROCS=%d < 2, cannot measure parallel scaling", errFloorSkipped, rep.GOMAXPROCS)
		}
	}
	for _, pt := range rep.IntraRunScaling {
		if pt.Workers != 2 {
			continue
		}
		if pt.Speedup < floor {
			return fmt.Errorf("bench: intra-run speedup at 2 workers is %.2fx, below the %.2fx floor", pt.Speedup, floor)
		}
		fmt.Printf("floor gate: w2=%.2fx >= %.2fx\n", pt.Speedup, floor)
		return nil
	}
	return fmt.Errorf("bench: -floor %.2f set but the scaling curve has no 2-worker point", floor)
}

// checkMakespanFloor enforces the -makespan-floor gate: adaptive scheduling
// must beat the static split on full-matrix wall time by the given factor.
// The 20% target assumes enough cores for both job-level parallelism and a
// tail to reallocate, so the gate self-scales: below 2 cores it skips with
// errFloorSkipped (exit 3) exactly like the scaling-floor gate, at 2-3 cores
// it reports the measurement without enforcing (the tail is too short to
// guarantee the target), and at >=4 cores it fails hard below the floor.
// WARPEDGATES_FORCE_FLOOR=1 promotes every tier to hard enforcement.
func checkMakespanFloor(rep *benchReport, floor float64) error {
	if floor <= 0 {
		return nil
	}
	forced := os.Getenv("WARPEDGATES_FORCE_FLOOR") == "1"
	m := rep.Makespan
	if rep.GOMAXPROCS < 2 && !forced {
		fmt.Fprintf(os.Stderr, "bench: -makespan-floor %.2f skipped — GOMAXPROCS=%d cannot run jobs in parallel\n",
			floor, rep.GOMAXPROCS)
		return fmt.Errorf("%w: GOMAXPROCS=%d < 2, cannot measure makespan scheduling", errFloorSkipped, rep.GOMAXPROCS)
	}
	if m.StaticMS <= 0 || m.AdaptiveMS <= 0 {
		return fmt.Errorf("bench: -makespan-floor %.2f set but the makespan section was not measured", floor)
	}
	if rep.GOMAXPROCS < 4 && !forced {
		fmt.Printf("makespan gate: %.2fx at %d cores — informational only, enforced at >=4 cores (floor %.2fx)\n",
			m.Speedup, rep.GOMAXPROCS, floor)
		return nil
	}
	if m.Speedup < floor {
		return fmt.Errorf("bench: adaptive makespan speedup is %.2fx, below the %.2fx floor (static %.0f ms, adaptive %.0f ms)",
			m.Speedup, floor, m.StaticMS, m.AdaptiveMS)
	}
	fmt.Printf("makespan gate: %.2fx >= %.2fx\n", m.Speedup, floor)
	return nil
}
