// Command warpedgates runs the Warped Gates reproduction: single benchmark
// simulations and full figure regeneration.
//
// Usage:
//
//	warpedgates list
//	    List benchmarks, techniques and figures.
//
//	warpedgates run -bench hotspot -tech WarpedGates [-sms 15] [-scale 1.0]
//	    Simulate one benchmark under one technique and print the report.
//
//	warpedgates figure -id fig9a [-scale 1.0] [-sms 15] [-j 8] [-csv DIR]
//	    Regenerate one paper figure (fig1b fig3 fig4 fig5a fig5b fig6 fig8a
//	    fig8b fig8c fig9a fig9b fig10 fig11a fig11b hw), one of the ablation
//	    studies (ablation-clusters ablation-maxhold ablation-idledetect
//	    ablation-scheduler ablation-aux), or "all".
//
//	warpedgates trace -bench hotspot -tech WarpedGates
//	    Render per-cycle ASCII waveforms of every gating domain.
//
//	warpedgates verify [-sms 15] [-scale 1.0] [-j 8] [-bench NAME] [-tech NAME]
//	    Run the benchmark x technique matrix with the cycle-level invariant
//	    checker attached and fail on any violation.
//
//	warpedgates bench [-sms 6] [-scale 0.25] [-out BENCH_sim.json]
//	    Time the benchmark x technique matrix (fast-forward on and off) and
//	    the steady-state per-cycle cost, writing the results as JSON.
//
//	warpedgates characterize
//	    Print the benchmark suite's workload characterization.
//
//	warpedgates compare
//	    Print paper-vs-measured tables for the headline results.
//
//	warpedgates sweep -benches hotspot,bfs -scales 1,2 -sample 1000/5000 -store DIR
//	    Expand a parameter grid into canonical jobs, deduplicate against the
//	    report store, run the remainder (optionally one -shard i/n of the
//	    sorted key space, optionally interval-sampled) and print aggregates.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/power"
	"warpedgates/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "figure":
		err = cmdFigure(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "benchcmp":
		err = cmdBenchcmp(os.Args[2:])
	case "characterize":
		err = cmdCharacterize(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "store":
		err = cmdStore(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "warpedgates: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "warpedgates: %v\n", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps a command error to the process exit status. The bench floor
// gate's self-skip gets its own code so automation can tell "measured and
// passed" (0) from "host cannot measure" (3) from a real failure (1).
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errFloorSkipped):
		return 3
	default:
		return 1
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  warpedgates list
  warpedgates run -bench <name> -tech <technique> [-sms N] [-scale F] [-j N] [-workers N] [-sched MODE] [-store DIR]
  warpedgates figure -id <figure|all> [-sms N] [-scale F] [-j N] [-workers N] [-sched MODE] [-csv DIR] [-store DIR] [-v]
  warpedgates trace -bench <name> -tech <technique> [-from C] [-cycles N]
  warpedgates verify [-sms N] [-scale F] [-j N] [-workers N] [-sched MODE] [-bench <name>] [-tech <technique>] [-store DIR] [-v]
  warpedgates bench [-sms N] [-scale F] [-workers N] [-out BENCH_sim.json] [-store DIR]
                    [-floor X] [-makespan-floor X] [-calibrate FILE]
  warpedgates benchcmp OLD.json NEW.json
  warpedgates benchcmp -history DIR [-regress PCT]
  warpedgates characterize [-sms N] [-scale F] [-j N] [-workers N] [-store DIR]
  warpedgates compare [-sms N] [-scale F] [-j N] [-workers N] [-store DIR]
  warpedgates sweep [-spec FILE] [-benches a,b] [-techniques a,b] [-sms 4,8]
                    [-scales 1,2] [-seeds 0,1] [-idle-detects N,M] [-break-evens N,M]
                    [-wakeup-delays N,M] [-sample detail/period] [-shard i/n]
                    [-j N] [-store DIR] [-out REPORT.json] [-n] [-v]
  warpedgates store verify -store DIR

-j bounds the simulation worker pool (0, the default, uses every core);
figure regeneration is deterministic at any -j. -workers sets how many
goroutines step SMs inside each simulation (default 1, or the
WARPEDGATES_WORKERS environment variable; results are bit-identical at any
value — the runner shrinks its -j budget so jobs x workers stays within -j).
-sched picks the job-level schedule: adaptive (default) orders jobs by the
calibrated cost model, longest first, and grants drained workers' budget to
still-running simulations; static keeps submission order and a fixed split.
Both produce byte-identical reports — scheduling is a wall-clock knob.
`+"`bench -calibrate FILE`"+` regenerates the committed cost table
(internal/core/costdata.json) and must produce no diff on an unchanged
simulator. bench -makespan-floor gates adaptive-vs-static matrix wall time
(enforced at >=4 cores, informational at 2-3, exit 3 on single-core).
-store DIR persists every report in a crash-safe checksummed on-disk store;
later runs at any -j/-workers serve byte-identical results from it without
simulating. `+"`store verify`"+` scrubs a store (checksums every entry,
quarantines damage, sweeps crash debris) and exits non-zero on corruption.
trace stays on the serial engine: it renders a globally ordered event stream.
run, figure, verify and bench also accept -cpuprofile FILE and
-memprofile FILE for pprof output.

exit codes: 0 success; 1 error; 2 usage; 3 bench -floor gate skipped
(single-core host cannot measure parallel scaling).`)
}

// addWorkersFlag registers the shared -workers flag. Its default comes from
// the WARPEDGATES_WORKERS environment knob (mirroring the WARPEDGATES_J
// convention of the bench harness), falling back to 1 — the serial engine.
// Values above 1 select the phase-split parallel engine, which is
// bit-identical to serial at any worker count, so this is purely a
// wall-clock knob.
func addWorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", envWorkers(),
		"goroutines stepping SMs inside each simulation (1 = serial engine; identical results at any value)")
}

// addSchedFlag registers the shared -sched flag selecting the runner's job
// scheduling mode. Adaptive (the default) orders jobs longest-predicted-first
// by the calibrated cost model and hands drained workers' budget to
// still-running simulations as extra intra-run workers; static keeps
// submission order and a fixed split. Scheduling never changes results, so
// output is byte-identical either way.
func addSchedFlag(fs *flag.FlagSet) *string {
	return fs.String("sched", "adaptive",
		"job scheduling: adaptive (cost-model LPT + tail worker reallocation) or static (submission order, fixed split); identical output either way")
}

// envWorkers parses WARPEDGATES_WORKERS; unset, malformed or negative values
// mean the serial default.
func envWorkers() int {
	if v := os.Getenv("WARPEDGATES_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

func cmdList() error {
	fmt.Println("benchmarks:")
	for _, b := range kernels.BenchmarkNames {
		k := kernels.MustBenchmark(b)
		mix := k.Mix()
		fmt.Printf("  %-10s body=%3d iters=%2d warps/CTA=%d CTAs/SM=%d mix=[INT %.2f FP %.2f SFU %.2f LDST %.2f]\n",
			b, len(k.Body), k.Iterations, k.WarpsPerCTA, k.CTAsPerSM,
			mix[isa.INT], mix[isa.FP], mix[isa.SFU], mix[isa.LDST])
	}
	fmt.Println("techniques:")
	for _, t := range core.AllTechniques() {
		fmt.Printf("  %s\n", t)
	}
	fmt.Println("figures: fig1b fig3 fig4 fig5a fig5b fig6 fig8a fig8b fig8c fig9a fig9b fig10",
		"fig11a fig11b hw ablation-clusters ablation-maxhold ablation-idledetect",
		"ablation-scheduler ablation-aux all")
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	bench := fs.String("bench", "hotspot", "benchmark name")
	tech := fs.String("tech", "WarpedGates", "technique name")
	sms := fs.Int("sms", 15, "number of SMs")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	jobs := fs.Int("j", 0, "max concurrent simulations (0 = all cores)")
	workers := addWorkersFlag(fs)
	schedFlag := addSchedFlag(fs)
	storeDir := addStoreFlag(fs)
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	defer prof.stop()
	t, err := core.ParseTechnique(*tech)
	if err != nil {
		return err
	}
	sched, err := core.ParseSchedMode(*schedFlag)
	if err != nil {
		return err
	}
	cfg := config.GTX480()
	cfg.NumSMs = *sms
	cfg.IntraRunWorkers = *workers
	r := core.NewRunner(cfg)
	r.Scale = *scale
	r.Parallelism = *jobs
	r.Sched = sched
	st, err := attachStore(r, *storeDir)
	if err != nil {
		return err
	}
	defer reportStoreHealth(st)

	rep, err := r.Run(*bench, t)
	if err != nil {
		return err
	}
	model := power.Default(cfg.BreakEven)
	fmt.Println(rep)
	fmt.Printf("cycles: %d (hit MaxCycles: %v)\n", rep.Cycles, rep.RanOut)
	fmt.Printf("active warps: avg %.1f max %d\n", rep.ActiveWarpAvg, rep.ActiveWarpMax)
	fmt.Printf("L1 miss rate: %.3f\n", rep.L1MissRate)
	for _, c := range []isa.Class{isa.INT, isa.FP, isa.SFU, isa.LDST} {
		d := rep.Domains[c]
		bd := model.Analyze(rep, c)
		fmt.Printf("%-4s idle=%.3f comp=%.3f uncomp=%.3f gatings=%d wakeups=%d critical=%d staticSavings=%.3f\n",
			c, d.IdleFraction(), d.CompensatedFraction(), d.UncompensatedFraction(),
			d.GatingEvents, d.Wakeups, d.CriticalWakeups, bd.StaticSavings())
	}
	return nil
}

func cmdFigure(args []string) error {
	fs := flag.NewFlagSet("figure", flag.ExitOnError)
	id := fs.String("id", "all", "figure id or 'all'")
	sms := fs.Int("sms", 15, "number of SMs")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	jobs := fs.Int("j", 0, "max concurrent simulations (0 = all cores)")
	workers := addWorkersFlag(fs)
	schedFlag := addSchedFlag(fs)
	verbose := fs.Bool("v", false, "print progress")
	csvDir := fs.String("csv", "", "also write each figure as CSV into this directory")
	storeDir := addStoreFlag(fs)
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	defer prof.stop()
	sched, err := core.ParseSchedMode(*schedFlag)
	if err != nil {
		return err
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	cfg := config.GTX480()
	cfg.NumSMs = *sms
	cfg.IntraRunWorkers = *workers
	r := core.NewRunner(cfg)
	r.Scale = *scale
	r.Parallelism = *jobs
	r.Sched = sched
	st, err := attachStore(r, *storeDir)
	if err != nil {
		return err
	}
	defer reportStoreHealth(st)
	if *verbose {
		r.Progress = func(b string, c config.Config) {
			fmt.Fprintf(os.Stderr, "  simulating %s under %s/%s (idle=%d bet=%d wake=%d adaptive=%v)\n",
				b, c.Scheduler, c.Gating, c.IdleDetect, c.BreakEven, c.WakeupDelay, c.AdaptiveIdleDetect)
		}
	}

	want := strings.ToLower(*id)
	ran := false
	show := func(figID string, gen func() (*stats.Table, error)) error {
		if want != "all" && want != figID {
			return nil
		}
		ran = true
		out, err := gen()
		if err != nil {
			return fmt.Errorf("%s: %w", figID, err)
		}
		fmt.Println(out)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, figID+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := out.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		return nil
	}

	figures := []struct {
		id  string
		gen func() (*stats.Table, error)
	}{
		{"fig1b", func() (*stats.Table, error) {
			f, err := core.RunFig1b(r)
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"fig3", func() (*stats.Table, error) {
			f, err := core.RunFig3(r, "hotspot")
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"fig4", func() (*stats.Table, error) {
			f, err := core.RunFig4()
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"fig5a", func() (*stats.Table, error) {
			f, err := core.RunFig5a(r)
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"fig5b", func() (*stats.Table, error) {
			f, err := core.RunFig5b(r)
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"fig6", func() (*stats.Table, error) {
			f, err := core.RunFig6(r, 0, 10)
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"fig8a", func() (*stats.Table, error) {
			f, err := core.RunFig8(r)
			return tbl(f != nil, err, func() *stats.Table { return f.TableA })
		}},
		{"fig8b", func() (*stats.Table, error) {
			f, err := core.RunFig8(r)
			return tbl(f != nil, err, func() *stats.Table { return f.TableB })
		}},
		{"fig8c", func() (*stats.Table, error) {
			f, err := core.RunFig8(r)
			return tbl(f != nil, err, func() *stats.Table { return f.TableC })
		}},
		{"fig9a", func() (*stats.Table, error) {
			f, err := core.RunFig9(r, isa.INT)
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"fig9b", func() (*stats.Table, error) {
			f, err := core.RunFig9(r, isa.FP)
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"fig10", func() (*stats.Table, error) {
			f, err := core.RunFig10(r)
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"fig11a", func() (*stats.Table, error) {
			f, err := core.RunFig11BET(r, []int{9, 14, 19})
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"fig11b", func() (*stats.Table, error) {
			f, err := core.RunFig11Wakeup(r, []int{3, 6, 9})
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"hw", func() (*stats.Table, error) {
			f := core.RunHWOverhead(cfg.NumSPClusters)
			return f.Table, nil
		}},
		{"ablation-clusters", func() (*stats.Table, error) {
			f, err := core.RunAblationClusters(r, []int{2, 4, 6})
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"ablation-maxhold", func() (*stats.Table, error) {
			f, err := core.RunAblationMaxHold(r, []int{0, 16, 64, 256})
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"ablation-idledetect", func() (*stats.Table, error) {
			f, err := core.RunAblationIdleDetect(r, []int{2, 5, 10, 20})
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"ablation-scheduler", func() (*stats.Table, error) {
			f, err := core.RunAblationScheduler(r)
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
		{"ablation-aux", func() (*stats.Table, error) {
			f, err := core.RunAblationAuxBlackout(r)
			return tbl(f != nil, err, func() *stats.Table { return f.Table })
		}},
	}
	for _, f := range figures {
		if err := show(f.id, f.gen); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown figure id %q", *id)
	}
	return nil
}

// tbl adapts a (result, error) pair to the (Stringer, error) the dispatcher
// wants, without dereferencing a nil result on error.
func tbl(ok bool, err error, get func() *stats.Table) (*stats.Table, error) {
	if err != nil || !ok {
		return nil, err
	}
	return get(), nil
}
