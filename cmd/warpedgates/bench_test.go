package main

import (
	"errors"
	"fmt"
	"testing"
)

// floorReport builds a benchReport with the given GOMAXPROCS and an optional
// 2-worker scaling point.
func floorReport(gomaxprocs int, w2Speedup float64, withW2 bool) *benchReport {
	rep := &benchReport{GOMAXPROCS: gomaxprocs}
	rep.IntraRunScaling = []scalingPoint{{Workers: 1, Speedup: 1.0}}
	if withW2 {
		rep.IntraRunScaling = append(rep.IntraRunScaling, scalingPoint{Workers: 2, Speedup: w2Speedup})
	}
	rep.IntraRunScaling = append(rep.IntraRunScaling, scalingPoint{Workers: 4, Speedup: 2.1})
	return rep
}

// TestFloorGateExitCodes pins the three-way exit-code contract of the bench
// -floor gate end to end through checkScalingFloor and exitCode: 0 when the
// gate measured and passed, 1 when it measured and failed (or could not find
// its measurement), 3 when the host cannot measure parallel scaling at all.
// CI keys off these codes (3 is a warning, not a failure), so the mapping is
// load-bearing.
func TestFloorGateExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		rep      *benchReport
		floor    float64
		wantExit int
		wantSkip bool // error wraps errFloorSkipped
	}{
		{
			name:     "no floor requested passes",
			rep:      floorReport(8, 0.5, true),
			floor:    0,
			wantExit: 0,
		},
		{
			name:     "w2 at the floor passes",
			rep:      floorReport(8, 1.10, true),
			floor:    1.10,
			wantExit: 0,
		},
		{
			name:     "w2 above the floor passes",
			rep:      floorReport(8, 1.45, true),
			floor:    1.10,
			wantExit: 0,
		},
		{
			name:     "w2 below the floor fails",
			rep:      floorReport(8, 0.95, true),
			floor:    1.10,
			wantExit: 1,
		},
		{
			name:     "single-core host self-skips on exit 3",
			rep:      floorReport(1, 0, false),
			floor:    1.10,
			wantExit: 3,
			wantSkip: true,
		},
		{
			name:     "missing 2-worker point is a real failure not a skip",
			rep:      floorReport(8, 0, false),
			floor:    1.10,
			wantExit: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkScalingFloor(tc.rep, tc.floor)
			if got := exitCode(err); got != tc.wantExit {
				t.Fatalf("exitCode(%v) = %d, want %d", err, got, tc.wantExit)
			}
			if got := errors.Is(err, errFloorSkipped); got != tc.wantSkip {
				t.Fatalf("errors.Is(err, errFloorSkipped) = %t, want %t (err: %v)", got, tc.wantSkip, err)
			}
		})
	}
}

// TestFloorForceOverride pins WARPEDGATES_FORCE_FLOOR=1: the single-core
// self-skip is disabled, so the gate measures and passes or fails for real —
// a multi-core CI job whose GOMAXPROCS is misdetected can never exit 3.
func TestFloorForceOverride(t *testing.T) {
	t.Setenv("WARPEDGATES_FORCE_FLOOR", "1")
	// Single-core host, w2 below the floor: without the override this skips
	// with exit 3; forced, it is a real failure.
	err := checkScalingFloor(floorReport(1, 0.70, true), 1.10)
	if got := exitCode(err); got != 1 {
		t.Fatalf("forced floor below threshold: exitCode(%v) = %d, want 1", err, got)
	}
	if errors.Is(err, errFloorSkipped) {
		t.Fatalf("forced floor must not skip, got %v", err)
	}
	// Single-core host whose curve nonetheless clears the floor passes.
	if err := checkScalingFloor(floorReport(1, 1.30, true), 1.10); err != nil {
		t.Fatalf("forced floor above threshold: %v", err)
	}
	// Any value other than "1" keeps the self-skip.
	t.Setenv("WARPEDGATES_FORCE_FLOOR", "0")
	err = checkScalingFloor(floorReport(1, 0.70, true), 1.10)
	if !errors.Is(err, errFloorSkipped) {
		t.Fatalf("FORCE_FLOOR=0 should keep the self-skip, got %v", err)
	}
}

// TestExitCode pins the generic error → exit status mapping main uses.
func TestExitCode(t *testing.T) {
	if got := exitCode(nil); got != 0 {
		t.Fatalf("exitCode(nil) = %d, want 0", got)
	}
	if got := exitCode(errors.New("boom")); got != 1 {
		t.Fatalf("exitCode(plain error) = %d, want 1", got)
	}
	if got := exitCode(errFloorSkipped); got != 3 {
		t.Fatalf("exitCode(errFloorSkipped) = %d, want 3", got)
	}
	wrapped := fmt.Errorf("%w: GOMAXPROCS=1 < 2, cannot measure parallel scaling", errFloorSkipped)
	if got := exitCode(wrapped); got != 3 {
		t.Fatalf("exitCode(wrapped errFloorSkipped) = %d, want 3", got)
	}
}
