// Command smoke is a development calibration harness: it prints the headline
// aggregates of the paper's result figures (Fig. 9 suite averages and the
// Fig. 10 performance geomeans) at a configurable machine size and workload
// scale, so model tuning can iterate quickly before a full 15-SM run.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/power"
	"warpedgates/internal/store"
)

func main() {
	sms := flag.Int("sms", 6, "number of SMs")
	scale := flag.Float64("scale", 0.6, "workload scale")
	jobs := flag.Int("j", 0, "max concurrent simulations (0 = all cores)")
	workers := flag.Int("workers", 1,
		"goroutines stepping SMs inside each simulation (1 = serial engine; identical results at any value)")
	perBench := flag.Bool("bench", false, "print per-benchmark rows")
	storeDir := flag.String("store", "", "durable report store directory (reports persist across processes; empty = disabled)")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		die(err)
		die(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			die(f.Close())
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			die(err)
			runtime.GC()
			die(pprof.Lookup("allocs").WriteTo(f, 0))
			die(f.Close())
		}()
	}

	cfg := config.GTX480()
	cfg.NumSMs = *sms
	cfg.IntraRunWorkers = *workers
	r := core.NewRunner(cfg)
	r.Scale = *scale
	r.Parallelism = *jobs
	if *storeDir != "" {
		s, err := store.Open(*storeDir)
		die(err)
		r.Store = s
		defer func() { fmt.Fprintf(os.Stderr, "store %s: %s\n", s.Dir(), s.Health()) }()
	}
	model := power.Default(cfg.BreakEven)

	techs := core.GatedTechniques()
	type agg struct {
		intSav, fpSav, perf []float64
	}
	sums := map[core.Technique]*agg{}
	for _, t := range techs {
		sums[t] = &agg{}
	}

	t0 := time.Now()
	// Warm the cache on the worker pool; the aggregation loop below then
	// runs entirely against cache hits, keeping its output bytes identical
	// to the old serial path.
	all := append([]core.Technique{core.Baseline}, techs...)
	jobList := make([]core.Job, 0, len(kernels.BenchmarkNames)*len(all))
	for _, b := range kernels.BenchmarkNames {
		for _, t := range all {
			jobList = append(jobList, core.Job{Bench: b, Cfg: t.Apply(cfg)})
		}
	}
	die(r.Prefetch(jobList))
	for _, b := range kernels.BenchmarkNames {
		base, err := r.Run(b, core.Baseline)
		die(err)
		if *perBench {
			fmt.Printf("%-10s cycles=%7d avgW=%5.1f maxW=%2d intIdle=%.2f fpIdle=%.2f\n",
				b, base.Cycles, base.ActiveWarpAvg, base.ActiveWarpMax,
				base.Domains[isa.INT].IdleFraction(), base.Domains[isa.FP].IdleFraction())
		}
		for _, t := range techs {
			rep, err := r.Run(b, t)
			die(err)
			a := sums[t]
			a.intSav = append(a.intSav, model.AnalyzeAgainst(rep, base, isa.INT).StaticSavings())
			if !kernels.IntegerOnly(b) {
				a.fpSav = append(a.fpSav, model.AnalyzeAgainst(rep, base, isa.FP).StaticSavings())
			}
			a.perf = append(a.perf, float64(base.Cycles)/float64(rep.Cycles))
		}
	}
	fmt.Printf("elapsed %v (sms=%d scale=%.2f)\n", time.Since(t0).Round(time.Second), *sms, *scale)
	fmt.Printf("%-14s %8s %8s %8s   (paper: ConvPG .201/.314/.99, Naive .278/.411/.95, Coord .315/.456/.98, WG .316/.465/.99)\n",
		"technique", "intSav", "fpSav", "perf")
	for _, t := range techs {
		a := sums[t]
		fmt.Printf("%-14s %8.3f %8.3f %8.3f\n", t, mean(a.intSav), mean(a.fpSav), geomean(a.perf))
	}
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		if v <= 0 {
			v = 1e-12
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
