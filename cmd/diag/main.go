// Command diag runs ad-hoc scheduler/gating combinations on selected
// benchmarks and prints cycle counts and idle structure, for development
// diagnosis (e.g. isolating the scheduling cost of GATES from gating).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"warpedgates/internal/config"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
)

func main() {
	sms := flag.Int("sms", 6, "number of SMs")
	scale := flag.Float64("scale", 0.6, "workload scale")
	benches := flag.String("bench", "lavaMD,backprop,sgemm,hotspot,nw,bfs", "comma-separated benchmarks")
	flag.Parse()

	combos := []struct {
		name  string
		sched config.SchedulerKind
		gate  config.GatingKind
	}{
		{"TwoLevel/None", config.SchedTwoLevel, config.GateNone},
		{"GATES/None", config.SchedGATES, config.GateNone},
		{"TwoLevel/Conv", config.SchedTwoLevel, config.GateConventional},
		{"GATES/Conv", config.SchedGATES, config.GateConventional},
	}

	for _, b := range strings.Split(*benches, ",") {
		k, err := kernels.Benchmark(b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		k = k.Scale(*scale)
		var baseCycles int64
		for _, cb := range combos {
			cfg := config.GTX480()
			cfg.NumSMs = *sms
			cfg.Scheduler = cb.sched
			cfg.Gating = cb.gate
			gpu, err := sim.NewGPU(cfg, k)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rep := gpu.Run()
			if baseCycles == 0 {
				baseCycles = rep.Cycles
			}
			di := rep.Domains[isa.INT]
			df := rep.Domains[isa.FP]
			r1, r2, r3 := di.IdlePeriods.Regions3(cfg.IdleDetect, cfg.BreakEven)
			fmt.Printf("%-10s %-14s cyc=%7d perf=%.3f intIdle=%.2f fpIdle=%.2f intRegions=%.2f/%.2f/%.2f gat=%d wak=%d neg=%d memStall=%d gateStall=%d\n",
				b, cb.name, rep.Cycles, float64(baseCycles)/float64(rep.Cycles),
				di.IdleFraction(), df.IdleFraction(), r1, r2, r3,
				di.GatingEvents, di.Wakeups, di.NegativeEvents,
				rep.IssueStallsMem, rep.IssueStallsGate)
		}
		fmt.Println()
	}
}
