// Command warpedgatesd is the long-running simulation service: an HTTP/JSON
// front-end over the experiment runner and the durable report store.
//
//	warpedgatesd -addr :8080 -store /var/lib/warpedgates
//
// Endpoints (see README "Running the service" for request/response shapes):
//
//	POST /v1/jobs          submit a benchmark × technique job
//	GET  /v1/jobs/{id}     poll status; Accept: text/event-stream streams it
//	POST /v1/sweeps        submit a declarative parameter-grid sweep
//	GET  /v1/sweeps/{id}   poll aggregate and per-cell sweep status
//	GET  /v1/reports/{id}  fetch a finished report payload
//	GET  /v1/healthz       liveness (503 while draining)
//	GET  /v1/statusz       queue/job/store counters
//
// On SIGINT/SIGTERM the server drains gracefully: it stops admitting,
// finishes (or after -drain-grace cancels) in-flight jobs, and exits after
// printing the store's health counters. Exit codes: 0 clean shutdown
// (including a forced drain), 1 startup or serve error, 2 flag usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/serve"
	"warpedgates/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "warpedgatesd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "", "durable report store directory (empty = in-memory caching only)")
	sms := flag.Int("sms", 15, "base machine SM count (requests may override per job)")
	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = all cores)")
	queue := flag.Int("queue", 64, "admission queue depth; a full queue answers 429")
	quotaRate := flag.Float64("quota-rate", 5, "sustained per-client submissions/second (negative disables quotas)")
	quotaBurst := flag.Int("quota-burst", 10, "per-client submission burst (negative disables quotas)")
	deadline := flag.Duration("deadline", 0, "default per-job deadline (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 30*time.Minute, "clamp for requested per-job deadlines (0 = no clamp)")
	maxWall := flag.Duration("max-wall", time.Hour, "runner watchdog backstop per simulation (0 = none)")
	maxCached := flag.Int("max-cached", 256, "in-memory reports retained per workload scale (LRU)")
	maxSweepCells := flag.Int("max-sweep-cells", 4096, "largest grid one sweep submission may expand to")
	workers := flag.Int("workers", 1, "goroutines stepping SMs inside each simulation (results identical at any value)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long a drain waits for in-flight jobs before canceling them")
	flag.Parse()

	base := config.GTX480()
	base.NumSMs = *sms

	opts := serve.Options{
		Base:             base,
		Workers:          *jobs,
		QueueDepth:       *queue,
		QuotaRate:        *quotaRate,
		QuotaBurst:       *quotaBurst,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		MaxWallTime:      *maxWall,
		MaxCachedReports: *maxCached,
		MaxSweepCells:    *maxSweepCells,
		IntraRunWorkers:  *workers,
	}
	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir); err != nil {
			return err
		}
		opts.Store = st
		defer func() { log.Printf("store %s: %s", st.Dir(), st.Health()) }()
	}
	srv, err := serve.NewServer(opts)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	log.Printf("serving on %s (store=%q jobs=%d queue=%d)", ln.Addr(), *storeDir, opts.Workers, *queue)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, then let queued and
	// running jobs finish (or cancel them once the grace period expires),
	// then shut the HTTP side down so status pollers can watch the drain.
	log.Printf("signal received; draining (grace %s)", *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("drain forced: canceled in-flight jobs after %s", *drainGrace)
	} else {
		log.Printf("drained cleanly")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
