module warpedgates

go 1.22
