package sched

import (
	"fmt"
	"testing"

	"warpedgates/internal/isa"
)

// TestGATESAdvanceIdleMatchesUpdateLoop checks the closed-form priority
// advance against per-call UpdatePriority across every rule combination that
// can be live during an idle stretch (all RDY counters zero): the one-shot
// drain swap, the dead blackout rule, MaxHold oscillation from every starting
// hold value, and the no-rule case.
func TestGATESAdvanceIdleMatchesUpdateLoop(t *testing.T) {
	actvCases := [][isa.NumClasses]int{
		{isa.INT: 0, isa.FP: 0},
		{isa.INT: 3, isa.FP: 0},
		{isa.INT: 0, isa.FP: 2},
		{isa.INT: 3, isa.FP: 2},
	}
	for _, maxHold := range []int{0, 1, 3, 7} {
		for _, preCalls := range []int{0, 1, 2, 5, 9} {
			for _, actv := range actvCases {
				for _, n := range []int64{1, 2, 3, 7, 8, 100, 99999} {
					st := &SMState{ACTV: actv, NumWarps: 48}
					batched := NewGATES()
					batched.MaxHold = maxHold
					stepped := NewGATES()
					stepped.MaxHold = maxHold
					// Shared history: some calls under a busy state so hold
					// and orientation start away from their zero values.
					busy := &SMState{ACTV: [isa.NumClasses]int{isa.INT: 1, isa.FP: 1}, NumWarps: 48}
					for i := 0; i < preCalls; i++ {
						batched.UpdatePriority(busy)
						stepped.UpdatePriority(busy)
					}

					batched.AdvanceIdle(n, st)
					for i := int64(0); i < n; i++ {
						stepped.UpdatePriority(st)
					}
					name := fmt.Sprintf("maxhold=%d pre=%d actv=%v n=%d", maxHold, preCalls, actv, n)
					if batched.HighPriority() != stepped.HighPriority() {
						t.Fatalf("%s: priority %v != %v", name, batched.HighPriority(), stepped.HighPriority())
					}
					if batched.Switches() != stepped.Switches() {
						t.Fatalf("%s: switches %d != %d", name, batched.Switches(), stepped.Switches())
					}
					if batched.hold != stepped.hold {
						t.Fatalf("%s: hold %d != %d", name, batched.hold, stepped.hold)
					}
				}
			}
		}
	}
}
