package sched

import (
	"testing"

	"warpedgates/internal/isa"
)

// benchCands builds a mixed 24-candidate list.
func benchCands() []Candidate {
	out := make([]Candidate, 24)
	for i := range out {
		out[i] = Candidate{WarpIdx: i * 2, Class: isa.Class(i % 4)}
	}
	return out
}

func BenchmarkTwoLevelArrange(b *testing.B) {
	p := NewTwoLevel()
	st := &SMState{NumWarps: 48}
	cands := benchCands()
	buf := make([]Candidate, len(cands))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, cands)
		p.Arrange(buf, st)
		p.OnIssue(buf[0])
	}
}

func BenchmarkGATESArrange(b *testing.B) {
	g := NewGATES()
	st := &SMState{NumWarps: 48}
	st.ACTV[isa.INT] = 6
	st.ACTV[isa.FP] = 6
	cands := benchCands()
	buf := make([]Candidate, len(cands))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.UpdatePriority(st)
		copy(buf, cands)
		g.Arrange(buf, st)
		g.OnIssue(buf[0])
	}
}
