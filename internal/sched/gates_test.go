package sched

import (
	"testing"
	"testing/quick"

	"warpedgates/internal/isa"
)

func TestGATESInitialPriorityIsINT(t *testing.T) {
	g := NewGATES()
	if g.HighPriority() != isa.INT {
		t.Fatalf("initial high priority = %s, want INT (paper §4.1)", g.HighPriority())
	}
}

func TestGATESOrdering(t *testing.T) {
	g := NewGATES()
	st := &SMState{NumWarps: 16}
	cands := []Candidate{
		cand(0, isa.FP), cand(1, isa.SFU), cand(2, isa.LDST), cand(3, isa.INT), cand(4, isa.FP),
	}
	g.Arrange(cands, st)
	// Expected rank order with INT high: INT, LDST, SFU, FP.
	wantClasses := []isa.Class{isa.INT, isa.LDST, isa.SFU, isa.FP, isa.FP}
	for i, c := range cands {
		if c.Class != wantClasses[i] {
			t.Fatalf("position %d: got %s, want %s (order %v)", i, c.Class, wantClasses[i], cands)
		}
	}
}

func TestGATESPrioritySwitchOnDrain(t *testing.T) {
	g := NewGATES()
	st := &SMState{NumWarps: 16}
	st.ACTV[isa.INT] = 0
	st.ACTV[isa.FP] = 3
	g.UpdatePriority(st)
	if g.HighPriority() != isa.FP {
		t.Fatal("priority did not switch when INT subset drained")
	}
	// And back.
	st.ACTV[isa.INT] = 2
	st.ACTV[isa.FP] = 0
	g.UpdatePriority(st)
	if g.HighPriority() != isa.INT {
		t.Fatal("priority did not switch back")
	}
	if g.Switches() != 2 {
		t.Fatalf("switches = %d, want 2", g.Switches())
	}
}

func TestGATESNoSwitchWhenBothEmpty(t *testing.T) {
	g := NewGATES()
	st := &SMState{NumWarps: 16}
	g.UpdatePriority(st) // ACTV all zero: hold
	if g.HighPriority() != isa.INT {
		t.Fatal("switched with empty subsets")
	}
}

func TestGATESBlackoutSwitch(t *testing.T) {
	// §5: switch priority when every cluster of the highest type is in
	// blackout and the other type has ready work.
	g := NewGATES()
	st := &SMState{NumWarps: 16}
	st.ACTV[isa.INT] = 4
	st.ACTV[isa.FP] = 4
	st.RDY[isa.FP] = 2
	st.AllBlackout[isa.INT] = true
	g.UpdatePriority(st)
	if g.HighPriority() != isa.FP {
		t.Fatal("priority did not switch when INT clusters blacked out")
	}
}

func TestGATESBlackoutSwitchNeedsReadyWork(t *testing.T) {
	g := NewGATES()
	st := &SMState{NumWarps: 16}
	st.ACTV[isa.INT] = 4
	st.AllBlackout[isa.INT] = true
	st.RDY[isa.FP] = 0
	g.UpdatePriority(st)
	if g.HighPriority() != isa.INT {
		t.Fatal("switched although the other type has no ready warps")
	}
}

func TestGATESMaxHold(t *testing.T) {
	g := NewGATES()
	g.MaxHold = 3
	st := &SMState{NumWarps: 16}
	st.ACTV[isa.INT] = 4
	st.ACTV[isa.FP] = 4
	for i := 0; i < 3; i++ {
		g.UpdatePriority(st)
		if g.HighPriority() != isa.INT {
			t.Fatalf("switched early at %d", i)
		}
	}
	g.UpdatePriority(st)
	if g.HighPriority() != isa.FP {
		t.Fatal("MaxHold did not force a switch")
	}
}

func TestGATESRoundRobinWithinType(t *testing.T) {
	g := NewGATES()
	st := &SMState{NumWarps: 16}
	cands := []Candidate{cand(0, isa.INT), cand(4, isa.INT), cand(8, isa.INT)}
	g.Arrange(cands, st)
	g.OnIssue(cands[0]) // warp 0
	cands = []Candidate{cand(0, isa.INT), cand(4, isa.INT), cand(8, isa.INT)}
	g.Arrange(cands, st)
	if cands[0].WarpIdx != 4 {
		t.Fatalf("round-robin within type broken: %v", idxOrder(cands))
	}
}

func TestGATESSeparatesINTAndFPToEnds(t *testing.T) {
	// Property (paper §4.1): whatever the current priority, INT and FP are
	// never adjacent in the middle of the order — one of them is first and
	// the other last among the classes present.
	f := func(classRaw []uint8, flip bool) bool {
		g := NewGATES()
		if flip {
			st := &SMState{NumWarps: 64}
			st.ACTV[isa.FP] = 1 // force a switch to FP-high
			g.UpdatePriority(st)
		}
		var cands []Candidate
		for i, cr := range classRaw {
			cands = append(cands, cand(i, isa.Class(cr%4)))
		}
		st := &SMState{NumWarps: 64}
		g.Arrange(cands, st)
		hi := g.HighPriority()
		lo := isa.FP
		if hi == isa.FP {
			lo = isa.INT
		}
		// After the first lo-class candidate, only lo-class may follow.
		seenLo := false
		for _, c := range cands {
			if c.Class == lo {
				seenLo = true
			} else if seenLo {
				return false
			}
			_ = hi
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGATESArrangePreservesCandidateSet(t *testing.T) {
	// Property: Arrange permutes, never adds or drops candidates.
	f := func(classRaw []uint8) bool {
		g := NewGATES()
		var cands []Candidate
		for i, cr := range classRaw {
			cands = append(cands, cand(i, isa.Class(cr%4)))
		}
		before := map[int]isa.Class{}
		for _, c := range cands {
			before[c.WarpIdx] = c.Class
		}
		g.Arrange(cands, &SMState{NumWarps: 64})
		if len(cands) != len(before) {
			return false
		}
		for _, c := range cands {
			cls, ok := before[c.WarpIdx]
			if !ok || cls != c.Class {
				return false
			}
			delete(before, c.WarpIdx)
		}
		return len(before) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
