package sched

import "warpedgates/internal/isa"

// GATES is the paper's Gating-Aware Two-level Scheduler (§4). It keeps the
// two-level active/pending split but adds a dynamic type priority: one of
// INT/FP holds the highest priority while the other holds the lowest, with
// LDST then SFU fixed in between. The scheduler keeps issuing the
// highest-priority type while ready warps of that type exist, which clusters
// same-type instructions together and coalesces the execution-pipeline
// bubbles into long idle runs that power gating can exploit.
//
// Priority switches (paper §4.1, "dynamic priority switching"):
//   - when the highest type's active warp subset drains while the lowest
//     type's subset is non-empty, the two swap;
//   - with Coordinated Blackout, the priority also switches when every
//     cluster of the highest type is in blackout (§5);
//   - an optional MaxHold bound forces a swap after a fixed number of issue
//     cycles, the designer safety valve the paper mentions against
//     pathological starvation.
//
// One GATES instance is shared by both of an SM's scheduler slots, modeling
// the single per-SM priority register of the paper's Figure 7.
type GATES struct {
	highIsINT bool
	last      int
	// MaxHold, when positive, bounds how many consecutive cycles one type
	// may stay highest-priority. Zero disables the bound (paper default).
	MaxHold int
	hold    int

	switches uint64

	// buckets are reusable scratch space for Arrange's priority sort.
	buckets [4][]Candidate
}

// NewGATES returns a gating-aware scheduler with INT initially highest
// (paper §4.1: "We initialize INT as the highest priority").
func NewGATES() *GATES { return &GATES{highIsINT: true, last: -1} }

// UpdatePriority applies the dynamic priority-switch rules. The simulator
// calls it once per SM per cycle, before either scheduler slot arranges its
// candidates.
func (g *GATES) UpdatePriority(st *SMState) {
	hi, lo := g.highLow()
	swap := false
	switch {
	case st.ACTV[hi] == 0 && st.ACTV[lo] > 0:
		// The highest-priority subset drained: give the other type a turn.
		swap = true
	case st.AllBlackout[hi] && st.RDY[lo] > 0:
		// Both clusters of the highest type are blacked out; issuing it is
		// impossible for at least break-even time, so switch (§5).
		swap = true
	case g.MaxHold > 0 && g.hold >= g.MaxHold && st.ACTV[lo] > 0:
		// Designer-set starvation bound.
		swap = true
	}
	if swap {
		g.highIsINT = !g.highIsINT
		g.hold = 0
		g.switches++
		return
	}
	g.hold++
}

// AdvanceIdle applies n consecutive UpdatePriority calls in closed form, for
// stretches in which no warp is ready (every RDY counter zero) and the ACTV
// counters are frozen — the situation during the simulator's idle
// fast-forward. It is bit-identical to calling UpdatePriority(st) n times
// under those inputs. Three observations make the closed form possible:
// the drain rule (ACTV[hi]==0, ACTV[lo]>0) can fire at most once, because
// after the swap the new highest type has active warps; the blackout rule
// needs RDY[lo] > 0 and is therefore dead; and the MaxHold rule, when live,
// swaps with a fixed period of MaxHold+1 calls since both types keep active
// warps across the swaps.
func (g *GATES) AdvanceIdle(n int64, st *SMState) {
	if n <= 0 {
		return
	}
	hi, lo := g.highLow()
	if st.ACTV[hi] == 0 && st.ACTV[lo] > 0 {
		g.highIsINT = !g.highIsINT
		g.hold = 0
		g.switches++
		n--
		if n == 0 {
			return
		}
		hi, lo = g.highLow()
	}
	if g.MaxHold <= 0 || st.ACTV[lo] == 0 {
		// No rule can fire: every remaining call just extends the hold.
		g.hold += int(n)
		return
	}
	// ACTV[lo] > 0 here implies ACTV[hi] > 0 too (otherwise the drain rule
	// above would have fired), so the forced swaps oscillate indefinitely.
	// A swap consumes the call it fires on and resets hold to zero; the
	// first swap happens on the call entered with hold >= MaxHold.
	period := int64(g.MaxHold) + 1
	first := int64(g.MaxHold-g.hold) + 1
	if first < 1 {
		first = 1
	}
	if n < first {
		g.hold += int(n)
		return
	}
	swaps := 1 + (n-first)/period
	g.hold = int((n - first) % period)
	g.switches += uint64(swaps)
	if swaps%2 == 1 {
		g.highIsINT = !g.highIsINT
	}
}

// highLow returns the current highest- and lowest-priority ALU types.
func (g *GATES) highLow() (hi, lo isa.Class) {
	if g.highIsINT {
		return isa.INT, isa.FP
	}
	return isa.FP, isa.INT
}

// rank maps a class to its priority rank under the current ordering
// [hi, LDST, SFU, lo] (paper §4.1: memory first among the middle classes).
func (g *GATES) rank(c isa.Class) int {
	hi, _ := g.highLow()
	switch c {
	case hi:
		return 0
	case isa.LDST:
		return 1
	case isa.SFU:
		return 2
	default: // lo
		return 3
	}
}

// Arrange orders candidates by type priority, round-robin within a type.
func (g *GATES) Arrange(cands []Candidate, st *SMState) {
	if len(cands) < 2 {
		return
	}
	rotate(cands, g.last)
	// Bucket by rank, preserving the rotated order within each bucket.
	for r := range g.buckets {
		g.buckets[r] = g.buckets[r][:0]
	}
	for _, c := range cands {
		r := g.rank(c.Class)
		g.buckets[r] = append(g.buckets[r], c)
	}
	out := cands[:0]
	for r := range g.buckets {
		out = append(out, g.buckets[r]...)
	}
}

// OnIssue records the issued warp for round-robin fairness within a type.
func (g *GATES) OnIssue(c Candidate) { g.last = c.WarpIdx }

// Name returns "GATES".
func (g *GATES) Name() string { return "GATES" }

// HighPriority returns the class currently holding the highest priority.
func (g *GATES) HighPriority() isa.Class {
	hi, _ := g.highLow()
	return hi
}

// Switches returns how many dynamic priority switches have occurred.
func (g *GATES) Switches() uint64 { return g.switches }
