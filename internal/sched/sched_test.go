package sched

import (
	"testing"

	"warpedgates/internal/isa"
)

func cand(idx int, c isa.Class) Candidate { return Candidate{WarpIdx: idx, Class: c} }

func idxOrder(cands []Candidate) []int {
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.WarpIdx
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRotateBasic(t *testing.T) {
	cands := []Candidate{cand(0, isa.INT), cand(2, isa.INT), cand(5, isa.INT), cand(9, isa.INT)}
	rotate(cands, 2)
	if got := idxOrder(cands); !equalInts(got, []int{5, 9, 0, 2}) {
		t.Fatalf("rotate after 2 = %v", got)
	}
}

func TestRotateEdgeCases(t *testing.T) {
	// Pivot before all: unchanged.
	cands := []Candidate{cand(3, isa.INT), cand(7, isa.INT)}
	rotate(cands, -1)
	if got := idxOrder(cands); !equalInts(got, []int{3, 7}) {
		t.Fatalf("rotate(-1) = %v", got)
	}
	// Pivot after all: unchanged.
	rotate(cands, 100)
	if got := idxOrder(cands); !equalInts(got, []int{3, 7}) {
		t.Fatalf("rotate(100) = %v", got)
	}
	// Single element and empty are no-ops.
	one := []Candidate{cand(1, isa.INT)}
	rotate(one, 0)
	rotate(nil, 5)
}

func TestTwoLevelRoundRobin(t *testing.T) {
	p := NewTwoLevel()
	st := &SMState{NumWarps: 16}
	cands := []Candidate{cand(1, isa.INT), cand(4, isa.FP), cand(8, isa.LDST)}
	p.Arrange(cands, st)
	if cands[0].WarpIdx != 1 {
		t.Fatalf("fresh scheduler should start from lowest warp, got %d", cands[0].WarpIdx)
	}
	p.OnIssue(cands[0])
	cands2 := []Candidate{cand(1, isa.INT), cand(4, isa.FP), cand(8, isa.LDST)}
	p.Arrange(cands2, st)
	if cands2[0].WarpIdx != 4 {
		t.Fatalf("after issuing warp 1, next should be 4, got %d", cands2[0].WarpIdx)
	}
}

func TestTwoLevelIgnoresType(t *testing.T) {
	// The baseline greedily intersperses types: the arrangement depends only
	// on warp order, never on instruction class (the paper's §3 critique).
	p := NewTwoLevel()
	st := &SMState{NumWarps: 8}
	a := []Candidate{cand(0, isa.FP), cand(1, isa.INT), cand(2, isa.FP)}
	p.Arrange(a, st)
	if got := idxOrder(a); !equalInts(got, []int{0, 1, 2}) {
		t.Fatalf("two-level reordered by type: %v", got)
	}
}

func TestLRRBehavesLikeRoundRobin(t *testing.T) {
	p := NewLRR()
	st := &SMState{NumWarps: 8}
	cands := []Candidate{cand(0, isa.INT), cand(3, isa.FP)}
	p.Arrange(cands, st)
	p.OnIssue(cands[0])
	cands = []Candidate{cand(0, isa.INT), cand(3, isa.FP)}
	p.Arrange(cands, st)
	if cands[0].WarpIdx != 3 {
		t.Fatalf("LRR did not rotate: %v", idxOrder(cands))
	}
}

func TestPolicyNames(t *testing.T) {
	if NewLRR().Name() != "LRR" || NewTwoLevel().Name() != "TwoLevel" || NewGATES().Name() != "GATES" {
		t.Fatal("policy names wrong")
	}
}
