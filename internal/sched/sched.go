// Package sched implements the warp-scheduling policies the paper evaluates:
// a loose round-robin scheduler (the pre-two-level baseline), the two-level
// warp scheduler of Gebhart et al. [12] (the paper's baseline), and GATES,
// the gating-aware two-level scheduler that is the paper's first
// contribution.
//
// The simulator builds, once per scheduler slot per cycle, the list of ready
// candidates (warps in the active set whose next instruction has all operands
// ready); the policy orders that list, and the issue arbiter walks it until
// one candidate passes the structural and gating checks. Two policy instances
// per SM model Fermi's dual schedulers; GATES instances share per-SM priority
// state, matching the paper's single per-SM priority register.
package sched

import (
	"fmt"

	"warpedgates/internal/isa"
)

// Candidate is one issue-eligible warp: its index in the SM warp table and
// the execution-unit class of its next instruction.
type Candidate struct {
	WarpIdx int
	Class   isa.Class
}

// SMState is the per-cycle scheduler-visible SM state: the per-type counters
// the paper adds for GATES (ACTV and RDY, §6) plus blackout visibility for
// the priority-switch extension (§5).
type SMState struct {
	// ACTV counts warps in the active warp subset per type (incremented on
	// entry, decremented on exit — paper's INT_ACTV/FP_ACTV).
	ACTV [isa.NumClasses]int
	// RDY counts ready warps per type (paper's INT_RDY/FP_RDY/...).
	RDY [isa.NumClasses]int
	// AllBlackout reports that every cluster of a type is in blackout, so
	// issuing that type is impossible for at least the break-even time.
	AllBlackout [isa.NumClasses]bool
	// NumWarps is the SM warp-table size, for round-robin arithmetic.
	NumWarps int
}

// Policy orders issue candidates. Implementations may keep history (e.g.
// round-robin pointers) and are informed of every successful issue.
type Policy interface {
	// Arrange reorders cands in place into descending issue priority.
	Arrange(cands []Candidate, st *SMState)
	// OnIssue notifies the policy that the candidate was issued.
	OnIssue(c Candidate)
	// Name returns the policy's short name.
	Name() string
}

// rotate reorders cands so the first warp index strictly greater than pivot
// comes first, preserving relative order otherwise — the classic loose
// round-robin arrangement.
func rotate(cands []Candidate, pivot int) {
	if len(cands) < 2 {
		return
	}
	split := len(cands)
	for i, c := range cands {
		if c.WarpIdx > pivot {
			split = i
			break
		}
	}
	if split == 0 || split == len(cands) {
		return
	}
	// In-place block swap via three reversals — this runs once per scheduler
	// slot per cycle, so it must not allocate.
	reverse(cands[:split])
	reverse(cands[split:])
	reverse(cands)
}

// reverse flips cands in place.
func reverse(cands []Candidate) {
	for i, j := 0, len(cands)-1; i < j; i, j = i+1, j-1 {
		cands[i], cands[j] = cands[j], cands[i]
	}
}

// LRR is a loose round-robin scheduler with no type awareness; it serves as
// the simplest ablation baseline.
type LRR struct {
	last int
}

// NewLRR returns a loose round-robin policy.
func NewLRR() *LRR { return &LRR{last: -1} }

// Arrange rotates the candidates after the last-issued warp.
func (p *LRR) Arrange(cands []Candidate, st *SMState) { rotate(cands, p.last) }

// OnIssue records the issued warp for the next rotation.
func (p *LRR) OnIssue(c Candidate) { p.last = c.WarpIdx }

// Name returns "LRR".
func (p *LRR) Name() string { return "LRR" }

// TwoLevel is the paper's baseline scheduler: warps waiting on long-latency
// events live in a pending set (enforced by the simulator — they are never
// candidates), and ready warps issue greedily in loose round-robin order
// without regard to instruction type. The greedy interspersing of types is
// precisely what produces the short idle periods of paper Figure 3a.
type TwoLevel struct {
	last int
}

// NewTwoLevel returns a two-level baseline policy.
func NewTwoLevel() *TwoLevel { return &TwoLevel{last: -1} }

// Arrange rotates the ready candidates after the last-issued warp.
func (p *TwoLevel) Arrange(cands []Candidate, st *SMState) { rotate(cands, p.last) }

// OnIssue records the issued warp for the next rotation.
func (p *TwoLevel) OnIssue(c Candidate) { p.last = c.WarpIdx }

// Name returns "TwoLevel".
func (p *TwoLevel) Name() string { return "TwoLevel" }

// ensure interface conformance.
var (
	_ Policy = (*LRR)(nil)
	_ Policy = (*TwoLevel)(nil)
	_ Policy = (*GATES)(nil)
)

// fmt is used by priority debugging helpers.
var _ = fmt.Sprintf
