package paper

import "testing"

func TestHeadlineNumbers(t *testing.T) {
	// The two numbers in the paper's abstract.
	if Fig9aINTSavings["WarpedGates"] != 0.316 {
		t.Error("INT headline drifted from the abstract's 31.6%")
	}
	if Fig9bFPSavings["WarpedGates"] != 0.465 {
		t.Error("FP headline drifted from the abstract's 46.5%")
	}
}

func TestSeriesCoverAllTechniques(t *testing.T) {
	techs := []string{"ConvPG", "GATES", "NaiveBlackout", "CoordBlackout", "WarpedGates"}
	for _, series := range []TechValues{Fig9aINTSavings, Fig9bFPSavings, Fig10Performance} {
		for _, name := range techs {
			if _, ok := series[name]; !ok {
				t.Errorf("series missing technique %s", name)
			}
		}
	}
}

func TestValuesInRange(t *testing.T) {
	for name, v := range Fig9aINTSavings {
		if v <= 0 || v >= 1 {
			t.Errorf("Fig9a %s = %v out of (0,1)", name, v)
		}
	}
	for name, v := range Fig10Performance {
		if v <= 0.8 || v > 1 {
			t.Errorf("Fig10 %s = %v implausible", name, v)
		}
	}
	for name, r := range Fig6PearsonByBenchmark {
		if r < -1 || r > 1 {
			t.Errorf("Fig6 %s r = %v out of [-1,1]", name, r)
		}
	}
}

func TestFig3RegionsSumToOne(t *testing.T) {
	for tech, regions := range Fig3Hotspot {
		sum := regions[0] + regions[1] + regions[2]
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("Fig3 %s regions sum to %v", tech, sum)
		}
	}
}

func TestFig6CoversSuite(t *testing.T) {
	if len(Fig6PearsonByBenchmark) != 18 {
		t.Fatalf("Fig6 legend has %d benchmarks, want 18", len(Fig6PearsonByBenchmark))
	}
}

func TestOrderingsMatchPaperNarrative(t *testing.T) {
	// Internal consistency of the recorded values with the paper's claims.
	if !(Fig9aINTSavings["ConvPG"] < Fig9aINTSavings["NaiveBlackout"] &&
		Fig9aINTSavings["NaiveBlackout"] < Fig9aINTSavings["CoordBlackout"] &&
		Fig9aINTSavings["CoordBlackout"] <= Fig9aINTSavings["WarpedGates"]) {
		t.Error("Fig9a ordering inconsistent with the paper narrative")
	}
	if Fig10Performance["NaiveBlackout"] >= Fig10Performance["CoordBlackout"] {
		t.Error("Fig10 Naive should be slower than Coordinated")
	}
}
