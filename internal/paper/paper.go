// Package paper records the values the MICRO-46 paper reports, read from its
// text and figures, so the reproduction can print paper-vs-measured
// comparisons mechanically (the `warpedgates compare` subcommand and the
// EXPERIMENTS.md record). Values read off figure axes are approximate to the
// precision a careful reader can extract.
package paper

// TechValues holds one per-technique series of suite-level numbers, keyed by
// the paper's technique names (matching core.Technique.String()).
type TechValues map[string]float64

// Fig9aINTSavings is the paper's suite-average INT static energy savings
// (Figure 9a; the 20.1% and 31.6% endpoints are printed on the figure).
var Fig9aINTSavings = TechValues{
	"ConvPG":        0.201,
	"GATES":         0.215,
	"NaiveBlackout": 0.278,
	"CoordBlackout": 0.315,
	"WarpedGates":   0.316,
}

// Fig9bFPSavings is the paper's suite-average FP static energy savings
// (Figure 9b; 31.4% and 46.5% printed on the figure).
var Fig9bFPSavings = TechValues{
	"ConvPG":        0.314,
	"GATES":         0.352,
	"NaiveBlackout": 0.411,
	"CoordBlackout": 0.456,
	"WarpedGates":   0.465,
}

// Fig10Performance is the paper's geomean normalized performance (§7.4 text:
// ConvPG and GATES ≈1% overhead, Naive 5%, Coordinated 2%, Warped Gates
// "virtually the same performance overhead as conventional power gating").
var Fig10Performance = TechValues{
	"ConvPG":        0.99,
	"GATES":         0.99,
	"NaiveBlackout": 0.95,
	"CoordBlackout": 0.98,
	"WarpedGates":   0.99,
}

// Fig8bCompensated is the paper's mean share of cycles in the compensated
// state (§7.2 text: 20.9%, 22.6% and 33.5%).
var Fig8bCompensated = TechValues{
	"ConvPG":      0.209,
	"GATES":       0.226,
	"WarpedGates": 0.335,
}

// Fig8cWakeups is the paper's wakeup count normalized to ConvPG (§7.2 text:
// Coordinated Blackout −26%, Warped Gates −46%; GATES "increases the number
// of wakeups in some cases").
var Fig8cWakeups = TechValues{
	"GATES":         1.0,
	"CoordBlackout": 0.74,
	"WarpedGates":   0.54,
}

// Fig3Hotspot is the paper's idle-period region split for hotspot
// (printed on Figure 3): wasted / net-loss / net-savings fractions.
var Fig3Hotspot = map[string][3]float64{
	"ConvPG":        {0.834, 0.101, 0.065},
	"GATES":         {0.590, 0.221, 0.189},
	"NaiveBlackout": {0.543, 0.000, 0.457},
}

// Fig11aINTSavings is the paper's Figure 11a INT reading: at BET 19, ConvPG
// saves 17% and Warped Gates 33% (printed in §7.6); BET 9/14 read off axes.
var Fig11aINTSavings = map[string]map[int]float64{
	"ConvPG":      {9: 0.25, 14: 0.201, 19: 0.17},
	"WarpedGates": {9: 0.33, 14: 0.316, 19: 0.33},
}

// Fig11bINTSavings is the paper's Figure 11b INT reading: at wakeup 9,
// ConvPG saves 6% and Warped Gates 33% (§7.6 text).
var Fig11bINTSavings = map[string]map[int]float64{
	"ConvPG":      {3: 0.201, 6: 0.13, 9: 0.06},
	"WarpedGates": {3: 0.316, 6: 0.33, 9: 0.33},
}

// Fig6PearsonByBenchmark is the per-benchmark correlation coefficient the
// paper prints in Figure 6's legend.
var Fig6PearsonByBenchmark = map[string]float64{
	"heartwall": 0.99, "NN": 0.99, "backprop": 0.99, "hotspot": 0.99,
	"nw": 0.99, "btree": 0.99, "gaussian": 0.99, "bfs": 0.98,
	"srad": 0.97, "lbm": 0.96, "cutcp": 0.90, "LIB": 0.60,
	"kmeans": -0.30, "MUM": -0.28, "lavaMD": -0.24, "mri": 0.21,
	"WP": 0.24, "sgemm": 0.06,
}

// HardwareOverhead records §7.5's synthesized counter costs.
var HardwareOverhead = struct {
	AreaUM2, AreaFrac, DynWatts, DynFrac, LeakWatts, LeakFrac float64
}{
	AreaUM2: 1210.8, AreaFrac: 0.00003, DynWatts: 1.55e-3, DynFrac: 0.0008,
	LeakWatts: 1.21e-5, LeakFrac: 0.000007,
}

// Fig1b records the paper's Figure 1b energy splits (read off the stacked
// bars): fraction of the unit's no-gating energy that is static, and the
// ConvPG bars' overhead fractions.
var Fig1b = struct {
	BaselineINTStatic float64
	BaselineFPStatic  float64
	ConvPGINTStatic   float64
	ConvPGINTOverhead float64
	ConvPGFPStatic    float64
	ConvPGFPOverhead  float64
}{
	BaselineINTStatic: 0.50, BaselineFPStatic: 0.90,
	ConvPGINTStatic: 0.31, ConvPGINTOverhead: 0.11,
	ConvPGFPStatic: 0.61, ConvPGFPOverhead: 0.29,
}
