package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"warpedgates/internal/core"
	"warpedgates/internal/store"
	"warpedgates/internal/sweep"
)

// maxSweeps bounds the sweep registry; the oldest fully-terminal sweeps are
// pruned past it. Their cells' reports remain fetchable — report IDs are
// store addresses, exactly as for pruned jobs.
const maxSweeps = 64

// SweepRequest is the POST /v1/sweeps body: the declarative parameter grid
// (the same axes and JSON names as the CLI's sweep spec file), an optional
// shard of the sorted job-key space, and a per-cell deadline. The whole spec
// is validated at submission — a spec whose cells cannot all pass config
// validation is rejected up front rather than failing cell by cell.
type SweepRequest struct {
	sweep.Spec
	// ShardIndex/ShardCount select shard i of n over the sorted job-key
	// space; both zero means the whole grid.
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
	// DeadlineMS bounds each cell's wall-clock runtime, like a job's.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SweepStatus is the status JSON for one sweep — the GET /v1/sweeps/{id}
// body and the POST /v1/sweeps response.
type SweepStatus struct {
	ID string `json:"id"`
	// State aggregates the cells: queued until any cell starts, running
	// while any cell is live, then failed/canceled/done (in that priority)
	// once every cell is terminal.
	State  State         `json:"state"`
	Cells  int           `json:"cells"`
	Counts map[State]int `json:"counts"`
	// CellStatus lists every cell's job status in sorted-key order. Cell
	// jobs are ordinary jobs: pollable at /v1/jobs/{id}, reports at
	// /v1/reports/{id}.
	CellStatus []JobStatus `json:"cell_status"`
}

// sweepRun is one registry entry: the sweep's cells as jobs, in sorted-key
// order. Cells are held by pointer, so a sweep's view of its jobs survives
// registry pruning.
type sweepRun struct {
	id      string
	created time.Time
	cells   []*job
}

// status snapshots the sweep's aggregate and per-cell state.
func (sw *sweepRun) status() SweepStatus {
	st := SweepStatus{
		ID:         sw.id,
		Cells:      len(sw.cells),
		Counts:     make(map[State]int),
		CellStatus: make([]JobStatus, 0, len(sw.cells)),
	}
	for _, j := range sw.cells {
		cs := j.status()
		st.Counts[cs.State]++
		st.CellStatus = append(st.CellStatus, cs)
	}
	live := st.Counts[StateQueued] + st.Counts[StateRunning]
	switch {
	case live == len(sw.cells):
		st.State = StateQueued
	case live > 0:
		st.State = StateRunning
	case st.Counts[StateFailed] > 0:
		st.State = StateFailed
	case st.Counts[StateCanceled] > 0:
		st.State = StateCanceled
	default:
		st.State = StateDone
	}
	return st
}

// terminal reports whether every cell is terminal.
func (sw *sweepRun) terminal() bool {
	for _, j := range sw.cells {
		if !j.State().terminal() {
			return false
		}
	}
	return true
}

// buildSweep expands and validates a sweep request into its cell jobs,
// sorted by canonical key, plus the sweep's content-addressed ID (the hash
// of the sorted key list — resubmitting the same grid always lands on the
// same sweep).
func (s *Server) buildSweep(req *SweepRequest) (string, []*job, error) {
	cells, err := sweep.Expand(req.Spec, s.opts.Base)
	if err != nil {
		return "", nil, err
	}
	shardI, shardN := req.ShardIndex, req.ShardCount
	if shardI == 0 && shardN == 0 {
		shardN = 1
	}
	if cells, err = sweep.Shard(cells, s.opts.Base, shardI, shardN); err != nil {
		return "", nil, err
	}
	if len(cells) > s.opts.MaxSweepCells {
		return "", nil, fmt.Errorf("sweep expands to %d cells, server limit is %d; shard it with shard_index/shard_count",
			len(cells), s.opts.MaxSweepCells)
	}
	jobs := make([]*job, len(cells))
	for i, c := range cells {
		cfg := c.Config(s.opts.Base)
		if err := cfg.Validate(); err != nil {
			return "", nil, fmt.Errorf("cell %s/%s: %w", c.Bench, c.TechName, err)
		}
		key := core.JobKey(c.Bench, cfg, c.Scale)
		j := &job{
			id:    store.HashKey(key),
			key:   key,
			bench: c.Bench,
			tech:  c.Technique,
			cfg:   cfg,
			scale: c.Scale,
			state: StateQueued,
			subs:  make(map[chan []byte]struct{}),
			done:  make(chan struct{}),
		}
		j.ctx, j.cancel = context.WithCancelCause(s.rootCtx)
		jobs[i] = j
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].key < jobs[b].key })
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = j.key
	}
	id := store.HashKey("wg-sweep v1\n" + strings.Join(keys, "\n"))
	return id, jobs, nil
}

// handleSweepSubmit admits one sweep: quota check, server-side expansion,
// per-cell duplicate collapse against the job registry (a cell whose job is
// already live or done reuses it — the API face of the sweep engine's store
// dedup), and a background feeder that streams fresh cells through the same
// bounded admission queue single jobs use.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if ok, wait := s.quotas.take(clientID(r), time.Now()); !ok {
		w.Header().Set("Retry-After", retryAfter(wait))
		writeError(w, http.StatusTooManyRequests, "client quota exceeded; retry in %s", wait.Round(time.Millisecond))
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	id, jobs, err := s.buildSweep(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	deadline := s.deadline(req.DeadlineMS)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining: not admitting new sweeps")
		return
	}
	if prev, ok := s.sweeps[id]; ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, prev.status())
		return
	}
	var fresh []*job
	for i, j := range jobs {
		if prev, ok := s.jobs[j.id]; ok {
			if st := prev.State(); st != StateFailed && st != StateCanceled {
				jobs[i] = prev // live or done: the cell collapses onto it
				continue
			}
			// Terminal failure: the fresh cell job replaces it, making the
			// cell retryable exactly like a resubmitted job.
		}
		j.runDeadline = deadline
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		fresh = append(fresh, j)
	}
	sw := &sweepRun{id: id, created: time.Now(), cells: jobs}
	s.sweeps[id] = sw
	s.sweepOrder = append(s.sweepOrder, sw)
	s.pruneSweepsLocked()
	s.pruneLocked()
	s.mu.Unlock()

	go s.feed(fresh)
	writeJSON(w, http.StatusAccepted, sw.status())
}

// feed streams a sweep's fresh cells into the bounded admission queue. A
// large sweep exceeds the queue depth by design: feeding blocks off the
// request goroutine, which is what gives sweeps backpressure without a 429
// per cell. Cells the server stops admitting (drain, shutdown) are canceled,
// never left queued forever.
func (s *Server) feed(fresh []*job) {
	for _, j := range fresh {
		if err := s.admit(j); err != nil {
			j.cancel(err)
			j.transition(StateCanceled, err)
		}
	}
}

// admit queues one job, blocking while the queue is full. Drain safety: the
// sender registers under the mutex while the server still admits, and Drain
// closes the queue only after registered senders finish — so a feeder can
// never send on a closed queue, and a drain can never strand a blocked
// feeder (cancellation of the job's context unblocks it).
func (s *Server) admit(j *job) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	s.senders.Add(1)
	s.mu.Unlock()
	defer s.senders.Done()
	select {
	case s.queue <- j:
		return nil
	case <-j.ctx.Done():
		return context.Cause(j.ctx)
	}
}

// pruneSweepsLocked evicts the oldest fully-terminal sweeps once the
// registry exceeds its bound. Live sweeps are never pruned.
func (s *Server) pruneSweepsLocked() {
	if len(s.sweeps) <= maxSweeps {
		return
	}
	kept := s.sweepOrder[:0]
	for _, sw := range s.sweepOrder {
		if len(s.sweeps) > maxSweeps && sw.terminal() {
			delete(s.sweeps, sw.id)
			continue
		}
		kept = append(kept, sw)
	}
	s.sweepOrder = kept
}

// handleSweep answers a sweep status poll.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sw := s.sweeps[id]
	s.mu.Unlock()
	if sw == nil {
		writeError(w, http.StatusNotFound, "no sweep %s", id)
		return
	}
	writeJSON(w, http.StatusOK, sw.status())
}
