package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// streamJob serves a job's lifecycle as Server-Sent Events: an immediate
// "status" event with the current snapshot, a "status" event per progress
// report or state change, and a final "status" event at the terminal state,
// after which the stream ends.
//
// An SSE stream is an attachment, not just a view: a watcher that
// disconnects while the job is still live cancels the job's context with
// ErrClientGone as the cause. Streamed jobs are interactive — nobody is
// left to consume the result, so the simulation stops within one epoch
// window and the key becomes immediately retryable. Clients that want
// fire-and-forget semantics poll instead of streaming.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotAcceptable, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	events, unsubscribe := j.subscribe()
	defer unsubscribe()

	writeEvent(w, mustStatusJSON(j))
	fl.Flush()

	for {
		select {
		case data := <-events:
			writeEvent(w, data)
			fl.Flush()
		case <-j.done:
			// Drain nothing: the terminal snapshot supersedes any queued
			// progress events.
			writeEvent(w, mustStatusJSON(j))
			fl.Flush()
			return
		case <-r.Context().Done():
			j.cancel(ErrClientGone)
			return
		}
	}
}

// writeEvent renders one SSE "status" event. data must be a single-line
// payload (JSON without indentation), which json.Marshal guarantees.
func writeEvent(w http.ResponseWriter, data []byte) {
	fmt.Fprintf(w, "event: status\ndata: %s\n\n", data)
}

// mustStatusJSON marshals a job's status snapshot; the status struct cannot
// fail to marshal, so errors degrade to an empty object rather than a panic.
func mustStatusJSON(j *job) []byte {
	data, err := json.Marshal(j.status())
	if err != nil {
		return []byte("{}")
	}
	return data
}
