package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"warpedgates/internal/config"
)

// testOptions is the shared fast-test configuration: the small 2-SM machine,
// quotas disabled (cases that exercise them opt back in), and a queue deep
// enough that admission never interferes with unrelated cases.
func testOptions() Options {
	return Options{
		Base:                config.Small(),
		Workers:             2,
		QueueDepth:          16,
		QuotaRate:           -1,
		QuotaBurst:          -1,
		ProgressEveryCycles: 500,
	}
}

// newTestServer builds a server plus its loopback HTTP front; both are torn
// down with the test.
func newTestServer(t *testing.T, mutate func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := testOptions()
	if mutate != nil {
		mutate(&opts)
	}
	s, err := NewServer(opts)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// smallJob is a sub-second benchmark × technique request on the test machine.
const smallJob = `{"bench":"hotspot","technique":"WarpedGates","sms":2,"scale":0.05}`

// doJSON issues one request and returns the response with its body read.
func doJSON(t *testing.T, ts *httptest.Server, method, path, body string, header map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s %s body: %v", method, path, err)
	}
	return resp, string(raw)
}

// submitAndWait submits a job and polls it to a terminal state, returning the
// final status.
func submitAndWait(t *testing.T, ts *httptest.Server, body string) JobStatus {
	t.Helper()
	resp, raw := doJSON(t, ts, http.MethodPost, "/v1/jobs", body, nil)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(raw), &st); err != nil {
		t.Fatalf("submit response %q: %v", raw, err)
	}
	return waitTerminal(t, ts, st.ID)
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, raw := doJSON(t, ts, http.MethodGet, "/v1/jobs/"+id, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d, body %s", id, resp.StatusCode, raw)
		}
		var st JobStatus
		if err := json.Unmarshal([]byte(raw), &st); err != nil {
			t.Fatalf("poll response %q: %v", raw, err)
		}
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 60s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitState polls a job until it reaches (or passes through to a state at
// least as far as) the wanted transient state.
func waitState(t *testing.T, ts *httptest.Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, raw := doJSON(t, ts, http.MethodGet, "/v1/jobs/"+id, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d, body %s", id, resp.StatusCode, raw)
		}
		var st JobStatus
		if err := json.Unmarshal([]byte(raw), &st); err != nil {
			t.Fatalf("poll response %q: %v", raw, err)
		}
		if st.State == want || st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s waiting for %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// unknownID is a well-formed content address no job hashes to.
var unknownID = strings.Repeat("ab", 32)

// TestAPITable is the kgateway-style table: one row per contract the HTTP
// surface promises — submit, duplicate-submit collapse, validation 400s,
// unknown 404s, quota 429 and drain 503. Every row gets a fresh server so
// rows cannot contaminate each other, and the whole table runs under -race
// in CI (make serve-test).
func TestAPITable(t *testing.T) {
	cases := []struct {
		name string
		// opts mutates the per-case server options; prep runs before the
		// request under test.
		opts func(*Options)
		prep func(t *testing.T, s *Server, ts *httptest.Server)

		method, path string
		header       map[string]string
		body         string

		wantStatus  int
		wantBody    []string // substrings the response body must contain
		wantHeaders map[string]string
		check       func(t *testing.T, s *Server)
	}{
		{
			name:       "submit accepted",
			method:     http.MethodPost,
			path:       "/v1/jobs",
			body:       smallJob,
			wantStatus: http.StatusAccepted,
			wantBody:   []string{`"key": "wg-job v2 bench=hotspot`, `"bench": "hotspot"`, `"technique": "WarpedGates"`},
		},
		{
			name: "duplicate submit collapses onto one simulation",
			prep: func(t *testing.T, s *Server, ts *httptest.Server) {
				st := submitAndWait(t, ts, smallJob)
				if st.State != StateDone {
					t.Fatalf("first submission ended %s (%s)", st.State, st.Error)
				}
			},
			method:     http.MethodPost,
			path:       "/v1/jobs",
			body:       smallJob,
			wantStatus: http.StatusOK,
			wantBody:   []string{`"state": "done"`, `"report": "/v1/reports/`},
			check: func(t *testing.T, s *Server) {
				if n := s.Simulations(); n != 1 {
					t.Fatalf("duplicate submission ran %d simulations, want 1", n)
				}
			},
		},
		{
			name:       "unknown benchmark is 400",
			method:     http.MethodPost,
			path:       "/v1/jobs",
			body:       `{"bench":"nosuch","technique":"WarpedGates"}`,
			wantStatus: http.StatusBadRequest,
			wantBody:   []string{"unknown benchmark", "nosuch"},
		},
		{
			name:       "unknown technique is 400",
			method:     http.MethodPost,
			path:       "/v1/jobs",
			body:       `{"bench":"hotspot","technique":"Overclock"}`,
			wantStatus: http.StatusBadRequest,
			wantBody:   []string{"unknown technique", "Overclock"},
		},
		{
			name:       "invalid machine config is 400",
			method:     http.MethodPost,
			path:       "/v1/jobs",
			body:       `{"bench":"hotspot","technique":"Baseline","break_even":-1}`,
			wantStatus: http.StatusBadRequest,
			wantBody:   []string{"config: BreakEven must be positive"},
		},
		{
			name:       "negative scale is 400",
			method:     http.MethodPost,
			path:       "/v1/jobs",
			body:       `{"bench":"hotspot","technique":"Baseline","scale":-2}`,
			wantStatus: http.StatusBadRequest,
			wantBody:   []string{"scale must be a positive finite number"},
		},
		{
			name:       "unknown request field is 400 not silently ignored",
			method:     http.MethodPost,
			path:       "/v1/jobs",
			body:       `{"bench":"hotspot","technique":"Baseline","max_cycles":7}`,
			wantStatus: http.StatusBadRequest,
			wantBody:   []string{"max_cycles"},
		},
		{
			name:       "malformed JSON is 400",
			method:     http.MethodPost,
			path:       "/v1/jobs",
			body:       `{"bench":`,
			wantStatus: http.StatusBadRequest,
			wantBody:   []string{"malformed request body"},
		},
		{
			name:       "unknown job is 404",
			method:     http.MethodGet,
			path:       "/v1/jobs/" + unknownID,
			wantStatus: http.StatusNotFound,
			wantBody:   []string{"no job"},
		},
		{
			name:       "unknown report is 404",
			method:     http.MethodGet,
			path:       "/v1/reports/" + unknownID,
			wantStatus: http.StatusNotFound,
			wantBody:   []string{"no report"},
		},
		{
			name:       "malformed report id is 400",
			method:     http.MethodGet,
			path:       "/v1/reports/not-a-hash",
			wantStatus: http.StatusBadRequest,
			wantBody:   []string{"malformed report id"},
		},
		{
			name: "quota exhaustion is 429 with Retry-After",
			opts: func(o *Options) { o.QuotaRate = 0.01; o.QuotaBurst = 1 },
			prep: func(t *testing.T, s *Server, ts *httptest.Server) {
				resp, raw := doJSON(t, ts, http.MethodPost, "/v1/jobs", smallJob, nil)
				if resp.StatusCode != http.StatusAccepted {
					t.Fatalf("burst submission: status %d, body %s", resp.StatusCode, raw)
				}
			},
			method:      http.MethodPost,
			path:        "/v1/jobs",
			body:        smallJob,
			wantStatus:  http.StatusTooManyRequests,
			wantBody:    []string{"client quota exceeded"},
			wantHeaders: map[string]string{"Retry-After": ""},
		},
		{
			name: "admission queue full is 429 with Retry-After",
			opts: func(o *Options) { o.Workers = 1; o.QueueDepth = 1 },
			prep: func(t *testing.T, s *Server, ts *httptest.Server) {
				// One slow job occupies the lone worker, a second fills the
				// depth-1 queue. Waiting for the first to reach running makes
				// the queue state deterministic: the worker is busy for the
				// rest of the test (scale-30 runs take minutes uncanceled; the
				// cleanup Close cancels them), so the second job stays queued.
				slow := `{"bench":"hotspot","technique":"WarpedGates","sms":2,"scale":30}`
				resp, raw := doJSON(t, ts, http.MethodPost, "/v1/jobs", slow, nil)
				if resp.StatusCode != http.StatusAccepted {
					t.Fatalf("running-filler submission: status %d, body %s", resp.StatusCode, raw)
				}
				var st JobStatus
				if err := json.Unmarshal([]byte(raw), &st); err != nil {
					t.Fatalf("submit response %q: %v", raw, err)
				}
				waitState(t, ts, st.ID, StateRunning)
				resp, raw = doJSON(t, ts, http.MethodPost, "/v1/jobs", `{"bench":"srad","technique":"WarpedGates","sms":2,"scale":30}`, nil)
				if resp.StatusCode != http.StatusAccepted {
					t.Fatalf("queued-filler submission: status %d, body %s", resp.StatusCode, raw)
				}
			},
			method:      http.MethodPost,
			path:        "/v1/jobs",
			body:        `{"bench":"backprop","technique":"WarpedGates","sms":2,"scale":30}`,
			wantStatus:  http.StatusTooManyRequests,
			wantBody:    []string{"admission queue full"},
			wantHeaders: map[string]string{"Retry-After": "1"},
		},
		{
			name: "draining submit is 503",
			prep: func(t *testing.T, s *Server, ts *httptest.Server) {
				s.Close()
			},
			method:     http.MethodPost,
			path:       "/v1/jobs",
			body:       smallJob,
			wantStatus: http.StatusServiceUnavailable,
			wantBody:   []string{"draining"},
		},
		{
			name: "draining healthz is 503",
			prep: func(t *testing.T, s *Server, ts *httptest.Server) {
				s.Close()
			},
			method:     http.MethodGet,
			path:       "/v1/healthz",
			wantStatus: http.StatusServiceUnavailable,
			wantBody:   []string{"draining"},
		},
		{
			name:       "healthz ok",
			method:     http.MethodGet,
			path:       "/v1/healthz",
			wantStatus: http.StatusOK,
			wantBody:   []string{`"ok"`},
		},
		{
			name:       "statusz reports counters",
			method:     http.MethodGet,
			path:       "/v1/statusz",
			wantStatus: http.StatusOK,
			wantBody:   []string{`"queue_cap": 16`, `"simulations"`, `"draining": false`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, ts := newTestServer(t, tc.opts)
			if tc.prep != nil {
				tc.prep(t, s, ts)
			}
			resp, body := doJSON(t, ts, tc.method, tc.path, tc.body, tc.header)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("%s %s = %d, want %d; body: %s", tc.method, tc.path, resp.StatusCode, tc.wantStatus, body)
			}
			for _, want := range tc.wantBody {
				if !strings.Contains(body, want) {
					t.Errorf("body missing %q:\n%s", want, body)
				}
			}
			for k, want := range tc.wantHeaders {
				got := resp.Header.Get(k)
				if got == "" {
					t.Errorf("missing %s header", k)
				} else if want != "" && got != want {
					t.Errorf("%s header = %q, want %q", k, got, want)
				}
			}
			if tc.check != nil {
				tc.check(t, s)
			}
		})
	}
}

// TestQuotaRefill pins the token-bucket math: a drained bucket refills at
// the configured rate, and the Retry-After estimate matches the deficit.
func TestQuotaRefill(t *testing.T) {
	q := newQuotas(2, 1) // 2 tokens/s, burst 1
	t0 := time.Unix(1000, 0)
	if ok, _ := q.take("c", t0); !ok {
		t.Fatal("fresh bucket denied its burst")
	}
	ok, wait := q.take("c", t0)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Fatalf("wait = %v, want (0, 500ms]", wait)
	}
	if ok, _ := q.take("c", t0.Add(time.Second)); !ok {
		t.Fatal("bucket did not refill after a full second")
	}
	if q.clients() != 1 {
		t.Fatalf("clients = %d, want 1", q.clients())
	}
}

// TestStatuszJobCounts walks one job through to done and checks the state
// histogram /v1/statusz reports.
func TestStatuszJobCounts(t *testing.T) {
	_, ts := newTestServer(t, nil)
	st := submitAndWait(t, ts, smallJob)
	if st.State != StateDone {
		t.Fatalf("job ended %s (%s)", st.State, st.Error)
	}
	resp, body := doJSON(t, ts, http.MethodGet, "/v1/statusz", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz: %d", resp.StatusCode)
	}
	var z Statusz
	if err := json.Unmarshal([]byte(body), &z); err != nil {
		t.Fatalf("statusz body %q: %v", body, err)
	}
	if z.Jobs[StateDone] != 1 {
		t.Fatalf("statusz done count = %d, want 1; body %s", z.Jobs[StateDone], body)
	}
	if z.Simulations != 1 {
		t.Fatalf("statusz simulations = %d, want 1", z.Simulations)
	}
}
