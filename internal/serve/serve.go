// Package serve is the HTTP front-end that turns the experiment runner into
// a long-lived simulation service. It exposes a small JSON API:
//
//	POST /v1/jobs          submit a benchmark × technique simulation job
//	GET  /v1/jobs/{id}     poll job status, or stream it as SSE events
//	POST /v1/sweeps        submit a declarative parameter-grid sweep
//	GET  /v1/sweeps/{id}   poll aggregate and per-cell sweep status
//	GET  /v1/reports/{id}  fetch the finished report payload
//	GET  /v1/healthz       liveness (503 while draining)
//	GET  /v1/statusz       queue, job, quota and store counters
//
// The server wraps core.Runner, so everything the runner guarantees holds at
// the API boundary too: duplicate submissions collapse onto one simulation
// (job IDs are content addresses — the SHA-256 of the canonical job key, the
// same address the durable store files the report under), reports served
// from the in-memory or on-disk cache are byte-identical to fresh
// simulation, and canceled or timed-out runs are never cached. On top of the
// runner it adds the service concerns: per-client token-bucket quotas, a
// bounded admission queue with backpressure (429 + Retry-After), per-job
// deadlines mapped onto context cancellation with core.ErrDeadline as the
// cause, and graceful drain (stop admitting, finish or cancel in-flight).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/store"
)

// Options configures a Server. The zero value of every field selects a
// sensible default; Base must still describe a valid machine (use
// config.GTX480()).
type Options struct {
	// Base is the machine configuration techniques are applied on top of.
	// Per-request knobs (sms, seed, gating parameters) override copies of it.
	Base config.Config
	// Store, when non-nil, is the durable report tier shared by every runner;
	// finished reports persist across restarts and are served cold from it.
	Store *store.Store
	// Workers bounds concurrent simulations. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; a full queue rejects submissions
	// with 429 + Retry-After. Default 64.
	QueueDepth int
	// QuotaRate is the sustained per-client submission rate in jobs/second;
	// QuotaBurst is the bucket capacity. Defaults 5/s and 10. A non-positive
	// rate with a positive burst means a fixed allowance; set both negative
	// to disable quotas entirely (tests do).
	QuotaRate  float64
	QuotaBurst int
	// DefaultDeadline applies to jobs that do not request one; MaxDeadline
	// clamps requested deadlines. Zero means no default / no clamp.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxWallTime is the runner-level watchdog backstop behind the per-job
	// deadlines. Zero disables it.
	MaxWallTime time.Duration
	// MaxCachedReports bounds each runner's in-memory report tier (the L1
	// over the store). Default 256.
	MaxCachedReports int
	// MaxJobs bounds the job registry; oldest terminal jobs are pruned past
	// it (their reports remain fetchable — report IDs are store addresses).
	// Default 4096.
	MaxJobs int
	// MaxSweepCells bounds how many cells one sweep submission may expand
	// to; larger grids are rejected with a hint to shard. Default 4096.
	MaxSweepCells int
	// ProgressEveryCycles throttles SSE progress events: one event per this
	// many simulated cycles. Default 25000.
	ProgressEveryCycles int64
	// IntraRunWorkers selects the intra-simulation engine for every job
	// (results are bit-identical at any value). Default 1, the serial engine.
	IntraRunWorkers int
}

// withDefaults resolves zero-valued options.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.QuotaRate == 0 && o.QuotaBurst == 0 {
		o.QuotaRate, o.QuotaBurst = 5, 10
	}
	if o.MaxCachedReports <= 0 {
		o.MaxCachedReports = 256
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 4096
	}
	if o.MaxSweepCells <= 0 {
		o.MaxSweepCells = 4096
	}
	if o.ProgressEveryCycles <= 0 {
		o.ProgressEveryCycles = 25000
	}
	if o.IntraRunWorkers > 0 {
		o.Base.IntraRunWorkers = o.IntraRunWorkers
	}
	return o
}

// Server is the HTTP simulation service. Create one with NewServer, mount it
// (it implements http.Handler), and call Drain then Close on shutdown. All
// methods are safe for concurrent use.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	start time.Time

	quotas *quotas

	mu         sync.Mutex
	draining   bool
	queue      chan *job
	runners    map[float64]*core.Runner
	jobs       map[string]*job
	order      []*job // submission order, for terminal-job pruning
	sweeps     map[string]*sweepRun
	sweepOrder []*sweepRun

	// senders counts in-flight blocking queue sends (sweep feeders). Drain
	// closes the queue only after they finish — see admit.
	senders sync.WaitGroup

	lifecycle // job contexts and the worker pool

	// sims counts uncached simulations started by this process — the number
	// the lifecycle test pins at zero for a store-warm restart.
	sims atomic.Uint64
}

// NewServer builds and starts a service over the given options: the worker
// pool is running on return and the handler is ready to mount.
func NewServer(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if err := opts.Base.Validate(); err != nil {
		return nil, fmt.Errorf("serve: invalid base config: %w", err)
	}
	s := &Server{
		opts:    opts,
		start:   time.Now(),
		quotas:  newQuotas(opts.QuotaRate, opts.QuotaBurst),
		queue:   make(chan *job, opts.QueueDepth),
		runners: make(map[float64]*core.Runner),
		jobs:    make(map[string]*job),
		sweeps:  make(map[string]*sweepRun),
	}
	s.lifecycle.init()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	s.mux.HandleFunc("GET /v1/reports/{id}", s.handleReport)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/statusz", s.handleStatusz)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// runner returns the memoizing runner for one workload scale, creating it on
// first use. Scale is a Runner-wide field, so each distinct scale gets its
// own runner; they share the durable store, so the durable tier is still one
// namespace (scale is part of every canonical job key).
func (s *Server) runner(scale float64) *core.Runner {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runners[scale]; ok {
		return r
	}
	r := core.NewRunner(s.opts.Base)
	r.Scale = scale
	r.Store = s.opts.Store
	r.MaxCachedReports = s.opts.MaxCachedReports
	r.MaxWallTime = s.opts.MaxWallTime
	r.Progress = func(string, config.Config) { s.sims.Add(1) }
	r.Instrument = s.instrument(scale)
	s.runners[scale] = r
	return r
}

// Simulations returns how many uncached simulations this process has started
// — zero when every request was served from a cache tier.
func (s *Server) Simulations() uint64 { return s.sims.Load() }

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON renders v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders a JSON error envelope.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleHealthz is the liveness endpoint: 200 while serving, 503 while
// draining, so load balancers stop routing to an instance that no longer
// admits work.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Statusz is the /v1/statusz payload: the service's operational counters.
type Statusz struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Draining      bool           `json:"draining"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCap      int            `json:"queue_cap"`
	Jobs          map[State]int  `json:"jobs"`
	Sweeps        int            `json:"sweeps"`
	Simulations   uint64         `json:"simulations"`
	Clients       int            `json:"quota_clients"`
	Store         *storeCounters `json:"store,omitempty"`
}

// storeCounters mirrors store.Health with JSON names for /v1/statusz.
type storeCounters struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Writes      uint64 `json:"writes"`
	WriteErrors uint64 `json:"write_errors"`
	ReadErrors  uint64 `json:"read_errors"`
	Quarantined uint64 `json:"quarantined"`
	Retries     uint64 `json:"retries"`
}

// handleStatusz reports queue depth, job states, simulation count and the
// durable store's health counters.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	st := Statusz{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Simulations:   s.sims.Load(),
		Clients:       s.quotas.clients(),
		Jobs:          make(map[State]int),
	}
	s.mu.Lock()
	st.Draining = s.draining
	st.QueueDepth = len(s.queue)
	st.QueueCap = cap(s.queue)
	for _, j := range s.jobs {
		st.Jobs[j.State()]++
	}
	st.Sweeps = len(s.sweeps)
	s.mu.Unlock()
	if s.opts.Store != nil {
		h := s.opts.Store.Health()
		st.Store = &storeCounters{
			Hits: h.Hits, Misses: h.Misses, Writes: h.Writes,
			WriteErrors: h.WriteErrors, ReadErrors: h.ReadErrors,
			Quarantined: h.Quarantined, Retries: h.Retries,
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// handleReport serves the finished report payload for a job/report ID — the
// content address of the canonical job key. The read is tiered like the
// runner's own cache: the in-memory report of a registry-known job first,
// then the durable store by hash, which is what makes reports fetchable
// across a server restart with zero re-simulation.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !store.ValidHash(id) {
		writeError(w, http.StatusBadRequest, "malformed report id %q: want 64 hex characters", id)
		return
	}
	if data, ok := s.reportFromL1(id); ok {
		serveReport(w, id, data)
		return
	}
	if s.opts.Store != nil {
		data, ok, err := s.opts.Store.GetByHash(id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "reading report: %v", err)
			return
		}
		if ok {
			serveReport(w, id, data)
			return
		}
	}
	writeError(w, http.StatusNotFound, "no report %s", id)
}

// serveReport writes the encoded report payload. Payloads are content-
// addressed and immutable, so they are safe to cache indefinitely.
func serveReport(w http.ResponseWriter, id string, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("ETag", `"`+id+`"`)
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	_, _ = w.Write(data)
}

// reportFromL1 serves a report from the registry + runner in-memory tier:
// a known, completed job whose report is still resident encodes to exactly
// the bytes the store holds (the codec is deterministic — pinned by the
// golden corpus), so the two tiers are interchangeable.
func (s *Server) reportFromL1(id string) ([]byte, bool) {
	j := s.lookup(id)
	if j == nil || j.State() != StateDone {
		return nil, false
	}
	rep, ok := s.runner(j.scale).CachedReport(j.key)
	if !ok {
		return nil, false
	}
	data, err := encodeReport(rep)
	if err != nil {
		return nil, false
	}
	return data, true
}

// errorKind classifies a terminal job error for the status JSON, so clients
// can react without parsing error strings: "deadline" (the per-job deadline
// or the server watchdog fired, core.ErrDeadline), "client_gone" (the SSE
// watcher disconnected), "draining" (server shutdown canceled the job),
// "canceled" (any other cancellation), "panic", or "error".
func errorKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, core.ErrDeadline):
		return "deadline"
	case errors.Is(err, ErrClientGone):
		return "client_gone"
	case errors.Is(err, ErrDraining):
		return "draining"
	case isCanceled(err):
		return "canceled"
	case isPanic(err):
		return "panic"
	default:
		return "error"
	}
}

func isPanic(err error) bool {
	var pe *core.PanicError
	return errors.As(err, &pe)
}
