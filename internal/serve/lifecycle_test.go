package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"warpedgates/internal/core"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
	"warpedgates/internal/store"
)

// lifecycleScale keeps the full benchmark × technique matrix fast enough for
// the race detector while still exercising every kernel shape end to end
// (mirrors the golden-matrix precedent).
const lifecycleScale = 0.05

// TestLifecycleAcrossRestart is the end-to-end contract of the service: submit
// the whole smoke matrix over HTTP, fetch every report, and check the bytes
// equal a direct Runner.Run through the same codec; then restart the server on
// the same store directory and re-fetch every report cold — byte-identical
// again, with zero re-simulation.
func TestLifecycleAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix lifecycle test")
	}
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	opts := testOptions()
	opts.Store = st
	opts.Workers = 4
	opts.QueueDepth = 256 // hold the whole matrix; admission is not under test here

	s1, err := NewServer(opts)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts1 := httptest.NewServer(s1)

	type cell struct {
		bench string
		tech  core.Technique
		id    string
	}
	var cells []cell
	for _, bench := range kernels.BenchmarkNames {
		for _, tech := range core.AllTechniques() {
			body, _ := json.Marshal(JobRequest{
				Bench: bench, Technique: tech.String(), SMs: 2, Scale: lifecycleScale,
			})
			resp, raw := doJSON(t, ts1, http.MethodPost, "/v1/jobs", string(body), nil)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %s/%s: status %d, body %s", bench, tech, resp.StatusCode, raw)
			}
			var jst JobStatus
			if err := json.Unmarshal([]byte(raw), &jst); err != nil {
				t.Fatalf("submit %s/%s response %q: %v", bench, tech, raw, err)
			}
			cells = append(cells, cell{bench, tech, jst.ID})
		}
	}

	// An independent runner over the same base machine is the ground truth:
	// the served payload must be byte-identical to a direct simulation
	// encoded through the same codec.
	direct := core.NewRunner(opts.withDefaults().Base)
	direct.Scale = lifecycleScale
	want := make(map[string][]byte, len(cells))
	for _, c := range cells {
		cfg := c.tech.Apply(opts.withDefaults().Base)
		cfg.NumSMs = 2
		rep, err := direct.RunCfg(c.bench, cfg)
		if err != nil {
			t.Fatalf("direct %s/%s: %v", c.bench, c.tech, err)
		}
		data, err := sim.EncodeReport(rep)
		if err != nil {
			t.Fatalf("encoding direct %s/%s: %v", c.bench, c.tech, err)
		}
		want[c.id] = data
	}

	for _, c := range cells {
		final := waitTerminal(t, ts1, c.id)
		if final.State != StateDone {
			t.Fatalf("%s/%s ended %s (%s)", c.bench, c.tech, final.State, final.Error)
		}
		if final.Report != "/v1/reports/"+c.id {
			t.Fatalf("%s/%s report path = %q", c.bench, c.tech, final.Report)
		}
		resp, raw := doJSON(t, ts1, http.MethodGet, final.Report, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fetch %s/%s: status %d, body %s", c.bench, c.tech, resp.StatusCode, raw)
		}
		if !bytes.Equal([]byte(raw), want[c.id]) {
			t.Fatalf("%s/%s: served report differs from direct simulation (%d vs %d bytes)",
				c.bench, c.tech, len(raw), len(want[c.id]))
		}
		if et := resp.Header.Get("ETag"); et != `"`+c.id+`"` {
			t.Fatalf("%s/%s ETag = %s", c.bench, c.tech, et)
		}
	}
	if n := s1.Simulations(); n != uint64(len(cells)) {
		t.Fatalf("first server ran %d simulations, want %d", n, len(cells))
	}

	// Restart: a fresh process (fresh registry, fresh in-memory tiers) over
	// the same store directory must serve every report cold, byte-identical,
	// without running a single simulation.
	ts1.Close()
	s1.Close()
	s2, err := NewServer(opts)
	if err != nil {
		t.Fatalf("NewServer (restart): %v", err)
	}
	ts2 := httptest.NewServer(s2)
	defer func() {
		ts2.Close()
		s2.Close()
	}()
	for _, c := range cells {
		resp, raw := doJSON(t, ts2, http.MethodGet, "/v1/reports/"+c.id, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold fetch %s/%s: status %d, body %s", c.bench, c.tech, resp.StatusCode, raw)
		}
		if !bytes.Equal([]byte(raw), want[c.id]) {
			t.Fatalf("cold fetch %s/%s: bytes differ from direct simulation", c.bench, c.tech)
		}
	}
	if n := s2.Simulations(); n != 0 {
		t.Fatalf("restarted server ran %d simulations serving cold reports, want 0", n)
	}

	// Resubmitting a stored job on the restarted server should also complete
	// without re-simulating: the runner's read-through store tier answers it.
	body, _ := json.Marshal(JobRequest{
		Bench: cells[0].bench, Technique: cells[0].tech.String(), SMs: 2, Scale: lifecycleScale,
	})
	final := submitAndWait(t, ts2, string(body))
	if final.State != StateDone {
		t.Fatalf("warm resubmission ended %s (%s)", final.State, final.Error)
	}
	if n := s2.Simulations(); n != 0 {
		t.Fatalf("warm resubmission re-simulated (%d runs), want store hit", n)
	}
}
