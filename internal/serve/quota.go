package serve

import (
	"sync"
	"time"
)

// quotas is the per-client token-bucket table behind POST /v1/jobs: each
// client may burst up to `burst` submissions and sustain `rate` per second;
// beyond that, submissions answer 429 with a Retry-After hint. Buckets are
// lazily created per client and reaped once full again, so the table stays
// proportional to the set of currently throttled clients.
type quotas struct {
	rate  float64 // tokens per second; <= 0 means no refill
	burst float64 // bucket capacity; < 0 disables quotas entirely

	mu      sync.Mutex
	buckets map[string]*bucket
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// newQuotas builds the table. A negative burst disables enforcement.
func newQuotas(rate float64, burst int) *quotas {
	return &quotas{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// take spends one token for the client. When denied, wait estimates how long
// until a token accrues (the Retry-After hint); with no refill configured
// the wait is a nominal second.
func (q *quotas) take(client string, now time.Time) (ok bool, wait time.Duration) {
	if q.burst < 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[client]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[client] = b
	}
	if q.rate > 0 {
		b.tokens += now.Sub(b.last).Seconds() * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if q.rate <= 0 {
		return false, time.Second
	}
	q.reapLocked(now)
	return false, time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
}

// reapLocked drops buckets that have fully refilled — they are
// indistinguishable from absent ones — bounding the table by the set of
// clients with spent quota. Runs on the deny path only, so the common
// admit path stays a map lookup and an add.
func (q *quotas) reapLocked(now time.Time) {
	if len(q.buckets) < 1024 {
		return
	}
	for c, b := range q.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*q.rate >= q.burst {
			delete(q.buckets, c)
		}
	}
}

// clients returns the number of tracked quota buckets (for /v1/statusz).
func (q *quotas) clients() int {
	if q.burst < 0 {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}
