package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"warpedgates/internal/core"
)

// slowJob is a workload that runs for minutes uncanceled (the scale-50
// hotspot the crash-safety suite uses for the same purpose), so every test
// below observes the job mid-flight.
const slowJob = `{"bench":"hotspot","technique":"WarpedGates","sms":2,"scale":50}`

// submitOne submits a job and returns its initial status.
func submitOne(t *testing.T, ts *httptest.Server, body string) JobStatus {
	t.Helper()
	resp, raw := doJSON(t, ts, http.MethodPost, "/v1/jobs", body, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(raw), &st); err != nil {
		t.Fatalf("submit response %q: %v", raw, err)
	}
	return st
}

// TestSSEDisconnectCancelsJob pins the stream-as-attachment semantics: a
// watcher that opens an SSE stream on a running job and disconnects cancels
// the job's context with ErrClientGone as the cause, and the terminal status
// classifies it as error_kind "client_gone".
func TestSSEDisconnectCancelsJob(t *testing.T) {
	s, ts := newTestServer(t, nil)
	st := submitOne(t, ts, slowJob)
	waitState(t, ts, st.ID, StateRunning)

	// Open the stream with a cancelable request context and read the first
	// event, which guarantees the server has the watcher subscribed before we
	// disconnect.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("opening stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var first string
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			first = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if first == "" {
		t.Fatalf("no SSE event before disconnect: %v", sc.Err())
	}
	var ev JobStatus
	if err := json.Unmarshal([]byte(first), &ev); err != nil {
		t.Fatalf("SSE event %q: %v", first, err)
	}
	if ev.ID != st.ID {
		t.Fatalf("SSE event for job %s, want %s", ev.ID, st.ID)
	}

	cancel() // client disconnects mid-stream

	final := waitTerminal(t, ts, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("job ended %s (%s), want canceled", final.State, final.Error)
	}
	if final.ErrorKind != "client_gone" {
		t.Fatalf("error_kind = %q, want client_gone", final.ErrorKind)
	}
	// White box: the registry job's terminal error carries the exact cause.
	j := s.lookup(st.ID)
	if j == nil {
		t.Fatal("job evicted from registry")
	}
	if err := j.Err(); !errors.Is(err, ErrClientGone) {
		t.Fatalf("job error = %v, want ErrClientGone cause", err)
	}
	// A canceled run is never cached, so the key is retryable and no report
	// exists for it.
	resp2, _ := doJSON(t, ts, http.MethodGet, "/v1/reports/"+st.ID, "", nil)
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("report after cancellation: status %d, want 404", resp2.StatusCode)
	}
}

// TestPollingNeverCancels is the counterpart: a polling client coming and
// going must not cancel the job — only SSE watchers are attachments.
func TestPollingNeverCancels(t *testing.T) {
	s, ts := newTestServer(t, nil)
	st := submitOne(t, ts, slowJob)
	waitState(t, ts, st.ID, StateRunning)
	for i := 0; i < 5; i++ {
		doJSON(t, ts, http.MethodGet, "/v1/jobs/"+st.ID, "", nil)
	}
	time.Sleep(50 * time.Millisecond)
	j := s.lookup(st.ID)
	if j == nil {
		t.Fatal("job evicted from registry")
	}
	if got := j.State(); got != StateRunning {
		t.Fatalf("job state after polling = %s, want still running (err: %v)", got, j.Err())
	}
}

// TestDeadlineSurfacesInStatus pins the per-job deadline path: a deadline_ms
// far below the job's runtime fails the job with core.ErrDeadline as the
// cause, surfaced in the terminal status JSON as error_kind "deadline".
func TestDeadlineSurfacesInStatus(t *testing.T) {
	s, ts := newTestServer(t, nil)
	st := submitOne(t, ts, `{"bench":"hotspot","technique":"WarpedGates","sms":2,"scale":50,"deadline_ms":100}`)
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateFailed {
		t.Fatalf("job ended %s (%s), want failed", final.State, final.Error)
	}
	if final.ErrorKind != "deadline" {
		t.Fatalf("error_kind = %q (error %q), want deadline", final.ErrorKind, final.Error)
	}
	j := s.lookup(st.ID)
	if j == nil {
		t.Fatal("job evicted from registry")
	}
	if err := j.Err(); !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("job error = %v, want core.ErrDeadline", err)
	}
	// A deadline failure is retryable: resubmitting the same key is accepted
	// as a fresh job rather than collapsing onto the failed one.
	resp, raw := doJSON(t, ts, http.MethodPost, "/v1/jobs", `{"bench":"hotspot","technique":"WarpedGates","sms":2,"scale":50,"deadline_ms":100}`, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmission after deadline failure: status %d, body %s", resp.StatusCode, raw)
	}
}

// TestMaxDeadlineClamp pins the server-side clamp: a request asking for more
// than MaxDeadline is bounded by it (observed through the job failing at the
// clamped deadline rather than running for the requested one).
func TestMaxDeadlineClamp(t *testing.T) {
	_, ts := newTestServer(t, func(o *Options) { o.MaxDeadline = 100 * time.Millisecond })
	st := submitOne(t, ts, `{"bench":"hotspot","technique":"WarpedGates","sms":2,"scale":50,"deadline_ms":600000}`)
	start := time.Now()
	final := waitTerminal(t, ts, st.ID)
	if final.ErrorKind != "deadline" {
		t.Fatalf("error_kind = %q, want deadline (state %s, error %q)", final.ErrorKind, final.State, final.Error)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("clamped job ran %s, clamp did not take", elapsed)
	}
}

// TestDrainCancelsInFlight pins forced-drain semantics: when the drain grace
// expires, in-flight jobs are canceled with ErrDraining and classified as
// error_kind "draining".
func TestDrainCancelsInFlight(t *testing.T) {
	s, ts := newTestServer(t, nil)
	st := submitOne(t, ts, slowJob)
	waitState(t, ts, st.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want deadline exceeded", err)
	}
	j := s.lookup(st.ID)
	if j == nil {
		t.Fatal("job evicted from registry")
	}
	if got := j.State(); got != StateCanceled {
		t.Fatalf("job state after forced drain = %s, want canceled", got)
	}
	if err := j.Err(); !errors.Is(err, ErrDraining) {
		t.Fatalf("job error = %v, want ErrDraining", err)
	}
	if st := j.status(); st.ErrorKind != "draining" {
		t.Fatalf("error_kind = %q, want draining", st.ErrorKind)
	}
}

// TestSSEStreamsToCompletion checks the happy-path stream: a fast job's
// watcher receives a final "done" event and the stream ends cleanly without
// canceling anything.
func TestSSEStreamsToCompletion(t *testing.T) {
	_, ts := newTestServer(t, nil)
	st := submitOne(t, ts, smallJob)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("opening stream: %v", err)
	}
	defer resp.Body.Close()

	var last JobStatus
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
				t.Fatalf("SSE event %q: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if last.State != StateDone {
		t.Fatalf("final streamed state = %s (%s), want done", last.State, last.Error)
	}
	if last.Report == "" {
		t.Fatal("final streamed status carries no report path")
	}
}
