package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
	"warpedgates/internal/store"
)

// ErrClientGone is the cancellation cause planted when a job's SSE watcher
// disconnects before the job finishes: a streamed job is interactive, and
// its watcher leaving cancels the simulation (polling clients never cancel).
var ErrClientGone = errors.New("serve: client disconnected")

// ErrDraining is the cancellation cause planted into jobs still in flight
// when a drain deadline expires.
var ErrDraining = errors.New("serve: server draining")

// State is a job's lifecycle position.
type State string

// Job states. Queued and running are transient; done, failed and canceled
// are terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether the state is final.
func (st State) terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// JobRequest is the POST /v1/jobs body. Only axes that are part of the
// canonical job key are accepted — a knob that cannot key a distinct cached
// result (MaxCycles, engine tuning) would let two different jobs collide on
// one report, so such knobs are rejected by the strict decoder instead of
// silently ignored.
type JobRequest struct {
	Bench     string `json:"bench"`
	Technique string `json:"technique"`
	// SMs overrides the base machine's SM count when positive.
	SMs int `json:"sms,omitempty"`
	// Scale is the workload scale factor; 0 means 1.0 (the full workload).
	Scale float64 `json:"scale,omitempty"`
	// Seed, when non-nil, overrides the base configuration's PRNG seed.
	Seed *uint64 `json:"seed,omitempty"`
	// Gating parameter overrides; 0 keeps the base value.
	IdleDetect  int `json:"idle_detect,omitempty"`
	BreakEven   int `json:"break_even,omitempty"`
	WakeupDelay int `json:"wakeup_delay,omitempty"`
	// SampleDetail/SamplePeriod select interval-sampled execution (detail
	// window and period in cycles; set both or neither). A sampled report is
	// an estimate and keys a distinct canonical job, so it never collides
	// with a detailed run of the same cell.
	SampleDetail int `json:"sample_detail,omitempty"`
	SamplePeriod int `json:"sample_period,omitempty"`
	// DeadlineMS bounds the job's wall-clock runtime; exceeding it fails the
	// job with error_kind "deadline". 0 means the server default; requests
	// above the server maximum are clamped to it.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// JobStatus is the status JSON for one job — the GET /v1/jobs/{id} body, the
// POST /v1/jobs response, and the payload of SSE "status" events.
type JobStatus struct {
	ID        string `json:"id"`
	Key       string `json:"key"`
	Bench     string `json:"bench"`
	Technique string `json:"technique"`
	State     State  `json:"state"`
	// Cycles is the latest simulated-cycle progress report (final cycle
	// count once done).
	Cycles    int64  `json:"cycles,omitempty"`
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// Report is the path the finished payload is served at.
	Report string `json:"report,omitempty"`
}

// job is one registry entry. Identity is content-addressed: id is the
// SHA-256 of the canonical job key, so re-submitting the same work from any
// client always lands on the same job (and the same report URL).
type job struct {
	id    string
	key   string
	bench string
	tech  core.Technique
	cfg   config.Config
	scale float64
	// runDeadline bounds the job's running phase; set before the job is
	// enqueued and read only by the worker that runs it.
	runDeadline time.Duration

	// ctx governs the whole job (queued and running); cancel plants a cause.
	ctx    context.Context
	cancel context.CancelCauseFunc

	mu     sync.Mutex
	state  State
	err    error
	cycles int64
	subs   map[chan []byte]struct{}
	done   chan struct{} // closed on terminal transition
}

// State returns the job's current state.
func (j *job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error, if any.
func (j *job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// status snapshots the job as its status JSON.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Key:       j.key,
		Bench:     j.bench,
		Technique: j.tech.String(),
		State:     j.state,
		Cycles:    j.cycles,
	}
	if j.err != nil {
		st.Error = j.err.Error()
		st.ErrorKind = errorKind(j.err)
	}
	if j.state == StateDone {
		st.Report = "/v1/reports/" + j.id
	}
	return st
}

// transition moves the job to a new state (recording err on terminal
// failure) and publishes the fresh status to subscribers. Terminal states
// are sticky: once done/failed/canceled, later transitions are ignored.
func (j *job) transition(state State, err error) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.err = err
	if state.terminal() {
		close(j.done)
	}
	j.mu.Unlock()
	j.publish()
}

// progress records a cycle-count progress report and publishes it.
func (j *job) progress(cycles int64) {
	j.mu.Lock()
	if cycles <= j.cycles {
		j.mu.Unlock()
		return
	}
	j.cycles = cycles
	j.mu.Unlock()
	j.publish()
}

// publish fans the current status out to every subscriber, dropping events a
// slow subscriber has no buffer for (the terminal event is never lost: the
// done channel carries it out-of-band).
func (j *job) publish() {
	data, err := json.Marshal(j.status())
	if err != nil {
		return
	}
	j.mu.Lock()
	for ch := range j.subs {
		select {
		case ch <- data:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe registers an SSE watcher; the returned cancel must be called on
// disconnect.
func (j *job) subscribe() (chan []byte, func()) {
	ch := make(chan []byte, 16)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// lifecycle holds the server's shutdown machinery: the root context every
// job derives from, and the worker pool's waitgroup.
type lifecycle struct {
	rootCtx    context.Context
	cancelRoot context.CancelCauseFunc
	wg         sync.WaitGroup
}

func (l *lifecycle) init() {
	l.rootCtx, l.cancelRoot = context.WithCancelCause(context.Background())
}

// buildJob resolves a JobRequest into a registry job: technique applied to
// the base machine, request overrides folded in, everything validated. The
// error string is client-facing (a 400 body).
func (s *Server) buildJob(req *JobRequest) (*job, error) {
	if req.Bench == "" {
		return nil, fmt.Errorf("missing field: bench")
	}
	if _, err := kernels.Benchmark(req.Bench); err != nil {
		return nil, fmt.Errorf("unknown benchmark %q", req.Bench)
	}
	if req.Technique == "" {
		return nil, fmt.Errorf("missing field: technique")
	}
	tech, err := core.ParseTechnique(req.Technique)
	if err != nil {
		return nil, fmt.Errorf("unknown technique %q", req.Technique)
	}
	scale := req.Scale
	if scale == 0 {
		scale = 1.0
	}
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
		return nil, fmt.Errorf("scale must be a positive finite number, got %v", scale)
	}
	// Non-zero overrides are applied verbatim — including invalid negative
	// values — so cfg.Validate rejects them with a precise message instead of
	// the server silently ignoring them.
	cfg := tech.Apply(s.opts.Base)
	if req.SMs != 0 {
		cfg.NumSMs = req.SMs
	}
	if req.Seed != nil {
		cfg.Seed = *req.Seed
	}
	if req.IdleDetect != 0 {
		cfg.IdleDetect = req.IdleDetect
	}
	if req.BreakEven != 0 {
		cfg.BreakEven = req.BreakEven
	}
	if req.WakeupDelay != 0 {
		cfg.WakeupDelay = req.WakeupDelay
	}
	if req.SampleDetail != 0 {
		cfg.SampleDetailCycles = req.SampleDetail
	}
	if req.SamplePeriod != 0 {
		cfg.SamplePeriod = req.SamplePeriod
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	key := core.JobKey(req.Bench, cfg, scale)
	j := &job{
		id:    store.HashKey(key),
		key:   key,
		bench: req.Bench,
		tech:  tech,
		cfg:   cfg,
		scale: scale,
		state: StateQueued,
		subs:  make(map[chan []byte]struct{}),
		done:  make(chan struct{}),
	}
	j.ctx, j.cancel = context.WithCancelCause(s.rootCtx)
	return j, nil
}

// deadline resolves a requested deadline (milliseconds) against the server's
// default and clamp.
func (s *Server) deadline(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = s.opts.DefaultDeadline
	}
	if s.opts.MaxDeadline > 0 && (d <= 0 || d > s.opts.MaxDeadline) {
		d = s.opts.MaxDeadline
	}
	return d
}

// handleSubmit admits one job: quota check, duplicate collapse, bounded
// queue. A fresh job answers 202 with its queued status; a duplicate of a
// live or completed job answers 200 with the existing status (the API-level
// face of the runner's singleflight). A failed or canceled job is replaced
// by its resubmission, which is what makes every error retryable.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if ok, wait := s.quotas.take(clientID(r), time.Now()); !ok {
		w.Header().Set("Retry-After", retryAfter(wait))
		writeError(w, http.StatusTooManyRequests, "client quota exceeded; retry in %s", wait.Round(time.Millisecond))
		return
	}
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	j, err := s.buildJob(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	deadline := s.deadline(req.DeadlineMS)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining: not admitting new jobs")
		return
	}
	if prev, ok := s.jobs[j.id]; ok {
		if st := prev.State(); st != StateFailed && st != StateCanceled {
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, prev.status())
			return
		}
		// Terminal failure: fall through and replace with the fresh job.
	}
	j.runDeadline = deadline
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "admission queue full (%d jobs); retry later", cap(s.queue))
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.pruneLocked()
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, j.status())
}

// pruneLocked evicts the oldest terminal jobs once the registry exceeds its
// bound. Live (queued/running) jobs are never pruned; their registry entry
// is what an SSE watcher or a poller is attached to. Pruned reports stay
// fetchable — the report endpoint falls through to the durable store.
func (s *Server) pruneLocked() {
	if len(s.jobs) <= s.opts.MaxJobs {
		return
	}
	kept := s.order[:0]
	for _, j := range s.order {
		if s.jobs[j.id] != j {
			continue // replaced by a resubmission; only the order slot remains
		}
		if len(s.jobs) > s.opts.MaxJobs && j.State().terminal() {
			delete(s.jobs, j.id)
			continue
		}
		kept = append(kept, j)
	}
	s.order = kept
}

// lookup returns the registry job for an id, or nil.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handleJob answers a status poll, or switches to an SSE stream when the
// client asked for text/event-stream.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no job %s", r.PathValue("id"))
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamJob(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// worker drains the admission queue, one simulation at a time.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job: arm the per-job deadline, run through the
// memoizing runner (cache tiers, singleflight, watchdog, panic recovery all
// apply), and record the terminal state.
func (s *Server) runJob(j *job) {
	j.transition(StateRunning, nil)
	ctx := j.ctx
	if j.runDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, j.runDeadline, core.ErrDeadline)
		defer cancel()
	}
	rep, err := s.runner(j.scale).RunCfgCtx(ctx, j.bench, j.cfg)
	switch {
	case err == nil:
		j.progress(rep.Cycles)
		j.transition(StateDone, nil)
	case isCanceled(err) && !errors.Is(err, core.ErrDeadline):
		j.transition(StateCanceled, err)
	default:
		j.transition(StateFailed, err)
	}
}

// isCanceled reports whether err is any cancellation: the plain context
// sentinels or the service's own causes.
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, ErrClientGone) ||
		errors.Is(err, ErrDraining)
}

// instrument is the Runner.Instrument hook for one scale's runner: it wires
// the engine's per-cycle probe to the job registry so SSE watchers see
// throttled progress events, and reports the final cycle count on
// completion. Simulations the registry does not know about (none today, but
// a future sweep path could share the runner) run unprobed.
func (s *Server) instrument(scale float64) core.Instrumenter {
	return func(bench string, cfg config.Config, k *kernels.Kernel, g *sim.GPU) func(*sim.Report) error {
		j := s.lookup(store.HashKey(core.JobKey(bench, cfg, scale)))
		if j == nil {
			return nil
		}
		every := s.opts.ProgressEveryCycles
		var last int64
		g.SetCycleProbe(func(smID int, cycle int64, _ []sim.LaneState) {
			// SM 0 alone reports, so each emission is one device-cycle
			// value; the probe races nothing (one goroutine steps SM 0,
			// and barrier rounds order epochs on the parallel engine).
			if smID != 0 || cycle-last < every {
				return
			}
			last = cycle
			j.progress(cycle)
		})
		return func(rep *sim.Report) error {
			j.progress(rep.Cycles)
			return nil
		}
	}
}

// Drain gracefully shuts the service down: stop admitting (submissions and
// health checks answer 503), let queued and running jobs — including a
// sweep's already-admitted cells — finish, and — if ctx expires first —
// cancel everything still in flight with ErrDraining and wait for the
// workers to exit. It returns the first of those two outcomes' error: nil
// for a clean drain, ctx's error for a forced one.
//
// The queue is closed off the Drain goroutine, after in-flight sweep feeders
// finish: a feeder blocked on the full queue must never race the close (a
// send on a closed channel panics), and once draining is set no new feeder
// can register. Single-job submissions send under the mutex after checking
// the draining flag, so they are ordered before the close the same way.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		go func() {
			s.senders.Wait()
			close(s.queue)
		}()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelRoot(ErrDraining)
		<-done
		return ctx.Err()
	}
}

// Close force-drains the service: admission stops and every in-flight job is
// canceled immediately.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(ctx)
}

// clientID identifies the quota principal: an explicit X-API-Client header
// when the client sets one, the remote host otherwise.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-API-Client"); c != "" {
		return c
	}
	host := r.RemoteAddr
	if i := strings.LastIndex(host, ":"); i >= 0 {
		host = host[:i]
	}
	return host
}

// retryAfter renders a wait as the whole-second Retry-After header value
// (rounded up; never below 1 — a zero would invite an immediate retry storm).
func retryAfter(wait time.Duration) string {
	secs := int64(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// encodeReport adapts the sim codec for the report endpoint.
func encodeReport(rep *sim.Report) ([]byte, error) { return sim.EncodeReport(rep) }
