package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"warpedgates/internal/sim"
)

// smallSweep expands to 4 sub-second cells on the test machine: 2 benches ×
// 2 techniques at scale 0.05.
const smallSweep = `{"benches":["nw","hotspot"],"techniques":["Baseline","WarpedGates"],"sms":[2],"scales":[0.05]}`

// postSweep submits a sweep and returns the decoded status.
func postSweep(t *testing.T, ts *httptest.Server, body string, wantStatus int) SweepStatus {
	t.Helper()
	resp, raw := doJSON(t, ts, http.MethodPost, "/v1/sweeps", body, nil)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /v1/sweeps = %d, want %d; body: %s", resp.StatusCode, wantStatus, raw)
	}
	var st SweepStatus
	if err := json.Unmarshal([]byte(raw), &st); err != nil {
		t.Fatalf("sweep response %q: %v", raw, err)
	}
	return st
}

// waitSweepTerminal polls a sweep until every cell is terminal.
func waitSweepTerminal(t *testing.T, ts *httptest.Server, id string) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, raw := doJSON(t, ts, http.MethodGet, "/v1/sweeps/"+id, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll sweep %s: status %d, body %s", id, resp.StatusCode, raw)
		}
		var st SweepStatus
		if err := json.Unmarshal([]byte(raw), &st); err != nil {
			t.Fatalf("sweep poll response %q: %v", raw, err)
		}
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still %s after 60s: %+v", id, st.State, st.Counts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepLifecycle walks a sweep end to end: submit, aggregate status,
// every cell report fetchable, and — the dedup contract at the API boundary —
// resubmitting the identical grid lands on the same content-addressed sweep
// with zero new simulations.
func TestSweepLifecycle(t *testing.T) {
	s, ts := newTestServer(t, nil)
	st := postSweep(t, ts, smallSweep, http.StatusAccepted)
	if st.Cells != 4 {
		t.Fatalf("sweep has %d cells, want 4", st.Cells)
	}
	st = waitSweepTerminal(t, ts, st.ID)
	if st.State != StateDone || st.Counts[StateDone] != 4 {
		t.Fatalf("sweep ended %s with counts %+v, want done x4", st.State, st.Counts)
	}
	for _, cell := range st.CellStatus {
		if cell.Report == "" {
			t.Fatalf("done cell %s has no report link", cell.ID)
		}
		resp, body := doJSON(t, ts, http.MethodGet, cell.Report, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, body %s", cell.Report, resp.StatusCode, body)
		}
	}
	if n := s.Simulations(); n != 4 {
		t.Fatalf("sweep ran %d simulations, want 4", n)
	}

	again := postSweep(t, ts, smallSweep, http.StatusOK)
	if again.ID != st.ID {
		t.Fatalf("resubmitted sweep got id %s, want %s", again.ID, st.ID)
	}
	if again.State != StateDone {
		t.Fatalf("resubmitted sweep state %s, want done", again.State)
	}
	if n := s.Simulations(); n != 4 {
		t.Fatalf("resubmission ran %d simulations total, want 4", n)
	}
}

// TestSweepCollapsesOntoExistingJob pins the cell-level dedup: a sweep whose
// only cell matches an already-finished job reuses that job instead of
// re-running it.
func TestSweepCollapsesOntoExistingJob(t *testing.T) {
	s, ts := newTestServer(t, nil)
	job := submitAndWait(t, ts, smallJob)
	if job.State != StateDone {
		t.Fatalf("seed job ended %s (%s)", job.State, job.Error)
	}
	st := postSweep(t, ts, `{"benches":["hotspot"],"techniques":["WarpedGates"],"sms":[2],"scales":[0.05]}`,
		http.StatusAccepted)
	if st.Cells != 1 {
		t.Fatalf("sweep has %d cells, want 1", st.Cells)
	}
	if st.CellStatus[0].ID != job.ID {
		t.Fatalf("sweep cell id %s, want the existing job %s", st.CellStatus[0].ID, job.ID)
	}
	st = waitSweepTerminal(t, ts, st.ID)
	if st.State != StateDone {
		t.Fatalf("sweep ended %s", st.State)
	}
	if n := s.Simulations(); n != 1 {
		t.Fatalf("%d simulations after job+sweep of the same cell, want 1", n)
	}
}

// TestSweepValidationTable pins the sweep endpoint's 4xx/5xx contracts.
func TestSweepValidationTable(t *testing.T) {
	cases := []struct {
		name       string
		opts       func(*Options)
		prep       func(t *testing.T, s *Server, ts *httptest.Server)
		method     string
		path       string
		body       string
		wantStatus int
		wantBody   []string
	}{
		{
			name:       "unknown benchmark is 400",
			method:     http.MethodPost,
			path:       "/v1/sweeps",
			body:       `{"benches":["nosuch"]}`,
			wantStatus: http.StatusBadRequest,
			wantBody:   []string{"unknown benchmark", "nosuch"},
		},
		{
			name:       "invalid shard is 400",
			method:     http.MethodPost,
			path:       "/v1/sweeps",
			body:       `{"benches":["nw"],"shard_index":3,"shard_count":2}`,
			wantStatus: http.StatusBadRequest,
			wantBody:   []string{"invalid shard"},
		},
		{
			name:       "unknown request field is 400 not silently ignored",
			method:     http.MethodPost,
			path:       "/v1/sweeps",
			body:       `{"benches":["nw"],"max_cycles":7}`,
			wantStatus: http.StatusBadRequest,
			wantBody:   []string{"max_cycles"},
		},
		{
			name:       "oversized sweep is 400 with a shard hint",
			opts:       func(o *Options) { o.MaxSweepCells = 2 },
			method:     http.MethodPost,
			path:       "/v1/sweeps",
			body:       smallSweep,
			wantStatus: http.StatusBadRequest,
			wantBody:   []string{"4 cells", "limit is 2", "shard"},
		},
		{
			name:       "invalid sampling combo is 400",
			method:     http.MethodPost,
			path:       "/v1/sweeps",
			body:       `{"benches":["nw"],"techniques":["Baseline"],"sample_detail":500,"sample_period":500}`,
			wantStatus: http.StatusBadRequest,
			wantBody:   []string{"SamplePeriod"},
		},
		{
			name: "draining submit is 503",
			prep: func(t *testing.T, s *Server, ts *httptest.Server) {
				s.Close()
			},
			method:     http.MethodPost,
			path:       "/v1/sweeps",
			body:       smallSweep,
			wantStatus: http.StatusServiceUnavailable,
			wantBody:   []string{"draining"},
		},
		{
			name:       "unknown sweep is 404",
			method:     http.MethodGet,
			path:       "/v1/sweeps/" + unknownID,
			wantStatus: http.StatusNotFound,
			wantBody:   []string{"no sweep"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, ts := newTestServer(t, tc.opts)
			if tc.prep != nil {
				tc.prep(t, s, ts)
			}
			resp, body := doJSON(t, ts, tc.method, tc.path, tc.body, nil)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("%s %s = %d, want %d; body: %s", tc.method, tc.path, resp.StatusCode, tc.wantStatus, body)
			}
			for _, want := range tc.wantBody {
				if !strings.Contains(body, want) {
					t.Errorf("body missing %q:\n%s", want, body)
				}
			}
		})
	}
}

// TestSampledJobAndSweep pins the sampled path through the API: sampling
// parameters key distinct canonical jobs, and the served report carries the
// sampling block.
func TestSampledJobAndSweep(t *testing.T) {
	_, ts := newTestServer(t, nil)
	st := submitAndWait(t, ts, `{"bench":"hotspot","technique":"WarpedGates","sms":2,"scale":0.05,"sample_detail":500,"sample_period":2500}`)
	if st.State != StateDone {
		t.Fatalf("sampled job ended %s (%s)", st.State, st.Error)
	}
	if !strings.Contains(st.Key, "sample=500/2500") {
		t.Fatalf("sampled job key %q does not carry the sampling axis", st.Key)
	}

	sw := postSweep(t, ts, `{"benches":["hotspot"],"techniques":["WarpedGates"],"sms":[2],"scales":[0.05],"sample_detail":500,"sample_period":2500}`,
		http.StatusAccepted)
	sw = waitSweepTerminal(t, ts, sw.ID)
	if sw.State != StateDone {
		t.Fatalf("sampled sweep ended %s: %+v", sw.State, sw.Counts)
	}
	// The sweep's one cell is the sampled job submitted above — same key,
	// same content address — and its report decodes with the sampling block.
	cell := sw.CellStatus[0]
	if cell.ID != st.ID {
		t.Fatalf("sampled sweep cell %s, want the sampled job %s", cell.ID, st.ID)
	}
	resp, body := doJSON(t, ts, http.MethodGet, cell.Report, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", cell.Report, resp.StatusCode)
	}
	rep, err := sim.DecodeReport([]byte(body))
	if err != nil {
		t.Fatalf("decoding sampled report: %v", err)
	}
	if !rep.Sampled {
		t.Fatal("sampled cell's report has Sampled unset")
	}
}

// TestSweepDrainCancelsPendingCells is the drain-safety test for the sweep
// feeder: a sweep bigger than the admission queue blocks its feeder; closing
// the server must cancel the blocked and queued cells (never panic on a
// closed queue) and leave the sweep terminal.
func TestSweepDrainCancelsPendingCells(t *testing.T) {
	s, ts := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 1
	})
	// Four scale-30 cells: minutes each uncanceled, so the lone worker pins
	// one, one sits in the depth-1 queue, and the feeder blocks on the rest.
	st := postSweep(t, ts, `{"benches":["hotspot","srad","backprop","nw"],"techniques":["WarpedGates"],"sms":[2],"scales":[30]}`,
		http.StatusAccepted)
	if st.Cells != 4 {
		t.Fatalf("sweep has %d cells, want 4", st.Cells)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur := postSweep(t, ts, `{"benches":["hotspot","srad","backprop","nw"],"techniques":["WarpedGates"],"sms":[2],"scales":[30]}`,
			http.StatusOK)
		if cur.Counts[StateRunning] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no cell reached running: %+v", cur.Counts)
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close()
	final := waitSweepTerminal(t, ts, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("drained sweep ended %s with counts %+v, want canceled", final.State, final.Counts)
	}
	if got := final.Counts[StateCanceled]; got != 4 {
		t.Fatalf("drained sweep canceled %d of 4 cells: %+v", got, final.Counts)
	}
}
