package gating

import (
	"testing"
	"testing/quick"

	"warpedgates/internal/config"
)

// newTestCtrl builds a controller with fixed parameters.
func newTestCtrl(kind config.GatingKind, idleDetect, bet, wake int) *Controller {
	return NewController(kind, func() int { return idleDetect }, bet, wake)
}

// tickIdle advances n idle cycles.
func tickIdle(c *Controller, n int) {
	for i := 0; i < n; i++ {
		c.Tick(false)
	}
}

func TestNoGatingPolicyNeverGates(t *testing.T) {
	c := newTestCtrl(config.GateNone, 5, 14, 3)
	tickIdle(c, 1000)
	if c.Gated() {
		t.Fatal("GateNone controller gated")
	}
	st := c.Stats()
	if st.GatingEvents != 0 || st.PoweredCycles != 1000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConventionalGatesAfterIdleDetect(t *testing.T) {
	c := newTestCtrl(config.GateConventional, 5, 14, 3)
	tickIdle(c, 4)
	if c.Gated() {
		t.Fatal("gated before idle-detect")
	}
	tickIdle(c, 1) // 5th idle cycle: threshold reached
	if !c.Gated() {
		t.Fatal("not gated at idle-detect")
	}
	if c.State() != StUncompensated {
		t.Fatalf("state = %s, want Uncompensated", c.State())
	}
	if c.Stats().GatingEvents != 1 {
		t.Fatal("gating event not counted")
	}
}

func TestConventionalWakesFromUncompensated(t *testing.T) {
	c := newTestCtrl(config.GateConventional, 5, 14, 3)
	tickIdle(c, 6) // gated, 1 cycle into uncompensated
	c.RequestIssue()
	c.Tick(false)
	if c.State() != StWakeup {
		t.Fatalf("state = %s, want Wakeup", c.State())
	}
	st := c.Stats()
	if st.NegativeEvents != 1 || st.Wakeups != 1 {
		t.Fatalf("negative=%d wakeups=%d", st.NegativeEvents, st.Wakeups)
	}
	// Wakeup takes 3 cycles.
	tickIdle(c, 2)
	if c.CanIssue() {
		t.Fatal("issuable before wakeup delay elapsed")
	}
	tickIdle(c, 1)
	if !c.CanIssue() {
		t.Fatal("not issuable after wakeup delay")
	}
}

func TestBlackoutRefusesEarlyWakeup(t *testing.T) {
	for _, kind := range []config.GatingKind{config.GateNaiveBlackout, config.GateCoordBlackout} {
		c := newTestCtrl(kind, 5, 14, 3)
		tickIdle(c, 5) // gated
		if !c.InBlackout() {
			t.Fatalf("%s: not in blackout after gating", kind)
		}
		// Demand during the whole uncompensated window must be denied.
		for i := 0; i < 13; i++ {
			c.RequestIssue()
			c.Tick(false)
			if c.State() == StWakeup || c.State() == StActive {
				t.Fatalf("%s: woke during blackout at cycle %d", kind, i)
			}
		}
		st := c.Stats()
		if st.NegativeEvents != 0 {
			t.Fatalf("%s: blackout recorded negative events", kind)
		}
		if st.DeniedWakeups == 0 {
			t.Fatalf("%s: denied wakeups not counted", kind)
		}
	}
}

func TestBlackoutCriticalWakeup(t *testing.T) {
	c := newTestCtrl(config.GateNaiveBlackout, 5, 14, 3)
	tickIdle(c, 5) // gated at cycle 5
	// Demand pending every cycle; the uncompensated state lasts exactly BET
	// (14) cycles, after which the first compensated-cycle demand wakes the
	// unit and counts as critical.
	for i := 0; i < 14; i++ {
		c.RequestIssue()
		c.Tick(false)
	}
	if c.State() != StCompensated {
		t.Fatalf("state = %s, want Compensated after BET", c.State())
	}
	c.RequestIssue()
	c.Tick(false)
	if c.State() != StWakeup {
		t.Fatalf("state = %s, want Wakeup", c.State())
	}
	st := c.Stats()
	if st.CriticalWakeups != 1 {
		t.Fatalf("critical wakeups = %d, want 1", st.CriticalWakeups)
	}
}

func TestLateWakeupIsNotCritical(t *testing.T) {
	c := newTestCtrl(config.GateNaiveBlackout, 5, 14, 3)
	tickIdle(c, 5)
	tickIdle(c, 13) // BET elapses with no demand
	tickIdle(c, 4)  // linger compensated
	c.RequestIssue()
	c.Tick(false)
	st := c.Stats()
	if st.CriticalWakeups != 0 {
		t.Fatalf("late wakeup counted as critical")
	}
	if st.Wakeups != 1 {
		t.Fatalf("wakeups = %d", st.Wakeups)
	}
}

func TestBusyResetsIdleCounter(t *testing.T) {
	c := newTestCtrl(config.GateConventional, 5, 14, 3)
	tickIdle(c, 4)
	c.Tick(true) // busy resets
	tickIdle(c, 4)
	if c.Gated() {
		t.Fatal("gated although idle run was interrupted")
	}
	tickIdle(c, 1)
	if !c.Gated() {
		t.Fatal("not gated after full idle-detect window")
	}
}

func TestIdlePeriodHistogram(t *testing.T) {
	c := newTestCtrl(config.GateNone, 5, 14, 0)
	tickIdle(c, 3)
	c.Tick(true)
	tickIdle(c, 7)
	c.Tick(true)
	c.Finish()
	h := c.Stats().IdlePeriods
	if h.Total() != 2 || h.Count(3) != 1 || h.Count(7) != 1 {
		t.Fatalf("histogram = %s", h)
	}
}

func TestFinishClosesOpenRun(t *testing.T) {
	c := newTestCtrl(config.GateNone, 5, 14, 0)
	tickIdle(c, 9)
	c.Finish()
	if c.Stats().IdlePeriods.Count(9) != 1 {
		t.Fatal("open idle run not recorded by Finish")
	}
	// Finish is idempotent.
	c.Finish()
	if c.Stats().IdlePeriods.Total() != 1 {
		t.Fatal("Finish double-counted")
	}
}

func TestBusyWhileGatedPanics(t *testing.T) {
	c := newTestCtrl(config.GateConventional, 5, 14, 3)
	tickIdle(c, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("busy while gated did not panic")
		}
	}()
	c.Tick(true)
}

func TestZeroWakeupDelay(t *testing.T) {
	c := newTestCtrl(config.GateConventional, 2, 5, 0)
	tickIdle(c, 2)
	if !c.Gated() {
		t.Fatal("not gated")
	}
	c.RequestIssue()
	c.Tick(false)
	if !c.CanIssue() {
		t.Fatal("zero wakeup delay should make the unit immediately issuable")
	}
}

func TestForceGateDirective(t *testing.T) {
	c := newTestCtrl(config.GateCoordBlackout, 5, 14, 3)
	c.SetDirectives(false, true)
	c.Tick(false) // force-gated on the first idle cycle
	if !c.Gated() {
		t.Fatal("force directive ignored")
	}
}

func TestInhibitGateDirective(t *testing.T) {
	c := newTestCtrl(config.GateCoordBlackout, 2, 14, 3)
	for i := 0; i < 50; i++ {
		c.SetDirectives(true, false)
		c.Tick(false)
	}
	if c.Gated() {
		t.Fatal("inhibit directive ignored")
	}
	// Directives are single-cycle: without renewal the unit gates normally.
	c.Tick(false)
	if !c.Gated() {
		t.Fatal("controller did not gate after inhibit expired")
	}
}

func TestInhibitWinsOverForce(t *testing.T) {
	c := newTestCtrl(config.GateCoordBlackout, 2, 14, 3)
	c.SetDirectives(true, true)
	c.Tick(false)
	if c.Gated() {
		t.Fatal("inhibit should win over force")
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewController(config.GateNone, nil, 14, 3) },
		func() { newTestCtrl(config.GateNone, 5, 0, 3) },
		func() { newTestCtrl(config.GateNone, 5, 14, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestStateStrings(t *testing.T) {
	names := map[State]string{
		StActive: "Active", StUncompensated: "Uncompensated",
		StCompensated: "Compensated", StWakeup: "Wakeup",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("State %d = %s", s, s)
		}
	}
}

// TestStateMachineInvariants drives a controller with random busy/demand
// traffic and checks the legality invariants of the paper's state machine on
// every transition.
func TestStateMachineInvariants(t *testing.T) {
	f := func(seed uint16, kindRaw, idRaw uint8) bool {
		kinds := []config.GatingKind{
			config.GateNone, config.GateConventional,
			config.GateNaiveBlackout, config.GateCoordBlackout,
		}
		kind := kinds[int(kindRaw)%len(kinds)]
		idleDetect := int(idRaw % 8)
		bet := 5
		wake := 2
		c := newTestCtrl(kind, idleDetect, bet, wake)

		rng := seed
		next := func() uint16 { rng = rng*25173 + 13849; return rng }

		gatedRun := 0
		for i := 0; i < 3000; i++ {
			prev := c.State()
			busy := next()%3 == 0 && prev == StActive
			if next()%4 == 0 {
				c.RequestIssue()
			}
			c.Tick(busy)
			cur := c.State()

			// Invariant 1: gated implies the policy allows gating at all.
			if kind == config.GateNone && cur != StActive {
				return false
			}
			// Invariant 2: blackout policies never wake before break-even.
			if (kind == config.GateNaiveBlackout || kind == config.GateCoordBlackout) &&
				prev == StUncompensated && cur == StWakeup {
				return false
			}
			// Invariant 3: track that uncompensated lasts at most BET cycles.
			if cur == StUncompensated {
				gatedRun++
				if gatedRun > bet {
					return false
				}
			} else {
				gatedRun = 0
			}
			// Invariant 4: legal transitions only.
			if !legalTransition(prev, cur) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// legalTransition encodes the edges of the paper's Figure 2c state machine
// (with the Blackout modification removing Uncompensated->Wakeup for
// blackout policies, checked separately).
func legalTransition(from, to State) bool {
	if from == to {
		return true
	}
	switch from {
	case StActive:
		return to == StUncompensated
	case StUncompensated:
		return to == StCompensated || to == StWakeup
	case StCompensated:
		return to == StWakeup
	case StWakeup:
		return to == StActive
	}
	return false
}

// TestEnergyAccountingConsistency checks that cycle counters partition time.
func TestEnergyAccountingConsistency(t *testing.T) {
	f := func(seed uint16) bool {
		c := newTestCtrl(config.GateConventional, 3, 6, 2)
		rng := seed
		next := func() uint16 { rng = rng*25173 + 13849; return rng }
		const n = 2000
		for i := 0; i < n; i++ {
			busy := next()%3 == 0 && c.State() == StActive
			if next()%5 == 0 {
				c.RequestIssue()
			}
			c.Tick(busy)
		}
		st := c.Stats()
		if st.BusyCycles+st.IdleCycles != n {
			return false
		}
		if st.PoweredCycles+st.GatedCycles != n {
			return false
		}
		return st.UncompCycles+st.CompCycles == st.GatedCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
