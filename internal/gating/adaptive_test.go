package gating

import (
	"testing"

	"warpedgates/internal/config"
)

func adaptiveCfg() config.Config {
	c := config.GTX480()
	c.AdaptiveIdleDetect = true
	return c
}

func TestAdaptiveDisabledStaysPinned(t *testing.T) {
	c := config.GTX480()
	c.AdaptiveIdleDetect = false
	a := NewAdaptiveIdleDetect(c)
	for i := 0; i < 10000; i++ {
		a.Tick(100)
	}
	if a.Value() != c.IdleDetect {
		t.Fatalf("disabled adaptation moved the window to %d", a.Value())
	}
	if a.Enabled() {
		t.Fatal("Enabled() wrong")
	}
}

func TestAdaptiveIncrementsOnCriticalStorm(t *testing.T) {
	a := NewAdaptiveIdleDetect(adaptiveCfg())
	start := a.Value()
	// One epoch with more than threshold (5) critical wakeups.
	for i := 0; i < 1000; i++ {
		crit := 0
		if i < 6 {
			crit = 1
		}
		a.Tick(crit)
	}
	if a.Value() != start+1 {
		t.Fatalf("window = %d, want %d after critical storm", a.Value(), start+1)
	}
}

func TestAdaptiveExactThresholdDoesNotIncrement(t *testing.T) {
	// The paper's rule is "greater than a defined threshold".
	a := NewAdaptiveIdleDetect(adaptiveCfg())
	start := a.Value()
	for i := 0; i < 1000; i++ {
		crit := 0
		if i < 5 {
			crit = 1
		}
		a.Tick(crit)
	}
	if a.Value() != start {
		t.Fatalf("window moved to %d on exactly-threshold epoch", a.Value())
	}
}

func TestAdaptiveBoundedAbove(t *testing.T) {
	cfg := adaptiveCfg()
	a := NewAdaptiveIdleDetect(cfg)
	// Hammer criticals for many epochs.
	for e := 0; e < 50; e++ {
		for i := 0; i < 1000; i++ {
			a.Tick(1)
		}
	}
	if a.Value() != cfg.IdleDetectMax {
		t.Fatalf("window = %d, want capped at %d", a.Value(), cfg.IdleDetectMax)
	}
}

func TestAdaptiveDecrementsAfterQuietEpochs(t *testing.T) {
	cfg := adaptiveCfg()
	a := NewAdaptiveIdleDetect(cfg)
	// Push the window up twice.
	for e := 0; e < 2; e++ {
		for i := 0; i < 1000; i++ {
			a.Tick(1)
		}
	}
	up := a.Value()
	if up <= cfg.IdleDetectMin {
		t.Fatalf("setup failed, window = %d", up)
	}
	// Four quiet epochs trigger exactly one decrement (paper §5.1:
	// "decremented conservatively every four epochs").
	for i := 0; i < 3*1000; i++ {
		a.Tick(0)
	}
	if a.Value() != up {
		t.Fatalf("window decremented early: %d", a.Value())
	}
	for i := 0; i < 1000; i++ {
		a.Tick(0)
	}
	if a.Value() != up-1 {
		t.Fatalf("window = %d, want %d after 4 quiet epochs", a.Value(), up-1)
	}
}

func TestAdaptiveBoundedBelow(t *testing.T) {
	cfg := adaptiveCfg()
	a := NewAdaptiveIdleDetect(cfg)
	for i := 0; i < 100*1000; i++ {
		a.Tick(0)
	}
	if a.Value() != cfg.IdleDetectMin {
		t.Fatalf("window = %d, want floor %d", a.Value(), cfg.IdleDetectMin)
	}
}

func TestAdaptiveCriticalStormResetsQuietStreak(t *testing.T) {
	cfg := adaptiveCfg()
	a := NewAdaptiveIdleDetect(cfg)
	// Raise the window so a decrement is possible.
	for i := 0; i < 1000; i++ {
		a.Tick(1)
	}
	up := a.Value()
	// Three quiet epochs, then a noisy one: the streak must reset.
	for i := 0; i < 3*1000; i++ {
		a.Tick(0)
	}
	for i := 0; i < 1000; i++ {
		a.Tick(1)
	}
	// Three more quiet epochs: still no decrement (streak restarted).
	for i := 0; i < 3*1000; i++ {
		a.Tick(0)
	}
	if a.Value() < up {
		t.Fatal("quiet streak not reset by a noisy epoch")
	}
}

func TestAdaptiveStartClampedToBounds(t *testing.T) {
	cfg := adaptiveCfg()
	cfg.IdleDetect = 2 // below the min bound of 5
	a := NewAdaptiveIdleDetect(cfg)
	if a.Value() != cfg.IdleDetectMin {
		t.Fatalf("start value %d not clamped to min %d", a.Value(), cfg.IdleDetectMin)
	}
}

func TestAdaptiveNegativePanics(t *testing.T) {
	a := NewAdaptiveIdleDetect(adaptiveCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("negative criticals did not panic")
		}
	}()
	a.Tick(-1)
}

func TestAdaptiveStats(t *testing.T) {
	a := NewAdaptiveIdleDetect(adaptiveCfg())
	for i := 0; i < 2000; i++ {
		a.Tick(1)
	}
	inc, dec, epochs := a.Stats()
	if epochs != 2 || inc != 2 || dec != 0 {
		t.Fatalf("stats = %d/%d/%d", inc, dec, epochs)
	}
}
