package gating

import (
	"testing"

	"warpedgates/internal/config"
)

func BenchmarkControllerTick(b *testing.B) {
	c := NewController(config.GateCoordBlackout, func() int { return 5 }, 14, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		busy := i%7 < 2 && c.State() == StActive
		if i%11 == 0 {
			c.RequestIssue()
		}
		c.Tick(busy)
	}
}

func BenchmarkCoordinatorPreTick(b *testing.B) {
	x := NewController(config.GateCoordBlackout, func() int { return 5 }, 14, 3)
	y := NewController(config.GateCoordBlackout, func() int { return 5 }, 14, 3)
	co := NewCoordinator(config.GateCoordBlackout, x, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co.PreTick(i % 5)
		x.Tick(false)
		y.Tick(i%3 == 0 && y.State() == StActive)
	}
}

func BenchmarkAdaptiveTick(b *testing.B) {
	cfg := config.GTX480()
	cfg.AdaptiveIdleDetect = true
	a := NewAdaptiveIdleDetect(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Tick(i % 2)
	}
}
