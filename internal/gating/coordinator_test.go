package gating

import (
	"testing"

	"warpedgates/internal/config"
)

// gatedCtrl returns a controller already in the uncompensated (gated) state.
func gatedCtrl(kind config.GatingKind) *Controller {
	c := newTestCtrl(kind, 2, 10, 3)
	tickIdle(c, 2)
	if !c.Gated() {
		panic("setup: controller not gated")
	}
	return c
}

func TestCoordinatorOnlyActsForCoordBlackout(t *testing.T) {
	a := newTestCtrl(config.GateNaiveBlackout, 2, 10, 3)
	b := gatedCtrl(config.GateNaiveBlackout)
	co := NewCoordinator(config.GateNaiveBlackout, a, b)
	co.PreTick(0) // would force-gate under coordination
	a.Tick(false) // first idle cycle: naive policy needs idle-detect (2)
	if a.Gated() {
		t.Fatal("naive blackout coordinator applied directives")
	}
}

func TestCoordinatorForceGatesSecondClusterWhenNoWork(t *testing.T) {
	a := newTestCtrl(config.GateCoordBlackout, 5, 10, 3)
	b := gatedCtrl(config.GateCoordBlackout)
	co := NewCoordinator(config.GateCoordBlackout, a, b)
	// Peer gated and ACTV == 0: the second cluster gates immediately,
	// without waiting for idle-detect (paper §5).
	co.PreTick(0)
	a.Tick(false)
	if !a.Gated() {
		t.Fatal("second cluster not force-gated with empty active subset")
	}
}

func TestCoordinatorInhibitsSecondClusterWhileWorkWaits(t *testing.T) {
	a := newTestCtrl(config.GateCoordBlackout, 2, 10, 3)
	b := gatedCtrl(config.GateCoordBlackout)
	co := NewCoordinator(config.GateCoordBlackout, a, b)
	// Peer gated and a warp waiting: the second cluster must stay powered
	// even far beyond its idle-detect window.
	for i := 0; i < 40; i++ {
		co.PreTick(3)
		a.Tick(false)
		b.Tick(false)
		if a.Gated() {
			t.Fatalf("second cluster gated at cycle %d despite waiting warp", i)
		}
	}
}

func TestCoordinatorSecondClusterGatesWhileFirstHeldOn(t *testing.T) {
	a := newTestCtrl(config.GateCoordBlackout, 3, 10, 3)
	b := newTestCtrl(config.GateCoordBlackout, 3, 10, 3)
	co := NewCoordinator(config.GateCoordBlackout, a, b)
	// Neither gated and warps waiting: the second cluster gates by plain
	// idle-detect while the first (the consolidation target) is held on —
	// "at least one of the two clusters will be always ON whenever there
	// is a warp in the associated active warp subset" (paper §5).
	for i := 0; i < 3; i++ {
		co.PreTick(5)
		a.Tick(false)
		b.Tick(false)
	}
	if a.Gated() {
		t.Fatal("primary cluster gated while warps were waiting")
	}
	if !b.Gated() {
		t.Fatal("secondary idle cluster did not gate after idle-detect")
	}
}

func TestCoordinatorBothGateWhenSubsetEmpty(t *testing.T) {
	a := newTestCtrl(config.GateCoordBlackout, 3, 10, 3)
	b := newTestCtrl(config.GateCoordBlackout, 3, 10, 3)
	co := NewCoordinator(config.GateCoordBlackout, a, b)
	// ACTV == 0: no warp of the type waits anywhere, so nothing holds the
	// primary cluster on; the idle-detect rule applies to both, and once
	// one gates the other follows immediately (force directive).
	for i := 0; i < 4; i++ {
		co.PreTick(0)
		a.Tick(false)
		b.Tick(false)
	}
	if !a.Gated() || !b.Gated() {
		t.Fatalf("clusters not both gated with empty subset: a=%v b=%v", a.State(), b.State())
	}
}

func TestAllInBlackout(t *testing.T) {
	a := gatedCtrl(config.GateCoordBlackout)
	b := gatedCtrl(config.GateCoordBlackout)
	co := NewCoordinator(config.GateCoordBlackout, a, b)
	if !co.AllInBlackout() {
		t.Fatal("both gated-uncompensated clusters should report blackout")
	}
	// Drain a past break-even: it leaves blackout (wakeable), so not all in
	// blackout anymore.
	for i := 0; i < 10; i++ {
		a.Tick(false)
	}
	if a.InBlackout() {
		t.Fatal("cluster still in blackout after break-even")
	}
	if co.AllInBlackout() {
		t.Fatal("AllInBlackout should be false once one cluster is wakeable")
	}
}

func TestCoordinatorConstructorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty coordinator accepted")
		}
	}()
	NewCoordinator(config.GateCoordBlackout)
}

func TestCoordinatorNilControllerRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil controller accepted")
		}
	}()
	NewCoordinator(config.GateCoordBlackout, nil)
}

func TestCoordinatorControllersAccessor(t *testing.T) {
	a := newTestCtrl(config.GateCoordBlackout, 2, 10, 3)
	co := NewCoordinator(config.GateCoordBlackout, a)
	if len(co.Controllers()) != 1 || co.Controllers()[0] != a {
		t.Fatal("Controllers accessor broken")
	}
}
