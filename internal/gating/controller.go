// Package gating implements the power-gating controllers evaluated in the
// paper: conventional power gating (Hu et al. [13]), the paper's Blackout
// scheme (no wakeup before break-even time), Coordinated Blackout across the
// two clusters of an execution-unit type, and the Adaptive idle-detect
// mechanism that tunes the idle-detect window from critical-wakeup counts.
//
// One Controller drives one gating domain (e.g. the INT pipes of SP cluster 0
// behind a single sleep transistor). The simulator calls RequestIssue during
// the issue stage whenever a ready instruction wants a gated unit, and Tick
// exactly once per cycle with the unit's busy/idle status.
package gating

import (
	"fmt"

	"warpedgates/internal/config"
	"warpedgates/internal/stats"
)

// State is the power-gating controller state (paper Figure 2c).
type State uint8

// Controller states. StActive corresponds to the paper's "Idle_detect" state:
// powered and counting idle cycles.
const (
	StActive State = iota
	StUncompensated
	StCompensated
	StWakeup
)

// String names the state.
func (s State) String() string {
	switch s {
	case StActive:
		return "Active"
	case StUncompensated:
		return "Uncompensated"
	case StCompensated:
		return "Compensated"
	case StWakeup:
		return "Wakeup"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Stats aggregates everything the paper's figures need from one gating domain.
type Stats struct {
	BusyCycles    uint64
	IdleCycles    uint64 // cycles with no instruction in the unit (any state)
	PoweredCycles uint64 // cycles consuming static power (Active + Wakeup)
	GatedCycles   uint64 // cycles with the sleep switch off
	UncompCycles  uint64 // gated cycles spent before break-even
	CompCycles    uint64 // gated cycles spent after break-even (Fig. 8b)

	GatingEvents    uint64 // sleep-switch activations (each charges E_ovh)
	Wakeups         uint64 // transitions into StWakeup (Fig. 8c)
	NegativeEvents  uint64 // wakeups taken from the uncompensated state
	CriticalWakeups uint64 // wakeups at the first compensated cycle (Fig. 6)
	DeniedWakeups   uint64 // demand arriving during blackout that had to wait

	// IdlePeriods is the distribution of maximal idle-run lengths (Fig. 3).
	IdlePeriods *stats.Histogram
}

// Controller is the per-domain power-gating state machine.
type Controller struct {
	kind        config.GatingKind
	idleDetect  func() int // indirection so Adaptive idle-detect can retune it
	breakEven   int
	wakeupDelay int

	state   State
	idleCtr int // consecutive idle cycles while Active
	betCtr  int // remaining cycles to break-even while gated
	wakeCtr int // remaining wakeup cycles

	curIdleRun     int  // length of the in-progress idle run
	demand         bool // a ready instruction wanted this unit this cycle
	inhibitGate    bool // coordinator directive: do not gate this cycle
	forceGate      bool // coordinator directive: gate now if idle
	firstCompCycle bool // true during the first cycle spent compensated

	st Stats
}

// NewController builds a controller for the given policy. idleDetect is
// evaluated every cycle, so adaptive mechanisms can share one closure across
// the two clusters of a type. breakEven and wakeupDelay are in cycles.
func NewController(kind config.GatingKind, idleDetect func() int, breakEven, wakeupDelay int) *Controller {
	if idleDetect == nil {
		panic("gating: nil idleDetect")
	}
	if breakEven <= 0 {
		panic(fmt.Sprintf("gating: breakEven must be positive, got %d", breakEven))
	}
	if wakeupDelay < 0 {
		panic(fmt.Sprintf("gating: wakeupDelay must be non-negative, got %d", wakeupDelay))
	}
	return &Controller{
		kind:        kind,
		idleDetect:  idleDetect,
		breakEven:   breakEven,
		wakeupDelay: wakeupDelay,
		state:       StActive,
		st:          Stats{IdlePeriods: stats.NewHistogram()},
	}
}

// State returns the current controller state.
func (c *Controller) State() State { return c.state }

// Gated reports whether the sleep switch is off (unit consuming ~no leakage).
func (c *Controller) Gated() bool {
	return c.state == StUncompensated || c.state == StCompensated
}

// InBlackout reports whether the unit is gated and the policy forbids waking
// it right now. Conventional gating never blacks out; Blackout policies do
// until break-even has passed.
func (c *Controller) InBlackout() bool {
	if c.state != StUncompensated {
		return false
	}
	return c.kind == config.GateNaiveBlackout || c.kind == config.GateCoordBlackout
}

// CanIssue reports whether an instruction may be issued to the unit this
// cycle: only a fully powered unit accepts work.
func (c *Controller) CanIssue() bool { return c.state == StActive }

// RequestIssue tells the controller a ready instruction wanted this unit this
// cycle while CanIssue() was false (or true — harmless). The demand is
// consumed by the next Tick and may trigger a wakeup, policy permitting.
func (c *Controller) RequestIssue() { c.demand = true }

// SetDirectives installs the coordinator's per-cycle gating directives; both
// are cleared by Tick. inhibit wins over force.
func (c *Controller) SetDirectives(inhibit, force bool) {
	c.inhibitGate = inhibit
	c.forceGate = force
}

// Tick advances the state machine by one cycle. busy reports whether any
// instruction occupied the unit's pipeline this cycle. Tick must be called
// exactly once per simulated cycle, after the issue stage.
func (c *Controller) Tick(busy bool) {
	if busy {
		c.st.BusyCycles++
	} else {
		c.st.IdleCycles++
	}

	switch c.state {
	case StActive:
		c.st.PoweredCycles++
		if busy {
			c.endIdleRun()
			c.idleCtr = 0
			break
		}
		c.curIdleRun++
		c.idleCtr++
		if c.kind == config.GateNone {
			break
		}
		shouldGate := c.idleCtr >= c.idleDetect()
		if c.forceGate {
			shouldGate = true
		}
		if c.inhibitGate {
			shouldGate = false
		}
		if shouldGate {
			c.state = StUncompensated
			c.betCtr = c.breakEven
			c.st.GatingEvents++
		}

	case StUncompensated:
		if busy {
			panic("gating: unit busy while gated")
		}
		c.st.GatedCycles++
		c.st.UncompCycles++
		c.curIdleRun++
		c.betCtr--
		// Conventional gating wakes on demand even before break-even,
		// paying for overhead it never recoups (a "negative" event).
		if c.demand && c.kind == config.GateConventional {
			c.st.NegativeEvents++
			c.beginWakeup()
			break
		}
		if c.demand {
			c.st.DeniedWakeups++
		}
		if c.betCtr <= 0 {
			c.state = StCompensated
			c.firstCompCycle = true
		}

	case StCompensated:
		if busy {
			panic("gating: unit busy while gated")
		}
		c.st.GatedCycles++
		c.st.CompCycles++
		c.curIdleRun++
		if c.demand {
			if c.firstCompCycle {
				// The instruction was waiting for the blackout to end:
				// the paper's critical wakeup (§5.1).
				c.st.CriticalWakeups++
			}
			c.beginWakeup()
			break
		}
		c.firstCompCycle = false

	case StWakeup:
		if busy {
			panic("gating: unit busy while waking up")
		}
		// The unit burns static power during wakeup but does no work.
		c.st.PoweredCycles++
		c.curIdleRun++
		c.wakeCtr--
		if c.wakeCtr <= 0 {
			c.state = StActive
			c.idleCtr = 0
		}
	}
	c.demand = false
	c.inhibitGate = false
	c.forceGate = false
}

// beginWakeup starts the wakeup sequence; with a zero wakeup delay the unit
// becomes operational next cycle.
func (c *Controller) beginWakeup() {
	c.st.Wakeups++
	c.firstCompCycle = false
	if c.wakeupDelay == 0 {
		c.state = StActive
		c.idleCtr = 0
		return
	}
	c.state = StWakeup
	c.wakeCtr = c.wakeupDelay
}

// IdleSettled reports whether the controller, in isolation, can no longer
// change state under sustained idle input (busy=false) with no issue demand
// and no coordinator directives: it is either parked in the compensated state
// (only demand wakes it) or permanently active because gating is disabled.
// An active controller with gating enabled is NOT settled here — left alone
// it will cross the idle-detect threshold and gate; coordinated configurations
// that hold such a controller active forever are recognized by
// Coordinator.IdleSettled instead. The simulator's idle fast-forward uses
// these predicates to decide when per-cycle stepping can stop.
func (c *Controller) IdleSettled() bool {
	return c.state == StCompensated || (c.state == StActive && c.kind == config.GateNone)
}

// AdvanceIdle advances the controller by n idle, demand-free cycles in closed
// form, with results bit-identical to calling Tick(false) n times. The caller
// must have established (via IdleSettled / Coordinator.IdleSettled) that the
// state cannot change during those cycles: the controller is compensated, or
// active with gating disabled, or active but inhibited from gating by its
// coordinator on every one of the n cycles. Transient states (uncompensated,
// wakeup) must be stepped per cycle and are rejected.
func (c *Controller) AdvanceIdle(n int64) {
	if n <= 0 {
		return
	}
	c.st.IdleCycles += uint64(n)
	c.curIdleRun += int(n)
	switch c.state {
	case StActive:
		// Per-cycle equivalent: idleCtr grows every cycle; either the kind
		// never gates (GateNone skips the threshold check entirely) or the
		// coordinator's inhibit directive overrides shouldGate each cycle.
		c.st.PoweredCycles += uint64(n)
		c.idleCtr += int(n)
	case StCompensated:
		// No demand, so the controller stays compensated; the first
		// compensated cycle (if this is it) passes without a critical wakeup.
		c.st.GatedCycles += uint64(n)
		c.st.CompCycles += uint64(n)
		c.firstCompCycle = false
	default:
		panic(fmt.Sprintf("gating: AdvanceIdle in transient state %v", c.state))
	}
	// Tick clears the per-cycle inputs at the end of every cycle; replicate
	// that so a stale directive cannot leak past the batch.
	c.demand = false
	c.inhibitGate = false
	c.forceGate = false
}

// endIdleRun closes the in-progress idle run and records it.
func (c *Controller) endIdleRun() {
	if c.curIdleRun > 0 {
		c.st.IdlePeriods.Add(c.curIdleRun)
		c.curIdleRun = 0
	}
}

// Finish closes any open idle run at end of simulation so the histogram
// accounts for every idle cycle.
func (c *Controller) Finish() { c.endIdleRun() }

// Stats returns a snapshot of the controller's counters. The histogram is
// shared, not copied; callers must not mutate it.
func (c *Controller) Stats() Stats { return c.st }

// Kind returns the controller's gating policy.
func (c *Controller) Kind() config.GatingKind { return c.kind }

// BreakEven returns the configured break-even time in cycles.
func (c *Controller) BreakEven() int { return c.breakEven }
