package gating

import (
	"fmt"

	"warpedgates/internal/config"
)

// Coordinator implements Coordinated Blackout (paper §5) across the two
// clusters of one execution-unit type (the two INT pipes or the two FP pipes
// of an SM's SP clusters). Once one cluster of a type is gated, the second
// cluster stops using the idle-detect window: it gates immediately when the
// type's active-warp-subset counter (ACTV) is zero, and refuses to gate while
// at least one warp of the type sits in the active subset.
type Coordinator struct {
	kind  config.GatingKind
	ctrls []*Controller
}

// NewCoordinator wires the clusters of one type together. Any number of
// clusters is accepted; the paper's machine has two.
func NewCoordinator(kind config.GatingKind, ctrls ...*Controller) *Coordinator {
	if len(ctrls) == 0 {
		panic("gating: coordinator needs at least one controller")
	}
	for i, c := range ctrls {
		if c == nil {
			panic(fmt.Sprintf("gating: coordinator controller %d is nil", i))
		}
	}
	return &Coordinator{kind: kind, ctrls: ctrls}
}

// PreTick installs this cycle's gating directives on each cluster before the
// controllers Tick. actv is the number of warps of this type currently in the
// active warp subset (the paper's INT_ACTV / FP_ACTV counter — deliberately
// not the ready counter, since a warp may be active but not yet ready).
func (co *Coordinator) PreTick(actv int) {
	if co.kind != config.GateCoordBlackout {
		return // only Coordinated Blackout modulates the idle-detect rule
	}
	for i, c := range co.ctrls {
		if !c.CanIssue() && !c.Gated() {
			continue // waking up: no gating decision to make
		}
		peerGated := false
		for j, p := range co.ctrls {
			if j != i && p.Gated() {
				peerGated = true
				break
			}
		}
		switch {
		case peerGated && actv == 0:
			// No warp of this type is even waiting: gate the second
			// cluster immediately, skipping idle-detect.
			c.SetDirectives(false, true)
		case peerGated:
			// A warp is waiting and will likely become ready soon; keep
			// one cluster of the type powered to serve it.
			c.SetDirectives(true, false)
		case actv > 0 && i == 0:
			// Neither cluster is gated yet. The paper's invariant —
			// "at least one of the two clusters will be always ON
			// whenever there is a warp in the associated active warp
			// subset" — must also hold at gating time: without this
			// directive both clusters can cross the idle-detect
			// threshold in the same cycle and black out together.
			// Cluster 0 (the consolidation target) is the one held on.
			c.SetDirectives(true, false)
		default:
			c.SetDirectives(false, false)
		}
	}
}

// AllInBlackout reports whether every cluster of the type is currently in a
// state the scheduler cannot issue to (gated with blackout semantics, or any
// gated state under conventional rules where wakeup still costs delay). GATES
// uses it to switch instruction priority when the entire highest-priority
// unit type is unavailable (paper §5: "switch instruction priority type if
// both execution units of the highest priority type are in blackout").
func (co *Coordinator) AllInBlackout() bool {
	for _, c := range co.ctrls {
		if !c.InBlackout() {
			return false
		}
	}
	return true
}

// IdleSettled reports whether no controller in the group can change state
// under sustained idle input with no issue demand, given that the type's
// active-subset counter stays at actv. Beyond each controller's own settled
// states (Controller.IdleSettled), Coordinated Blackout admits one more:
// a powered cluster held active forever because warps of the type are waiting
// and PreTick issues the inhibit directive every cycle. That holds for
// cluster 0 whenever actv > 0 (the consolidation target is inhibited both
// before and after its peer gates, by the third and second PreTick rules),
// and for any other cluster once a peer is gated. A gated-but-uncompensated
// peer is itself still counting toward break-even and makes the whole group
// unsettled through its own transient-state check. The simulator's idle
// fast-forward steps per cycle until this returns true, then batch-advances
// with AdvanceIdle.
func (co *Coordinator) IdleSettled(actv int) bool {
	for i, c := range co.ctrls {
		switch c.state {
		case StCompensated:
			// Parked: only demand wakes it, and idle cycles carry none.
		case StActive:
			if c.kind == config.GateNone {
				continue
			}
			// With gating enabled an active controller eventually crosses
			// the idle-detect threshold — unless Coordinated Blackout
			// inhibits it every cycle (warps waiting, and this cluster is
			// the held-on target or has a gated peer).
			if co.kind != config.GateCoordBlackout || actv == 0 {
				return false
			}
			if i == 0 {
				continue
			}
			peerGated := false
			for j, p := range co.ctrls {
				if j != i && p.Gated() {
					peerGated = true
					break
				}
			}
			if !peerGated {
				return false
			}
		default:
			// Uncompensated (counting to break-even) or waking: transient.
			return false
		}
	}
	return true
}

// Controllers exposes the coordinated clusters.
func (co *Coordinator) Controllers() []*Controller { return co.ctrls }
