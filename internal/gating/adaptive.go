package gating

import (
	"fmt"

	"warpedgates/internal/config"
)

// AdaptiveIdleDetect implements the paper's §5.1 mechanism: execution time is
// divided into epochs; a counter tracks critical wakeups per epoch; when the
// count exceeds a threshold the idle-detect window grows by one (gate more
// conservatively), and after several consecutive quiet epochs it shrinks by
// one. The window is bounded (paper: 5–10 cycles) and maintained separately
// per instruction type, because each type sees its own mix and schedule.
type AdaptiveIdleDetect struct {
	enabled   bool
	value     int
	min, max  int
	epochLen  int
	threshold int
	decEpochs int

	cycleInEpoch int
	criticals    int
	quietEpochs  int

	increments uint64
	decrements uint64
	epochs     uint64
}

// NewAdaptiveIdleDetect builds the mechanism from the configuration. When
// cfg.AdaptiveIdleDetect is false the value stays pinned at cfg.IdleDetect.
func NewAdaptiveIdleDetect(cfg config.Config) *AdaptiveIdleDetect {
	a := &AdaptiveIdleDetect{
		enabled:   cfg.AdaptiveIdleDetect,
		value:     cfg.IdleDetect,
		min:       cfg.IdleDetectMin,
		max:       cfg.IdleDetectMax,
		epochLen:  cfg.EpochCycles,
		threshold: cfg.CriticalThreshold,
		decEpochs: cfg.DecrementEpochs,
	}
	if a.enabled {
		if a.value < a.min {
			a.value = a.min
		}
		if a.value > a.max {
			a.value = a.max
		}
	}
	return a
}

// Value returns the current idle-detect window; Controllers take this method
// as their idleDetect closure.
func (a *AdaptiveIdleDetect) Value() int { return a.value }

// Tick advances one cycle, folding in the number of critical wakeups the
// type's clusters saw this cycle.
func (a *AdaptiveIdleDetect) Tick(criticalWakeups int) {
	if !a.enabled {
		return
	}
	if criticalWakeups < 0 {
		panic(fmt.Sprintf("gating: negative critical wakeups %d", criticalWakeups))
	}
	a.criticals += criticalWakeups
	a.cycleInEpoch++
	if a.cycleInEpoch < a.epochLen {
		return
	}
	a.endEpoch()
}

// endEpoch applies the per-epoch window update and starts the next epoch.
func (a *AdaptiveIdleDetect) endEpoch() {
	a.epochs++
	a.cycleInEpoch = 0
	if a.criticals > a.threshold {
		// Performance-critical phase: back off quickly.
		if a.value < a.max {
			a.value++
			a.increments++
		}
		a.quietEpochs = 0
	} else {
		// Quiet epoch: recover the window slowly (paper: every 4 epochs).
		a.quietEpochs++
		if a.quietEpochs >= a.decEpochs {
			if a.value > a.min {
				a.value--
				a.decrements++
			}
			a.quietEpochs = 0
		}
	}
	a.criticals = 0
}

// AdvanceIdle advances the mechanism by n cycles with zero critical wakeups,
// bit-identical to calling Tick(0) n times: the in-progress epoch finishes
// with whatever criticals it accumulated before the batch, and every complete
// epoch after it is quiet, so the window only recovers (value decrements every
// decEpochs quiet epochs down to the minimum). The simulator's idle
// fast-forward uses this to batch-advance across long fully-idle stretches.
func (a *AdaptiveIdleDetect) AdvanceIdle(n int64) {
	if !a.enabled || n <= 0 {
		return
	}
	if a.threshold < 0 {
		// A negative threshold makes even zero-critical epochs "critical";
		// no validated configuration does this, but fall back to stepping
		// rather than silently diverging from Tick.
		for ; n > 0; n-- {
			a.Tick(0)
		}
		return
	}
	// Finish the in-progress epoch; it may carry pre-batch criticals.
	toBoundary := int64(a.epochLen - a.cycleInEpoch)
	if n < toBoundary {
		a.cycleInEpoch += int(n)
		return
	}
	n -= toBoundary
	a.endEpoch()
	// The remaining full epochs are all quiet.
	e := n / int64(a.epochLen)
	a.cycleInEpoch = int(n % int64(a.epochLen))
	a.epochs += uint64(e)
	total := int64(a.quietEpochs) + e
	drops := total / int64(a.decEpochs)
	a.quietEpochs = int(total % int64(a.decEpochs))
	if room := int64(a.value - a.min); drops > room {
		drops = room
	}
	if drops > 0 {
		a.value -= int(drops)
		a.decrements += uint64(drops)
	}
}

// Stats returns how often the window moved and how many epochs elapsed.
func (a *AdaptiveIdleDetect) Stats() (increments, decrements, epochs uint64) {
	return a.increments, a.decrements, a.epochs
}

// Enabled reports whether adaptation is active.
func (a *AdaptiveIdleDetect) Enabled() bool { return a.enabled }
