package gating

import (
	"fmt"

	"warpedgates/internal/config"
)

// AdaptiveIdleDetect implements the paper's §5.1 mechanism: execution time is
// divided into epochs; a counter tracks critical wakeups per epoch; when the
// count exceeds a threshold the idle-detect window grows by one (gate more
// conservatively), and after several consecutive quiet epochs it shrinks by
// one. The window is bounded (paper: 5–10 cycles) and maintained separately
// per instruction type, because each type sees its own mix and schedule.
type AdaptiveIdleDetect struct {
	enabled   bool
	value     int
	min, max  int
	epochLen  int
	threshold int
	decEpochs int

	cycleInEpoch int
	criticals    int
	quietEpochs  int

	increments uint64
	decrements uint64
	epochs     uint64
}

// NewAdaptiveIdleDetect builds the mechanism from the configuration. When
// cfg.AdaptiveIdleDetect is false the value stays pinned at cfg.IdleDetect.
func NewAdaptiveIdleDetect(cfg config.Config) *AdaptiveIdleDetect {
	a := &AdaptiveIdleDetect{
		enabled:   cfg.AdaptiveIdleDetect,
		value:     cfg.IdleDetect,
		min:       cfg.IdleDetectMin,
		max:       cfg.IdleDetectMax,
		epochLen:  cfg.EpochCycles,
		threshold: cfg.CriticalThreshold,
		decEpochs: cfg.DecrementEpochs,
	}
	if a.enabled {
		if a.value < a.min {
			a.value = a.min
		}
		if a.value > a.max {
			a.value = a.max
		}
	}
	return a
}

// Value returns the current idle-detect window; Controllers take this method
// as their idleDetect closure.
func (a *AdaptiveIdleDetect) Value() int { return a.value }

// Tick advances one cycle, folding in the number of critical wakeups the
// type's clusters saw this cycle.
func (a *AdaptiveIdleDetect) Tick(criticalWakeups int) {
	if !a.enabled {
		return
	}
	if criticalWakeups < 0 {
		panic(fmt.Sprintf("gating: negative critical wakeups %d", criticalWakeups))
	}
	a.criticals += criticalWakeups
	a.cycleInEpoch++
	if a.cycleInEpoch < a.epochLen {
		return
	}
	a.epochs++
	a.cycleInEpoch = 0
	if a.criticals > a.threshold {
		// Performance-critical phase: back off quickly.
		if a.value < a.max {
			a.value++
			a.increments++
		}
		a.quietEpochs = 0
	} else {
		// Quiet epoch: recover the window slowly (paper: every 4 epochs).
		a.quietEpochs++
		if a.quietEpochs >= a.decEpochs {
			if a.value > a.min {
				a.value--
				a.decrements++
			}
			a.quietEpochs = 0
		}
	}
	a.criticals = 0
}

// Stats returns how often the window moved and how many epochs elapsed.
func (a *AdaptiveIdleDetect) Stats() (increments, decrements, epochs uint64) {
	return a.increments, a.decrements, a.epochs
}

// Enabled reports whether adaptation is active.
func (a *AdaptiveIdleDetect) Enabled() bool { return a.enabled }
