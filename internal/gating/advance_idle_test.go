package gating

import (
	"fmt"
	"testing"

	"warpedgates/internal/config"
)

// controllerFingerprint renders every observable of a controller, histogram
// included, so batched and stepped twins can be compared exactly.
func controllerFingerprint(c *Controller) string {
	s := c.Stats()
	return fmt.Sprintf("state=%v gated=%t blackout=%t busy=%d idle=%d pow=%d gat=%d unc=%d comp=%d ev=%d wake=%d neg=%d crit=%d den=%d hist=%s",
		c.State(), c.Gated(), c.InBlackout(),
		s.BusyCycles, s.IdleCycles, s.PoweredCycles, s.GatedCycles,
		s.UncompCycles, s.CompCycles, s.GatingEvents, s.Wakeups,
		s.NegativeEvents, s.CriticalWakeups, s.DeniedWakeups,
		s.IdlePeriods.String())
}

// TestControllerAdvanceIdleMatchesTicks drives twin controllers into each
// settled state, batch-advances one while stepping the other, then runs a
// common busy/demand suffix so any divergence in hidden state (idle counter,
// idle-run length, first-compensated flag) surfaces in the fingerprints.
func TestControllerAdvanceIdleMatchesTicks(t *testing.T) {
	cases := []struct {
		name   string
		kind   config.GatingKind
		settle int // idle prefix that reaches a settled state
		batch  int64
	}{
		{"none-active", config.GateNone, 3, 1000},
		{"conv-compensated", config.GateConventional, 40, 1},
		{"conv-compensated-long", config.GateConventional, 40, 100000},
		{"naive-compensated", config.GateNaiveBlackout, 40, 517},
		{"coord-compensated", config.GateCoordBlackout, 40, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			idle := func() int { return 5 }
			batched := NewController(tc.kind, idle, 14, 3)
			stepped := NewController(tc.kind, idle, 14, 3)
			// Shared history before the batch: some work, then settle.
			for _, busy := range []bool{true, true, false, true} {
				batched.Tick(busy)
				stepped.Tick(busy)
			}
			tickIdle(batched, tc.settle)
			tickIdle(stepped, tc.settle)
			if !batched.IdleSettled() {
				t.Fatalf("prefix did not settle: state=%v", batched.State())
			}

			batched.AdvanceIdle(tc.batch)
			tickIdle(stepped, int(tc.batch))
			if a, b := controllerFingerprint(batched), controllerFingerprint(stepped); a != b {
				t.Fatalf("post-batch divergence:\nbatched: %s\nstepped: %s", a, b)
			}

			// Common suffix: wake on demand (where possible), work, settle again.
			batched.RequestIssue()
			stepped.RequestIssue()
			batched.Tick(false)
			stepped.Tick(false)
			for i := 0; i < 10; i++ {
				busy := batched.CanIssue() && i%2 == 0
				batched.Tick(busy)
				stepped.Tick(busy)
			}
			batched.Finish()
			stepped.Finish()
			if a, b := controllerFingerprint(batched), controllerFingerprint(stepped); a != b {
				t.Fatalf("post-suffix divergence:\nbatched: %s\nstepped: %s", a, b)
			}
		})
	}
}

// TestControllerAdvanceIdleActiveInhibited covers the coordinated case the
// simulator relies on: an active CoordBlackout controller held on by per-cycle
// inhibit directives neither gates when stepped nor when batched.
func TestControllerAdvanceIdleActiveInhibited(t *testing.T) {
	idle := func() int { return 5 }
	batched := NewController(config.GateCoordBlackout, idle, 14, 3)
	stepped := NewController(config.GateCoordBlackout, idle, 14, 3)
	for i := 0; i < 50; i++ {
		stepped.SetDirectives(true, false)
		stepped.Tick(false)
	}
	batched.AdvanceIdle(50)
	if a, b := controllerFingerprint(batched), controllerFingerprint(stepped); a != b {
		t.Fatalf("inhibited-active divergence:\nbatched: %s\nstepped: %s", a, b)
	}
}

// TestControllerAdvanceIdleRejectsTransients pins the contract that the
// closed form refuses states whose counters change cycle to cycle.
func TestControllerAdvanceIdleRejectsTransients(t *testing.T) {
	idle := func() int { return 2 }
	c := NewController(config.GateConventional, idle, 14, 3)
	tickIdle(c, 3) // just gated: uncompensated
	if c.State() != StUncompensated {
		t.Fatalf("setup: state=%v", c.State())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceIdle accepted an uncompensated controller")
		}
	}()
	c.AdvanceIdle(10)
}

// TestAdaptiveAdvanceIdleMatchesTicks checks the closed-form window recovery
// against per-cycle ticking across epoch boundaries, carried criticals,
// partial epochs and the min clamp.
func TestAdaptiveAdvanceIdleMatchesTicks(t *testing.T) {
	mk := func() config.Config {
		c := config.GTX480()
		c.AdaptiveIdleDetect = true
		c.EpochCycles = 50
		c.DecrementEpochs = 4
		return c
	}
	prefixes := []struct {
		cycles int
		crit   int // criticals injected on the first prefix cycle
	}{
		{0, 0},     // batch starts exactly on an epoch boundary
		{1, 0},     // barely into an epoch
		{49, 6},    // carried criticals end the first epoch with an increment
		{130, 0},   // mid-epoch with quiet history
		{349, 720}, // critical storm in the first epoch, then quiet history
	}
	batches := []int64{1, 49, 50, 51, 199, 200, 1000, 100000}
	for _, p := range prefixes {
		for _, n := range batches {
			name := fmt.Sprintf("prefix%d crit%d batch%d", p.cycles, p.crit, n)
			batched := NewAdaptiveIdleDetect(mk())
			stepped := NewAdaptiveIdleDetect(mk())
			for i := 0; i < p.cycles; i++ {
				crit := 0
				if i == 0 {
					crit = p.crit
				}
				batched.Tick(crit)
				stepped.Tick(crit)
			}
			batched.AdvanceIdle(n)
			for i := int64(0); i < n; i++ {
				stepped.Tick(0)
			}
			// Suffix: a critical storm must move both windows identically.
			for i := 0; i < 120; i++ {
				batched.Tick(1)
				stepped.Tick(1)
			}
			bi, bd, be := batched.Stats()
			si, sd, se := stepped.Stats()
			if batched.Value() != stepped.Value() || bi != si || bd != sd || be != se {
				t.Fatalf("%s: batched value=%d inc=%d dec=%d ep=%d, stepped value=%d inc=%d dec=%d ep=%d",
					name, batched.Value(), bi, bd, be, stepped.Value(), si, sd, se)
			}
		}
	}
}
