package config

import (
	"strings"
	"testing"
)

func TestGTX480MatchesPaperBaseline(t *testing.T) {
	c := GTX480()
	// §7.1: 15 SMs, 48 warps per SM, two schedulers issuing one warp each,
	// two SP clusters; idle-detect 5, break-even 14, wakeup 3.
	if c.NumSMs != 15 {
		t.Errorf("NumSMs = %d, want 15", c.NumSMs)
	}
	if c.MaxWarpsPerSM != 48 {
		t.Errorf("MaxWarpsPerSM = %d, want 48", c.MaxWarpsPerSM)
	}
	if c.NumSchedulers != 2 {
		t.Errorf("NumSchedulers = %d, want 2", c.NumSchedulers)
	}
	if c.NumSPClusters != 2 {
		t.Errorf("NumSPClusters = %d, want 2", c.NumSPClusters)
	}
	if c.IdleDetect != 5 || c.BreakEven != 14 || c.WakeupDelay != 3 {
		t.Errorf("PG params = %d/%d/%d, want 5/14/3", c.IdleDetect, c.BreakEven, c.WakeupDelay)
	}
	if c.WarpSize != 32 {
		t.Errorf("WarpSize = %d, want 32", c.WarpSize)
	}
	// §5.1: adaptive window bounded to 5..10, epoch 1000 cycles, threshold
	// 5 critical wakeups, decrement every 4 epochs.
	if c.IdleDetectMin != 5 || c.IdleDetectMax != 10 {
		t.Errorf("adaptive bounds = %d..%d, want 5..10", c.IdleDetectMin, c.IdleDetectMax)
	}
	if c.EpochCycles != 1000 || c.CriticalThreshold != 5 || c.DecrementEpochs != 4 {
		t.Errorf("adaptive params = %d/%d/%d", c.EpochCycles, c.CriticalThreshold, c.DecrementEpochs)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestSmallValidates(t *testing.T) {
	c := Small()
	if err := c.Validate(); err != nil {
		t.Fatalf("Small() invalid: %v", err)
	}
	if c.NumSMs >= GTX480().NumSMs {
		t.Error("Small() should have fewer SMs than GTX480")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		frag string
	}{
		{"zero SMs", func(c *Config) { c.NumSMs = 0 }, "NumSMs"},
		{"zero warps", func(c *Config) { c.MaxWarpsPerSM = 0 }, "MaxWarpsPerSM"},
		{"warp size too big", func(c *Config) { c.WarpSize = 64 }, "WarpSize"},
		{"zero schedulers", func(c *Config) { c.NumSchedulers = 0 }, "NumSchedulers"},
		{"zero clusters", func(c *Config) { c.NumSPClusters = 0 }, "NumSPClusters"},
		{"negative idle detect", func(c *Config) { c.IdleDetect = -1 }, "IdleDetect"},
		{"zero break even", func(c *Config) { c.BreakEven = 0 }, "BreakEven"},
		{"negative wakeup", func(c *Config) { c.WakeupDelay = -3 }, "WakeupDelay"},
		{"L1 sets not power of two", func(c *Config) { c.L1Sets = 33 }, "L1Sets"},
		{"zero L1 ways", func(c *Config) { c.L1Ways = 0 }, "L1Ways"},
		{"line size not power of two", func(c *Config) { c.L1LineBytes = 100 }, "L1LineBytes"},
		{"L2 sets", func(c *Config) { c.L2Sets = 0 }, "L2Sets"},
		{"L2 ways", func(c *Config) { c.L2Ways = -1 }, "L2Ways"},
		{"zero MSHR", func(c *Config) { c.MSHRPerSM = 0 }, "MSHR"},
		{"zero DRAM slots", func(c *Config) { c.DRAMSlots = 0 }, "DRAMSlots"},
		{"negative max cycles", func(c *Config) { c.MaxCycles = -1 }, "MaxCycles"},
	}
	for _, tc := range cases {
		c := GTX480()
		tc.mut(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
}

func TestValidateAdaptiveRejections(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.EpochCycles = 0 },
		func(c *Config) { c.CriticalThreshold = -1 },
		func(c *Config) { c.IdleDetectMax = c.IdleDetectMin - 1 },
		func(c *Config) { c.DecrementEpochs = 0 },
	}
	for i, mut := range cases {
		c := GTX480()
		c.AdaptiveIdleDetect = true
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("adaptive case %d: expected error", i)
		}
	}
	// The same fields are ignored when adaptation is off.
	c := GTX480()
	c.AdaptiveIdleDetect = false
	c.EpochCycles = 0
	if err := c.Validate(); err != nil {
		t.Errorf("non-adaptive config should ignore adaptive fields: %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	if SchedTwoLevel.String() != "TwoLevel" || SchedGATES.String() != "GATES" || SchedLRR.String() != "LRR" {
		t.Error("scheduler names wrong")
	}
	if GateNone.String() != "None" || GateConventional.String() != "ConvPG" {
		t.Error("gating names wrong")
	}
	if GateNaiveBlackout.String() != "NaiveBlackout" || GateCoordBlackout.String() != "CoordBlackout" {
		t.Error("blackout names wrong")
	}
	if !strings.Contains(SchedulerKind(42).String(), "42") || !strings.Contains(GatingKind(42).String(), "42") {
		t.Error("unknown kinds should include their numeric value")
	}
}
