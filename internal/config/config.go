// Package config holds the machine description for the simulated GPGPU and
// the power-gating parameters. The default configuration mirrors the paper's
// baseline: an NVIDIA GTX480 (Fermi) as configured in GPGPU-Sim v3.02 —
// 15 SMs, 48 warps per SM, two warp schedulers issuing one warp each per
// cycle, two SP clusters of 16 CUDA cores (each core has an INT and an FP
// pipe), four SFUs, sixteen LD/ST units — with an idle-detect window of
// 5 cycles, a break-even time of 14 cycles and a wakeup delay of 3 cycles.
package config

import "fmt"

// SchedulerKind selects the warp-scheduling policy.
type SchedulerKind uint8

// Scheduler kinds.
const (
	SchedLRR      SchedulerKind = iota // loose round-robin (pre-two-level baseline)
	SchedTwoLevel                      // Gebhart-style two-level scheduler (paper baseline)
	SchedGATES                         // gating-aware two-level scheduler (the contribution)
)

// String names the scheduler kind.
func (k SchedulerKind) String() string {
	switch k {
	case SchedLRR:
		return "LRR"
	case SchedTwoLevel:
		return "TwoLevel"
	case SchedGATES:
		return "GATES"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", uint8(k))
	}
}

// GatingKind selects the power-gating controller policy.
type GatingKind uint8

// Gating kinds, in the paper's naming.
const (
	GateNone          GatingKind = iota // units always powered (normalization baseline)
	GateConventional                    // Hu et al. [13]: idle-detect then gate, wake on demand
	GateNaiveBlackout                   // no wakeup before break-even time
	GateCoordBlackout                   // blackout coordinated across the two clusters of a type
)

// String names the gating kind.
func (k GatingKind) String() string {
	switch k {
	case GateNone:
		return "None"
	case GateConventional:
		return "ConvPG"
	case GateNaiveBlackout:
		return "NaiveBlackout"
	case GateCoordBlackout:
		return "CoordBlackout"
	default:
		return fmt.Sprintf("GatingKind(%d)", uint8(k))
	}
}

// Config is the complete machine + policy description for one simulation.
type Config struct {
	// --- Machine geometry (GTX480 defaults) ---

	NumSMs        int // streaming multiprocessors
	MaxWarpsPerSM int // concurrent warps resident on one SM
	WarpSize      int // threads per warp
	NumSchedulers int // warp schedulers per SM, each issues <=1 per cycle
	NumSPClusters int // SP clusters per SM; each has one INT and one FP pipe

	// --- Power gating parameters ---

	IdleDetect  int // cycles a unit must be idle before gating triggers
	BreakEven   int // cycles gated needed to amortize one gating event
	WakeupDelay int // cycles from wakeup trigger to operational

	// --- Adaptive idle-detect (Warped Gates) ---

	AdaptiveIdleDetect bool
	EpochCycles        int // epoch length for critical-wakeup counting
	CriticalThreshold  int // critical wakeups per epoch that trigger +1
	IdleDetectMin      int // lower bound for the adaptive window
	IdleDetectMax      int // upper bound for the adaptive window
	DecrementEpochs    int // quiet epochs required before -1

	// --- Policies ---

	Scheduler SchedulerKind
	Gating    GatingKind
	// GATESMaxHold, when positive, bounds how many consecutive cycles one
	// instruction type may hold the GATES highest priority before a forced
	// switch — the "large maximum switching time threshold" safety valve
	// the paper's §4 offers designers. Zero (the paper default) disables it.
	GATESMaxHold int
	// BlackoutAux extends the Blackout policy to the SFU and LD/ST units.
	// The paper applies Blackout to the clustered CUDA cores only, arguing
	// conventional gating suffices for the rare SFU traffic (§3); this knob
	// implements the extension the paper mentions as possible, for the
	// ablation harness.
	BlackoutAux bool

	// --- Memory subsystem ---

	L1Sets        int // L1 data cache sets per SM
	L1Ways        int // L1 associativity
	L1LineBytes   int // cache line size
	L1HitLatency  int // cycles for an L1 hit (load-to-use)
	L2HitLatency  int // additional cycles for an L2 hit
	DRAMLatency   int // additional cycles for a DRAM access
	SharedLatency int // shared-memory access latency
	MSHRPerSM     int // outstanding misses per SM
	DRAMSlots     int // GPU-wide in-flight DRAM request limit (bandwidth)
	L2Sets        int // shared L2 sets
	L2Ways        int // shared L2 associativity

	// --- Simulation control ---

	MaxCycles int    // hard stop; 0 means run until all work drains
	Seed      uint64 // extra entropy mixed into every PRNG stream
	// IntraRunWorkers is the number of goroutines stepping the SM array
	// within one simulation. 0 or 1 selects the serial engine; larger values
	// select the phase-split parallel engine (bit-identical to serial — SMs
	// compute in parallel against private state and the shared L2/DRAM sees
	// staged requests in canonical SM-id order), clamped to NumSMs. The
	// worker count never affects results, only wall-clock time, so it is
	// excluded from the experiment runner's cache key.
	IntraRunWorkers int
	// DisableFastForward turns off the idle fast-forward, forcing the
	// simulator to step every cycle individually. The fast-forward is
	// cycle-exact (identical reports, probes and histograms), so this knob
	// exists only for equivalence testing and debugging; the zero value
	// leaves it enabled.
	DisableFastForward bool
	// DisableShardSteal pins each parallel-engine worker to a fixed
	// contiguous SM shard instead of letting workers claim SM batches from a
	// shared index each compute window. Stealing only changes which goroutine
	// steps an SM — never the cycle its effects resolve at — so the knob is
	// bit-exact either way and exists for equivalence testing and overhead
	// measurement; the zero value leaves stealing enabled. Like
	// IntraRunWorkers it never affects results and is excluded from the
	// experiment runner's cache key.
	DisableShardSteal bool

	// --- Intra-run parallel engine tuning ---
	//
	// BatchCycles and MemBanks tune the exact parallel engine and can never
	// change a result, only wall-clock time (like IntraRunWorkers they are
	// excluded from the experiment runner's cache key). EpochRelaxedCycles
	// changes observable timing and is part of the cache key.

	// BatchCycles bounds how many device cycles workers may step their SM
	// shards between arbitration points when no shard has a staged global
	// access pending. Staging mid-batch stops the staging SM at that cycle,
	// so any value is bit-identical to the serial engine; the knob only
	// trades barrier frequency against re-alignment granularity. 0 selects
	// the default (128, tuned from the bench overhead curve — see
	// EXPERIMENTS.md "Parallel-engine tuning data").
	BatchCycles int
	// MemBanks shards the device-level L2/DRAM arbitration by address bank
	// (line % MemBanks) so the resolve phase itself runs on the workers.
	// Must be a power of two dividing both L2Sets and DRAMSlots, which makes
	// the per-bank caches and channel queues an exact partition of the
	// unified model (identical set indexing, identical channel mapping) —
	// the sharding is timing-invisible at any value. 0 selects the largest
	// power of two <= 8 that divides both.
	MemBanks int
	// EpochRelaxedCycles, when positive, opts the parallel engine into
	// bounded cycle skew: SM shards run full epochs of this many cycles
	// between arbitration points without stopping at staged accesses, and
	// staged requests drain at epoch end in (SM, staging-order) rather than
	// cycle order. Results are still deterministic for a fixed configuration
	// but are no longer bit-identical to the serial engine; the error is
	// bounded and measured against the golden corpus (see EXPERIMENTS.md).
	// Must not exceed L1HitLatency (the shortest staged completion), which
	// guarantees every deferred writeback still lands ahead of the shard's
	// frontier. 0 (the default) keeps the engine exact.
	EpochRelaxedCycles int

	// --- Interval-sampled simulation ---
	//
	// SampleDetailCycles and SamplePeriod opt the serial engine into
	// interval sampling: the simulator runs detailed windows of
	// SampleDetailCycles device cycles, and at each window boundary splices
	// out (SamplePeriod-SampleDetailCycles)/SampleDetailCycles times the
	// window's measured work — unlaunched CTAs first, then future loop
	// iterations of resident warps — extrapolating the removed work's
	// counters and cycles at the window's measured rates. The clock never
	// jumps and no architectural state is synthesized, so every engine
	// invariant holds; only the estimated totals differ from a full run.
	// Results change (the report carries a per-run error estimate), so both
	// knobs are part of the experiment runner's cache key. Sampling always
	// runs on the serial engine and is mutually exclusive with
	// EpochRelaxedCycles. Both zero (the default) disables sampling.
	SampleDetailCycles int
	SamplePeriod       int
}

// GTX480 returns the paper's baseline configuration.
func GTX480() Config {
	return Config{
		NumSMs:        15,
		MaxWarpsPerSM: 48,
		WarpSize:      32,
		NumSchedulers: 2,
		NumSPClusters: 2,

		IdleDetect:  5,
		BreakEven:   14,
		WakeupDelay: 3,

		AdaptiveIdleDetect: false,
		EpochCycles:        1000,
		CriticalThreshold:  5,
		IdleDetectMin:      5,
		IdleDetectMax:      10,
		DecrementEpochs:    4,

		Scheduler: SchedTwoLevel,
		Gating:    GateNone,

		L1Sets:        32,
		L1Ways:        4,
		L1LineBytes:   128,
		L1HitLatency:  28,
		L2HitLatency:  120,
		DRAMLatency:   230,
		SharedLatency: 24,
		MSHRPerSM:     32,
		DRAMSlots:     64,
		L2Sets:        256,
		L2Ways:        8,

		MaxCycles:       0,
		Seed:            0x5eed,
		IntraRunWorkers: 1,
	}
}

// Small returns a reduced configuration suitable for unit tests: two SMs and
// tight memory, but the same gating parameters as the paper.
func Small() Config {
	c := GTX480()
	c.NumSMs = 2
	c.MaxWarpsPerSM = 16
	c.DRAMSlots = 16
	return c
}

// EffectiveMemBanks resolves the MemBanks knob: the configured value, or the
// largest power of two <= 8 that divides both L2Sets and DRAMSlots (falling
// back to 1, which degenerates to the unified model).
func (c *Config) EffectiveMemBanks() int {
	if c.MemBanks > 0 {
		return c.MemBanks
	}
	for b := 8; b > 1; b >>= 1 {
		if c.L2Sets%b == 0 && c.DRAMSlots%b == 0 {
			return b
		}
	}
	return 1
}

// Sampling reports whether interval-sampled simulation is enabled.
func (c *Config) Sampling() bool { return c.SampleDetailCycles > 0 }

// EffectiveIntraRunWorkers resolves the IntraRunWorkers knob to the worker
// count the engine will actually run: at least 1, at most NumSMs (shards are
// per-SM, so goroutines beyond NumSMs could only idle). Budget splitters must
// divide by this, not the raw knob, or an oversized IntraRunWorkers starves
// the job-level pool for goroutines that never exist.
func (c *Config) EffectiveIntraRunWorkers() int {
	w := c.IntraRunWorkers
	if w > c.NumSMs {
		w = c.NumSMs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// EffectiveBatchCycles resolves the BatchCycles knob (0 means the default
// 128). The default was retuned from 64 using the bench barrier-overhead
// curve: halving the barrier rounds recovered ~2% wall on the stepped matrix
// with no accuracy cost (the knob is bit-exact), while 256 bought little
// more and coarsens re-alignment after staged accesses.
func (c *Config) EffectiveBatchCycles() int {
	if c.BatchCycles > 0 {
		return c.BatchCycles
	}
	return 128
}

// Validate checks the configuration for internal consistency.
func (c *Config) Validate() error {
	check := func(ok bool, format string, args ...interface{}) error {
		if !ok {
			return fmt.Errorf("config: "+format, args...)
		}
		return nil
	}
	checks := []error{
		check(c.NumSMs > 0, "NumSMs must be positive, got %d", c.NumSMs),
		check(c.MaxWarpsPerSM > 0, "MaxWarpsPerSM must be positive, got %d", c.MaxWarpsPerSM),
		check(c.MaxWarpsPerSM <= 64, "MaxWarpsPerSM must be at most 64 (warp-table bitset width), got %d", c.MaxWarpsPerSM),
		check(c.WarpSize > 0 && c.WarpSize <= 32, "WarpSize must be in (0,32], got %d", c.WarpSize),
		check(c.NumSchedulers > 0, "NumSchedulers must be positive, got %d", c.NumSchedulers),
		check(c.NumSPClusters > 0, "NumSPClusters must be positive, got %d", c.NumSPClusters),
		check(c.IdleDetect >= 0, "IdleDetect must be non-negative, got %d", c.IdleDetect),
		check(c.BreakEven > 0, "BreakEven must be positive, got %d", c.BreakEven),
		check(c.WakeupDelay >= 0, "WakeupDelay must be non-negative, got %d", c.WakeupDelay),
		check(c.L1Sets > 0 && (c.L1Sets&(c.L1Sets-1)) == 0, "L1Sets must be a positive power of two, got %d", c.L1Sets),
		check(c.L1Ways > 0, "L1Ways must be positive, got %d", c.L1Ways),
		check(c.L1LineBytes > 0 && (c.L1LineBytes&(c.L1LineBytes-1)) == 0, "L1LineBytes must be a positive power of two, got %d", c.L1LineBytes),
		check(c.L2Sets > 0 && (c.L2Sets&(c.L2Sets-1)) == 0, "L2Sets must be a positive power of two, got %d", c.L2Sets),
		check(c.L2Ways > 0, "L2Ways must be positive, got %d", c.L2Ways),
		check(c.MSHRPerSM > 0, "MSHRPerSM must be positive, got %d", c.MSHRPerSM),
		check(c.DRAMSlots > 0, "DRAMSlots must be positive, got %d", c.DRAMSlots),
		check(c.MaxCycles >= 0, "MaxCycles must be non-negative, got %d", c.MaxCycles),
		check(c.IntraRunWorkers >= 0, "IntraRunWorkers must be non-negative, got %d", c.IntraRunWorkers),
		check(c.GATESMaxHold >= 0, "GATESMaxHold must be non-negative, got %d", c.GATESMaxHold),
		check(c.BatchCycles >= 0, "BatchCycles must be non-negative, got %d", c.BatchCycles),
		check(c.MemBanks >= 0, "MemBanks must be non-negative, got %d", c.MemBanks),
		check(c.MemBanks == 0 || c.MemBanks&(c.MemBanks-1) == 0,
			"MemBanks must be a power of two, got %d", c.MemBanks),
		check(c.MemBanks == 0 || (c.L2Sets%c.MemBanks == 0 && c.DRAMSlots%c.MemBanks == 0),
			"MemBanks (%d) must divide L2Sets (%d) and DRAMSlots (%d) for an exact partition",
			c.MemBanks, c.L2Sets, c.DRAMSlots),
		check(c.EpochRelaxedCycles >= 0, "EpochRelaxedCycles must be non-negative, got %d", c.EpochRelaxedCycles),
		check(c.EpochRelaxedCycles <= c.L1HitLatency,
			"EpochRelaxedCycles (%d) must not exceed L1HitLatency (%d): the skew bound rests on the shortest staged completion outrunning the epoch",
			c.EpochRelaxedCycles, c.L1HitLatency),
		check(c.SampleDetailCycles >= 0, "SampleDetailCycles must be non-negative, got %d", c.SampleDetailCycles),
		check(c.SamplePeriod >= 0, "SamplePeriod must be non-negative, got %d", c.SamplePeriod),
		check((c.SampleDetailCycles == 0) == (c.SamplePeriod == 0),
			"SampleDetailCycles (%d) and SamplePeriod (%d) must be set together",
			c.SampleDetailCycles, c.SamplePeriod),
		check(c.SamplePeriod == 0 || c.SamplePeriod > c.SampleDetailCycles,
			"SamplePeriod (%d) must exceed SampleDetailCycles (%d): each period is one detailed window plus the work it stands in for",
			c.SamplePeriod, c.SampleDetailCycles),
		check(c.SampleDetailCycles == 0 || c.EpochRelaxedCycles == 0,
			"sampling (SampleDetailCycles=%d) and relaxed epochs (EpochRelaxedCycles=%d) are mutually exclusive",
			c.SampleDetailCycles, c.EpochRelaxedCycles),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	if c.AdaptiveIdleDetect {
		switch {
		case c.EpochCycles <= 0:
			return fmt.Errorf("config: EpochCycles must be positive, got %d", c.EpochCycles)
		case c.CriticalThreshold < 0:
			return fmt.Errorf("config: CriticalThreshold must be non-negative, got %d", c.CriticalThreshold)
		case c.IdleDetectMin < 0 || c.IdleDetectMax < c.IdleDetectMin:
			return fmt.Errorf("config: adaptive idle-detect bounds invalid: [%d,%d]", c.IdleDetectMin, c.IdleDetectMax)
		case c.DecrementEpochs <= 0:
			return fmt.Errorf("config: DecrementEpochs must be positive, got %d", c.DecrementEpochs)
		}
	}
	return nil
}
