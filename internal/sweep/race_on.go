//go:build race

package sweep

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
