package sweep

import (
	"context"
	"testing"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/store"
)

// sweepBase is the cheap machine config the end-to-end sweeps run on: the
// small machine with a hard cycle cap so each of the hundreds of cells costs
// milliseconds. MaxCycles does not change what the dedup accounting must
// prove (each unique key simulated exactly once, then served from the store).
func sweepBase() config.Config {
	cfg := config.Small()
	cfg.MaxCycles = 2500
	return cfg
}

// bigSpec expands to >= 500 unique cells: 18 benches x 6 techniques x
// 2 scales x 2 seeds = 432... plus a second idle-detect point = 864.
func bigSpec() Spec {
	return Spec{
		Scales:      []float64{0.02, 0.03},
		Seeds:       []uint64{1, 2},
		IdleDetects: []int{5, 9},
	}
}

// TestSweepEndToEndStoreDedup is the tentpole acceptance test: a >= 500-cell
// sweep runs end-to-end through the durable store, and re-running it — on a
// cold engine over the reopened store — performs zero new simulations, with
// every cell served as a store hit and identical rows.
func TestSweepEndToEndStoreDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("hundreds of cells; skipped with -short")
	}
	dir := t.TempDir()
	s1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := &Engine{Base: sweepBase(), Store: s1}
	rep1, err := e1.Run(context.Background(), bigSpec(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Cells < 500 {
		t.Fatalf("sweep has %d cells, want >= 500", rep1.Cells)
	}
	if rep1.Failed > 0 {
		for _, r := range rep1.Results {
			if r.Err != "" {
				t.Errorf("cell %s failed: %s", r.Key, r.Err)
			}
		}
		t.Fatalf("%d cells failed", rep1.Failed)
	}
	if rep1.Simulated != rep1.Cells {
		t.Errorf("first run simulated %d of %d cells (expansion produced duplicates?)",
			rep1.Simulated, rep1.Cells)
	}
	if rep1.StoreHits != 0 {
		t.Errorf("first run hit the empty store %d times", rep1.StoreHits)
	}

	// Cold engine, reopened store: everything must come from disk.
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := &Engine{Base: sweepBase(), Store: s2}
	rep2, err := e2.Run(context.Background(), bigSpec(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Simulated != 0 {
		t.Errorf("re-run performed %d new simulations, want 0", rep2.Simulated)
	}
	if rep2.StoreHits != rep2.Cells {
		t.Errorf("re-run store hits %d, want %d", rep2.StoreHits, rep2.Cells)
	}
	if len(rep1.Results) != len(rep2.Results) {
		t.Fatalf("row counts differ: %d vs %d", len(rep1.Results), len(rep2.Results))
	}
	for i := range rep1.Results {
		a, b := rep1.Results[i], rep2.Results[i]
		if a.Key != b.Key || a.Cycles != b.Cycles || a.Issued != b.Issued {
			t.Fatalf("row %d differs between runs:\n%+v\n%+v", i, a, b)
		}
	}
	t.Logf("sweep: %d cells, first run %v (%d sims), re-run %v (%d store hits)",
		rep1.Cells, rep1.WallTime.Round(time.Millisecond), rep1.Simulated,
		rep2.WallTime.Round(time.Millisecond), rep2.StoreHits)
}

// TestSweepSchedModesIdentical is the scheduler acceptance check at sweep
// scale: the full 864-cell grid produces row-for-row identical reports under
// the static split and the adaptive two-level schedule at several worker
// shapes (including intra-run workers, which under adaptive seed a lease pool
// that grows running cells mid-sweep). Cold engines, no store — every run
// simulates everything — so equality is a property of the simulations, not a
// shared cache.
func TestSweepSchedModesIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("hundreds of cells per mode; skipped with -short")
	}
	run := func(sched core.SchedMode, par, iw int) *Report {
		base := sweepBase()
		base.IntraRunWorkers = iw
		e := &Engine{Base: base, Parallelism: par, Sched: sched}
		rep, err := e.Run(context.Background(), bigSpec(), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed > 0 {
			t.Fatalf("%s par=%d iw=%d: %d cells failed", sched, par, iw, rep.Failed)
		}
		return rep
	}
	want := run(core.SchedStatic, 1, 1)
	if want.Cells < 500 {
		t.Fatalf("grid has %d cells, want >= 500", want.Cells)
	}
	for _, tc := range []struct{ par, iw int }{{4, 1}, {4, 2}, {8, sweepBase().NumSMs}} {
		got := run(core.SchedAdaptive, tc.par, tc.iw)
		if len(got.Results) != len(want.Results) {
			t.Fatalf("adaptive par=%d iw=%d: %d rows, want %d", tc.par, tc.iw, len(got.Results), len(want.Results))
		}
		for i := range want.Results {
			a, b := want.Results[i], got.Results[i]
			if a.Key != b.Key || a.Cycles != b.Cycles || a.Issued != b.Issued || a.Err != b.Err {
				t.Fatalf("adaptive par=%d iw=%d row %d differs:\nstatic:   %+v\nadaptive: %+v",
					tc.par, tc.iw, i, a, b)
			}
		}
	}
}

// TestSweepShardsComposeToWholeGrid runs the same spec as three separate
// shard processes (cold engines over one store) and then the unsharded sweep:
// the shards must have simulated every cell exactly once between them, so
// the final whole-grid pass performs zero simulations.
func TestSweepShardsComposeToWholeGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("hundreds of cells; skipped with -short")
	}
	dir := t.TempDir()
	spec := Spec{
		Benches: []string{"nw", "hotspot", "bfs"},
		Scales:  []float64{0.02, 0.03},
		Seeds:   []uint64{1, 2},
	}
	const n = 3
	var simulated int
	for i := 0; i < n; i++ {
		s, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		e := &Engine{Base: sweepBase(), Store: s}
		rep, err := e.Run(context.Background(), spec, i, n)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed > 0 {
			t.Fatalf("shard %d/%d: %d cells failed", i, n, rep.Failed)
		}
		simulated += rep.Simulated
	}
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Base: sweepBase(), Store: s}
	rep, err := e.Run(context.Background(), spec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if simulated != rep.Cells {
		t.Errorf("shards simulated %d cells between them, grid has %d", simulated, rep.Cells)
	}
	if rep.Simulated != 0 {
		t.Errorf("whole-grid pass after sharded runs performed %d simulations, want 0", rep.Simulated)
	}
}

// TestSweepToleratesCellFailure pins that one bad cell costs one row: a
// sampled sweep whose period is not larger than its detail window fails
// config validation per cell, and the report records it without failing the
// sweep.
func TestSweepToleratesCellFailure(t *testing.T) {
	e := &Engine{Base: sweepBase()}
	spec := Spec{
		Benches:      []string{"nw"},
		Techniques:   []string{"Baseline"},
		Scales:       []float64{0.02},
		SampleDetail: 500,
		SamplePeriod: 500, // invalid: period must exceed detail
	}
	rep, err := e.Run(context.Background(), spec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Completed != 0 {
		t.Fatalf("want 1 failed row, got failed=%d completed=%d", rep.Failed, rep.Completed)
	}
	if rep.Results[0].Err == "" {
		t.Fatal("failed row carries no error")
	}
}

// TestSampledSweepSpeedup is the acceptance perf gate: on long scale-2.0
// workloads the sampled sweep is >= 3x faster wall-clock than the detailed
// sweep over the same cells, and every sampled cell carries an error
// estimate at or below the documented corpus ceiling's estimate budget
// (15%; the *actual* error ceiling of 5% is asserted against full runs by
// internal/sim's TestSampledModeCorpusErrorBound). Runs serially on one
// worker so the wall-clock ratio measures the engine, not the scheduler.
func TestSampledSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-2.0 detailed references are slow; skipped with -short")
	}
	base := config.Small()
	base.NumSMs = 4
	spec := Spec{
		Benches:    []string{"hotspot", "mri", "bfs", "kmeans"},
		Techniques: []string{"Baseline", "CoordBlackout", "WarpedGates"},
		SMs:        []int{4},
		Scales:     []float64{2.0},
	}
	sampled := spec
	sampled.SampleDetail = 1000
	sampled.SamplePeriod = 5000

	// A fresh engine per attempt: the engine's runners memoize reports, so a
	// re-measurement on the same engine would time cache hits, not work.
	measure := func() (det, smp *Report) {
		e := &Engine{Base: base, Parallelism: 1}
		var err error
		if det, err = e.Run(context.Background(), spec, 0, 0); err != nil {
			t.Fatal(err)
		}
		if det.Failed > 0 {
			t.Fatalf("%d detailed cells failed", det.Failed)
		}
		if smp, err = e.Run(context.Background(), sampled, 0, 0); err != nil {
			t.Fatal(err)
		}
		if smp.Failed > 0 {
			t.Fatalf("%d sampled cells failed", smp.Failed)
		}
		return det, smp
	}

	det, smp := measure()
	for _, r := range smp.Results {
		if !r.Sampled {
			t.Errorf("cell %s did not sample", r.Key)
		}
	}
	if smp.MaxSampleErrorEst > 0.15 {
		t.Errorf("max per-cell error estimate %.2f%% exceeds the 15%% estimate budget",
			smp.MaxSampleErrorEst*100)
	}
	ratio := float64(det.WallTime) / float64(smp.WallTime)
	t.Logf("detailed %v, sampled %v: %.2fx (max est %.2f%%, mean est %.2f%%)",
		det.WallTime.Round(time.Millisecond), smp.WallTime.Round(time.Millisecond),
		ratio, smp.MaxSampleErrorEst*100, smp.MeanSampleErrorEst*100)
	if raceEnabled {
		t.Log("race detector active: wall-clock ratio logged, not asserted")
		return
	}
	// The measured ratio sits at 3.3-3.7x; one re-measurement absorbs a
	// transiently loaded host without weakening the >= 3x assertion.
	if ratio < 3.0 {
		det, smp = measure()
		ratio = float64(det.WallTime) / float64(smp.WallTime)
		t.Logf("re-measured: detailed %v, sampled %v: %.2fx",
			det.WallTime.Round(time.Millisecond), smp.WallTime.Round(time.Millisecond), ratio)
	}
	if ratio < 3.0 {
		t.Errorf("sampled sweep only %.2fx faster than detailed, want >= 3x", ratio)
	}
}
