package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/sim"
	"warpedgates/internal/store"
)

// Engine runs expanded sweeps against the memoizing runner stack. One engine
// owns one runner per scale (Runner.Scale is a runner-level axis), all
// sharing the same durable store, so every cell of every sweep deduplicates
// through the same two cache tiers the figure drivers and the HTTP service
// use.
type Engine struct {
	// Base is the machine configuration cells are projected onto.
	Base config.Config
	// Store, when non-nil, is the shared durable report tier.
	Store *store.Store
	// Parallelism bounds the cell-level worker pool (0 = GOMAXPROCS). The
	// per-scale runners inherit it, and the engine's own pool is what
	// schedules cells, so the two never multiply.
	Parallelism int
	// MaxWallTime is the per-cell watchdog, passed to the runners.
	MaxWallTime time.Duration
	// Sched selects the cell scheduling mode, passed to the runners and
	// applied to the engine's own cell pool: adaptive (the zero value) admits
	// cells longest-predicted-first and lends drained workers' budget to
	// still-running cells as extra intra-run workers; static keeps expansion
	// order and a fixed split. Either way the report rows are sorted by
	// canonical key, so sweep output is byte-identical across modes.
	Sched core.SchedMode
	// Progress, when non-nil, is called after each cell completes (from
	// worker goroutines — must be safe for concurrent use).
	Progress func(done, total int, res CellResult)

	mu      sync.Mutex
	runners map[float64]*core.Runner
	sims    atomic.Uint64
}

// CellResult is one cell's outcome: its resolved axes, canonical key and the
// headline counters, or the per-cell error. Sweeps tolerate cell failures —
// one bad cell costs one row, not the sweep.
type CellResult struct {
	Cell   Cell   `json:"cell"`
	Key    string `json:"key"`
	Cycles int64  `json:"cycles,omitempty"`
	Issued uint64 `json:"issued,omitempty"`
	// Sampled mirrors the report's sampling block for sampled cells.
	Sampled        bool    `json:"sampled,omitempty"`
	SampleErrorEst float64 `json:"sample_error_est,omitempty"`
	Err            string  `json:"error,omitempty"`
}

// TechAgg aggregates one technique's completed cells.
type TechAgg struct {
	Cells      int     `json:"cells"`
	MeanCycles float64 `json:"mean_cycles"`
}

// Report is the per-sweep summary: dedup accounting, aggregates over the
// completed cells, and the per-cell rows in deterministic (sorted-key)
// order.
type Report struct {
	Cells     int `json:"cells"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Simulated counts fresh simulations this run performed; StoreHits counts
	// cells served by the durable store. Cells satisfied by the in-memory
	// tier (duplicate axes within one process lifetime) appear in neither.
	Simulated int `json:"simulated"`
	StoreHits int `json:"store_hits"`

	WallTime time.Duration `json:"wall_time_ns"`

	// MaxSampleErrorEst / MeanSampleErrorEst summarize the per-cell error
	// estimates of sampled cells (zero when the sweep ran detailed).
	MaxSampleErrorEst  float64 `json:"max_sample_error_est,omitempty"`
	MeanSampleErrorEst float64 `json:"mean_sample_error_est,omitempty"`

	ByTechnique map[string]TechAgg `json:"by_technique"`
	Results     []CellResult       `json:"results"`
}

// runner returns the engine's runner for one scale, creating it on first
// use. Runner Progress counts fresh simulations for the dedup accounting.
func (e *Engine) runner(scale float64) *core.Runner {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.runners == nil {
		e.runners = make(map[float64]*core.Runner)
	}
	if r, ok := e.runners[scale]; ok {
		return r
	}
	r := core.NewRunner(e.Base)
	r.Scale = scale
	r.Store = e.Store
	r.Parallelism = e.Parallelism
	r.MaxWallTime = e.MaxWallTime
	r.Sched = e.Sched
	r.Progress = func(string, config.Config) { e.sims.Add(1) }
	e.runners[scale] = r
	return r
}

// Simulations returns how many fresh (uncached, non-store) simulations the
// engine has performed across its lifetime.
func (e *Engine) Simulations() uint64 { return e.sims.Load() }

// Run expands spec, optionally takes shard i of n over the sorted job-key
// space (n <= 1 runs everything), executes every cell on a bounded worker
// pool and returns the sweep report. Cell failures are recorded per row;
// Run itself fails only on an invalid spec/shard or a canceled context.
func (e *Engine) Run(ctx context.Context, spec Spec, shardI, shardN int) (*Report, error) {
	cells, err := Expand(spec, e.Base)
	if err != nil {
		return nil, err
	}
	if shardN == 0 && shardI == 0 {
		shardN = 1 // zero value: whole sweep
	}
	if cells, err = Shard(cells, e.Base, shardI, shardN); err != nil {
		return nil, err
	}
	return e.RunCells(ctx, cells)
}

// RunCells executes an explicit cell list (already expanded, possibly
// sharded) and aggregates the results.
func (e *Engine) RunCells(ctx context.Context, cells []Cell) (*Report, error) {
	start := time.Now()
	sims0 := e.sims.Load()
	var hits0 store.Health
	if e.Store != nil {
		hits0 = e.Store.Health()
	}
	results := make([]CellResult, len(cells))
	var done atomic.Int64

	budget := e.Parallelism
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	workers := budget
	// Divide by the *effective* intra-run worker count (the engine clamps
	// IntraRunWorkers to NumSMs), mirroring Runner.workers: the raw knob can
	// exceed the goroutines that will ever exist and must not starve the
	// cell pool.
	iw := e.Base.EffectiveIntraRunWorkers()
	if iw > 1 {
		workers /= iw
		if workers < 1 {
			workers = 1
		}
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}

	// Adaptive scheduling, as in core.RunManyCtx: LPT admission by predicted
	// cost, and an elastic tail — surplus budget plus every drained worker's
	// share becomes lease tokens that still-running cells absorb as extra
	// intra-run workers. Report rows are key-sorted, so the mode cannot
	// change output bytes.
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	var leases *core.WorkerLeases
	if e.Sched == core.SchedAdaptive && workers > 1 {
		cost := core.DefaultCostModel()
		pred := make([]float64, len(cells))
		for i, c := range cells {
			pred[i] = cost.Predict(c.Bench, c.Config(e.Base), c.Scale)
		}
		sort.SliceStable(order, func(a, b int) bool { return pred[order[a]] > pred[order[b]] })
		leases = core.NewWorkerLeases(budget - workers*iw)
		ctx = core.WithWorkerLeases(ctx, leases)
	}

	next := make(chan int)
	go func() {
		defer close(next)
		for _, i := range order {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if leases != nil {
				defer leases.Release(iw)
			}
			for i := range next {
				results[i] = e.runCell(ctx, cells[i])
				if e.Progress != nil {
					e.Progress(int(done.Add(1)), len(cells), results[i])
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		if cause := context.Cause(ctx); cause != nil {
			return nil, cause
		}
		return nil, err
	}

	rep := &Report{
		Cells:       len(cells),
		WallTime:    time.Since(start),
		Simulated:   int(e.sims.Load() - sims0),
		ByTechnique: make(map[string]TechAgg),
		Results:     results,
	}
	if e.Store != nil {
		rep.StoreHits = int(e.Store.Health().Hits - hits0.Hits)
	}
	sort.Slice(rep.Results, func(a, b int) bool { return rep.Results[a].Key < rep.Results[b].Key })
	techCycles := make(map[string]float64)
	var estSum float64
	var estN int
	for _, r := range rep.Results {
		if r.Err != "" {
			rep.Failed++
			continue
		}
		rep.Completed++
		agg := rep.ByTechnique[r.Cell.TechName]
		agg.Cells++
		rep.ByTechnique[r.Cell.TechName] = agg
		techCycles[r.Cell.TechName] += float64(r.Cycles)
		if r.Sampled {
			estSum += r.SampleErrorEst
			estN++
			if r.SampleErrorEst > rep.MaxSampleErrorEst {
				rep.MaxSampleErrorEst = r.SampleErrorEst
			}
		}
	}
	for name, agg := range rep.ByTechnique {
		agg.MeanCycles = techCycles[name] / float64(agg.Cells)
		rep.ByTechnique[name] = agg
	}
	if estN > 0 {
		rep.MeanSampleErrorEst = estSum / float64(estN)
	}
	return rep, nil
}

// runCell executes one cell through its scale's runner.
func (e *Engine) runCell(ctx context.Context, c Cell) CellResult {
	res := CellResult{Cell: c, Key: c.Key(e.Base)}
	cfg := c.Config(e.Base)
	rep, err := e.runner(c.Scale).RunCfgCtx(ctx, c.Bench, cfg)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Cycles = rep.Cycles
	res.Issued = rep.IssuedTotal
	res.Sampled = rep.Sampled
	res.SampleErrorEst = rep.SampleErrorEst
	return res
}

// CachedReport exposes the runners' canon-index lookup so callers holding a
// sweep row's key can fetch the full report without re-running anything.
func (e *Engine) CachedReport(key string) (*sim.Report, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range e.runners {
		if rep, ok := r.CachedReport(key); ok {
			return rep, true
		}
	}
	return nil, false
}

// Summary renders the report's headline counters as a short human-readable
// block (the CLI prints it; the JSON report carries the full rows).
func (r *Report) Summary() string {
	s := fmt.Sprintf("cells=%d completed=%d failed=%d simulated=%d store_hits=%d wall=%v\n",
		r.Cells, r.Completed, r.Failed, r.Simulated, r.StoreHits, r.WallTime.Round(time.Millisecond))
	if r.MaxSampleErrorEst > 0 {
		s += fmt.Sprintf("sampled: max_error_est=%.2f%% mean_error_est=%.2f%%\n",
			r.MaxSampleErrorEst*100, r.MeanSampleErrorEst*100)
	}
	names := make([]string, 0, len(r.ByTechnique))
	for name := range r.ByTechnique {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		agg := r.ByTechnique[name]
		s += fmt.Sprintf("  %-14s cells=%-5d mean_cycles=%.0f\n", name, agg.Cells, agg.MeanCycles)
	}
	return s
}
