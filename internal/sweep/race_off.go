//go:build !race

package sweep

// raceEnabled reports whether the race detector instruments this build;
// wall-clock assertions are logged but not enforced under -race.
const raceEnabled = false
