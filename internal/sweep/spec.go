// Package sweep is the fleet-scale experiment layer: a declarative parameter
// grid (benchmarks × techniques × machine sizes × scales × seeds × gating
// knobs) expands into canonical simulation jobs, deduplicates against the
// runner's tiers (including the durable store), shards across processes over
// the sorted job-key space, and aggregates per-cell reports into one sweep
// report. Cells may run detailed or interval-sampled (see internal/sim's
// sampling mode); sampled cells carry their per-cell error estimate into the
// sweep aggregates.
package sweep

import (
	"fmt"
	"sort"

	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/kernels"
)

// Spec declares a parameter grid. Empty axes default to the engine's base
// configuration (or, for Benches/Techniques, to the full paper set), so the
// zero Spec expands to the paper's 18×6 matrix at scale 1.0. SampleDetail and
// SamplePeriod select interval-sampled execution for every cell of the sweep
// (both zero = detailed); they are validated by config.Validate per cell.
type Spec struct {
	Benches    []string  `json:"benches,omitempty"`
	Techniques []string  `json:"techniques,omitempty"`
	SMs        []int     `json:"sms,omitempty"`
	Scales     []float64 `json:"scales,omitempty"`
	Seeds      []uint64  `json:"seeds,omitempty"`

	// Gating-knob axes (cycles). Empty = base config's value.
	IdleDetects  []int `json:"idle_detects,omitempty"`
	BreakEvens   []int `json:"break_evens,omitempty"`
	WakeupDelays []int `json:"wakeup_delays,omitempty"`

	SampleDetail int `json:"sample_detail,omitempty"`
	SamplePeriod int `json:"sample_period,omitempty"`
}

// Cell is one fully resolved grid point. Every axis holds a concrete value
// (defaults are resolved at expansion), so a cell is self-describing and its
// canonical job key is a pure function of the cell plus the base machine
// config.
type Cell struct {
	Bench      string         `json:"bench"`
	Technique  core.Technique `json:"-"`
	TechName   string         `json:"technique"`
	SMs        int            `json:"sms"`
	Scale      float64        `json:"scale"`
	Seed       uint64         `json:"seed"`
	IdleDetect int            `json:"idle_detect"`
	BreakEven  int            `json:"break_even"`
	Wakeup     int            `json:"wakeup_delay"`

	SampleDetail int `json:"sample_detail,omitempty"`
	SamplePeriod int `json:"sample_period,omitempty"`
}

// Config projects the cell onto the base machine configuration: technique
// first (scheduler/gating/adaptive), then the cell's explicit axes.
func (c Cell) Config(base config.Config) config.Config {
	cfg := c.Technique.Apply(base)
	cfg.NumSMs = c.SMs
	cfg.Seed = c.Seed
	cfg.IdleDetect = c.IdleDetect
	cfg.BreakEven = c.BreakEven
	cfg.WakeupDelay = c.Wakeup
	cfg.SampleDetailCycles = c.SampleDetail
	cfg.SamplePeriod = c.SamplePeriod
	return cfg
}

// Key returns the cell's canonical job key — the same string the runner's
// durable store is addressed by, so sweep dedup and store dedup agree.
func (c Cell) Key(base config.Config) string {
	return core.JobKey(c.Bench, c.Config(base), c.Scale)
}

// Expand resolves the spec's defaults against base and returns the full
// cross product in deterministic axis order (bench, technique, SMs, scale,
// seed, idle-detect, break-even, wakeup). Axis values are deduplicated before
// crossing, so the result is duplicate-free: distinct cells always differ in
// at least one axis and therefore in their canonical key. Unknown benchmark
// or technique names fail expansion.
func Expand(spec Spec, base config.Config) ([]Cell, error) {
	benches := spec.Benches
	if len(benches) == 0 {
		benches = kernels.BenchmarkNames
	}
	benches = dedupStrings(benches)
	for _, b := range benches {
		if _, err := kernels.Benchmark(b); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	techNames := spec.Techniques
	if len(techNames) == 0 {
		for _, t := range core.AllTechniques() {
			techNames = append(techNames, t.String())
		}
	}
	techNames = dedupStrings(techNames)
	techs := make([]core.Technique, len(techNames))
	for i, name := range techNames {
		t, err := core.ParseTechnique(name)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		techs[i] = t
	}
	sms := dedupInts(defaultInts(spec.SMs, base.NumSMs))
	scales := dedupFloats(defaultFloats(spec.Scales, 1.0))
	seeds := dedupUints(defaultUints(spec.Seeds, base.Seed))
	idles := dedupInts(defaultInts(spec.IdleDetects, base.IdleDetect))
	bets := dedupInts(defaultInts(spec.BreakEvens, base.BreakEven))
	wakes := dedupInts(defaultInts(spec.WakeupDelays, base.WakeupDelay))

	cells := make([]Cell, 0,
		len(benches)*len(techs)*len(sms)*len(scales)*len(seeds)*len(idles)*len(bets)*len(wakes))
	for _, b := range benches {
		for ti, tech := range techs {
			for _, nsm := range sms {
				for _, sc := range scales {
					for _, seed := range seeds {
						for _, idle := range idles {
							for _, bet := range bets {
								for _, wake := range wakes {
									cells = append(cells, Cell{
										Bench:        b,
										Technique:    tech,
										TechName:     techNames[ti],
										SMs:          nsm,
										Scale:        sc,
										Seed:         seed,
										IdleDetect:   idle,
										BreakEven:    bet,
										Wakeup:       wake,
										SampleDetail: spec.SampleDetail,
										SamplePeriod: spec.SamplePeriod,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// Shard returns the cells of shard i of n under the canonical partition:
// cells sorted by job key, striped round-robin. Striping (rather than
// contiguous ranges) balances work when expensive cells cluster in key space
// — e.g. all of one benchmark's scales sort adjacently. Shards for fixed n
// are disjoint and cover the input exactly; Shard never mutates cells.
func Shard(cells []Cell, base config.Config, i, n int) ([]Cell, error) {
	if n <= 0 || i < 0 || i >= n {
		return nil, fmt.Errorf("sweep: invalid shard %d/%d", i, n)
	}
	if n == 1 {
		return cells, nil
	}
	type keyed struct {
		key  string
		cell Cell
	}
	ordered := make([]keyed, len(cells))
	for j, c := range cells {
		ordered[j] = keyed{key: c.Key(base), cell: c}
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].key < ordered[b].key })
	var out []Cell
	for j := i; j < len(ordered); j += n {
		out = append(out, ordered[j].cell)
	}
	return out, nil
}

func defaultInts(v []int, d int) []int {
	if len(v) == 0 {
		return []int{d}
	}
	return v
}

func defaultFloats(v []float64, d float64) []float64 {
	if len(v) == 0 {
		return []float64{d}
	}
	return v
}

func defaultUints(v []uint64, d uint64) []uint64 {
	if len(v) == 0 {
		return []uint64{d}
	}
	return v
}

func dedupStrings(v []string) []string {
	seen := make(map[string]bool, len(v))
	out := v[:0:0]
	for _, s := range v {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func dedupInts(v []int) []int {
	seen := make(map[int]bool, len(v))
	out := v[:0:0]
	for _, s := range v {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func dedupFloats(v []float64) []float64 {
	seen := make(map[float64]bool, len(v))
	out := v[:0:0]
	for _, s := range v {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func dedupUints(v []uint64) []uint64 {
	seen := make(map[uint64]bool, len(v))
	out := v[:0:0]
	for _, s := range v {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
