package sweep

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
)

// randomSpec draws a spec with random non-empty subsets of the valid axis
// pools (including deliberate duplicates, which Expand must fold away).
func randomSpec(r *rand.Rand) Spec {
	pick := func(pool []string) []string {
		n := 1 + r.Intn(len(pool))
		out := make([]string, n)
		for i := range out {
			out[i] = pool[r.Intn(len(pool))] // duplicates allowed
		}
		return out
	}
	techPool := []string{"Baseline", "ConvPG", "GATES", "NaiveBlackout", "CoordBlackout", "WarpedGates"}
	spec := Spec{
		Benches:    pick(kernels.BenchmarkNames),
		Techniques: pick(techPool),
	}
	if r.Intn(2) == 0 {
		for i := 0; i < 1+r.Intn(2); i++ {
			spec.SMs = append(spec.SMs, 2+r.Intn(4))
		}
	}
	if r.Intn(2) == 0 {
		for i := 0; i < 1+r.Intn(3); i++ {
			spec.Scales = append(spec.Scales, float64(1+r.Intn(4))/10)
		}
	}
	if r.Intn(2) == 0 {
		for i := 0; i < 1+r.Intn(2); i++ {
			spec.Seeds = append(spec.Seeds, r.Uint64()%16)
		}
	}
	if r.Intn(2) == 0 {
		for i := 0; i < 1+r.Intn(2); i++ {
			spec.IdleDetects = append(spec.IdleDetects, 1+r.Intn(8))
		}
	}
	return spec
}

// TestExpandDeterministicAndDuplicateFree is the satellite property test:
// for random specs, expansion is stable across calls, every cell's canonical
// job key is unique, and the cell count is exactly the product of the
// deduplicated axis cardinalities.
func TestExpandDeterministicAndDuplicateFree(t *testing.T) {
	base := config.Small()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomSpec(r)
		a, err := Expand(spec, base)
		if err != nil {
			t.Logf("seed %d: expand failed: %v", seed, err)
			return false
		}
		b, err := Expand(spec, base)
		if err != nil || !reflect.DeepEqual(a, b) {
			t.Logf("seed %d: expansion not deterministic", seed)
			return false
		}
		keys := make(map[string]bool, len(a))
		for _, c := range a {
			k := c.Key(base)
			if keys[k] {
				t.Logf("seed %d: duplicate key %s", seed, k)
				return false
			}
			keys[k] = true
		}
		want := len(dedupStrings(spec.Benches)) * len(dedupStrings(spec.Techniques)) *
			len(dedupInts(defaultInts(spec.SMs, base.NumSMs))) *
			len(dedupFloats(defaultFloats(spec.Scales, 1.0))) *
			len(dedupUints(defaultUints(spec.Seeds, base.Seed))) *
			len(dedupInts(defaultInts(spec.IdleDetects, base.IdleDetect)))
		if len(a) != want {
			t.Logf("seed %d: got %d cells, want %d", seed, len(a), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestShardPartition is the satellite property test for -shard i/n: for
// several n, the shards are pairwise disjoint, their union is exactly the
// full grid, and sizes are balanced to within one cell.
func TestShardPartition(t *testing.T) {
	base := config.Small()
	spec := Spec{
		Benches:    []string{"nw", "hotspot", "mri", "bfs", "kmeans"},
		Techniques: []string{"Baseline", "ConvPG", "WarpedGates"},
		Scales:     []float64{0.1, 0.2},
		Seeds:      []uint64{1, 2, 3},
	}
	cells, err := Expand(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	all := make(map[string]bool, len(cells))
	for _, c := range cells {
		all[c.Key(base)] = true
	}
	for _, n := range []int{1, 2, 3, 5, 8, len(cells), len(cells) + 7} {
		seen := make(map[string]int, len(cells))
		for i := 0; i < n; i++ {
			shard, err := Shard(cells, base, i, n)
			if err != nil {
				t.Fatalf("Shard(%d/%d): %v", i, n, err)
			}
			if max, min := len(cells)/n+1, len(cells)/n; len(shard) > max || len(shard) < min {
				t.Errorf("shard %d/%d has %d cells, want %d..%d", i, n, len(shard), min, max)
			}
			for _, c := range shard {
				seen[c.Key(base)]++
			}
		}
		if len(seen) != len(all) {
			t.Fatalf("n=%d: shards cover %d keys, grid has %d", n, len(seen), len(all))
		}
		for k, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("n=%d: key %s appears in %d shards", n, k, cnt)
			}
			if !all[k] {
				t.Fatalf("n=%d: shard key %s not in the grid", n, k)
			}
		}
	}
}

// TestShardRejectsInvalid pins the parameter contract.
func TestShardRejectsInvalid(t *testing.T) {
	base := config.Small()
	cells := []Cell{{Bench: "nw"}}
	for _, bad := range [][2]int{{0, 0}, {-1, 2}, {2, 2}, {1, -1}} {
		if _, err := Shard(cells, base, bad[0], bad[1]); err == nil {
			t.Errorf("Shard(%d/%d) accepted", bad[0], bad[1])
		}
	}
}

// TestExpandRejectsUnknownNames pins expansion validation.
func TestExpandRejectsUnknownNames(t *testing.T) {
	base := config.Small()
	if _, err := Expand(Spec{Benches: []string{"nope"}}, base); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Expand(Spec{Techniques: []string{"nope"}}, base); err == nil {
		t.Error("unknown technique accepted")
	}
}

// TestExpandZeroSpecIsPaperMatrix pins the default grid: the zero spec is
// the paper's benches × techniques matrix at scale 1.0.
func TestExpandZeroSpecIsPaperMatrix(t *testing.T) {
	base := config.Small()
	cells, err := Expand(Spec{}, base)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(kernels.BenchmarkNames) * 6; len(cells) != want {
		t.Fatalf("zero spec expands to %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Scale != 1.0 || c.SMs != base.NumSMs || c.Seed != base.Seed {
			t.Fatalf("zero-spec cell did not inherit defaults: %+v", c)
		}
	}
}
