package power

import (
	"fmt"

	"warpedgates/internal/stats"
)

// The paper's §7.5 synthesizes the microarchitectural counters Warped Gates
// adds to each SM (NCSU PDK 45nm) and reports their area and power against
// the SM totals extracted from GPUWattch. This file reproduces the counter
// inventory and the arithmetic. Per-bit constants are derived by
// distributing the paper's reported totals (1,210.8 um², 1.55e-3 W dynamic,
// 1.21e-5 W leakage for the full counter set) over the total storage bits,
// so the inventory below reproduces the paper's totals by construction and
// lets variants (different cluster counts, wider counters) be costed
// consistently.

// CounterSpec is one hardware counter added by the proposal.
type CounterSpec struct {
	Name  string
	Bits  int
	Count int // instances per SM
}

// WarpedGatesCounters returns the per-SM counter inventory of Figure 7:
// four 5-bit ready counters and two 6-bit ACTV counters for GATES, one
// 5-bit blackout (BET) counter per gating domain, one critical-wakeup
// counter and one idle-detect register per ALU type for Adaptive idle
// detect, plus the 2-bit priority register.
func WarpedGatesCounters(numSPClusters int) []CounterSpec {
	if numSPClusters <= 0 {
		numSPClusters = 2
	}
	return []CounterSpec{
		{Name: "INT_RDY/FP_RDY/SFU_RDY/LDST_RDY", Bits: 5, Count: 4},
		{Name: "INT_ACTV/FP_ACTV", Bits: 6, Count: 2},
		{Name: "blackout BET counters", Bits: 5, Count: 2 * numSPClusters},
		{Name: "critical wakeup counters", Bits: 8, Count: 2},
		{Name: "idle-detect registers", Bits: 4, Count: 2},
		{Name: "priority register", Bits: 2, Count: 1},
	}
}

// paper-reported totals for the default two-cluster inventory.
const (
	paperCountersAreaUM2  = 1210.8
	paperCountersDynWatts = 1.55e-3
	paperCountersLeakWatt = 1.21e-5
)

// totalBits sums the storage bits of an inventory.
func totalBits(specs []CounterSpec) int {
	n := 0
	for _, s := range specs {
		n += s.Bits * s.Count
	}
	return n
}

// Overhead is the area/power cost of the added hardware relative to one SM.
type Overhead struct {
	AreaUM2       float64
	DynamicWatts  float64
	LeakageWatts  float64
	AreaFraction  float64 // vs one SM
	DynFraction   float64
	LeakFraction  float64
	InventoryBits int
}

// HardwareOverhead costs an inventory against the paper's per-SM totals.
func HardwareOverhead(specs []CounterSpec) Overhead {
	refBits := totalBits(WarpedGatesCounters(2))
	bits := totalBits(specs)
	scale := float64(bits) / float64(refBits)
	o := Overhead{
		AreaUM2:       paperCountersAreaUM2 * scale,
		DynamicWatts:  paperCountersDynWatts * scale,
		LeakageWatts:  paperCountersLeakWatt * scale,
		InventoryBits: bits,
	}
	o.AreaFraction = o.AreaUM2 / (SMAreaMM2 * 1e6)
	o.DynFraction = o.DynamicWatts / SMDynamicWatts
	o.LeakFraction = o.LeakageWatts / SMLeakageWatts
	return o
}

// OverheadTable renders the §7.5 hardware-overhead result.
func OverheadTable(specs []CounterSpec) *stats.Table {
	t := stats.NewTable("Hardware overhead of Warped Gates counters (paper §7.5)",
		"counter", "bits", "instances")
	for _, s := range specs {
		t.AddRowf(s.Name, s.Bits, s.Count)
	}
	o := HardwareOverhead(specs)
	t.AddRow("", "", "")
	t.AddRowf("total bits", o.InventoryBits, "")
	t.AddRowf("area (um^2)", o.AreaUM2, percent(o.AreaFraction))
	t.AddRowf("dynamic (W)", o.DynamicWatts, percent(o.DynFraction))
	t.AddRowf("leakage (W)", o.LeakageWatts, percent(o.LeakFraction))
	return t
}

func percent(f float64) string {
	if f >= 0.0001 {
		return fmt.Sprintf("%.3f%%", f*100)
	}
	return fmt.Sprintf("%.5f%%", f*100)
}
