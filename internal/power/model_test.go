package power

import (
	"math"
	"testing"
	"testing/quick"

	"warpedgates/internal/config"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
)

func TestDefaultModelConstants(t *testing.T) {
	m := Default(14)
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if m.StaticPerCycle[c] <= 0 || m.DynamicPerInstr[c] <= 0 {
			t.Fatalf("class %s has non-positive power constants", c)
		}
	}
	if m.StaticPerCycle[isa.FP] <= m.StaticPerCycle[isa.INT] {
		t.Fatal("FP leakage should exceed INT leakage (GPUWattch attribution)")
	}
	if m.GatedResidualFraction < 0 || m.GatedResidualFraction >= 1 {
		t.Fatalf("residual fraction %v out of range", m.GatedResidualFraction)
	}
}

func TestDefaultPanicsOnBadBET(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BET 0 accepted")
		}
	}()
	Default(0)
}

func TestEventOverheadIsBETTimesStatic(t *testing.T) {
	// The definitional identity of break-even time (Hu et al. [13]).
	m := Default(14)
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		want := 14 * m.StaticPerCycle[c]
		if got := m.EventOverhead(c); math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s overhead = %v, want %v", c, got, want)
		}
	}
}

// fakeReport builds a report with hand-set domain counters.
func fakeReport(powered, gated, events, instrs uint64) *sim.Report {
	r := &sim.Report{}
	d := &r.Domains[isa.INT]
	d.Class = isa.INT
	d.PoweredCycles = powered
	d.GatedCycles = gated
	d.BusyCycles = powered / 2
	d.IdleCycles = powered + gated - d.BusyCycles
	d.GatingEvents = events
	d.IssuedInstrs = instrs
	return r
}

func TestAnalyzeArithmetic(t *testing.T) {
	m := Default(10)
	m.GatedResidualFraction = 0
	r := fakeReport(700, 300, 5, 100)
	b := m.Analyze(r, isa.INT)
	ps := m.StaticPerCycle[isa.INT]
	if got, want := b.Static, 700*ps; got != want {
		t.Fatalf("static = %v, want %v", got, want)
	}
	if got, want := b.Overhead, 5*10*ps; got != want {
		t.Fatalf("overhead = %v, want %v", got, want)
	}
	if got, want := b.Dynamic, 100*m.DynamicPerInstr[isa.INT]; got != want {
		t.Fatalf("dynamic = %v, want %v", got, want)
	}
	if got, want := b.StaticBaseline, 1000*ps; got != want {
		t.Fatalf("baseline = %v, want %v", got, want)
	}
	// Savings = (1000 - 700 - 50)/1000 = 0.25.
	if got := b.StaticSavings(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("savings = %v, want 0.25", got)
	}
}

func TestBreakdownFractionsSumToOne(t *testing.T) {
	f := func(powered, gated, events, instrs uint16) bool {
		m := Default(14)
		r := fakeReport(uint64(powered), uint64(gated), uint64(events), uint64(instrs))
		b := m.Analyze(r, isa.INT)
		if b.Total() == 0 {
			return b.FractionStatic() == 0 && b.FractionDynamic() == 0 && b.FractionOverhead() == 0
		}
		sum := b.FractionStatic() + b.FractionDynamic() + b.FractionOverhead()
		return sum > 0.999999 && sum < 1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSavingsNeverExceedOne(t *testing.T) {
	f := func(powered, gated, events uint16) bool {
		m := Default(14)
		r := fakeReport(uint64(powered), uint64(gated), uint64(events), 10)
		s := m.Analyze(r, isa.INT).StaticSavings()
		return s <= 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeAgainstPenalizesSlowdown(t *testing.T) {
	m := Default(14)
	fast := fakeReport(800, 200, 0, 100) // 1000 cycles
	slowRun := fakeReport(1000, 200, 0, 100)
	// Against a 1000-cycle baseline, the 1200-cycle run's extra powered
	// cycles reduce savings below its self-normalized figure.
	self := m.Analyze(slowRun, isa.INT).StaticSavings()
	vsBase := m.AnalyzeAgainst(slowRun, fast, isa.INT).StaticSavings()
	if vsBase >= self {
		t.Fatalf("baseline-normalized savings %v should be below self-normalized %v", vsBase, self)
	}
}

func TestDynamicEnergyInvariantAcrossTechniques(t *testing.T) {
	// Integration check of the paper's §7.3 claim on our simulator: dynamic
	// energy of every class is identical across gating techniques.
	cfg := config.Small()
	k := kernels.MustBenchmark("hotspot").Scale(0.2)
	m := Default(cfg.BreakEven)

	run := func(g config.GatingKind, s config.SchedulerKind) *sim.Report {
		c := cfg
		c.Gating = g
		c.Scheduler = s
		gpu, err := sim.NewGPU(c, k)
		if err != nil {
			t.Fatal(err)
		}
		return gpu.Run()
	}
	base := run(config.GateNone, config.SchedTwoLevel)
	for _, g := range []config.GatingKind{config.GateConventional, config.GateCoordBlackout} {
		rep := run(g, config.SchedGATES)
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			if got, want := m.Analyze(rep, c).Dynamic, m.Analyze(base, c).Dynamic; got != want {
				t.Fatalf("class %s dynamic energy %v != baseline %v under %v", c, got, want, g)
			}
		}
	}
}

func TestAnalyzeAll(t *testing.T) {
	m := Default(14)
	r := fakeReport(100, 0, 0, 10)
	all := m.AnalyzeAll(r)
	if all[isa.INT].Dynamic == 0 {
		t.Fatal("INT breakdown missing")
	}
	if all[isa.FP].Dynamic != 0 {
		t.Fatal("FP breakdown should be empty for an INT-only fake report")
	}
}

func TestAnalyzeNilAndEmptyReports(t *testing.T) {
	// The model must be total: nil reports, nil baselines and zero-cycle runs
	// all yield finite all-zero breakdowns, never NaN (a NaN here would
	// silently poison every suite mean it is folded into).
	m := Default(14)
	finite := func(b Breakdown) {
		t.Helper()
		for _, v := range []float64{
			b.Static, b.Dynamic, b.Overhead, b.StaticBaseline, b.Total(),
			b.StaticSavings(), b.FractionStatic(), b.FractionDynamic(), b.FractionOverhead(),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite value %v in breakdown %+v", v, b)
			}
		}
	}
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		finite(m.Analyze(nil, c))
		finite(m.AnalyzeAgainst(nil, nil, c))
		finite(m.AnalyzeAgainst(&sim.Report{}, nil, c))
		finite(m.AnalyzeAgainst(nil, &sim.Report{}, c))
		empty := m.AnalyzeAgainst(&sim.Report{}, &sim.Report{}, c)
		finite(empty)
		if empty.Total() != 0 || empty.StaticSavings() != 0 {
			t.Fatalf("zero-cycle run has non-zero energy: %+v", empty)
		}
	}
	for _, b := range m.AnalyzeAll(nil) {
		finite(b)
	}
}

func TestAnalyzeAgainstIntegerOnlyBenchmark(t *testing.T) {
	// lavaMD has no FP instructions at all; its FP domain is pure idle. The
	// FP breakdown must still be finite, with zero dynamic energy and a
	// meaningful static term (the idle pipes still leak).
	if !kernels.IntegerOnly("lavaMD") {
		t.Fatal("lavaMD is the suite's integer-only benchmark")
	}
	cfg := config.Small()
	k := kernels.MustBenchmark("lavaMD").Scale(0.1)
	gpu, err := sim.NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	rep := gpu.Run()
	m := Default(cfg.BreakEven)
	b := m.AnalyzeAgainst(rep, rep, isa.FP)
	if b.Dynamic != 0 {
		t.Fatalf("integer-only benchmark has FP dynamic energy %v", b.Dynamic)
	}
	if b.StaticBaseline <= 0 || b.Static <= 0 {
		t.Fatalf("idle FP pipes should still leak: %+v", b)
	}
	if s := b.StaticSavings(); math.IsNaN(s) || s < -1 || s > 1 {
		t.Fatalf("FP savings %v out of range for an integer-only run", s)
	}
}

func TestAnalyzeAgainstIdenticalReports(t *testing.T) {
	// A run measured against itself: with no gating the static term equals
	// the baseline term exactly, so net savings are exactly zero; with gating
	// the savings reduce to the self-normalized Analyze result.
	cfg := config.Small()
	k := kernels.MustBenchmark("hotspot").Scale(0.1)
	gpu, err := sim.NewGPU(cfg, k) // config.Small() default is GateNone
	if err != nil {
		t.Fatal(err)
	}
	rep := gpu.Run()
	m := Default(cfg.BreakEven)
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		b := m.AnalyzeAgainst(rep, rep, c)
		if got := b.StaticSavings(); got != 0 {
			t.Fatalf("%s: ungated run saved %v against itself, want exactly 0", c, got)
		}
		self := m.Analyze(rep, c)
		if b != self {
			t.Fatalf("%s: AnalyzeAgainst(rep, rep) = %+v, Analyze(rep) = %+v", c, b, self)
		}
	}
}
