// Package power implements the energy model of the reproduction. The paper
// uses GPUWattch/McPAT on top of GPGPU-Sim; here the model is analytic and
// calibrated (see Model's field docs), which preserves every result the paper
// reports because those results are all *relative*: static energy savings are
// normalized to a no-gating baseline and depend only on gated-cycle fractions,
// gating-event counts, and the break-even relation E_overhead = BET × P_static
// — the definition of break-even time from Hu et al. [13] that both the paper
// and this model take as ground truth.
package power

import (
	"fmt"

	"warpedgates/internal/isa"
	"warpedgates/internal/sim"
)

// Model holds per-unit power constants in arbitrary consistent energy units
// (1 unit = the static energy one 16-lane execution cluster leaks in one
// cycle when the model's INT static power is 1).
type Model struct {
	// StaticPerCycle is the leakage power of one powered gating domain per
	// cycle, per class. FP pipelines are substantially larger than INT
	// pipelines (GPUWattch attributes ~790x more leakage to GTX480's FP
	// units than to its INT units; we keep a milder 3x that still yields
	// the paper's Fig. 1b energy splits when combined with utilization).
	StaticPerCycle [isa.NumClasses]float64
	// DynamicPerInstr is the switching energy of one warp instruction on a
	// unit of the class, calibrated so that the *baseline* static/dynamic
	// split matches paper Fig. 1b: ≈50% static for INT, ≈90% for FP.
	DynamicPerInstr [isa.NumClasses]float64
	// GatedResidualFraction is the leakage remaining while gated (a real
	// sleep transistor does not cut leakage to exactly zero).
	GatedResidualFraction float64
	// BreakEven is the break-even time (cycles) used to derive the per-event
	// overhead; it must match the simulated configuration.
	BreakEven int
}

// Default returns the calibrated model for a given break-even time.
func Default(breakEven int) Model {
	if breakEven <= 0 {
		panic(fmt.Sprintf("power: break-even must be positive, got %d", breakEven))
	}
	return Model{
		StaticPerCycle: [isa.NumClasses]float64{
			isa.INT:  1.0,
			isa.FP:   3.0,
			isa.SFU:  0.4,
			isa.LDST: 0.6,
		},
		DynamicPerInstr: [isa.NumClasses]float64{
			isa.INT:  6.0,
			isa.FP:   5.0,
			isa.SFU:  8.0,
			isa.LDST: 6.0,
		},
		GatedResidualFraction: 0.03,
		BreakEven:             breakEven,
	}
}

// EventOverhead returns the energy charged per gating event for a class:
// by the definition of break-even time, the overhead of toggling the sleep
// transistor equals the leakage saved over BET cycles.
func (m *Model) EventOverhead(c isa.Class) float64 {
	return float64(m.BreakEven) * m.StaticPerCycle[c]
}

// Breakdown is the energy decomposition of one unit class over a run,
// mirroring the stacked bars of paper Figure 1b.
type Breakdown struct {
	Class    isa.Class
	Static   float64 // leakage actually consumed (powered + gated residual)
	Dynamic  float64 // switching energy of executed instructions
	Overhead float64 // sleep-transistor toggle energy

	// StaticBaseline is what leakage would have been with no gating at all
	// (every domain powered every cycle) — the normalization denominator of
	// paper Figure 9.
	StaticBaseline float64
}

// Total returns consumed energy including gating overhead.
func (b Breakdown) Total() float64 { return b.Static + b.Dynamic + b.Overhead }

// BaselineTotal returns what the unit would have consumed with no gating.
func (b Breakdown) BaselineTotal() float64 { return b.StaticBaseline + b.Dynamic }

// StaticSavings returns the paper's Figure 9 metric: the fraction of baseline
// static energy saved net of gating overhead. Negative values mean gating
// overhead exceeded the leakage saved (paper: backprop/cutcp/lavaMD/NN under
// conventional gating).
func (b Breakdown) StaticSavings() float64 {
	if b.StaticBaseline == 0 {
		return 0
	}
	return (b.StaticBaseline - b.Static - b.Overhead) / b.StaticBaseline
}

// FractionStatic returns static energy as a fraction of total consumed.
func (b Breakdown) FractionStatic() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.Static / t
}

// FractionDynamic returns dynamic energy as a fraction of total consumed.
func (b Breakdown) FractionDynamic() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.Dynamic / t
}

// FractionOverhead returns gating overhead as a fraction of total consumed.
func (b Breakdown) FractionOverhead() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.Overhead / t
}

// Analyze computes the energy breakdown of one unit class from a simulation
// report, normalized against the run's own length (self-normalization).
// Figure-accurate savings must use AnalyzeAgainst with the no-gating
// baseline run instead: the paper normalizes to the baseline's energy, so a
// technique that slows the program down pays for the extra static energy its
// longer run leaks — the effect that separates Naive Blackout from
// Coordinated Blackout in Figure 9.
//
// A nil report yields a zero Breakdown (with the class set), and a zero-cycle
// run yields all-zero energies; every derived ratio (StaticSavings, the
// Fraction* methods) is then 0, never NaN, so aggregation over a suite that
// contains an empty or failed run degrades gracefully instead of poisoning
// the mean.
func (m *Model) Analyze(r *sim.Report, c isa.Class) Breakdown {
	if r == nil {
		return Breakdown{Class: c}
	}
	return m.analyze(r, c, float64(r.Domains[c].CellCycles()))
}

// AnalyzeAgainst computes the breakdown of one unit class with the static
// baseline taken from the no-gating baseline run of the same benchmark.
// Like Analyze it is total: nil or zero-cycle reports on either side produce
// finite zero-valued breakdowns rather than NaNs.
func (m *Model) AnalyzeAgainst(r, baseline *sim.Report, c isa.Class) Breakdown {
	if r == nil {
		return Breakdown{Class: c}
	}
	var baseCells float64
	if baseline != nil {
		baseCells = float64(baseline.Domains[c].CellCycles())
	}
	return m.analyze(r, c, baseCells)
}

func (m *Model) analyze(r *sim.Report, c isa.Class, baselineCellCycles float64) Breakdown {
	d := r.Domains[c]
	ps := m.StaticPerCycle[c]
	b := Breakdown{Class: c}
	b.Static = float64(d.PoweredCycles)*ps + float64(d.GatedCycles)*ps*m.GatedResidualFraction
	b.Dynamic = float64(d.IssuedInstrs) * m.DynamicPerInstr[c]
	b.Overhead = float64(d.GatingEvents) * m.EventOverhead(c)
	b.StaticBaseline = baselineCellCycles * ps
	return b
}

// AnalyzeAll returns breakdowns for all four classes.
func (m *Model) AnalyzeAll(r *sim.Report) [isa.NumClasses]Breakdown {
	var out [isa.NumClasses]Breakdown
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		out[c] = m.Analyze(r, c)
	}
	return out
}
