package power

import (
	"math"
	"strings"
	"testing"
)

func TestWarpedGatesCountersInventory(t *testing.T) {
	specs := WarpedGatesCounters(2)
	// Figure 7 inventory: four RDY counters, two ACTV counters, one BET
	// counter per gating domain (four for two SP clusters), two critical
	// wakeup counters, two idle-detect registers, one priority register.
	var betCount int
	for _, s := range specs {
		if s.Bits <= 0 || s.Count <= 0 {
			t.Fatalf("spec %q has non-positive geometry", s.Name)
		}
		if strings.Contains(s.Name, "BET") {
			betCount = s.Count
		}
	}
	if betCount != 4 {
		t.Fatalf("BET counters = %d, want 4 for two SP clusters", betCount)
	}
	// A six-cluster Kepler-style machine needs twelve.
	for _, s := range WarpedGatesCounters(6) {
		if strings.Contains(s.Name, "BET") && s.Count != 12 {
			t.Fatalf("six-cluster BET counters = %d, want 12", s.Count)
		}
	}
	// Non-positive cluster count defaults to the paper machine.
	for _, s := range WarpedGatesCounters(0) {
		if strings.Contains(s.Name, "BET") && s.Count != 4 {
			t.Fatalf("default BET counters = %d, want 4", s.Count)
		}
	}
}

func TestHardwareOverheadMatchesPaper(t *testing.T) {
	// §7.5: 1,210.8 um^2 => 0.003% of the 48.1 mm^2 SM; 1.55 mW dynamic =>
	// 0.08% of 1.92 W; 12.1 uW leakage => 0.0007% of 1.61 W.
	o := HardwareOverhead(WarpedGatesCounters(2))
	if math.Abs(o.AreaUM2-1210.8) > 1e-9 {
		t.Fatalf("area = %v, want 1210.8", o.AreaUM2)
	}
	if math.Abs(o.AreaFraction-0.0000252) > 0.000002 {
		t.Fatalf("area fraction = %v (%.4f%%), want ~0.003%%", o.AreaFraction, o.AreaFraction*100)
	}
	if math.Abs(o.DynFraction-0.000807) > 0.00005 {
		t.Fatalf("dynamic fraction = %v, want ~0.08%%", o.DynFraction)
	}
	if math.Abs(o.LeakFraction-0.0000075) > 0.000001 {
		t.Fatalf("leakage fraction = %v, want ~0.0007%%", o.LeakFraction)
	}
}

func TestHardwareOverheadScalesWithBits(t *testing.T) {
	two := HardwareOverhead(WarpedGatesCounters(2))
	six := HardwareOverhead(WarpedGatesCounters(6))
	if six.AreaUM2 <= two.AreaUM2 {
		t.Fatal("more clusters should cost more area")
	}
	if six.InventoryBits <= two.InventoryBits {
		t.Fatal("more clusters should need more bits")
	}
}

func TestOverheadTableRenders(t *testing.T) {
	out := OverheadTable(WarpedGatesCounters(2)).String()
	for _, want := range []string{"area", "dynamic", "leakage", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("overhead table missing %q:\n%s", want, out)
		}
	}
}
