package power

import (
	"math"
	"strings"
	"testing"
)

func TestEstimateChipSavingsMatchesPaperArithmetic(t *testing.T) {
	// §7.3: with leakage at 33% of on-chip power and 30%-45% exec-unit
	// static savings, total savings are 1.62%-2.43%; at 50% leakage,
	// 2.46%-3.69%.
	cases := []struct {
		share, savings, want float64
	}{
		{0.33, 0.30, 0.0162},
		{0.33, 0.45, 0.0243},
		{0.50, 0.30, 0.0246},
		{0.50, 0.45, 0.0369},
	}
	for _, c := range cases {
		got := EstimateChipSavings(c.savings, c.share).TotalChipSavings
		if math.Abs(got-c.want) > 0.0002 {
			t.Errorf("share %.2f savings %.2f: got %.4f, want %.4f", c.share, c.savings, got, c.want)
		}
	}
}

func TestChipConstantsMatchPaper(t *testing.T) {
	if OnChipLeakageWatts != 26.87 {
		t.Error("on-chip leakage constant drifted from the paper")
	}
	if ExecUnitsLeakageShare != 0.1638 {
		t.Error("exec-unit leakage share drifted from the paper")
	}
	if SMAreaMM2 != 48.1 || SMDynamicWatts != 1.92 || SMLeakageWatts != 1.61 {
		t.Error("SM constants drifted from the paper")
	}
}

func TestChipSavingsTable(t *testing.T) {
	tab := ChipSavingsTable(0.30, 0.45)
	out := tab.String()
	if !strings.Contains(out, "0.33") || !strings.Contains(out, "0.50") {
		t.Fatalf("table missing leakage scenarios:\n%s", out)
	}
	if tab.NumRows() != 4 {
		t.Fatalf("table rows = %d, want 4", tab.NumRows())
	}
}
