package power

import "warpedgates/internal/stats"

// GTX480 chip-level power constants, as the paper reports them from
// GPUWattch in §7.3 and §7.5. Units: watts, square millimeters.
const (
	// OnChipLeakageWatts is the total GTX480 on-chip leakage power.
	OnChipLeakageWatts = 26.87
	// IntUnitsLeakageWatts is the leakage attributed to all integer units.
	IntUnitsLeakageWatts = 0.00557
	// FPUnitsLeakageWatts is the leakage attributed to all FP units.
	FPUnitsLeakageWatts = 4.40
	// ExecUnitsLeakageShare is the fraction of on-chip leakage consumed by
	// the execution units (paper: "execution units account for 16.38% of
	// on-chip leakage power").
	ExecUnitsLeakageShare = 0.1638

	// SMAreaMM2 is one SM's area as extracted from GPUWattch.
	SMAreaMM2 = 48.1
	// SMDynamicWatts and SMLeakageWatts are one SM's power.
	SMDynamicWatts = 1.92
	SMLeakageWatts = 1.61
)

// ChipLevelEstimate reproduces the paper's §7.3 arithmetic: given measured
// static-energy savings for the execution units and an assumed share of
// leakage in total on-chip power, estimate total on-chip power savings.
type ChipLevelEstimate struct {
	ExecStaticSavings  float64 // input: measured exec-unit static savings
	LeakageShareOfChip float64 // assumption: leakage / total on-chip power
	TotalChipSavings   float64 // result
}

// EstimateChipSavings runs the estimate. The paper evaluates leakage shares
// of 33% (today) and 50% (projected scaling).
func EstimateChipSavings(execStaticSavings, leakageShareOfChip float64) ChipLevelEstimate {
	return ChipLevelEstimate{
		ExecStaticSavings:  execStaticSavings,
		LeakageShareOfChip: leakageShareOfChip,
		TotalChipSavings:   execStaticSavings * ExecUnitsLeakageShare * leakageShareOfChip,
	}
}

// ChipSavingsTable renders the paper's two scenarios for a measured savings
// range [lo, hi] (the paper uses 30%–45%).
func ChipSavingsTable(lo, hi float64) *stats.Table {
	t := stats.NewTable("Chip-level on-chip power savings estimate (paper §7.3)",
		"leakage share", "exec savings", "chip savings")
	for _, share := range []float64{0.33, 0.50} {
		for _, s := range []float64{lo, hi} {
			e := EstimateChipSavings(s, share)
			t.AddRowf(share, s, e.TotalChipSavings)
		}
	}
	return t
}
