package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/sim"
	"warpedgates/internal/store"
)

// slowRunner builds a runner whose single simulation takes several seconds —
// the canvas for cancellation and watchdog tests. Scale multiplies kernel
// work, so hotspot at a large scale runs orders of magnitude longer than the
// deadline/cancel windows the tests use.
func slowRunner(intraWorkers int) *Runner {
	base := config.Small()
	base.IntraRunWorkers = intraWorkers
	r := NewRunner(base)
	r.Scale = 50
	return r
}

// assertPrompt fails the test when a cancellation path took longer than the
// generous bound — far below the uncanceled runtime, far above scheduler
// noise.
func assertPrompt(t *testing.T, what string, took time.Duration) {
	t.Helper()
	if took > 5*time.Second {
		t.Fatalf("%s took %v; cancellation did not take effect within an epoch window", what, took)
	}
}

func TestRunCtxPreCanceledReturnsImmediately(t *testing.T) {
	r := slowRunner(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	rep, err := r.RunCtx(ctx, "hotspot", WarpedGates)
	if rep != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx(pre-canceled) = %v, %v; want nil, context.Canceled", rep, err)
	}
	if took := time.Since(t0); took > time.Second {
		t.Fatalf("pre-canceled run still took %v", took)
	}
	if r.CacheSize() != 0 {
		t.Fatal("canceled run left a cache entry")
	}
}

// TestRunCtxCancelMidRun covers both engines: the serial loop polls every
// device step, the phase-split parallel engine once per barrier round.
func TestRunCtxCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 2} {
		r := slowRunner(workers)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		t0 := time.Now()
		rep, err := r.RunCtx(ctx, "hotspot", WarpedGates)
		took := time.Since(t0)
		if rep != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: RunCtx = %v, %v; want nil, context.Canceled", workers, rep, err)
		}
		assertPrompt(t, "mid-run cancel", took)
		// The key is immediately retryable: nothing poisoned in the cache.
		if r.CacheSize() != 0 {
			t.Fatalf("workers=%d: canceled run left a cache entry", workers)
		}
	}
}

// TestMaxWallTimeWatchdog: a job exceeding MaxWallTime dies with ErrDeadline,
// detectable with errors.Is, and distinct from a caller cancellation.
func TestMaxWallTimeWatchdog(t *testing.T) {
	r := slowRunner(1)
	r.MaxWallTime = 20 * time.Millisecond
	t0 := time.Now()
	rep, err := r.Run("hotspot", WarpedGates)
	took := time.Since(t0)
	if rep != nil || !errors.Is(err, ErrDeadline) {
		t.Fatalf("watchdog run = %v, %v; want nil, ErrDeadline", rep, err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatal("watchdog error conflated with caller cancellation")
	}
	assertPrompt(t, "watchdog kill", took)
	if r.CacheSize() != 0 {
		t.Fatal("timed-out run left a cache entry")
	}
}

// TestRunManyCtxCancelDrainsWorkers: canceling a batch aborts in-flight
// simulations at their next epoch boundary and RunManyCtx returns only after
// every worker exited, with the caller's cause as the error.
func TestRunManyCtxCancelDrainsWorkers(t *testing.T) {
	r := slowRunner(1)
	r.Parallelism = 4
	jobs := techniqueJobs(r.Base, []string{"hotspot", "bfs", "kmeans", "srad"}, WarpedGates)
	cause := errors.New("operator gave up")
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel(cause)
	}()
	t0 := time.Now()
	reps, err := r.RunManyCtx(ctx, jobs)
	took := time.Since(t0)
	if reps != nil || !errors.Is(err, cause) {
		t.Fatalf("RunManyCtx = %v, %v; want nil slice and the cancel cause", reps, err)
	}
	assertPrompt(t, "RunManyCtx cancel", took)
	if n := r.CacheSize(); n != 0 {
		t.Fatalf("canceled batch left %d cache entries", n)
	}
}

// TestRunManyErrorAbortsSlowSiblings: a failing job does not just win the
// error race (parallel_test.go pins that) — it cancels sibling simulations
// that would otherwise run for seconds, so the batch returns promptly.
func TestRunManyErrorAbortsSlowSiblings(t *testing.T) {
	r := slowRunner(1)
	r.Parallelism = 2
	jobs := techniqueJobs(r.Base, []string{"no-such-benchmark", "hotspot", "bfs"}, WarpedGates)
	t0 := time.Now()
	reps, err := r.RunManyCtx(context.Background(), jobs)
	took := time.Since(t0)
	if reps != nil || err == nil {
		t.Fatalf("RunManyCtx with a bad job = %v, %v; want nil, error", reps, err)
	}
	assertPrompt(t, "first-error abort", took)
}

// TestPanicBecomesPerJobError: a panic inside a simulation job (here from the
// Progress hook, which runs on the worker) surfaces as a *PanicError naming
// the job, with the goroutine stack captured — and never caches.
func TestPanicBecomesPerJobError(t *testing.T) {
	r := NewRunner(config.Small())
	r.Scale = 0.1
	r.Progress = func(bench string, cfg config.Config) {
		if bench == "bfs" {
			panic("probe exploded")
		}
	}
	_, err := r.Run("bfs", Baseline)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run over panicking hook = %v, want *PanicError", err)
	}
	if pe.Bench != "bfs" || pe.Value != "probe exploded" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError{Bench: %q, Value: %v, %d stack bytes} incomplete", pe.Bench, pe.Value, len(pe.Stack))
	}
	if r.CacheSize() != 0 {
		t.Fatal("panicked run left a cache entry")
	}
	// The poison is per-job: other benches still run, and the poisoned bench
	// recovers once the hook behaves.
	if _, err := r.Run("hotspot", Baseline); err != nil {
		t.Fatalf("sibling job failed after a panic elsewhere: %v", err)
	}
	r.Progress = nil
	if _, err := r.Run("bfs", Baseline); err != nil {
		t.Fatalf("retry after panic failed: %v", err)
	}
}

// TestPanicInsideParallelBatch: one poisoned job costs that job, not the
// worker pool — RunMany returns the panic as its error instead of crashing
// the process.
func TestPanicInsideParallelBatch(t *testing.T) {
	r := NewRunner(config.Small())
	r.Scale = 0.1
	r.Parallelism = 2
	r.Progress = func(bench string, cfg config.Config) {
		if bench == "kmeans" {
			panic("boom")
		}
	}
	jobs := techniqueJobs(r.Base, []string{"hotspot", "kmeans", "bfs"}, Baseline)
	_, err := r.RunManyCtx(context.Background(), jobs)
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Bench != "kmeans" {
		t.Fatalf("RunManyCtx over panicking job = %v, want *PanicError for kmeans", err)
	}
}

// TestLRUEviction: MaxCachedReports bounds the resident set with LRU order,
// and evicted keys simply re-simulate.
func TestLRUEviction(t *testing.T) {
	var sims atomic.Int64
	r := NewRunner(config.Small())
	r.Scale = 0.1
	r.MaxCachedReports = 2
	r.Progress = func(string, config.Config) { sims.Add(1) }

	for _, b := range []string{"hotspot", "bfs", "kmeans"} {
		if _, err := r.Run(b, Baseline); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.CacheSize(); got != 2 {
		t.Fatalf("CacheSize = %d with MaxCachedReports=2, want 2", got)
	}
	if got := sims.Load(); got != 3 {
		t.Fatalf("%d simulations for 3 distinct cells, want 3", got)
	}
	// kmeans and bfs are resident; bfs is a hit, hotspot was evicted.
	if _, err := r.Run("bfs", Baseline); err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 3 {
		t.Fatalf("resident key re-simulated (%d sims)", got)
	}
	if _, err := r.Run("hotspot", Baseline); err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 4 {
		t.Fatalf("evicted key served stale (%d sims, want 4)", got)
	}
	// The bfs touch above refreshed it: kmeans was the eviction victim.
	if _, err := r.Run("bfs", Baseline); err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 4 {
		t.Fatalf("LRU order wrong: recently-touched bfs was evicted (%d sims)", got)
	}
}

// TestSingleflightSurvivesEviction pins the interaction the LRU must not
// break: concurrent requesters of one key share one simulation even while a
// tight MaxCachedReports churns the cache around them, and every waiter gets
// an identical report. Runs meaningfully under -race.
func TestSingleflightSurvivesEviction(t *testing.T) {
	var sims atomic.Int64
	r := NewRunner(config.Small())
	r.Scale = 0.1
	r.MaxCachedReports = 1
	r.Progress = func(string, config.Config) { sims.Add(1) }

	const waiters = 8
	var wg sync.WaitGroup
	fps := make([]string, waiters)
	errs := make([]error, waiters)
	churnBenches := []string{"bfs", "kmeans", "srad", "backprop"}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := r.Run("hotspot", WarpedGates)
			if err == nil {
				fps[i] = FingerprintReport(rep)
			}
			errs[i] = err
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := r.Run(churnBenches[i%len(churnBenches)], Baseline); err != nil {
				t.Errorf("churn job: %v", err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if fps[i] != fps[0] {
			t.Fatalf("waiter %d saw a different report:\n  %s\nvs\n  %s", i, fps[i], fps[0])
		}
	}
	if got := r.CacheSize(); got > 1 {
		t.Fatalf("CacheSize = %d with MaxCachedReports=1", got)
	}
}

// TestRunnerStoreTier: the durable store works as the L2 — a second, cold
// runner (empty in-memory cache) over the same store serves the report
// without re-simulating, byte-identical to the fresh run.
func TestRunnerStoreTier(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var sims1 atomic.Int64
	r1 := NewRunner(config.Small())
	r1.Scale = 0.1
	r1.Store = s
	r1.Progress = func(string, config.Config) { sims1.Add(1) }
	fresh, err := r1.Run("hotspot", WarpedGates)
	if err != nil {
		t.Fatal(err)
	}
	if sims1.Load() != 1 {
		t.Fatalf("first run simulated %d times", sims1.Load())
	}

	var sims2 atomic.Int64
	r2 := NewRunner(config.Small())
	r2.Scale = 0.1
	r2.Store = s
	r2.Progress = func(string, config.Config) { sims2.Add(1) }
	cached, err := r2.Run("hotspot", WarpedGates)
	if err != nil {
		t.Fatal(err)
	}
	if sims2.Load() != 0 {
		t.Fatal("cold runner re-simulated a stored report")
	}
	if f, c := FingerprintReport(fresh), FingerprintReport(cached); f != c {
		t.Fatalf("store round-trip drifted:\n fresh:  %s\n cached: %s", f, c)
	}
	h := s.Health()
	if h.Hits != 1 || h.Writes != 1 {
		t.Fatalf("store health after tiered runs: %s", h)
	}
}

// TestRunnerStoreDecodeFailureIsMiss: a checksum-valid store entry whose
// payload the report codec rejects (e.g. a future codec version) is treated
// as a miss and overwritten by the fresh simulation — never an error.
func TestRunnerStoreDecodeFailureIsMiss(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := WarpedGates.Apply(config.Small())
	key := JobKey("hotspot", cfg, 0.1)
	if err := s.Put(key, []byte(`{"version": 999}`)); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(config.Small())
	r.Scale = 0.1
	r.Store = s
	rep, err := r.Run("hotspot", WarpedGates)
	if err != nil || rep == nil {
		t.Fatalf("run over undecodable store entry = %v, %v", rep, err)
	}
	// The fresh result replaced the stale bytes: a cold reader now decodes it.
	data, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("store entry after overwrite: ok=%v err=%v", ok, err)
	}
	redecoded, err := sim.DecodeReport(data)
	if err != nil {
		t.Fatalf("overwritten entry still undecodable: %v", err)
	}
	if FingerprintReport(redecoded) != FingerprintReport(rep) {
		t.Fatal("overwritten store entry differs from the fresh report")
	}
}

// TestJobKeyAxes pins which configuration axes key the durable store: engine
// tuning knobs (worker count, batch size, banks, fast-forward) must NOT key —
// they are result-invariant — while every result-determining axis MUST.
func TestJobKeyAxes(t *testing.T) {
	base := config.Small()
	key := JobKey("hotspot", base, 0.1)

	invariant := base
	invariant.IntraRunWorkers = 7
	invariant.BatchCycles = 99
	invariant.MemBanks = 3
	invariant.DisableFastForward = true
	if got := JobKey("hotspot", invariant, 0.1); got != key {
		t.Fatalf("engine-tuning axes leaked into the job key:\n %s\n %s", key, got)
	}

	relaxed := base
	relaxed.EpochRelaxedCycles = 64
	if JobKey("hotspot", relaxed, 0.1) == key {
		t.Fatal("EpochRelaxedCycles does not key, but relaxed mode changes results")
	}
	sampled := base
	sampled.SampleDetailCycles = 1000
	sampled.SamplePeriod = 5000
	if JobKey("hotspot", sampled, 0.1) == key {
		t.Fatal("sampling axes do not key, but a sampled report is an estimate")
	}
	widened := sampled
	widened.SamplePeriod = 8000
	if JobKey("hotspot", widened, 0.1) == JobKey("hotspot", sampled, 0.1) {
		t.Fatal("SamplePeriod does not key independently of SampleDetailCycles")
	}
	if JobKey("bfs", base, 0.1) == key || JobKey("hotspot", base, 0.2) == key {
		t.Fatal("bench/scale do not key")
	}
}

// TestGoldenMatrixStoreRoundtrip is the acceptance check for the durable
// tier: the full 108-cell golden corpus, simulated fresh with a store
// attached, then re-rendered by a cold runner that may only read the store —
// the two corpora and the committed golden file must be byte-identical, and
// the store must have served every cell.
func TestGoldenMatrixStoreRoundtrip(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warm := goldenRunner(0)
	warm.Store = s
	fresh, err := goldenCorpus(warm)
	if err != nil {
		t.Fatal(err)
	}

	cold := goldenRunner(0)
	cold.Store = s
	cold.Progress = func(bench string, cfg config.Config) {
		t.Errorf("cold runner re-simulated %s under %s/%s instead of reading the store",
			bench, cfg.Scheduler, cfg.Gating)
	}
	before := s.Health()
	replayed, err := goldenCorpus(cold)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != replayed {
		t.Fatal("store-served corpus is not byte-identical to the fresh corpus")
	}
	if served := s.Health().Hits - before.Hits; served != uint64(before.Writes) {
		t.Fatalf("store served %d cells, corpus committed %d", served, before.Writes)
	}
}
