package core

import (
	"strings"
	"testing"
)

func TestRunAblationClusters(t *testing.T) {
	res, err := RunAblationClusters(figRunner, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	two, four := res.Points[0], res.Points[1]
	// More clusters -> more sleeping peers per unit of work under the
	// consolidating Coordinated Blackout: per-cluster savings grow.
	if four.IntSavings <= two.IntSavings {
		t.Errorf("4-cluster INT savings %.3f not above 2-cluster %.3f",
			four.IntSavings, two.IntSavings)
	}
	if !strings.Contains(res.Table.String(), "clusters") {
		t.Fatal("ablation table malformed")
	}
}

func TestRunAblationMaxHold(t *testing.T) {
	res, err := RunAblationMaxHold(figRunner, []int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	unbounded, tight := res.Points[0], res.Points[1]
	if unbounded.Label != "unbounded (paper)" {
		t.Fatalf("label = %q", unbounded.Label)
	}
	// A very tight forced-switch threshold fragments the type clusters and
	// must not increase savings relative to the unbounded paper default.
	if tight.IntSavings > unbounded.IntSavings+0.02 {
		t.Errorf("tight hold savings %.3f implausibly above unbounded %.3f",
			tight.IntSavings, unbounded.IntSavings)
	}
	for _, p := range res.Points {
		if p.Perf <= 0.5 || p.Perf > 1.05 {
			t.Errorf("%s perf %.3f implausible", p.Label, p.Perf)
		}
	}
}

func TestRunAblationIdleDetect(t *testing.T) {
	res, err := RunAblationIdleDetect(figRunner, []int{2, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Growing the window trades gating opportunity for fewer bad gatings;
	// both points must at least be finite and performance sane.
	for _, p := range res.Points {
		if p.Perf <= 0.5 || p.Perf > 1.05 {
			t.Errorf("%s perf %.3f implausible", p.Label, p.Perf)
		}
		if p.IntSavings < -1 || p.IntSavings > 1 {
			t.Errorf("%s savings %.3f out of range", p.Label, p.IntSavings)
		}
	}
}

func TestRunAblationScheduler(t *testing.T) {
	res, err := RunAblationScheduler(figRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3 schedulers", len(res.Points))
	}
	labels := []string{"LRR", "TwoLevel", "GATES"}
	for i, p := range res.Points {
		if p.Label != labels[i] {
			t.Fatalf("point %d label %q, want %q", i, p.Label, labels[i])
		}
		if p.Perf <= 0.5 || p.Perf > 1.05 {
			t.Errorf("%s perf %.3f implausible", p.Label, p.Perf)
		}
	}
}

func TestRunAblationAuxBlackout(t *testing.T) {
	res, err := RunAblationAuxBlackout(figRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	conv, bo := res.Points[0], res.Points[1]
	if conv.Label == bo.Label {
		t.Fatal("variants not distinguished")
	}
	// Blackout on the aux units must never produce uncompensated events, so
	// its savings are bounded below by roughly the conventional result; at
	// minimum both variants must be sane.
	for _, p := range res.Points {
		if p.Perf <= 0.5 || p.Perf > 1.05 {
			t.Errorf("%s perf %.3f implausible", p.Label, p.Perf)
		}
	}
	if !strings.Contains(res.Table.String(), "SFU savings") {
		t.Fatal("aux ablation table malformed")
	}
}

func TestAblationValidation(t *testing.T) {
	if _, err := RunAblationClusters(figRunner, nil); err == nil {
		t.Error("empty cluster list accepted")
	}
	if _, err := RunAblationClusters(figRunner, []int{0}); err == nil {
		t.Error("zero clusters accepted")
	}
	if _, err := RunAblationMaxHold(figRunner, nil); err == nil {
		t.Error("empty hold list accepted")
	}
	if _, err := RunAblationMaxHold(figRunner, []int{-1}); err == nil {
		t.Error("negative hold accepted")
	}
	if _, err := RunAblationIdleDetect(figRunner, nil); err == nil {
		t.Error("empty window list accepted")
	}
	if _, err := RunAblationIdleDetect(figRunner, []int{-2}); err == nil {
		t.Error("negative window accepted")
	}
}
