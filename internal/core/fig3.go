package core

import (
	"fmt"

	"warpedgates/internal/isa"
	"warpedgates/internal/stats"
)

// IdleRegions is one idle-period-length distribution partitioned into the
// paper's three regions (paper Figure 3): too short to gate, gated but
// uncompensated, and net-positive.
type IdleRegions struct {
	Technique Technique
	// Wasted is the fraction of idle periods shorter than idle-detect.
	Wasted float64
	// Negative is the fraction in [idle-detect, idle-detect+BET): gated
	// windows that end before break-even (net energy loss).
	Negative float64
	// Positive is the fraction >= idle-detect+BET (net energy savings).
	Positive float64
	// MeanLength is the mean idle-period length in cycles.
	MeanLength float64
	// Periods is the number of idle periods observed.
	Periods uint64
}

// Fig3Result carries the three distributions of paper Figure 3 for one
// benchmark (the paper shows hotspot): conventional gating under the
// two-level scheduler, GATES, and GATES+Blackout.
type Fig3Result struct {
	Benchmark string
	Rows      []IdleRegions
	Table     *stats.Table
}

// RunFig3 regenerates paper Figure 3 for the given benchmark (the paper uses
// hotspot), measuring the CUDA-core (INT+FP) idle-period distribution under
// ConvPG (3a), GATES (3b) and GATES+Blackout (3c). Panel 3c uses Naive
// Blackout: with no coordination exceptions, every idle run that reaches the
// idle-detect window is forced past break-even, which empties the middle
// region exactly as the paper's Figure 3c shows (0.0%).
func RunFig3(r *Runner, benchmark string) (*Fig3Result, error) {
	res := &Fig3Result{Benchmark: benchmark}
	idle := r.Base.IdleDetect
	bet := r.Base.BreakEven
	techs := []Technique{ConvPG, GATESTech, NaiveBlackout}
	if err := r.Prefetch(techniqueJobs(r.Base, []string{benchmark}, techs...)); err != nil {
		return nil, err
	}
	for _, tech := range techs {
		rep, err := r.Run(benchmark, tech)
		if err != nil {
			return nil, err
		}
		// Merge INT and FP idle-period histograms: both unit types are CUDA
		// cores, the subject of the figure.
		h := stats.NewHistogram()
		h.Merge(rep.Domains[isa.INT].IdlePeriods)
		h.Merge(rep.Domains[isa.FP].IdlePeriods)
		r1, r2, r3 := h.Regions3(idle, bet)
		res.Rows = append(res.Rows, IdleRegions{
			Technique:  tech,
			Wasted:     r1,
			Negative:   r2,
			Positive:   r3,
			MeanLength: h.Mean(),
			Periods:    h.Total(),
		})
	}

	t := stats.NewTable(
		fmt.Sprintf("Fig. 3 — idle period distribution for %s (idle-detect %d, BET %d)", benchmark, idle, bet),
		"technique", "<idle-detect", "idle..idle+BET", ">=idle+BET", "mean len", "periods")
	for _, row := range res.Rows {
		t.AddRowf(row.Technique.String(), row.Wasted, row.Negative, row.Positive,
			row.MeanLength, row.Periods)
	}
	res.Table = t
	return res, nil
}
