package core

import (
	"fmt"
	"math"
	"sync"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
)

// Runner executes benchmark simulations with memoization: many figures reuse
// the same (benchmark, technique) runs, and the cache guarantees each unique
// configuration is simulated exactly once — including under concurrency,
// where duplicate in-flight requests block on the single real run
// (singleflight) and share its report. Runner is safe for concurrent use.
type Runner struct {
	// Base is the machine configuration figures are evaluated on; technique
	// and sweep parameters are applied on top of copies of it.
	Base config.Config
	// Scale multiplies each kernel's work (iterations and CTA count).
	// 1.0 is the full evaluation; tests use small scales. It must be a
	// positive finite value; RunCfg rejects anything else.
	Scale float64
	// Parallelism bounds the worker pool of RunMany/RunAllParallel/Prefetch.
	// Zero (the default) means runtime.GOMAXPROCS(0). It does not limit
	// plain Run/RunCfg calls, which always execute on the caller.
	Parallelism int
	// Progress, when non-nil, is invoked before each uncached simulation.
	// Under RunMany/RunAllParallel it is called concurrently from worker
	// goroutines, so the callback must be safe for concurrent use. Set it
	// before the first run; mutating it while runs are in flight is a race.
	Progress func(benchmark string, cfg config.Config)
	// Instrument, when non-nil, observes each uncached simulation: it is
	// called with the benchmark, the exact configuration, the scaled kernel
	// and the freshly built GPU before the run starts, and may install probes
	// (SetCycleProbe/SetIssueTracer). The returned callback, if non-nil,
	// receives the final report; a non-nil error fails the run, which is then
	// not cached. Like Progress it runs concurrently under the parallel
	// entry points, so the hook must be safe for concurrent use — attach
	// per-run state (e.g. one check.Checker per GPU), never share probes.
	Instrument Instrumenter

	mu    sync.Mutex
	cache map[runKey]*cacheEntry
}

// cacheEntry is one singleflight slot: the first requester of a key becomes
// the leader and simulates; everyone else blocks on done and shares the
// result. rep and err are written exactly once, before done is closed.
type cacheEntry struct {
	done chan struct{}
	rep  *sim.Report
	err  error
}

// runKey identifies a unique simulation. IntraRunWorkers, BatchCycles and
// MemBanks are deliberately absent: the exact parallel engine is bit-identical
// to the serial one at any worker count, batch size or bank count, so runs
// that differ only in those share one cache slot. EpochRelaxedCycles is
// present: relaxed mode changes results, so it must key separately.
type runKey struct {
	bench      string
	scheduler  config.SchedulerKind
	gating     config.GatingKind
	adaptive   bool
	idleDetect int
	breakEven  int
	wakeup     int
	numSMs     int
	clusters   int
	maxHold    int
	auxBO      bool
	seed       uint64
	scale      float64
	relaxed    int
}

// NewRunner builds a runner over the given base configuration at full scale.
// The initial Scale of 1.0 is always valid; callers that override Scale get
// it validated on every RunCfg (non-finite values would poison runKey: NaN
// never equals itself, so a NaN scale could never hit the cache).
func NewRunner(base config.Config) *Runner {
	return &Runner{Base: base, Scale: 1.0, cache: make(map[runKey]*cacheEntry)}
}

// DefaultRunner returns a runner over the paper's GTX480 baseline.
func DefaultRunner() *Runner { return NewRunner(config.GTX480()) }

// checkScale rejects scale values that cannot key the cache or scale a
// kernel: NaN, ±Inf and non-positive values.
func checkScale(s float64) error {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return fmt.Errorf("core: runner Scale must be finite, got %v", s)
	}
	if s <= 0 {
		return fmt.Errorf("core: runner Scale must be positive, got %v", s)
	}
	return nil
}

// Run simulates benchmark bench under technique t on the base configuration.
func (r *Runner) Run(bench string, t Technique) (*sim.Report, error) {
	return r.RunCfg(bench, t.Apply(r.Base))
}

// RunCfg simulates bench under an explicit configuration (for sweeps). For a
// given key the simulation runs exactly once: concurrent duplicate requests
// block on the first one and share its report. Failed runs are not cached,
// so a later call may retry.
func (r *Runner) RunCfg(bench string, cfg config.Config) (*sim.Report, error) {
	if err := checkScale(r.Scale); err != nil {
		return nil, err
	}
	key := runKey{
		bench:      bench,
		scheduler:  cfg.Scheduler,
		gating:     cfg.Gating,
		adaptive:   cfg.AdaptiveIdleDetect,
		idleDetect: cfg.IdleDetect,
		breakEven:  cfg.BreakEven,
		wakeup:     cfg.WakeupDelay,
		numSMs:     cfg.NumSMs,
		clusters:   cfg.NumSPClusters,
		maxHold:    cfg.GATESMaxHold,
		auxBO:      cfg.BlackoutAux,
		seed:       cfg.Seed,
		scale:      r.Scale,
		relaxed:    cfg.EpochRelaxedCycles,
	}
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		<-e.done
		return e.rep, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()

	e.rep, e.err = r.simulate(bench, cfg)
	if e.err != nil {
		r.mu.Lock()
		delete(r.cache, key)
		r.mu.Unlock()
	}
	close(e.done)
	return e.rep, e.err
}

// simulate performs one uncached simulation (the singleflight leader path).
func (r *Runner) simulate(bench string, cfg config.Config) (*sim.Report, error) {
	k, err := kernels.Benchmark(bench)
	if err != nil {
		return nil, err
	}
	if r.Scale != 1.0 {
		k = k.Scale(r.Scale)
	}
	if r.Progress != nil {
		r.Progress(bench, cfg)
	}
	gpu, err := sim.NewGPU(cfg, k)
	if err != nil {
		return nil, fmt.Errorf("core: building GPU for %s: %w", bench, err)
	}
	var finish func(*sim.Report) error
	if r.Instrument != nil {
		finish = r.Instrument(bench, cfg, k, gpu)
	}
	rep := gpu.Run()
	if finish != nil {
		if err := finish(rep); err != nil {
			return nil, fmt.Errorf("core: instrumented run of %s: %w", bench, err)
		}
	}
	return rep, nil
}

// Instrumenter is Runner.Instrument's hook type: called once per uncached
// simulation with the GPU before it runs, it returns a completion callback
// (may be nil) that receives the final report and may fail the run. The
// invariant checker's check.Instrument produces this type.
type Instrumenter func(bench string, cfg config.Config, k *kernels.Kernel, g *sim.GPU) func(*sim.Report) error

// NamedReport pairs a benchmark name with its report, for ordered results.
type NamedReport struct {
	Benchmark string
	Report    *sim.Report
}

// RunAll simulates every paper benchmark under technique t, returning
// reports keyed by benchmark name. The map has no defined iteration order;
// use RunAllOrdered or RunAllParallel when order matters.
func (r *Runner) RunAll(t Technique) (map[string]*sim.Report, error) {
	out := make(map[string]*sim.Report, len(kernels.BenchmarkNames))
	for _, b := range kernels.BenchmarkNames {
		rep, err := r.Run(b, t)
		if err != nil {
			return nil, err
		}
		out[b] = rep
	}
	return out, nil
}

// RunAllOrdered simulates every paper benchmark under technique t serially,
// returning reports in kernels.BenchmarkNames order.
func (r *Runner) RunAllOrdered(t Technique) ([]NamedReport, error) {
	out := make([]NamedReport, 0, len(kernels.BenchmarkNames))
	for _, b := range kernels.BenchmarkNames {
		rep, err := r.Run(b, t)
		if err != nil {
			return nil, err
		}
		out = append(out, NamedReport{Benchmark: b, Report: rep})
	}
	return out, nil
}

// Performance returns the paper's Figure 10 metric for one benchmark and
// technique: baseline cycles divided by technique cycles (1.0 = no slowdown,
// smaller = slower).
func (r *Runner) Performance(bench string, t Technique) (float64, error) {
	base, err := r.Run(bench, Baseline)
	if err != nil {
		return 0, err
	}
	rep, err := r.Run(bench, t)
	if err != nil {
		return 0, err
	}
	if rep.Cycles == 0 {
		return 0, fmt.Errorf("core: %s under %s ran zero cycles", bench, t)
	}
	return float64(base.Cycles) / float64(rep.Cycles), nil
}

// CacheSize returns the number of memoized simulations, counting in-flight
// singleflight entries (for tests).
func (r *Runner) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}
