package core

import (
	"fmt"
	"sync"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
)

// Runner executes benchmark simulations with memoization: many figures reuse
// the same (benchmark, technique) runs, and the cache guarantees each unique
// configuration is simulated exactly once. Runner is safe for concurrent use.
type Runner struct {
	// Base is the machine configuration figures are evaluated on; technique
	// and sweep parameters are applied on top of copies of it.
	Base config.Config
	// Scale multiplies each kernel's work (iterations and CTA count).
	// 1.0 is the full evaluation; tests use small scales.
	Scale float64
	// Progress, when non-nil, is invoked before each uncached simulation.
	Progress func(benchmark string, cfg config.Config)

	mu    sync.Mutex
	cache map[runKey]*sim.Report
}

// runKey identifies a unique simulation.
type runKey struct {
	bench      string
	scheduler  config.SchedulerKind
	gating     config.GatingKind
	adaptive   bool
	idleDetect int
	breakEven  int
	wakeup     int
	numSMs     int
	clusters   int
	maxHold    int
	auxBO      bool
	seed       uint64
	scale      float64
}

// NewRunner builds a runner over the given base configuration at full scale.
func NewRunner(base config.Config) *Runner {
	return &Runner{Base: base, Scale: 1.0, cache: make(map[runKey]*sim.Report)}
}

// DefaultRunner returns a runner over the paper's GTX480 baseline.
func DefaultRunner() *Runner { return NewRunner(config.GTX480()) }

// Run simulates benchmark bench under technique t on the base configuration.
func (r *Runner) Run(bench string, t Technique) (*sim.Report, error) {
	return r.RunCfg(bench, t.Apply(r.Base))
}

// RunCfg simulates bench under an explicit configuration (for sweeps).
func (r *Runner) RunCfg(bench string, cfg config.Config) (*sim.Report, error) {
	key := runKey{
		bench:      bench,
		scheduler:  cfg.Scheduler,
		gating:     cfg.Gating,
		adaptive:   cfg.AdaptiveIdleDetect,
		idleDetect: cfg.IdleDetect,
		breakEven:  cfg.BreakEven,
		wakeup:     cfg.WakeupDelay,
		numSMs:     cfg.NumSMs,
		clusters:   cfg.NumSPClusters,
		maxHold:    cfg.GATESMaxHold,
		auxBO:      cfg.BlackoutAux,
		seed:       cfg.Seed,
		scale:      r.Scale,
	}
	r.mu.Lock()
	if rep, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return rep, nil
	}
	r.mu.Unlock()

	k, err := kernels.Benchmark(bench)
	if err != nil {
		return nil, err
	}
	if r.Scale != 1.0 {
		k = k.Scale(r.Scale)
	}
	if r.Progress != nil {
		r.Progress(bench, cfg)
	}
	gpu, err := sim.NewGPU(cfg, k)
	if err != nil {
		return nil, fmt.Errorf("core: building GPU for %s: %w", bench, err)
	}
	rep := gpu.Run()

	r.mu.Lock()
	r.cache[key] = rep
	r.mu.Unlock()
	return rep, nil
}

// RunAll simulates every paper benchmark under technique t, returning reports
// keyed by benchmark name in kernels.BenchmarkNames order.
func (r *Runner) RunAll(t Technique) (map[string]*sim.Report, error) {
	out := make(map[string]*sim.Report, len(kernels.BenchmarkNames))
	for _, b := range kernels.BenchmarkNames {
		rep, err := r.Run(b, t)
		if err != nil {
			return nil, err
		}
		out[b] = rep
	}
	return out, nil
}

// Performance returns the paper's Figure 10 metric for one benchmark and
// technique: baseline cycles divided by technique cycles (1.0 = no slowdown,
// smaller = slower).
func (r *Runner) Performance(bench string, t Technique) (float64, error) {
	base, err := r.Run(bench, Baseline)
	if err != nil {
		return 0, err
	}
	rep, err := r.Run(bench, t)
	if err != nil {
		return 0, err
	}
	if rep.Cycles == 0 {
		return 0, fmt.Errorf("core: %s under %s ran zero cycles", bench, t)
	}
	return float64(base.Cycles) / float64(rep.Cycles), nil
}

// CacheSize returns the number of memoized simulations (for tests).
func (r *Runner) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}
