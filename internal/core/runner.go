package core

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
	"warpedgates/internal/store"
)

// Runner executes benchmark simulations with memoization: many figures reuse
// the same (benchmark, technique) runs, and the cache guarantees each unique
// configuration is simulated exactly once — including under concurrency,
// where duplicate in-flight requests block on the single real run
// (singleflight) and share its report. Runner is safe for concurrent use.
//
// The cache is tiered. The in-memory map is the L1; when Store is set, a
// content-addressed on-disk report store is the durable L2: an L1 miss first
// consults the store (checksummed, crash-safe — see internal/store) and only
// simulates on a store miss, committing the fresh report back. Singleflight
// spans both tiers — concurrent requesters of one key share one store lookup
// or one simulation, never several.
type Runner struct {
	// Base is the machine configuration figures are evaluated on; technique
	// and sweep parameters are applied on top of copies of it.
	Base config.Config
	// Scale multiplies each kernel's work (iterations and CTA count).
	// 1.0 is the full evaluation; tests use small scales. It must be a
	// positive finite value; RunCfg rejects anything else.
	Scale float64
	// Parallelism bounds the worker pool of RunMany/RunAllParallel/Prefetch.
	// Zero (the default) means runtime.GOMAXPROCS(0). It does not limit
	// plain Run/RunCfg calls, which always execute on the caller.
	Parallelism int
	// Store, when non-nil, is the durable report tier. Reports served from it
	// are byte-identical to fresh simulations (the golden corpus pins this),
	// but arrive without a simulation: Progress and Instrument do not fire
	// for store hits — they observe simulations, not reports. Store write
	// failures never fail a run (the report is still correct); they are
	// recorded in the store's health counters.
	Store *store.Store
	// MaxCachedReports bounds how many completed reports the in-memory tier
	// retains (least-recently-used eviction). Zero, the default, is
	// unlimited — the right choice for batch figure runs, which revisit
	// everything. Long-lived store-backed processes set a bound so the L1
	// cannot grow without limit; evicted keys are re-served from the store.
	// In-flight singleflight entries are never evicted.
	MaxCachedReports int
	// MaxWallTime, when positive, is the per-job watchdog: an uncached
	// simulation exceeding it is canceled at its next epoch boundary and
	// fails with an error wrapping ErrDeadline, instead of occupying a
	// worker forever. Zero disables the watchdog.
	MaxWallTime time.Duration
	// Progress, when non-nil, is invoked before each uncached simulation.
	// Under RunMany/RunAllParallel it is called concurrently from worker
	// goroutines, so the callback must be safe for concurrent use. Set it
	// before the first run; mutating it while runs are in flight is a race.
	Progress func(benchmark string, cfg config.Config)
	// Instrument, when non-nil, observes each uncached simulation: it is
	// called with the benchmark, the exact configuration, the scaled kernel
	// and the freshly built GPU before the run starts, and may install probes
	// (SetCycleProbe/SetIssueTracer). The returned callback, if non-nil,
	// receives the final report; a non-nil error fails the run, which is then
	// not cached. Like Progress it runs concurrently under the parallel
	// entry points, so the hook must be safe for concurrent use — attach
	// per-run state (e.g. one check.Checker per GPU), never share probes.
	Instrument Instrumenter
	// Sched selects how RunMany/RunAllParallel/Prefetch order and provision
	// jobs: SchedAdaptive (the zero value) applies the cost model's LPT
	// admission order and lends drained workers' budget to still-running
	// simulations; SchedStatic keeps submission order and a fixed split.
	// Scheduling never changes results (jobs are deterministic, outputs
	// positional), only wall time, so the mode is not part of any cache key.
	Sched SchedMode
	// Cost, when non-nil, overrides the cost model the adaptive schedule
	// orders jobs by. Nil uses the process-wide DefaultCostModel, seeded from
	// the committed calibration table and refined by every runner's measured
	// wall times.
	Cost *CostModel

	mu    sync.Mutex
	cache map[runKey]*cacheEntry
	// lru orders completed cache entries, most recent at the front; in-flight
	// entries join only once their report lands, so eviction can never drop
	// an entry a waiter is blocked on before its done channel closes.
	lru list.List
	// canon indexes completed entries by their canonical job-key string, the
	// address the durable store and the HTTP service use. Entries join on
	// successful completion and leave on eviction, so every resident value is
	// a finished report — CachedReport never blocks.
	canon map[string]*cacheEntry
}

// ErrDeadline is wrapped by runs killed by the MaxWallTime watchdog; detect
// it with errors.Is. It is distinct from a caller's own cancellation or
// deadline, so sweeps can tell "this job hung" from "I gave up".
var ErrDeadline = errors.New("core: simulation exceeded MaxWallTime")

// PanicError is a panic captured inside one simulation job, converted into a
// per-job error so a sweep loses one cell instead of the whole process. The
// stack is the panicking goroutine's, captured at recovery point.
type PanicError struct {
	Bench string
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: panic simulating %s: %v", e.Bench, e.Value)
}

// cacheEntry is one singleflight slot: the first requester of a key becomes
// the leader and resolves it (store lookup, then simulation); everyone else
// blocks on done and shares the result. rep and err are written exactly once,
// before done is closed. elem is the entry's LRU slot, non-nil only once the
// entry completed successfully and became resident.
type cacheEntry struct {
	done chan struct{}
	rep  *sim.Report
	err  error
	key  runKey
	// canonKey is key.canonical(), computed once when the entry completes and
	// joins the canon index; it keys the entry's removal on eviction.
	canonKey string
	elem     *list.Element
}

// runKey identifies a unique simulation. IntraRunWorkers, BatchCycles and
// MemBanks are deliberately absent: the exact parallel engine is bit-identical
// to the serial one at any worker count, batch size or bank count, so runs
// that differ only in those share one cache slot. EpochRelaxedCycles is
// present: relaxed mode changes results, so it must key separately — and so
// are SampleDetailCycles/SamplePeriod, because a sampled report is an
// estimate, never interchangeable with the detailed run it approximates.
type runKey struct {
	bench        string
	scheduler    config.SchedulerKind
	gating       config.GatingKind
	adaptive     bool
	idleDetect   int
	breakEven    int
	wakeup       int
	numSMs       int
	clusters     int
	maxHold      int
	auxBO        bool
	seed         uint64
	scale        float64
	relaxed      int
	sampleDetail int
	samplePeriod int
}

// makeRunKey projects the result-determining axes of one job into its key.
func makeRunKey(bench string, cfg config.Config, scale float64) runKey {
	return runKey{
		bench:        bench,
		scheduler:    cfg.Scheduler,
		gating:       cfg.Gating,
		adaptive:     cfg.AdaptiveIdleDetect,
		idleDetect:   cfg.IdleDetect,
		breakEven:    cfg.BreakEven,
		wakeup:       cfg.WakeupDelay,
		numSMs:       cfg.NumSMs,
		clusters:     cfg.NumSPClusters,
		maxHold:      cfg.GATESMaxHold,
		auxBO:        cfg.BlackoutAux,
		seed:         cfg.Seed,
		scale:        scale,
		relaxed:      cfg.EpochRelaxedCycles,
		sampleDetail: cfg.SampleDetailCycles,
		samplePeriod: cfg.SamplePeriod,
	}
}

// canonical renders the key as the deterministic single-line string the
// durable store is addressed by. The format is versioned: changing which
// fields key a simulation (or how they are rendered) must bump it, or stale
// store entries would be served for jobs they no longer describe. The float
// scale uses the shortest exact round-trip form, like the fingerprints.
func (k runKey) canonical() string {
	return fmt.Sprintf(
		"wg-job v2 bench=%s sched=%s gate=%s adaptive=%t idle=%d bet=%d wake=%d sms=%d clusters=%d maxhold=%d auxbo=%t seed=%d scale=%s relaxed=%d sample=%d/%d",
		k.bench, k.scheduler, k.gating, k.adaptive, k.idleDetect, k.breakEven,
		k.wakeup, k.numSMs, k.clusters, k.maxHold, k.auxBO, k.seed,
		fmtFloat(k.scale), k.relaxed, k.sampleDetail, k.samplePeriod)
}

// JobKey returns the canonical durable-store key for one job at the given
// scale — exported so tooling (and tests) can address store entries the same
// way the runner does.
func JobKey(bench string, cfg config.Config, scale float64) string {
	return makeRunKey(bench, cfg, scale).canonical()
}

// NewRunner builds a runner over the given base configuration at full scale.
// The initial Scale of 1.0 is always valid; callers that override Scale get
// it validated on every RunCfg (non-finite values would poison runKey: NaN
// never equals itself, so a NaN scale could never hit the cache).
func NewRunner(base config.Config) *Runner {
	return &Runner{
		Base:  base,
		Scale: 1.0,
		cache: make(map[runKey]*cacheEntry),
		canon: make(map[string]*cacheEntry),
	}
}

// DefaultRunner returns a runner over the paper's GTX480 baseline.
func DefaultRunner() *Runner { return NewRunner(config.GTX480()) }

// checkScale rejects scale values that cannot key the cache or scale a
// kernel: NaN, ±Inf and non-positive values.
func checkScale(s float64) error {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return fmt.Errorf("core: runner Scale must be finite, got %v", s)
	}
	if s <= 0 {
		return fmt.Errorf("core: runner Scale must be positive, got %v", s)
	}
	return nil
}

// ctxErr converts a canceled context into the error its caller should see:
// the cause (the watchdog's ErrDeadline, RunMany's first job error, or
// whatever the caller planted) when one was set, the plain ctx.Err otherwise.
func ctxErr(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}

// Run simulates benchmark bench under technique t on the base configuration.
func (r *Runner) Run(bench string, t Technique) (*sim.Report, error) {
	return r.RunCtx(context.Background(), bench, t)
}

// RunCtx is Run under a context; see RunCfgCtx for the cancellation contract.
func (r *Runner) RunCtx(ctx context.Context, bench string, t Technique) (*sim.Report, error) {
	return r.RunCfgCtx(ctx, bench, t.Apply(r.Base))
}

// RunCfg simulates bench under an explicit configuration (for sweeps); it is
// RunCfgCtx under a background context.
func (r *Runner) RunCfg(bench string, cfg config.Config) (*sim.Report, error) {
	return r.RunCfgCtx(context.Background(), bench, cfg)
}

// RunCfgCtx simulates bench under an explicit configuration. For a given key
// the work runs exactly once: concurrent duplicate requests block on the
// first one (the leader) and share its report. Failed runs are not cached,
// so a later call may retry.
//
// ctx cancels the simulation at its next epoch boundary (one batch window at
// most). Waiters sharing a leader share the leader's fate: if the leader's
// context dies, every waiter gets the cancellation error, and the key is
// immediately retryable. Cancellation and watchdog errors are never cached.
func (r *Runner) RunCfgCtx(ctx context.Context, bench string, cfg config.Config) (*sim.Report, error) {
	if err := checkScale(r.Scale); err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, ctxErr(ctx)
	}
	key := makeRunKey(bench, cfg, r.Scale)
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		if e.elem != nil {
			r.lru.MoveToFront(e.elem)
		}
		r.mu.Unlock()
		<-e.done
		return e.rep, e.err
	}
	e := &cacheEntry{done: make(chan struct{}), key: key}
	r.cache[key] = e
	r.mu.Unlock()

	e.rep, e.err = r.resolve(ctx, bench, cfg, key)
	r.mu.Lock()
	if e.err != nil {
		delete(r.cache, key)
	} else {
		e.canonKey = key.canonical()
		r.canon[e.canonKey] = e
		e.elem = r.lru.PushFront(e)
		r.evictLocked()
	}
	r.mu.Unlock()
	close(e.done)
	return e.rep, e.err
}

// CachedReport returns the completed report resident in the in-memory tier
// under the given canonical job key (see JobKey), or false when the key is
// in flight, evicted or unknown. It never blocks and never consults the
// durable store — it is the L1 half of the service layer's read-through
// report path; the caller falls back to the store on a miss.
func (r *Runner) CachedReport(key string) (*sim.Report, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.canon[key]
	if !ok {
		return nil, false
	}
	if e.elem != nil {
		r.lru.MoveToFront(e.elem)
	}
	return e.rep, true
}

// evictLocked trims the completed-entry LRU to MaxCachedReports, dropping the
// least recently used residents. Callers hold r.mu. An evicted entry's done
// channel is already closed (only completed entries are in the list), so
// waiters holding its pointer are unaffected; the key simply resolves fresh —
// from the store, if one is attached — on its next request.
func (r *Runner) evictLocked() {
	if r.MaxCachedReports <= 0 {
		return
	}
	for r.lru.Len() > r.MaxCachedReports {
		old := r.lru.Remove(r.lru.Back()).(*cacheEntry)
		delete(r.cache, old.key)
		delete(r.canon, old.canonKey)
	}
}

// resolve is the singleflight leader path: consult the durable store, then
// simulate on a miss and commit the result back.
func (r *Runner) resolve(ctx context.Context, bench string, cfg config.Config, key runKey) (*sim.Report, error) {
	var storeKey string
	if r.Store != nil {
		storeKey = key.canonical()
		if data, ok, _ := r.Store.Get(storeKey); ok {
			if rep, err := sim.DecodeReport(data); err == nil {
				return rep, nil
			}
			// Checksum-valid but undecodable: a different codec version.
			// Treat as a miss; the fresh simulation's commit overwrites it.
		}
	}
	start := time.Now()
	rep, err := r.simulate(ctx, bench, cfg)
	if err != nil {
		return nil, err
	}
	// Only real simulations feed the cost model — store hits arrive in
	// microseconds and would teach it that every job is free.
	r.costModel().Observe(bench, cfg, r.Scale, time.Since(start))
	if r.Store != nil {
		if data, err := sim.EncodeReport(rep); err == nil {
			// A failed Put is recorded in the store's health counters; the
			// report itself is valid regardless, so the run still succeeds.
			_ = r.Store.Put(storeKey, data)
		}
	}
	return rep, nil
}

// simulate performs one uncached simulation. It arms the MaxWallTime
// watchdog, and converts a panic anywhere in the simulation (or in the
// Progress/Instrument hooks) into a *PanicError with the captured stack, so
// one poisoned job cannot kill a whole sweep's worker pool.
func (r *Runner) simulate(ctx context.Context, bench string, cfg config.Config) (rep *sim.Report, err error) {
	defer func() {
		if v := recover(); v != nil {
			rep, err = nil, &PanicError{Bench: bench, Value: v, Stack: debug.Stack()}
		}
	}()
	k, err := kernels.Benchmark(bench)
	if err != nil {
		return nil, err
	}
	if r.Scale != 1.0 {
		k = k.Scale(r.Scale)
	}
	if r.Progress != nil {
		r.Progress(bench, cfg)
	}
	gpu, err := sim.NewGPU(cfg, k)
	if err != nil {
		return nil, fmt.Errorf("core: building GPU for %s: %w", bench, err)
	}
	// A context carrying a worker-lease pool (planted by RunManyCtx under
	// SchedAdaptive, or by an external driver) lets this run absorb idle
	// budget as extra intra-run workers. Sampled runs ignore the pool — they
	// must stay on the serial engine.
	if p := workerLeasesFrom(ctx); p != nil {
		gpu.SetWorkerPool(p)
	}
	var finish func(*sim.Report) error
	if r.Instrument != nil {
		finish = r.Instrument(bench, cfg, k, gpu)
	}
	if r.MaxWallTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, r.MaxWallTime, ErrDeadline)
		defer cancel()
	}
	rep, err = gpu.RunCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: %s under %s/%s: %w", bench, cfg.Scheduler, cfg.Gating, err)
	}
	if finish != nil {
		if err := finish(rep); err != nil {
			return nil, fmt.Errorf("core: instrumented run of %s: %w", bench, err)
		}
	}
	return rep, nil
}

// Instrumenter is Runner.Instrument's hook type: called once per uncached
// simulation with the GPU before it runs, it returns a completion callback
// (may be nil) that receives the final report and may fail the run. The
// invariant checker's check.Instrument produces this type.
type Instrumenter func(bench string, cfg config.Config, k *kernels.Kernel, g *sim.GPU) func(*sim.Report) error

// NamedReport pairs a benchmark name with its report, for ordered results.
type NamedReport struct {
	Benchmark string
	Report    *sim.Report
}

// RunAll simulates every paper benchmark under technique t, returning
// reports keyed by benchmark name. The map has no defined iteration order;
// use RunAllOrdered or RunAllParallel when order matters.
func (r *Runner) RunAll(t Technique) (map[string]*sim.Report, error) {
	out := make(map[string]*sim.Report, len(kernels.BenchmarkNames))
	for _, b := range kernels.BenchmarkNames {
		rep, err := r.Run(b, t)
		if err != nil {
			return nil, err
		}
		out[b] = rep
	}
	return out, nil
}

// RunAllOrdered simulates every paper benchmark under technique t serially,
// returning reports in kernels.BenchmarkNames order.
func (r *Runner) RunAllOrdered(t Technique) ([]NamedReport, error) {
	out := make([]NamedReport, 0, len(kernels.BenchmarkNames))
	for _, b := range kernels.BenchmarkNames {
		rep, err := r.Run(b, t)
		if err != nil {
			return nil, err
		}
		out = append(out, NamedReport{Benchmark: b, Report: rep})
	}
	return out, nil
}

// Performance returns the paper's Figure 10 metric for one benchmark and
// technique: baseline cycles divided by technique cycles (1.0 = no slowdown,
// smaller = slower).
func (r *Runner) Performance(bench string, t Technique) (float64, error) {
	base, err := r.Run(bench, Baseline)
	if err != nil {
		return 0, err
	}
	rep, err := r.Run(bench, t)
	if err != nil {
		return 0, err
	}
	if rep.Cycles == 0 {
		return 0, fmt.Errorf("core: %s under %s ran zero cycles", bench, t)
	}
	return float64(base.Cycles) / float64(rep.Cycles), nil
}

// costModel returns the model the adaptive schedule consults: the explicit
// override, or the shared default.
func (r *Runner) costModel() *CostModel {
	if r.Cost != nil {
		return r.Cost
	}
	return DefaultCostModel()
}

// CacheSize returns the number of memoized simulations, counting in-flight
// singleflight entries (for tests).
func (r *Runner) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}
