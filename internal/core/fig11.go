package core

import (
	"fmt"

	"warpedgates/internal/config"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/power"
	"warpedgates/internal/stats"
)

// Fig11Point is one sweep point of the sensitivity study (paper Figure 11):
// the suite-average INT and FP static savings and the geomean performance of
// one technique at one parameter value.
type Fig11Point struct {
	Technique  Technique
	ParamValue int
	IntSavings float64
	FpSavings  float64
	Perf       float64
}

// Fig11Result carries one panel of the sensitivity study.
type Fig11Result struct {
	Param  string // "BET" or "wakeup"
	Points []Fig11Point
	Table  *stats.Table
}

// RunFig11BET regenerates paper Figure 11a: sensitivity to the break-even
// time (paper values 9, 14, 19) for conventional power gating and Warped
// Gates.
func RunFig11BET(r *Runner, values []int) (*Fig11Result, error) {
	return runFig11(r, "BET", values, func(cfg *configMut, v int) { cfg.BreakEven = v })
}

// RunFig11Wakeup regenerates paper Figure 11b: sensitivity to the wakeup
// delay (paper values 3, 6, 9).
func RunFig11Wakeup(r *Runner, values []int) (*Fig11Result, error) {
	return runFig11(r, "wakeup", values, func(cfg *configMut, v int) { cfg.WakeupDelay = v })
}

// configMut is the subset of configuration fields the sweeps mutate.
type configMut = struct {
	BreakEven   int
	WakeupDelay int
}

// fig11Sweep is one sweep point's resolved configuration.
type fig11Sweep struct {
	tech Technique
	v    int
	cfg  config.Config
}

// runFig11 runs one sensitivity sweep.
func runFig11(r *Runner, param string, values []int, set func(*configMut, int)) (*Fig11Result, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("core: Fig. 11 sweep needs at least one value")
	}
	var sweeps []fig11Sweep
	for _, tech := range []Technique{ConvPG, WarpedGates} {
		for _, v := range values {
			cfg := tech.Apply(r.Base)
			mut := configMut{BreakEven: cfg.BreakEven, WakeupDelay: cfg.WakeupDelay}
			set(&mut, v)
			cfg.BreakEven = mut.BreakEven
			cfg.WakeupDelay = mut.WakeupDelay
			sweeps = append(sweeps, fig11Sweep{tech: tech, v: v, cfg: cfg})
		}
	}
	jobs := techniqueJobs(r.Base, kernels.BenchmarkNames, Baseline)
	for _, s := range sweeps {
		for _, b := range kernels.BenchmarkNames {
			jobs = append(jobs, Job{Bench: b, Cfg: s.cfg})
		}
	}
	if err := r.Prefetch(jobs); err != nil {
		return nil, err
	}
	res := &Fig11Result{Param: param}
	for _, s := range sweeps {
		model := power.Default(s.cfg.BreakEven)

		var intSum, fpSum float64
		var nInt, nFp float64
		var perfs []float64
		for _, b := range kernels.BenchmarkNames {
			rep, err := r.RunCfg(b, s.cfg)
			if err != nil {
				return nil, err
			}
			base, err := r.Run(b, Baseline)
			if err != nil {
				return nil, err
			}
			intSum += model.AnalyzeAgainst(rep, base, isa.INT).StaticSavings()
			nInt++
			if !kernels.IntegerOnly(b) {
				fpSum += model.AnalyzeAgainst(rep, base, isa.FP).StaticSavings()
				nFp++
			}
			perfs = append(perfs, stats.Ratio(float64(base.Cycles), float64(rep.Cycles)))
		}
		res.Points = append(res.Points, Fig11Point{
			Technique:  s.tech,
			ParamValue: s.v,
			IntSavings: intSum / nInt,
			FpSavings:  fpSum / nFp,
			Perf:       stats.Geomean(perfs),
		})
	}

	tab := stats.NewTable(fmt.Sprintf("Fig. 11 — sensitivity to %s", param),
		"technique", param, "Int savings", "Fp savings", "perf")
	for _, p := range res.Points {
		tab.AddRowf(p.Technique.String(), p.ParamValue, p.IntSavings, p.FpSavings, p.Perf)
	}
	res.Table = tab
	return res, nil
}
