package core

import (
	"sync"
	"testing"

	"warpedgates/internal/config"
)

// testRunner returns a fast small-machine runner shared by core tests.
func testRunner() *Runner {
	r := NewRunner(config.Small())
	r.Scale = 0.2
	return r
}

func TestRunnerMemoizes(t *testing.T) {
	r := testRunner()
	a, err := r.Run("nw", Baseline)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("nw", Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical run not served from cache")
	}
	if r.CacheSize() != 1 {
		t.Fatalf("cache size = %d, want 1", r.CacheSize())
	}
	if _, err := r.Run("nw", ConvPG); err != nil {
		t.Fatal(err)
	}
	if r.CacheSize() != 2 {
		t.Fatalf("cache size = %d, want 2", r.CacheSize())
	}
}

func TestRunnerDistinguishesSweepParameters(t *testing.T) {
	r := testRunner()
	cfgA := ConvPG.Apply(r.Base)
	cfgB := cfgA
	cfgB.IdleDetect = 9
	a, err := r.RunCfg("nw", cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunCfg("nw", cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different idle-detect values hit the same cache entry")
	}
}

func TestRunnerUnknownBenchmark(t *testing.T) {
	r := testRunner()
	if _, err := r.Run("nosuch", Baseline); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunnerProgressCallback(t *testing.T) {
	r := testRunner()
	var calls int
	r.Progress = func(b string, c config.Config) { calls++ }
	if _, err := r.Run("nw", Baseline); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run("nw", Baseline); err != nil { // cached: no callback
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("progress callbacks = %d, want 1", calls)
	}
}

func TestRunnerPerformanceMetric(t *testing.T) {
	r := testRunner()
	p, err := r.Performance("nw", ConvPG)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1.2 {
		t.Fatalf("performance = %v, implausible", p)
	}
	// Baseline against itself is exactly 1.
	p, err = r.Performance("nw", Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("baseline self performance = %v", p)
	}
}

func TestRunnerConcurrentAccess(t *testing.T) {
	r := testRunner()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tech := GatedTechniques()[i%5]
			if _, err := r.Run("nw", tech); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run in -short mode")
	}
	r := testRunner()
	reps, err := r.RunAll(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 18 {
		t.Fatalf("RunAll returned %d reports, want 18", len(reps))
	}
	for name, rep := range reps {
		if rep.RanOut {
			t.Errorf("%s hit the cycle limit at test scale", name)
		}
		if rep.IssuedTotal == 0 {
			t.Errorf("%s issued nothing", name)
		}
	}
}
