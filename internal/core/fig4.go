package core

import (
	"fmt"
	"strings"

	"warpedgates/internal/config"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
	"warpedgates/internal/stats"
)

// Fig4Schedule is the issue timeline of the paper's Figure 4 walkthrough on
// the simplified one-scheduler, one-SP-cluster machine: which cycle each
// instruction type issued at, and the resulting idle structure of each pipe.
type Fig4Schedule struct {
	Scheduler config.SchedulerKind
	// IssueCycles maps issue order to (cycle, class).
	Issues []Fig4Issue
	// IdlePeriodsINT / IdlePeriodsFP are the maximal idle-run lengths of
	// each pipe over the schedule's span.
	IdlePeriodsINT []int
	IdlePeriodsFP  []int
	// Span is the total number of cycles from first issue to pipeline drain.
	Span int64
}

// Fig4Issue records one instruction issue.
type Fig4Issue struct {
	Cycle int64
	Warp  int
	Class isa.Class
}

// Fig4Result compares the two-level schedule with the GATES schedule on the
// paper's Figure 4 microkernel.
type Fig4Result struct {
	TwoLevel Fig4Schedule
	GATES    Fig4Schedule
	Table    *stats.Table
}

// RunFig4 regenerates the paper's Figure 4 walkthrough: a 12-entry active
// warp set holding an interleaving of independent INT and FP adds (latency 4,
// initiation interval 1) issued on a machine with a single scheduler and one
// INT and one FP pipe. The two-level scheduler issues front-to-back, leaving
// short isolated bubbles; GATES clusters by type, coalescing the bubbles
// into one long idle run per pipe.
func RunFig4() (*Fig4Result, error) {
	res := &Fig4Result{}
	for _, kind := range []config.SchedulerKind{config.SchedTwoLevel, config.SchedGATES} {
		sched, err := runFig4Once(kind)
		if err != nil {
			return nil, err
		}
		switch kind {
		case config.SchedTwoLevel:
			res.TwoLevel = *sched
		default:
			res.GATES = *sched
		}
	}

	t := stats.NewTable("Fig. 4 — warp scheduling effect on idle cycles (latency 4, ii 1)",
		"scheduler", "issue order (cycle:type)", "INT idle runs", "FP idle runs")
	for _, s := range []*Fig4Schedule{&res.TwoLevel, &res.GATES} {
		var order []string
		for _, is := range s.Issues {
			order = append(order, fmt.Sprintf("%d:%s", is.Cycle, is.Class))
		}
		t.AddRow(s.Scheduler.String(), strings.Join(order, " "),
			fmt.Sprint(s.IdlePeriodsINT), fmt.Sprint(s.IdlePeriodsFP))
	}
	res.Table = t
	return res, nil
}

// runFig4Once executes the microkernel under one scheduler kind and extracts
// the schedule.
func runFig4Once(kind config.SchedulerKind) (*Fig4Schedule, error) {
	cfg := config.GTX480()
	cfg.NumSMs = 1
	cfg.NumSchedulers = 1
	cfg.NumSPClusters = 1
	cfg.Scheduler = kind
	cfg.Gating = config.GateNone
	cfg.MaxWarpsPerSM = 48
	cfg.MaxCycles = 10000

	k := kernels.Fig4Microkernel()
	gpu, err := sim.NewGPU(cfg, k)
	if err != nil {
		return nil, err
	}
	out := &Fig4Schedule{Scheduler: kind}
	gpu.SetIssueTracer(func(smID int, cycle int64, warpIdx int, class isa.Class, cluster int) {
		out.Issues = append(out.Issues, Fig4Issue{Cycle: cycle, Warp: warpIdx, Class: class})
	})
	rep := gpu.Run()
	out.Span = rep.Cycles

	for _, dom := range []struct {
		class isa.Class
		dst   *[]int
	}{{isa.INT, &out.IdlePeriodsINT}, {isa.FP, &out.IdlePeriodsFP}} {
		h := rep.Domains[dom.class].IdlePeriods
		for _, v := range h.Values() {
			for i := uint64(0); i < h.Count(v); i++ {
				*dom.dst = append(*dom.dst, v)
			}
		}
	}
	return out, nil
}
