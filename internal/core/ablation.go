package core

import (
	"fmt"

	"warpedgates/internal/config"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/power"
	"warpedgates/internal/stats"
)

// AblationPoint is one configuration of an ablation sweep: suite-average INT
// and FP static savings plus geomean performance for a technique variant.
type AblationPoint struct {
	Label      string
	IntSavings float64
	FpSavings  float64
	Perf       float64
}

// AblationResult carries one ablation study.
type AblationResult struct {
	Name   string
	Points []AblationPoint
	Table  *stats.Table
}

// RunAblationClusters studies the SP-cluster trend the paper's §5 points at:
// Fermi has two INT/FP clusters per SM, Kepler six, AMD GCN four. More
// clusters give Coordinated Blackout more sleeping peers per unit of work,
// so per-cluster savings grow with the cluster count.
func RunAblationClusters(r *Runner, clusterCounts []int) (*AblationResult, error) {
	if len(clusterCounts) == 0 {
		return nil, fmt.Errorf("core: cluster ablation needs at least one count")
	}
	res := &AblationResult{Name: "Ablation — SP clusters per SM (Fermi 2, GCN 4, Kepler 6)"}
	model := power.Default(r.Base.BreakEven)
	var jobs []Job
	for _, n := range clusterCounts {
		if n <= 0 {
			return nil, fmt.Errorf("core: invalid cluster count %d", n)
		}
		baseCfg := Baseline.Apply(r.Base)
		baseCfg.NumSPClusters = n
		cfg := WarpedGates.Apply(r.Base)
		cfg.NumSPClusters = n
		for _, b := range kernels.BenchmarkNames {
			jobs = append(jobs, Job{Bench: b, Cfg: baseCfg}, Job{Bench: b, Cfg: cfg})
		}
	}
	if err := r.Prefetch(jobs); err != nil {
		return nil, err
	}
	for _, n := range clusterCounts {
		baseCfg := Baseline.Apply(r.Base)
		baseCfg.NumSPClusters = n
		cfg := WarpedGates.Apply(r.Base)
		cfg.NumSPClusters = n

		var intSum, fpSum float64
		var nInt, nFp float64
		var perfs []float64
		for _, b := range kernels.BenchmarkNames {
			base, err := r.RunCfg(b, baseCfg)
			if err != nil {
				return nil, err
			}
			rep, err := r.RunCfg(b, cfg)
			if err != nil {
				return nil, err
			}
			intSum += model.AnalyzeAgainst(rep, base, isa.INT).StaticSavings()
			nInt++
			if !kernels.IntegerOnly(b) {
				fpSum += model.AnalyzeAgainst(rep, base, isa.FP).StaticSavings()
				nFp++
			}
			perfs = append(perfs, stats.Ratio(float64(base.Cycles), float64(rep.Cycles)))
		}
		res.Points = append(res.Points, AblationPoint{
			Label:      fmt.Sprintf("%d clusters", n),
			IntSavings: intSum / nInt,
			FpSavings:  fpSum / nFp,
			Perf:       stats.Geomean(perfs),
		})
	}
	tab := stats.NewTable(res.Name, "variant", "Int savings", "Fp savings", "perf")
	for _, p := range res.Points {
		tab.AddRowf(p.Label, p.IntSavings, p.FpSavings, p.Perf)
	}
	res.Table = tab
	return res, nil
}

// RunAblationMaxHold studies the GATES forced-priority-switch threshold the
// paper's §4 offers against starvation: 0 disables it (the paper default);
// small values force frequent switches, eroding the type clustering GATES
// exists to create.
func RunAblationMaxHold(r *Runner, holds []int) (*AblationResult, error) {
	if len(holds) == 0 {
		return nil, fmt.Errorf("core: max-hold ablation needs at least one value")
	}
	res := &AblationResult{Name: "Ablation — GATES forced priority switch threshold"}
	model := power.Default(r.Base.BreakEven)
	jobs := techniqueJobs(r.Base, kernels.BenchmarkNames, Baseline)
	for _, h := range holds {
		if h < 0 {
			return nil, fmt.Errorf("core: invalid max hold %d", h)
		}
		cfg := WarpedGates.Apply(r.Base)
		cfg.GATESMaxHold = h
		for _, b := range kernels.BenchmarkNames {
			jobs = append(jobs, Job{Bench: b, Cfg: cfg})
		}
	}
	if err := r.Prefetch(jobs); err != nil {
		return nil, err
	}
	for _, h := range holds {
		cfg := WarpedGates.Apply(r.Base)
		cfg.GATESMaxHold = h
		var intSum, fpSum float64
		var nInt, nFp float64
		var perfs []float64
		for _, b := range kernels.BenchmarkNames {
			base, err := r.Run(b, Baseline)
			if err != nil {
				return nil, err
			}
			rep, err := r.RunCfg(b, cfg)
			if err != nil {
				return nil, err
			}
			intSum += model.AnalyzeAgainst(rep, base, isa.INT).StaticSavings()
			nInt++
			if !kernels.IntegerOnly(b) {
				fpSum += model.AnalyzeAgainst(rep, base, isa.FP).StaticSavings()
				nFp++
			}
			perfs = append(perfs, stats.Ratio(float64(base.Cycles), float64(rep.Cycles)))
		}
		label := fmt.Sprintf("hold<=%d", h)
		if h == 0 {
			label = "unbounded (paper)"
		}
		res.Points = append(res.Points, AblationPoint{
			Label:      label,
			IntSavings: intSum / nInt,
			FpSavings:  fpSum / nFp,
			Perf:       stats.Geomean(perfs),
		})
	}
	tab := stats.NewTable(res.Name, "variant", "Int savings", "Fp savings", "perf")
	for _, p := range res.Points {
		tab.AddRowf(p.Label, p.IntSavings, p.FpSavings, p.Perf)
	}
	res.Table = tab
	return res, nil
}

// RunAblationAuxBlackout studies extending Blackout to the SFU and LD/ST
// units, which the paper leaves under conventional gating (§3 argues SFUs
// are only 2.5% of execution-unit leakage). It reports suite-average static
// savings for the auxiliary units with and without the extension.
func RunAblationAuxBlackout(r *Runner) (*AblationResult, error) {
	res := &AblationResult{Name: "Ablation — Blackout on SFU/LDST units"}
	model := power.Default(r.Base.BreakEven)
	jobs := techniqueJobs(r.Base, kernels.BenchmarkNames, Baseline)
	for _, aux := range []bool{false, true} {
		cfg := WarpedGates.Apply(r.Base)
		cfg.BlackoutAux = aux
		for _, b := range kernels.BenchmarkNames {
			jobs = append(jobs, Job{Bench: b, Cfg: cfg})
		}
	}
	if err := r.Prefetch(jobs); err != nil {
		return nil, err
	}
	for _, aux := range []bool{false, true} {
		cfg := WarpedGates.Apply(r.Base)
		cfg.BlackoutAux = aux
		var sfuSum, ldstSum float64
		var n float64
		var perfs []float64
		for _, b := range kernels.BenchmarkNames {
			base, err := r.Run(b, Baseline)
			if err != nil {
				return nil, err
			}
			rep, err := r.RunCfg(b, cfg)
			if err != nil {
				return nil, err
			}
			sfuSum += model.AnalyzeAgainst(rep, base, isa.SFU).StaticSavings()
			ldstSum += model.AnalyzeAgainst(rep, base, isa.LDST).StaticSavings()
			n++
			perfs = append(perfs, stats.Ratio(float64(base.Cycles), float64(rep.Cycles)))
		}
		label := "conventional aux (paper)"
		if aux {
			label = "blackout aux (extension)"
		}
		res.Points = append(res.Points, AblationPoint{
			Label:      label,
			IntSavings: sfuSum / n,  // SFU savings in the Int column
			FpSavings:  ldstSum / n, // LDST savings in the Fp column
			Perf:       stats.Geomean(perfs),
		})
	}
	tab := stats.NewTable(res.Name, "variant", "SFU savings", "LDST savings", "perf")
	for _, p := range res.Points {
		tab.AddRowf(p.Label, p.IntSavings, p.FpSavings, p.Perf)
	}
	res.Table = tab
	return res, nil
}

// RunAblationScheduler compares warp schedulers under conventional gating:
// loose round-robin (the pre-two-level design), the two-level scheduler
// (paper baseline) and GATES, quantifying how much gating opportunity each
// scheduler exposes. Note that LRR and TwoLevel coincide exactly in this
// simulator: both rotate over ready candidates, and the two-level split's
// real-hardware benefit (a small active-warp SRAM instead of a full-size
// scheduler structure) is an energy effect outside the execution-unit scope
// of this model — the pair serves as a built-in sanity check that policy
// plumbing does not perturb results.
func RunAblationScheduler(r *Runner) (*AblationResult, error) {
	res := &AblationResult{Name: "Ablation — scheduler under conventional gating"}
	model := power.Default(r.Base.BreakEven)
	kinds := []config.SchedulerKind{config.SchedLRR, config.SchedTwoLevel, config.SchedGATES}
	jobs := techniqueJobs(r.Base, kernels.BenchmarkNames, Baseline)
	for _, kind := range kinds {
		cfg := ConvPG.Apply(r.Base)
		cfg.Scheduler = kind
		for _, b := range kernels.BenchmarkNames {
			jobs = append(jobs, Job{Bench: b, Cfg: cfg})
		}
	}
	if err := r.Prefetch(jobs); err != nil {
		return nil, err
	}
	for _, kind := range kinds {
		cfg := ConvPG.Apply(r.Base)
		cfg.Scheduler = kind
		var intSum, fpSum, idleSum float64
		var nInt, nFp float64
		var perfs []float64
		for _, b := range kernels.BenchmarkNames {
			base, err := r.Run(b, Baseline)
			if err != nil {
				return nil, err
			}
			rep, err := r.RunCfg(b, cfg)
			if err != nil {
				return nil, err
			}
			intSum += model.AnalyzeAgainst(rep, base, isa.INT).StaticSavings()
			idleSum += rep.Domains[isa.INT].IdleFraction()
			nInt++
			if !kernels.IntegerOnly(b) {
				fpSum += model.AnalyzeAgainst(rep, base, isa.FP).StaticSavings()
				nFp++
			}
			perfs = append(perfs, stats.Ratio(float64(base.Cycles), float64(rep.Cycles)))
		}
		res.Points = append(res.Points, AblationPoint{
			Label:      kind.String(),
			IntSavings: intSum / nInt,
			FpSavings:  fpSum / nFp,
			Perf:       stats.Geomean(perfs),
		})
	}
	tab := stats.NewTable(res.Name, "variant", "Int savings", "Fp savings", "perf")
	for _, p := range res.Points {
		tab.AddRowf(p.Label, p.IntSavings, p.FpSavings, p.Perf)
	}
	res.Table = tab
	return res, nil
}

// RunAblationIdleDetect studies the static idle-detect window for
// conventional gating (the naive mitigation §4 dismisses: growing the window
// avoids uncompensated windows but wastes gateable idle cycles).
func RunAblationIdleDetect(r *Runner, windows []int) (*AblationResult, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("core: idle-detect ablation needs at least one value")
	}
	res := &AblationResult{Name: "Ablation — static idle-detect window under ConvPG"}
	model := power.Default(r.Base.BreakEven)
	jobs := techniqueJobs(r.Base, kernels.BenchmarkNames, Baseline)
	for _, w := range windows {
		if w < 0 {
			return nil, fmt.Errorf("core: invalid idle-detect %d", w)
		}
		cfg := ConvPG.Apply(r.Base)
		cfg.IdleDetect = w
		for _, b := range kernels.BenchmarkNames {
			jobs = append(jobs, Job{Bench: b, Cfg: cfg})
		}
	}
	if err := r.Prefetch(jobs); err != nil {
		return nil, err
	}
	for _, w := range windows {
		cfg := ConvPG.Apply(r.Base)
		cfg.IdleDetect = w
		var intSum, fpSum float64
		var nInt, nFp float64
		var perfs []float64
		for _, b := range kernels.BenchmarkNames {
			base, err := r.Run(b, Baseline)
			if err != nil {
				return nil, err
			}
			rep, err := r.RunCfg(b, cfg)
			if err != nil {
				return nil, err
			}
			intSum += model.AnalyzeAgainst(rep, base, isa.INT).StaticSavings()
			nInt++
			if !kernels.IntegerOnly(b) {
				fpSum += model.AnalyzeAgainst(rep, base, isa.FP).StaticSavings()
				nFp++
			}
			perfs = append(perfs, stats.Ratio(float64(base.Cycles), float64(rep.Cycles)))
		}
		res.Points = append(res.Points, AblationPoint{
			Label:      fmt.Sprintf("idle-detect %d", w),
			IntSavings: intSum / nInt,
			FpSavings:  fpSum / nFp,
			Perf:       stats.Geomean(perfs),
		})
	}
	tab := stats.NewTable(res.Name, "variant", "Int savings", "Fp savings", "perf")
	for _, p := range res.Points {
		tab.AddRowf(p.Label, p.IntSavings, p.FpSavings, p.Perf)
	}
	res.Table = tab
	return res, nil
}
