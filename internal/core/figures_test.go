package core

import (
	"strings"
	"testing"

	"warpedgates/internal/isa"
)

// figRunner is a shared small-scale runner so the figure tests reuse cached
// simulations across test functions within the package test binary.
var figRunner = testRunner()

func TestRunFig1b(t *testing.T) {
	res, err := RunFig1b(figRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bars) != 4 {
		t.Fatalf("bars = %d, want 4 (Baseline/ConvPG x INT/FP)", len(res.Bars))
	}
	var baseINT, baseFP, convINT EnergySplit
	for _, b := range res.Bars {
		switch {
		case b.Technique == Baseline && b.Class == isa.INT:
			baseINT = b
		case b.Technique == Baseline && b.Class == isa.FP:
			baseFP = b
		case b.Technique == ConvPG && b.Class == isa.INT:
			convINT = b
		}
	}
	// Baseline bars have no gating overhead and total 1 by construction.
	if baseINT.Overhead != 0 || baseFP.Overhead != 0 {
		t.Fatal("baseline bars should have zero overhead")
	}
	if baseINT.Total() < 0.999 || baseINT.Total() > 1.001 {
		t.Fatalf("baseline INT total = %v, want 1", baseINT.Total())
	}
	// Paper Fig. 1b: FP static share far above INT static share.
	if baseFP.Static <= baseINT.Static {
		t.Fatalf("FP static share (%v) should exceed INT (%v)", baseFP.Static, baseINT.Static)
	}
	// Conventional gating reduces static energy but adds overhead.
	if convINT.Static >= baseINT.Static {
		t.Fatal("ConvPG did not reduce INT static energy")
	}
	if convINT.Overhead <= 0 {
		t.Fatal("ConvPG bar should carry gating overhead")
	}
	if !strings.Contains(res.Table.String(), "Fig. 1b") {
		t.Fatal("table title missing")
	}
}

func TestRunFig3(t *testing.T) {
	res, err := RunFig3(figRunner, "hotspot")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		sum := row.Wasted + row.Negative + row.Positive
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s regions sum to %v", row.Technique, sum)
		}
	}
	conv, gates, blackout := res.Rows[0], res.Rows[1], res.Rows[2]
	// Paper Fig. 3 qualitative shape: GATES moves idle periods out of the
	// wasted region; Blackout empties the middle region exactly.
	if gates.Wasted >= conv.Wasted {
		t.Errorf("GATES wasted region %.3f not below ConvPG %.3f", gates.Wasted, conv.Wasted)
	}
	if blackout.Negative != 0 {
		t.Errorf("blackout middle region = %v, want 0", blackout.Negative)
	}
	if blackout.Positive <= conv.Positive {
		t.Errorf("blackout positive region %.3f not above ConvPG %.3f", blackout.Positive, conv.Positive)
	}
}

func TestRunFig3UnknownBenchmark(t *testing.T) {
	if _, err := RunFig3(figRunner, "nosuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunFig4(t *testing.T) {
	res, err := RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	// Both schedules issue all 12 instructions.
	if len(res.TwoLevel.Issues) != 12 || len(res.GATES.Issues) != 12 {
		t.Fatalf("issue counts = %d/%d, want 12", len(res.TwoLevel.Issues), len(res.GATES.Issues))
	}
	// The two-level schedule issues strictly in queue order, interleaving
	// types; GATES issues every INT before any FP (paper Fig. 4).
	sawFP := false
	for _, is := range res.GATES.Issues {
		if is.Class == isa.FP {
			sawFP = true
		} else if sawFP {
			t.Fatal("GATES issued INT after FP — clustering broken")
		}
	}
	interleaved := false
	sawFP = false
	for _, is := range res.TwoLevel.Issues {
		if is.Class == isa.FP {
			sawFP = true
		} else if sawFP {
			interleaved = true
		}
	}
	if !interleaved {
		t.Fatal("two-level schedule did not interleave types")
	}
	// GATES coalesces the FP pipe's idle cycles into fewer, longer runs.
	if len(res.GATES.IdlePeriodsFP) >= len(res.TwoLevel.IdlePeriodsFP) &&
		maxOf(res.GATES.IdlePeriodsFP) <= maxOf(res.TwoLevel.IdlePeriodsFP) {
		t.Fatalf("GATES FP idle runs %v not coalesced vs two-level %v",
			res.GATES.IdlePeriodsFP, res.TwoLevel.IdlePeriodsFP)
	}
}

func maxOf(vs []int) int {
	m := 0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

func TestRunFig5(t *testing.T) {
	a, err := RunFig5a(figRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 18 {
		t.Fatalf("fig5a rows = %d", len(a.Rows))
	}
	for _, row := range a.Rows {
		sum := 0.0
		for _, v := range row.Mix {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s mix sums to %v", row.Benchmark, sum)
		}
	}
	b, err := RunFig5b(figRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 18 {
		t.Fatalf("fig5b rows = %d", len(b.Rows))
	}
	for _, row := range b.Rows {
		if row.Average > float64(row.Max) || row.Max <= 0 {
			t.Fatalf("%s occupancy avg %v max %d inconsistent", row.Benchmark, row.Average, row.Max)
		}
	}
}

func TestFig5bOccupancySplitMatchesPaper(t *testing.T) {
	// The paper's Fig. 5b divides the suite into high-occupancy benchmarks
	// (srad, lbm, backprop at the top) and low-occupancy ones (nw, gaussian,
	// NN, LIB, WP under ten average warps). The synthetic suite must keep
	// that split.
	res, err := RunFig5b(figRunner)
	if err != nil {
		t.Fatal(err)
	}
	avg := map[string]float64{}
	for _, row := range res.Rows {
		avg[row.Benchmark] = row.Average
	}
	// Compare group means: the small test machine caps resident warps, so
	// individual high-occupancy benchmarks can be truncated, but the groups
	// must stay separated.
	groupMean := func(names []string) float64 {
		sum := 0.0
		for _, n := range names {
			sum += avg[n]
		}
		return sum / float64(len(names))
	}
	high := groupMean([]string{"srad", "lbm", "backprop", "sgemm"})
	low := groupMean([]string{"nw", "gaussian", "NN", "LIB", "WP"})
	if high <= 1.5*low {
		t.Errorf("occupancy split broken: high group %.1f not well above low group %.1f", high, low)
	}
	for _, l := range []string{"nw", "gaussian", "NN", "LIB", "WP"} {
		if avg[l] >= 10 {
			t.Errorf("%s average occupancy %.1f, paper group is under 10", l, avg[l])
		}
	}
}

func TestRunFig9(t *testing.T) {
	intRes, err := RunFig9(figRunner, isa.INT)
	if err != nil {
		t.Fatal(err)
	}
	fpRes, err := RunFig9(figRunner, isa.FP)
	if err != nil {
		t.Fatal(err)
	}
	if len(intRes.Rows) != 18 {
		t.Fatalf("INT rows = %d", len(intRes.Rows))
	}
	// FP panel excludes integer-only benchmarks (lavaMD).
	if len(fpRes.Rows) != 17 {
		t.Fatalf("FP rows = %d, want 17", len(fpRes.Rows))
	}
	for _, row := range fpRes.Rows {
		if row.Benchmark == "lavaMD" {
			t.Fatal("integer-only benchmark in FP panel")
		}
	}
	// Paper's headline orderings: blackout beats conventional on average;
	// FP savings exceed INT savings for the full proposal.
	if intRes.Average[CoordBlackout] <= intRes.Average[ConvPG] {
		t.Errorf("Coordinated Blackout INT average %.3f not above ConvPG %.3f",
			intRes.Average[CoordBlackout], intRes.Average[ConvPG])
	}
	if fpRes.Average[WarpedGates] <= intRes.Average[WarpedGates] {
		t.Errorf("FP savings %.3f should exceed INT savings %.3f",
			fpRes.Average[WarpedGates], intRes.Average[WarpedGates])
	}
	if _, err := RunFig9(figRunner, isa.SFU); err == nil {
		t.Fatal("Fig. 9 accepted a non-CUDA-core class")
	}
}

func TestRunFig10(t *testing.T) {
	res, err := RunFig10(figRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, tech := range GatedTechniques() {
		g := res.Geomean[tech]
		if g <= 0.5 || g > 1.05 {
			t.Fatalf("%s geomean performance %v implausible", tech, g)
		}
	}
	// Naive Blackout is the most aggressive policy; Warped Gates must not
	// be slower than it (paper Fig. 10).
	if res.Geomean[WarpedGates] < res.Geomean[NaiveBlackout] {
		t.Errorf("WarpedGates %.3f slower than NaiveBlackout %.3f",
			res.Geomean[WarpedGates], res.Geomean[NaiveBlackout])
	}
}

func TestRunHWOverheadAndChipSavings(t *testing.T) {
	hw := RunHWOverhead(2)
	if hw.Overhead.AreaFraction <= 0 || hw.Overhead.AreaFraction > 0.001 {
		t.Fatalf("area fraction %v implausible", hw.Overhead.AreaFraction)
	}
	if !strings.Contains(hw.Table.String(), "Hardware overhead") {
		t.Fatal("hw table title missing")
	}
	cs := ChipSavings(0.3, 0.45)
	if cs.NumRows() != 4 {
		t.Fatalf("chip savings rows = %d", cs.NumRows())
	}
}
