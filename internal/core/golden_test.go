package core

import (
	"testing"

	"warpedgates/internal/config"
)

// TestGoldenCycleCounts locks the simulator's bit-reproducibility across
// refactors: exact cycle and instruction counts for representative
// benchmarks at a fixed small configuration. These values are not
// paper-meaningful; they are a determinism fingerprint. If an intentional
// model change moves them, regenerate with the commands in the comment and
// update — an *unintentional* change means the simulator stopped being
// deterministic or a refactor altered timing semantics.
//
// Regenerate with:
//
//	r := core.NewRunner(config.Small()); r.Scale = 0.2
//	r.Run(bench, tech) for each row, printing Cycles and IssuedTotal.
func TestGoldenCycleCounts(t *testing.T) {
	golden := []struct {
		bench  string
		tech   Technique
		cycles int64
		issued uint64
	}{
		{"hotspot", Baseline, 10867, 16896},
		{"hotspot", WarpedGates, 11264, 16896},
		{"nw", Baseline, 1933, 2048},
		{"nw", WarpedGates, 2056, 2048},
		{"bfs", Baseline, 13518, 4608},
		{"bfs", WarpedGates, 13839, 4608},
		{"sgemm", Baseline, 10362, 21504},
		{"sgemm", WarpedGates, 11020, 21504},
	}
	r := NewRunner(config.Small())
	r.Scale = 0.2
	for _, g := range golden {
		rep, err := r.Run(g.bench, g.tech)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cycles != g.cycles || rep.IssuedTotal != g.issued {
			t.Errorf("%s/%s: cycles=%d issued=%d, golden %d/%d",
				g.bench, g.tech, rep.Cycles, rep.IssuedTotal, g.cycles, g.issued)
		}
	}
}
