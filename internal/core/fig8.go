package core

import (
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/stats"
)

// Fig8Row is one benchmark's power-gating-opportunity metrics for the
// integer units (paper Figure 8; FP exhibits the same trends per the paper).
type Fig8Row struct {
	Benchmark string
	// IdleFrac maps technique -> fraction of idle cycles normalized to the
	// two-level baseline's fraction (Fig. 8a; >1 means more idle extracted).
	IdleFrac map[Technique]float64
	// CompMinusUncomp maps technique -> (compensated − uncompensated)
	// cycles as a fraction of all cycles (Fig. 8b; negative bars mean more
	// time uncompensated than compensated).
	CompMinusUncomp map[Technique]float64
	// WakeupsNorm maps technique -> wakeups normalized to ConvPG (Fig. 8c;
	// wakeup count is the direct proxy for gating overhead).
	WakeupsNorm map[Technique]float64
}

// Fig8Result carries the three panels of paper Figure 8 plus geomeans.
type Fig8Result struct {
	Rows []Fig8Row
	// Geomean* aggregate each panel the way the paper reports it.
	GeomeanIdle    map[Technique]float64
	GeomeanComp    map[Technique]float64
	GeomeanWakeups map[Technique]float64

	TableA *stats.Table
	TableB *stats.Table
	TableC *stats.Table
}

// fig8aTechs/fig8bTechs/fig8cTechs are the technique series of each panel,
// exactly as the paper's legends list them.
var (
	fig8aTechs = []Technique{GATESTech, CoordBlackout, WarpedGates}
	fig8bTechs = []Technique{ConvPG, GATESTech, WarpedGates}
	fig8cTechs = []Technique{GATESTech, CoordBlackout, WarpedGates}
)

// RunFig8 regenerates paper Figures 8a (normalized fraction of idle cycles),
// 8b (cycles in compensated state) and 8c (normalized wakeups) for the
// integer units.
func RunFig8(r *Runner) (*Fig8Result, error) {
	// Union of the three panels' series plus the two normalization runs.
	if err := r.Prefetch(techniqueJobs(r.Base, kernels.BenchmarkNames,
		Baseline, ConvPG, GATESTech, CoordBlackout, WarpedGates)); err != nil {
		return nil, err
	}
	res := &Fig8Result{
		GeomeanIdle:    map[Technique]float64{},
		GeomeanComp:    map[Technique]float64{},
		GeomeanWakeups: map[Technique]float64{},
	}
	series := map[Technique][]float64{}
	compSeries := map[Technique][]float64{}
	wakeSeries := map[Technique][]float64{}

	for _, b := range kernels.BenchmarkNames {
		base, err := r.Run(b, Baseline)
		if err != nil {
			return nil, err
		}
		conv, err := r.Run(b, ConvPG)
		if err != nil {
			return nil, err
		}
		row := Fig8Row{
			Benchmark:       b,
			IdleFrac:        map[Technique]float64{},
			CompMinusUncomp: map[Technique]float64{},
			WakeupsNorm:     map[Technique]float64{},
		}
		baseIdle := base.Domains[isa.INT].IdleFraction()
		convWakeups := float64(conv.Domains[isa.INT].Wakeups)

		for _, tech := range fig8aTechs {
			rep, err := r.Run(b, tech)
			if err != nil {
				return nil, err
			}
			v := stats.Ratio(rep.Domains[isa.INT].IdleFraction(), baseIdle)
			row.IdleFrac[tech] = v
			series[tech] = append(series[tech], v)
		}
		for _, tech := range fig8bTechs {
			rep, err := r.Run(b, tech)
			if err != nil {
				return nil, err
			}
			d := rep.Domains[isa.INT]
			v := d.CompensatedFraction() - d.UncompensatedFraction()
			row.CompMinusUncomp[tech] = v
			compSeries[tech] = append(compSeries[tech], v)
		}
		for _, tech := range fig8cTechs {
			rep, err := r.Run(b, tech)
			if err != nil {
				return nil, err
			}
			v := stats.Ratio(float64(rep.Domains[isa.INT].Wakeups), convWakeups)
			row.WakeupsNorm[tech] = v
			wakeSeries[tech] = append(wakeSeries[tech], v)
		}
		res.Rows = append(res.Rows, row)
	}

	for _, tech := range fig8aTechs {
		res.GeomeanIdle[tech] = stats.Geomean(series[tech])
	}
	for _, tech := range fig8bTechs {
		// Fig. 8b values can be negative; the paper quotes the mean share of
		// compensated cycles, so use the arithmetic mean here.
		res.GeomeanComp[tech] = stats.Mean(compSeries[tech])
	}
	for _, tech := range fig8cTechs {
		res.GeomeanWakeups[tech] = stats.Geomean(wakeSeries[tech])
	}

	res.TableA = fig8Table("Fig. 8a — normalized fraction of INT idle cycles",
		fig8aTechs, res.Rows, func(row Fig8Row, t Technique) float64 { return row.IdleFrac[t] },
		res.GeomeanIdle, "geomean")
	res.TableB = fig8Table("Fig. 8b — compensated minus uncompensated cycles (fraction)",
		fig8bTechs, res.Rows, func(row Fig8Row, t Technique) float64 { return row.CompMinusUncomp[t] },
		res.GeomeanComp, "mean")
	res.TableC = fig8Table("Fig. 8c — wakeups normalized to ConvPG",
		fig8cTechs, res.Rows, func(row Fig8Row, t Technique) float64 { return row.WakeupsNorm[t] },
		res.GeomeanWakeups, "geomean")
	return res, nil
}

// fig8Table renders one Figure 8 panel.
func fig8Table(title string, techs []Technique, rows []Fig8Row,
	get func(Fig8Row, Technique) float64, agg map[Technique]float64, aggName string) *stats.Table {

	header := []string{"benchmark"}
	for _, t := range techs {
		header = append(header, t.String())
	}
	tab := stats.NewTable(title, header...)
	for _, row := range rows {
		cells := []interface{}{row.Benchmark}
		for _, t := range techs {
			cells = append(cells, get(row, t))
		}
		tab.AddRowf(cells...)
	}
	cells := []interface{}{aggName}
	for _, t := range techs {
		cells = append(cells, agg[t])
	}
	tab.AddRowf(cells...)
	return tab
}
