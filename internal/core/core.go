package core
