package core

import (
	"testing"

	"warpedgates/internal/config"
)

func TestTechniqueApplyMapping(t *testing.T) {
	base := config.GTX480()
	cases := []struct {
		tech  Technique
		sched config.SchedulerKind
		gate  config.GatingKind
		adapt bool
	}{
		{Baseline, config.SchedTwoLevel, config.GateNone, false},
		{ConvPG, config.SchedTwoLevel, config.GateConventional, false},
		{GATESTech, config.SchedGATES, config.GateConventional, false},
		{NaiveBlackout, config.SchedGATES, config.GateNaiveBlackout, false},
		{CoordBlackout, config.SchedGATES, config.GateCoordBlackout, false},
		{WarpedGates, config.SchedGATES, config.GateCoordBlackout, true},
	}
	for _, c := range cases {
		got := c.tech.Apply(base)
		if got.Scheduler != c.sched || got.Gating != c.gate || got.AdaptiveIdleDetect != c.adapt {
			t.Errorf("%s -> %v/%v/adapt=%v, want %v/%v/%v", c.tech,
				got.Scheduler, got.Gating, got.AdaptiveIdleDetect, c.sched, c.gate, c.adapt)
		}
		// Machine geometry must pass through untouched.
		if got.NumSMs != base.NumSMs || got.BreakEven != base.BreakEven {
			t.Errorf("%s mutated machine parameters", c.tech)
		}
	}
}

func TestTechniqueRoundTripNames(t *testing.T) {
	for _, tech := range AllTechniques() {
		got, err := ParseTechnique(tech.String())
		if err != nil || got != tech {
			t.Errorf("round trip failed for %s: %v", tech, err)
		}
	}
	if _, err := ParseTechnique("nope"); err == nil {
		t.Error("unknown technique accepted")
	}
}

func TestGatedTechniquesExcludeBaseline(t *testing.T) {
	gts := GatedTechniques()
	if len(gts) != 5 {
		t.Fatalf("gated techniques = %d, want 5 (paper's five series)", len(gts))
	}
	for _, g := range gts {
		if g == Baseline {
			t.Fatal("baseline in gated techniques")
		}
	}
}

func TestApplyUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown technique Apply did not panic")
		}
	}()
	Technique(99).Apply(config.GTX480())
}
