package core

import (
	"warpedgates/internal/isa"
	"warpedgates/internal/stats"
)

// MixRow is one benchmark's measured dynamic instruction mix (paper Fig. 5a).
type MixRow struct {
	Benchmark string
	Mix       [isa.NumClasses]float64
}

// Fig5aResult carries the per-benchmark instruction mixes.
type Fig5aResult struct {
	Rows  []MixRow
	Table *stats.Table
}

// RunFig5a regenerates paper Figure 5a: the instruction mix of each
// benchmark, measured from the instructions actually issued during the
// baseline run (not from the static kernel profile).
func RunFig5a(r *Runner) (*Fig5aResult, error) {
	reps, err := r.RunAllParallel(Baseline)
	if err != nil {
		return nil, err
	}
	res := &Fig5aResult{}
	t := stats.NewTable("Fig. 5a — instruction mix (dynamic)", "benchmark", "INT", "FP", "SFU", "LDST")
	for _, nr := range reps {
		row := MixRow{Benchmark: nr.Benchmark, Mix: nr.Report.InstructionMix()}
		res.Rows = append(res.Rows, row)
		t.AddRowf(nr.Benchmark, row.Mix[isa.INT], row.Mix[isa.FP], row.Mix[isa.SFU], row.Mix[isa.LDST])
	}
	res.Table = t
	return res, nil
}

// WarpsRow is one benchmark's active-warp-set occupancy (paper Fig. 5b).
type WarpsRow struct {
	Benchmark string
	Max       int
	Average   float64
}

// Fig5bResult carries per-benchmark active warp statistics.
type Fig5bResult struct {
	Rows  []WarpsRow
	Table *stats.Table
}

// RunFig5b regenerates paper Figure 5b: the maximum and average size of the
// active warp set at runtime under the baseline two-level scheduler.
func RunFig5b(r *Runner) (*Fig5bResult, error) {
	reps, err := r.RunAllParallel(Baseline)
	if err != nil {
		return nil, err
	}
	res := &Fig5bResult{}
	t := stats.NewTable("Fig. 5b — runtime active warp set size", "benchmark", "max", "average")
	for _, nr := range reps {
		row := WarpsRow{Benchmark: nr.Benchmark, Max: nr.Report.ActiveWarpMax, Average: nr.Report.ActiveWarpAvg}
		res.Rows = append(res.Rows, row)
		t.AddRowf(nr.Benchmark, row.Max, row.Average)
	}
	res.Table = t
	return res, nil
}
