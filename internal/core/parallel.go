package core

import (
	"runtime"
	"sync"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
)

// Job is one simulation request for RunMany: a benchmark name and the full
// configuration to run it under.
type Job struct {
	Bench string
	Cfg   config.Config
}

// techniqueJobs builds the benches × techniques cross product against base,
// in (bench, technique) iteration order.
func techniqueJobs(base config.Config, benches []string, techs ...Technique) []Job {
	jobs := make([]Job, 0, len(benches)*len(techs))
	for _, b := range benches {
		for _, t := range techs {
			jobs = append(jobs, Job{Bench: b, Cfg: t.Apply(base)})
		}
	}
	return jobs
}

// workers returns the effective job-level worker-pool bound. When the base
// configuration runs each simulation on several goroutines
// (Base.IntraRunWorkers > 1), the job budget shrinks so that
// jobs × intra-run workers stays within the -j budget: the two axes multiply,
// and oversubscribing cores makes both slower.
func (r *Runner) workers() int {
	w := r.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if iw := r.Base.IntraRunWorkers; iw > 1 {
		w /= iw
		if w < 1 {
			w = 1
		}
	}
	return w
}

// RunMany simulates every job on a bounded worker pool (Parallelism workers,
// default GOMAXPROCS) and returns reports aligned with jobs. Duplicate jobs
// cost one simulation: the singleflight cache collapses them. On failure the
// first error wins: remaining queued jobs are cancelled, in-flight ones
// finish, and the error is returned with a nil slice. Results are positional,
// so output assembled from them is identical to a serial loop over jobs.
func (r *Runner) RunMany(jobs []Job) ([]*sim.Report, error) {
	out := make([]*sim.Report, len(jobs))
	workers := r.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			rep, err := r.RunCfg(j.Bench, j.Cfg)
			if err != nil {
				return nil, err
			}
			out[i] = rep
		}
		return out, nil
	}

	var (
		wg       sync.WaitGroup
		stopOnce sync.Once
		stop     = make(chan struct{})
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}
	next := make(chan int)
	go func() {
		defer close(next)
		for i := range jobs {
			select {
			case next <- i:
			case <-stop:
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rep, err := r.RunCfg(jobs[i].Bench, jobs[i].Cfg)
				if err != nil {
					fail(err)
					return
				}
				out[i] = rep
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// RunAllParallel simulates every paper benchmark under technique t on the
// worker pool and returns reports in kernels.BenchmarkNames order. Because
// each simulation is deterministic and results are assembled positionally,
// the output is byte-identical to serial RunAllOrdered.
func (r *Runner) RunAllParallel(t Technique) ([]NamedReport, error) {
	reps, err := r.RunMany(techniqueJobs(r.Base, kernels.BenchmarkNames, t))
	if err != nil {
		return nil, err
	}
	out := make([]NamedReport, len(reps))
	for i, rep := range reps {
		out[i] = NamedReport{Benchmark: kernels.BenchmarkNames[i], Report: rep}
	}
	return out, nil
}

// Prefetch warms the cache with every job in parallel, failing fast on the
// first error. Figure drivers call it with exactly the job set their serial
// aggregation loop consumes: the loop then runs entirely against the cache,
// which keeps figure assembly (and therefore output bytes) identical to the
// serial path while the simulations themselves use every core.
func (r *Runner) Prefetch(jobs []Job) error {
	_, err := r.RunMany(jobs)
	return err
}
