package core

import (
	"context"
	"math"
	"runtime"
	"sync"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
)

// Job is one simulation request for RunMany: a benchmark name and the full
// configuration to run it under.
type Job struct {
	Bench string
	Cfg   config.Config
}

// techniqueJobs builds the benches × techniques cross product against base,
// in (bench, technique) iteration order.
func techniqueJobs(base config.Config, benches []string, techs ...Technique) []Job {
	jobs := make([]Job, 0, len(benches)*len(techs))
	for _, b := range benches {
		for _, t := range techs {
			jobs = append(jobs, Job{Bench: b, Cfg: t.Apply(base)})
		}
	}
	return jobs
}

// budget returns the total core budget: -j when set, GOMAXPROCS otherwise.
func (r *Runner) budget() int {
	w := r.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// workers returns the effective job-level worker-pool bound. When the base
// configuration runs each simulation on several goroutines
// (Base.IntraRunWorkers > 1), the job budget shrinks so that
// jobs × intra-run workers stays within the -j budget: the two axes multiply,
// and oversubscribing cores makes both slower. The divisor is the *effective*
// intra-run worker count — the engine clamps IntraRunWorkers to NumSMs, so
// dividing by the raw knob would starve the job pool for goroutines that
// never exist (e.g. -j 8 with IntraRunWorkers=64 on a 2-SM machine must
// yield 4 job workers, not 1).
func (r *Runner) workers() int {
	w := r.budget()
	if iw := r.Base.EffectiveIntraRunWorkers(); iw > 1 {
		w /= iw
		if w < 1 {
			w = 1
		}
	}
	return w
}

// RunMany simulates every job on a bounded worker pool; it is RunManyCtx
// under a background context.
func (r *Runner) RunMany(jobs []Job) ([]*sim.Report, error) {
	return r.RunManyCtx(context.Background(), jobs)
}

// RunManyCtx simulates every job on a bounded worker pool (Parallelism
// workers, default GOMAXPROCS) and returns reports aligned with jobs.
// Duplicate jobs cost one simulation: the singleflight cache collapses them.
// Results are positional, so output assembled from them is identical to a
// serial loop over jobs.
//
// Under SchedAdaptive (the default) the dispatcher admits jobs in LPT order —
// longest predicted first, by the cost model — and the budget is elastic at
// the tail: surplus cores the batch could not use as job-level workers seed a
// WorkerLeases pool, each worker returns its share when the queue drains, and
// still-running simulations absorb the tokens as extra intra-run workers at
// their next epoch boundary. Neither mechanism can change a result: results
// are positional, jobs deterministic at any worker count. SchedStatic keeps
// submission order and a fixed split.
//
// Cancellation and failure share one mechanism: the job context. The first
// job error cancels it with that error as the cause, which stops the
// dispatcher (queued jobs never start) and aborts in-flight simulations at
// their next epoch boundary; a caller canceling ctx does exactly the same
// with its own cause. Either way RunManyCtx returns only after every worker
// has drained, with a nil slice and the first-cause error.
func (r *Runner) RunManyCtx(ctx context.Context, jobs []Job) ([]*sim.Report, error) {
	out := make([]*sim.Report, len(jobs))
	workers := r.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			rep, err := r.RunCfgCtx(ctx, j.Bench, j.Cfg)
			if err != nil {
				return nil, err
			}
			out[i] = rep
		}
		return out, nil
	}

	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	var leases *WorkerLeases
	iw := r.Base.EffectiveIntraRunWorkers()
	if r.Sched == SchedAdaptive {
		cost := r.costModel()
		pred := make([]float64, len(jobs))
		for i, j := range jobs {
			// A job that will fail its cheap validation (unknown benchmark,
			// invalid config) sorts ahead of everything: LPT must not bury a
			// doomed job behind long simulations, or the batch's fail-fast
			// guarantee becomes fail-after-the-longest-cell. The job still
			// runs normally — this only restores its dispatch position.
			if _, err := kernels.Benchmark(j.Bench); err != nil {
				pred[i] = math.Inf(1)
			} else if err := j.Cfg.Validate(); err != nil {
				pred[i] = math.Inf(1)
			} else {
				pred[i] = cost.Predict(j.Bench, j.Cfg, r.Scale)
			}
		}
		order = lptOrder(pred)
		leases = NewWorkerLeases(r.budget() - workers*iw)
		ctx = WithWorkerLeases(ctx, leases)
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	next := make(chan int)
	go func() {
		defer close(next)
		for _, i := range order {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if leases != nil {
				// The worker's budget share outlives it as lease tokens for
				// the jobs still running (tail reallocation).
				defer leases.Release(iw)
			}
			for i := range next {
				rep, err := r.RunCfgCtx(ctx, jobs[i].Bench, jobs[i].Cfg)
				if err != nil {
					cancel(err)
					return
				}
				out[i] = rep
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(ctx)
	}
	return out, nil
}

// RunAllParallel simulates every paper benchmark under technique t on the
// worker pool and returns reports in kernels.BenchmarkNames order. Because
// each simulation is deterministic and results are assembled positionally,
// the output is byte-identical to serial RunAllOrdered.
func (r *Runner) RunAllParallel(t Technique) ([]NamedReport, error) {
	reps, err := r.RunMany(techniqueJobs(r.Base, kernels.BenchmarkNames, t))
	if err != nil {
		return nil, err
	}
	out := make([]NamedReport, len(reps))
	for i, rep := range reps {
		out[i] = NamedReport{Benchmark: kernels.BenchmarkNames[i], Report: rep}
	}
	return out, nil
}

// Prefetch warms the cache with every job in parallel, failing fast on the
// first error. Figure drivers call it with exactly the job set their serial
// aggregation loop consumes: the loop then runs entirely against the cache,
// which keeps figure assembly (and therefore output bytes) identical to the
// serial path while the simulations themselves use every core.
func (r *Runner) Prefetch(jobs []Job) error {
	_, err := r.RunMany(jobs)
	return err
}

// PrefetchCtx is Prefetch under a context; see RunManyCtx for the
// cancellation contract.
func (r *Runner) PrefetchCtx(ctx context.Context, jobs []Job) error {
	_, err := r.RunManyCtx(ctx, jobs)
	return err
}
