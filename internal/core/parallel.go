package core

import (
	"context"
	"runtime"
	"sync"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
)

// Job is one simulation request for RunMany: a benchmark name and the full
// configuration to run it under.
type Job struct {
	Bench string
	Cfg   config.Config
}

// techniqueJobs builds the benches × techniques cross product against base,
// in (bench, technique) iteration order.
func techniqueJobs(base config.Config, benches []string, techs ...Technique) []Job {
	jobs := make([]Job, 0, len(benches)*len(techs))
	for _, b := range benches {
		for _, t := range techs {
			jobs = append(jobs, Job{Bench: b, Cfg: t.Apply(base)})
		}
	}
	return jobs
}

// workers returns the effective job-level worker-pool bound. When the base
// configuration runs each simulation on several goroutines
// (Base.IntraRunWorkers > 1), the job budget shrinks so that
// jobs × intra-run workers stays within the -j budget: the two axes multiply,
// and oversubscribing cores makes both slower.
func (r *Runner) workers() int {
	w := r.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if iw := r.Base.IntraRunWorkers; iw > 1 {
		w /= iw
		if w < 1 {
			w = 1
		}
	}
	return w
}

// RunMany simulates every job on a bounded worker pool; it is RunManyCtx
// under a background context.
func (r *Runner) RunMany(jobs []Job) ([]*sim.Report, error) {
	return r.RunManyCtx(context.Background(), jobs)
}

// RunManyCtx simulates every job on a bounded worker pool (Parallelism
// workers, default GOMAXPROCS) and returns reports aligned with jobs.
// Duplicate jobs cost one simulation: the singleflight cache collapses them.
// Results are positional, so output assembled from them is identical to a
// serial loop over jobs.
//
// Cancellation and failure share one mechanism: the job context. The first
// job error cancels it with that error as the cause, which stops the
// dispatcher (queued jobs never start) and aborts in-flight simulations at
// their next epoch boundary; a caller canceling ctx does exactly the same
// with its own cause. Either way RunManyCtx returns only after every worker
// has drained, with a nil slice and the first-cause error.
func (r *Runner) RunManyCtx(ctx context.Context, jobs []Job) ([]*sim.Report, error) {
	out := make([]*sim.Report, len(jobs))
	workers := r.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			rep, err := r.RunCfgCtx(ctx, j.Bench, j.Cfg)
			if err != nil {
				return nil, err
			}
			out[i] = rep
		}
		return out, nil
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	next := make(chan int)
	go func() {
		defer close(next)
		for i := range jobs {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rep, err := r.RunCfgCtx(ctx, jobs[i].Bench, jobs[i].Cfg)
				if err != nil {
					cancel(err)
					return
				}
				out[i] = rep
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(ctx)
	}
	return out, nil
}

// RunAllParallel simulates every paper benchmark under technique t on the
// worker pool and returns reports in kernels.BenchmarkNames order. Because
// each simulation is deterministic and results are assembled positionally,
// the output is byte-identical to serial RunAllOrdered.
func (r *Runner) RunAllParallel(t Technique) ([]NamedReport, error) {
	reps, err := r.RunMany(techniqueJobs(r.Base, kernels.BenchmarkNames, t))
	if err != nil {
		return nil, err
	}
	out := make([]NamedReport, len(reps))
	for i, rep := range reps {
		out[i] = NamedReport{Benchmark: kernels.BenchmarkNames[i], Report: rep}
	}
	return out, nil
}

// Prefetch warms the cache with every job in parallel, failing fast on the
// first error. Figure drivers call it with exactly the job set their serial
// aggregation loop consumes: the loop then runs entirely against the cache,
// which keeps figure assembly (and therefore output bytes) identical to the
// serial path while the simulations themselves use every core.
func (r *Runner) Prefetch(jobs []Job) error {
	_, err := r.RunMany(jobs)
	return err
}

// PrefetchCtx is Prefetch under a context; see RunManyCtx for the
// cancellation contract.
func (r *Runner) PrefetchCtx(ctx context.Context, jobs []Job) error {
	_, err := r.RunManyCtx(ctx, jobs)
	return err
}
