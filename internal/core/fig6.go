package core

import (
	"fmt"

	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/stats"
)

// Fig6Point is one (critical wakeups, runtime) observation for one benchmark
// at one static idle-detect value.
type Fig6Point struct {
	IdleDetect        int
	CriticalsPer1000  float64 // per SM, INT+FP combined
	NormalizedRuntime float64 // technique cycles / baseline cycles (>= ~1)
}

// Fig6Row is one benchmark's sweep and its Pearson correlation coefficient —
// the number the paper prints next to each benchmark name in Figure 6.
type Fig6Row struct {
	Benchmark string
	Points    []Fig6Point
	Pearson   float64
}

// Fig6Result carries the whole Figure 6 study.
type Fig6Result struct {
	Rows  []Fig6Row
	Table *stats.Table
}

// RunFig6 regenerates paper Figure 6: for each benchmark, Blackout power
// gating is run with static idle-detect values swept over [lo, hi] (the
// paper uses 0–10), and the per-1000-cycle critical wakeup rate is
// correlated with the normalized runtime. Strong positive correlation is the
// paper's justification for using critical wakeups as the control signal of
// Adaptive idle detect.
func RunFig6(r *Runner, lo, hi int) (*Fig6Result, error) {
	var jobs []Job
	for _, b := range kernels.BenchmarkNames {
		jobs = append(jobs, Job{Bench: b, Cfg: Baseline.Apply(r.Base)})
		for id := lo; id <= hi; id++ {
			cfg := CoordBlackout.Apply(r.Base)
			cfg.IdleDetect = id
			jobs = append(jobs, Job{Bench: b, Cfg: cfg})
		}
	}
	if err := r.Prefetch(jobs); err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	t := stats.NewTable("Fig. 6 — critical wakeups vs normalized runtime (Pearson r)",
		"benchmark", "r", "points(idle-detect:criticals/1k:runtime)")
	for _, b := range kernels.BenchmarkNames {
		base, err := r.Run(b, Baseline)
		if err != nil {
			return nil, err
		}
		row := Fig6Row{Benchmark: b}
		var xs, ys []float64
		for id := lo; id <= hi; id++ {
			cfg := CoordBlackout.Apply(r.Base)
			cfg.IdleDetect = id
			rep, err := r.RunCfg(b, cfg)
			if err != nil {
				return nil, err
			}
			crit := rep.CriticalWakeupsPer1000(isa.INT) + rep.CriticalWakeupsPer1000(isa.FP)
			runtime := stats.Ratio(float64(rep.Cycles), float64(base.Cycles))
			row.Points = append(row.Points, Fig6Point{
				IdleDetect:        id,
				CriticalsPer1000:  crit,
				NormalizedRuntime: runtime,
			})
			xs = append(xs, crit)
			ys = append(ys, runtime)
		}
		row.Pearson = stats.Pearson(xs, ys)
		res.Rows = append(res.Rows, row)

		series := ""
		for _, p := range row.Points {
			if series != "" {
				series += " "
			}
			series += fmt.Sprintf("%d:%.2f:%.3f", p.IdleDetect, p.CriticalsPer1000, p.NormalizedRuntime)
		}
		t.AddRowf(b, row.Pearson, series)
	}
	res.Table = t
	return res, nil
}
