package core

import (
	"warpedgates/internal/kernels"
	"warpedgates/internal/stats"
)

// Fig10Row is one benchmark's normalized performance per technique
// (paper Figure 10; 1.0 = no slowdown relative to the no-gating baseline).
type Fig10Row struct {
	Benchmark   string
	Performance map[Technique]float64
}

// Fig10Result carries the performance comparison with per-technique geomeans.
type Fig10Result struct {
	Rows    []Fig10Row
	Geomean map[Technique]float64
	Table   *stats.Table
}

// RunFig10 regenerates paper Figure 10: the performance impact of each
// gating technique, normalized to the no-gating two-level baseline.
func RunFig10(r *Runner) (*Fig10Result, error) {
	if err := r.Prefetch(techniqueJobs(r.Base, kernels.BenchmarkNames,
		append([]Technique{Baseline}, GatedTechniques()...)...)); err != nil {
		return nil, err
	}
	res := &Fig10Result{Geomean: map[Technique]float64{}}
	series := map[Technique][]float64{}
	for _, b := range kernels.BenchmarkNames {
		row := Fig10Row{Benchmark: b, Performance: map[Technique]float64{}}
		for _, tech := range GatedTechniques() {
			p, err := r.Performance(b, tech)
			if err != nil {
				return nil, err
			}
			row.Performance[tech] = p
			series[tech] = append(series[tech], p)
		}
		res.Rows = append(res.Rows, row)
	}
	for _, tech := range GatedTechniques() {
		res.Geomean[tech] = stats.Geomean(series[tech])
	}

	header := []string{"benchmark"}
	for _, t := range GatedTechniques() {
		header = append(header, t.String())
	}
	tab := stats.NewTable("Fig. 10 — normalized performance (1.0 = baseline)", header...)
	for _, row := range res.Rows {
		cells := []interface{}{row.Benchmark}
		for _, t := range GatedTechniques() {
			cells = append(cells, row.Performance[t])
		}
		tab.AddRowf(cells...)
	}
	cells := []interface{}{"geomean"}
	for _, t := range GatedTechniques() {
		cells = append(cells, res.Geomean[t])
	}
	tab.AddRowf(cells...)
	res.Table = tab
	return res, nil
}
