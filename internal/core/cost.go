package core

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
)

// The cost model behind the makespan-aware scheduler: a per-job wall-time
// prediction keyed by (bench, sms, scale, sampling), used only to *order* and
// *provision* work (LPT admission, tail reallocation) — never to change what
// a job computes, so a wrong prediction costs wall time, not correctness.
//
// Predictions are seeded from a committed calibration table (costdata.json,
// regenerated deterministically by `warpedgates bench -calibrate`): the
// device cycles each benchmark runs at one reference point. Device cycles are
// deterministic, so the table is reproducible on any machine; the machine-
// dependent part — nanoseconds per predicted unit — is learned online as a
// per-benchmark EWMA from completed simulations.

// Calibration reference point. The committed table is measured at this
// geometry and scale; predictions extrapolate linearly from it. Two SMs keeps
// regeneration cheap while exercising the shared memory system.
const (
	CalCostSMS   = 2
	CalCostScale = 0.1
)

// costEWMAAlpha weights the newest wall-time observation; 0.3 converges
// within a few repeats of a bench while riding out scheduler noise from
// concurrent jobs sharing the machine.
const costEWMAAlpha = 0.3

// CostCell is one benchmark's calibration measurement at the reference point.
type CostCell struct {
	Bench  string `json:"bench"`
	Cycles int64  `json:"cycles"`
	Instrs uint64 `json:"instrs"`
}

// CostTable is the committed calibration artifact: deterministic per-bench
// device cycles at the reference point, in kernels.BenchmarkNames order.
type CostTable struct {
	Version   int        `json:"version"`
	SMS       int        `json:"sms"`
	Scale     float64    `json:"scale"`
	Technique string     `json:"technique"`
	Cells     []CostCell `json:"cells"`
}

// Encode renders the table as the canonical committed form: indented JSON
// with a trailing newline, cells in benchmark order. Byte-deterministic, so
// `bench -calibrate` regenerating an unchanged table produces an unchanged
// file.
func (t *CostTable) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// CalibrateCostTable measures every paper benchmark at the calibration
// reference point (Baseline technique, serial engine) and returns the table.
// Cycle counts are deterministic, so repeated calibrations — on any machine —
// produce identical tables.
func CalibrateCostTable() (*CostTable, error) {
	base := config.GTX480()
	base.NumSMs = CalCostSMS
	r := NewRunner(base)
	r.Scale = CalCostScale
	t := &CostTable{
		Version:   1,
		SMS:       CalCostSMS,
		Scale:     CalCostScale,
		Technique: Baseline.String(),
	}
	for _, b := range kernels.BenchmarkNames {
		rep, err := r.Run(b, Baseline)
		if err != nil {
			return nil, fmt.Errorf("core: calibrating %s: %w", b, err)
		}
		t.Cells = append(t.Cells, CostCell{Bench: b, Cycles: rep.Cycles, Instrs: rep.IssuedTotal})
	}
	return t, nil
}

//go:embed costdata.json
var costData []byte

var (
	defaultCostOnce sync.Once
	defaultCost     *CostModel
)

// DefaultCostModel returns the process-wide model seeded from the committed
// calibration table. Runners without an explicit Cost share it, so wall-time
// observations from one matrix refine the next one's ordering.
func DefaultCostModel() *CostModel {
	defaultCostOnce.Do(func() {
		var t CostTable
		if err := json.Unmarshal(costData, &t); err != nil {
			// An undecodable committed table cannot fail runs: predictions
			// degrade to uniform and LPT becomes submission order.
			t = CostTable{SMS: CalCostSMS, Scale: CalCostScale}
		}
		defaultCost = NewCostModel(&t)
	})
	return defaultCost
}

// CostModel predicts per-job wall time. Safe for concurrent use.
type CostModel struct {
	calSMS   float64
	calScale float64

	mu sync.Mutex
	// base is the calibration prior: reference-point device cycles per bench.
	base map[string]float64
	// mean is the prior for benches absent from the table, so ordering stays
	// total even for workloads the committed table predates.
	mean float64
	// factor is the learned ns-per-predicted-unit EWMA per bench (1.0 until
	// the first observation; relative order is all LPT needs, so the unitless
	// start is harmless).
	factor map[string]float64
}

// NewCostModel builds a model over a calibration table.
func NewCostModel(t *CostTable) *CostModel {
	m := &CostModel{
		calSMS:   float64(t.SMS),
		calScale: t.Scale,
		base:     make(map[string]float64, len(t.Cells)),
		factor:   make(map[string]float64),
		mean:     1,
	}
	if m.calSMS <= 0 {
		m.calSMS = CalCostSMS
	}
	if m.calScale <= 0 {
		m.calScale = CalCostScale
	}
	var sum float64
	for _, c := range t.Cells {
		m.base[c.Bench] = float64(c.Cycles)
		sum += float64(c.Cycles)
	}
	if len(t.Cells) > 0 {
		m.mean = sum / float64(len(t.Cells))
	}
	return m
}

// prior extrapolates the calibration cycles to the job's geometry: work
// scales with the kernel scale (iterations and CTAs) and with the SM count
// (CTAsPerSM is per-SM, so a bigger array carries proportionally more work);
// a sampled run simulates roughly its detail fraction of the cycles.
func (m *CostModel) prior(bench string, cfg config.Config, scale float64) float64 {
	m.mu.Lock()
	cycles, ok := m.base[bench]
	if !ok {
		cycles = m.mean
	}
	m.mu.Unlock()
	p := cycles * (scale / m.calScale) * (float64(cfg.NumSMs) / m.calSMS)
	if cfg.Sampling() {
		frac := float64(cfg.SampleDetailCycles) / float64(cfg.SamplePeriod)
		if frac < 0.05 {
			frac = 0.05
		}
		p *= frac
	}
	return p
}

// Predict estimates the job's wall cost. The unit is nanoseconds once the
// bench has been observed, and calibration units before that; either way the
// scale is consistent per bench, which is all ordering and reallocation need.
func (m *CostModel) Predict(bench string, cfg config.Config, scale float64) float64 {
	p := m.prior(bench, cfg, scale)
	m.mu.Lock()
	if f, ok := m.factor[bench]; ok {
		p *= f
	}
	m.mu.Unlock()
	return p
}

// Observe folds one completed simulation's measured wall time into the
// bench's EWMA correction factor. Wall times under concurrency include
// contention — that is the point: the model predicts cost on the machine as
// it is actually loaded.
func (m *CostModel) Observe(bench string, cfg config.Config, scale float64, wall time.Duration) {
	p := m.prior(bench, cfg, scale)
	if p <= 0 || wall <= 0 {
		return
	}
	f := float64(wall.Nanoseconds()) / p
	m.mu.Lock()
	if prev, ok := m.factor[bench]; ok {
		f = costEWMAAlpha*f + (1-costEWMAAlpha)*prev
	}
	m.factor[bench] = f
	m.mu.Unlock()
}
