package core

import (
	"testing"
)

func TestRunFig6NarrowSweep(t *testing.T) {
	// A 3-point idle-detect sweep keeps the test fast while exercising the
	// full pipeline: per-benchmark Blackout runs, the critical-wakeup
	// metric, and the Pearson correlation.
	res, err := RunFig6(figRunner, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Points) != 3 {
			t.Fatalf("%s has %d points, want 3", row.Benchmark, len(row.Points))
		}
		if row.Pearson < -1.0001 || row.Pearson > 1.0001 {
			t.Fatalf("%s Pearson r = %v out of bounds", row.Benchmark, row.Pearson)
		}
		for _, p := range row.Points {
			if p.CriticalsPer1000 < 0 {
				t.Fatalf("%s negative critical rate", row.Benchmark)
			}
			if p.NormalizedRuntime <= 0 {
				t.Fatalf("%s non-positive runtime", row.Benchmark)
			}
		}
	}
}

func TestRunFig8(t *testing.T) {
	res, err := RunFig8(figRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Fig. 8c: Coordinated Blackout reduces wakeups relative to ConvPG on
	// average (paper: -26%), and Warped Gates reduces them further
	// (paper: -46%).
	if res.GeomeanWakeups[CoordBlackout] >= 1.0 {
		t.Errorf("CoordBlackout wakeups %.3f not below ConvPG", res.GeomeanWakeups[CoordBlackout])
	}
	if res.GeomeanWakeups[WarpedGates] > res.GeomeanWakeups[CoordBlackout] {
		t.Errorf("WarpedGates wakeups %.3f above CoordBlackout %.3f",
			res.GeomeanWakeups[WarpedGates], res.GeomeanWakeups[CoordBlackout])
	}
	// Fig. 8b: every technique nets positive compensated time on average,
	// and Warped Gates spends a substantial share of cycles compensated.
	// (The paper's ConvPG < GATES < WarpedGates ordering on this panel does
	// not fully reproduce here because our ready-detect ConvPG gates more
	// selectively than the paper's; see EXPERIMENTS.md.)
	for _, tech := range fig8bTechs {
		if res.GeomeanComp[tech] <= 0 {
			t.Errorf("%s mean compensated share %.3f not positive", tech, res.GeomeanComp[tech])
		}
	}
	if res.GeomeanComp[WarpedGates] < 0.10 {
		t.Errorf("WarpedGates compensated share %.3f implausibly low", res.GeomeanComp[WarpedGates])
	}
	for _, tab := range []string{res.TableA.String(), res.TableB.String(), res.TableC.String()} {
		if len(tab) == 0 {
			t.Fatal("empty fig8 table")
		}
	}
}

func TestRunFig11(t *testing.T) {
	bet, err := RunFig11BET(figRunner, []int{9, 19})
	if err != nil {
		t.Fatal(err)
	}
	if len(bet.Points) != 4 { // 2 techniques x 2 values
		t.Fatalf("points = %d", len(bet.Points))
	}
	// Paper Fig. 11a: Warped Gates outperforms conventional gating on
	// energy at every break-even time, and the gap widens with BET.
	gap := map[int]float64{}
	for _, v := range []int{9, 19} {
		var conv, wg float64
		for _, p := range bet.Points {
			if p.ParamValue != v {
				continue
			}
			if p.Technique == ConvPG {
				conv = p.IntSavings
			} else {
				wg = p.IntSavings
			}
		}
		if wg <= conv {
			t.Errorf("BET %d: WarpedGates %.3f not above ConvPG %.3f", v, wg, conv)
		}
		gap[v] = wg - conv
	}
	if gap[19] <= gap[9] {
		t.Errorf("savings gap did not widen with BET: %.3f vs %.3f", gap[19], gap[9])
	}

	wake, err := RunFig11Wakeup(figRunner, []int{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 11b: conventional gating degrades sharply with wakeup
	// delay while Warped Gates holds up. We assert the degradation
	// ordering (ConvPG loses more performance going 3 -> 9 than Warped
	// Gates does) and the energy win at the high delay.
	var convPerf3, convPerf9, wgPerf3, wgPerf9, conv9, wg9 float64
	for _, p := range wake.Points {
		switch {
		case p.Technique == ConvPG && p.ParamValue == 3:
			convPerf3 = p.Perf
		case p.Technique == ConvPG && p.ParamValue == 9:
			convPerf9, conv9 = p.Perf, p.IntSavings
		case p.Technique == WarpedGates && p.ParamValue == 3:
			wgPerf3 = p.Perf
		case p.Technique == WarpedGates && p.ParamValue == 9:
			wgPerf9, wg9 = p.Perf, p.IntSavings
		}
	}
	if convPerf9 >= convPerf3 {
		t.Errorf("ConvPG performance did not degrade with wakeup delay: %.3f vs %.3f",
			convPerf9, convPerf3)
	}
	if wgPerf9 >= wgPerf3 {
		t.Errorf("WarpedGates performance did not degrade with wakeup delay: %.3f vs %.3f",
			wgPerf9, wgPerf3)
	}
	// The degradation ordering (ConvPG loses more than Warped Gates, paper
	// Fig. 11b) holds at evaluation scale but is noisy at this test scale;
	// the energy ordering is robust at any scale.
	if wg9 <= conv9 {
		t.Errorf("WarpedGates savings at wakeup 9 (%.3f) not above ConvPG (%.3f)", wg9, conv9)
	}
}

func TestRunFig11EmptyValues(t *testing.T) {
	if _, err := RunFig11BET(figRunner, nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
}
