package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
)

// Regenerate the corpus after an intentional model change with:
//
//	go test ./internal/core -run GoldenMatrix -update
//
// (The flag lives only in this package, so pass the package path explicitly —
// `go test ./... -update` would fail unrelated test binaries.)
var updateGolden = flag.Bool("update", false, "rewrite the golden corpus under testdata/")

const goldenMatrixPath = "testdata/golden_matrix.txt"

// goldenMatrixScale keeps corpus regeneration and drift checks to a couple
// of seconds while still covering every benchmark and technique.
const goldenMatrixScale = 0.1

const goldenHeader = `# Golden corpus: fingerprint of every benchmark x technique cell at
# config.Small() scale ` + "0.1" + `. One line per cell: bench technique counters.
# Regenerate after an intentional model change:
#   go test ./internal/core -run GoldenMatrix -update
`

// goldenRunner builds the corpus runner; par is the worker bound (0 = cores).
func goldenRunner(par int) *Runner {
	r := NewRunner(config.Small())
	r.Scale = goldenMatrixScale
	r.Parallelism = par
	return r
}

// goldenCorpus renders the full corpus file content for runner r.
func goldenCorpus(r *Runner) (string, error) {
	body, err := MatrixFingerprint(r, kernels.BenchmarkNames, AllTechniques())
	if err != nil {
		return "", err
	}
	return goldenHeader + body, nil
}

// TestGoldenMatrixCorpus pins the complete 18-benchmark × 6-technique matrix
// against the committed corpus, line by line. Any behavioural drift in the
// simulator — scheduling, gating, memory, even a float rounding change —
// shows up as a named (bench, technique) diff here.
func TestGoldenMatrixCorpus(t *testing.T) {
	got, err := goldenCorpus(goldenRunner(0))
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenMatrixPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenMatrixPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenMatrixPath)
		return
	}
	wantBytes, err := os.ReadFile(goldenMatrixPath)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/core -run GoldenMatrix -update)", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	if len(gotLines) != len(wantLines) {
		t.Errorf("corpus has %d lines, committed file has %d", len(gotLines), len(wantLines))
	}
	diffs := 0
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] == wantLines[i] {
			continue
		}
		diffs++
		if diffs <= 5 {
			t.Errorf("line %d drifted:\n  got:  %s\n  want: %s", i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("golden corpus drift: %d line(s) differ (intentional change? regenerate with: go test ./internal/core -run GoldenMatrix -update)", diffs)
}

// TestGoldenMatrixParallelismStable is the byte-stability acceptance check:
// a -j 1 and a -j 8 runner render the identical corpus. Fresh runners on both
// sides, so nothing is served from a shared cache.
func TestGoldenMatrixParallelismStable(t *testing.T) {
	if testing.Short() {
		t.Skip("serial full matrix is slow; skipped with -short")
	}
	serial, err := goldenCorpus(goldenRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := goldenCorpus(goldenRunner(8))
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		sl, pl := strings.Split(serial, "\n"), strings.Split(parallel, "\n")
		for i := 0; i < len(sl) && i < len(pl); i++ {
			if sl[i] != pl[i] {
				t.Fatalf("corpus not byte-stable across -j 1 vs -j 8; first diff at line %d:\n  -j 1: %s\n  -j 8: %s",
					i+1, sl[i], pl[i])
			}
		}
		t.Fatal("corpus not byte-stable across -j 1 vs -j 8 (length mismatch)")
	}
}

// goldenWorkersRunner builds a fresh corpus runner whose base runs every
// simulation on the given intra-run worker count.
func goldenWorkersRunner(workers int, noFF bool) *Runner {
	base := config.Small()
	base.IntraRunWorkers = workers
	base.DisableFastForward = noFF
	r := NewRunner(base)
	r.Scale = goldenMatrixScale
	r.Parallelism = 1
	return r
}

// TestGoldenMatrixIntraRunWorkersStable is the tentpole's byte-stability
// acceptance check: the full 108-cell corpus is byte-identical between the
// serial engine and the phase-split parallel engine at workers ∈ {4, NumSMs},
// with the idle fast-forward both on and off. Fresh runners on every side —
// and IntraRunWorkers is excluded from the cache key anyway, precisely
// because of this equivalence.
func TestGoldenMatrixIntraRunWorkersStable(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated full matrices are slow; skipped with -short")
	}
	for _, noFF := range []bool{false, true} {
		serial, err := goldenCorpus(goldenWorkersRunner(1, noFF))
		if err != nil {
			t.Fatal(err)
		}
		// Workers beyond NumSMs (Small has 2) clamp to NumSMs, so 4 also
		// exercises the clamp; 2 is the one-SM-per-worker split.
		for _, workers := range []int{4, config.Small().NumSMs} {
			par, err := goldenCorpus(goldenWorkersRunner(workers, noFF))
			if err != nil {
				t.Fatal(err)
			}
			if serial == par {
				continue
			}
			sl, pl := strings.Split(serial, "\n"), strings.Split(par, "\n")
			for i := 0; i < len(sl) && i < len(pl); i++ {
				if sl[i] != pl[i] {
					t.Fatalf("corpus not byte-stable across workers 1 vs %d (noFF=%v); first diff at line %d:\n  serial:   %s\n  parallel: %s",
						workers, noFF, i+1, sl[i], pl[i])
				}
			}
			t.Fatalf("corpus not byte-stable across workers 1 vs %d (noFF=%v): length mismatch", workers, noFF)
		}
	}
}
