package core

import (
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/power"
	"warpedgates/internal/stats"
)

// EnergySplit is one stacked bar of paper Figure 1b: the energy breakdown of
// a unit class normalized to that unit's no-gating baseline total.
type EnergySplit struct {
	Technique Technique
	Class     isa.Class
	Dynamic   float64
	Overhead  float64
	Static    float64
}

// Total returns the normalized total energy of the bar.
func (e EnergySplit) Total() float64 { return e.Dynamic + e.Overhead + e.Static }

// Fig1bResult carries the four bars of paper Figure 1b: baseline and
// conventional power gating, each for the INT and FP units, averaged over
// the benchmark suite.
type Fig1bResult struct {
	Bars  []EnergySplit
	Table *stats.Table
}

// RunFig1b regenerates paper Figure 1b: the average energy breakdown of the
// integer and floating point units without gating and under conventional
// power gating, normalized per benchmark to the no-gating total of the unit.
func RunFig1b(r *Runner) (*Fig1bResult, error) {
	if err := r.Prefetch(techniqueJobs(r.Base, kernels.BenchmarkNames, Baseline, ConvPG)); err != nil {
		return nil, err
	}
	model := power.Default(r.Base.BreakEven)
	res := &Fig1bResult{}
	for _, tech := range []Technique{Baseline, ConvPG} {
		for _, class := range []isa.Class{isa.INT, isa.FP} {
			var dyn, ovh, sta, n float64
			for _, b := range kernels.BenchmarkNames {
				if class == isa.FP && kernels.IntegerOnly(b) {
					continue
				}
				base, err := r.Run(b, Baseline)
				if err != nil {
					return nil, err
				}
				rep, err := r.Run(b, tech)
				if err != nil {
					return nil, err
				}
				denom := model.Analyze(base, class).BaselineTotal()
				if denom == 0 {
					continue
				}
				bd := model.AnalyzeAgainst(rep, base, class)
				dyn += bd.Dynamic / denom
				ovh += bd.Overhead / denom
				sta += bd.Static / denom
				n++
			}
			if n > 0 {
				dyn, ovh, sta = dyn/n, ovh/n, sta/n
			}
			res.Bars = append(res.Bars, EnergySplit{
				Technique: tech, Class: class, Dynamic: dyn, Overhead: ovh, Static: sta,
			})
		}
	}

	t := stats.NewTable("Fig. 1b — normalized energy breakdown of execution units",
		"technique", "unit", "dynamic", "overhead", "static", "total")
	for _, b := range res.Bars {
		t.AddRowf(b.Technique.String(), b.Class.String(), b.Dynamic, b.Overhead, b.Static, b.Total())
	}
	res.Table = t
	return res, nil
}
