package core

import (
	"warpedgates/internal/power"
	"warpedgates/internal/stats"
)

// HWOverheadResult carries the paper's §7.5 hardware-overhead analysis.
type HWOverheadResult struct {
	Overhead power.Overhead
	Table    *stats.Table
}

// RunHWOverhead reproduces paper §7.5: the area and power cost of the
// counters Warped Gates adds to each SM, relative to the SM totals.
func RunHWOverhead(numSPClusters int) *HWOverheadResult {
	specs := power.WarpedGatesCounters(numSPClusters)
	return &HWOverheadResult{
		Overhead: power.HardwareOverhead(specs),
		Table:    power.OverheadTable(specs),
	}
}

// ChipSavings reproduces the paper's §7.3 chip-level estimate for a measured
// execution-unit static-savings range.
func ChipSavings(lo, hi float64) *stats.Table {
	return power.ChipSavingsTable(lo, hi)
}
