package core

import (
	"math"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
)

// countingRunner returns a small-scale runner whose Progress hook counts
// uncached simulations (the hook is concurrency-safe, as the Runner contract
// now requires).
func countingRunner(sims *atomic.Int64) *Runner {
	r := NewRunner(config.Small())
	r.Scale = 0.2
	r.Progress = func(string, config.Config) { sims.Add(1) }
	return r
}

// TestRunnerSingleflight is the stampede regression test: 8 goroutines
// request the same runKey concurrently and the simulation must run exactly
// once, with every caller sharing the one report.
func TestRunnerSingleflight(t *testing.T) {
	var sims atomic.Int64
	r := countingRunner(&sims)

	const callers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	reps := make([]interface{ String() string }, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rep, err := r.Run("nw", Baseline)
			reps[i], errs[i] = rep, err
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if reps[i] != reps[0] {
			t.Fatal("concurrent duplicate requests did not share one report")
		}
	}
	if n := sims.Load(); n != 1 {
		t.Fatalf("simulation ran %d times for one key, want exactly 1 (stampede)", n)
	}
	if r.CacheSize() != 1 {
		t.Fatalf("cache size = %d, want 1", r.CacheSize())
	}
}

// TestRunAllParallelDeterministic runs the suite in parallel twice and
// serially once, asserting identical reports in identical order, a cache
// holding exactly one entry per unique key, and exactly-once simulation.
func TestRunAllParallelDeterministic(t *testing.T) {
	var simsP atomic.Int64
	par := countingRunner(&simsP)
	par.Parallelism = 8
	p1, err := par.RunAllParallel(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := par.RunAllParallel(Baseline)
	if err != nil {
		t.Fatal(err)
	}

	var simsS atomic.Int64
	ser := countingRunner(&simsS)
	ser.Parallelism = 1
	s1, err := ser.RunAllOrdered(Baseline)
	if err != nil {
		t.Fatal(err)
	}

	want := len(kernels.BenchmarkNames)
	if len(p1) != want || len(s1) != want {
		t.Fatalf("lengths %d/%d, want %d", len(p1), len(s1), want)
	}
	for i := range p1 {
		if p1[i].Benchmark != kernels.BenchmarkNames[i] {
			t.Fatalf("result %d is %s, want %s (order broken)", i, p1[i].Benchmark, kernels.BenchmarkNames[i])
		}
		// Second parallel pass must be served from cache: same pointers.
		if p1[i].Report != p2[i].Report {
			t.Fatalf("%s: repeated parallel run not served from cache", p1[i].Benchmark)
		}
		// Parallel and serial runners simulate independently, so compare
		// values: every field of every report must match exactly.
		if !reflect.DeepEqual(p1[i].Report, s1[i].Report) {
			t.Fatalf("%s: parallel report differs from serial report:\n%v\nvs\n%v",
				p1[i].Benchmark, p1[i].Report, s1[i].Report)
		}
	}
	if n := simsP.Load(); n != int64(want) {
		t.Fatalf("parallel runner simulated %d times, want exactly %d", n, want)
	}
	if par.CacheSize() != want {
		t.Fatalf("parallel cache size = %d, want %d unique keys", par.CacheSize(), want)
	}
	if ser.CacheSize() != want {
		t.Fatalf("serial cache size = %d, want %d", ser.CacheSize(), want)
	}
}

// TestRunManyCollapsesDuplicates feeds RunMany the same job many times over:
// one simulation, every slot filled with the shared report.
func TestRunManyCollapsesDuplicates(t *testing.T) {
	var sims atomic.Int64
	r := countingRunner(&sims)
	r.Parallelism = 8
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Bench: "nw", Cfg: Baseline.Apply(r.Base)}
	}
	reps, err := r.RunMany(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if rep == nil || rep != reps[0] {
			t.Fatalf("slot %d: duplicate jobs not collapsed onto one report", i)
		}
	}
	if n := sims.Load(); n != 1 {
		t.Fatalf("simulated %d times for 16 duplicate jobs, want 1", n)
	}
}

// TestRunManyFirstErrorWins mixes a bad job into a large batch: RunMany must
// fail with that job's error and not return partial results.
func TestRunManyFirstErrorWins(t *testing.T) {
	r := testRunner()
	r.Parallelism = 4
	jobs := techniqueJobs(r.Base, kernels.BenchmarkNames, Baseline)
	jobs = append(jobs, Job{Bench: "nosuch", Cfg: Baseline.Apply(r.Base)})
	reps, err := r.RunMany(jobs)
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if reps != nil {
		t.Fatal("failed RunMany returned partial results")
	}
}

// TestRunnerRejectsNonFiniteScale covers the runKey poisoning bug: NaN never
// equals itself, so a NaN Scale would defeat the cache silently. The runner
// must reject it (and other unusable scales) loudly instead.
func TestRunnerRejectsNonFiniteScale(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -0.5} {
		r := NewRunner(config.Small())
		r.Scale = bad
		if _, err := r.Run("nw", Baseline); err == nil {
			t.Errorf("Scale=%v accepted, want error", bad)
		}
		if r.CacheSize() != 0 {
			t.Errorf("Scale=%v left %d cache entries", bad, r.CacheSize())
		}
	}
}

// TestRunManySerialFallback pins the Parallelism=1 path (used by -j 1 and by
// single-job batches) to plain serial execution.
func TestRunManySerialFallback(t *testing.T) {
	var sims atomic.Int64
	r := countingRunner(&sims)
	r.Parallelism = 1
	reps, err := r.RunMany(techniqueJobs(r.Base, []string{"nw", "bfs"}, Baseline, ConvPG))
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 || sims.Load() != 4 {
		t.Fatalf("serial RunMany: %d reports, %d sims, want 4/4", len(reps), sims.Load())
	}
}

// TestRunAllParallelSpeedup times the parallel path against cold serial runs
// at a reduced scale. On a multicore machine the fan-out must be a clear
// win; the assertion is deliberately below the expected speedup (≈ core
// count) to stay robust under loaded CI machines.
func TestRunAllParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test in -short mode")
	}
	cores := runtime.GOMAXPROCS(0)
	if cores < 4 {
		t.Skipf("need >= 4 cores for a meaningful speedup bound, have %d", cores)
	}

	serial := NewRunner(config.Small())
	serial.Scale = 0.5
	serial.Parallelism = 1
	t0 := time.Now()
	if _, err := serial.RunAllOrdered(Baseline); err != nil {
		t.Fatal(err)
	}
	serialTime := time.Since(t0)

	parallel := NewRunner(config.Small())
	parallel.Scale = 0.5
	t0 = time.Now()
	if _, err := parallel.RunAllParallel(Baseline); err != nil {
		t.Fatal(err)
	}
	parallelTime := time.Since(t0)

	speedup := float64(serialTime) / float64(parallelTime)
	t.Logf("serial %v, parallel %v on %d cores: %.2fx", serialTime, parallelTime, cores, speedup)
	if speedup < 2 {
		t.Errorf("RunAllParallel speedup %.2fx on %d cores, want >= 2x", speedup, cores)
	}
}

// BenchmarkRunAllSerial and BenchmarkRunAllParallel measure the fan-out win
// directly: each iteration simulates the full 18-benchmark suite on a fresh
// runner (cold cache).
func BenchmarkRunAllSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := NewRunner(config.Small())
		r.Scale = 0.2
		r.Parallelism = 1
		if _, err := r.RunAllOrdered(Baseline); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := NewRunner(config.Small())
		r.Scale = 0.2
		if _, err := r.RunAllParallel(Baseline); err != nil {
			b.Fatal(err)
		}
	}
}
