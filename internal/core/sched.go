package core

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"warpedgates/internal/sim"
)

// SchedMode selects how the runner's parallel entry points order and
// provision jobs. Scheduling can never change a result — every job is
// deterministic and results are positional — so the mode is not part of any
// cache key; it trades wall time only.
type SchedMode uint8

const (
	// SchedAdaptive, the default, is the makespan-aware two-level schedule:
	// jobs are admitted longest-predicted-first (LPT, by the cost model), and
	// job-level workers that drain while others still run lend their budget
	// to the running simulations as extra intra-run workers (tail
	// reallocation, absorbed by the engine at epoch boundaries).
	SchedAdaptive SchedMode = iota
	// SchedStatic is the pre-cost-model behavior: submission order, fixed
	// budget split, no reallocation.
	SchedStatic
)

// String names the mode, lower-case to match the -sched flag values.
func (m SchedMode) String() string {
	switch m {
	case SchedAdaptive:
		return "adaptive"
	case SchedStatic:
		return "static"
	default:
		return fmt.Sprintf("SchedMode(%d)", uint8(m))
	}
}

// ParseSchedMode parses a -sched flag value.
func ParseSchedMode(s string) (SchedMode, error) {
	switch s {
	case "adaptive":
		return SchedAdaptive, nil
	case "static":
		return SchedStatic, nil
	}
	return 0, fmt.Errorf("core: unknown sched mode %q (want adaptive or static)", s)
}

// WorkerLeases is a token pool implementing sim.WorkerPool: each token is one
// core's worth of parallelism a drained job-level worker handed back. Running
// simulations absorb tokens as extra intra-run workers at their next epoch
// boundary and return them when they finish, so tokens migrate between jobs
// until the whole batch drains. Safe for concurrent use.
type WorkerLeases struct {
	tokens atomic.Int64
}

// NewWorkerLeases builds a pool holding n initial tokens (surplus budget the
// batch could not use as job-level workers, e.g. fewer jobs than cores).
func NewWorkerLeases(n int) *WorkerLeases {
	p := &WorkerLeases{}
	if n > 0 {
		p.tokens.Store(int64(n))
	}
	return p
}

// TryAcquire implements sim.WorkerPool.
func (p *WorkerLeases) TryAcquire(max int) int {
	for {
		cur := p.tokens.Load()
		if cur <= 0 || max <= 0 {
			return 0
		}
		n := int64(max)
		if n > cur {
			n = cur
		}
		if p.tokens.CompareAndSwap(cur, cur-n) {
			return int(n)
		}
	}
}

// Release implements sim.WorkerPool.
func (p *WorkerLeases) Release(n int) {
	if n > 0 {
		p.tokens.Add(int64(n))
	}
}

// Tokens returns the currently idle token count (for tests and diagnostics).
func (p *WorkerLeases) Tokens() int { return int(p.tokens.Load()) }

// leasesKey carries a *WorkerLeases through a job context into the runner's
// simulate step, which installs it on the GPU.
type leasesKey struct{}

// WithWorkerLeases returns a context whose simulations may borrow extra
// intra-run workers from the pool. RunManyCtx plants one automatically under
// SchedAdaptive; external drivers (the sweep engine) share a pool across
// their own worker sets the same way.
func WithWorkerLeases(ctx context.Context, p *WorkerLeases) context.Context {
	return context.WithValue(ctx, leasesKey{}, p)
}

// workerLeasesFrom extracts the pool, nil when absent.
func workerLeasesFrom(ctx context.Context) *WorkerLeases {
	p, _ := ctx.Value(leasesKey{}).(*WorkerLeases)
	return p
}

// lptOrder returns job indices sorted by descending predicted cost — the LPT
// admission order. The sort is stable, so equal predictions keep submission
// order and the schedule is deterministic for a fixed model state.
func lptOrder(pred []float64) []int {
	order := make([]int, len(pred))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return pred[order[a]] > pred[order[b]]
	})
	return order
}

// statically assert WorkerLeases satisfies the engine's pool contract.
var _ sim.WorkerPool = (*WorkerLeases)(nil)
