// Package core is the public face of the reproduction: it names the paper's
// techniques, runs simulations with memoization, and regenerates every table
// and figure of the paper's evaluation (§7). Each RunFigN function returns
// both structured results and a rendered text table with the same rows or
// series the paper's figure reports.
package core

import (
	"fmt"

	"warpedgates/internal/config"
)

// Technique is one of the paper's evaluated configurations (§7.2 naming).
type Technique uint8

// The paper's five techniques plus the no-gating normalization baseline.
const (
	// Baseline is the two-level scheduler with power gating disabled; every
	// energy and performance result is normalized against it.
	Baseline Technique = iota
	// ConvPG is conventional power gating (Hu et al.) under the two-level
	// scheduler.
	ConvPG
	// GATESTech is the GATES scheduler with conventional power gating.
	GATESTech
	// NaiveBlackout is GATES + Blackout without cluster coordination.
	NaiveBlackout
	// CoordBlackout is GATES + Coordinated Blackout.
	CoordBlackout
	// WarpedGates is GATES + Coordinated Blackout + Adaptive idle detect:
	// the paper's full proposal.
	WarpedGates

	NumTechniques
)

// String returns the paper's name for the technique.
func (t Technique) String() string {
	switch t {
	case Baseline:
		return "Baseline"
	case ConvPG:
		return "ConvPG"
	case GATESTech:
		return "GATES"
	case NaiveBlackout:
		return "NaiveBlackout"
	case CoordBlackout:
		return "CoordBlackout"
	case WarpedGates:
		return "WarpedGates"
	default:
		return fmt.Sprintf("Technique(%d)", uint8(t))
	}
}

// ParseTechnique resolves a technique by its paper name (case-sensitive).
func ParseTechnique(s string) (Technique, error) {
	for t := Baseline; t < NumTechniques; t++ {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("core: unknown technique %q", s)
}

// AllTechniques lists every technique in evaluation order.
func AllTechniques() []Technique {
	return []Technique{Baseline, ConvPG, GATESTech, NaiveBlackout, CoordBlackout, WarpedGates}
}

// GatedTechniques lists the five techniques the result figures compare
// (everything but the normalization baseline).
func GatedTechniques() []Technique {
	return []Technique{ConvPG, GATESTech, NaiveBlackout, CoordBlackout, WarpedGates}
}

// Apply returns cfg specialized for the technique: scheduler choice, gating
// policy and adaptive idle-detect, leaving all other parameters untouched.
func (t Technique) Apply(cfg config.Config) config.Config {
	cfg.AdaptiveIdleDetect = false
	switch t {
	case Baseline:
		cfg.Scheduler = config.SchedTwoLevel
		cfg.Gating = config.GateNone
	case ConvPG:
		cfg.Scheduler = config.SchedTwoLevel
		cfg.Gating = config.GateConventional
	case GATESTech:
		cfg.Scheduler = config.SchedGATES
		cfg.Gating = config.GateConventional
	case NaiveBlackout:
		cfg.Scheduler = config.SchedGATES
		cfg.Gating = config.GateNaiveBlackout
	case CoordBlackout:
		cfg.Scheduler = config.SchedGATES
		cfg.Gating = config.GateCoordBlackout
	case WarpedGates:
		cfg.Scheduler = config.SchedGATES
		cfg.Gating = config.GateCoordBlackout
		cfg.AdaptiveIdleDetect = true
	default:
		panic(fmt.Sprintf("core: cannot apply %v", t))
	}
	return cfg
}
