package core

import (
	"fmt"
	"strconv"
	"strings"

	"warpedgates/internal/isa"
	"warpedgates/internal/sim"
)

// FingerprintReport renders a canonical single-line fingerprint of a report:
// every counter the paper's figures derive from, in a fixed order. Two
// reports fingerprint equal iff the simulations were observably identical, so
// the golden corpus and the metamorphic equalities (seed determinism,
// parallel-vs-serial, inert-gating neutrality) all compare these strings.
// The encoding is integer-dominated; the few float fields use
// strconv.FormatFloat 'g'/-1, the shortest exact round-trip form, so the
// fingerprint is byte-stable across runs, platforms and worker counts.
func FingerprintReport(r *sim.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d ranout=%t issued=%d", r.Cycles, r.RanOut, r.IssuedTotal)
	fmt.Fprintf(&b, " byclass=%d/%d/%d/%d",
		r.IssuedByClass[isa.INT], r.IssuedByClass[isa.FP],
		r.IssuedByClass[isa.SFU], r.IssuedByClass[isa.LDST])
	fmt.Fprintf(&b, " stalls=%d/%d ctas=%d warpmax=%d",
		r.IssueStallsMem, r.IssueStallsGate, r.CTAsCompleted, r.ActiveWarpMax)
	fmt.Fprintf(&b, " warpavg=%s l1miss=%s", fmtFloat(r.ActiveWarpAvg), fmtFloat(r.L1MissRate))
	fmt.Fprintf(&b, " l2=%d/%d/%d/%d", r.L2Stats[0], r.L2Stats[1], r.L2Stats[2], r.L2Stats[3])
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		d := &r.Domains[c]
		fmt.Fprintf(&b, " %s=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d",
			strings.ToLower(c.String()),
			d.BusyCycles, d.IdleCycles, d.PoweredCycles, d.GatedCycles,
			d.UncompCycles, d.CompCycles, d.GatingEvents, d.Wakeups,
			d.NegativeEvents, d.CriticalWakeups, d.DeniedWakeups, d.IssuedInstrs)
		h := d.IdlePeriods
		fmt.Fprintf(&b, ",h%d:%d:%d:%d", h.Total(), h.Sum(), h.Min(), h.Max())
	}
	return b.String()
}

// fmtFloat renders v in its shortest exact round-trip decimal form.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MatrixFingerprint simulates every bench × technique cell on r (through the
// parallel runner, so duplicate cells are free and workers are saturated) and
// renders one "<bench> <technique> <fingerprint>" line per cell in (bench,
// technique) order. It is the golden corpus's payload and the byte-stability
// oracle: any -j produces identical bytes.
func MatrixFingerprint(r *Runner, benches []string, techs []Technique) (string, error) {
	reps, err := r.RunMany(techniqueJobs(r.Base, benches, techs...))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	i := 0
	for _, bench := range benches {
		for _, t := range techs {
			fmt.Fprintf(&b, "%s %s %s\n", bench, t, FingerprintReport(reps[i]))
			i++
		}
	}
	return b.String(), nil
}
