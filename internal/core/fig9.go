package core

import (
	"fmt"

	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/power"
	"warpedgates/internal/stats"
)

// Fig9Row is one benchmark's static-energy savings per technique for one
// unit class (paper Figure 9).
type Fig9Row struct {
	Benchmark string
	Savings   map[Technique]float64
}

// Fig9Result carries one panel of paper Figure 9 (9a = INT, 9b = FP), with
// the suite average as the paper reports it.
type Fig9Result struct {
	Class   isa.Class
	Rows    []Fig9Row
	Average map[Technique]float64
	Table   *stats.Table
}

// RunFig9 regenerates paper Figure 9 for one unit class: net static energy
// savings (normalized to a no-gating baseline, overhead included) for all
// five techniques. For the FP panel, integer-only benchmarks are excluded,
// matching the paper.
func RunFig9(r *Runner, class isa.Class) (*Fig9Result, error) {
	if class != isa.INT && class != isa.FP {
		return nil, fmt.Errorf("core: Fig. 9 covers INT and FP only, got %s", class)
	}
	var jobs []Job
	for _, b := range kernels.BenchmarkNames {
		if class == isa.FP && kernels.IntegerOnly(b) {
			continue
		}
		jobs = append(jobs, techniqueJobs(r.Base, []string{b}, append([]Technique{Baseline}, GatedTechniques()...)...)...)
	}
	if err := r.Prefetch(jobs); err != nil {
		return nil, err
	}
	model := power.Default(r.Base.BreakEven)
	res := &Fig9Result{Class: class, Average: map[Technique]float64{}}
	sums := map[Technique]float64{}
	var n float64

	for _, b := range kernels.BenchmarkNames {
		if class == isa.FP && kernels.IntegerOnly(b) {
			continue
		}
		base, err := r.Run(b, Baseline)
		if err != nil {
			return nil, err
		}
		row := Fig9Row{Benchmark: b, Savings: map[Technique]float64{}}
		for _, tech := range GatedTechniques() {
			rep, err := r.Run(b, tech)
			if err != nil {
				return nil, err
			}
			s := model.AnalyzeAgainst(rep, base, class).StaticSavings()
			row.Savings[tech] = s
			sums[tech] += s
		}
		res.Rows = append(res.Rows, row)
		n++
	}
	for _, tech := range GatedTechniques() {
		if n > 0 {
			res.Average[tech] = sums[tech] / n
		}
	}

	header := []string{"benchmark"}
	for _, t := range GatedTechniques() {
		header = append(header, t.String())
	}
	panel := "9a"
	if class == isa.FP {
		panel = "9b"
	}
	tab := stats.NewTable(fmt.Sprintf("Fig. %s — %s static energy savings", panel, class), header...)
	for _, row := range res.Rows {
		cells := []interface{}{row.Benchmark}
		for _, t := range GatedTechniques() {
			cells = append(cells, row.Savings[t])
		}
		tab.AddRowf(cells...)
	}
	cells := []interface{}{"average"}
	for _, t := range GatedTechniques() {
		cells = append(cells, res.Average[t])
	}
	tab.AddRowf(cells...)
	res.Table = tab
	return res, nil
}
