package core

import (
	"bytes"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
)

// TestWorkersBudgetSplit pins the budget division between job-level workers
// and intra-run workers, in particular the clamp fix: the divisor is the
// *effective* intra-run worker count (IntraRunWorkers clamped to NumSMs), so
// an oversized -workers knob cannot starve the job pool for goroutines the
// engine would never spawn.
func TestWorkersBudgetSplit(t *testing.T) {
	for _, tc := range []struct {
		j, iw, sms, want int
	}{
		{8, 1, 4, 8},   // serial engine: every core is a job worker
		{8, 2, 4, 4},   // jobs x workers = budget
		{8, 4, 4, 2},   //
		{8, 64, 2, 4},  // the fix: 64 clamps to 2 SMs, so 8/2, not 8/64->1
		{8, 64, 16, 1}, // genuinely wide runs do starve down to one job
		{2, 4, 8, 1},   // never below one job-level worker
		{3, 2, 4, 1},   // integer division floors
		{1, 8, 8, 1},
		{8, 0, 4, 8}, // unset knob means serial engine
	} {
		base := config.Small()
		base.NumSMs = tc.sms
		base.IntraRunWorkers = tc.iw
		r := NewRunner(base)
		r.Parallelism = tc.j
		if got := r.workers(); got != tc.want {
			t.Errorf("workers(j=%d iw=%d sms=%d) = %d, want %d", tc.j, tc.iw, tc.sms, got, tc.want)
		}
	}
}

// TestLPTOrder pins the admission order: descending predicted cost, stable
// among ties (so equal predictions keep submission order), +Inf — the doomed
// job marker — first of all.
func TestLPTOrder(t *testing.T) {
	for _, tc := range []struct {
		pred []float64
		want []int
	}{
		{[]float64{1, 5, 3}, []int{1, 2, 0}},
		{[]float64{2, 2, 2}, []int{0, 1, 2}}, // stable: ties keep submission order
		{[]float64{1, 5, math.Inf(1), 3}, []int{2, 1, 3, 0}},
		{[]float64{}, []int{}},
	} {
		if got := lptOrder(tc.pred); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("lptOrder(%v) = %v, want %v", tc.pred, got, tc.want)
		}
	}
}

// TestWorkerLeases pins the token-pool semantics: partial grants, exhaustion,
// and release making tokens reusable.
func TestWorkerLeases(t *testing.T) {
	p := NewWorkerLeases(3)
	if got := p.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) = %d, want 2", got)
	}
	if got := p.TryAcquire(5); got != 1 {
		t.Fatalf("TryAcquire(5) on 1 token = %d, want 1", got)
	}
	if got := p.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on empty pool = %d, want 0", got)
	}
	p.Release(2)
	if got := p.Tokens(); got != 2 {
		t.Fatalf("Tokens after release = %d, want 2", got)
	}
	if got := NewWorkerLeases(-4).TryAcquire(1); got != 0 {
		t.Fatalf("negative seed granted %d tokens, want 0", got)
	}
}

// costTestModel builds a model over a tiny synthetic table at the standard
// calibration point.
func costTestModel() *CostModel {
	return NewCostModel(&CostTable{
		SMS:   CalCostSMS,
		Scale: CalCostScale,
		Cells: []CostCell{
			{Bench: "short", Cycles: 1000},
			{Bench: "long", Cycles: 3000},
		},
	})
}

// TestCostModelPrior pins the prediction's extrapolation: linear in workload
// scale and SM count from the calibration point, scaled down by the sampled
// detail fraction (floored so a sampled run never predicts free).
func TestCostModelPrior(t *testing.T) {
	m := costTestModel()
	cfg := config.Small()
	cfg.NumSMs = CalCostSMS
	at := func(c config.Config, scale float64) float64 { return m.Predict("short", c, scale) }

	ref := at(cfg, CalCostScale)
	if ref != 1000 {
		t.Fatalf("prediction at the calibration point = %g, want the calibration cycles (1000)", ref)
	}
	if got := at(cfg, 2*CalCostScale); got != 2*ref {
		t.Errorf("doubling scale: %g, want %g", got, 2*ref)
	}
	big := cfg
	big.NumSMs = 3 * CalCostSMS
	if got := at(big, CalCostScale); got != 3*ref {
		t.Errorf("tripling SMs: %g, want %g", got, 3*ref)
	}
	sampled := cfg
	sampled.SampleDetailCycles, sampled.SamplePeriod = 1000, 4000
	if got := at(sampled, CalCostScale); got != ref/4 {
		t.Errorf("1/4 sampling: %g, want %g", got, ref/4)
	}
	tiny := cfg
	tiny.SampleDetailCycles, tiny.SamplePeriod = 1, 100000
	if got := at(tiny, CalCostScale); got != 0.05*ref {
		t.Errorf("extreme sampling must floor at 5%%: got %g, want %g", got, 0.05*ref)
	}
	// Unknown benches predict at the table mean so ordering stays total.
	if got := m.Predict("mystery", cfg, CalCostScale); got != 2000 {
		t.Errorf("unknown bench = %g, want table mean 2000", got)
	}
}

// TestCostModelObserve pins the EWMA refinement: one observation rescales the
// bench's predictions to measured nanoseconds; repeated observations converge
// toward the newest measurement without ever leaving other benches' scales.
func TestCostModelObserve(t *testing.T) {
	m := costTestModel()
	cfg := config.Small()
	cfg.NumSMs = CalCostSMS

	m.Observe("short", cfg, CalCostScale, 5000*time.Nanosecond)
	if got := m.Predict("short", cfg, CalCostScale); got != 5000 {
		t.Fatalf("after one observation Predict = %g, want the measured 5000 ns", got)
	}
	if got := m.Predict("long", cfg, CalCostScale); got != 3000 {
		t.Fatalf("observation of one bench leaked into another: long = %g, want 3000", got)
	}
	for i := 0; i < 40; i++ {
		m.Observe("short", cfg, CalCostScale, 9000*time.Nanosecond)
	}
	if got := m.Predict("short", cfg, CalCostScale); math.Abs(got-9000) > 1 {
		t.Fatalf("EWMA did not converge to the new regime: %g, want ~9000", got)
	}
	// Degenerate observations must not poison the model.
	m.Observe("short", cfg, CalCostScale, 0)
	if got := m.Predict("short", cfg, CalCostScale); math.Abs(got-9000) > 1 {
		t.Fatalf("zero-wall observation changed the model: %g", got)
	}
}

// TestCostTableCommittedFresh is the calibration acceptance check: running the
// calibration reproduces the committed internal/core/costdata.json byte for
// byte. A diff means either the encoder lost determinism or the simulator's
// cycle counts moved and the committed table is stale — regenerate with
// `warpedgates bench -calibrate internal/core/costdata.json`.
func TestCostTableCommittedFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration simulates every benchmark; skipped with -short")
	}
	tab, err := CalibrateCostTable()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tab.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("costdata.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("committed costdata.json is stale or calibration lost determinism\n(regenerate with: go run ./cmd/warpedgates bench -calibrate internal/core/costdata.json)")
	}
	if len(tab.Cells) != len(kernels.BenchmarkNames) {
		t.Fatalf("calibration covered %d benchmarks, want %d", len(tab.Cells), len(kernels.BenchmarkNames))
	}
}

// schedRunner builds a fresh small-matrix runner in the given mode, with
// intra-run workers so the adaptive path seeds a lease pool.
func schedRunner(mode SchedMode, par, iw int) *Runner {
	base := config.Small()
	base.IntraRunWorkers = iw
	r := NewRunner(base)
	r.Scale = 0.2
	r.Parallelism = par
	r.Sched = mode
	return r
}

// TestRunManyAdaptiveMatchesStatic is the tentpole's correctness contract at
// the job level: the same batch run under the adaptive schedule (LPT order,
// tail reallocation absorbing drained workers' budget mid-run) and under the
// static split produces fingerprint-identical reports in identical positions.
// Fresh runners per mode, so nothing is shared through a cache.
func TestRunManyAdaptiveMatchesStatic(t *testing.T) {
	jobs := techniqueJobs(config.Small(), kernels.BenchmarkNames, Baseline, WarpedGates)
	static, err := schedRunner(SchedStatic, 4, 1).RunMany(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		adaptive, err := schedRunner(SchedAdaptive, par, 2).RunMany(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if len(adaptive) != len(static) {
			t.Fatalf("par=%d: %d reports, want %d", par, len(adaptive), len(static))
		}
		for i := range jobs {
			if f, g := FingerprintReport(static[i]), FingerprintReport(adaptive[i]); f != g {
				t.Errorf("par=%d %s/%s: adaptive fingerprint diverged\nstatic:   %s\nadaptive: %s",
					par, jobs[i].Bench, jobs[i].Cfg.Gating, f, g)
			}
		}
	}
}

// TestRunManyAdaptiveFailFast pins the doomed-job ordering: a job that cannot
// pass validation sorts ahead of every simulation under LPT, so the batch
// fails in milliseconds instead of after the longest cell.
func TestRunManyAdaptiveFailFast(t *testing.T) {
	r := schedRunner(SchedAdaptive, 4, 1)
	jobs := techniqueJobs(config.Small(), kernels.BenchmarkNames, Baseline)
	jobs = append(jobs, Job{Bench: "no-such-benchmark", Cfg: Baseline.Apply(r.Base)})
	t0 := time.Now()
	reps, err := r.RunMany(jobs)
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if reps != nil {
		t.Fatal("failed batch returned partial results")
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("doomed job took %v to surface — LPT buried it behind simulations", d)
	}
}

// TestGoldenMatrixSchedStable is the byte-stability acceptance check for the
// scheduler: the full 108-cell corpus renders identically under the static
// split and the adaptive schedule (which reorders dispatch and grows workers
// at the tail). The committed corpus itself is pinned by
// TestGoldenMatrixCorpus; this proves the mode cannot move a byte.
func TestGoldenMatrixSchedStable(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated full matrices are slow; skipped with -short")
	}
	corpus := func(mode SchedMode, par, iw int) string {
		base := config.Small()
		base.IntraRunWorkers = iw
		r := NewRunner(base)
		r.Scale = goldenMatrixScale
		r.Parallelism = par
		r.Sched = mode
		got, err := goldenCorpus(r)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	want := corpus(SchedStatic, 1, 1)
	for _, tc := range []struct{ par, iw int }{{8, 1}, {4, 2}, {3, 2}} {
		got := corpus(SchedAdaptive, tc.par, tc.iw)
		if got == want {
			continue
		}
		gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("adaptive(-j %d -workers %d) corpus drifted; first diff at line %d:\n  static:   %s\n  adaptive: %s",
					tc.par, tc.iw, i+1, wl[i], gl[i])
			}
		}
		t.Fatalf("adaptive(-j %d -workers %d) corpus drifted: length mismatch", tc.par, tc.iw)
	}
}
