package isa

import (
	"testing"
	"testing/quick"
)

func TestEveryOpcodeHasValidMetadata(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if !ClassOf(op).Valid() {
			t.Errorf("%s has invalid class", op)
		}
		if Latency(op) <= 0 {
			t.Errorf("%s has non-positive latency %d", op, Latency(op))
		}
		if InitiationInterval(op) <= 0 {
			t.Errorf("%s has non-positive ii %d", op, InitiationInterval(op))
		}
		if Latency(op) < InitiationInterval(op) {
			t.Errorf("%s latency %d < ii %d", op, Latency(op), InitiationInterval(op))
		}
		if op.String() == "" {
			t.Errorf("opcode %d has empty mnemonic", op)
		}
	}
}

func TestPaperLatencies(t *testing.T) {
	// GPGPU-Sim's default Fermi parameters the paper's Figure 4 relies on:
	// simple INT and FP adds have latency 4 and initiation interval 1.
	for _, op := range []Op{OpIADD, OpFADD} {
		if Latency(op) != 4 {
			t.Errorf("%s latency = %d, want 4", op, Latency(op))
		}
		if InitiationInterval(op) != 1 {
			t.Errorf("%s ii = %d, want 1", op, InitiationInterval(op))
		}
	}
}

func TestClassAssignments(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{OpIADD, INT}, {OpIMUL, INT}, {OpSETP, INT},
		{OpFADD, FP}, {OpFFMA, FP}, {OpFDIV, FP},
		{OpSIN, SFU}, {OpRSQRT, SFU},
		{OpLDG, LDST}, {OpSTS, LDST}, {OpLDL, LDST},
	}
	for _, c := range cases {
		if got := ClassOf(c.op); got != c.want {
			t.Errorf("ClassOf(%s) = %s, want %s", c.op, got, c.want)
		}
	}
}

func TestSFUOccupancy(t *testing.T) {
	// Four SFUs serving a 32-thread warp occupy the bank for 8 cycles.
	for _, op := range []Op{OpSIN, OpCOS, OpRSQRT, OpEXP, OpLG2} {
		if InitiationInterval(op) != 8 {
			t.Errorf("%s ii = %d, want 8", op, InitiationInterval(op))
		}
	}
}

func TestLoadStorePredicates(t *testing.T) {
	if !IsLoad(OpLDG) || !IsLoad(OpLDS) || !IsLoad(OpLDL) {
		t.Error("load predicates wrong")
	}
	if !IsStore(OpSTG) || !IsStore(OpSTS) {
		t.Error("store predicates wrong")
	}
	if IsLoad(OpSTG) || IsStore(OpLDG) || IsLoad(OpIADD) {
		t.Error("predicate false positives")
	}
	for op := Op(0); op < NumOps; op++ {
		if (IsLoad(op) || IsStore(op)) && !IsMemory(op) {
			t.Errorf("%s is load/store but not memory", op)
		}
		if IsMemory(op) != (ClassOf(op) == LDST) {
			t.Errorf("%s IsMemory inconsistent with class", op)
		}
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{INT: "INT", FP: "FP", SFU: "SFU", LDST: "LDST"} {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %s, want %s", c, c, want)
		}
	}
	if Class(99).Valid() {
		t.Error("Class(99) should be invalid")
	}
}

func TestUnknownOpcodePanics(t *testing.T) {
	for _, f := range []func(){
		func() { ClassOf(NumOps) },
		func() { Latency(NumOps + 1) },
		func() { InitiationInterval(Op(200)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unknown opcode did not panic")
				}
			}()
			f()
		}()
	}
}

func TestMaskConsistency(t *testing.T) {
	// Property: DstMask has exactly one bit for ops with destinations, zero
	// otherwise; SrcMask covers exactly the used sources.
	f := func(dstRaw, s1, s2 uint8, nsrcRaw uint8) bool {
		in := Instr{Op: OpIADD, NSrc: int(nsrcRaw % 3)}
		in.Dst = Reg(dstRaw % NumRegs)
		in.Srcs[0] = Reg(s1 % NumRegs)
		in.Srcs[1] = Reg(s2 % NumRegs)
		dm := in.DstMask()
		if dm != 1<<uint(in.Dst) {
			return false
		}
		sm := in.SrcMask()
		var want uint64
		for i := 0; i < in.NSrc; i++ {
			want |= 1 << uint(in.Srcs[i])
		}
		return sm == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDstMaskNoReg(t *testing.T) {
	in := Instr{Op: OpSTG, Dst: NoReg, Space: SpaceGlobal}
	if in.DstMask() != 0 {
		t.Fatal("store DstMask should be 0")
	}
}
