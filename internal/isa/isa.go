// Package isa defines the instruction set abstraction used by the Warped
// Gates simulator: execution-unit classes (INT, FP, SFU, LDST — the four
// classes the paper's GATES scheduler partitions the active warp set by),
// opcodes with Fermi-like latency/initiation-interval tables, memory spaces
// and access patterns, and the Instr type that kernels are built from.
package isa

import "fmt"

// Class identifies which execution-unit type an instruction requires. It is
// the two-bit "instruction type" field GATES adds to each active-warp entry.
type Class uint8

// Execution unit classes, in the paper's naming.
const (
	INT  Class = iota // integer pipeline inside a CUDA core
	FP                // floating-point pipeline inside a CUDA core
	SFU               // special function unit (sin, cos, rsqrt, ...)
	LDST              // load/store unit
	NumClasses
)

// String returns the paper's name for the class.
func (c Class) String() string {
	switch c {
	case INT:
		return "INT"
	case FP:
		return "FP"
	case SFU:
		return "SFU"
	case LDST:
		return "LDST"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Valid reports whether c is one of the four defined classes.
func (c Class) Valid() bool { return c < NumClasses }

// Op is an opcode. The set is a representative subset of the PTX/SASS
// operations the paper's benchmarks execute; what matters for every result in
// the paper is the opcode's class, latency, and initiation interval.
type Op uint8

// Opcodes grouped by class.
const (
	// Integer ops.
	OpIADD Op = iota
	OpISUB
	OpIMUL
	OpIMAD
	OpAND
	OpOR
	OpXOR
	OpSHL
	OpSHR
	OpSETP // predicate compare
	OpMOV

	// Floating-point ops.
	OpFADD
	OpFMUL
	OpFFMA
	OpFSET
	OpFDIV

	// Special function ops.
	OpSIN
	OpCOS
	OpRSQRT
	OpEXP
	OpLG2

	// Memory ops.
	OpLDG // load global
	OpSTG // store global
	OpLDS // load shared
	OpSTS // store shared
	OpLDL // load local (spills)

	NumOps
)

var opNames = [NumOps]string{
	OpIADD: "IADD", OpISUB: "ISUB", OpIMUL: "IMUL", OpIMAD: "IMAD",
	OpAND: "AND", OpOR: "OR", OpXOR: "XOR", OpSHL: "SHL", OpSHR: "SHR",
	OpSETP: "SETP", OpMOV: "MOV",
	OpFADD: "FADD", OpFMUL: "FMUL", OpFFMA: "FFMA", OpFSET: "FSET", OpFDIV: "FDIV",
	OpSIN: "SIN", OpCOS: "COS", OpRSQRT: "RSQRT", OpEXP: "EXP", OpLG2: "LG2",
	OpLDG: "LDG", OpSTG: "STG", OpLDS: "LDS", OpSTS: "STS", OpLDL: "LDL",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// opInfo holds the static properties of an opcode.
type opInfo struct {
	class   Class
	latency int // cycles from issue to writeback (ALU/SFU); base for memory
	ii      int // initiation interval: cycles the unit's issue port is held
}

// opTable mirrors GPGPU-Sim's default Fermi configuration: simple INT and FP
// ops have latency 4 and initiation interval 1 (the exact parameters the
// paper's Figure 4 walkthrough uses); multiplies and divides are longer; SFU
// ops occupy the 4-wide SFU bank for 8 cycles per 32-thread warp.
var opTable = [NumOps]opInfo{
	OpIADD: {INT, 4, 1},
	OpISUB: {INT, 4, 1},
	OpIMUL: {INT, 9, 1},
	OpIMAD: {INT, 9, 1},
	OpAND:  {INT, 4, 1},
	OpOR:   {INT, 4, 1},
	OpXOR:  {INT, 4, 1},
	OpSHL:  {INT, 4, 1},
	OpSHR:  {INT, 4, 1},
	OpSETP: {INT, 4, 1},
	OpMOV:  {INT, 4, 1},

	OpFADD: {FP, 4, 1},
	OpFMUL: {FP, 4, 1},
	OpFFMA: {FP, 4, 1},
	OpFSET: {FP, 4, 1},
	OpFDIV: {FP, 16, 4},

	OpSIN:   {SFU, 21, 8},
	OpCOS:   {SFU, 21, 8},
	OpRSQRT: {SFU, 21, 8},
	OpEXP:   {SFU, 21, 8},
	OpLG2:   {SFU, 21, 8},

	// Memory op latency here is only the LDST-port pipeline depth; the actual
	// completion time comes from the memory subsystem model.
	OpLDG: {LDST, 4, 1},
	OpSTG: {LDST, 4, 1},
	OpLDS: {LDST, 4, 1},
	OpSTS: {LDST, 4, 1},
	OpLDL: {LDST, 4, 1},
}

// ClassOf returns the execution-unit class required by op.
func ClassOf(op Op) Class {
	if op >= NumOps {
		panic(fmt.Sprintf("isa: unknown opcode %d", op))
	}
	return opTable[op].class
}

// Latency returns the issue-to-writeback latency of op in core cycles.
func Latency(op Op) int {
	if op >= NumOps {
		panic(fmt.Sprintf("isa: unknown opcode %d", op))
	}
	return opTable[op].latency
}

// InitiationInterval returns the number of cycles op occupies its unit's
// issue port.
func InitiationInterval(op Op) int {
	if op >= NumOps {
		panic(fmt.Sprintf("isa: unknown opcode %d", op))
	}
	return opTable[op].ii
}

// IsMemory reports whether op is serviced by the memory subsystem.
func IsMemory(op Op) bool { return ClassOf(op) == LDST }

// IsLoad reports whether op produces a register value from memory.
func IsLoad(op Op) bool { return op == OpLDG || op == OpLDS || op == OpLDL }

// IsStore reports whether op writes memory and produces no register result.
func IsStore(op Op) bool { return op == OpSTG || op == OpSTS }
