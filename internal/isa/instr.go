package isa

import "fmt"

// Reg is an architectural register index within a warp (0..NumRegs-1).
// NoReg marks an unused operand slot.
type Reg int8

// NumRegs is the per-warp architectural register count modeled by the
// scoreboard (a 64-bit pending mask per warp).
const NumRegs = 64

// NoReg marks an absent register operand (e.g. the destination of a store).
const NoReg Reg = -1

// MemSpace identifies which memory a LDST instruction touches.
type MemSpace uint8

// Memory spaces.
const (
	SpaceNone   MemSpace = iota // not a memory instruction
	SpaceGlobal                 // off-chip global memory through L1/L2/DRAM
	SpaceShared                 // per-SM scratchpad
	SpaceLocal                  // per-thread local (spills), cached like global
)

// String returns a short name for the space.
func (s MemSpace) String() string {
	switch s {
	case SpaceNone:
		return "none"
	case SpaceGlobal:
		return "global"
	case SpaceShared:
		return "shared"
	case SpaceLocal:
		return "local"
	default:
		return fmt.Sprintf("MemSpace(%d)", uint8(s))
	}
}

// AccessPattern describes how the 32 threads of a warp spread their addresses,
// which determines how many memory transactions the coalescer emits.
type AccessPattern uint8

// Access patterns, from fully coalesced to fully divergent.
const (
	PatternCoalesced AccessPattern = iota // 32 consecutive words -> 1 transaction per 128B line
	PatternStrided2                       // stride-2 words -> 2 lines
	PatternStrided8                       // stride-8 words -> 8 lines
	PatternRandom                         // arbitrary -> up to 32 lines
)

// String returns a short name for the pattern.
func (p AccessPattern) String() string {
	switch p {
	case PatternCoalesced:
		return "coalesced"
	case PatternStrided2:
		return "strided2"
	case PatternStrided8:
		return "strided8"
	case PatternRandom:
		return "random"
	default:
		return fmt.Sprintf("AccessPattern(%d)", uint8(p))
	}
}

// Instr is one static instruction of a kernel body. Warps execute the body
// in SIMT lockstep; per-warp dynamic behaviour (addresses) derives from the
// warp's deterministic PRNG stream.
type Instr struct {
	Op   Op
	Dst  Reg    // NoReg for stores and other result-less ops
	Srcs [3]Reg // unused slots hold NoReg
	NSrc int

	// Memory attributes; meaningful only when IsMemory(Op).
	Space   MemSpace
	Pattern AccessPattern
	// Region selects which of the kernel's address regions this access
	// falls in; combined with the kernel's working-set size it controls
	// locality and therefore cache hit rates.
	Region uint8
}

// Class returns the execution-unit class the instruction needs.
func (in *Instr) Class() Class { return ClassOf(in.Op) }

// Latency returns the instruction's issue-to-writeback latency.
func (in *Instr) Latency() int { return Latency(in.Op) }

// InitiationInterval returns the cycles the instruction holds its issue port.
func (in *Instr) InitiationInterval() int { return InitiationInterval(in.Op) }

// SrcRegs returns the used source registers.
func (in *Instr) SrcRegs() []Reg { return in.Srcs[:in.NSrc] }

// Validate checks structural invariants of the instruction and returns a
// descriptive error for the first violation found.
func (in *Instr) Validate() error {
	if in.Op >= NumOps {
		return fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if in.NSrc < 0 || in.NSrc > 3 {
		return fmt.Errorf("isa: %s has invalid source count %d", in.Op, in.NSrc)
	}
	for i := 0; i < in.NSrc; i++ {
		if in.Srcs[i] < 0 || in.Srcs[i] >= NumRegs {
			return fmt.Errorf("isa: %s source %d out of range: %d", in.Op, i, in.Srcs[i])
		}
	}
	if in.Dst != NoReg && (in.Dst < 0 || in.Dst >= NumRegs) {
		return fmt.Errorf("isa: %s destination out of range: %d", in.Op, in.Dst)
	}
	if IsStore(in.Op) && in.Dst != NoReg {
		return fmt.Errorf("isa: store %s must not have a destination", in.Op)
	}
	if IsLoad(in.Op) && in.Dst == NoReg {
		return fmt.Errorf("isa: load %s must have a destination", in.Op)
	}
	if IsMemory(in.Op) && in.Space == SpaceNone {
		return fmt.Errorf("isa: memory op %s missing memory space", in.Op)
	}
	if !IsMemory(in.Op) && in.Space != SpaceNone {
		return fmt.Errorf("isa: non-memory op %s has memory space %s", in.Op, in.Space)
	}
	return nil
}

// String renders the instruction in a compact assembly-like form.
func (in *Instr) String() string {
	s := in.Op.String()
	if in.Dst != NoReg {
		s += fmt.Sprintf(" r%d", in.Dst)
	}
	for i := 0; i < in.NSrc; i++ {
		s += fmt.Sprintf(", r%d", in.Srcs[i])
	}
	if IsMemory(in.Op) {
		s += fmt.Sprintf(" [%s/%s]", in.Space, in.Pattern)
	}
	return s
}

// DstMask returns the scoreboard bit for the destination register, or 0 when
// the instruction produces no register result.
func (in *Instr) DstMask() uint64 {
	if in.Dst == NoReg {
		return 0
	}
	return 1 << uint(in.Dst)
}

// SrcMask returns the scoreboard bits for all used source registers.
func (in *Instr) SrcMask() uint64 {
	var m uint64
	for i := 0; i < in.NSrc; i++ {
		m |= 1 << uint(in.Srcs[i])
	}
	return m
}
