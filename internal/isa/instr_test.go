package isa

import (
	"strings"
	"testing"
)

func validAdd() Instr {
	return Instr{Op: OpIADD, Dst: 10, NSrc: 2, Srcs: [3]Reg{1, 2, NoReg}}
}

func TestInstrValidateOK(t *testing.T) {
	in := validAdd()
	if err := in.Validate(); err != nil {
		t.Fatalf("valid instruction rejected: %v", err)
	}
	ld := Instr{Op: OpLDG, Dst: 9, NSrc: 1, Srcs: [3]Reg{1, NoReg, NoReg},
		Space: SpaceGlobal, Pattern: PatternCoalesced}
	if err := ld.Validate(); err != nil {
		t.Fatalf("valid load rejected: %v", err)
	}
	st := Instr{Op: OpSTS, Dst: NoReg, NSrc: 2, Srcs: [3]Reg{1, 2, NoReg}, Space: SpaceShared}
	if err := st.Validate(); err != nil {
		t.Fatalf("valid store rejected: %v", err)
	}
}

func TestInstrValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Instr)
	}{
		{"bad opcode", func(in *Instr) { in.Op = NumOps }},
		{"negative nsrc", func(in *Instr) { in.NSrc = -1 }},
		{"too many sources", func(in *Instr) { in.NSrc = 4 }},
		{"source out of range", func(in *Instr) { in.Srcs[0] = NumRegs }},
		{"negative source", func(in *Instr) { in.Srcs[1] = -2 }},
		{"dst out of range", func(in *Instr) { in.Dst = NumRegs + 3 }},
		{"space on ALU op", func(in *Instr) { in.Space = SpaceGlobal }},
	}
	for _, c := range cases {
		in := validAdd()
		c.mut(&in)
		if err := in.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestStoreWithDstRejected(t *testing.T) {
	st := Instr{Op: OpSTG, Dst: 5, NSrc: 1, Srcs: [3]Reg{1, NoReg, NoReg}, Space: SpaceGlobal}
	if err := st.Validate(); err == nil {
		t.Fatal("store with destination accepted")
	}
}

func TestLoadWithoutDstRejected(t *testing.T) {
	ld := Instr{Op: OpLDG, Dst: NoReg, NSrc: 1, Srcs: [3]Reg{1, NoReg, NoReg}, Space: SpaceGlobal}
	if err := ld.Validate(); err == nil {
		t.Fatal("load without destination accepted")
	}
}

func TestMemoryWithoutSpaceRejected(t *testing.T) {
	ld := Instr{Op: OpLDG, Dst: 5, NSrc: 1, Srcs: [3]Reg{1, NoReg, NoReg}}
	if err := ld.Validate(); err == nil {
		t.Fatal("memory op without space accepted")
	}
}

func TestInstrString(t *testing.T) {
	in := validAdd()
	s := in.String()
	if !strings.Contains(s, "IADD") || !strings.Contains(s, "r10") || !strings.Contains(s, "r1") {
		t.Fatalf("String() = %q", s)
	}
	ld := Instr{Op: OpLDG, Dst: 9, NSrc: 1, Srcs: [3]Reg{1, NoReg, NoReg},
		Space: SpaceGlobal, Pattern: PatternRandom}
	if !strings.Contains(ld.String(), "global") || !strings.Contains(ld.String(), "random") {
		t.Fatalf("load String() = %q", ld.String())
	}
}

func TestSrcRegs(t *testing.T) {
	in := validAdd()
	srcs := in.SrcRegs()
	if len(srcs) != 2 || srcs[0] != 1 || srcs[1] != 2 {
		t.Fatalf("SrcRegs = %v", srcs)
	}
}

func TestInstrClassAndTiming(t *testing.T) {
	in := validAdd()
	if in.Class() != INT || in.Latency() != 4 || in.InitiationInterval() != 1 {
		t.Fatalf("class/timing wrong: %s %d %d", in.Class(), in.Latency(), in.InitiationInterval())
	}
}

func TestSpaceAndPatternStrings(t *testing.T) {
	for s, want := range map[MemSpace]string{
		SpaceNone: "none", SpaceGlobal: "global", SpaceShared: "shared", SpaceLocal: "local",
	} {
		if s.String() != want {
			t.Errorf("MemSpace %d String = %s", s, s)
		}
	}
	for p, want := range map[AccessPattern]string{
		PatternCoalesced: "coalesced", PatternStrided2: "strided2",
		PatternStrided8: "strided8", PatternRandom: "random",
	} {
		if p.String() != want {
			t.Errorf("pattern %d String = %s", p, p)
		}
	}
}
