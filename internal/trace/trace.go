// Package trace provides cycle-accurate observation of a simulation: a
// recorder that samples every gating domain's state each cycle and renders
// ASCII waveforms. It exists for debugging gating policies and for
// demonstrating the paper's mechanisms at human scale (the `warpedgates
// trace` subcommand); statistics for the figures come from the simulator's
// own counters, not from traces.
package trace

import (
	"fmt"
	"strings"

	"warpedgates/internal/gating"
	"warpedgates/internal/isa"
	"warpedgates/internal/sim"
)

// Lane identifies one traced gating domain.
type Lane struct {
	Class   isa.Class
	Cluster int
}

// String names the lane.
func (l Lane) String() string {
	if l.Class == isa.SFU || l.Class == isa.LDST {
		return l.Class.String()
	}
	return fmt.Sprintf("%s%d", l.Class, l.Cluster)
}

// Sample is one lane's state during one cycle.
type Sample struct {
	Busy  bool
	State gating.State
}

// Glyph returns the waveform character for the sample:
//
//	# busy (instruction in the pipeline)
//	. idle but powered
//	u gated, uncompensated
//	C gated, compensated
//	w waking up
func (s Sample) Glyph() byte {
	switch {
	case s.Busy:
		return '#'
	case s.State == gating.StUncompensated:
		return 'u'
	case s.State == gating.StCompensated:
		return 'C'
	case s.State == gating.StWakeup:
		return 'w'
	default:
		return '.'
	}
}

// Recorder captures per-cycle samples of one SM's gating domains over a
// bounded window.
type Recorder struct {
	smID     int
	from, to int64
	lanes    []Lane
	samples  map[Lane][]Sample
	issues   []sim.IssueEvent
}

// NewRecorder traces SM smID over simulated cycles [from, to).
func NewRecorder(smID int, from, to int64) *Recorder {
	if to <= from {
		panic(fmt.Sprintf("trace: empty window [%d,%d)", from, to))
	}
	return &Recorder{
		smID:    smID,
		from:    from,
		to:      to,
		samples: make(map[Lane][]Sample),
	}
}

// Attach installs the recorder's probes on a GPU. Call before Run.
func (r *Recorder) Attach(g *sim.GPU) {
	g.SetCycleProbe(func(smID int, cycle int64, lanes []sim.LaneState) {
		if smID != r.smID || cycle < r.from || cycle >= r.to {
			return
		}
		for _, ls := range lanes {
			lane := Lane{Class: ls.Class, Cluster: ls.Cluster}
			if _, ok := r.samples[lane]; !ok {
				r.lanes = append(r.lanes, lane)
			}
			r.samples[lane] = append(r.samples[lane], Sample{Busy: ls.Busy, State: ls.State})
		}
	})
	g.SetIssueTracer(func(smID int, cycle int64, warpIdx int, class isa.Class, cluster int) {
		if smID != r.smID || cycle < r.from || cycle >= r.to {
			return
		}
		r.issues = append(r.issues, sim.IssueEvent{
			Cycle: cycle, Warp: warpIdx, Class: class, Cluster: cluster,
		})
	})
}

// Lanes returns the traced lanes in first-seen order.
func (r *Recorder) Lanes() []Lane { return r.lanes }

// Samples returns the recorded samples for a lane.
func (r *Recorder) Samples(l Lane) []Sample { return r.samples[l] }

// Issues returns the recorded issue events.
func (r *Recorder) Issues() []sim.IssueEvent { return r.issues }

// Window returns the traced cycle range.
func (r *Recorder) Window() (from, to int64) { return r.from, r.to }

// Waveform renders the trace as one ASCII line per lane, chunked into rows
// of width cycles. Legend: '#' busy, '.' idle powered, 'u' gated
// uncompensated, 'C' gated compensated, 'w' waking.
func (r *Recorder) Waveform(width int) string {
	if width <= 0 {
		width = 80
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SM %d cycles %d..%d  (#=busy .=idle u=uncompensated C=compensated w=wakeup)\n",
		r.smID, r.from, r.to-1)
	n := 0
	for _, l := range r.lanes {
		if len(r.samples[l]) > n {
			n = len(r.samples[l])
		}
	}
	for start := 0; start < n; start += width {
		end := start + width
		if end > n {
			end = n
		}
		fmt.Fprintf(&b, "cycle %d\n", r.from+int64(start))
		for _, l := range r.lanes {
			ss := r.samples[l]
			b.WriteString(fmt.Sprintf("%-5s ", l))
			for i := start; i < end && i < len(ss); i++ {
				b.WriteByte(ss[i].Glyph())
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// GatedFraction returns the fraction of traced cycles a lane spent gated.
func (r *Recorder) GatedFraction(l Lane) float64 {
	ss := r.samples[l]
	if len(ss) == 0 {
		return 0
	}
	n := 0
	for _, s := range ss {
		if s.State == gating.StUncompensated || s.State == gating.StCompensated {
			n++
		}
	}
	return float64(n) / float64(len(ss))
}

// BusyFraction returns the fraction of traced cycles a lane was executing.
func (r *Recorder) BusyFraction(l Lane) float64 {
	ss := r.samples[l]
	if len(ss) == 0 {
		return 0
	}
	n := 0
	for _, s := range ss {
		if s.Busy {
			n++
		}
	}
	return float64(n) / float64(len(ss))
}
