package trace

import (
	"strings"
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/gating"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
)

func recordRun(t *testing.T, gate config.GatingKind, from, to int64) *Recorder {
	t.Helper()
	cfg := config.Small()
	cfg.NumSMs = 1
	cfg.Scheduler = config.SchedGATES
	cfg.Gating = gate
	cfg.MaxCycles = int(to) + 1000
	k := kernels.MustBenchmark("hotspot").Scale(0.2)
	gpu, err := sim.NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(0, from, to)
	r.Attach(gpu)
	gpu.Run()
	return r
}

func TestRecorderCapturesWindow(t *testing.T) {
	r := recordRun(t, config.GateCoordBlackout, 100, 300)
	lanes := r.Lanes()
	if len(lanes) != 6 {
		t.Fatalf("lanes = %d, want 6 (INT0 INT1 FP0 FP1 SFU LDST)", len(lanes))
	}
	for _, l := range lanes {
		if got := len(r.Samples(l)); got != 200 {
			t.Fatalf("lane %s has %d samples, want 200", l, got)
		}
	}
	from, to := r.Window()
	if from != 100 || to != 300 {
		t.Fatalf("window = %d..%d", from, to)
	}
}

func TestRecorderIgnoresOtherSMs(t *testing.T) {
	cfg := config.Small()
	cfg.NumSMs = 2
	cfg.MaxCycles = 2000
	k := kernels.MustBenchmark("nw").Scale(0.2)
	gpu, err := sim.NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(1, 0, 500)
	r.Attach(gpu)
	gpu.Run()
	// Only SM 1 contributes; lane count unchanged, and issues belong to the
	// traced window.
	if len(r.Lanes()) != 6 {
		t.Fatalf("lanes = %d", len(r.Lanes()))
	}
	for _, ev := range r.Issues() {
		if ev.Cycle < 0 || ev.Cycle >= 500 {
			t.Fatalf("issue outside window at cycle %d", ev.Cycle)
		}
	}
}

func TestWaveformRendering(t *testing.T) {
	r := recordRun(t, config.GateCoordBlackout, 0, 160)
	wf := r.Waveform(80)
	for _, want := range []string{"INT0", "FP1", "SFU", "LDST", "cycle 0", "cycle 80"} {
		if !strings.Contains(wf, want) {
			t.Fatalf("waveform missing %q:\n%s", want, wf)
		}
	}
	// Busy cycles must appear somewhere in a 160-cycle window of hotspot.
	if !strings.Contains(wf, "#") {
		t.Fatal("waveform shows no busy cycles")
	}
}

func TestGlyphMapping(t *testing.T) {
	cases := []struct {
		s    Sample
		want byte
	}{
		{Sample{Busy: true, State: gating.StActive}, '#'},
		{Sample{State: gating.StActive}, '.'},
		{Sample{State: gating.StUncompensated}, 'u'},
		{Sample{State: gating.StCompensated}, 'C'},
		{Sample{State: gating.StWakeup}, 'w'},
	}
	for _, c := range cases {
		if got := c.s.Glyph(); got != c.want {
			t.Errorf("glyph(%+v) = %c, want %c", c.s, got, c.want)
		}
	}
}

func TestFractions(t *testing.T) {
	r := recordRun(t, config.GateCoordBlackout, 0, 2000)
	var sawGated bool
	for _, l := range r.Lanes() {
		g := r.GatedFraction(l)
		b := r.BusyFraction(l)
		if g < 0 || g > 1 || b < 0 || b > 1 {
			t.Fatalf("lane %s fractions out of range: gated=%v busy=%v", l, g, b)
		}
		if g > 0 {
			sawGated = true
		}
	}
	if !sawGated {
		t.Fatal("no lane ever gated under Coordinated Blackout")
	}
	// Unknown lane yields zeros.
	if r.GatedFraction(Lane{Class: isa.INT, Cluster: 9}) != 0 {
		t.Fatal("unknown lane should report 0")
	}
}

func TestNoGatingTraceIsCleanOfGatedStates(t *testing.T) {
	r := recordRun(t, config.GateNone, 0, 1000)
	for _, l := range r.Lanes() {
		if r.GatedFraction(l) != 0 {
			t.Fatalf("lane %s gated under GateNone", l)
		}
	}
}

func TestRecorderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty window accepted")
		}
	}()
	NewRecorder(0, 10, 10)
}

func TestLaneString(t *testing.T) {
	if (Lane{Class: isa.INT, Cluster: 1}).String() != "INT1" {
		t.Fatal("INT lane name wrong")
	}
	if (Lane{Class: isa.SFU}).String() != "SFU" {
		t.Fatal("SFU lane name wrong")
	}
}

// glyphToSample is the inverse of Sample.Glyph on its reachable range (a busy
// sample always renders '#' regardless of state, so '#' maps back to
// busy/Active — the invariant checker separately guarantees a busy lane is
// always powered).
func glyphToSample(g byte) (Sample, bool) {
	switch g {
	case '#':
		return Sample{Busy: true, State: gating.StActive}, true
	case '.':
		return Sample{State: gating.StActive}, true
	case 'u':
		return Sample{State: gating.StUncompensated}, true
	case 'C':
		return Sample{State: gating.StCompensated}, true
	case 'w':
		return Sample{State: gating.StWakeup}, true
	}
	return Sample{}, false
}

func TestGlyphRoundTrip(t *testing.T) {
	for _, s := range []Sample{
		{Busy: true, State: gating.StActive},
		{Busy: false, State: gating.StActive},
		{Busy: false, State: gating.StUncompensated},
		{Busy: false, State: gating.StCompensated},
		{Busy: false, State: gating.StWakeup},
	} {
		back, ok := glyphToSample(s.Glyph())
		if !ok {
			t.Fatalf("glyph %q not parseable", s.Glyph())
		}
		if back != s {
			t.Fatalf("sample %+v round-tripped to %+v via %q", s, back, s.Glyph())
		}
	}
}

func TestWaveformRoundTripsSamples(t *testing.T) {
	// Parse the rendered waveform back and compare glyph-for-glyph with the
	// recorded samples: the renderer must neither drop, reorder nor invent
	// cycles. Width 64 forces multiple chunked rows.
	r := recordRun(t, config.GateCoordBlackout, 100, 400)
	wf := r.Waveform(64)
	parsed := make(map[string][]byte)
	for _, line := range strings.Split(wf, "\n") {
		if line == "" || strings.HasPrefix(line, "SM ") || strings.HasPrefix(line, "cycle ") {
			continue
		}
		name := strings.TrimRight(line[:6], " ")
		parsed[name] = append(parsed[name], line[6:]...)
	}
	if len(parsed) != len(r.Lanes()) {
		t.Fatalf("waveform has %d lanes, recorder %d", len(parsed), len(r.Lanes()))
	}
	for _, l := range r.Lanes() {
		ss := r.Samples(l)
		glyphs := parsed[l.String()]
		if len(glyphs) != len(ss) {
			t.Fatalf("lane %s: %d glyphs vs %d samples", l, len(glyphs), len(ss))
		}
		for i, g := range glyphs {
			back, ok := glyphToSample(g)
			if !ok {
				t.Fatalf("lane %s cycle %d: unknown glyph %q", l, i, g)
			}
			want := ss[i]
			if back.Busy != want.Busy {
				t.Fatalf("lane %s cycle %d: glyph %q busy=%v, sample busy=%v", l, i, g, back.Busy, want.Busy)
			}
			if !want.Busy && back.State != want.State {
				t.Fatalf("lane %s cycle %d: glyph %q state=%v, sample state=%v", l, i, g, back.State, want.State)
			}
		}
	}
}

func TestFractionsMatchSampleCounts(t *testing.T) {
	// GatedFraction and BusyFraction are summaries of the same sample stream
	// the waveform renders; recompute both from Samples and compare exactly.
	r := recordRun(t, config.GateCoordBlackout, 100, 400)
	for _, l := range r.Lanes() {
		ss := r.Samples(l)
		var busy, gated int
		for _, s := range ss {
			if s.Busy {
				busy++
			}
			if s.State == gating.StUncompensated || s.State == gating.StCompensated {
				gated++
			}
		}
		if got, want := r.BusyFraction(l), float64(busy)/float64(len(ss)); got != want {
			t.Fatalf("lane %s BusyFraction %v, samples say %v", l, got, want)
		}
		if got, want := r.GatedFraction(l), float64(gated)/float64(len(ss)); got != want {
			t.Fatalf("lane %s GatedFraction %v, samples say %v", l, got, want)
		}
	}
}

func TestFractionsEmptyLane(t *testing.T) {
	r := NewRecorder(0, 0, 10)
	ghost := Lane{Class: isa.SFU}
	if r.GatedFraction(ghost) != 0 || r.BusyFraction(ghost) != 0 {
		t.Fatal("fractions of an untraced lane should be 0")
	}
}
