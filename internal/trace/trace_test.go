package trace

import (
	"strings"
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/gating"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
)

func recordRun(t *testing.T, gate config.GatingKind, from, to int64) *Recorder {
	t.Helper()
	cfg := config.Small()
	cfg.NumSMs = 1
	cfg.Scheduler = config.SchedGATES
	cfg.Gating = gate
	cfg.MaxCycles = int(to) + 1000
	k := kernels.MustBenchmark("hotspot").Scale(0.2)
	gpu, err := sim.NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(0, from, to)
	r.Attach(gpu)
	gpu.Run()
	return r
}

func TestRecorderCapturesWindow(t *testing.T) {
	r := recordRun(t, config.GateCoordBlackout, 100, 300)
	lanes := r.Lanes()
	if len(lanes) != 6 {
		t.Fatalf("lanes = %d, want 6 (INT0 INT1 FP0 FP1 SFU LDST)", len(lanes))
	}
	for _, l := range lanes {
		if got := len(r.Samples(l)); got != 200 {
			t.Fatalf("lane %s has %d samples, want 200", l, got)
		}
	}
	from, to := r.Window()
	if from != 100 || to != 300 {
		t.Fatalf("window = %d..%d", from, to)
	}
}

func TestRecorderIgnoresOtherSMs(t *testing.T) {
	cfg := config.Small()
	cfg.NumSMs = 2
	cfg.MaxCycles = 2000
	k := kernels.MustBenchmark("nw").Scale(0.2)
	gpu, err := sim.NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(1, 0, 500)
	r.Attach(gpu)
	gpu.Run()
	// Only SM 1 contributes; lane count unchanged, and issues belong to the
	// traced window.
	if len(r.Lanes()) != 6 {
		t.Fatalf("lanes = %d", len(r.Lanes()))
	}
	for _, ev := range r.Issues() {
		if ev.Cycle < 0 || ev.Cycle >= 500 {
			t.Fatalf("issue outside window at cycle %d", ev.Cycle)
		}
	}
}

func TestWaveformRendering(t *testing.T) {
	r := recordRun(t, config.GateCoordBlackout, 0, 160)
	wf := r.Waveform(80)
	for _, want := range []string{"INT0", "FP1", "SFU", "LDST", "cycle 0", "cycle 80"} {
		if !strings.Contains(wf, want) {
			t.Fatalf("waveform missing %q:\n%s", want, wf)
		}
	}
	// Busy cycles must appear somewhere in a 160-cycle window of hotspot.
	if !strings.Contains(wf, "#") {
		t.Fatal("waveform shows no busy cycles")
	}
}

func TestGlyphMapping(t *testing.T) {
	cases := []struct {
		s    Sample
		want byte
	}{
		{Sample{Busy: true, State: gating.StActive}, '#'},
		{Sample{State: gating.StActive}, '.'},
		{Sample{State: gating.StUncompensated}, 'u'},
		{Sample{State: gating.StCompensated}, 'C'},
		{Sample{State: gating.StWakeup}, 'w'},
	}
	for _, c := range cases {
		if got := c.s.Glyph(); got != c.want {
			t.Errorf("glyph(%+v) = %c, want %c", c.s, got, c.want)
		}
	}
}

func TestFractions(t *testing.T) {
	r := recordRun(t, config.GateCoordBlackout, 0, 2000)
	var sawGated bool
	for _, l := range r.Lanes() {
		g := r.GatedFraction(l)
		b := r.BusyFraction(l)
		if g < 0 || g > 1 || b < 0 || b > 1 {
			t.Fatalf("lane %s fractions out of range: gated=%v busy=%v", l, g, b)
		}
		if g > 0 {
			sawGated = true
		}
	}
	if !sawGated {
		t.Fatal("no lane ever gated under Coordinated Blackout")
	}
	// Unknown lane yields zeros.
	if r.GatedFraction(Lane{Class: isa.INT, Cluster: 9}) != 0 {
		t.Fatal("unknown lane should report 0")
	}
}

func TestNoGatingTraceIsCleanOfGatedStates(t *testing.T) {
	r := recordRun(t, config.GateNone, 0, 1000)
	for _, l := range r.Lanes() {
		if r.GatedFraction(l) != 0 {
			t.Fatalf("lane %s gated under GateNone", l)
		}
	}
}

func TestRecorderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty window accepted")
		}
	}()
	NewRecorder(0, 10, 10)
}

func TestLaneString(t *testing.T) {
	if (Lane{Class: isa.INT, Cluster: 1}).String() != "INT1" {
		t.Fatal("INT lane name wrong")
	}
	if (Lane{Class: isa.SFU}).String() != "SFU" {
		t.Fatal("SFU lane name wrong")
	}
}
