// Package check is the cycle-level invariant checker of the reproduction:
// it attaches to the simulator's observation hooks (sim.GPU.SetCycleProbe and
// sim.GPU.SetIssueTracer) and verifies, every cycle, the conservation laws the
// paper's metrics rest on — no issue to a power-gated or waking unit, the
// wakeup latency honored exactly, break-even windows accounted exactly once,
// the scheduler never double-issuing a warp, and at drain the per-domain
// DomainStats counters matching an independent reconstruction from the
// observed per-lane state stream plus the workload's conserved instruction
// count.
//
// The checker is pure observation: it installs probes, never mutates the
// simulation, and a checked run produces bit-identical reports to an
// unchecked one. One Checker verifies one simulation; for matrix runs the
// Instrument adapter plugs into core.Runner's Instrument hook and builds a
// fresh Checker per uncached simulation, which makes the whole harness safe
// under the parallel runner and `go test -race`.
package check

import (
	"errors"
	"fmt"
	"strings"

	"warpedgates/internal/config"
	"warpedgates/internal/gating"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
)

// MaxViolations bounds how many violations each SM's shard (and the
// device-level Finish pass) records in detail; beyond it only the count
// grows. A single broken invariant typically fires every cycle, so the cap
// keeps a failing run's error readable.
const MaxViolations = 50

// Violation is one detected invariant breach.
type Violation struct {
	SM    int   // SM index, or -1 for whole-device (end-of-run) checks
	Cycle int64 // simulated cycle of the breach
	Rule  string
	Detail string
}

// String renders the violation for error messages.
func (v Violation) String() string {
	return fmt.Sprintf("sm=%d cycle=%d [%s] %s", v.SM, v.Cycle, v.Rule, v.Detail)
}

// Checker verifies one simulation. Build it with New, install with Attach,
// run the GPU, then call Finish with the final report. Attach exactly one
// Checker per GPU. Observation state is sharded per SM with no shared
// mutable fields, so the probe and tracer callbacks of *different* SMs may
// fire concurrently — which is exactly what the parallel engine
// (config.IntraRunWorkers > 1) does, each worker goroutine stepping its own
// SM shard. Callbacks for one SM must stay serial (the simulator guarantees
// this: an SM is stepped by one goroutine), and Finish plus the accessors
// must be called after the run completes.
type Checker struct {
	cfg    config.Config
	kernel *kernels.Kernel // may be nil: the drained-work check is then skipped

	sms []*smChecker // indexed by SM id; nil until first observed

	// Aggregates over the shards, computed by Finish (single-threaded).
	issuedByClass [isa.NumClasses]uint64
	issuedTotal   uint64

	// Device-level (Finish-pass) evaluations and breaches; the per-SM
	// counterparts live on the shards.
	checks     uint64
	violations []Violation
	dropped    uint64
}

// smChecker holds one SM's observation state — including its own check and
// violation counters, so concurrent shards never write-share.
type smChecker struct {
	id        int
	ticks     int64
	lastCycle int64 // last probed cycle; -1 before the first probe
	lanes     []*laneChecker

	pend      []issueRec // issue events of the in-progress cycle
	pendCycle int64

	issuedByClass [isa.NumClasses]uint64
	issuedTotal   uint64

	checks     uint64
	violations []Violation
	dropped    uint64
}

// issueRec is one buffered issue-tracer event, matched against the same
// cycle's probe (the tracer fires during the issue stage, the probe after the
// gating controllers tick).
type issueRec struct {
	warp    int
	class   isa.Class
	cluster int
}

// laneChecker shadows one gating domain. The probe reports the *post-tick*
// state each cycle while the controller's Stats count by *pre-tick* state;
// the two sequences are offset by one cycle, which Finish reconciles with
// exact boundary terms (the pre-state of the first tick is always StActive,
// and the final post-state is never counted by a tick).
type laneChecker struct {
	class   isa.Class
	cluster int
	kind    config.GatingKind // effective gating policy of this lane

	hasPrev bool
	prev    gating.State

	obs  [4]uint64 // observed post-tick cycles per state
	busy uint64
	idle uint64

	// In-progress run tracking for the window invariants.
	uncompRun int // observed cycles of the current uncompensated window
	wakeRun   int // observed cycles of the current wakeup sequence
	idleRun   int // length of the in-progress idle run

	// Observed idle-run distribution summary (cross-checked against the
	// domain's IdlePeriods histogram).
	idleRuns   uint64
	idleRunSum uint64
	idleRunMin int // -1 until the first completed run
	idleRunMax int

	gatingEvents uint64
	wakeups      uint64
}

// New builds a checker for one simulation of kernel k under cfg. k may be nil
// when the workload is not known (the drained-instruction-count check is then
// skipped); every other invariant still applies.
func New(cfg config.Config, k *kernels.Kernel) *Checker {
	n := cfg.NumSMs
	if n < 1 {
		n = 1
	}
	return &Checker{cfg: cfg, kernel: k, sms: make([]*smChecker, n)}
}

// Attach installs the checker's probes on g. It replaces any probe or tracer
// already installed; observation consumers and the checker cannot share a GPU.
func (c *Checker) Attach(g *sim.GPU) {
	g.SetCycleProbe(c.onProbe)
	g.SetIssueTracer(c.onIssue)
}

// Checks returns the number of individual invariant evaluations performed,
// summed over the SM shards and the device-level Finish pass.
func (c *Checker) Checks() uint64 {
	total := c.checks
	for _, s := range c.sms {
		if s != nil {
			total += s.checks
		}
	}
	return total
}

// Violations returns the recorded violations (each shard capped at
// MaxViolations) in ascending SM-id order, device-level checks last — a
// deterministic order regardless of how many goroutines drove the run.
func (c *Checker) Violations() []Violation {
	var out []Violation
	for _, s := range c.sms {
		if s != nil {
			out = append(out, s.violations...)
		}
	}
	return append(out, c.violations...)
}

// Err summarizes all violations as one error, or nil for a clean run.
func (c *Checker) Err() error {
	vs := c.Violations()
	dropped := c.dropped
	for _, s := range c.sms {
		if s != nil {
			dropped += s.dropped
		}
	}
	if len(vs) == 0 && dropped == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s)", uint64(len(vs))+dropped)
	const show = 10
	for i, v := range vs {
		if i == show {
			fmt.Fprintf(&b, "\n  ... and %d more", uint64(len(vs)-show)+dropped)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return errors.New(b.String())
}

// violate records one device-level breach (the Finish pass), keeping at most
// MaxViolations details.
func (c *Checker) violate(smID int, cycle int64, rule, format string, args ...interface{}) {
	if len(c.violations) >= MaxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, Violation{
		SM: smID, Cycle: cycle, Rule: rule, Detail: fmt.Sprintf(format, args...),
	})
}

// violate records one breach against this SM's shard.
func (s *smChecker) violate(cycle int64, rule, format string, args ...interface{}) {
	if len(s.violations) >= MaxViolations {
		s.dropped++
		return
	}
	s.violations = append(s.violations, Violation{
		SM: s.id, Cycle: cycle, Rule: rule, Detail: fmt.Sprintf(format, args...),
	})
}

// auxGatingKind mirrors the SM's policy split: the paper's blackout machinery
// targets the clustered INT/FP pipes; SFU/LDST fall back to conventional
// gating unless the BlackoutAux extension is on (then Naive Blackout).
func auxGatingKind(cfg config.Config) config.GatingKind {
	k := cfg.Gating
	if k == config.GateNaiveBlackout || k == config.GateCoordBlackout {
		if cfg.BlackoutAux {
			return config.GateNaiveBlackout
		}
		return config.GateConventional
	}
	return k
}

// isBlackout reports whether kind forbids waking before break-even.
func isBlackout(kind config.GatingKind) bool {
	return kind == config.GateNaiveBlackout || kind == config.GateCoordBlackout
}

// laneName names a lane for violation messages.
func laneName(class isa.Class, cluster int) string {
	if class == isa.SFU || class == isa.LDST {
		return class.String()
	}
	return fmt.Sprintf("%s%d", class, cluster)
}

// sm returns (creating on first sight) the per-SM state. Slot smID is only
// ever touched by the goroutine stepping that SM, so creation needs no lock.
func (c *Checker) sm(smID int) *smChecker {
	if smID < 0 || smID >= len(c.sms) {
		panic(fmt.Sprintf("check: probe from SM %d outside the configured %d SMs", smID, len(c.sms)))
	}
	s := c.sms[smID]
	if s == nil {
		s = &smChecker{id: smID, lastCycle: -1, pendCycle: -1}
		c.sms[smID] = s
	}
	return s
}

// onIssue buffers one issue event for correlation with this cycle's probe and
// maintains the conserved instruction totals.
func (c *Checker) onIssue(smID int, cycle int64, warpIdx int, class isa.Class, cluster int) {
	s := c.sm(smID)
	s.checks++
	if !class.Valid() {
		s.violate(cycle, "issue-class", "issue with invalid class %v", class)
		return
	}
	if s.pendCycle != cycle {
		if len(s.pend) > 0 {
			// The previous cycle's issues were never matched by a probe:
			// the hook wiring itself is broken.
			s.violate(cycle, "issue-probe-skew",
				"%d unmatched issue events from cycle %d", len(s.pend), s.pendCycle)
			s.pend = s.pend[:0]
		}
		s.pendCycle = cycle
	}
	s.pend = append(s.pend, issueRec{warp: warpIdx, class: class, cluster: cluster})
	s.issuedByClass[class]++
	s.issuedTotal++
}

// onProbe is the per-cycle heart of the checker: it validates the lane
// layout, advances every lane's shadow state machine, and matches the cycle's
// buffered issue events against the observed lane states.
func (c *Checker) onProbe(smID int, cycle int64, lanes []sim.LaneState) {
	s := c.sm(smID)

	// An SM steps every cycle from its first step until it drains, so probe
	// cycles must be contiguous.
	s.checks++
	if s.lastCycle >= 0 && cycle != s.lastCycle+1 {
		s.violate(cycle, "probe-continuity", "probe jumped from cycle %d to %d", s.lastCycle, cycle)
	}
	s.lastCycle = cycle
	s.ticks++

	if s.lanes == nil {
		aux := auxGatingKind(c.cfg)
		for _, ls := range lanes {
			kind := c.cfg.Gating
			if ls.Class == isa.SFU || ls.Class == isa.LDST {
				kind = aux
			}
			s.lanes = append(s.lanes, &laneChecker{
				class: ls.Class, cluster: ls.Cluster, kind: kind, idleRunMin: -1,
			})
		}
	}
	s.checks++
	if len(lanes) != len(s.lanes) {
		s.violate(cycle, "lane-layout", "probe with %d lanes, first probe had %d", len(lanes), len(s.lanes))
		s.pend = s.pend[:0]
		return
	}
	for i := range lanes {
		l := s.lanes[i]
		s.checks++
		if l.class != lanes[i].Class || l.cluster != lanes[i].Cluster {
			s.violate(cycle, "lane-layout", "lane %d is %s, first probe had %s",
				i, laneName(lanes[i].Class, lanes[i].Cluster), laneName(l.class, l.cluster))
			continue
		}
		c.laneCycle(s, l, cycle, lanes[i])
	}
	c.matchIssues(s, cycle, lanes)
}

// laneCycle advances one lane's shadow state machine by one observed cycle.
func (c *Checker) laneCycle(s *smChecker, l *laneChecker, cycle int64, ls sim.LaneState) {
	st := ls.State
	s.checks++
	if int(st) >= len(l.obs) {
		s.violate(cycle, "state-range", "%s in unknown state %v", laneName(l.class, l.cluster), st)
		return
	}
	l.obs[st]++
	if ls.Busy {
		l.busy++
	} else {
		l.idle++
	}

	// A gated or waking unit never has an instruction in its pipeline.
	s.checks++
	if ls.Busy && st != gating.StActive {
		s.violate(cycle, "busy-while-unpowered", "%s busy in state %s", laneName(l.class, l.cluster), st)
	}

	// Idle-run bookkeeping mirrors Controller.endIdleRun exactly (same
	// busy flag: the probe and the controller tick observe the same value).
	if ls.Busy {
		l.endIdleRun()
	} else {
		l.idleRun++
	}

	// Transition legality. The pre-state of a lane's first observed cycle is
	// always StActive (controllers power up active).
	prev := gating.StActive
	if l.hasPrev {
		prev = l.prev
	}
	bet, delay := c.cfg.BreakEven, c.cfg.WakeupDelay
	s.checks++
	switch prev {
	case gating.StActive:
		switch st {
		case gating.StActive:
			// powered, no event
		case gating.StUncompensated:
			l.gatingEvents++
			l.uncompRun = 1
		default:
			s.violate(cycle, "illegal-transition", "%s Active -> %s", laneName(l.class, l.cluster), st)
		}
	case gating.StUncompensated:
		switch st {
		case gating.StUncompensated:
			l.uncompRun++
			if l.uncompRun > bet {
				s.violate(cycle, "bet-overrun",
					"%s uncompensated for %d cycles, break-even is %d", laneName(l.class, l.cluster), l.uncompRun, bet)
			}
		case gating.StCompensated:
			if l.uncompRun != bet {
				s.violate(cycle, "bet-miscount",
					"%s compensated after %d uncompensated cycles, want exactly %d", laneName(l.class, l.cluster), l.uncompRun, bet)
			}
		case gating.StWakeup, gating.StActive:
			// Waking before break-even: legal only for conventional gating
			// (a negative event); blackout policies must serve their time.
			if isBlackout(l.kind) {
				s.violate(cycle, "blackout-early-wake",
					"%s (%s) woke %d cycles into a %d-cycle break-even window", laneName(l.class, l.cluster), l.kind, l.uncompRun, bet)
			}
			l.wakeups++
			l.beginWake(c, s, cycle, st, delay)
		}
	case gating.StCompensated:
		switch st {
		case gating.StCompensated:
			// compensated, no event
		case gating.StWakeup, gating.StActive:
			l.wakeups++
			l.beginWake(c, s, cycle, st, delay)
		default:
			s.violate(cycle, "illegal-transition", "%s Compensated -> %s", laneName(l.class, l.cluster), st)
		}
	case gating.StWakeup:
		switch st {
		case gating.StWakeup:
			l.wakeRun++
			if l.wakeRun > delay {
				s.violate(cycle, "wakeup-overrun",
					"%s waking for %d cycles, delay is %d", laneName(l.class, l.cluster), l.wakeRun, delay)
			}
		case gating.StActive:
			if l.wakeRun != delay {
				s.violate(cycle, "wakeup-latency",
					"%s became operational after %d wakeup cycles, want %d", laneName(l.class, l.cluster), l.wakeRun, delay)
			}
		default:
			s.violate(cycle, "illegal-transition", "%s Wakeup -> %s", laneName(l.class, l.cluster), st)
		}
	}
	l.prev = st
	l.hasPrev = true
}

// beginWake validates the first cycle of a wakeup sequence: with a zero
// wakeup delay the unit is operational immediately (never observed in
// StWakeup); otherwise it must pass through exactly delay StWakeup cycles.
func (l *laneChecker) beginWake(c *Checker, s *smChecker, cycle int64, st gating.State, delay int) {
	s.checks++
	if st == gating.StActive {
		if delay != 0 {
			s.violate(cycle, "wakeup-skipped",
				"%s went gated -> Active directly with wakeup delay %d", laneName(l.class, l.cluster), delay)
		}
		return
	}
	if delay == 0 {
		s.violate(cycle, "wakeup-spurious",
			"%s entered Wakeup with a zero wakeup delay", laneName(l.class, l.cluster))
	}
	l.wakeRun = 1
}

// endIdleRun closes the lane's in-progress idle run, mirroring the
// controller's histogram bookkeeping.
func (l *laneChecker) endIdleRun() {
	if l.idleRun == 0 {
		return
	}
	l.idleRuns++
	l.idleRunSum += uint64(l.idleRun)
	if l.idleRunMin < 0 || l.idleRun < l.idleRunMin {
		l.idleRunMin = l.idleRun
	}
	if l.idleRun > l.idleRunMax {
		l.idleRunMax = l.idleRun
	}
	l.idleRun = 0
}

// matchIssues correlates the cycle's buffered issue events with the observed
// lane states: every issue must land on a powered, now-busy lane, no warp may
// issue twice in a cycle, no lane may accept two issues in a cycle, and the
// SM may not exceed its scheduler count.
func (c *Checker) matchIssues(s *smChecker, cycle int64, lanes []sim.LaneState) {
	if len(s.pend) == 0 {
		return
	}
	s.checks++
	if s.pendCycle != cycle {
		s.violate(cycle, "issue-probe-skew",
			"%d issue events from cycle %d matched against probe cycle %d", len(s.pend), s.pendCycle, cycle)
		s.pend = s.pend[:0]
		return
	}
	s.checks++
	if len(s.pend) > c.cfg.NumSchedulers {
		s.violate(cycle, "issue-width",
			"%d issues in one cycle with %d schedulers", len(s.pend), c.cfg.NumSchedulers)
	}
	for i, ev := range s.pend {
		s.checks += 2
		for j := 0; j < i; j++ {
			if s.pend[j].warp == ev.warp {
				s.violate(cycle, "double-issue",
					"warp %d issued twice in one cycle (scoreboard breach)", ev.warp)
			}
			if s.pend[j].class == ev.class && s.pend[j].cluster == ev.cluster {
				s.violate(cycle, "port-double-issue",
					"%s accepted two issues in one cycle", laneName(ev.class, ev.cluster))
			}
		}
		found := false
		for k := range lanes {
			if lanes[k].Class != ev.class || lanes[k].Cluster != ev.cluster {
				continue
			}
			found = true
			s.checks += 2
			if lanes[k].State != gating.StActive {
				s.violate(cycle, "issue-to-gated",
					"warp %d issued to %s while it is %s", ev.warp, laneName(ev.class, ev.cluster), lanes[k].State)
			}
			if !lanes[k].Busy {
				s.violate(cycle, "issue-not-busy",
					"warp %d issued to %s but the pipe shows no occupancy", ev.warp, laneName(ev.class, ev.cluster))
			}
			break
		}
		s.checks++
		if !found {
			s.violate(cycle, "issue-unknown-lane",
				"issue to unprobed lane %s", laneName(ev.class, ev.cluster))
		}
	}
	s.pend = s.pend[:0]
}
