package check

import (
	"sync"

	"warpedgates/internal/config"
	"warpedgates/internal/gating"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
)

// domainAgg accumulates one class's observed counters across all its lanes,
// already converted to the pre-tick accounting the controllers use.
type domainAgg struct {
	lanes      int
	busy       uint64
	idle       uint64
	powered    uint64
	gated      uint64
	uncomp     uint64
	comp       uint64
	events     uint64
	wakeups    uint64
	idleRuns   uint64
	idleRunSum uint64
	idleRunMin int // -1 when no lane completed a run
	idleRunMax int
}

// Finish closes every in-progress observation window, reconciles the
// independently reconstructed per-domain counters against rep, verifies the
// report's own conservation laws (busy+idle == powered+gated == cell-cycles,
// uncomp+comp == gated, histogram sum == idle cycles), and — when the
// workload is known and fully drained — checks that issued instructions
// equal the kernel's conserved dynamic instruction count. It returns Err().
func (c *Checker) Finish(rep *sim.Report) error {
	if rep == nil {
		c.violate(-1, 0, "finish", "Finish called with a nil report")
		return c.Err()
	}

	// The controllers' pre-tick counters relate to the observed post-tick
	// stream by exact boundary terms: a lane ticked N times has pre-states
	// {Active, post_1, ..., post_{N-1}} — the first pre-state is always
	// Active (controllers power up active) and the final post-state is never
	// a pre-state.
	var agg [isa.NumClasses]domainAgg
	for i := range agg {
		agg[i].idleRunMin = -1
	}
	// Fold the per-SM shards' conserved instruction counters into the
	// device-level aggregates the reconciliation below runs on. The shards
	// stopped mutating when the run drained, so this pass is single-threaded.
	c.issuedTotal = 0
	c.issuedByClass = [isa.NumClasses]uint64{}
	for _, s := range c.sms {
		if s == nil {
			continue
		}
		c.issuedTotal += s.issuedTotal
		for cl := range s.issuedByClass {
			c.issuedByClass[cl] += s.issuedByClass[cl]
		}
	}
	var maxTicks int64
	for _, s := range c.sms {
		if s == nil {
			continue
		}
		if s.ticks > maxTicks {
			maxTicks = s.ticks
		}
		c.checks++
		if len(s.pend) > 0 {
			c.violate(s.id, s.pendCycle, "issue-probe-skew",
				"%d issue events never matched by a probe", len(s.pend))
		}
		for _, l := range s.lanes {
			l.endIdleRun()
			g := &agg[l.class]
			g.lanes++
			g.busy += l.busy
			g.idle += l.idle
			g.powered += l.obs[gating.StActive] + l.obs[gating.StWakeup] + 1
			g.gated += l.obs[gating.StUncompensated] + l.obs[gating.StCompensated]
			g.uncomp += l.obs[gating.StUncompensated]
			g.comp += l.obs[gating.StCompensated]
			switch l.prev {
			case gating.StActive, gating.StWakeup:
				g.powered--
			case gating.StUncompensated:
				g.gated--
				g.uncomp--
			case gating.StCompensated:
				g.gated--
				g.comp--
			}
			g.events += l.gatingEvents
			g.wakeups += l.wakeups
			g.idleRuns += l.idleRuns
			g.idleRunSum += l.idleRunSum
			if l.idleRunMin >= 0 && (g.idleRunMin < 0 || l.idleRunMin < g.idleRunMin) {
				g.idleRunMin = l.idleRunMin
			}
			if l.idleRunMax > g.idleRunMax {
				g.idleRunMax = l.idleRunMax
			}
		}
	}

	cyc := rep.Cycles
	c.eq(cyc, "cycles", uint64(cyc), uint64(maxTicks), "report cycle count vs longest observed SM")
	c.checks++
	if rep.RanOut {
		if c.cfg.MaxCycles <= 0 || cyc != int64(c.cfg.MaxCycles) {
			c.violate(-1, cyc, "ranout", "RanOut with %d cycles, MaxCycles=%d", cyc, c.cfg.MaxCycles)
		}
	} else if c.cfg.MaxCycles > 0 && cyc > int64(c.cfg.MaxCycles) {
		c.violate(-1, cyc, "ranout", "%d cycles exceed MaxCycles=%d without RanOut", cyc, c.cfg.MaxCycles)
	}

	var repIssued uint64
	for cl := isa.Class(0); cl < isa.NumClasses; cl++ {
		c.finishDomain(rep, cl, &agg[cl])
		repIssued += rep.IssuedByClass[cl]
	}
	c.eq(cyc, "issued-total", rep.IssuedTotal, c.issuedTotal, "report IssuedTotal vs traced issues")
	c.eq(cyc, "issued-total", rep.IssuedTotal, repIssued, "report IssuedTotal vs sum of IssuedByClass")

	// Conservation at drain: every simulated run that did not hit MaxCycles
	// must have issued (and, since the probe outlives the last writeback,
	// retired) exactly the workload's dynamic instruction count.
	if !rep.RanOut && c.kernel != nil {
		c.eq(cyc, "drain-conservation", ExpectedIssued(c.cfg, c.kernel), c.issuedTotal,
			"kernel dynamic instruction count vs issued at drain")
	}
	return c.Err()
}

// finishDomain reconciles one class's DomainStats against the observation
// aggregate and checks the report's internal partition laws.
func (c *Checker) finishDomain(rep *sim.Report, cl isa.Class, g *domainAgg) {
	d := &rep.Domains[cl]
	cyc := rep.Cycles
	name := "domain " + cl.String()

	c.eq(cyc, "domain-lanes", uint64(d.Clusters), uint64(g.lanes), name+" Clusters vs probed lanes")
	if g.lanes == 0 {
		// A class with no pipes (impossible today) or a run with zero probed
		// cycles: only the zero-ness of the report matters.
		c.eq(cyc, "domain-empty", d.CellCycles(), 0, name+" counters without probed lanes")
		return
	}

	c.eq(cyc, "domain-busy", d.BusyCycles, g.busy, name+" BusyCycles vs observed busy")
	c.eq(cyc, "domain-idle", d.IdleCycles, g.idle, name+" IdleCycles vs observed idle")
	c.eq(cyc, "domain-powered", d.PoweredCycles, g.powered, name+" PoweredCycles vs observed powered")
	c.eq(cyc, "domain-gated", d.GatedCycles, g.gated, name+" GatedCycles vs observed gated")
	c.eq(cyc, "domain-uncomp", d.UncompCycles, g.uncomp, name+" UncompCycles vs observed uncompensated")
	c.eq(cyc, "domain-comp", d.CompCycles, g.comp, name+" CompCycles vs observed compensated")
	c.eq(cyc, "domain-gatings", d.GatingEvents, g.events, name+" GatingEvents vs observed Active->Uncomp transitions")
	c.eq(cyc, "domain-wakeups", d.Wakeups, g.wakeups, name+" Wakeups vs observed gated->wake transitions")
	c.eq(cyc, "domain-issued", d.IssuedInstrs, c.issuedByClass[cl], name+" IssuedInstrs vs traced issues")

	// Partition laws: the busy/idle and powered/gated splits both cover every
	// domain-cycle exactly once, and gated splits into uncomp+comp.
	c.eq(cyc, "domain-partition", d.BusyCycles+d.IdleCycles, d.PoweredCycles+d.GatedCycles,
		name+" busy+idle vs powered+gated")
	c.eq(cyc, "domain-partition", d.UncompCycles+d.CompCycles, d.GatedCycles, name+" uncomp+comp vs gated")
	c.checks++
	if d.Wakeups > d.GatingEvents {
		c.violate(-1, cyc, "domain-wakeups", "%s has %d wakeups for %d gating events", name, d.Wakeups, d.GatingEvents)
	}

	// Idle-period histogram: every idle cycle belongs to exactly one recorded
	// idle run (the paper's Fig. 5b/Fig. 8 bookkeeping).
	h := d.IdlePeriods
	c.eq(cyc, "idle-histogram", uint64(h.Sum()), d.IdleCycles, name+" IdlePeriods sum vs IdleCycles")
	c.eq(cyc, "idle-histogram", uint64(h.Total()), g.idleRuns, name+" IdlePeriods count vs observed idle runs")
	c.eq(cyc, "idle-histogram", uint64(h.Sum()), g.idleRunSum, name+" IdlePeriods sum vs observed idle run lengths")
	if g.idleRuns > 0 {
		c.eq(cyc, "idle-histogram", uint64(h.Min()), uint64(g.idleRunMin), name+" IdlePeriods min vs observed")
		c.eq(cyc, "idle-histogram", uint64(h.Max()), uint64(g.idleRunMax), name+" IdlePeriods max vs observed")
	}

	// Policy laws on the report itself.
	kind := c.cfg.Gating
	if cl == isa.SFU || cl == isa.LDST {
		kind = auxGatingKind(c.cfg)
	}
	c.checks++
	switch {
	case kind == config.GateNone:
		if d.GatedCycles != 0 || d.GatingEvents != 0 || d.Wakeups != 0 {
			c.violate(-1, cyc, "gating-disabled", "%s gated %d cycles under %s", name, d.GatedCycles, kind)
		}
	case isBlackout(kind):
		if d.NegativeEvents != 0 {
			c.violate(-1, cyc, "blackout-negative", "%s reports %d negative events under %s", name, d.NegativeEvents, kind)
		}
	}
}

// eq is one exact-equality invariant evaluation.
func (c *Checker) eq(cycle int64, rule string, got, want uint64, what string) {
	c.checks++
	if got != want {
		c.violate(-1, cycle, rule, "%s: %d != %d", what, got, want)
	}
}

// ExpectedIssued returns the dynamic instruction count a fully drained
// simulation of kernel k under cfg must issue — the sim's warp-table geometry
// (CTA slots clamped by the SM's warp budget) replayed arithmetically. It is
// the conserved quantity behind the issued == retired drain check.
func ExpectedIssued(cfg config.Config, k *kernels.Kernel) uint64 {
	conc := k.MaxConcurrentCTAs
	if max := cfg.MaxWarpsPerSM / k.WarpsPerCTA; conc > max {
		conc = max
	}
	if conc < 1 {
		conc = 1
	}
	nWarps := conc * k.WarpsPerCTA
	if nWarps > cfg.MaxWarpsPerSM {
		nWarps = cfg.MaxWarpsPerSM
	}
	warpsPerCTA := k.WarpsPerCTA
	if warpsPerCTA > nWarps {
		warpsPerCTA = nWarps
	}
	perWarp := uint64(k.TotalWarpInstructions())
	if k.PerWarpSlice {
		perWarp = 1
	}
	return uint64(cfg.NumSMs) * uint64(k.CTAsPerSM) * uint64(warpsPerCTA) * perWarp
}

// Summary accumulates checker outcomes across a matrix of runs. It is safe
// for concurrent use, matching Runner.Instrument's concurrency contract.
type Summary struct {
	mu     sync.Mutex
	runs   int
	checks uint64
}

// record folds one finished checker into the summary.
func (s *Summary) record(c *Checker) {
	s.mu.Lock()
	s.runs++
	s.checks += c.Checks()
	s.mu.Unlock()
}

// Snapshot returns the number of checked simulations and the total invariant
// evaluations performed so far.
func (s *Summary) Snapshot() (runs int, checks uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs, s.checks
}

// Instrument returns a hook for core.Runner's Instrument field: each uncached
// simulation gets a fresh Checker attached, and its Finish error fails the
// run. sum, when non-nil, collects per-run totals and may be shared across
// runners.
func Instrument(sum *Summary) func(bench string, cfg config.Config, k *kernels.Kernel, g *sim.GPU) func(*sim.Report) error {
	return func(bench string, cfg config.Config, k *kernels.Kernel, g *sim.GPU) func(*sim.Report) error {
		c := New(cfg, k)
		c.Attach(g)
		return func(rep *sim.Report) error {
			err := c.Finish(rep)
			if sum != nil {
				sum.record(c)
			}
			return err
		}
	}
}

// Run simulates kernel k under cfg with a checker attached and returns the
// report, the checker (for its counters), and the checker's verdict.
func Run(cfg config.Config, k *kernels.Kernel) (*sim.Report, *Checker, error) {
	gpu, err := sim.NewGPU(cfg, k)
	if err != nil {
		return nil, nil, err
	}
	c := New(cfg, k)
	c.Attach(gpu)
	rep := gpu.Run()
	return rep, c, c.Finish(rep)
}
