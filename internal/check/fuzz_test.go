package check_test

// FuzzBuilderCheckedSim drives kernels.Builder with randomized-but-valid
// profiles and runs each generated kernel through a full checked simulation:
// whatever instruction mix, dependence shape and occupancy the fuzzer
// invents, every cycle-level invariant must hold. The seed corpus makes this
// a deterministic table test under plain `go test`; `go test -fuzz` explores
// further.

import (
	"testing"

	"warpedgates/internal/check"
	"warpedgates/internal/config"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/stats"
)

// fuzzProfile maps arbitrary fuzz bytes onto a valid Profile: the four mix
// weights are normalized to sum exactly to 1, and every shape parameter is
// clamped into its legal range by deterministic derivation from seed.
func fuzzProfile(seed uint64, wInt, wFP, wSFU, wLDST uint8) kernels.Profile {
	total := int(wInt) + int(wFP) + int(wSFU) + int(wLDST)
	if total == 0 {
		wInt, total = 1, 1
	}
	fInt := float64(wInt) / float64(total)
	fFP := float64(wFP) / float64(total)
	fSFU := float64(wSFU) / float64(total)
	fLDST := 1 - fInt - fFP - fSFU // kills float rounding in the sum
	if fLDST < 0 {
		fLDST = 0
	}
	rng := stats.NewSplitMix64(seed)
	conc := 1 + rng.Intn(4)
	return kernels.Profile{
		Name:     "fuzz",
		FracINT:  fInt,
		FracFP:   fFP,
		FracSFU:  fSFU,
		FracLDST: fLDST,

		BodyLen:    8 + rng.Intn(120),
		Iterations: 1 + rng.Intn(4),
		DepWindow:  1 + rng.Intn(9),
		LoadUseGap: rng.Intn(8),

		SharedFrac:   rng.Float64() * 0.6,
		StoreFrac:    rng.Float64() * 0.5,
		Pattern:      isa.AccessPattern(rng.Intn(4)),
		RandomFrac:   rng.Float64() * 0.5,
		WorkingLines: 16 << rng.Intn(6),
		NumRegions:   1 + rng.Intn(4),

		IMulFrac: rng.Float64() * 0.3,
		FDivFrac: rng.Float64() * 0.3,

		WarpsPerCTA:       1 + rng.Intn(8),
		MaxConcurrentCTAs: conc,
		CTAsPerSM:         conc + rng.Intn(3),
	}
}

func FuzzBuilderCheckedSim(f *testing.F) {
	// Seed corpus: one mix extreme per class, a balanced mix, and one entry
	// per gating policy / scheduler pairing worth exercising.
	f.Add(uint64(1), uint8(255), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(2), uint8(0), uint8(255), uint8(0), uint8(0), uint8(1))
	f.Add(uint64(3), uint8(0), uint8(0), uint8(255), uint8(0), uint8(2))
	f.Add(uint64(4), uint8(0), uint8(0), uint8(0), uint8(255), uint8(3))
	f.Add(uint64(5), uint8(64), uint8(64), uint8(16), uint8(64), uint8(4))
	f.Add(uint64(6), uint8(120), uint8(60), uint8(0), uint8(40), uint8(5))
	f.Add(uint64(7), uint8(40), uint8(120), uint8(8), uint8(60), uint8(6))
	f.Add(uint64(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(7))

	f.Fuzz(func(t *testing.T, seed uint64, wInt, wFP, wSFU, wLDST, variant uint8) {
		p := fuzzProfile(seed, wInt, wFP, wSFU, wLDST)
		k, err := p.Build()
		if err != nil {
			t.Fatalf("fuzzProfile produced an invalid profile: %v", err)
		}

		cfg := config.Small()
		cfg.NumSMs = 1
		// A hard stop so a pathological profile cannot hang the fuzzer; the
		// checker skips only the drain-conservation law when it trips.
		cfg.MaxCycles = 200000
		// The variant byte picks the scheduler/gating pairing, covering all
		// policies including the adaptive and aux-blackout paths.
		switch variant % 8 {
		case 0:
			cfg.Scheduler, cfg.Gating = config.SchedLRR, config.GateNone
		case 1:
			cfg.Scheduler, cfg.Gating = config.SchedTwoLevel, config.GateConventional
		case 2:
			cfg.Scheduler, cfg.Gating = config.SchedTwoLevel, config.GateNaiveBlackout
		case 3:
			cfg.Scheduler, cfg.Gating = config.SchedTwoLevel, config.GateCoordBlackout
		case 4:
			cfg.Scheduler, cfg.Gating = config.SchedGATES, config.GateCoordBlackout
		case 5:
			cfg.Scheduler, cfg.Gating = config.SchedGATES, config.GateCoordBlackout
			cfg.AdaptiveIdleDetect = true
		case 6:
			cfg.Scheduler, cfg.Gating = config.SchedGATES, config.GateNaiveBlackout
			cfg.BlackoutAux = true
		case 7:
			cfg.Scheduler, cfg.Gating = config.SchedLRR, config.GateConventional
			cfg.WakeupDelay = 0
		}

		rep, c, err := check.Run(cfg, k)
		if err != nil {
			t.Fatalf("invariant violation on fuzzed kernel %+v under %s/%s:\n%v",
				p, cfg.Scheduler, cfg.Gating, err)
		}
		if !rep.RanOut && c.Checks() == 0 {
			t.Fatal("checked simulation performed zero invariant evaluations")
		}
	})
}
