package check_test

// Black-box harness tests: the full benchmark × technique matrix under the
// invariant checker, plus the metamorphic properties (seed determinism, scale
// monotonicity, gating neutrality, parallel/serial equality) the runner and
// simulator must satisfy. Everything here also runs under `go test -race`
// via `make verify` / the CI verify job.

import (
	"testing"

	"warpedgates/internal/check"
	"warpedgates/internal/config"
	"warpedgates/internal/core"
	"warpedgates/internal/kernels"
)

// matrixScale keeps the checked 18×6 matrix fast enough for -race while
// still draining tens of thousands of cycles per run.
const matrixScale = 0.2

// checkedRunner builds a small-machine runner with the invariant checker
// attached to every uncached simulation.
func checkedRunner(cfg config.Config, scale float64, sum *check.Summary) *core.Runner {
	r := core.NewRunner(cfg)
	r.Scale = scale
	r.Instrument = check.Instrument(sum)
	return r
}

// TestCheckedMatrix is the acceptance gate: all 18 kernels × every technique
// simulate with the checker attached and zero violations.
func TestCheckedMatrix(t *testing.T) {
	var sum check.Summary
	r := checkedRunner(config.Small(), matrixScale, &sum)
	for _, tech := range core.AllTechniques() {
		if _, err := r.RunAllParallel(tech); err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
	}
	runs, checks := sum.Snapshot()
	if want := len(kernels.BenchmarkNames) * len(core.AllTechniques()); runs != want {
		t.Fatalf("checked %d simulations, want %d", runs, want)
	}
	if checks == 0 {
		t.Fatal("checker performed zero invariant evaluations")
	}
	t.Logf("verified %d simulations, %d invariant evaluations", runs, checks)
}

// TestCheckedMatrixIntraRunWorkers re-runs the checked matrix with the
// phase-split parallel engine stepping SMs on multiple goroutines
// (IntraRunWorkers = NumSMs, one SM per worker), with a deliberately odd
// batch size and a non-default bank count so the batched windows and the
// bank-sharded arbitration phase both run under the checker. Every invariant
// must still hold — the checker's per-SM shards see each SM's own stream,
// which batching leaves untouched — and the reports must fingerprint
// identical to the serial engine's. Under `go test -race` this is the
// data-race acceptance gate for the parallel engine.
func TestCheckedMatrixIntraRunWorkers(t *testing.T) {
	base := config.Small()
	base.IntraRunWorkers = base.NumSMs
	base.BatchCycles = 7
	base.MemBanks = 2
	var sum check.Summary
	r := checkedRunner(base, matrixScale, &sum)
	serial := checkedRunner(config.Small(), matrixScale, nil)
	for _, tech := range core.AllTechniques() {
		par, err := r.RunAllParallel(tech)
		if err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		ser, err := serial.RunAllParallel(tech)
		if err != nil {
			t.Fatalf("%s serial: %v", tech, err)
		}
		for i := range par {
			fp, fs := core.FingerprintReport(par[i].Report), core.FingerprintReport(ser[i].Report)
			if fp != fs {
				t.Errorf("%s/%s: parallel engine diverged from serial:\n  serial:   %s\n  parallel: %s",
					par[i].Benchmark, tech, fs, fp)
			}
		}
	}
	runs, checks := sum.Snapshot()
	if want := len(kernels.BenchmarkNames) * len(core.AllTechniques()); runs != want {
		t.Fatalf("checked %d simulations, want %d", runs, want)
	}
	if checks == 0 {
		t.Fatal("checker performed zero invariant evaluations")
	}
	t.Logf("verified %d parallel-engine simulations, %d invariant evaluations", runs, checks)
}

// TestCheckedMatrixAdaptiveSched runs the full matrix as one batch under the
// adaptive two-level schedule — cost-model LPT order, a lease pool seeded so
// running simulations absorb drained workers' budget mid-run, work-stealing
// SM shards — with the invariant checker attached, and requires every report
// to fingerprint identical to a static serial runner's. Under `go test -race`
// this is the data-race acceptance gate for tail reallocation and stealing.
func TestCheckedMatrixAdaptiveSched(t *testing.T) {
	base := config.Small()
	base.IntraRunWorkers = base.NumSMs
	var sum check.Summary
	r := checkedRunner(base, matrixScale, &sum)
	r.Parallelism = 4
	r.Sched = core.SchedAdaptive
	serial := checkedRunner(config.Small(), matrixScale, nil)
	serial.Parallelism = 1
	serial.Sched = core.SchedStatic
	jobs := make([]core.Job, 0, len(kernels.BenchmarkNames)*len(core.AllTechniques()))
	for _, b := range kernels.BenchmarkNames {
		for _, tech := range core.AllTechniques() {
			jobs = append(jobs, core.Job{Bench: b, Cfg: tech.Apply(base)})
		}
	}
	adaptive, err := r.RunMany(jobs)
	if err != nil {
		t.Fatal(err)
	}
	sjobs := make([]core.Job, len(jobs))
	copy(sjobs, jobs)
	for i := range sjobs {
		sjobs[i].Cfg.IntraRunWorkers = 1
	}
	want, err := serial.RunMany(sjobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		fa, fs := core.FingerprintReport(adaptive[i]), core.FingerprintReport(want[i])
		if fa != fs {
			t.Errorf("%s/%s-%s: adaptive schedule diverged:\n  static serial: %s\n  adaptive:      %s",
				jobs[i].Bench, jobs[i].Cfg.Scheduler, jobs[i].Cfg.Gating, fs, fa)
		}
	}
	runs, checks := sum.Snapshot()
	if want := len(jobs); runs != want {
		t.Fatalf("checked %d simulations, want %d", runs, want)
	}
	if checks == 0 {
		t.Fatal("checker performed zero invariant evaluations")
	}
	t.Logf("verified %d adaptive-schedule simulations, %d invariant evaluations", runs, checks)
}

// TestMetamorphicSeedDeterminism: the same configuration simulated twice on
// independent runners produces byte-identical reports, and a different seed
// still satisfies every invariant.
func TestMetamorphicSeedDeterminism(t *testing.T) {
	for _, bench := range []string{"hotspot", "bfs", "sgemm"} {
		a := checkedRunner(config.Small(), 0.1, nil)
		b := checkedRunner(config.Small(), 0.1, nil)
		repA, err := a.Run(bench, core.WarpedGates)
		if err != nil {
			t.Fatal(err)
		}
		repB, err := b.Run(bench, core.WarpedGates)
		if err != nil {
			t.Fatal(err)
		}
		if fa, fb := core.FingerprintReport(repA), core.FingerprintReport(repB); fa != fb {
			t.Errorf("%s: same seed, different reports:\n  %s\n  %s", bench, fa, fb)
		}
	}

	// A perturbed seed changes the workload's dynamic behaviour but must not
	// break any invariant.
	cfg := config.Small()
	cfg.Seed = 0xfeedface
	r := checkedRunner(cfg, 0.1, nil)
	if _, err := r.Run("hotspot", core.WarpedGates); err != nil {
		t.Fatalf("perturbed seed: %v", err)
	}
}

// TestMetamorphicScaleMonotonic: growing the workload never shrinks the
// run — cycle and issue counts are non-decreasing in Scale. (Close scales
// may round to identical work, so strict growth is not required.)
func TestMetamorphicScaleMonotonic(t *testing.T) {
	scales := []float64{0.1, 0.2, 0.4}
	for _, bench := range []string{"hotspot", "sgemm", "mri"} {
		for _, tech := range []core.Technique{core.Baseline, core.WarpedGates} {
			prevCycles, prevIssued := int64(-1), uint64(0)
			for _, s := range scales {
				r := checkedRunner(config.Small(), s, nil)
				rep, err := r.Run(bench, tech)
				if err != nil {
					t.Fatalf("%s/%s scale %v: %v", bench, tech, s, err)
				}
				if rep.Cycles < prevCycles {
					t.Errorf("%s/%s: cycles shrank from %d to %d when scale grew to %v",
						bench, tech, prevCycles, rep.Cycles, s)
				}
				if rep.IssuedTotal < prevIssued {
					t.Errorf("%s/%s: issued shrank from %d to %d when scale grew to %v",
						bench, tech, prevIssued, rep.IssuedTotal, s)
				}
				prevCycles, prevIssued = rep.Cycles, rep.IssuedTotal
			}
		}
	}
}

// TestMetamorphicGatingNeutralWhenNeverTriggered: with the idle-detect window
// pushed beyond any idle period a gating policy can never fire, so every
// technique must be cycle-for-cycle identical to the same scheduler with
// gating disabled — power gating that never gates is performance-neutral by
// construction.
func TestMetamorphicGatingNeutralWhenNeverTriggered(t *testing.T) {
	const never = 1 << 20
	for _, tech := range core.GatedTechniques() {
		gated := tech.Apply(config.Small())
		gated.IdleDetect = never
		gated.IdleDetectMin = never
		gated.IdleDetectMax = never
		ungated := tech.Apply(config.Small())
		ungated.Gating = config.GateNone
		ungated.AdaptiveIdleDetect = false
		for _, bench := range []string{"hotspot", "nw"} {
			r := checkedRunner(config.Small(), 0.1, nil)
			repG, err := r.RunCfg(bench, gated)
			if err != nil {
				t.Fatalf("%s/%s gated: %v", bench, tech, err)
			}
			repN, err := r.RunCfg(bench, ungated)
			if err != nil {
				t.Fatalf("%s/%s ungated: %v", bench, tech, err)
			}
			if fg, fn := core.FingerprintReport(repG), core.FingerprintReport(repN); fg != fn {
				t.Errorf("%s/%s: inert gating changed the run:\n  gated:   %s\n  ungated: %s",
					bench, tech, fg, fn)
			}
		}
	}
}

// TestMetamorphicParallelSerialEquality: the parallel runner is an
// optimization, not a semantic change — a -j 1 and a -j 8 runner over the
// same matrix produce identical reports in identical order.
func TestMetamorphicParallelSerialEquality(t *testing.T) {
	serial := checkedRunner(config.Small(), 0.1, nil)
	serial.Parallelism = 1
	parallel := checkedRunner(config.Small(), 0.1, nil)
	parallel.Parallelism = 8

	a, err := serial.RunAllOrdered(core.WarpedGates)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.RunAllParallel(core.WarpedGates)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("serial ran %d benchmarks, parallel %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Benchmark != b[i].Benchmark {
			t.Fatalf("order diverged at %d: %s vs %s", i, a[i].Benchmark, b[i].Benchmark)
		}
		fa, fb := core.FingerprintReport(a[i].Report), core.FingerprintReport(b[i].Report)
		if fa != fb {
			t.Errorf("%s: serial and parallel reports differ:\n  serial:   %s\n  parallel: %s",
				a[i].Benchmark, fa, fb)
		}
	}
}
