package check

// White-box tests: the checker must not only pass on the real simulator, it
// must *fail* on broken streams. These tests feed synthetic probe/tracer
// sequences straight into the shadow state machine and assert each rule
// fires, so a future refactor cannot quietly neuter the harness.

import (
	"strings"
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/gating"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/sim"
)

// testCfg is a minimal config for synthetic streams: break-even 3, wakeup 2,
// one scheduler, so violation windows are short.
func testCfg() config.Config {
	cfg := config.Small()
	cfg.BreakEven = 3
	cfg.WakeupDelay = 2
	cfg.NumSchedulers = 1
	return cfg
}

// lane builds the single-lane probe slice used by the synthetic streams.
func lane(busy bool, st gating.State) []sim.LaneState {
	return []sim.LaneState{{Class: isa.INT, Cluster: 0, Busy: busy, State: st}}
}

// hasRule reports whether any recorded violation matches rule.
func hasRule(c *Checker, rule string) bool {
	for _, v := range c.Violations() {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// feed plays a sequence of (busy, state) observations into one lane.
func feed(c *Checker, seq ...sim.LaneState) {
	for i, ls := range seq {
		c.onProbe(0, int64(i), []sim.LaneState{ls})
	}
}

func ls(busy bool, st gating.State) sim.LaneState {
	return sim.LaneState{Class: isa.INT, Cluster: 0, Busy: busy, State: st}
}

func TestDetectsBusyWhileUnpowered(t *testing.T) {
	c := New(testCfg(), nil)
	feed(c, ls(false, gating.StUncompensated), ls(true, gating.StUncompensated))
	if !hasRule(c, "busy-while-unpowered") {
		t.Fatalf("busy gated lane not flagged; violations: %v", c.Violations())
	}
}

func TestDetectsIllegalTransition(t *testing.T) {
	// Active -> Compensated skips the uncompensated window entirely.
	c := New(testCfg(), nil)
	feed(c, ls(false, gating.StActive), ls(false, gating.StCompensated))
	if !hasRule(c, "illegal-transition") {
		t.Fatalf("Active->Compensated not flagged; violations: %v", c.Violations())
	}
}

func TestDetectsBreakEvenMiscount(t *testing.T) {
	// Compensating after 2 uncompensated cycles when break-even is 3.
	c := New(testCfg(), nil)
	feed(c,
		ls(false, gating.StUncompensated),
		ls(false, gating.StUncompensated),
		ls(false, gating.StCompensated),
	)
	if !hasRule(c, "bet-miscount") {
		t.Fatalf("early compensation not flagged; violations: %v", c.Violations())
	}

	// Overstaying the window: 4 uncompensated cycles with break-even 3.
	c = New(testCfg(), nil)
	feed(c,
		ls(false, gating.StUncompensated),
		ls(false, gating.StUncompensated),
		ls(false, gating.StUncompensated),
		ls(false, gating.StUncompensated),
	)
	if !hasRule(c, "bet-overrun") {
		t.Fatalf("overstayed window not flagged; violations: %v", c.Violations())
	}

	// The exact window is clean.
	c = New(testCfg(), nil)
	feed(c,
		ls(false, gating.StUncompensated),
		ls(false, gating.StUncompensated),
		ls(false, gating.StUncompensated),
		ls(false, gating.StCompensated),
	)
	if len(c.Violations()) != 0 {
		t.Fatalf("exact break-even window flagged: %v", c.Violations())
	}
}

func TestDetectsWakeupLatencyViolation(t *testing.T) {
	// One wakeup cycle instead of two.
	c := New(testCfg(), nil)
	feed(c,
		ls(false, gating.StUncompensated),
		ls(false, gating.StWakeup),
		ls(true, gating.StActive),
	)
	if !hasRule(c, "wakeup-latency") {
		t.Fatalf("short wakeup not flagged; violations: %v", c.Violations())
	}

	// Skipping the wakeup state entirely with a non-zero delay.
	c = New(testCfg(), nil)
	feed(c,
		ls(false, gating.StUncompensated),
		ls(true, gating.StActive),
	)
	if !hasRule(c, "wakeup-skipped") {
		t.Fatalf("skipped wakeup not flagged; violations: %v", c.Violations())
	}

	// The honest sequence is clean.
	c = New(testCfg(), nil)
	feed(c,
		ls(false, gating.StUncompensated),
		ls(false, gating.StWakeup),
		ls(false, gating.StWakeup),
		ls(true, gating.StActive),
	)
	if len(c.Violations()) != 0 {
		t.Fatalf("honest wakeup flagged: %v", c.Violations())
	}
}

func TestDetectsBlackoutEarlyWake(t *testing.T) {
	cfg := testCfg()
	cfg.Gating = config.GateNaiveBlackout
	c := New(cfg, nil)
	feed(c,
		ls(false, gating.StUncompensated),
		ls(false, gating.StWakeup),
	)
	if !hasRule(c, "blackout-early-wake") {
		t.Fatalf("blackout early wake not flagged; violations: %v", c.Violations())
	}

	// Under conventional gating the same stream is a legal negative event.
	cfg.Gating = config.GateConventional
	c = New(cfg, nil)
	feed(c,
		ls(false, gating.StUncompensated),
		ls(false, gating.StWakeup),
		ls(false, gating.StWakeup),
		ls(true, gating.StActive),
	)
	if len(c.Violations()) != 0 {
		t.Fatalf("conventional negative event flagged: %v", c.Violations())
	}
}

func TestDetectsIssueToGatedUnit(t *testing.T) {
	c := New(testCfg(), nil)
	c.onIssue(0, 0, 3, isa.INT, 0)
	c.onProbe(0, 0, lane(false, gating.StUncompensated))
	if !hasRule(c, "issue-to-gated") {
		t.Fatalf("issue to gated unit not flagged; violations: %v", c.Violations())
	}
	if !hasRule(c, "issue-not-busy") {
		t.Fatalf("issue without pipe occupancy not flagged; violations: %v", c.Violations())
	}
}

func TestDetectsDoubleIssue(t *testing.T) {
	cfg := testCfg()
	cfg.NumSchedulers = 2
	c := New(cfg, nil)
	c.onIssue(0, 0, 7, isa.INT, 0)
	c.onIssue(0, 0, 7, isa.INT, 0)
	c.onProbe(0, 0, lane(true, gating.StActive))
	if !hasRule(c, "double-issue") {
		t.Fatalf("double warp issue not flagged; violations: %v", c.Violations())
	}
	if !hasRule(c, "port-double-issue") {
		t.Fatalf("double port issue not flagged; violations: %v", c.Violations())
	}
}

func TestDetectsIssueWidthViolation(t *testing.T) {
	c := New(testCfg(), nil) // 1 scheduler
	c.onIssue(0, 0, 1, isa.INT, 0)
	c.onIssue(0, 0, 2, isa.FP, 0)
	c.onProbe(0, 0, []sim.LaneState{
		{Class: isa.INT, Cluster: 0, Busy: true, State: gating.StActive},
		{Class: isa.FP, Cluster: 0, Busy: true, State: gating.StActive},
	})
	if !hasRule(c, "issue-width") {
		t.Fatalf("issue over scheduler width not flagged; violations: %v", c.Violations())
	}
}

func TestDetectsProbeDiscontinuity(t *testing.T) {
	c := New(testCfg(), nil)
	c.onProbe(0, 0, lane(false, gating.StActive))
	c.onProbe(0, 2, lane(false, gating.StActive))
	if !hasRule(c, "probe-continuity") {
		t.Fatalf("probe cycle gap not flagged; violations: %v", c.Violations())
	}
}

func TestFinishDetectsCounterDrift(t *testing.T) {
	// A clean observed stream against a report whose counters were inflated:
	// every domain-level reconciliation must fire.
	cfg := testCfg()
	k := kernels.MustBenchmark("hotspot").Scale(0.05)
	rep, c, err := Run(cfg, k)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	rep.Domains[isa.INT].BusyCycles++
	rep.Domains[isa.INT].IdleCycles--
	rep.IssuedTotal++
	err = c.Finish(rep)
	if err == nil {
		t.Fatal("tampered report passed Finish")
	}
	for _, rule := range []string{"domain-busy", "domain-idle", "issued-total"} {
		if !strings.Contains(err.Error(), rule) {
			t.Errorf("tampered report error missing rule %s:\n%v", rule, err)
		}
	}
}

func TestViolationCap(t *testing.T) {
	c := New(testCfg(), nil)
	// A permanently busy gated lane violates every cycle.
	for i := 0; i < MaxViolations*3; i++ {
		c.onProbe(0, int64(i), lane(true, gating.StUncompensated))
	}
	if n := len(c.Violations()); n != MaxViolations {
		t.Fatalf("recorded %d violations, cap is %d", n, MaxViolations)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "more") {
		t.Fatalf("capped error should count the overflow, got: %v", err)
	}
}

func TestExpectedIssuedMatchesSimulation(t *testing.T) {
	cfg := config.Small()
	for _, bench := range []string{"hotspot", "bfs", "sgemm", "lavaMD", "WP"} {
		k := kernels.MustBenchmark(bench).Scale(0.1)
		rep, _, err := Run(cfg, k)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if rep.RanOut {
			t.Fatalf("%s ran out of cycles at this scale", bench)
		}
		if want := ExpectedIssued(cfg, k); rep.IssuedTotal != want {
			t.Errorf("%s: issued %d, geometry predicts %d", bench, rep.IssuedTotal, want)
		}
	}
}
