package kernels

import (
	"testing"

	"warpedgates/internal/isa"
)

func TestAllBenchmarksBuildAndValidate(t *testing.T) {
	ks, err := AllBenchmarks()
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != len(BenchmarkNames) {
		t.Fatalf("built %d kernels, want %d", len(ks), len(BenchmarkNames))
	}
	for _, k := range ks {
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestBenchmarkUnknownName(t *testing.T) {
	if _, err := Benchmark("nosuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := BenchmarkProfile("nosuch"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestBenchmarkDeterministic(t *testing.T) {
	a := MustBenchmark("hotspot")
	b := MustBenchmark("hotspot")
	if len(a.Body) != len(b.Body) {
		t.Fatal("non-deterministic body length")
	}
	for i := range a.Body {
		if a.Body[i] != b.Body[i] {
			t.Fatalf("instruction %d differs across builds: %s vs %s", i, &a.Body[i], &b.Body[i])
		}
	}
}

func TestMixApproximatesProfile(t *testing.T) {
	// The generated static mix should be near the profile's requested mix.
	// The generator inserts forced load consumers, so tolerances are loose.
	for _, name := range BenchmarkNames {
		p, err := BenchmarkProfile(name)
		if err != nil {
			t.Fatal(err)
		}
		k := MustBenchmark(name)
		mix := k.Mix()
		if diff := mix[isa.LDST] - p.FracLDST; diff > 0.12 || diff < -0.12 {
			t.Errorf("%s LDST mix %v vs profile %v", name, mix[isa.LDST], p.FracLDST)
		}
		if p.FracFP == 0 && mix[isa.FP] > 0.12 {
			t.Errorf("%s should be (almost) FP-free, got %v", name, mix[isa.FP])
		}
	}
}

func TestIntegerOnly(t *testing.T) {
	if !IntegerOnly("lavaMD") {
		t.Error("lavaMD should be integer-only (paper §4, Fig. 5a)")
	}
	if IntegerOnly("hotspot") || IntegerOnly("sgemm") {
		t.Error("FP benchmarks misclassified as integer-only")
	}
	if IntegerOnly("nosuch") {
		t.Error("unknown benchmark cannot be integer-only")
	}
}

func TestPaperBenchmarkCount(t *testing.T) {
	// §7.1: "We selected eighteen benchmarks".
	if len(BenchmarkNames) != 18 {
		t.Fatalf("benchmark suite has %d entries, want 18", len(BenchmarkNames))
	}
	seen := map[string]bool{}
	for _, n := range BenchmarkNames {
		if seen[n] {
			t.Fatalf("duplicate benchmark %s", n)
		}
		seen[n] = true
		if _, ok := profiles[n]; !ok {
			t.Fatalf("benchmark %s listed but has no profile", n)
		}
	}
	if len(profiles) != len(BenchmarkNames) {
		t.Fatalf("%d profiles but %d names", len(profiles), len(BenchmarkNames))
	}
}

func TestScale(t *testing.T) {
	k := MustBenchmark("hotspot")
	half := k.Scale(0.5)
	if half.Iterations >= k.Iterations {
		t.Errorf("scale 0.5 did not shrink iterations: %d -> %d", k.Iterations, half.Iterations)
	}
	if half.MaxConcurrentCTAs != k.MaxConcurrentCTAs {
		t.Error("scaling must not change resident CTA count (occupancy)")
	}
	if half.CTAsPerSM < half.MaxConcurrentCTAs {
		t.Error("scaled kernel has fewer total CTAs than resident CTAs")
	}
	if len(half.Body) != len(k.Body) {
		t.Error("scaling must not alter the body")
	}
	// Scaling up grows work.
	double := k.Scale(2)
	if double.Iterations <= k.Iterations {
		t.Error("scale 2 did not grow iterations")
	}
	// Tiny scales clamp to at least one iteration and one CTA wave.
	tiny := k.Scale(0.0001)
	if tiny.Iterations < 1 || tiny.CTAsPerSM < tiny.MaxConcurrentCTAs {
		t.Error("tiny scale broke minimums")
	}
	if err := tiny.Validate(); err != nil {
		t.Errorf("tiny-scaled kernel invalid: %v", err)
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(0) did not panic")
		}
	}()
	MustBenchmark("hotspot").Scale(0)
}

func TestTotalWarpInstructions(t *testing.T) {
	k := MustBenchmark("nw")
	if got, want := k.TotalWarpInstructions(), len(k.Body)*k.Iterations; got != want {
		t.Fatalf("TotalWarpInstructions = %d, want %d", got, want)
	}
}

func TestKernelValidateRejections(t *testing.T) {
	base := MustBenchmark("hotspot")
	cases := []struct {
		name string
		mut  func(*Kernel)
	}{
		{"empty name", func(k *Kernel) { k.Name = "" }},
		{"empty body", func(k *Kernel) { k.Body = nil }},
		{"zero iterations", func(k *Kernel) { k.Iterations = 0 }},
		{"zero warps per CTA", func(k *Kernel) { k.WarpsPerCTA = 0 }},
		{"zero concurrent CTAs", func(k *Kernel) { k.MaxConcurrentCTAs = 0 }},
		{"fewer CTAs than concurrent", func(k *Kernel) { k.CTAsPerSM = k.MaxConcurrentCTAs - 1 }},
		{"zero working set", func(k *Kernel) { k.WorkingSetLines = 0 }},
		{"zero regions", func(k *Kernel) { k.NumRegions = 0 }},
	}
	for _, tc := range cases {
		cp := *base
		cp.Body = append([]isa.Instr(nil), base.Body...)
		tc.mut(&cp)
		if err := cp.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestKernelValidateCatchesBadInstruction(t *testing.T) {
	cp := *MustBenchmark("hotspot")
	cp.Body = append([]isa.Instr(nil), cp.Body...)
	cp.Body[3] = isa.Instr{Op: isa.NumOps}
	if err := cp.Validate(); err == nil {
		t.Fatal("kernel with invalid instruction accepted")
	}
}
