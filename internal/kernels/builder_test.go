package kernels

import (
	"testing"
	"testing/quick"

	"warpedgates/internal/isa"
)

// testProfile returns a small valid profile for mutation tests.
func testProfile() Profile {
	return Profile{
		Name: "test", FracINT: 0.5, FracFP: 0.2, FracSFU: 0.05, FracLDST: 0.25,
		BodyLen: 64, Iterations: 4, DepWindow: 4, LoadUseGap: 3,
		SharedFrac: 0.2, StoreFrac: 0.2, Pattern: isa.PatternCoalesced, RandomFrac: 0.1,
		WorkingLines: 128, NumRegions: 2, IMulFrac: 0.1, FDivFrac: 0.05,
		WarpsPerCTA: 4, MaxConcurrentCTAs: 2, CTAsPerSM: 4,
	}
}

func TestProfileBuildValidKernel(t *testing.T) {
	p := testProfile()
	k, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(k.Body) != p.BodyLen {
		t.Fatalf("body length %d, want %d", len(k.Body), p.BodyLen)
	}
}

func TestProfileValidateMixSum(t *testing.T) {
	p := testProfile()
	p.FracINT = 0.9 // now sums to 1.4
	if _, err := p.Build(); err == nil {
		t.Fatal("mix sum > 1 accepted")
	}
}

func TestProfileValidateRanges(t *testing.T) {
	muts := []func(*Profile){
		func(p *Profile) { p.StoreFrac = 1.5 },
		func(p *Profile) { p.SharedFrac = -0.1 },
		func(p *Profile) { p.BodyLen = 0 },
		func(p *Profile) { p.Iterations = 0 },
		func(p *Profile) { p.DepWindow = 0 },
		func(p *Profile) { p.LoadUseGap = -1 },
		func(p *Profile) { p.WarpsPerCTA = 0 },
		func(p *Profile) { p.CTAsPerSM = 0 },
		func(p *Profile) { p.WorkingLines = 0 },
		func(p *Profile) { p.NumRegions = 0 },
	}
	for i, mut := range muts {
		p := testProfile()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestGeneratedLoadsAreConsumed(t *testing.T) {
	// Every load destination should be read by a later instruction within a
	// bounded window — otherwise memory latency would never stall warps and
	// the workload would not exercise the pending set.
	k := MustBenchmark("hotspot")
	consumed := 0
	loads := 0
	for i, in := range k.Body {
		if !isa.IsLoad(in.Op) {
			continue
		}
		loads++
		for j := i + 1; j < len(k.Body) && j < i+40; j++ {
			found := false
			for _, s := range k.Body[j].SrcRegs() {
				if s == in.Dst {
					found = true
					break
				}
			}
			if found {
				consumed++
				break
			}
		}
	}
	if loads == 0 {
		t.Fatal("hotspot generated no loads")
	}
	if frac := float64(consumed) / float64(loads); frac < 0.7 {
		t.Fatalf("only %.0f%% of loads are consumed nearby", frac*100)
	}
}

func TestGeneratedMemoryOpsHaveSpaces(t *testing.T) {
	for _, name := range BenchmarkNames {
		k := MustBenchmark(name)
		for i := range k.Body {
			in := &k.Body[i]
			if isa.IsMemory(in.Op) && in.Space == isa.SpaceNone {
				t.Fatalf("%s instr %d: memory op without space", name, i)
			}
			if !isa.IsMemory(in.Op) && in.Space != isa.SpaceNone {
				t.Fatalf("%s instr %d: ALU op with space", name, i)
			}
		}
	}
}

func TestBuilderPropertyAnyValidProfileBuilds(t *testing.T) {
	// Property: any profile with a normalized mix and positive shape
	// parameters builds a kernel that passes validation.
	f := func(intW, fpW, sfuW, ldW uint8, bodyRaw, depRaw uint8) bool {
		total := float64(intW) + float64(fpW) + float64(sfuW) + float64(ldW)
		if total == 0 {
			return true
		}
		p := testProfile()
		p.FracINT = float64(intW) / total
		p.FracFP = float64(fpW) / total
		p.FracSFU = float64(sfuW) / total
		p.FracLDST = 1 - p.FracINT - p.FracFP - p.FracSFU
		if p.FracLDST < 0 {
			p.FracLDST = 0
		}
		p.BodyLen = 8 + int(bodyRaw%120)
		p.DepWindow = 1 + int(depRaw%16)
		k, err := p.Build()
		if err != nil {
			return false
		}
		return k.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMicrokernelFig4(t *testing.T) {
	k := Fig4Microkernel()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if !k.PerWarpSlice {
		t.Fatal("Fig. 4 microkernel must be per-warp-slice")
	}
	if k.WarpsPerCTA != len(k.Body) {
		t.Fatalf("one warp per instruction expected: %d warps, %d instrs", k.WarpsPerCTA, len(k.Body))
	}
	nInt, nFp := 0, 0
	for i := range k.Body {
		switch k.Body[i].Class() {
		case isa.INT:
			nInt++
		case isa.FP:
			nFp++
		default:
			t.Fatalf("unexpected class %s in microkernel", k.Body[i].Class())
		}
	}
	if nInt != 8 || nFp != 4 {
		t.Fatalf("microkernel mix = %d INT, %d FP; want 8 and 4", nInt, nFp)
	}
}

func TestMicrokernelFromSequenceRejectsBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sequence did not panic")
		}
	}()
	MicrokernelFromSequence("x", nil)
}

func TestMicrokernelRejectsNonALUClasses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LDST class in microkernel did not panic")
		}
	}()
	MicrokernelFromSequence("x", []isa.Class{isa.LDST})
}

func TestPerWarpSliceValidation(t *testing.T) {
	k := Fig4Microkernel()
	k.WarpsPerCTA = len(k.Body) + 1
	if err := k.Validate(); err == nil {
		t.Fatal("per-warp slice with too few instructions accepted")
	}
}
