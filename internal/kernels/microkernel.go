package kernels

import (
	"fmt"

	"warpedgates/internal/isa"
)

// Fig4Microkernel reproduces the paper's Figure 4 walkthrough workload: an
// active warp set containing a fixed interleaving of independent integer and
// floating point add instructions, each with latency 4 and initiation
// interval 1. The two-level scheduler issues them front-to-back, leaving
// isolated one- and two-cycle bubbles in each pipeline; GATES reorders them
// into type clusters, coalescing those bubbles into long idle runs.
//
// Each warp in the returned kernel executes exactly one instruction whose
// type follows the paper's sequence. Use it with a one-SM, one-scheduler,
// one-SP-cluster configuration to match the figure's simplified machine.
func Fig4Microkernel() *Kernel {
	// The paper's active-warp-set contents, front of the queue first:
	// a greedy interleaving of eight INT and four FP instructions.
	sequence := []isa.Class{
		isa.INT, isa.INT, isa.FP, isa.INT, isa.FP, isa.INT,
		isa.INT, isa.INT, isa.INT, isa.FP, isa.FP, isa.INT,
	}
	return MicrokernelFromSequence("fig4", sequence)
}

// MicrokernelFromSequence builds a kernel with one warp per entry of seq;
// warp i executes a single independent instruction of class seq[i]. The
// simulator assigns one warp per CTA so the warp count equals len(seq).
// Only INT and FP classes are supported — the figure's machine has no SFU
// or LDST traffic.
func MicrokernelFromSequence(name string, seq []isa.Class) *Kernel {
	if len(seq) == 0 {
		panic("kernels: empty microkernel sequence")
	}
	// Trick: every warp runs the same single-instruction body, but the class
	// must differ per warp. We encode the whole sequence in the body and use
	// warp-indexed iteration: warp w executes body[w] only. The simulator
	// supports this through the PerWarpSlice flag.
	body := make([]isa.Instr, len(seq))
	for i, c := range seq {
		dst := isa.Reg(8 + i%40)
		switch c {
		case isa.INT:
			body[i] = isa.Instr{Op: isa.OpIADD, Dst: dst, NSrc: 2,
				Srcs: [3]isa.Reg{0, 1, isa.NoReg}}
		case isa.FP:
			body[i] = isa.Instr{Op: isa.OpFADD, Dst: dst, NSrc: 2,
				Srcs: [3]isa.Reg{2, 3, isa.NoReg}}
		default:
			panic(fmt.Sprintf("kernels: microkernel class %s unsupported", c))
		}
	}
	return &Kernel{
		Name:              name,
		Body:              body,
		Iterations:        1,
		WarpsPerCTA:       len(seq),
		MaxConcurrentCTAs: 1,
		CTAsPerSM:         1,
		WorkingSetLines:   1,
		NumRegions:        1,
		PerWarpSlice:      true,
	}
}
