// Package kernels defines the synthetic GPGPU workloads used to reproduce the
// paper's evaluation. The paper runs 18 CUDA benchmarks from Rodinia, Parboil
// and ISPASS on GPGPU-Sim; since neither the CUDA toolchain nor the original
// binaries are available here, each benchmark is substituted with a synthetic
// kernel that matches the three workload properties every figure in the paper
// depends on: instruction mix (paper Fig. 5a), active-warp occupancy (Fig. 5b),
// and the idle-window structure induced by memory stalls and register
// dependences. See DESIGN.md §1 for the substitution argument.
package kernels

import (
	"fmt"

	"warpedgates/internal/isa"
)

// Kernel is a complete synthetic workload: a register-allocated loop body that
// every warp executes Iterations times, plus launch geometry.
type Kernel struct {
	Name string
	Body []isa.Instr
	// Iterations is the number of times each warp executes Body.
	Iterations int
	// WarpsPerCTA is the number of warps in one cooperative thread array.
	WarpsPerCTA int
	// MaxConcurrentCTAs bounds how many CTAs are resident on an SM at once
	// (together with the SM warp limit this sets occupancy, Fig. 5b).
	MaxConcurrentCTAs int
	// CTAsPerSM is the total number of CTAs each SM executes; CTAs beyond
	// MaxConcurrentCTAs queue and launch as earlier CTAs drain.
	CTAsPerSM int
	// WorkingSetLines is the number of distinct cache lines each address
	// region spans; small values produce L1 hits, large values stream.
	WorkingSetLines int
	// NumRegions is how many independent address regions memory
	// instructions are spread over.
	NumRegions int
	// PerWarpSlice, when set, makes warp w execute only Body[w] instead of
	// the whole body. It supports illustrative microkernels such as the
	// paper's Figure 4 walkthrough, where each active warp holds exactly
	// one instruction. Requires len(Body) >= WarpsPerCTA.
	PerWarpSlice bool
}

// Validate checks the kernel's structural invariants.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("kernels: kernel has empty name")
	}
	if len(k.Body) == 0 {
		return fmt.Errorf("kernels: %s has empty body", k.Name)
	}
	if k.Iterations <= 0 {
		return fmt.Errorf("kernels: %s has non-positive iterations %d", k.Name, k.Iterations)
	}
	if k.WarpsPerCTA <= 0 {
		return fmt.Errorf("kernels: %s has non-positive warps/CTA %d", k.Name, k.WarpsPerCTA)
	}
	if k.MaxConcurrentCTAs <= 0 {
		return fmt.Errorf("kernels: %s has non-positive concurrent CTAs %d", k.Name, k.MaxConcurrentCTAs)
	}
	if k.CTAsPerSM < k.MaxConcurrentCTAs {
		return fmt.Errorf("kernels: %s has fewer total CTAs (%d) than concurrent CTAs (%d)",
			k.Name, k.CTAsPerSM, k.MaxConcurrentCTAs)
	}
	if k.WorkingSetLines <= 0 {
		return fmt.Errorf("kernels: %s has non-positive working set %d", k.Name, k.WorkingSetLines)
	}
	if k.NumRegions <= 0 {
		return fmt.Errorf("kernels: %s has non-positive region count %d", k.Name, k.NumRegions)
	}
	if k.PerWarpSlice && len(k.Body) < k.WarpsPerCTA {
		return fmt.Errorf("kernels: %s per-warp slice body (%d) shorter than warps/CTA (%d)",
			k.Name, len(k.Body), k.WarpsPerCTA)
	}
	for i := range k.Body {
		if err := k.Body[i].Validate(); err != nil {
			return fmt.Errorf("kernels: %s instr %d: %w", k.Name, i, err)
		}
	}
	return nil
}

// TotalWarpInstructions returns the dynamic instruction count one warp
// executes over the kernel's lifetime.
func (k *Kernel) TotalWarpInstructions() int {
	return len(k.Body) * k.Iterations
}

// Mix returns the static instruction mix of the body as fractions per class.
func (k *Kernel) Mix() [isa.NumClasses]float64 {
	var counts [isa.NumClasses]int
	for i := range k.Body {
		counts[k.Body[i].Class()]++
	}
	var mix [isa.NumClasses]float64
	total := float64(len(k.Body))
	for c := range counts {
		mix[c] = float64(counts[c]) / total
	}
	return mix
}

// Scale returns a copy of the kernel with its total work multiplied by f
// (0 < f <= 1 shrinks, f > 1 grows). Scaling adjusts iteration counts and CTA
// counts, never the body, so instruction mix and dependence structure are
// preserved; tests use small scales, the figure harness uses 1.0.
func (k *Kernel) Scale(f float64) *Kernel {
	if f <= 0 {
		panic(fmt.Sprintf("kernels: non-positive scale %v", f))
	}
	cp := *k
	cp.Iterations = maxInt(1, int(float64(k.Iterations)*f+0.5))
	// Keep at least one full wave of CTAs so occupancy is unchanged.
	cp.CTAsPerSM = maxInt(k.MaxConcurrentCTAs, int(float64(k.CTAsPerSM)*f+0.5))
	return &cp
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
