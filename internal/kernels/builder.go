package kernels

import (
	"fmt"

	"warpedgates/internal/isa"
	"warpedgates/internal/stats"
)

// Profile is the declarative description a synthetic kernel is generated
// from. The fields map one-to-one onto the workload properties the paper's
// figures depend on; see the package comment.
type Profile struct {
	Name string

	// Instruction mix (fractions; must sum to ~1). Mirrors paper Fig. 5a.
	FracINT  float64
	FracFP   float64
	FracSFU  float64
	FracLDST float64

	// BodyLen is the static length of the generated loop body.
	BodyLen int
	// Iterations is how many times each warp runs the body.
	Iterations int

	// DepWindow is the register-reuse window: sources are drawn from the
	// destinations of the previous DepWindow instructions. Small windows
	// create tight dependence chains (pipeline bubbles, paper Fig. 4);
	// large windows give high ILP (backprop/lavaMD-style full pipelines).
	DepWindow int
	// LoadUseGap is roughly how many instructions separate a load from its
	// first consumer; small gaps force warps into the pending set quickly.
	LoadUseGap int

	// Memory behaviour.
	SharedFrac   float64           // fraction of memory ops hitting shared memory
	StoreFrac    float64           // fraction of memory ops that are stores
	Pattern      isa.AccessPattern // dominant global access pattern
	RandomFrac   float64           // fraction of global ops using PatternRandom
	WorkingLines int               // per-region working set in cache lines
	NumRegions   int               // address regions

	// Heavier-op flavor.
	IMulFrac float64 // fraction of INT ops that are multiplies (latency 9)
	FDivFrac float64 // fraction of FP ops that are divides (latency 16)

	// Occupancy (paper Fig. 5b).
	WarpsPerCTA       int
	MaxConcurrentCTAs int
	CTAsPerSM         int
}

// Validate checks the profile for consistency.
func (p *Profile) Validate() error {
	sum := p.FracINT + p.FracFP + p.FracSFU + p.FracLDST
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("kernels: %s mix sums to %v, want 1", p.Name, sum)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"FracINT", p.FracINT}, {"FracFP", p.FracFP}, {"FracSFU", p.FracSFU},
		{"FracLDST", p.FracLDST}, {"SharedFrac", p.SharedFrac},
		{"StoreFrac", p.StoreFrac}, {"RandomFrac", p.RandomFrac},
		{"IMulFrac", p.IMulFrac}, {"FDivFrac", p.FDivFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("kernels: %s %s=%v out of [0,1]", p.Name, f.name, f.v)
		}
	}
	if p.BodyLen <= 0 || p.Iterations <= 0 || p.DepWindow <= 0 || p.LoadUseGap < 0 {
		return fmt.Errorf("kernels: %s has non-positive shape parameter", p.Name)
	}
	if p.WarpsPerCTA <= 0 || p.MaxConcurrentCTAs <= 0 || p.CTAsPerSM < p.MaxConcurrentCTAs {
		return fmt.Errorf("kernels: %s has invalid occupancy parameters", p.Name)
	}
	if p.WorkingLines <= 0 || p.NumRegions <= 0 {
		return fmt.Errorf("kernels: %s has invalid memory parameters", p.Name)
	}
	return nil
}

// intOps and fpOps are the light opcode pools the generator draws from.
var (
	intOps = []isa.Op{isa.OpIADD, isa.OpISUB, isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpSHL, isa.OpSHR, isa.OpSETP, isa.OpMOV}
	fpOps  = []isa.Op{isa.OpFADD, isa.OpFMUL, isa.OpFFMA, isa.OpFSET}
	sfuOps = []isa.Op{isa.OpSIN, isa.OpCOS, isa.OpRSQRT, isa.OpEXP, isa.OpLG2}
)

// Build deterministically generates the kernel described by p. The same
// profile always yields the same kernel; per-warp dynamic behaviour is
// further randomized by the simulator's per-warp streams, not here.
func (p *Profile) Build() (*Kernel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewSplitMix64(stats.HashString("kernel:" + p.Name))

	body := make([]isa.Instr, 0, p.BodyLen)
	// recentDsts is the sliding window of recently written registers used
	// to draw dependences from.
	var recentDsts []isa.Reg
	// pendingLoads tracks load destinations that must be consumed soon, so
	// that loads actually block their warps (load-use dependences).
	type pendingLoad struct {
		reg   isa.Reg
		dueIn int
	}
	var pendingLoads []pendingLoad
	nextReg := 8 // r0..r7 are reserved "live-in" registers (thread id etc.)

	allocReg := func() isa.Reg {
		r := isa.Reg(nextReg)
		nextReg++
		if nextReg >= isa.NumRegs {
			nextReg = 8
		}
		return r
	}
	pickSrc := func() isa.Reg {
		// Prefer a recent destination to create a dependence; fall back to
		// a live-in register.
		if len(recentDsts) > 0 && rng.Bool(0.8) {
			win := p.DepWindow
			if win > len(recentDsts) {
				win = len(recentDsts)
			}
			return recentDsts[len(recentDsts)-1-rng.Intn(win)]
		}
		return isa.Reg(rng.Intn(8))
	}
	noteDst := func(r isa.Reg) {
		recentDsts = append(recentDsts, r)
		if len(recentDsts) > 2*p.DepWindow+4 {
			recentDsts = recentDsts[1:]
		}
	}

	classAt := func() isa.Class {
		x := rng.Float64()
		switch {
		case x < p.FracINT:
			return isa.INT
		case x < p.FracINT+p.FracFP:
			return isa.FP
		case x < p.FracINT+p.FracFP+p.FracSFU:
			return isa.SFU
		default:
			return isa.LDST
		}
	}

	for i := 0; i < p.BodyLen; i++ {
		// If a load result is due for consumption, force a consumer now so
		// memory latency actually stalls the warp.
		if len(pendingLoads) > 0 && pendingLoads[0].dueIn <= 0 {
			lr := pendingLoads[0].reg
			pendingLoads = pendingLoads[1:]
			dst := allocReg()
			var op isa.Op
			if rng.Bool(p.FracFP / (p.FracFP + p.FracINT + 1e-9)) {
				op = fpOps[rng.Intn(len(fpOps))]
			} else {
				op = intOps[rng.Intn(len(intOps))]
			}
			in := isa.Instr{Op: op, Dst: dst, NSrc: 2}
			in.Srcs = [3]isa.Reg{lr, pickSrc(), isa.NoReg}
			body = append(body, in)
			noteDst(dst)
			for j := range pendingLoads {
				pendingLoads[j].dueIn--
			}
			continue
		}

		cls := classAt()
		var in isa.Instr
		switch cls {
		case isa.INT:
			op := intOps[rng.Intn(len(intOps))]
			if rng.Bool(p.IMulFrac) {
				if rng.Bool(0.5) {
					op = isa.OpIMUL
				} else {
					op = isa.OpIMAD
				}
			}
			dst := allocReg()
			in = isa.Instr{Op: op, Dst: dst, NSrc: 2, Srcs: [3]isa.Reg{pickSrc(), pickSrc(), isa.NoReg}}
			if op == isa.OpIMAD {
				in.NSrc = 3
				in.Srcs[2] = pickSrc()
			}
			noteDst(dst)
		case isa.FP:
			op := fpOps[rng.Intn(len(fpOps))]
			if rng.Bool(p.FDivFrac) {
				op = isa.OpFDIV
			}
			dst := allocReg()
			in = isa.Instr{Op: op, Dst: dst, NSrc: 2, Srcs: [3]isa.Reg{pickSrc(), pickSrc(), isa.NoReg}}
			if op == isa.OpFFMA {
				in.NSrc = 3
				in.Srcs[2] = pickSrc()
			}
			noteDst(dst)
		case isa.SFU:
			op := sfuOps[rng.Intn(len(sfuOps))]
			dst := allocReg()
			in = isa.Instr{Op: op, Dst: dst, NSrc: 1, Srcs: [3]isa.Reg{pickSrc(), isa.NoReg, isa.NoReg}}
			noteDst(dst)
		case isa.LDST:
			in = p.memInstr(rng, allocReg, pickSrc)
			if isa.IsLoad(in.Op) {
				pendingLoads = append(pendingLoads, pendingLoad{reg: in.Dst, dueIn: p.LoadUseGap})
				noteDst(in.Dst)
			}
		}
		body = append(body, in)
		for j := range pendingLoads {
			pendingLoads[j].dueIn--
		}
	}

	k := &Kernel{
		Name:              p.Name,
		Body:              body,
		Iterations:        p.Iterations,
		WarpsPerCTA:       p.WarpsPerCTA,
		MaxConcurrentCTAs: p.MaxConcurrentCTAs,
		CTAsPerSM:         p.CTAsPerSM,
		WorkingSetLines:   p.WorkingLines,
		NumRegions:        p.NumRegions,
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// memInstr generates one memory instruction according to the profile's
// memory behaviour knobs.
func (p *Profile) memInstr(rng *stats.SplitMix64, allocReg func() isa.Reg, pickSrc func() isa.Reg) isa.Instr {
	shared := rng.Bool(p.SharedFrac)
	store := rng.Bool(p.StoreFrac)
	pattern := p.Pattern
	if !shared && rng.Bool(p.RandomFrac) {
		pattern = isa.PatternRandom
	}
	region := uint8(rng.Intn(p.NumRegions))

	var in isa.Instr
	switch {
	case shared && store:
		in = isa.Instr{Op: isa.OpSTS, Dst: isa.NoReg, NSrc: 2,
			Srcs: [3]isa.Reg{pickSrc(), pickSrc(), isa.NoReg}, Space: isa.SpaceShared}
	case shared:
		in = isa.Instr{Op: isa.OpLDS, Dst: allocReg(), NSrc: 1,
			Srcs: [3]isa.Reg{pickSrc(), isa.NoReg, isa.NoReg}, Space: isa.SpaceShared}
	case store:
		in = isa.Instr{Op: isa.OpSTG, Dst: isa.NoReg, NSrc: 2,
			Srcs: [3]isa.Reg{pickSrc(), pickSrc(), isa.NoReg}, Space: isa.SpaceGlobal}
	default:
		in = isa.Instr{Op: isa.OpLDG, Dst: allocReg(), NSrc: 1,
			Srcs: [3]isa.Reg{pickSrc(), isa.NoReg, isa.NoReg}, Space: isa.SpaceGlobal}
	}
	in.Pattern = pattern
	in.Region = region
	return in
}

// MustBuild builds the kernel and panics on error; for use with the vetted
// built-in profiles.
func (p *Profile) MustBuild() *Kernel {
	k, err := p.Build()
	if err != nil {
		panic(err)
	}
	return k
}
