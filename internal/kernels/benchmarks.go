package kernels

import (
	"fmt"
	"sort"

	"warpedgates/internal/isa"
)

// BenchmarkNames lists the 18 benchmarks of the paper's evaluation (§7.1),
// drawn from Rodinia, Parboil and ISPASS, in the alphabetical order the
// paper's result figures use.
var BenchmarkNames = []string{
	"backprop", "bfs", "btree", "cutcp", "gaussian", "heartwall",
	"hotspot", "kmeans", "lavaMD", "lbm", "LIB", "mri",
	"MUM", "NN", "nw", "sgemm", "srad", "WP",
}

// IntegerOnly reports whether the benchmark has (approximately) no floating
// point activity; the paper excludes such benchmarks from FP-unit results
// ("All floating point results ... excludes integer-only benchmarks").
func IntegerOnly(name string) bool {
	p, ok := profiles[name]
	return ok && p.FracFP == 0
}

// profiles encodes the workload characterization the paper reports:
//
//   - instruction mix per benchmark follows Fig. 5a (FP share grows roughly
//     in the order lavaMD, nw, MUM ... sgemm, cutcp; lavaMD is the paper's
//     example of a pure-integer workload);
//   - active-warp occupancy follows Fig. 5b (srad/lbm/backprop/mri/MUM/bfs/
//     hotspot/lavaMD/sgemm/cutcp run many warps; nw/gaussian/NN/LIB/WP run
//     fewer than ten on average);
//   - backprop and lavaMD keep their functional units highly utilized (§7.2:
//     "very few idle cycles"), which we express with wide dependence windows
//     and cache-resident working sets;
//   - cutcp and mri produce many idle windows that die before break-even
//     under conventional gating (§7.2), which we express with SFU-heavy
//     bodies and mid-size occupancy that leaves medium-length gaps.
var profiles = map[string]*Profile{
	"backprop": {
		Name: "backprop", FracINT: 0.38, FracFP: 0.37, FracSFU: 0.05, FracLDST: 0.20,
		BodyLen: 96, Iterations: 16, DepWindow: 7, LoadUseGap: 6,
		SharedFrac: 0.45, StoreFrac: 0.25, Pattern: isa.PatternCoalesced, RandomFrac: 0.05,
		WorkingLines: 192, NumRegions: 3, IMulFrac: 0.10, FDivFrac: 0.02,
		WarpsPerCTA: 8, MaxConcurrentCTAs: 5, CTAsPerSM: 9,
	},
	"bfs": {
		Name: "bfs", FracINT: 0.60, FracFP: 0.02, FracSFU: 0.00, FracLDST: 0.38,
		BodyLen: 72, Iterations: 6, DepWindow: 4, LoadUseGap: 2,
		SharedFrac: 0.05, StoreFrac: 0.30, Pattern: isa.PatternStrided2, RandomFrac: 0.30,
		WorkingLines: 1024, NumRegions: 4, IMulFrac: 0.05, FDivFrac: 0.0,
		WarpsPerCTA: 8, MaxConcurrentCTAs: 4, CTAsPerSM: 4,
	},
	"btree": {
		Name: "btree", FracINT: 0.58, FracFP: 0.14, FracSFU: 0.00, FracLDST: 0.28,
		BodyLen: 80, Iterations: 10, DepWindow: 4, LoadUseGap: 2,
		SharedFrac: 0.10, StoreFrac: 0.15, Pattern: isa.PatternStrided2, RandomFrac: 0.45,
		WorkingLines: 1024, NumRegions: 4, IMulFrac: 0.08, FDivFrac: 0.0,
		WarpsPerCTA: 8, MaxConcurrentCTAs: 2, CTAsPerSM: 3,
	},
	"cutcp": {
		Name: "cutcp", FracINT: 0.20, FracFP: 0.58, FracSFU: 0.08, FracLDST: 0.14,
		BodyLen: 112, Iterations: 14, DepWindow: 5, LoadUseGap: 6,
		SharedFrac: 0.55, StoreFrac: 0.10, Pattern: isa.PatternCoalesced, RandomFrac: 0.10,
		WorkingLines: 256, NumRegions: 3, IMulFrac: 0.05, FDivFrac: 0.04,
		WarpsPerCTA: 6, MaxConcurrentCTAs: 4, CTAsPerSM: 6,
	},
	"gaussian": {
		Name: "gaussian", FracINT: 0.48, FracFP: 0.28, FracSFU: 0.00, FracLDST: 0.24,
		BodyLen: 64, Iterations: 12, DepWindow: 3, LoadUseGap: 2,
		SharedFrac: 0.10, StoreFrac: 0.30, Pattern: isa.PatternStrided8, RandomFrac: 0.15,
		WorkingLines: 1024, NumRegions: 2, IMulFrac: 0.06, FDivFrac: 0.06,
		WarpsPerCTA: 4, MaxConcurrentCTAs: 2, CTAsPerSM: 5,
	},
	"heartwall": {
		Name: "heartwall", FracINT: 0.62, FracFP: 0.12, FracSFU: 0.03, FracLDST: 0.23,
		BodyLen: 104, Iterations: 12, DepWindow: 5, LoadUseGap: 4,
		SharedFrac: 0.35, StoreFrac: 0.20, Pattern: isa.PatternCoalesced, RandomFrac: 0.15,
		WorkingLines: 768, NumRegions: 4, IMulFrac: 0.12, FDivFrac: 0.02,
		WarpsPerCTA: 8, MaxConcurrentCTAs: 2, CTAsPerSM: 4,
	},
	"hotspot": {
		Name: "hotspot", FracINT: 0.47, FracFP: 0.28, FracSFU: 0.00, FracLDST: 0.25,
		BodyLen: 88, Iterations: 16, DepWindow: 5, LoadUseGap: 4,
		SharedFrac: 0.40, StoreFrac: 0.20, Pattern: isa.PatternCoalesced, RandomFrac: 0.08,
		WorkingLines: 1024, NumRegions: 3, IMulFrac: 0.08, FDivFrac: 0.03,
		WarpsPerCTA: 8, MaxConcurrentCTAs: 4, CTAsPerSM: 6,
	},
	"kmeans": {
		Name: "kmeans", FracINT: 0.56, FracFP: 0.17, FracSFU: 0.00, FracLDST: 0.27,
		BodyLen: 76, Iterations: 12, DepWindow: 6, LoadUseGap: 3,
		SharedFrac: 0.10, StoreFrac: 0.15, Pattern: isa.PatternCoalesced, RandomFrac: 0.25,
		WorkingLines: 2048, NumRegions: 3, IMulFrac: 0.08, FDivFrac: 0.02,
		WarpsPerCTA: 8, MaxConcurrentCTAs: 2, CTAsPerSM: 4,
	},
	"lavaMD": {
		Name: "lavaMD", FracINT: 0.76, FracFP: 0.00, FracSFU: 0.04, FracLDST: 0.20,
		BodyLen: 96, Iterations: 16, DepWindow: 4, LoadUseGap: 3,
		SharedFrac: 0.50, StoreFrac: 0.20, Pattern: isa.PatternCoalesced, RandomFrac: 0.05,
		WorkingLines: 256, NumRegions: 3, IMulFrac: 0.15, FDivFrac: 0.0,
		WarpsPerCTA: 8, MaxConcurrentCTAs: 4, CTAsPerSM: 9,
	},
	"lbm": {
		Name: "lbm", FracINT: 0.24, FracFP: 0.52, FracSFU: 0.00, FracLDST: 0.24,
		BodyLen: 120, Iterations: 8, DepWindow: 8, LoadUseGap: 3,
		SharedFrac: 0.05, StoreFrac: 0.40, Pattern: isa.PatternCoalesced, RandomFrac: 0.05,
		WorkingLines: 8192, NumRegions: 4, IMulFrac: 0.05, FDivFrac: 0.03,
		WarpsPerCTA: 8, MaxConcurrentCTAs: 5, CTAsPerSM: 6,
	},
	"LIB": {
		Name: "LIB", FracINT: 0.32, FracFP: 0.46, FracSFU: 0.06, FracLDST: 0.16,
		BodyLen: 84, Iterations: 12, DepWindow: 4, LoadUseGap: 3,
		SharedFrac: 0.05, StoreFrac: 0.20, Pattern: isa.PatternCoalesced, RandomFrac: 0.20,
		WorkingLines: 2048, NumRegions: 3, IMulFrac: 0.05, FDivFrac: 0.05,
		WarpsPerCTA: 4, MaxConcurrentCTAs: 2, CTAsPerSM: 5,
	},
	"mri": {
		Name: "mri", FracINT: 0.24, FracFP: 0.50, FracSFU: 0.12, FracLDST: 0.14,
		BodyLen: 100, Iterations: 14, DepWindow: 5, LoadUseGap: 6,
		SharedFrac: 0.20, StoreFrac: 0.10, Pattern: isa.PatternCoalesced, RandomFrac: 0.05,
		WorkingLines: 512, NumRegions: 2, IMulFrac: 0.05, FDivFrac: 0.03,
		WarpsPerCTA: 8, MaxConcurrentCTAs: 4, CTAsPerSM: 6,
	},
	"MUM": {
		Name: "MUM", FracINT: 0.68, FracFP: 0.04, FracSFU: 0.01, FracLDST: 0.27,
		BodyLen: 88, Iterations: 6, DepWindow: 4, LoadUseGap: 2,
		SharedFrac: 0.05, StoreFrac: 0.10, Pattern: isa.PatternStrided2, RandomFrac: 0.50,
		WorkingLines: 4096, NumRegions: 4, IMulFrac: 0.06, FDivFrac: 0.0,
		WarpsPerCTA: 8, MaxConcurrentCTAs: 4, CTAsPerSM: 4,
	},
	"NN": {
		Name: "NN", FracINT: 0.52, FracFP: 0.24, FracSFU: 0.04, FracLDST: 0.20,
		BodyLen: 72, Iterations: 14, DepWindow: 4, LoadUseGap: 3,
		SharedFrac: 0.10, StoreFrac: 0.15, Pattern: isa.PatternCoalesced, RandomFrac: 0.20,
		WorkingLines: 2048, NumRegions: 2, IMulFrac: 0.06, FDivFrac: 0.02,
		WarpsPerCTA: 4, MaxConcurrentCTAs: 2, CTAsPerSM: 5,
	},
	"nw": {
		Name: "nw", FracINT: 0.68, FracFP: 0.02, FracSFU: 0.00, FracLDST: 0.30,
		BodyLen: 64, Iterations: 12, DepWindow: 3, LoadUseGap: 2,
		SharedFrac: 0.45, StoreFrac: 0.30, Pattern: isa.PatternStrided2, RandomFrac: 0.10,
		WorkingLines: 2048, NumRegions: 2, IMulFrac: 0.04, FDivFrac: 0.0,
		WarpsPerCTA: 4, MaxConcurrentCTAs: 2, CTAsPerSM: 4,
	},
	"sgemm": {
		Name: "sgemm", FracINT: 0.20, FracFP: 0.58, FracSFU: 0.00, FracLDST: 0.22,
		BodyLen: 112, Iterations: 14, DepWindow: 7, LoadUseGap: 5,
		SharedFrac: 0.55, StoreFrac: 0.10, Pattern: isa.PatternCoalesced, RandomFrac: 0.02,
		WorkingLines: 384, NumRegions: 3, IMulFrac: 0.08, FDivFrac: 0.0,
		WarpsPerCTA: 8, MaxConcurrentCTAs: 4, CTAsPerSM: 8,
	},
	"srad": {
		Name: "srad", FracINT: 0.44, FracFP: 0.31, FracSFU: 0.03, FracLDST: 0.22,
		BodyLen: 96, Iterations: 12, DepWindow: 6, LoadUseGap: 4,
		SharedFrac: 0.15, StoreFrac: 0.25, Pattern: isa.PatternCoalesced, RandomFrac: 0.05,
		WorkingLines: 4096, NumRegions: 4, IMulFrac: 0.06, FDivFrac: 0.05,
		WarpsPerCTA: 8, MaxConcurrentCTAs: 6, CTAsPerSM: 8,
	},
	"WP": {
		Name: "WP", FracINT: 0.34, FracFP: 0.41, FracSFU: 0.06, FracLDST: 0.19,
		BodyLen: 92, Iterations: 10, DepWindow: 5, LoadUseGap: 4,
		SharedFrac: 0.15, StoreFrac: 0.20, Pattern: isa.PatternStrided2, RandomFrac: 0.15,
		WorkingLines: 3072, NumRegions: 3, IMulFrac: 0.06, FDivFrac: 0.05,
		WarpsPerCTA: 6, MaxConcurrentCTAs: 2, CTAsPerSM: 4,
	},
}

// Benchmark returns the synthetic kernel for one of the paper's benchmarks.
func Benchmark(name string) (*Kernel, error) {
	p, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown benchmark %q (known: %v)", name, BenchmarkNames)
	}
	return p.Build()
}

// MustBenchmark is Benchmark but panics on error; the built-in profiles are
// covered by tests, so failure here is a programming error.
func MustBenchmark(name string) *Kernel {
	k, err := Benchmark(name)
	if err != nil {
		panic(err)
	}
	return k
}

// BenchmarkProfile returns a copy of the profile behind a built-in benchmark,
// for inspection and for building variants in tests.
func BenchmarkProfile(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("kernels: unknown benchmark %q", name)
	}
	return *p, nil
}

// AllBenchmarks builds every paper benchmark, sorted by name.
func AllBenchmarks() ([]*Kernel, error) {
	names := append([]string(nil), BenchmarkNames...)
	sort.Strings(names)
	ks := make([]*Kernel, 0, len(names))
	for _, n := range names {
		k, err := Benchmark(n)
		if err != nil {
			return nil, err
		}
		ks = append(ks, k)
	}
	return ks, nil
}
