// Package mem implements the memory-subsystem substrate of the simulator:
// a set-associative L1 data cache per SM, a shared L2, MSHRs, a warp access
// coalescer, and a bandwidth-limited DRAM latency model. Its only job in this
// reproduction is to create realistic pending-warp populations and idle
// windows in the execution pipelines — the raw material every figure in the
// paper is computed from.
package mem

import "fmt"

// Line is a cache-line address (byte address with the offset bits dropped).
type Line uint64

// Cache is a set-associative cache with LRU replacement. It tracks tags only:
// the simulator never needs data values, just hit/miss timing.
type Cache struct {
	sets     int
	ways     int
	setMask  uint64
	tags     []Line // sets*ways entries; line address or invalidLine
	lru      []uint32
	clock    uint32
	accesses uint64
	misses   uint64
}

const invalidLine = ^Line(0)

// NewCache builds a cache with the given geometry. Sets must be a power of
// two and ways positive.
func NewCache(sets, ways int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: sets must be a positive power of two, got %d", sets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("mem: ways must be positive, got %d", ways))
	}
	c := &Cache{
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		tags:    make([]Line, sets*ways),
		lru:     make([]uint32, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = invalidLine
	}
	return c
}

// Access looks up line, filling it on a miss (LRU victim), and reports
// whether the access hit.
func (c *Cache) Access(line Line) bool {
	c.accesses++
	c.clock++
	base := int(uint64(line)&c.setMask) * c.ways
	victim, invalid := base, -1
	oldest := c.lru[base]
	for i := 0; i < c.ways; i++ {
		idx := base + i
		if c.tags[idx] == line {
			c.lru[idx] = c.clock
			return true
		}
		if c.tags[idx] == invalidLine && invalid < 0 {
			invalid = idx
		}
		if c.lru[idx] < oldest {
			victim, oldest = idx, c.lru[idx]
		}
	}
	// Prefer filling an invalid way, else evict the least recently used.
	if invalid >= 0 {
		victim = invalid
	}
	c.misses++
	c.tags[victim] = line
	c.lru[victim] = c.clock
	return false
}

// Probe reports whether line is present without updating LRU or filling.
func (c *Cache) Probe(line Line) bool {
	base := int(uint64(line)&c.setMask) * c.ways
	for i := 0; i < c.ways; i++ {
		if c.tags[base+i] == line {
			return true
		}
	}
	return false
}

// Stats returns total accesses and misses so far.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset invalidates every line and clears statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = invalidLine
		c.lru[i] = 0
	}
	c.clock = 0
	c.accesses = 0
	c.misses = 0
}
