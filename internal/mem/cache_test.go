package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(4, 2)
	if c.Access(100) {
		t.Fatal("cold access hit")
	}
	if !c.Access(100) {
		t.Fatal("second access missed")
	}
	acc, miss := c.Stats()
	if acc != 2 || miss != 1 {
		t.Fatalf("stats = %d/%d, want 2/1", acc, miss)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct-mapped 2-set cache: lines 0 and 2 share set 0.
	c := NewCache(2, 1)
	c.Access(0)
	c.Access(2) // evicts 0
	if c.Access(0) {
		t.Fatal("line 0 should have been evicted")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// 1-set, 2-way: touching A keeps it resident while B gets evicted.
	c := NewCache(1, 2)
	c.Access(10) // A
	c.Access(20) // B
	c.Access(10) // A is now MRU
	c.Access(30) // evicts B (LRU)
	if !c.Probe(10) {
		t.Fatal("A evicted despite being MRU")
	}
	if c.Probe(20) {
		t.Fatal("B survived despite being LRU")
	}
	if !c.Probe(30) {
		t.Fatal("newly filled line absent")
	}
}

func TestCachePrefersInvalidWays(t *testing.T) {
	c := NewCache(1, 4)
	c.Access(1)
	c.Access(2)
	c.Access(3) // one way still invalid
	c.Access(4) // must fill the invalid way, evicting nothing
	for _, l := range []Line{1, 2, 3, 4} {
		if !c.Probe(l) {
			t.Fatalf("line %d missing although capacity was available", l)
		}
	}
}

func TestCacheProbeDoesNotFill(t *testing.T) {
	c := NewCache(4, 2)
	if c.Probe(5) {
		t.Fatal("probe hit on empty cache")
	}
	if c.Probe(5) {
		t.Fatal("probe must not fill")
	}
	acc, _ := c.Stats()
	if acc != 0 {
		t.Fatal("probe must not count as access")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(4, 2)
	c.Access(1)
	c.Reset()
	if c.Probe(1) {
		t.Fatal("line survived reset")
	}
	if acc, miss := c.Stats(); acc != 0 || miss != 0 {
		t.Fatal("stats survived reset")
	}
}

func TestCacheMissRate(t *testing.T) {
	c := NewCache(4, 2)
	if c.MissRate() != 0 {
		t.Fatal("empty cache miss rate should be 0")
	}
	c.Access(1)
	c.Access(1)
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", got)
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache(0, 1) },
		func() { NewCache(3, 1) },
		func() { NewCache(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry did not panic")
				}
			}()
			f()
		}()
	}
}

func TestCacheWorkingSetProperty(t *testing.T) {
	// Property: a working set no larger than capacity always hits after the
	// first pass, regardless of the access permutation within the set.
	f := func(seed uint8, sizeRaw uint8) bool {
		c := NewCache(8, 2) // capacity 16 lines
		size := 1 + int(sizeRaw%16)
		// First pass: fill.
		for i := 0; i < size; i++ {
			c.Access(Line(i))
		}
		// Second pass in a rotated order: must all hit.
		start := int(seed) % size
		for i := 0; i < size; i++ {
			if !c.Access(Line((start + i) % size)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheStreamingMissesProperty(t *testing.T) {
	// Property: a strictly streaming scan (every line new) never hits.
	c := NewCache(32, 4)
	for i := 0; i < 10000; i++ {
		if c.Access(Line(i)) {
			t.Fatalf("streaming access %d hit", i)
		}
	}
}
