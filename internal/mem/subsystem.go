package mem

import (
	"fmt"

	"warpedgates/internal/config"
)

// Result describes the timing outcome of one warp memory access: the cycle
// the value becomes available and what levels it hit, for statistics.
type Result struct {
	CompleteAt   int64 // absolute cycle the last transaction returns
	Transactions int
	L1Misses     int
	L2Misses     int
}

// GPUMem is the device-level memory system shared by all SMs: a unified L2
// and a channel-partitioned DRAM model with bounded bandwidth. Access timing
// is computed at issue time, which keeps the model deterministic and cheap
// while still producing realistic latency spreads and queueing under load.
type GPUMem struct {
	cfg      config.Config
	l2       *Cache
	chanFree []int64 // per-DRAM-channel next-free cycle
	// dramService is the channel occupancy per request; together with the
	// channel count it sets peak DRAM bandwidth.
	dramService int64

	l2Accesses uint64
	l2Misses   uint64
	dramReqs   uint64
	queueDelay uint64 // accumulated cycles requests waited for a channel
}

// NewGPUMem builds the device-level memory system for cfg.
func NewGPUMem(cfg config.Config) *GPUMem {
	return &GPUMem{
		cfg:         cfg,
		l2:          NewCache(cfg.L2Sets, cfg.L2Ways),
		chanFree:    make([]int64, cfg.DRAMSlots),
		dramService: 4,
	}
}

// AccessLine computes the completion cycle of one line transaction entering
// the device at cycle now after missing an SM's L1.
func (g *GPUMem) AccessLine(now int64, line Line) (completeAt int64, l2Miss bool) {
	g.l2Accesses++
	if g.l2.Access(line) {
		return now + int64(g.cfg.L2HitLatency), false
	}
	g.l2Misses++
	g.dramReqs++
	ch := int(uint64(line) % uint64(len(g.chanFree)))
	start := now
	if g.chanFree[ch] > start {
		g.queueDelay += uint64(g.chanFree[ch] - start)
		start = g.chanFree[ch]
	}
	g.chanFree[ch] = start + g.dramService
	return start + int64(g.cfg.DRAMLatency), true
}

// Stats returns L2 and DRAM counters.
func (g *GPUMem) Stats() (l2Acc, l2Miss, dramReqs, queueDelay uint64) {
	return g.l2Accesses, g.l2Misses, g.dramReqs, g.queueDelay
}

// SMPort is one SM's private view of the memory system: its L1 data cache,
// MSHR table, shared-memory latency, and a handle to the device-level L2/DRAM.
type SMPort struct {
	cfg  config.Config
	l1   *Cache
	mshr *MSHR
	gpu  *GPUMem

	sharedAccesses uint64
	globalAccesses uint64
	stallsMSHR     uint64
}

// NewSMPort builds the per-SM memory port.
func NewSMPort(cfg config.Config, gpu *GPUMem) *SMPort {
	if gpu == nil {
		panic("mem: NewSMPort requires a device-level memory system")
	}
	return &SMPort{
		cfg:  cfg,
		l1:   NewCache(cfg.L1Sets, cfg.L1Ways),
		mshr: NewMSHR(cfg.MSHRPerSM),
		gpu:  gpu,
	}
}

// Expire releases MSHR entries whose fills have returned by cycle now; the
// simulator calls it once per cycle before issue.
func (p *SMPort) Expire(now int64) { p.mshr.ExpireBefore(now) }

// SharedAccess returns the completion cycle of a shared-memory access issued
// at cycle now. Shared memory is a fixed-latency scratchpad; bank conflicts
// are folded into the configured latency.
func (p *SMPort) SharedAccess(now int64) int64 {
	p.sharedAccesses++
	return now + int64(p.cfg.SharedLatency)
}

// CanIssueGlobal reports whether a global access with the given transaction
// fan-out can be accepted this cycle. Admission is conservative: every
// transaction without an outstanding fill is assumed to need a fresh MSHR
// entry, even if it currently probes as an L1 hit, because an earlier
// transaction of the same warp access can evict that line before it is
// serviced. Real MSHR admission control is similarly worst-case.
func (p *SMPort) CanIssueGlobal(lines []Line) bool {
	need := 0
	for _, l := range lines {
		if _, pending := p.mshr.Lookup(l); !pending {
			need++
		}
	}
	if !p.mshr.HasRoom(need) {
		p.mshr.NoteFull()
		p.stallsMSHR++
		return false
	}
	return true
}

// GlobalAccess issues one warp global access covering the given lines at
// cycle now and returns its timing. Callers must have checked CanIssueGlobal
// in the same cycle.
func (p *SMPort) GlobalAccess(now int64, lines []Line) Result {
	res := Result{Transactions: len(lines)}
	latest := now + int64(p.cfg.L1HitLatency)
	p.globalAccesses++
	for _, l := range lines {
		if done, pending := p.mshr.Lookup(l); pending {
			// Secondary miss: merge with the outstanding fill.
			p.mshr.NoteMerge()
			res.L1Misses++
			if done > latest {
				latest = done
			}
			continue
		}
		if p.l1.Access(l) {
			continue // L1 hit: covered by the base hit latency
		}
		res.L1Misses++
		done, l2miss := p.gpu.AccessLine(now, l)
		if l2miss {
			res.L2Misses++
		}
		p.mshr.Allocate(l, done)
		if done > latest {
			latest = done
		}
	}
	res.CompleteAt = latest
	return res
}

// Occupancy returns the number of in-flight miss entries.
func (p *SMPort) Occupancy() int { return p.mshr.InFlight() }

// L1 exposes the L1 cache for statistics.
func (p *SMPort) L1() *Cache { return p.l1 }

// MSHRStats returns the MSHR's allocation, merge and full-stall counters.
func (p *SMPort) MSHRStats() (allocs, merges, fullStalls uint64) { return p.mshr.Stats() }

// Stats returns shared/global access counts and MSHR-full stalls.
func (p *SMPort) Stats() (shared, global, mshrStalls uint64) {
	return p.sharedAccesses, p.globalAccesses, p.stallsMSHR
}

// String summarizes the port state.
func (p *SMPort) String() string {
	return fmt.Sprintf("SMPort{l1miss=%.2f inflight=%d}", p.l1.MissRate(), p.mshr.InFlight())
}
