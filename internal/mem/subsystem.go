package mem

import (
	"fmt"

	"warpedgates/internal/config"
)

// Result describes the timing outcome of one warp memory access: the cycle
// the value becomes available and what levels it hit, for statistics.
type Result struct {
	CompleteAt   int64 // absolute cycle the last transaction returns
	Transactions int
	L1Misses     int
	L2Misses     int
}

// GPUMem is the device-level memory system shared by all SMs: a unified L2
// and a channel-partitioned DRAM model with bounded bandwidth. Access timing
// is computed at issue time, which keeps the model deterministic and cheap
// while still producing realistic latency spreads and queueing under load.
type GPUMem struct {
	cfg      config.Config
	l2       *Cache
	chanFree []int64 // per-DRAM-channel next-free cycle
	// dramService is the channel occupancy per request; together with the
	// channel count it sets peak DRAM bandwidth.
	dramService int64

	l2Accesses uint64
	l2Misses   uint64
	dramReqs   uint64
	queueDelay uint64 // accumulated cycles requests waited for a channel
}

// NewGPUMem builds the device-level memory system for cfg.
func NewGPUMem(cfg config.Config) *GPUMem {
	return &GPUMem{
		cfg:         cfg,
		l2:          NewCache(cfg.L2Sets, cfg.L2Ways),
		chanFree:    make([]int64, cfg.DRAMSlots),
		dramService: 4,
	}
}

// AccessLine computes the completion cycle of one line transaction entering
// the device at cycle now after missing an SM's L1.
func (g *GPUMem) AccessLine(now int64, line Line) (completeAt int64, l2Miss bool) {
	g.l2Accesses++
	if g.l2.Access(line) {
		return now + int64(g.cfg.L2HitLatency), false
	}
	g.l2Misses++
	g.dramReqs++
	ch := int(uint64(line) % uint64(len(g.chanFree)))
	start := now
	if g.chanFree[ch] > start {
		g.queueDelay += uint64(g.chanFree[ch] - start)
		start = g.chanFree[ch]
	}
	g.chanFree[ch] = start + g.dramService
	return start + int64(g.cfg.DRAMLatency), true
}

// Stats returns L2 and DRAM counters.
func (g *GPUMem) Stats() (l2Acc, l2Miss, dramReqs, queueDelay uint64) {
	return g.l2Accesses, g.l2Misses, g.dramReqs, g.queueDelay
}

// stagedKind classifies one line of a staged global access for the resolve
// phase. L1 hits need no record: they are covered by the base hit latency and
// never touch shared state.
const (
	stageMerge  uint8 = iota // secondary miss: read the (patched) MSHR fill cycle
	stageDevice              // primary miss: send to the device, patch the MSHR
)

// stagedOp is one line of a staged access that the arbitration phase must
// still act on.
type stagedOp struct {
	line Line
	kind uint8
}

// stagedAccess is one warp global access staged during the compute phase: a
// run of nOps entries in the port's op buffer plus the statistics already
// known at stage time.
type stagedAccess struct {
	nOps         int32
	transactions int32
	l1Misses     int32
}

// SMPort is one SM's private view of the memory system: its L1 data cache,
// MSHR table, shared-memory latency, and a handle to the device-level L2/DRAM.
//
// Global accesses go through a stage/resolve pair: StageGlobal performs every
// SM-private effect (L1 fill, MSHR occupancy, merge accounting) and records
// the lines that need the shared device, and ResolveStaged replays those
// lines against the L2/DRAM model. The serial engine resolves immediately
// after staging; the parallel engine stages from worker goroutines and
// resolves in canonical SM-id order from the arbitration phase, so both
// engines drive the device through the same code path in the same order.
type SMPort struct {
	cfg  config.Config
	l1   *Cache
	mshr *MSHR
	gpu  *GPUMem

	// Staged-access buffers, reused across cycles (appends allocate only
	// until the high-water mark is reached, keeping the steady state
	// allocation-free).
	stagedOps  []stagedOp
	stagedAccs []stagedAccess

	sharedAccesses uint64
	globalAccesses uint64
	stallsMSHR     uint64
}

// NewSMPort builds the per-SM memory port.
func NewSMPort(cfg config.Config, gpu *GPUMem) *SMPort {
	if gpu == nil {
		panic("mem: NewSMPort requires a device-level memory system")
	}
	return &SMPort{
		cfg:  cfg,
		l1:   NewCache(cfg.L1Sets, cfg.L1Ways),
		mshr: NewMSHR(cfg.MSHRPerSM),
		gpu:  gpu,
	}
}

// Expire releases MSHR entries whose fills have returned by cycle now; the
// simulator calls it once per cycle before issue.
func (p *SMPort) Expire(now int64) { p.mshr.ExpireBefore(now) }

// SharedAccess returns the completion cycle of a shared-memory access issued
// at cycle now. Shared memory is a fixed-latency scratchpad; bank conflicts
// are folded into the configured latency.
func (p *SMPort) SharedAccess(now int64) int64 {
	p.sharedAccesses++
	return now + int64(p.cfg.SharedLatency)
}

// CanIssueGlobal reports whether a global access with the given transaction
// fan-out can be accepted this cycle. Admission is conservative: every
// distinct transaction line without an outstanding fill is assumed to need a
// fresh MSHR entry, even if it currently probes as an L1 hit, because an
// earlier transaction of the same warp access can evict that line before it
// is serviced. Duplicate lines in the same access count once: the first
// occurrence allocates the entry and later ones merge with it, so charging
// each repeat a fresh entry would reject accesses the table can in fact hold
// (the coalescer emits duplicates when a strided pattern wraps a small
// working set). The inner scan is quadratic but lines is bounded by the warp
// transaction fan-out (at most 8).
func (p *SMPort) CanIssueGlobal(lines []Line) bool {
	need := 0
	for i, l := range lines {
		if _, pending := p.mshr.Lookup(l); pending {
			continue
		}
		dup := false
		for _, e := range lines[:i] {
			if e == l {
				dup = true
				break
			}
		}
		if !dup {
			need++
		}
	}
	if !p.mshr.HasRoom(need) {
		p.mshr.NoteFull()
		p.stallsMSHR++
		return false
	}
	return true
}

// StageGlobal performs the SM-private half of one warp global access: L1
// lookups and fills, MSHR merge accounting and occupancy reservation. Lines
// that need the shared device are recorded for ResolveStaged; nothing here
// touches state outside the SM, so worker goroutines stepping disjoint SMs
// may stage concurrently. Callers must have checked CanIssueGlobal in the
// same cycle.
func (p *SMPort) StageGlobal(lines []Line) {
	p.globalAccesses++
	acc := stagedAccess{transactions: int32(len(lines))}
	for _, l := range lines {
		if _, pending := p.mshr.Lookup(l); pending {
			// Secondary miss: merge with the outstanding fill. The fill cycle
			// is read at resolve time, after any same-cycle primary miss to
			// the same line has been patched.
			p.mshr.NoteMerge()
			acc.l1Misses++
			p.stagedOps = append(p.stagedOps, stagedOp{line: l, kind: stageMerge})
			acc.nOps++
			continue
		}
		if p.l1.Access(l) {
			continue // L1 hit: covered by the base hit latency
		}
		acc.l1Misses++
		p.mshr.AllocatePending(l)
		p.stagedOps = append(p.stagedOps, stagedOp{line: l, kind: stageDevice})
		acc.nOps++
	}
	p.stagedAccs = append(p.stagedAccs, acc)
}

// ResolveStaged applies every access staged since the last resolve to the
// shared device, in staging order, and reports each access's timing through
// fn (i is the access's staging index). It must be called at the cycle the
// accesses were staged, from the serial arbitration phase — this is the only
// SMPort path that touches the device-level L2/DRAM.
func (p *SMPort) ResolveStaged(now int64, fn func(i int, res Result)) {
	op := 0
	for i := range p.stagedAccs {
		acc := &p.stagedAccs[i]
		res := Result{
			Transactions: int(acc.transactions),
			L1Misses:     int(acc.l1Misses),
		}
		latest := now + int64(p.cfg.L1HitLatency)
		for k := int32(0); k < acc.nOps; k++ {
			o := p.stagedOps[op]
			op++
			var done int64
			switch o.kind {
			case stageMerge:
				var ok bool
				done, ok = p.mshr.Lookup(o.line)
				if !ok {
					panic(fmt.Sprintf("mem: staged merge for line %#x with no MSHR entry", uint64(o.line)))
				}
			case stageDevice:
				var l2miss bool
				done, l2miss = p.gpu.AccessLine(now, o.line)
				if l2miss {
					res.L2Misses++
				}
				p.mshr.Patch(o.line, done)
			}
			if done > latest {
				latest = done
			}
		}
		res.CompleteAt = latest
		fn(i, res)
	}
	p.stagedOps = p.stagedOps[:0]
	p.stagedAccs = p.stagedAccs[:0]
}

// GlobalAccess issues one warp global access covering the given lines at
// cycle now and returns its timing. It is the serial engine's path: a stage
// followed by an immediate resolve, so serial and parallel runs share one
// implementation and cannot drift. Callers must have checked CanIssueGlobal
// in the same cycle and must not have other accesses staged.
func (p *SMPort) GlobalAccess(now int64, lines []Line) Result {
	if len(p.stagedAccs) != 0 {
		panic("mem: GlobalAccess with accesses already staged — resolve them first")
	}
	p.StageGlobal(lines)
	var out Result
	p.ResolveStaged(now, func(_ int, res Result) { out = res })
	return out
}

// Occupancy returns the number of in-flight miss entries.
func (p *SMPort) Occupancy() int { return p.mshr.InFlight() }

// L1 exposes the L1 cache for statistics.
func (p *SMPort) L1() *Cache { return p.l1 }

// MSHRStats returns the MSHR's allocation, merge and full-stall counters.
func (p *SMPort) MSHRStats() (allocs, merges, fullStalls uint64) { return p.mshr.Stats() }

// Stats returns shared/global access counts and MSHR-full stalls.
func (p *SMPort) Stats() (shared, global, mshrStalls uint64) {
	return p.sharedAccesses, p.globalAccesses, p.stallsMSHR
}

// String summarizes the port state.
func (p *SMPort) String() string {
	return fmt.Sprintf("SMPort{l1miss=%.2f inflight=%d}", p.l1.MissRate(), p.mshr.InFlight())
}
