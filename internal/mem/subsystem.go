package mem

import (
	"fmt"
	"math/bits"

	"warpedgates/internal/config"
)

// Result describes the timing outcome of one warp memory access: the cycle
// the value becomes available and what levels it hit, for statistics.
type Result struct {
	CompleteAt   int64 // absolute cycle the last transaction returns
	Transactions int
	L1Misses     int
	L2Misses     int
}

// memBank is one address bank's slice of the device-level memory system: a
// partition of the unified L2 and the DRAM channels whose index is congruent
// to the bank, plus that partition's statistics. Banks share no state, so the
// parallel engine's resolve phase drains different banks on different worker
// goroutines; the padding keeps the per-bank counters from write-sharing a
// cache line across workers.
type memBank struct {
	l2       *Cache
	chanFree []int64 // next-free cycle of the channels this bank owns

	l2Accesses uint64
	l2Misses   uint64
	dramReqs   uint64
	queueDelay uint64 // accumulated cycles requests waited for a channel

	_ [64]byte
}

// GPUMem is the device-level memory system shared by all SMs: a unified L2
// and a channel-partitioned DRAM model with bounded bandwidth. Access timing
// is computed at issue time, which keeps the model deterministic and cheap
// while still producing realistic latency spreads and queueing under load.
//
// Internally the state is sharded by address bank (line % banks, a power of
// two dividing both L2Sets and DRAMSlots). The sharding is an exact partition
// of the unified model: a line's L2 set and DRAM channel live entirely inside
// its bank, set grouping and channel mapping are bijective with the unified
// indexing, and statistics are merged at report time — so serial access order
// produces bit-identical timing to the pre-sharded implementation, while the
// parallel engine may drain distinct banks concurrently.
type GPUMem struct {
	cfg       config.Config
	banks     []memBank
	bankMask  uint64 // banks-1
	bankShift uint   // log2(banks)
	// dramService is the channel occupancy per request; together with the
	// channel count it sets peak DRAM bandwidth.
	dramService int64
}

// NewGPUMem builds the device-level memory system for cfg.
func NewGPUMem(cfg config.Config) *GPUMem {
	nb := cfg.EffectiveMemBanks()
	if cfg.L2Sets%nb != 0 || cfg.DRAMSlots%nb != 0 || nb&(nb-1) != 0 {
		panic(fmt.Sprintf("mem: %d banks do not partition L2Sets=%d DRAMSlots=%d", nb, cfg.L2Sets, cfg.DRAMSlots))
	}
	g := &GPUMem{
		cfg:         cfg,
		banks:       make([]memBank, nb),
		bankMask:    uint64(nb - 1),
		bankShift:   uint(bits.TrailingZeros(uint(nb))),
		dramService: 4,
	}
	for b := range g.banks {
		g.banks[b].l2 = NewCache(cfg.L2Sets/nb, cfg.L2Ways)
		g.banks[b].chanFree = make([]int64, cfg.DRAMSlots/nb)
	}
	return g
}

// NumBanks returns the bank count of the sharded device state.
func (g *GPUMem) NumBanks() int { return len(g.banks) }

// BankOf returns the bank a line's device state lives in.
func (g *GPUMem) BankOf(line Line) int { return int(uint64(line) & g.bankMask) }

// AccessLine computes the completion cycle of one line transaction entering
// the device at cycle now after missing an SM's L1.
func (g *GPUMem) AccessLine(now int64, line Line) (completeAt int64, l2Miss bool) {
	return g.AccessBank(g.BankOf(line), now, line)
}

// AccessBank is AccessLine against one bank's partition; bank must equal
// BankOf(line). It is the single device-access path: the serial engine routes
// through it inline, and the parallel engine's bank workers call it directly,
// each for a disjoint bank, so the two engines cannot drift.
//
// The line is folded by the bank shift before indexing the partition: lines
// of one bank differ only above the bank bits, so line>>shift is a bijection
// that maps the unified set index s to the partition set s/banks and the
// unified channel c to the partition channel c/banks — the same lines meet in
// the same sets and queues, in the same order, as in the unified model.
func (g *GPUMem) AccessBank(bank int, now int64, line Line) (completeAt int64, l2Miss bool) {
	bk := &g.banks[bank]
	bk.l2Accesses++
	if bk.l2.Access(line >> g.bankShift) {
		return now + int64(g.cfg.L2HitLatency), false
	}
	bk.l2Misses++
	bk.dramReqs++
	ch := int((uint64(line) % uint64(g.cfg.DRAMSlots)) >> g.bankShift)
	start := now
	if bk.chanFree[ch] > start {
		bk.queueDelay += uint64(bk.chanFree[ch] - start)
		start = bk.chanFree[ch]
	}
	bk.chanFree[ch] = start + g.dramService
	return start + int64(g.cfg.DRAMLatency), true
}

// Stats returns L2 and DRAM counters, merged across banks.
func (g *GPUMem) Stats() (l2Acc, l2Miss, dramReqs, queueDelay uint64) {
	for b := range g.banks {
		bk := &g.banks[b]
		l2Acc += bk.l2Accesses
		l2Miss += bk.l2Misses
		dramReqs += bk.dramReqs
		queueDelay += bk.queueDelay
	}
	return
}

// stagedKind classifies one line of a staged global access for the resolve
// phase. L1 hits need no record: they are covered by the base hit latency and
// never touch shared state.
const (
	stageMerge  uint8 = iota // secondary miss: read the (patched) MSHR fill cycle
	stageDevice              // primary miss: send to the device, patch the MSHR
)

// stagedOp is one line of a staged access that the arbitration phase must
// still act on. at is the cycle the access was staged: under the exact engine
// every op of one resolve shares it, under the relaxed engine ops of one
// epoch carry different cycles. For a merge, fill is the outstanding entry's
// completion cycle captured at stage time — the entry may expire before the
// access is assembled (the relaxed engine keeps stepping the SM through the
// fill) — or the pending sentinel when the primary miss sits unresolved in
// this same buffer, in which case the real value is read after it is patched
// (a sentinel can never expire).
type stagedOp struct {
	line Line
	at   int64
	fill int64
	kind uint8
}

// stagedAccess is one warp global access staged during the compute phase: a
// run of nOps entries in the port's op buffer plus the statistics already
// known at stage time.
type stagedAccess struct {
	at           int64
	nOps         int32
	transactions int32
	l1Misses     int32
}

// SMPort is one SM's private view of the memory system: its L1 data cache,
// MSHR table, shared-memory latency, and a handle to the device-level L2/DRAM.
//
// Global accesses go through a stage/resolve pair: StageGlobal performs every
// SM-private effect (L1 fill, MSHR occupancy, merge accounting) and records
// the lines that need the shared device, and the resolve side replays those
// lines against the L2/DRAM model. The serial engine resolves immediately
// after staging (GlobalAccess); the parallel engine stages from worker
// goroutines and resolves in canonical order — either inline from a serial
// section (ResolveStaged) or split into a bank phase (ResolveBankOrdered, one worker
// per bank partition, recording per-line outcomes) followed by an SM-local
// assembly (FinishStaged). All paths share one assembly routine, so the
// engines drive the device through the same code in the same order.
type SMPort struct {
	cfg  config.Config
	l1   *Cache
	mshr *MSHR
	gpu  *GPUMem

	// Staged-access buffers, reused across cycles (appends allocate only
	// until the high-water mark is reached, keeping the steady state
	// allocation-free).
	stagedOps  []stagedOp
	stagedAccs []stagedAccess

	// Bank-phase buffers, maintained only when bank staging is enabled (the
	// parallel engine): per-bank lists of device-op indices, the per-op
	// outcomes written by bank workers (disjoint indices, so no locking),
	// and the count of device ops staged since the last resolve.
	bankStage    bool
	stagedByBank [][]int32
	doneAt       []int64
	doneMiss     []bool
	deviceOps    int

	sharedAccesses uint64
	globalAccesses uint64
	stallsMSHR     uint64
}

// NewSMPort builds the per-SM memory port.
func NewSMPort(cfg config.Config, gpu *GPUMem) *SMPort {
	if gpu == nil {
		panic("mem: NewSMPort requires a device-level memory system")
	}
	return &SMPort{
		cfg:  cfg,
		l1:   NewCache(cfg.L1Sets, cfg.L1Ways),
		mshr: NewMSHR(cfg.MSHRPerSM),
		gpu:  gpu,
	}
}

// SetBankStaging switches the per-bank routing buffers on or off. The
// parallel engine enables it for the duration of a run; the serial engine
// leaves it off so GlobalAccess pays nothing for the machinery.
func (p *SMPort) SetBankStaging(on bool) {
	p.bankStage = on
	if on && p.stagedByBank == nil {
		p.stagedByBank = make([][]int32, p.gpu.NumBanks())
	}
	if !on {
		for b := range p.stagedByBank {
			p.stagedByBank[b] = p.stagedByBank[b][:0]
		}
		p.stagedOps = p.stagedOps[:0]
		p.stagedAccs = p.stagedAccs[:0]
		p.doneAt = p.doneAt[:0]
		p.doneMiss = p.doneMiss[:0]
		p.deviceOps = 0
	}
}

// HasStagedDevice reports whether any staged op needs the shared device. A
// staging cycle whose accesses all hit the L1 or merge with outstanding fills
// touches nothing outside the SM, so the owning worker may resolve it locally
// without an arbitration point.
func (p *SMPort) HasStagedDevice() bool { return p.deviceOps > 0 }

// Expire releases MSHR entries whose fills have returned by cycle now; the
// simulator calls it once per cycle before issue.
func (p *SMPort) Expire(now int64) { p.mshr.ExpireBefore(now) }

// SharedAccess returns the completion cycle of a shared-memory access issued
// at cycle now. Shared memory is a fixed-latency scratchpad; bank conflicts
// are folded into the configured latency.
func (p *SMPort) SharedAccess(now int64) int64 {
	p.sharedAccesses++
	return now + int64(p.cfg.SharedLatency)
}

// CanIssueGlobal reports whether a global access with the given transaction
// fan-out can be accepted this cycle. Admission is conservative: every
// distinct transaction line without an outstanding fill is assumed to need a
// fresh MSHR entry, even if it currently probes as an L1 hit, because an
// earlier transaction of the same warp access can evict that line before it
// is serviced. Duplicate lines in the same access count once: the first
// occurrence allocates the entry and later ones merge with it, so charging
// each repeat a fresh entry would reject accesses the table can in fact hold
// (the coalescer emits duplicates when a strided pattern wraps a small
// working set). The inner scan is quadratic but lines is bounded by the warp
// transaction fan-out (at most 8).
func (p *SMPort) CanIssueGlobal(lines []Line) bool {
	need := 0
	for i, l := range lines {
		if _, pending := p.mshr.Lookup(l); pending {
			continue
		}
		dup := false
		for _, e := range lines[:i] {
			if e == l {
				dup = true
				break
			}
		}
		if !dup {
			need++
		}
	}
	if !p.mshr.HasRoom(need) {
		p.mshr.NoteFull()
		p.stallsMSHR++
		return false
	}
	return true
}

// StageGlobal performs the SM-private half of one warp global access issued
// at cycle now: L1 lookups and fills, MSHR merge accounting and occupancy
// reservation. Lines that need the shared device are recorded for the resolve
// side; nothing here touches state outside the SM, so worker goroutines
// stepping disjoint SMs may stage concurrently. Callers must have checked
// CanIssueGlobal in the same cycle.
func (p *SMPort) StageGlobal(now int64, lines []Line) {
	p.globalAccesses++
	acc := stagedAccess{at: now, transactions: int32(len(lines))}
	for _, l := range lines {
		if fill, pending := p.mshr.Lookup(l); pending {
			// Secondary miss: merge with the outstanding fill.
			p.mshr.NoteMerge()
			acc.l1Misses++
			p.appendOp(stagedOp{line: l, at: now, fill: fill, kind: stageMerge})
			acc.nOps++
			continue
		}
		if p.l1.Access(l) {
			continue // L1 hit: covered by the base hit latency
		}
		acc.l1Misses++
		p.mshr.AllocatePending(l)
		p.appendOp(stagedOp{line: l, at: now, kind: stageDevice})
		acc.nOps++
	}
	p.stagedAccs = append(p.stagedAccs, acc)
}

// appendOp records one staged line op, routing device ops to their bank list
// when bank staging is on.
func (p *SMPort) appendOp(o stagedOp) {
	idx := int32(len(p.stagedOps))
	p.stagedOps = append(p.stagedOps, o)
	if o.kind == stageDevice {
		p.deviceOps++
		if p.bankStage {
			b := p.gpu.BankOf(o.line)
			p.stagedByBank[b] = append(p.stagedByBank[b], idx)
		}
	}
	if p.bankStage {
		p.doneAt = append(p.doneAt, 0)
		p.doneMiss = append(p.doneMiss, false)
	}
}

// ResolveBankOrdered replays several ports' staged device ops for one bank in
// global (cycle, port, staging-index) order, recording each line's completion
// cycle and L2 outcome for FinishStaged. ports must be in canonical (SM id)
// order; cur is caller scratch of length >= len(ports). Each port's per-bank
// list is cycle-sorted already (ops are staged in step order), so a k-way
// min-merge reproduces the serial device order: without it, a late op from a
// low-numbered SM would occupy a DRAM channel ahead of an earlier op from a
// higher SM, and in relaxed mode that queue inflation compounds window after
// window. Different banks may resolve concurrently (disjoint doneAt/doneMiss
// indices, bank-local device state).
func ResolveBankOrdered(ports []*SMPort, bank int, cur []int32) {
	for i := range ports {
		cur[i] = 0
	}
	for {
		best := -1
		var bestAt int64
		for i, p := range ports {
			lst := p.stagedByBank[bank]
			if int(cur[i]) >= len(lst) {
				continue
			}
			if at := p.stagedOps[lst[cur[i]]].at; best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		if best < 0 {
			return
		}
		p := ports[best]
		idx := p.stagedByBank[bank][cur[best]]
		o := &p.stagedOps[idx]
		p.doneAt[idx], p.doneMiss[idx] = p.gpu.AccessBank(bank, o.at, o.line)
		cur[best]++
	}
}

// ResolveStaged applies every staged access to the shared device inline, in
// staging order, and reports each access's timing through fn (i is the
// access's staging index). It is the serial-section resolve: the only caller
// ordering requirement is ascending SM id, as the serial loop produces.
func (p *SMPort) ResolveStaged(fn func(i int, res Result)) {
	p.assemble(false, fn)
}

// FinishStaged assembles access timings from bank-phase outcomes (the bank
// phase must have covered every staged device op), patches the MSHR, and reports
// each access through fn. It touches only SM-private state, so the owning
// worker runs it without synchronization. It also serves staging cycles with
// no device ops at all (pure L1 hits and merges), where there is nothing to
// resolve and assembly is the entire job.
func (p *SMPort) FinishStaged(fn func(i int, res Result)) {
	p.assemble(true, fn)
}

// assemble walks the staged accesses in order, obtaining each device line's
// completion either inline from the device (serial resolve) or from the
// bank-phase outcome buffers, patching MSHR sentinels as it goes — a merge op
// always reads its fill after the same-cycle primary to the same line was
// patched, because ops are processed in staging order. It then clears every
// staged buffer.
func (p *SMPort) assemble(banked bool, fn func(i int, res Result)) {
	op := 0
	for i := range p.stagedAccs {
		acc := &p.stagedAccs[i]
		res := Result{
			Transactions: int(acc.transactions),
			L1Misses:     int(acc.l1Misses),
		}
		latest := acc.at + int64(p.cfg.L1HitLatency)
		for k := int32(0); k < acc.nOps; k++ {
			o := &p.stagedOps[op]
			var done int64
			switch o.kind {
			case stageMerge:
				done = o.fill
				if done == pendingFill {
					// The primary miss was staged in this same buffer and has
					// just been patched (ops run in staging order).
					var ok bool
					done, ok = p.mshr.Lookup(o.line)
					if !ok || done == pendingFill {
						panic(fmt.Sprintf("mem: staged merge for line %#x with no patched primary", uint64(o.line)))
					}
				}
			case stageDevice:
				var l2miss bool
				if banked {
					done, l2miss = p.doneAt[op], p.doneMiss[op]
					if done == 0 {
						panic(fmt.Sprintf("mem: staged device op for line %#x not resolved by any bank", uint64(o.line)))
					}
				} else {
					done, l2miss = p.gpu.AccessLine(o.at, o.line)
				}
				if l2miss {
					res.L2Misses++
				}
				p.mshr.Patch(o.line, done)
			}
			if done > latest {
				latest = done
			}
			op++
		}
		res.CompleteAt = latest
		fn(i, res)
	}
	p.stagedOps = p.stagedOps[:0]
	p.stagedAccs = p.stagedAccs[:0]
	p.deviceOps = 0
	if p.bankStage {
		p.doneAt = p.doneAt[:0]
		p.doneMiss = p.doneMiss[:0]
		for b := range p.stagedByBank {
			p.stagedByBank[b] = p.stagedByBank[b][:0]
		}
	}
}

// GlobalAccess issues one warp global access covering the given lines at
// cycle now and returns its timing. It is the serial engine's path: a stage
// followed by an immediate resolve, so serial and parallel runs share one
// implementation and cannot drift. Callers must have checked CanIssueGlobal
// in the same cycle and must not have other accesses staged.
func (p *SMPort) GlobalAccess(now int64, lines []Line) Result {
	if len(p.stagedAccs) != 0 {
		panic("mem: GlobalAccess with accesses already staged — resolve them first")
	}
	p.StageGlobal(now, lines)
	var out Result
	p.ResolveStaged(func(_ int, res Result) { out = res })
	return out
}

// Occupancy returns the number of in-flight miss entries.
func (p *SMPort) Occupancy() int { return p.mshr.InFlight() }

// L1 exposes the L1 cache for statistics.
func (p *SMPort) L1() *Cache { return p.l1 }

// MSHRStats returns the MSHR's allocation, merge and full-stall counters.
func (p *SMPort) MSHRStats() (allocs, merges, fullStalls uint64) { return p.mshr.Stats() }

// Stats returns shared/global access counts and MSHR-full stalls.
func (p *SMPort) Stats() (shared, global, mshrStalls uint64) {
	return p.sharedAccesses, p.globalAccesses, p.stallsMSHR
}

// String summarizes the port state.
func (p *SMPort) String() string {
	return fmt.Sprintf("SMPort{l1miss=%.2f inflight=%d}", p.l1.MissRate(), p.mshr.InFlight())
}
