package mem

import (
	"warpedgates/internal/isa"
	"warpedgates/internal/stats"
)

// Coalescer converts one warp memory instruction into the set of cache-line
// transactions the hardware would issue, following Fermi's per-128B-segment
// coalescing rules. Fully coalesced warps touch one line; strided and random
// patterns fan out into more transactions, which both occupies the LD/ST
// port longer and raises miss traffic — exactly the mechanism that pushes
// warps into the pending set in memory-divergent benchmarks (bfs, MUM).
type Coalescer struct {
	// MaxTransactions caps the fan-out of a single warp access. Real Fermi
	// can issue up to 32 transactions; the default cap of 8 preserves the
	// latency/bandwidth contrast between patterns at far lower simulation
	// cost (documented substitution, DESIGN.md §7).
	MaxTransactions int
}

// NewCoalescer returns a coalescer with the default transaction cap.
func NewCoalescer() *Coalescer { return &Coalescer{MaxTransactions: 8} }

// Transactions returns the distinct line addresses accessed by one warp
// executing a memory instruction with the given pattern. The base index
// identifies the warp's position in its region's working set; rng drives
// random patterns deterministically.
func (c *Coalescer) Transactions(pattern isa.AccessPattern, region uint8, base uint64,
	workingLines int, rng *stats.SplitMix64) []Line {
	cap := c.MaxTransactions
	if cap <= 0 {
		cap = 8
	}
	ws := uint64(workingLines)
	if ws == 0 {
		ws = 1
	}
	mkLine := func(idx uint64) Line {
		// Spread regions far apart in the line-address space so they never
		// alias in caches.
		return Line(uint64(region)<<40 | (idx % ws))
	}
	switch pattern {
	case isa.PatternCoalesced:
		return []Line{mkLine(base)}
	case isa.PatternStrided2:
		n := minInt(2, cap)
		out := make([]Line, n)
		for i := 0; i < n; i++ {
			out[i] = mkLine(base + uint64(i))
		}
		return out
	case isa.PatternStrided8:
		n := minInt(8, cap)
		out := make([]Line, n)
		for i := 0; i < n; i++ {
			out[i] = mkLine(base + uint64(i)*3)
		}
		return out
	case isa.PatternRandom:
		n := minInt(8, cap)
		out := make([]Line, 0, n)
		seen := make(map[Line]struct{}, n)
		for len(out) < n {
			l := mkLine(rng.Uint64() % ws)
			if _, dup := seen[l]; dup {
				// Duplicate lines coalesce into one transaction; with a
				// small working set this converges to few transactions,
				// which is the correct hardware behaviour.
				if len(seen) >= workingLines || len(seen) >= n {
					break
				}
				continue
			}
			seen[l] = struct{}{}
			out = append(out, l)
		}
		return out
	default:
		return []Line{mkLine(base)}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
