package mem

import (
	"warpedgates/internal/isa"
	"warpedgates/internal/stats"
)

// Coalescer converts one warp memory instruction into the set of cache-line
// transactions the hardware would issue, following Fermi's per-128B-segment
// coalescing rules. Fully coalesced warps touch one line; strided and random
// patterns fan out into more transactions, which both occupies the LD/ST
// port longer and raises miss traffic — exactly the mechanism that pushes
// warps into the pending set in memory-divergent benchmarks (bfs, MUM).
type Coalescer struct {
	// MaxTransactions caps the fan-out of a single warp access. Real Fermi
	// can issue up to 32 transactions; the default cap of 8 preserves the
	// latency/bandwidth contrast between patterns at far lower simulation
	// cost (documented substitution, DESIGN.md §7).
	MaxTransactions int
}

// NewCoalescer returns a coalescer with the default transaction cap.
func NewCoalescer() *Coalescer { return &Coalescer{MaxTransactions: 8} }

// Transactions returns the distinct line addresses accessed by one warp
// executing a memory instruction with the given pattern. The base index
// identifies the warp's position in its region's working set; rng drives
// random patterns deterministically.
func (c *Coalescer) Transactions(pattern isa.AccessPattern, region uint8, base uint64,
	workingLines int, rng *stats.SplitMix64) []Line {
	return c.AppendTransactions(nil, pattern, region, base, workingLines, rng)
}

// AppendTransactions appends the access's distinct line addresses to dst and
// returns the extended slice, consuming the rng stream and producing the
// exact lines Transactions would. It exists for the simulator's per-cycle
// hot path, which reuses one per-warp buffer instead of allocating; the
// transaction fan-out is capped at MaxTransactions, so a linear dedup scan
// over the appended suffix beats a freshly allocated set.
func (c *Coalescer) AppendTransactions(dst []Line, pattern isa.AccessPattern, region uint8,
	base uint64, workingLines int, rng *stats.SplitMix64) []Line {
	cap := c.MaxTransactions
	if cap <= 0 {
		cap = 8
	}
	ws := uint64(workingLines)
	if ws == 0 {
		ws = 1
	}
	mkLine := func(idx uint64) Line {
		// Spread regions far apart in the line-address space so they never
		// alias in caches.
		return Line(uint64(region)<<40 | (idx % ws))
	}
	switch pattern {
	case isa.PatternCoalesced:
		return append(dst, mkLine(base))
	case isa.PatternStrided2:
		n := minInt(2, cap)
		for i := 0; i < n; i++ {
			dst = append(dst, mkLine(base+uint64(i)))
		}
		return dst
	case isa.PatternStrided8:
		n := minInt(8, cap)
		for i := 0; i < n; i++ {
			dst = append(dst, mkLine(base+uint64(i)*3))
		}
		return dst
	case isa.PatternRandom:
		n := minInt(8, cap)
		start := len(dst)
		for len(dst)-start < n {
			l := mkLine(rng.Uint64() % ws)
			dup := false
			for _, e := range dst[start:] {
				if e == l {
					dup = true
					break
				}
			}
			if dup {
				// Duplicate lines coalesce into one transaction; with a
				// small working set this converges to few transactions,
				// which is the correct hardware behaviour.
				if seen := len(dst) - start; seen >= workingLines || seen >= n {
					break
				}
				continue
			}
			dst = append(dst, l)
		}
		return dst
	default:
		return append(dst, mkLine(base))
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
