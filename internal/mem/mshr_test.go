package mem

import (
	"testing"
	"testing/quick"
)

func TestMSHRAllocateLookupExpire(t *testing.T) {
	m := NewMSHR(4)
	m.Allocate(10, 100)
	if done, ok := m.Lookup(10); !ok || done != 100 {
		t.Fatalf("Lookup = %v,%v", done, ok)
	}
	if m.InFlight() != 1 {
		t.Fatalf("InFlight = %d", m.InFlight())
	}
	m.ExpireBefore(99)
	if m.InFlight() != 1 {
		t.Fatal("entry expired early")
	}
	m.ExpireBefore(100)
	if m.InFlight() != 0 {
		t.Fatal("entry not expired at its completion cycle")
	}
	if _, ok := m.Lookup(10); ok {
		t.Fatal("expired entry still pending")
	}
}

func TestMSHRHasRoom(t *testing.T) {
	m := NewMSHR(2)
	if !m.HasRoom(2) {
		t.Fatal("empty table should have room for 2")
	}
	if m.HasRoom(3) {
		t.Fatal("room for more than capacity")
	}
	m.Allocate(1, 10)
	if !m.HasRoom(1) || m.HasRoom(2) {
		t.Fatal("HasRoom wrong after one allocation")
	}
}

func TestMSHRDoubleAllocatePanics(t *testing.T) {
	m := NewMSHR(2)
	m.Allocate(1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("double allocation did not panic")
		}
	}()
	m.Allocate(1, 20)
}

func TestMSHROverflowPanics(t *testing.T) {
	m := NewMSHR(1)
	m.Allocate(1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	m.Allocate(2, 10)
}

func TestMSHRZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewMSHR(0)
}

func TestMSHRStats(t *testing.T) {
	m := NewMSHR(4)
	m.Allocate(1, 5)
	m.NoteMerge()
	m.NoteMerge()
	m.NoteFull()
	allocs, merges, fulls := m.Stats()
	if allocs != 1 || merges != 2 || fulls != 1 {
		t.Fatalf("stats = %d/%d/%d", allocs, merges, fulls)
	}
}

func TestMSHRNeverExceedsCapacityProperty(t *testing.T) {
	// Property: under random allocate/expire traffic guarded by HasRoom,
	// occupancy never exceeds capacity and Lookup agrees with allocations.
	f := func(ops []uint16) bool {
		m := NewMSHR(8)
		clock := int64(0)
		for _, op := range ops {
			clock++
			line := Line(op % 32)
			if _, pending := m.Lookup(line); pending {
				m.NoteMerge()
				continue
			}
			if !m.HasRoom(1) {
				m.ExpireBefore(clock + 50) // drain some
				continue
			}
			m.Allocate(line, clock+int64(op%100))
			if m.InFlight() > m.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRPatchCompletesStagedEntry(t *testing.T) {
	m := NewMSHR(2)
	m.AllocatePending(3)
	// An unpatched entry is pending but can never expire.
	if _, ok := m.Lookup(3); !ok {
		t.Fatal("staged entry not pending")
	}
	m.ExpireBefore(1 << 62)
	if m.InFlight() != 1 {
		t.Fatal("staged entry expired before being patched")
	}
	m.Patch(3, 100)
	if done, _ := m.Lookup(3); done != 100 {
		t.Fatalf("patched completion = %d, want 100", done)
	}
	m.ExpireBefore(100)
	if m.InFlight() != 0 {
		t.Fatal("patched entry did not expire")
	}
}

func TestMSHRPatchWithoutEntryPanics(t *testing.T) {
	m := NewMSHR(1)
	defer func() {
		if recover() == nil {
			t.Fatal("patch of a missing entry did not panic")
		}
	}()
	m.Patch(9, 5)
}

func TestMSHRDoublePatchPanics(t *testing.T) {
	m := NewMSHR(1)
	m.AllocatePending(9)
	m.Patch(9, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("double patch did not panic")
		}
	}()
	m.Patch(9, 6)
}

// TestMSHRMinFillFastPathMatchesSweep drives a randomized allocate / patch /
// expire schedule against a shadow map, asserting the minFill fast path never
// skips an expiry the full sweep would have performed and never leaves the
// table differing from the oracle.
func TestMSHRMinFillFastPathMatchesSweep(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMSHR(8)
		shadow := map[Line]int64{}
		now := int64(0)
		for _, op := range ops {
			line := Line(op % 16)
			switch {
			case op%3 == 0: // advance the clock and expire
				now += int64(op % 64)
				m.ExpireBefore(now)
				for l, till := range shadow {
					if till <= now {
						delete(shadow, l)
					}
				}
			case op%3 == 1: // allocate with a known fill cycle
				if _, pending := m.Lookup(line); pending || !m.HasRoom(1) {
					continue
				}
				fill := now + 1 + int64(op%128)
				m.Allocate(line, fill)
				shadow[line] = fill
			default: // stage then patch, exercising the sentinel path
				if _, pending := m.Lookup(line); pending || !m.HasRoom(1) {
					continue
				}
				m.AllocatePending(line)
				fill := now + 1 + int64(op%128)
				m.Patch(line, fill)
				shadow[line] = fill
			}
			if m.InFlight() != len(shadow) {
				t.Logf("in-flight %d, oracle %d", m.InFlight(), len(shadow))
				return false
			}
			for l, till := range shadow {
				got, ok := m.Lookup(l)
				if !ok || got != till {
					t.Logf("line %d: got %d,%v want %d", l, got, ok, till)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMSHRQuiescentExpireKeepsPendingEntry pins the fast path against the
// sentinel: a table holding only staged (unpatched) entries must treat every
// ExpireBefore as quiescent, no matter how far the clock advances.
func TestMSHRQuiescentExpireKeepsPendingEntry(t *testing.T) {
	m := NewMSHR(2)
	m.AllocatePending(3)
	m.ExpireBefore(1 << 60)
	if m.InFlight() != 1 {
		t.Fatal("unpatched entry expired")
	}
	m.Patch(3, 100)
	m.ExpireBefore(99)
	if m.InFlight() != 1 {
		t.Fatal("entry expired before its fill cycle")
	}
	m.ExpireBefore(100)
	if m.InFlight() != 0 {
		t.Fatal("entry survived its fill cycle")
	}
}
