package mem

import (
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/isa"
	"warpedgates/internal/stats"
)

func BenchmarkCacheAccessHit(b *testing.B) {
	c := NewCache(32, 4)
	for i := 0; i < 64; i++ {
		c.Access(Line(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(Line(i & 63))
	}
}

func BenchmarkCacheAccessStreaming(b *testing.B) {
	c := NewCache(32, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(Line(i))
	}
}

func BenchmarkCoalescerRandom(b *testing.B) {
	c := NewCoalescer()
	rng := stats.NewSplitMix64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Transactions(isa.PatternRandom, 0, uint64(i), 4096, rng)
	}
}

func BenchmarkGlobalAccess(b *testing.B) {
	cfg := config.GTX480()
	p := NewSMPort(cfg, NewGPUMem(cfg))
	lines := []Line{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Expire(int64(i) * 1000)
		p.GlobalAccess(int64(i)*1000, lines)
	}
}
