package mem

import (
	"testing"

	"warpedgates/internal/isa"
	"warpedgates/internal/stats"
)

func TestCoalescedIsOneTransaction(t *testing.T) {
	c := NewCoalescer()
	rng := stats.NewSplitMix64(1)
	lines := c.Transactions(isa.PatternCoalesced, 0, 5, 1024, rng)
	if len(lines) != 1 {
		t.Fatalf("coalesced access produced %d transactions", len(lines))
	}
}

func TestStridedFanOut(t *testing.T) {
	c := NewCoalescer()
	rng := stats.NewSplitMix64(1)
	if got := len(c.Transactions(isa.PatternStrided2, 0, 0, 1024, rng)); got != 2 {
		t.Fatalf("strided2 produced %d transactions, want 2", got)
	}
	if got := len(c.Transactions(isa.PatternStrided8, 0, 0, 1024, rng)); got != 8 {
		t.Fatalf("strided8 produced %d transactions, want 8", got)
	}
}

func TestRandomTransactionsDistinct(t *testing.T) {
	c := NewCoalescer()
	rng := stats.NewSplitMix64(99)
	lines := c.Transactions(isa.PatternRandom, 1, 0, 4096, rng)
	seen := map[Line]bool{}
	for _, l := range lines {
		if seen[l] {
			t.Fatalf("duplicate line %#x in random transactions", uint64(l))
		}
		seen[l] = true
	}
	if len(lines) == 0 || len(lines) > 8 {
		t.Fatalf("random fan-out %d out of range", len(lines))
	}
}

func TestRandomTinyWorkingSetTerminates(t *testing.T) {
	c := NewCoalescer()
	rng := stats.NewSplitMix64(7)
	lines := c.Transactions(isa.PatternRandom, 0, 0, 2, rng)
	if len(lines) == 0 || len(lines) > 2 {
		t.Fatalf("tiny working set produced %d transactions", len(lines))
	}
}

func TestTransactionCap(t *testing.T) {
	c := &Coalescer{MaxTransactions: 3}
	rng := stats.NewSplitMix64(1)
	if got := len(c.Transactions(isa.PatternStrided8, 0, 0, 1024, rng)); got > 3 {
		t.Fatalf("cap ignored: %d transactions", got)
	}
	// A non-positive cap falls back to the default.
	c = &Coalescer{}
	if got := len(c.Transactions(isa.PatternStrided8, 0, 0, 1024, rng)); got != 8 {
		t.Fatalf("default cap should allow 8, got %d", got)
	}
}

func TestRegionsNeverAlias(t *testing.T) {
	c := NewCoalescer()
	rng := stats.NewSplitMix64(3)
	a := c.Transactions(isa.PatternCoalesced, 0, 7, 64, rng)
	b := c.Transactions(isa.PatternCoalesced, 1, 7, 64, rng)
	if a[0] == b[0] {
		t.Fatal("same index in different regions aliased")
	}
}

func TestWorkingSetWrap(t *testing.T) {
	c := NewCoalescer()
	rng := stats.NewSplitMix64(3)
	// base beyond working set must wrap, staying within the region's lines.
	lines := c.Transactions(isa.PatternCoalesced, 2, 1<<20, 64, rng)
	idx := uint64(lines[0]) & ((1 << 40) - 1)
	if idx >= 64 {
		t.Fatalf("line index %d outside working set", idx)
	}
}

func TestStridedWrapEmitsDuplicates(t *testing.T) {
	// A strided pattern over a working set smaller than its fan-out wraps and
	// repeats lines — so MSHR admission control must not charge each repeat a
	// fresh entry (CanIssueGlobal dedupes). This pins the behaviour the
	// admission fix is sized against; if the coalescer ever dedupes strided
	// patterns itself, this test and the admission scan can both simplify.
	c := NewCoalescer()
	lines := c.Transactions(isa.PatternStrided2, 0, 0, 1, nil)
	if len(lines) != 2 || lines[0] != lines[1] {
		t.Fatalf("Strided2 over a 1-line working set = %v, want a duplicated line", lines)
	}
	seen := map[Line]bool{}
	dup := false
	for _, l := range c.Transactions(isa.PatternStrided8, 3, 5, 4, nil) {
		if seen[l] {
			dup = true
		}
		seen[l] = true
	}
	if !dup {
		t.Fatal("Strided8 over a 4-line working set emitted no duplicate")
	}
}
