package mem

import (
	"fmt"
	"math"
)

// pendingFill marks an MSHR entry whose completion cycle is not yet known: a
// staged device access allocated during the parallel compute phase, patched
// with the real fill cycle by the serial arbitration phase of the same cycle.
// MaxInt64 can never be reached by the clock, so an unpatched entry can never
// expire — Patch is guaranteed to run before any lookup that depends on the
// value, and a leak would surface as a permanently occupied entry.
const pendingFill = math.MaxInt64

// MSHR models the miss-status holding registers of one SM's L1: a bounded
// table of outstanding miss lines, each tagged with the cycle its fill
// returns. A full table is a structural hazard that blocks further memory
// issue — one of the mechanisms that parks warps in the pending set of the
// two-level scheduler. Because the simulator resolves access timing at issue,
// each entry carries its completion cycle, and entries expire when the
// simulated clock passes it.
type MSHR struct {
	capacity int
	pending  map[Line]int64 // line -> fill completion cycle
	// minFill is a lower bound on the earliest fill cycle in the table
	// (math.MaxInt64 when empty or all-pending). It lets ExpireBefore skip
	// the map walk on the overwhelmingly common quiescent cycle where
	// nothing can expire; deletions may leave it stale-low, which costs an
	// extra walk, never a missed expiry.
	minFill int64
	merges  uint64
	allocs  uint64
	full    uint64 // times allocation failed because the table was full
}

// NewMSHR returns an MSHR table with the given number of entries.
func NewMSHR(capacity int) *MSHR {
	if capacity <= 0 {
		panic(fmt.Sprintf("mem: MSHR capacity must be positive, got %d", capacity))
	}
	return &MSHR{capacity: capacity, pending: make(map[Line]int64, capacity), minFill: math.MaxInt64}
}

// Lookup returns the completion cycle of an outstanding miss to line, if any.
// A secondary miss to a pending line merges with it and completes together —
// real MSHR merge semantics.
func (m *MSHR) Lookup(line Line) (completeAt int64, pending bool) {
	c, ok := m.pending[line]
	return c, ok
}

// HasRoom reports whether n new (non-merging) entries can be allocated.
func (m *MSHR) HasRoom(n int) bool { return len(m.pending)+n <= m.capacity }

// Allocate records an outstanding miss for line completing at completeAt.
// It panics if the table is full or the line is already pending; callers
// must Lookup and HasRoom first.
func (m *MSHR) Allocate(line Line, completeAt int64) {
	if _, ok := m.pending[line]; ok {
		panic(fmt.Sprintf("mem: MSHR double allocation for line %#x", uint64(line)))
	}
	if len(m.pending) >= m.capacity {
		panic("mem: MSHR overflow — caller must check HasRoom")
	}
	m.pending[line] = completeAt
	if completeAt < m.minFill {
		m.minFill = completeAt
	}
	m.allocs++
}

// AllocatePending records an outstanding miss for line whose fill cycle is
// not yet known (the access was staged, not resolved). The entry occupies
// capacity immediately — admission control during the compute phase sees the
// same occupancy the serial engine would — and Patch supplies the completion
// cycle during the arbitration phase of the same cycle.
func (m *MSHR) AllocatePending(line Line) { m.Allocate(line, pendingFill) }

// Patch sets the completion cycle of a previously staged entry. It panics if
// the line has no entry or was already patched — both indicate a stage/resolve
// protocol violation, not a recoverable condition.
func (m *MSHR) Patch(line Line, completeAt int64) {
	c, ok := m.pending[line]
	if !ok {
		panic(fmt.Sprintf("mem: MSHR patch for line %#x with no staged entry", uint64(line)))
	}
	if c != pendingFill {
		panic(fmt.Sprintf("mem: MSHR double patch for line %#x", uint64(line)))
	}
	m.pending[line] = completeAt
	if completeAt < m.minFill {
		m.minFill = completeAt
	}
}

// NoteMerge counts a secondary miss merged into an existing entry.
func (m *MSHR) NoteMerge() { m.merges++ }

// NoteFull records a structural stall caused by a full table.
func (m *MSHR) NoteFull() { m.full++ }

// ExpireBefore releases every entry whose fill returned at or before now.
// Quiescent calls — no entry can have expired yet — are O(1) via the minFill
// bound; the sweep recomputes the exact minimum over the survivors.
func (m *MSHR) ExpireBefore(now int64) {
	if now < m.minFill {
		return
	}
	min := int64(math.MaxInt64)
	for line, till := range m.pending {
		if till <= now {
			delete(m.pending, line)
		} else if till < min {
			min = till
		}
	}
	m.minFill = min
}

// InFlight returns the number of outstanding lines.
func (m *MSHR) InFlight() int { return len(m.pending) }

// Capacity returns the table size.
func (m *MSHR) Capacity() int { return m.capacity }

// Stats returns allocation, merge and full-stall counters.
func (m *MSHR) Stats() (allocs, merges, fullStalls uint64) {
	return m.allocs, m.merges, m.full
}
