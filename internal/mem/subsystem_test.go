package mem

import (
	"testing"

	"warpedgates/internal/config"
)

func testCfg() config.Config {
	c := config.Small()
	return c
}

func TestSharedAccessLatency(t *testing.T) {
	cfg := testCfg()
	p := NewSMPort(cfg, NewGPUMem(cfg))
	if got := p.SharedAccess(100); got != 100+int64(cfg.SharedLatency) {
		t.Fatalf("shared completion = %d", got)
	}
}

func TestGlobalAccessL1HitLatency(t *testing.T) {
	cfg := testCfg()
	p := NewSMPort(cfg, NewGPUMem(cfg))
	lines := []Line{42}
	p.GlobalAccess(0, lines) // cold miss fills L1
	p.Expire(1 << 30)        // drain the MSHR
	res := p.GlobalAccess(1<<30, lines)
	if res.L1Misses != 0 {
		t.Fatalf("expected L1 hit, got %d misses", res.L1Misses)
	}
	if got := res.CompleteAt - (1 << 30); got != int64(cfg.L1HitLatency) {
		t.Fatalf("hit latency = %d, want %d", got, cfg.L1HitLatency)
	}
}

func TestGlobalAccessMissLatencyOrdering(t *testing.T) {
	cfg := testCfg()
	gpu := NewGPUMem(cfg)
	p := NewSMPort(cfg, gpu)
	// Cold miss goes L1 -> L2 miss -> DRAM.
	res := p.GlobalAccess(0, []Line{7})
	if res.L1Misses != 1 || res.L2Misses != 1 {
		t.Fatalf("cold access misses = %d/%d", res.L1Misses, res.L2Misses)
	}
	if res.CompleteAt < int64(cfg.DRAMLatency) {
		t.Fatalf("DRAM access completed too fast: %d", res.CompleteAt)
	}
	// A different SM missing the same line finds it in L2.
	p2 := NewSMPort(cfg, gpu)
	res2 := p2.GlobalAccess(0, []Line{7})
	if res2.L2Misses != 0 {
		t.Fatal("second SM should hit in shared L2")
	}
	if res2.CompleteAt != int64(cfg.L2HitLatency) {
		t.Fatalf("L2 hit completion = %d, want %d", res2.CompleteAt, cfg.L2HitLatency)
	}
}

func TestMSHRMergeSharesCompletion(t *testing.T) {
	cfg := testCfg()
	p := NewSMPort(cfg, NewGPUMem(cfg))
	first := p.GlobalAccess(0, []Line{9})
	// Second access to the same in-flight line merges and completes with
	// (not after) the primary.
	second := p.GlobalAccess(5, []Line{9})
	if second.CompleteAt > first.CompleteAt {
		t.Fatalf("merged access completes at %d, after primary %d", second.CompleteAt, first.CompleteAt)
	}
	_, merges, _ := p.MSHRStats()
	if merges != 1 {
		t.Fatalf("merges = %d, want 1", merges)
	}
}

func TestCanIssueGlobalRespectsMSHRCapacity(t *testing.T) {
	cfg := testCfg()
	cfg.MSHRPerSM = 2
	p := NewSMPort(cfg, NewGPUMem(cfg))
	if !p.CanIssueGlobal([]Line{1, 2}) {
		t.Fatal("2 lines should fit 2 MSHRs")
	}
	p.GlobalAccess(0, []Line{1, 2})
	if p.CanIssueGlobal([]Line{3}) {
		t.Fatal("full MSHR accepted a new line")
	}
	// Merging into pending lines needs no new entry.
	if !p.CanIssueGlobal([]Line{1, 2}) {
		t.Fatal("merge-only access rejected")
	}
	// After expiry, capacity returns.
	p.Expire(1 << 30)
	if !p.CanIssueGlobal([]Line{3}) {
		t.Fatal("MSHR capacity not reclaimed after expiry")
	}
}

func TestDRAMChannelQueueing(t *testing.T) {
	cfg := testCfg()
	cfg.DRAMSlots = 1 // single channel: all requests serialize
	gpu := NewGPUMem(cfg)
	c1, _ := gpu.AccessLine(0, 1000)
	c2, _ := gpu.AccessLine(0, 2000)
	if c2 <= c1 {
		t.Fatalf("queued request should finish later: %d vs %d", c2, c1)
	}
	_, _, dram, queue := gpu.Stats()
	if dram != 2 || queue == 0 {
		t.Fatalf("dram=%d queue=%d", dram, queue)
	}
}

func TestGPUMemL2Caches(t *testing.T) {
	cfg := testCfg()
	gpu := NewGPUMem(cfg)
	gpu.AccessLine(0, 5)
	done, miss := gpu.AccessLine(100, 5)
	if miss {
		t.Fatal("second access should hit L2")
	}
	if done != 100+int64(cfg.L2HitLatency) {
		t.Fatalf("L2 hit completion = %d", done)
	}
}

func TestNewSMPortRequiresGPU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil GPU accepted")
		}
	}()
	NewSMPort(testCfg(), nil)
}

func TestOccupancyTracksExpiry(t *testing.T) {
	cfg := testCfg()
	p := NewSMPort(cfg, NewGPUMem(cfg))
	p.GlobalAccess(0, []Line{1, 2, 3})
	if p.Occupancy() != 3 {
		t.Fatalf("occupancy = %d, want 3", p.Occupancy())
	}
	p.Expire(1 << 30)
	if p.Occupancy() != 0 {
		t.Fatalf("occupancy = %d after expiry", p.Occupancy())
	}
}

func TestCanIssueGlobalDeduplicatesLines(t *testing.T) {
	cfg := testCfg()
	cfg.MSHRPerSM = 2
	p := NewSMPort(cfg, NewGPUMem(cfg))
	// Three transactions over two distinct lines need two entries, not three:
	// the first occurrence of line 1 allocates and the repeat merges. The
	// coalescer emits exactly this shape when a strided pattern wraps a
	// working set smaller than its fan-out.
	if !p.CanIssueGlobal([]Line{1, 2, 1}) {
		t.Fatal("duplicate line charged a fresh MSHR entry")
	}
	res := p.GlobalAccess(0, []Line{1, 2, 1})
	if res.Transactions != 3 || res.L1Misses != 3 {
		t.Fatalf("duplicate access stats = %+v", res)
	}
	if p.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2 (one entry per distinct line)", p.Occupancy())
	}
	_, merges, _ := p.MSHRStats()
	if merges != 1 {
		t.Fatalf("merges = %d, want 1 (the repeated line)", merges)
	}
	// All distinct and the table full: admission must still reject.
	if p.CanIssueGlobal([]Line{3}) {
		t.Fatal("full MSHR accepted a new line")
	}
}

func TestStageResolveMatchesInlineAccess(t *testing.T) {
	cfg := testCfg()
	// Two ports against two identical devices: one issues inline, the other
	// stages everything and resolves at the end of the "cycle". Timing and
	// statistics must match exactly — this is the contract the parallel
	// engine's arbitration phase is built on.
	inline := NewSMPort(cfg, NewGPUMem(cfg))
	staged := NewSMPort(cfg, NewGPUMem(cfg))
	accesses := [][]Line{
		{7},          // cold DRAM miss
		{7},          // same-cycle merge with the staged entry
		{8, 9, 8},    // fan-out with a duplicate
		{1 << 41},    // different region
	}
	var want []Result
	for _, lines := range accesses {
		want = append(want, inline.GlobalAccess(0, lines))
	}
	for _, lines := range accesses {
		staged.StageGlobal(0, lines)
	}
	var got []Result
	staged.ResolveStaged(func(i int, res Result) {
		if i != len(got) {
			t.Fatalf("resolve order: got index %d, want %d", i, len(got))
		}
		got = append(got, res)
	})
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("access %d: inline %+v, staged %+v", i, want[i], got[i])
		}
	}
	ia, im, _ := inline.MSHRStats()
	sa, sm, _ := staged.MSHRStats()
	if ia != sa || im != sm {
		t.Fatalf("MSHR stats diverged: inline %d/%d staged %d/%d", ia, im, sa, sm)
	}
	if inline.Occupancy() != staged.Occupancy() {
		t.Fatalf("occupancy diverged: %d vs %d", inline.Occupancy(), staged.Occupancy())
	}
}

func TestGlobalAccessPanicsWithStagedBacklog(t *testing.T) {
	cfg := testCfg()
	p := NewSMPort(cfg, NewGPUMem(cfg))
	p.StageGlobal(0, []Line{4})
	defer func() {
		if recover() == nil {
			t.Fatal("GlobalAccess with a staged backlog did not panic")
		}
	}()
	p.GlobalAccess(0, []Line{5})
}
