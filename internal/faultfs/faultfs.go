// Package faultfs is a deterministic fault-injecting implementation of
// store.FS for crash-consistency and corruption testing. It wraps a real
// filesystem (usually store.OSFS over a test temp dir) and injects faults at
// exact, reproducible points:
//
//   - Fail: the Nth mutating operation returns an error without applying.
//   - Torn: the Nth mutating operation, if it is a WriteFile, persists only a
//     prefix of the data before erroring (a torn write); other ops fail clean.
//   - Crash: the Nth mutating operation and every operation after it fail —
//     the process-death model. Nothing after the crash point touches disk.
//   - ENOSPC: like Fail but with syscall.ENOSPC, exercising the permanent
//     (non-retried) error class.
//
// Mutating operations (MkdirAll, WriteFile, Rename, Remove) are numbered from
// 1 in call order; Steps() reports how many a scenario performed, so a sweep
// can first count a clean run's steps and then re-run it failing at every
// point — the fail-nth-write crash-consistency sweep of the report store.
//
// Reads have their own knobs: CorruptReadAt flips one byte of the Nth
// ReadFile's result (in flight — the disk stays intact), and TransientErrs
// makes the next N operations fail with a retryable error implementing
// store.Transient, exercising the bounded-backoff retry path.
package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"sync"
	"syscall"

	"warpedgates/internal/store"
)

// Mode selects what happens at the armed fault point.
type Mode int

// Fault modes.
const (
	Fail  Mode = iota // the armed op errors, nothing applied
	Torn              // WriteFile persists a prefix then errors; others as Fail
	Crash             // the armed op and all later ops error (process death)
	ENOSPC
)

// ErrInjected is the permanent injected failure. It does not implement
// store.Transient, so the store must not retry it.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after a Crash-mode fault fires.
var ErrCrashed = errors.New("faultfs: filesystem crashed")

// transientErr is the retryable injected failure.
type transientErr struct{}

func (transientErr) Error() string   { return "faultfs: injected transient fault" }
func (transientErr) Transient() bool { return true }

// ErrTransient is the error value TransientErrs faults return; it satisfies
// store.Transient, so the store's retry loop is expected to absorb it.
var ErrTransient error = transientErr{}

// FS wraps Inner with deterministic fault injection. Configure before
// handing it to the code under test; the knobs are not safe to flip while
// operations are in flight.
type FS struct {
	Inner store.FS

	mu      sync.Mutex
	step    int  // mutating ops seen so far
	reads   int  // ReadFile calls seen so far
	crashed bool

	failAt int // 1-based step to fault; 0 = disarmed
	mode   Mode

	corruptReadAt int // 1-based ReadFile call to corrupt; 0 = disarmed
	transientErrs int // fail this many upcoming ops (reads and writes) transiently
}

// New wraps inner with no faults armed.
func New(inner store.FS) *FS { return &FS{Inner: inner} }

// FailAt arms a fault at the nth mutating operation (1-based).
func (f *FS) FailAt(n int, mode Mode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt, f.mode = n, mode
}

// CorruptReadAt arms a one-byte in-flight corruption of the nth ReadFile.
func (f *FS) CorruptReadAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corruptReadAt = n
}

// TransientErrs makes the next n operations fail with ErrTransient.
func (f *FS) TransientErrs(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.transientErrs = n
}

// Steps returns how many mutating operations have been issued so far.
func (f *FS) Steps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.step
}

// Crashed reports whether a Crash-mode fault has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// injectedErr maps the armed mode to its error value.
func (f *FS) injectedErr() error {
	if f.mode == ENOSPC {
		return &os.PathError{Op: "write", Path: "faultfs", Err: syscall.ENOSPC}
	}
	return ErrInjected
}

// beforeMutation advances the step counter and decides this op's fate:
// fire != nil means the op must fail with that error; torn additionally asks
// WriteFile to persist a prefix first.
func (f *FS) beforeMutation() (fire error, torn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed, false
	}
	if f.transientErrs > 0 {
		f.transientErrs--
		return ErrTransient, false
	}
	f.step++
	if f.failAt != 0 && f.step == f.failAt {
		if f.mode == Crash {
			f.crashed = true
			return ErrCrashed, false
		}
		return f.injectedErr(), f.mode == Torn
	}
	return nil, false
}

// MkdirAll implements store.FS.
func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if err, _ := f.beforeMutation(); err != nil {
		return err
	}
	return f.Inner.MkdirAll(path, perm)
}

// WriteFile implements store.FS. A Torn fault persists the first half of the
// data, modeling a write cut mid-flight by power loss.
func (f *FS) WriteFile(path string, data []byte, perm os.FileMode) error {
	err, torn := f.beforeMutation()
	if err != nil {
		if torn {
			f.Inner.WriteFile(path, data[:len(data)/2], perm)
		}
		return err
	}
	return f.Inner.WriteFile(path, data, perm)
}

// Rename implements store.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if err, _ := f.beforeMutation(); err != nil {
		return err
	}
	return f.Inner.Rename(oldpath, newpath)
}

// Remove implements store.FS.
func (f *FS) Remove(path string) error {
	if err, _ := f.beforeMutation(); err != nil {
		return err
	}
	return f.Inner.Remove(path)
}

// readFault decides a read's fate: an error, or in-flight corruption.
func (f *FS) readFault() (fire error, corrupt bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed, false
	}
	if f.transientErrs > 0 {
		f.transientErrs--
		return ErrTransient, false
	}
	f.reads++
	return nil, f.corruptReadAt != 0 && f.reads == f.corruptReadAt
}

// ReadFile implements store.FS.
func (f *FS) ReadFile(path string) ([]byte, error) {
	err, corrupt := f.readFault()
	if err != nil {
		return nil, err
	}
	data, err := f.Inner.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if corrupt && len(data) > 0 {
		data[len(data)/2] ^= 0x40
	}
	return data, nil
}

// ReadDir implements store.FS.
func (f *FS) ReadDir(path string) ([]fs.DirEntry, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.Inner.ReadDir(path)
}

// Stat implements store.FS.
func (f *FS) Stat(path string) (fs.FileInfo, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.Inner.Stat(path)
}
