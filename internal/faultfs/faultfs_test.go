package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"warpedgates/internal/store"
)

func newT(t *testing.T) (*FS, string) {
	t.Helper()
	return New(store.OSFS{}), t.TempDir()
}

// TestStepCountingAndFailAt pins the determinism contract: mutating ops are
// numbered from 1 in call order, exactly the armed op fails, and everything
// before and after it applies normally.
func TestStepCountingAndFailAt(t *testing.T) {
	f, dir := newT(t)
	f.FailAt(2, Fail)
	if err := f.MkdirAll(filepath.Join(dir, "a"), 0o755); err != nil { // op 1
		t.Fatalf("op 1 failed: %v", err)
	}
	err := f.WriteFile(filepath.Join(dir, "a", "x"), []byte("x"), 0o644) // op 2
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2 = %v, want ErrInjected", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "a", "x")); !os.IsNotExist(statErr) {
		t.Fatal("Fail-mode op applied its write")
	}
	if err := f.WriteFile(filepath.Join(dir, "a", "y"), []byte("y"), 0o644); err != nil { // op 3
		t.Fatalf("op 3 failed: %v", err)
	}
	if got := f.Steps(); got != 3 {
		t.Fatalf("Steps() = %d, want 3", got)
	}
}

// TestTornWritePersistsPrefix: a Torn fault leaves exactly the first half of
// the data on disk — the shape a power cut mid-write produces.
func TestTornWritePersistsPrefix(t *testing.T) {
	f, dir := newT(t)
	f.FailAt(1, Torn)
	data := []byte("0123456789")
	path := filepath.Join(dir, "torn")
	if err := f.WriteFile(path, data, 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = %v, want ErrInjected", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("torn write left nothing on disk: %v", err)
	}
	if !bytes.Equal(got, data[:5]) {
		t.Fatalf("torn write persisted %q, want the %q prefix", got, data[:5])
	}
}

// TestCrashModeIsTerminal: from the crash point on, every operation — reads
// included — fails, and Crashed() reports it.
func TestCrashModeIsTerminal(t *testing.T) {
	f, dir := newT(t)
	path := filepath.Join(dir, "pre")
	if err := f.WriteFile(path, []byte("pre"), 0o644); err != nil { // op 1
		t.Fatal(err)
	}
	f.FailAt(2, Crash)
	if err := f.Remove(path); !errors.Is(err, ErrCrashed) { // op 2: the crash
		t.Fatalf("crash op = %v, want ErrCrashed", err)
	}
	if !f.Crashed() {
		t.Fatal("Crashed() = false after the crash fired")
	}
	if err := f.MkdirAll(filepath.Join(dir, "later"), 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash mutation = %v, want ErrCrashed", err)
	}
	if _, err := f.ReadFile(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read = %v, want ErrCrashed", err)
	}
	if _, err := f.ReadDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash ReadDir = %v, want ErrCrashed", err)
	}
	if _, err := f.Stat(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Stat = %v, want ErrCrashed", err)
	}
	// The pre-crash write survives on the real disk (for the reopen phase of
	// crash-consistency tests, which uses a fresh clean filesystem).
	if got, err := os.ReadFile(path); err != nil || string(got) != "pre" {
		t.Fatalf("pre-crash data damaged: %q, %v", got, err)
	}
}

// TestENOSPCMode returns a real ENOSPC errno so errors.Is classification in
// the store treats it exactly like a genuinely full disk.
func TestENOSPCMode(t *testing.T) {
	f, dir := newT(t)
	f.FailAt(1, ENOSPC)
	err := f.WriteFile(filepath.Join(dir, "x"), []byte("x"), 0o644)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC mode = %v, want syscall.ENOSPC", err)
	}
}

// TestCorruptReadAtFlipsInFlightOnly: the armed read returns flipped bytes
// while the file on disk stays intact, and other reads are untouched.
func TestCorruptReadAtFlipsInFlightOnly(t *testing.T) {
	f, dir := newT(t)
	path := filepath.Join(dir, "data")
	data := bytes.Repeat([]byte("d"), 32)
	if err := f.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f.CorruptReadAt(2)
	r1, err := f.ReadFile(path)
	if err != nil || !bytes.Equal(r1, data) {
		t.Fatalf("read 1 = %q, %v; want clean bytes", r1, err)
	}
	r2, err := f.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for i := range data {
		if r2[i] != data[i] {
			flipped++
		}
	}
	if flipped != 1 || r2[len(data)/2] != data[len(data)/2]^0x40 {
		t.Fatalf("read 2 corruption is not the single armed byte flip (%d bytes differ): %q", flipped, r2)
	}
	r3, err := f.ReadFile(path)
	if err != nil || !bytes.Equal(r3, data) {
		t.Fatalf("read 3 = %q, %v; want clean bytes again", r3, err)
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, data) {
		t.Fatal("CorruptReadAt damaged the disk; it must corrupt in flight only")
	}
}

// TestTransientErrsDoNotAdvanceSteps: transient faults are absorbed before
// step accounting, so arming them does not shift a FailAt schedule — the two
// knobs compose deterministically.
func TestTransientErrsDoNotAdvanceSteps(t *testing.T) {
	f, dir := newT(t)
	f.TransientErrs(2)
	path := filepath.Join(dir, "x")
	for i := 0; i < 2; i++ {
		err := f.WriteFile(path, []byte("x"), 0o644)
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("transient op %d = %v, want ErrTransient", i+1, err)
		}
	}
	if err := f.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatalf("op after transients: %v", err)
	}
	if got := f.Steps(); got != 1 {
		t.Fatalf("Steps() = %d after 2 transients + 1 real op, want 1", got)
	}
	var tr store.Transient
	if !errors.As(ErrTransient, &tr) || !tr.Transient() {
		t.Fatal("ErrTransient does not satisfy store.Transient")
	}
}
