package sim

import (
	"bytes"
	"testing"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
)

// sampleCorpusCfg is the validated sampling operating point: 1000-cycle
// detailed windows every 5000 cycles (20% detail) with the sampler's 3-period
// warm-up, on scale-2.0 workloads whose runs are long enough (>= 60k device
// cycles) for the warm-up and the paced splices to amortize. This is the
// configuration EXPERIMENTS.md documents; the error ceiling asserted below
// holds here, not at arbitrary (detail, period, scale) choices — short runs
// lean on cold-cache windows and degrade (see the sampler package comment).
func sampleCorpusCfg(sched config.SchedulerKind, gate config.GatingKind, adaptive bool) config.Config {
	cfg := config.Small()
	cfg.NumSMs = 4
	cfg.Scheduler = sched
	cfg.Gating = gate
	cfg.AdaptiveIdleDetect = adaptive
	cfg.IntraRunWorkers = 1
	return cfg
}

var sampleCorpusCombos = []struct {
	sched config.SchedulerKind
	gate  config.GatingKind
}{
	{config.SchedLRR, config.GateNone},
	{config.SchedTwoLevel, config.GateConventional},
	{config.SchedGATES, config.GateCoordBlackout},
}

// TestSampledModeCorpusErrorBound runs the golden corpus (benchmark ×
// scheduler/gating combos) at scale 2.0 both detailed and sampled at the
// validated operating point, and asserts for every cell:
//
//   - |sampled - detailed| cycle error <= 5% (measured worst 2.5%; the
//     ceiling leaves 2x headroom and is what EXPERIMENTS.md documents),
//   - IssuedTotal and CTAsCompleted match the detailed run exactly (the
//     sampler conserves both by construction),
//   - the run actually sampled (Sampled set, CTAs spliced) — a sampler that
//     silently degrades to a full detailed run would pass any error bound.
//
// It also records the corpus-wide wall-clock speedup; the hard >= 3x
// assertion lives in the sweep engine's speedup test where the comparison is
// made per sweep, but a sampled corpus slower than ~2x detailed here means
// the splice pacing regressed, so a soft floor is asserted too.
func TestSampledModeCorpusErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus detailed references are slow; skipped with -short")
	}
	var worst float64
	var detWall, smpWall time.Duration
	for _, bench := range []string{"nw", "hotspot", "mri", "bfs", "kmeans"} {
		for ci, cb := range sampleCorpusCombos {
			k := kernels.MustBenchmark(bench).Scale(2.0)
			cfg := sampleCorpusCfg(cb.sched, cb.gate, ci == 2)
			t0 := time.Now()
			det, _, _ := runDigests(t, cfg, k)
			detWall += time.Since(t0)

			scfg := cfg
			scfg.SampleDetailCycles = 1000
			scfg.SamplePeriod = 5000
			t0 = time.Now()
			smp, _, _ := runDigests(t, scfg, k)
			smpWall += time.Since(t0)

			if det.RanOut || smp.RanOut {
				t.Fatalf("%s combo %d ran out", bench, ci)
			}
			if !smp.Sampled {
				t.Errorf("%s combo %d: sampled run did not set Report.Sampled", bench, ci)
			}
			if smp.SampledSkippedCTAs == 0 {
				t.Errorf("%s combo %d: sampled run spliced no CTAs — degenerated to a detailed run", bench, ci)
			}
			if smp.IssuedTotal != det.IssuedTotal {
				t.Errorf("%s combo %d: IssuedTotal not conserved: sampled %d detailed %d",
					bench, ci, smp.IssuedTotal, det.IssuedTotal)
			}
			if smp.CTAsCompleted != det.CTAsCompleted {
				t.Errorf("%s combo %d: CTAsCompleted not conserved: sampled %d detailed %d",
					bench, ci, smp.CTAsCompleted, det.CTAsCompleted)
			}
			diff := float64(smp.Cycles-det.Cycles) / float64(det.Cycles)
			if diff < 0 {
				diff = -diff
			}
			if diff > worst {
				worst = diff
			}
			t.Logf("%-8s sched=%d gate=%d: detailed=%8d sampled=%8d err=%+.2f%% est=%.2f%% skippedCTAs=%d",
				bench, cb.sched, cb.gate, det.Cycles, smp.Cycles,
				float64(smp.Cycles-det.Cycles)/float64(det.Cycles)*100,
				smp.SampleErrorEst*100, smp.SampledSkippedCTAs)
		}
	}
	t.Logf("worst |dCycles|/Cycles = %.2f%%, wall detailed=%v sampled=%v (%.2fx)",
		worst*100, detWall.Round(time.Millisecond), smpWall.Round(time.Millisecond),
		float64(detWall)/float64(smpWall))
	if worst > 0.05 {
		t.Errorf("sampled-mode corpus error %.2f%% exceeds the 5%% bound", worst*100)
	}
	if detWall < 2*smpWall {
		t.Errorf("sampled corpus only %.2fx faster than detailed — splice pacing regressed",
			float64(detWall)/float64(smpWall))
	}
}

// TestSampledRunDeterministic pins that a sampled run is a pure function of
// its configuration: two runs of the same cell produce byte-identical encoded
// reports (the sampler's splice decisions depend only on the deterministic
// serial engine's counters).
func TestSampledRunDeterministic(t *testing.T) {
	k := kernels.MustBenchmark("bfs").Scale(2.0)
	cfg := sampleCorpusCfg(config.SchedGATES, config.GateCoordBlackout, true)
	cfg.SampleDetailCycles = 1000
	cfg.SamplePeriod = 5000
	var blobs [2][]byte
	for i := range blobs {
		rep, _, _ := runDigests(t, cfg, k)
		b, err := EncodeReport(rep)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		blobs[i] = b
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatalf("sampled runs differ between invocations:\n%s\n----\n%s", blobs[0], blobs[1])
	}
}

// TestSampledReportRoundTrip pins that the sampling metadata survives the
// store codec (the fields are additive on the v1 envelope; a full run's
// all-zero sampling block is what old blobs decode to).
func TestSampledReportRoundTrip(t *testing.T) {
	k := kernels.MustBenchmark("kmeans").Scale(2.0)
	cfg := sampleCorpusCfg(config.SchedLRR, config.GateNone, false)
	cfg.SampleDetailCycles = 1000
	cfg.SamplePeriod = 5000
	rep, _, _ := runDigests(t, cfg, k)
	if !rep.Sampled || rep.SampledSkippedCTAs == 0 {
		t.Fatalf("run did not sample: %+v", rep)
	}
	b, err := EncodeReport(rep)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeReport(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Sampled != rep.Sampled ||
		got.SampledDetailCycles != rep.SampledDetailCycles ||
		got.SampledSkippedInstrs != rep.SampledSkippedInstrs ||
		got.SampledSkippedCTAs != rep.SampledSkippedCTAs ||
		got.SampleErrorEst != rep.SampleErrorEst {
		t.Fatalf("sampling metadata lost in round trip:\ngot  %+v\nwant %+v", got, rep)
	}
}
