package sim

import (
	"testing"

	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
)

// tinyKernel builds a two-instruction kernel: a load feeding an add.
func tinyKernel() *kernels.Kernel {
	return &kernels.Kernel{
		Name: "tiny",
		Body: []isa.Instr{
			{Op: isa.OpLDG, Dst: 10, NSrc: 1, Srcs: [3]isa.Reg{0, isa.NoReg, isa.NoReg},
				Space: isa.SpaceGlobal, Pattern: isa.PatternCoalesced},
			{Op: isa.OpIADD, Dst: 11, NSrc: 2, Srcs: [3]isa.Reg{10, 1, isa.NoReg}},
		},
		Iterations: 2, WarpsPerCTA: 1, MaxConcurrentCTAs: 1, CTAsPerSM: 1,
		WorkingSetLines: 16, NumRegions: 1,
	}
}

func TestWarpResetState(t *testing.T) {
	w := &Warp{id: 0, state: WarpIdleSlot}
	w.reset(tinyKernel(), 0, 7, 1234)
	if w.state != WarpActive || w.pc != 0 || w.iter != 0 || w.pending != 0 {
		t.Fatalf("reset state wrong: %+v", w)
	}
	gen := w.gen
	w.reset(tinyKernel(), 0, 8, 99)
	if w.gen != gen+1 {
		t.Fatal("generation not bumped on reset")
	}
}

func TestWarpReadyAndBlocking(t *testing.T) {
	w := &Warp{id: 0, state: WarpIdleSlot}
	w.reset(tinyKernel(), 0, 0, 1)
	if !w.ready() {
		t.Fatal("fresh warp should be ready")
	}
	// Issue the load: r10 becomes pending with an LDST producer.
	in := w.current()
	if w.advance(in) {
		t.Fatal("warp finished prematurely")
	}
	if w.pending != 1<<10 {
		t.Fatalf("pending = %b", w.pending)
	}
	// Next instruction reads r10: blocked on memory.
	if w.ready() {
		t.Fatal("consumer should be blocked")
	}
	if !w.blockedOnMemory() {
		t.Fatal("block should be attributed to memory")
	}
	w.refreshState()
	if w.state != WarpPendingMem {
		t.Fatalf("state = %s, want pending", w.state)
	}
	// Writeback unblocks and returns the warp to the active set.
	w.clearPending(1 << 10)
	if w.state != WarpActive || !w.ready() {
		t.Fatalf("state after writeback = %s ready=%v", w.state, w.ready())
	}
}

func TestWarpALUBlockStaysActive(t *testing.T) {
	k := &kernels.Kernel{
		Name: "chain",
		Body: []isa.Instr{
			{Op: isa.OpIADD, Dst: 12, NSrc: 2, Srcs: [3]isa.Reg{0, 1, isa.NoReg}},
			{Op: isa.OpIADD, Dst: 13, NSrc: 2, Srcs: [3]isa.Reg{12, 1, isa.NoReg}},
		},
		Iterations: 1, WarpsPerCTA: 1, MaxConcurrentCTAs: 1, CTAsPerSM: 1,
		WorkingSetLines: 1, NumRegions: 1,
	}
	w := &Warp{id: 0, state: WarpIdleSlot}
	w.reset(k, 0, 0, 1)
	w.advance(w.current())
	if w.ready() {
		t.Fatal("dependent add should not be ready")
	}
	w.refreshState()
	if w.state != WarpActive {
		t.Fatalf("ALU-blocked warp left the active set: %s", w.state)
	}
}

func TestWarpWAWBlocks(t *testing.T) {
	k := &kernels.Kernel{
		Name: "waw",
		Body: []isa.Instr{
			{Op: isa.OpIADD, Dst: 12, NSrc: 2, Srcs: [3]isa.Reg{0, 1, isa.NoReg}},
			{Op: isa.OpIADD, Dst: 12, NSrc: 2, Srcs: [3]isa.Reg{0, 1, isa.NoReg}},
		},
		Iterations: 1, WarpsPerCTA: 1, MaxConcurrentCTAs: 1, CTAsPerSM: 1,
		WorkingSetLines: 1, NumRegions: 1,
	}
	w := &Warp{id: 0, state: WarpIdleSlot}
	w.reset(k, 0, 0, 1)
	w.advance(w.current())
	if w.ready() {
		t.Fatal("WAW hazard not detected by scoreboard")
	}
}

func TestWarpFinishes(t *testing.T) {
	w := &Warp{id: 0, state: WarpIdleSlot}
	w.reset(tinyKernel(), 0, 0, 1)
	total := tinyKernel().TotalWarpInstructions()
	issued := 0
	for w.state != WarpFinished {
		w.clearPending(^uint64(0)) // magic writeback to keep it ready
		in := w.current()
		if in == nil {
			t.Fatal("nil instruction on unfinished warp")
		}
		w.advance(in)
		issued++
		if issued > total {
			t.Fatalf("issued %d > expected %d", issued, total)
		}
	}
	if issued != total {
		t.Fatalf("issued %d, want %d", issued, total)
	}
	if w.current() != nil {
		t.Fatal("finished warp still has instructions")
	}
	if w.live() {
		t.Fatal("finished warp reports live")
	}
}

func TestWarpPerWarpSlice(t *testing.T) {
	k := kernels.Fig4Microkernel()
	w := &Warp{id: 3, state: WarpIdleSlot}
	w.reset(k, 0, 3, 1)
	if w.pc != 3 {
		t.Fatalf("per-warp-slice pc = %d, want 3", w.pc)
	}
	if w.advance(w.current()) != true {
		t.Fatal("microkernel warp should finish after one instruction")
	}
}
