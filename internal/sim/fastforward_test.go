package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"testing"
	"testing/quick"

	"warpedgates/internal/config"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
)

// reportFingerprint renders every figure-relevant counter of a report (the
// same field set the golden corpus fingerprints in internal/core, which this
// package cannot import) so fast-forwarded and stepped runs can be compared
// for observable identity.
func reportFingerprint(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d ranout=%t issued=%d", r.Cycles, r.RanOut, r.IssuedTotal)
	fmt.Fprintf(&b, " stalls=%d/%d ctas=%d warpmax=%d warpavg=%g l1=%g",
		r.IssueStallsMem, r.IssueStallsGate, r.CTAsCompleted, r.ActiveWarpMax,
		r.ActiveWarpAvg, r.L1MissRate)
	fmt.Fprintf(&b, " l2=%v", r.L2Stats)
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		d := &r.Domains[c]
		fmt.Fprintf(&b, " %v=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,h%d:%d:%d:%d",
			c, d.BusyCycles, d.IdleCycles, d.PoweredCycles, d.GatedCycles,
			d.UncompCycles, d.CompCycles, d.GatingEvents, d.Wakeups,
			d.NegativeEvents, d.CriticalWakeups, d.DeniedWakeups, d.IssuedInstrs,
			d.IdlePeriods.Total(), d.IdlePeriods.Sum(), d.IdlePeriods.Min(), d.IdlePeriods.Max())
	}
	return b.String()
}

// runHashed runs cfg over kernel k with a cycle probe installed, folding every
// per-cycle lane observation into one FNV stream per SM. Within an SM the
// probe fires in strict cycle order whether or not the run fast-forwards, so
// equal digests mean the gating-state timelines are identical cycle for cycle.
func runHashed(t *testing.T, cfg config.Config, k *kernels.Kernel) (*Report, []uint64) {
	t.Helper()
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	hashes := make([]interface {
		Write(p []byte) (int, error)
		Sum64() uint64
	}, cfg.NumSMs)
	for i := range hashes {
		hashes[i] = fnv.New64a()
	}
	var buf [8]byte
	gpu.SetCycleProbe(func(smID int, cycle int64, lanes []LaneState) {
		h := hashes[smID]
		binary.LittleEndian.PutUint64(buf[:], uint64(cycle))
		h.Write(buf[:])
		for _, l := range lanes {
			busy := byte(0)
			if l.Busy {
				busy = 1
			}
			h.Write([]byte{byte(l.Class), byte(l.Cluster), busy, byte(l.State)})
		}
	})
	rep := gpu.Run()
	digests := make([]uint64, len(hashes))
	for i, h := range hashes {
		digests[i] = h.Sum64()
	}
	return rep, digests
}

// TestFastForwardBitExact is the equivalence property test for the idle
// fast-forward: across randomized schedulers, gating policies, gating
// parameters and benchmarks, a fast-forwarded run must produce the same
// report and the same per-SM, per-cycle gating-state stream as a run that
// steps every cycle.
func TestFastForwardBitExact(t *testing.T) {
	benchNames := []string{"nw", "hotspot", "bfs", "mri", "btree"}
	f := func(benchRaw, schedRaw, gateRaw, idRaw, betRaw, wakeRaw, holdRaw uint8, adaptive bool) bool {
		cfg := config.Small()
		cfg.Scheduler = []config.SchedulerKind{
			config.SchedLRR, config.SchedTwoLevel, config.SchedGATES,
		}[int(schedRaw)%3]
		cfg.Gating = []config.GatingKind{
			config.GateNone, config.GateConventional,
			config.GateNaiveBlackout, config.GateCoordBlackout,
		}[int(gateRaw)%4]
		cfg.IdleDetect = int(idRaw % 12)
		cfg.BreakEven = 1 + int(betRaw%30)
		cfg.WakeupDelay = int(wakeRaw % 10)
		cfg.GATESMaxHold = int(holdRaw % 5)
		cfg.AdaptiveIdleDetect = adaptive
		cfg.MaxCycles = 30000

		bench := benchNames[int(benchRaw)%len(benchNames)]
		k := kernels.MustBenchmark(bench).Scale(0.08)

		ffCfg := cfg
		ffCfg.DisableFastForward = false
		stepCfg := cfg
		stepCfg.DisableFastForward = true

		ffRep, ffHash := runHashed(t, ffCfg, k)
		stRep, stHash := runHashed(t, stepCfg, k)
		// The config is part of the report; blank the knob under test before
		// comparing the rest.
		ffRep.Config.DisableFastForward = false
		stRep.Config.DisableFastForward = false
		if a, b := reportFingerprint(ffRep), reportFingerprint(stRep); a != b {
			t.Logf("%s %v/%v: report drift\n  ff:      %s\n  stepped: %s", bench, cfg.Scheduler, cfg.Gating, a, b)
			return false
		}
		for i := range ffHash {
			if ffHash[i] != stHash[i] {
				t.Logf("%s %v/%v: SM%d probe-stream drift", bench, cfg.Scheduler, cfg.Gating, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestFastForwardActuallySkips guards against the fast-forward silently
// becoming a no-op: a memory-heavy run on a gated machine must take far fewer
// step invocations than simulated cycles.
func TestFastForwardActuallySkips(t *testing.T) {
	cfg := config.Small()
	cfg.NumSMs = 1
	cfg.Scheduler = config.SchedGATES
	cfg.Gating = config.GateCoordBlackout
	cfg.AdaptiveIdleDetect = true
	cfg.MaxCycles = 200000
	k := kernels.MustBenchmark("bfs").Scale(0.1)
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	sm := gpu.SMs()[0]
	calls := 0
	var cyc int64
	for !sm.done() && cyc < int64(cfg.MaxCycles) {
		cyc = sm.step(cyc)
		calls++
	}
	if sm.Stats().Cycles != cyc {
		t.Fatalf("SM cycle accounting: %d counted, clock at %d", sm.Stats().Cycles, cyc)
	}
	if int64(calls) >= cyc {
		t.Fatalf("fast-forward never fired on a memory-bound run: %d step calls for %d cycles", calls, cyc)
	}
	t.Logf("cycles=%d step calls=%d (%.1f%% stepped)", cyc, calls, 100*float64(calls)/float64(cyc))
}

// TestScheduleRetirePanicsOutsideHorizon pins the retire ring's safety check:
// scheduling a writeback at or beyond the ring size (or in the past) must
// panic rather than alias another bucket.
func TestScheduleRetirePanicsOutsideHorizon(t *testing.T) {
	cfg := config.Small()
	cfg.NumSMs = 1
	k := kernels.MustBenchmark("nw").Scale(0.05)
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	sm := gpu.SMs()[0]
	for _, at := range []int64{0, -5, retireRingSize, retireRingSize + 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scheduleRetire(now=0, at=%d) did not panic", at)
				}
			}()
			sm.scheduleRetire(0, at, sm.warps[0], 1)
		}()
	}
}

// TestStepZeroAllocsSteadyState asserts the zero-allocation property of the
// hot loop: once the retire-event arena and the per-warp transaction buffers
// have grown to their working capacities, stepping allocates nothing. The
// check is a raw Mallocs delta over a long window rather than
// testing.AllocsPerRun, whose integer division would round a fractional
// allocs-per-cycle rate down to zero and hide a slow leak. Unrelated
// goroutines (the test framework, the runtime) can malloc concurrently, so
// a nonzero delta is retried a couple of times before failing.
func TestStepZeroAllocsSteadyState(t *testing.T) {
	cfg := config.GTX480()
	cfg.NumSMs = 1
	cfg.Scheduler = config.SchedGATES
	cfg.Gating = config.GateCoordBlackout
	cfg.AdaptiveIdleDetect = true
	cfg.MaxCycles = 1 << 30
	k := kernels.MustBenchmark("hotspot").Scale(100) // effectively endless
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	sm := gpu.SMs()[0]
	cyc := int64(0)
	for cyc < 10*retireRingSize { // let every arena hit its high-water mark
		cyc = sm.step(cyc)
	}
	const window = 100000
	var delta uint64
	for attempt := 0; attempt < 3; attempt++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		end := cyc + window
		for cyc < end {
			cyc = sm.step(cyc)
		}
		runtime.ReadMemStats(&m1)
		delta = m1.Mallocs - m0.Mallocs
		if delta == 0 {
			return
		}
	}
	t.Fatalf("steady-state step allocated %d objects over %d cycles, want 0", delta, window)
}
