package sim

import (
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
)

// runSmall produces a real report with non-trivial counters and histograms.
func runSmall(t *testing.T) *Report {
	t.Helper()
	gpu, err := NewGPU(config.Small(), kernels.MustBenchmark("hotspot").Scale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	return gpu.Run()
}

// TestReportCodecRoundtrip: every field the fingerprints and the power model
// read survives encode→decode, including the per-domain idle histograms.
func TestReportCodecRoundtrip(t *testing.T) {
	rep := runSmall(t)
	data, err := EncodeReport(rep)
	if err != nil {
		t.Fatalf("EncodeReport: %v", err)
	}
	got, err := DecodeReport(data)
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if got.Cycles != rep.Cycles || got.IssuedTotal != rep.IssuedTotal ||
		got.RanOut != rep.RanOut || got.ActiveWarpAvg != rep.ActiveWarpAvg ||
		got.L1MissRate != rep.L1MissRate {
		t.Fatalf("scalar fields drifted through the codec:\n got  %+v\n want %+v", got, rep)
	}
	for _, c := range []isa.Class{isa.INT, isa.FP, isa.SFU, isa.LDST} {
		d, w := got.Domains[c], rep.Domains[c]
		if d.IdleCycles != w.IdleCycles || d.GatingEvents != w.GatingEvents ||
			d.Wakeups != w.Wakeups || d.CriticalWakeups != w.CriticalWakeups {
			t.Fatalf("domain %s drifted: got %+v want %+v", c, d, w)
		}
		if d.IdlePeriods == nil {
			t.Fatalf("domain %s decoded with nil IdlePeriods", c)
		}
		if !d.IdlePeriods.Equal(w.IdlePeriods) {
			t.Fatalf("domain %s idle-period histogram drifted through the codec", c)
		}
	}
	// Determinism: encoding is byte-stable, the property the content-addressed
	// store relies on for its "cached equals fresh" guarantee.
	again, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("EncodeReport is not byte-deterministic for the same report")
	}
}

// TestReportCodecRejectsForeignVersion: a payload from a future (or corrupt)
// codec version must fail decode — the runner then treats it as a store miss
// rather than serving misinterpreted bytes.
func TestReportCodecRejectsForeignVersion(t *testing.T) {
	if _, err := DecodeReport([]byte(`{"version": 999, "report": {}}`)); err == nil {
		t.Fatal("foreign codec version accepted")
	}
	if _, err := DecodeReport([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeReport(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}
