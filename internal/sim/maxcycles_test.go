package sim

import (
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
)

// TestMaxCyclesNeverOvershot pins the report-level cap invariant on both
// engines: no run may report Cycles > MaxCycles, even when an idle
// fast-forward's next-wake target lies past the cap. The cap values are
// deliberately scattered so some land inside long idle stretches (where the
// closed-form advance would jump past them if unclamped).
func TestMaxCyclesNeverOvershot(t *testing.T) {
	for _, bench := range []string{"hotspot", "bfs", "mri", "nw", "kmeans"} {
		k := kernels.MustBenchmark(bench).Scale(0.1)
		for _, mc := range []int{50, 100, 500, 1000, 2000, 5000} {
			for _, workers := range []int{1, 2} {
				cfg := config.Small()
				cfg.Gating = config.GateCoordBlackout
				cfg.Scheduler = config.SchedGATES
				cfg.MaxCycles = mc
				cfg.IntraRunWorkers = workers
				gpu, err := NewGPU(cfg, k)
				if err != nil {
					t.Fatal(err)
				}
				r := gpu.Run()
				if r.Cycles > int64(mc) {
					t.Errorf("%s mc=%d workers=%d: Cycles=%d ranOut=%v overshoots the cap",
						bench, mc, workers, r.Cycles, r.RanOut)
				}
				if r.RanOut && r.Cycles != int64(mc) {
					t.Errorf("%s mc=%d workers=%d: ran out at %d, want the cap exactly",
						bench, mc, workers, r.Cycles)
				}
			}
		}
	}
}

// TestMaxCyclesClampsFastForwardJump forces the scenario the clamp exists
// for: a device that goes fully idle with retirements scheduled past the cap,
// so every SM's next-wake exceeds MaxCycles. The run must report exactly the
// cap. A long-latency memory stall right before a small cap produces the
// shape deterministically: bfs at small scale stalls all warps on DRAM within
// the first tens of cycles, and the fill cycle (DRAM latency plus queueing)
// lies far beyond caps placed inside the stall window.
func TestMaxCyclesClampsFastForwardJump(t *testing.T) {
	k := kernels.MustBenchmark("bfs").Scale(0.05)
	cfg := config.Small()
	cfg.DRAMLatency = 4000 // every miss's wake target dwarfs the caps below
	for _, mc := range []int{40, 60, 90, 130} {
		for _, workers := range []int{1, 2} {
			c := cfg
			c.MaxCycles = mc
			c.IntraRunWorkers = workers
			gpu, err := NewGPU(c, k)
			if err != nil {
				t.Fatal(err)
			}
			r := gpu.Run()
			if !r.RanOut {
				t.Fatalf("mc=%d workers=%d: expected the cap to hit (cycles=%d)", mc, workers, r.Cycles)
			}
			if r.Cycles != int64(mc) {
				t.Errorf("mc=%d workers=%d: Cycles=%d, want exactly the cap", mc, workers, r.Cycles)
			}
		}
	}
}
