package sim

import (
	"context"
	"fmt"

	"warpedgates/internal/config"
	"warpedgates/internal/gating"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/mem"
	"warpedgates/internal/stats"
)

// GPU is the whole simulated device: the SM array plus the shared memory
// system, stepped in lockstep.
type GPU struct {
	cfg    config.Config
	kernel *kernels.Kernel
	sms    []*SM
	gmem   *mem.GPUMem
	pool   WorkerPool // optional lender of extra intra-run workers
	cycle  int64
	ranOut bool // MaxCycles hit before the workload drained
}

// NewGPU builds a device running kernel k under cfg. It validates both.
func NewGPU(cfg config.Config, k *kernels.Kernel) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	g := &GPU{cfg: cfg, kernel: k, gmem: mem.NewGPUMem(cfg)}
	benchSeed := stats.CombineSeeds(stats.HashString(k.Name), cfg.Seed)
	for i := 0; i < cfg.NumSMs; i++ {
		g.sms = append(g.sms, newSM(i, cfg, k, g.gmem, benchSeed))
	}
	return g, nil
}

// Run executes the workload to completion (or cfg.MaxCycles) and returns the
// final report. It is RunCtx under a background context, which can never be
// canceled, so the error return is vacuous and elided.
func (g *GPU) Run() *Report {
	rep, _ := g.RunCtx(context.Background())
	return rep
}

// canceled wraps the context's cause into the error a canceled run returns.
// context.Cause surfaces the watchdog's typed deadline error when the
// experiment runner armed one (context.WithTimeoutCause), and the plain
// context.Canceled/DeadlineExceeded otherwise, so errors.Is works against
// whichever sentinel the caller planted.
func (g *GPU) canceled(ctx context.Context) error {
	return fmt.Errorf("sim: %s canceled at cycle %d: %w", g.kernel.Name, g.cycle, context.Cause(ctx))
}

// RunCtx executes the workload to completion (or cfg.MaxCycles) and returns
// the final report. With cfg.IntraRunWorkers > 1 the phase-split parallel
// engine (runParallel) steps the SM array on several goroutines; in exact
// mode its results are bit-identical to the serial loop below. Relaxed mode
// (cfg.EpochRelaxedCycles > 0) always uses the windowed engine — even with
// one worker — because its windows, not the worker count, define the result:
// any worker count then reproduces the same relaxed run byte for byte.
//
// Cancellation is polled at epoch boundaries: once per device step in the
// serial loop and once per barrier round in the parallel engine, so a
// canceled context stops the simulation within one batch window. A canceled
// run returns a nil report and an error wrapping context.Cause(ctx); the
// device's partial state is not meaningful and no report is assembled.
func (g *GPU) RunCtx(ctx context.Context) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, g.canceled(ctx)
	}
	// Sampled runs always use the serial engine: the worker count is not part
	// of the runner's cache key, so a sampled result must not depend on it,
	// and the splice points need the single globally ordered clock.
	smp := newSampler(g)
	if w := g.workerCount(); smp == nil && (w > 1 || g.cfg.EpochRelaxedCycles > 0 || g.pool != nil) {
		return g.runParallel(ctx, w)
	}
	// Completion is event-driven rather than scanned: an SM flips its drained
	// flag at the transition point (last warp of its last CTA finishing, in
	// commitIssue), and Run only maintains the count of SMs still holding
	// work. The clock advances to the minimum wake-up cycle the live SMs
	// report, so when every live SM has fast-forwarded across an idle
	// stretch, the whole device jumps in one step; SMs whose target lies
	// further out return it again unchanged until the clock catches up.
	live := 0
	for _, sm := range g.sms {
		if sm.done() {
			sm.drained = true
		} else {
			live++
		}
	}
	maxCycles := int64(g.cfg.MaxCycles)
	// done is nil for an uncancellable context (Run's Background), making the
	// poll below free on the hot path that cannot observe it anyway.
	done := ctx.Done()
	for live > 0 {
		if done != nil {
			select {
			case <-done:
				return nil, g.canceled(ctx)
			default:
			}
		}
		if maxCycles > 0 && g.cycle >= maxCycles {
			g.ranOut = true
			break
		}
		next := int64(-1)
		for _, sm := range g.sms {
			if sm.drained {
				continue
			}
			wake := sm.step(g.cycle)
			if sm.drained {
				live--
				continue
			}
			if next < 0 || wake < next {
				next = wake
			}
		}
		if next < 0 {
			// The last live SM drained this cycle; account the cycle as the
			// scan-based loop did before breaking out.
			g.cycle++
		} else {
			g.cycle = next
		}
		// Clamp the jump: an idle fast-forward target past the cap must not
		// leave a RanOut report claiming more cycles than MaxCycles allows
		// (sm.step clamps its own targets, but the cap is a report-level
		// invariant, so it is enforced where the clock is written).
		if maxCycles > 0 && g.cycle > maxCycles {
			g.cycle = maxCycles
		}
		if smp != nil && g.cycle >= smp.next {
			smp.boundary()
		}
	}
	for _, sm := range g.sms {
		sm.finish()
	}
	rep := g.report()
	if smp != nil {
		smp.apply(rep)
	}
	return rep, nil
}

// workerCount clamps the configured intra-run worker count to the SM array:
// shards are per-SM, so goroutines beyond NumSMs could only idle.
func (g *GPU) workerCount() int {
	return g.cfg.EffectiveIntraRunWorkers()
}

// WorkerPool lends additional intra-run workers to a running simulation. The
// parallel engine polls TryAcquire each time its coordinator opens a compute
// window and grows its worker population by whatever was granted (capped at
// NumSMs), returning every lease with Release when the run exits. Worker
// count never affects results, so a pool cannot either — it only moves idle
// cores into still-running simulations. Implementations must be safe for
// concurrent use by many runs.
type WorkerPool interface {
	// TryAcquire takes up to max leases without blocking and returns how many
	// were granted (possibly zero).
	TryAcquire(max int) int
	// Release hands n leases back.
	Release(n int)
}

// SetWorkerPool installs a lender of extra intra-run workers. A GPU with a
// pool always runs on the parallel engine (even at one configured worker) so
// leases granted mid-run can be absorbed at the next epoch boundary; sampled
// runs are the exception — they stay on the serial engine and ignore the
// pool, because their splice points need the single globally ordered clock.
func (g *GPU) SetWorkerPool(p WorkerPool) { g.pool = p }

// Cycle returns the current simulated cycle.
func (g *GPU) Cycle() int64 { return g.cycle }

// IssueTracer observes every successful instruction issue; see SetIssueTracer.
type IssueTracer func(smID int, cycle int64, warpIdx int, class isa.Class, cluster int)

// IssueEvent is one recorded instruction issue, for trace consumers.
type IssueEvent struct {
	Cycle   int64
	Warp    int
	Class   isa.Class
	Cluster int
}

// SetIssueTracer installs a callback invoked on every issue. It exists for
// fine-grained experiments (the paper's Figure 4 schedule walkthrough) and
// for tests; production runs leave it nil.
func (g *GPU) SetIssueTracer(f IssueTracer) {
	for _, sm := range g.sms {
		sm.tracer = f
	}
}

// LaneState is one gating domain's observable state during one cycle.
type LaneState struct {
	Class   isa.Class
	Cluster int
	Busy    bool
	State   gating.State
}

// CycleProbe observes every gating domain of an SM once per cycle, after the
// gating controllers tick; see SetCycleProbe.
type CycleProbe func(smID int, cycle int64, lanes []LaneState)

// SetCycleProbe installs a per-cycle state probe on every SM. The lanes
// slice is reused across calls; consumers must copy what they keep.
func (g *GPU) SetCycleProbe(f CycleProbe) {
	for _, sm := range g.sms {
		sm.probe = f
	}
}

// SMs exposes the SM array for white-box tests.
func (g *GPU) SMs() []*SM { return g.sms }

// DomainStats aggregates one gating-domain class (e.g. all INT pipes of all
// SMs) over the whole device.
type DomainStats struct {
	Class    isa.Class
	Clusters int // gating domains aggregated (pipes × SMs)

	BusyCycles      uint64
	IdleCycles      uint64
	PoweredCycles   uint64
	GatedCycles     uint64
	UncompCycles    uint64
	CompCycles      uint64
	GatingEvents    uint64
	Wakeups         uint64
	NegativeEvents  uint64
	CriticalWakeups uint64
	DeniedWakeups   uint64
	IssuedInstrs    uint64

	IdlePeriods *stats.Histogram
}

// CellCycles returns the total domain-cycles observed (cycles × clusters).
func (d *DomainStats) CellCycles() uint64 {
	return d.BusyCycles + d.IdleCycles
}

// IdleFraction returns idle cycles over total domain-cycles (Fig. 8a).
func (d *DomainStats) IdleFraction() float64 {
	return stats.Ratio(float64(d.IdleCycles), float64(d.CellCycles()))
}

// CompensatedFraction returns compensated-state cycles over total
// domain-cycles (Fig. 8b, positive part).
func (d *DomainStats) CompensatedFraction() float64 {
	return stats.Ratio(float64(d.CompCycles), float64(d.CellCycles()))
}

// UncompensatedFraction returns uncompensated-state cycles over total
// domain-cycles (Fig. 8b, negative part).
func (d *DomainStats) UncompensatedFraction() float64 {
	return stats.Ratio(float64(d.UncompCycles), float64(d.CellCycles()))
}

// Report is the complete outcome of one simulation.
type Report struct {
	Benchmark string
	Config    config.Config
	Cycles    int64
	RanOut    bool

	Domains [isa.NumClasses]DomainStats

	IssuedByClass [isa.NumClasses]uint64
	IssuedTotal   uint64

	ActiveWarpAvg float64
	ActiveWarpMax int

	IssueStallsMem  uint64
	IssueStallsGate uint64
	CTAsCompleted   int

	L1MissRate float64
	L2Stats    [4]uint64 // accesses, misses, dram requests, queue delay

	// Interval-sampling metadata (see internal/sim/sampling.go). Sampled is
	// set when the run used interval sampling; the counters above then mix
	// detailed measurement with closed-form estimate. SampledDetailCycles is
	// the device cycles actually simulated (Cycles minus the estimate),
	// SampledSkippedInstrs/CTAs the work spliced out, and SampleErrorEst a
	// heuristic relative error estimate for Cycles (window-rate dispersion
	// scaled by the estimated fraction). All zero for full runs, so reports
	// decoded from stores written before sampling existed read as unsampled.
	Sampled              bool
	SampledDetailCycles  int64
	SampledSkippedInstrs uint64
	SampledSkippedCTAs   int
	SampleErrorEst       float64
}

// report assembles the final Report from per-SM state.
func (g *GPU) report() *Report {
	r := &Report{
		Benchmark: g.kernel.Name,
		Config:    g.cfg,
		Cycles:    g.cycle,
		RanOut:    g.ranOut,
	}
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		r.Domains[c] = DomainStats{Class: c, IdlePeriods: stats.NewHistogram()}
	}
	var l1Acc, l1Miss uint64
	var warpSum uint64
	var cyclesSum int64
	for _, sm := range g.sms {
		st := sm.Stats()
		cyclesSum += st.Cycles
		warpSum += st.ActiveWarpSum
		if st.ActiveWarpMax > r.ActiveWarpMax {
			r.ActiveWarpMax = st.ActiveWarpMax
		}
		r.IssueStallsMem += st.IssueStallsMem
		r.IssueStallsGate += st.IssueStallsGate
		r.CTAsCompleted += st.CTAsCompleted
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			r.IssuedByClass[c] += st.IssuedByClass[c]
		}
		r.IssuedTotal += st.IssuedTotal
		for _, p := range sm.allPipes() {
			d := &r.Domains[p.Class()]
			d.Clusters++
			gs := p.Gate().Stats()
			d.BusyCycles += gs.BusyCycles
			d.IdleCycles += gs.IdleCycles
			d.PoweredCycles += gs.PoweredCycles
			d.GatedCycles += gs.GatedCycles
			d.UncompCycles += gs.UncompCycles
			d.CompCycles += gs.CompCycles
			d.GatingEvents += gs.GatingEvents
			d.Wakeups += gs.Wakeups
			d.NegativeEvents += gs.NegativeEvents
			d.CriticalWakeups += gs.CriticalWakeups
			d.DeniedWakeups += gs.DeniedWakeups
			d.IssuedInstrs += p.Issued()
			d.IdlePeriods.Merge(gs.IdlePeriods)
		}
		a, m := sm.memPort.L1().Stats()
		l1Acc += a
		l1Miss += m
	}
	if cyclesSum > 0 {
		r.ActiveWarpAvg = float64(warpSum) / float64(cyclesSum)
	}
	if l1Acc > 0 {
		r.L1MissRate = float64(l1Miss) / float64(l1Acc)
	}
	a, m, d, q := g.gmem.Stats()
	r.L2Stats = [4]uint64{a, m, d, q}
	return r
}

// InstructionMix returns the dynamic instruction mix measured from issued
// instructions (the basis of Fig. 5a).
func (r *Report) InstructionMix() [isa.NumClasses]float64 {
	var mix [isa.NumClasses]float64
	if r.IssuedTotal == 0 {
		return mix
	}
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		mix[c] = float64(r.IssuedByClass[c]) / float64(r.IssuedTotal)
	}
	return mix
}

// CriticalWakeupsPer1000 returns critical wakeups per thousand cycles for a
// class, aggregated over the device (Fig. 6's x-axis).
func (r *Report) CriticalWakeupsPer1000(c isa.Class) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Domains[c].CriticalWakeups) / float64(r.Cycles) * 1000 / float64(r.Config.NumSMs)
}

// String summarizes the report.
func (r *Report) String() string {
	return fmt.Sprintf("Report{%s %s/%s cycles=%d int=%d fp=%d sfu=%d ldst=%d avgActive=%.1f}",
		r.Benchmark, r.Config.Scheduler, r.Config.Gating, r.Cycles,
		r.IssuedByClass[isa.INT], r.IssuedByClass[isa.FP],
		r.IssuedByClass[isa.SFU], r.IssuedByClass[isa.LDST], r.ActiveWarpAvg)
}
