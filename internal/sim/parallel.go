package sim

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"warpedgates/internal/mem"
)

// The parallel engine: the SM array is stepped by several worker goroutines
// while every observable stays bit-identical to the serial loop in GPU.Run.
//
// The engine alternates two kinds of phases, separated by a sense-reversing
// barrier whose last arriver runs a short coordinator section (advance).
//
// Compute phase. Workers step disjoint SM sets. By default the sets are not
// fixed shards: each window, workers claim SM indices one at a time from a
// shared atomic counter (reset by the coordinator when it opens the window),
// so a worker whose claimed SMs all fast-forwarded or drained keeps claiming
// live SMs instead of spinning at the barrier while another worker steps a
// long shard alone. Claiming only decides *which goroutine* steps an SM —
// every per-SM observable (pos, pendingAt, staged ops) lives in per-SM slots
// written solely by the claiming worker within the window and handed across
// the barrier, so any claim interleaving produces byte-identical results.
// cfg.DisableShardSteal restores the fixed contiguous shards. Each SM runs at
// its own position pos[i] through a window of up to winEnd: sm.step touches
// only SM-private state (warp tables, pipes, gating controllers, L1, MSHR)
// and *stages* global-memory requests on its port (sm.memStage) instead of
// calling the shared L2/DRAM inline. A staging cycle whose lines all hit the
// L1 or merge with the SM's own outstanding fills touches nothing shared, so
// the worker finishes it locally and keeps stepping; a cycle that needs the
// device parks the SM (pendingAt[i]) until an arbitration phase replays its
// ops. Stepping SMs at their own positions rather than a global clock is
// exact because a serial step below an SM's fast-forward horizon is a no-op:
// the serial clock only ever lands on some SM's wake cycle, and cycles where
// only *other* SMs wake are invisible to this one.
//
// Arbitration phase. Staged device ops must hit the shared L2/DRAM in the
// serial engine's order: ascending (cycle, SM id, staging index). Two
// mechanisms provide it without a serial section. First, ordering: an op
// staged at cycle c is resolvable only once every live unparked SM has
// advanced past c (c < frontier) — nothing can stage at ≤ c anymore — and
// the resolvable set is sorted by (cycle, SM id). The earliest parked op is
// always resolvable, so the engine cannot stall. Second, bank sharding: the
// device state is partitioned by address bank (mem.GPUMem), lines of
// different banks share no cache set, channel or counter, so the per-bank
// projections of the canonical order are independent and each worker drains
// the banks of its own bank range concurrently. The parked SMs' deferred
// writebacks are then booked by their owning workers (finishMemory) at the
// start of the next compute phase.
//
// The determinism argument rests on the same three properties of sm.step as
// before — it touches nothing outside its SM once memory is staged, its
// return value never depends on memory resolution, and everything resolution
// patches is only read by a later step — plus the bank partition's exactness
// (see mem.GPUMem) and the frontier ordering rule above.
//
// Worker growth. A run handed a WorkerPool (GPU.SetWorkerPool) may gain
// workers while it runs: each time the coordinator opens a compute window it
// polls the pool, and for every lease granted it spawns a joiner goroutine
// parameterized with the epoch value that opens the window. The joiner spins
// until the epoch reaches that value and then enters the normal worker loop,
// so it participates in exactly the phases the incremented worker count
// expects — the barrier count and the worker population change atomically at
// one epoch boundary, never mid-phase. Growth re-partitions claim order and
// bank ranges only; like stealing it cannot move any op's resolve cycle, so
// results stay byte-identical at any allocation history. Leases are returned
// to the pool when the run exits.
//
// Relaxed mode (cfg.EpochRelaxedCycles = R > 0) trades exactness for fewer
// barriers: SMs do not park on device staging but run freely through a
// window of R cycles, and every window ends with one arbitration phase that
// drains all staged ops in (SM id, staging index) order, each op at its own
// staging cycle. Device access *interleaving across SMs* within a window can
// therefore differ from serial by at most R cycles — the quantified error
// bound — while each SM's own stream stays internally exact. Windows are cut
// at deterministic cycles (frontier + R), so relaxed runs are reproducible
// and independent of worker count; R ≤ L1HitLatency (config.Validate)
// guarantees every staged access completes at or after its window's end, so
// deferred writebacks are always booked ahead of the retire-ring scan.

// spinYield is how many barrier polls a worker burns before yielding the
// processor. Small enough to stay polite on oversubscribed machines, large
// enough to catch the common case where the coordinator section is a few
// hundred nanoseconds.
const spinYield = 64

// parOp is the phase the workers run next, written by the coordinator.
type parOp int32

const (
	opCompute parOp = iota // step SM shards through the window
	opResolve              // drain resolveList's staged ops, bank-sharded
	opExit                 // run over; workers return
)

// shardResult is one worker's per-compute-phase contribution, padded to a
// cache line so workers never write-share: how many of its SMs drained, the
// latest cycle one drained at, and whether any parked on a staged device
// access (the flag that tells the coordinator an arbitration phase is due).
type shardResult struct {
	drained  int64
	maxDrain int64
	staged   bool
	_        [47]byte
}

// parRun is the shared state of one parallel run. The scalar fields and
// resolveList are owned by the coordinator section; workers read them only
// after observing the epoch advance that the coordinator precedes. pos,
// pendingAt and needFinal slots are handed back and forth between an SM's
// owning worker and the coordinator across the same barrier.
type parRun struct {
	g *GPU
	// ctxDone is the run context's cancellation channel (nil when the context
	// cannot be canceled); the coordinator polls it once per barrier round and
	// flips canceled, which exits every worker within one compute window.
	ctxDone  <-chan struct{}
	canceled bool

	// workers is the current worker population. It is written only inside the
	// coordinator section (growth) but read in the barrier hot path by every
	// worker, concurrently with that write, so it is atomic.
	workers    atomic.Int32
	maxWorkers int32      // growth ceiling: len(g.sms)
	pool       WorkerPool // nil = fixed allocation
	acquired   int        // pool leases held, returned after the run
	wg         *sync.WaitGroup

	maxCycles int64
	batch     int64 // exact-mode window length (cfg.EffectiveBatchCycles)
	relax     int64 // relaxed-mode window length, 0 = exact
	nBanks    int
	steal     bool // claim SM indices per window instead of fixed shards
	shards    []shardResult

	arrived atomic.Int32
	epoch   atomic.Uint32
	// claim is the shared steal index: the next SM index to step this compute
	// window. The coordinator resets it to zero when it opens a window.
	claim atomic.Int64

	op     parOp
	winEnd int64 // first cycle past the current compute window

	pos       []int64 // per SM: next cycle to step
	pendingAt []int64 // per SM: cycle of its parked staged ops, -1 = none
	needFinal []bool  // per SM: resolved ops await finishMemory
	resolve   []int32 // SM ids to drain this arbitration phase, canonical order

	// resolvePorts mirrors resolve as memory ports (same order); it is the
	// merge input for the bank phase, built by the coordinator when it
	// schedules opResolve.
	resolvePorts []*mem.SMPort

	live     int
	maxDrain int64
}

// runParallel is the parallel counterpart of the serial loop in Run.
func (g *GPU) runParallel(ctx context.Context, workers int) (*Report, error) {
	live := 0
	for _, sm := range g.sms {
		if sm.done() {
			sm.drained = true
		} else {
			live++
		}
		sm.memStage = true
		sm.memPort.SetBankStaging(true)
	}
	var canceled bool
	if live > 0 {
		maxW := len(g.sms)
		pr := &parRun{
			g:          g,
			ctxDone:    ctx.Done(),
			maxWorkers: int32(maxW),
			pool:       g.pool,
			maxCycles:  int64(g.cfg.MaxCycles),
			batch:      int64(g.cfg.EffectiveBatchCycles()),
			relax:      int64(g.cfg.EpochRelaxedCycles),
			nBanks:     g.gmem.NumBanks(),
			steal:      !g.cfg.DisableShardSteal,
			shards:     make([]shardResult, maxW),
			pos:        make([]int64, len(g.sms)),
			pendingAt:  make([]int64, len(g.sms)),
			needFinal:  make([]bool, len(g.sms)),
			live:       live,
			maxDrain:   -1,
		}
		// A pool may top the allocation up before the first window too: jobs
		// admitted when the job queue is already shorter than the worker
		// budget start with the surplus instead of waiting for a boundary.
		if pr.pool != nil && workers < maxW {
			if got := pr.pool.TryAcquire(maxW - workers); got > 0 {
				pr.acquired += got
				workers += got
			}
		}
		pr.workers.Store(int32(workers))
		win := pr.batch
		if pr.relax > 0 {
			win = pr.relax
		}
		for i := range g.sms {
			pr.pos[i] = g.cycle
			pr.pendingAt[i] = -1
		}
		pr.winEnd = g.cycle + win
		if pr.maxCycles > 0 && pr.winEnd > pr.maxCycles {
			pr.winEnd = pr.maxCycles
		}
		var wg sync.WaitGroup
		pr.wg = &wg
		start := pr.epoch.Load()
		for w := 1; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				pr.worker(w, start)
			}(w)
		}
		pr.worker(0, start)
		wg.Wait()
		if pr.pool != nil && pr.acquired > 0 {
			pr.pool.Release(pr.acquired)
		}
		canceled = pr.canceled
	}
	for _, sm := range g.sms {
		sm.finish()
		sm.memStage = false
		sm.memPort.SetBankStaging(false)
		sm.stagedRet = sm.stagedRet[:0]
	}
	if canceled {
		return nil, g.canceled(ctx)
	}
	return g.report(), nil
}

// worker runs whichever phase the coordinator scheduled — claiming SM
// indices from the shared steal counter (or stepping the fixed contiguous
// shard [w*n/W, (w+1)*n/W) with stealing disabled) in compute phases, and
// draining the bank range [w*B/W, (w+1)*B/W) in arbitration phases. The last
// worker to arrive at the barrier runs the coordinator section and releases
// the others by advancing the epoch. sentinel is the epoch value that opened
// the worker's first phase: 0 for the initial population, the joining epoch
// for workers a pool grew in later. Ranges are recomputed per phase because
// growth changes W at epoch boundaries.
func (pr *parRun) worker(w int, sentinel uint32) {
	n := len(pr.g.sms)
	cur := make([]int32, n) // bank-merge cursors, one slot per possible port
	for {
		if pr.op == opCompute {
			pr.compute(w)
		} else {
			W := int(pr.workers.Load())
			pr.resolveBanks(w*pr.nBanks/W, (w+1)*pr.nBanks/W, cur)
		}
		if pr.arrived.Add(1) == pr.workers.Load() {
			pr.advance()
			pr.arrived.Store(0)
			pr.epoch.Add(1)
		} else {
			for spins := 0; pr.epoch.Load() == sentinel; spins++ {
				if spins >= spinYield {
					runtime.Gosched()
				}
			}
		}
		sentinel++
		if pr.op == opExit {
			return
		}
	}
}

// join is the entry point of a worker the coordinator grew in mid-run: it
// waits for the epoch that opens the compute window it was hired for, then
// runs the normal loop.
func (pr *parRun) join(w int, start uint32) {
	defer pr.wg.Done()
	for spins := 0; pr.epoch.Load() != start; spins++ {
		if spins >= spinYield {
			runtime.Gosched()
		}
	}
	pr.worker(w, start)
}

// compute steps SMs through the current window — claimed one at a time from
// the shared steal index, or the worker's fixed shard with stealing off. Each
// SM first books writebacks left from the previous arbitration phase
// (finishMemory), then steps from its own position until the window ends, it
// drains, or — in exact mode — it stages a device access and parks. Pure-L1
// staging cycles are finished inline: they read nothing shared, and the merge
// fills they look up cannot be unpatched sentinels because the SM parks
// (exact) or the window drains (relaxed) before any unresolved device op
// could linger.
func (pr *parRun) compute(w int) {
	g := pr.g
	end := pr.winEnd
	relax := pr.relax > 0
	var drained int64
	maxDrain := int64(-1)
	anyStaged := false
	stepSM := func(i int) {
		sm := g.sms[i]
		if pr.needFinal[i] {
			pr.needFinal[i] = false
			sm.finishMemory()
		}
		if sm.drained || pr.pendingAt[i] >= 0 {
			return
		}
		c := pr.pos[i]
		for c < end {
			stepped := c
			c = sm.step(stepped)
			if len(sm.stagedRet) > 0 && !sm.memPort.HasStagedDevice() {
				sm.finishMemory()
			}
			parked := !relax && sm.memPort.HasStagedDevice()
			if parked {
				pr.pendingAt[i] = stepped
				anyStaged = true
			}
			if sm.drained {
				drained++
				if stepped > maxDrain {
					maxDrain = stepped
				}
				break
			}
			if parked {
				break
			}
		}
		if relax && sm.memPort.HasStagedDevice() {
			pr.pendingAt[i] = sm.stagedRet[0].at
			anyStaged = true
		}
		pr.pos[i] = c
	}
	n := len(g.sms)
	if pr.steal {
		for {
			i := int(pr.claim.Add(1)) - 1
			if i >= n {
				break
			}
			stepSM(i)
		}
	} else {
		W := int(pr.workers.Load())
		for i := w * n / W; i < (w+1)*n/W; i++ {
			stepSM(i)
		}
	}
	s := &pr.shards[w]
	s.drained, s.maxDrain, s.staged = drained, maxDrain, anyStaged
}

// resolveBanks drains the scheduled SMs' staged device ops for the worker's
// bank range. Within each bank, the ports' cycle-sorted op lists are merged
// so ops replay in ascending (staging cycle, SM id, staging index) — exactly
// the per-bank projection of the serial engine's device access order. (In
// exact mode every scheduled op shares one cycle, pmin; in relaxed mode the
// window's ops span up to R cycles and the merge is what keeps DRAM queue
// accounting in cycle order.) Banks share no state, so workers proceed
// without synchronization; per-op outcomes land in each port's own buffers
// at disjoint indices. cur is the worker's merge-cursor scratch.
func (pr *parRun) resolveBanks(bankLo, bankHi int, cur []int32) {
	for b := bankLo; b < bankHi; b++ {
		mem.ResolveBankOrdered(pr.resolvePorts, b, cur)
	}
}

// advance is the coordinator section, run once per barrier with every worker
// parked: fold the phase's results, schedule resolvable staged ops, decide
// termination, or open the next compute window. It polls the run context
// first — one poll per barrier round bounds cancellation latency to a single
// compute window without touching the workers' hot loops.
func (pr *parRun) advance() {
	g := pr.g
	if pr.ctxDone != nil {
		select {
		case <-pr.ctxDone:
			pr.canceled = true
			pr.op = opExit
			return
		default:
		}
	}
	if pr.op == opResolve {
		// The bank phase covered every scheduled SM's device ops; their
		// owning workers book the writebacks next compute phase.
		for _, idx := range pr.resolve {
			pr.pendingAt[idx] = -1
			pr.needFinal[idx] = true
		}
		pr.resolve = pr.resolve[:0]
		pr.resolvePorts = pr.resolvePorts[:0]
	} else {
		for i := range pr.shards {
			s := &pr.shards[i]
			pr.live -= int(s.drained)
			if s.maxDrain > pr.maxDrain {
				pr.maxDrain = s.maxDrain
			}
			s.drained, s.maxDrain = 0, -1
		}
	}
	for {
		// frontier is the earliest cycle any unparked live SM will step
		// next; pmin is the earliest parked staging cycle. Parked SMs are
		// excluded from the frontier (they stage nothing until resolved), as
		// are drained ones — if only parked SMs remain it is unbounded.
		frontier := int64(math.MaxInt64)
		pmin := int64(math.MaxInt64)
		pendingN := 0
		for i, sm := range g.sms {
			if at := pr.pendingAt[i]; at >= 0 {
				pendingN++
				if at < pmin {
					pmin = at
				}
				continue
			}
			if sm.drained {
				continue
			}
			if pr.pos[i] < frontier {
				frontier = pr.pos[i]
			}
		}
		if pendingN > 0 {
			// Exact mode drains only the ops at the earliest parked cycle:
			// no unparked SM can stage at or before it (frontier), and every
			// other parked SM resumes after its own later cycle — whereas a
			// later-cycle op is not safe yet, because the SM parked at pmin
			// resumes at pmin+1 and may stage again in between. Relaxed mode
			// drains everything: windows end with no carry-over, and the
			// bounded reordering is the mode's contract.
			if pr.relax > 0 {
				for i := range g.sms {
					if pr.pendingAt[i] >= 0 {
						pr.resolve = append(pr.resolve, int32(i))
					}
				}
			} else if pmin < frontier {
				for i := range g.sms {
					if pr.pendingAt[i] == pmin {
						pr.resolve = append(pr.resolve, int32(i))
					}
				}
			}
			if len(pr.resolve) == 1 && pr.relax == 0 {
				// One parked SM: a bank phase would spend a barrier round to
				// parallelize work one goroutine can do here in place.
				idx := pr.resolve[0]
				g.sms[idx].resolveMemoryInline()
				pr.pendingAt[idx] = -1
				pr.resolve = pr.resolve[:0]
				continue // its ops may unblock the next parked cycle
			}
			if len(pr.resolve) > 0 {
				for _, idx := range pr.resolve {
					pr.resolvePorts = append(pr.resolvePorts, g.sms[idx].memPort)
				}
				pr.op = opResolve
				return
			}
		}
		// No resolvable ops and none parked below the frontier: termination
		// has the serial loop's semantics. A run whose last SM drains is
		// complete even if the next cycle would cross MaxCycles; a run whose
		// every SM sits at or past the cap with work left ran out, its clock
		// clamped to the cap (the MaxCycles-overshoot rule).
		if pr.live == 0 && pendingN == 0 {
			g.cycle = pr.maxDrain + 1
			if pr.maxCycles > 0 && g.cycle > pr.maxCycles {
				g.cycle = pr.maxCycles
			}
			pr.op = opExit
			return
		}
		if pr.maxCycles > 0 && frontier >= pr.maxCycles && pendingN == 0 {
			g.cycle = pr.maxCycles
			g.ranOut = true
			pr.op = opExit
			return
		}
		g.cycle = frontier
		win := pr.batch
		if pr.relax > 0 {
			win = pr.relax
		}
		end := frontier + win
		if pendingN > 0 && pmin+1 < end {
			// An SM is still parked beyond the frontier: its ops unblock the
			// moment every other SM passes its cycle, so stop the window
			// right there instead of letting the leaders run a full batch
			// while it idles. (pmin >= frontier here — anything earlier was
			// resolved above — so the window still advances.)
			end = pmin + 1
		}
		if pr.maxCycles > 0 && end > pr.maxCycles {
			end = pr.maxCycles
		}
		// A compute window is about to open: this is the only point worker
		// growth happens. Lease whatever the pool can spare up to the SM
		// count, spawn the joiners parameterized with the epoch that opens
		// this window, and publish the bigger population — the joiners enter
		// exactly when the current workers do, so the barrier count and the
		// worker set change together at one epoch boundary.
		if pr.pool != nil {
			if room := int(pr.maxWorkers - pr.workers.Load()); room > 0 {
				if got := pr.pool.TryAcquire(room); got > 0 {
					pr.acquired += got
					w0 := int(pr.workers.Load())
					start := pr.epoch.Load() + 1
					for k := 0; k < got; k++ {
						pr.wg.Add(1)
						go pr.join(w0+k, start)
					}
					pr.workers.Store(int32(w0 + got))
				}
			}
		}
		pr.claim.Store(0)
		pr.winEnd = end
		pr.op = opCompute
		return
	}
}
