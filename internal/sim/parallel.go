package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallel engine: the SM array is stepped by several worker goroutines
// while every observable stays bit-identical to the serial loop in GPU.Run.
//
// Each device cycle splits into two phases. In the compute phase, workers
// step disjoint contiguous SM shards for the same cycle; sm.step touches only
// SM-private state (warp tables, pipes, gating controllers, L1, MSHR) and
// *stages* global-memory requests on its port instead of calling the shared
// L2/DRAM inline (sm.memStage). In the arbitration phase — the serial section
// run by the last worker to reach the barrier — staged requests drain to the
// shared device in ascending SM-id order, which is exactly the order the
// serial loop's in-line accesses produce, so L2 contents, DRAM channel
// queueing and every timing result match the serial engine bit for bit. The
// arbitration phase then advances the device clock to the minimum next-wake
// across shards (composing with the idle fast-forward, as the serial loop
// does) and decides termination.
//
// The determinism argument rests on three properties of sm.step:
//   - it reads and writes nothing outside its SM once memory is staged, so
//     compute-phase interleaving is irrelevant;
//   - its return value never depends on memory resolution: a normal cycle
//     returns now+1 unconditionally, and the fast-forward paths require
//     readyMask == 0, which precludes issuing (and therefore staging)
//     anything that cycle;
//   - everything resolution patches (MSHR fill cycles, retire-ring events)
//     is only read by the *next* step, which runs after the barrier.
//
// One atomic synchronization point per device cycle: an arrival counter plus
// an epoch word form a sense-reversing barrier. Workers spin briefly on the
// epoch and then yield, so the engine degrades gracefully when goroutines
// outnumber cores.

// spinYield is how many barrier polls a worker burns before yielding the
// processor. Small enough to stay polite on oversubscribed machines, large
// enough to catch the common case where the serial section is a few hundred
// nanoseconds.
const spinYield = 64

// shardResult is one worker's per-phase contribution, padded to a cache line
// so workers never write-share.
type shardResult struct {
	wake    int64 // min wake among the shard's still-live SMs, -1 if none
	drained int64 // SMs of the shard that drained this phase
	_       [48]byte
}

// parRun is the shared state of one parallel run. live, done, g.cycle and
// g.ranOut are owned by the serial section; workers read them only after
// observing the epoch advance that the serial section precedes.
type parRun struct {
	g         *GPU
	workers   int32
	maxCycles int64
	shards    []shardResult

	arrived atomic.Int32
	epoch   atomic.Uint32

	live int
	done bool
}

// runParallel is the parallel counterpart of the serial loop in Run.
func (g *GPU) runParallel(workers int) *Report {
	live := 0
	for _, sm := range g.sms {
		if sm.done() {
			sm.drained = true
		} else {
			live++
		}
		sm.memStage = true
	}
	if live > 0 {
		pr := &parRun{
			g:         g,
			workers:   int32(workers),
			maxCycles: int64(g.cfg.MaxCycles),
			shards:    make([]shardResult, workers),
			live:      live,
		}
		var wg sync.WaitGroup
		for w := 1; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				pr.worker(w)
			}(w)
		}
		pr.worker(0)
		wg.Wait()
	}
	for _, sm := range g.sms {
		sm.finish()
		sm.memStage = false
	}
	return g.report()
}

// worker steps the contiguous SM shard [w*n/W, (w+1)*n/W) once per device
// cycle; the last worker to arrive at the barrier runs the serial arbitration
// phase and releases the others by advancing the epoch.
func (pr *parRun) worker(w int) {
	g := pr.g
	n := len(g.sms)
	lo := w * n / int(pr.workers)
	hi := (w + 1) * n / int(pr.workers)
	sentinel := pr.epoch.Load()
	for {
		cycle := g.cycle
		wake, drained := int64(-1), int64(0)
		for i := lo; i < hi; i++ {
			sm := g.sms[i]
			if sm.drained {
				continue
			}
			wk := sm.step(cycle)
			if sm.drained {
				drained++
				continue
			}
			if wake < 0 || wk < wake {
				wake = wk
			}
		}
		s := &pr.shards[w]
		s.wake, s.drained = wake, drained
		if pr.arrived.Add(1) == pr.workers {
			pr.serial(cycle)
			pr.arrived.Store(0)
			pr.epoch.Add(1)
		} else {
			for spins := 0; pr.epoch.Load() == sentinel; spins++ {
				if spins >= spinYield {
					runtime.Gosched()
				}
			}
		}
		sentinel++
		if pr.done {
			return
		}
	}
}

// serial is the arbitration phase, run with every worker parked at the
// barrier: staged memory requests drain to the shared device in ascending
// SM-id order, the clock advances to the minimum wake across shards, and
// termination is decided with the same semantics as the serial loop (a run
// whose last SM drains is complete even if the next cycle would cross
// MaxCycles; a run that crosses it with work left sets ranOut).
func (pr *parRun) serial(cycle int64) {
	g := pr.g
	for _, sm := range g.sms {
		sm.resolveMemory(cycle)
	}
	next := int64(-1)
	for i := range pr.shards {
		s := &pr.shards[i]
		pr.live -= int(s.drained)
		if s.wake >= 0 && (next < 0 || s.wake < next) {
			next = s.wake
		}
	}
	if next < 0 {
		// The last live SM drained this cycle; account the cycle as the
		// serial loop does before exiting.
		g.cycle++
	} else {
		g.cycle = next
	}
	if pr.live <= 0 {
		pr.done = true
		return
	}
	if pr.maxCycles > 0 && g.cycle >= pr.maxCycles {
		g.ranOut = true
		pr.done = true
	}
}
