package sim

import (
	"fmt"

	"warpedgates/internal/gating"
	"warpedgates/internal/isa"
)

// Pipe is one execution-unit issue port with its own gating domain: an INT or
// FP pipeline of one SP cluster, the SFU bank, or the LD/ST port. Occupancy
// is tracked with two horizons: portFreeAt enforces the initiation interval
// (a new warp instruction may not start before it), and drainAt marks when
// the deepest in-flight instruction leaves the pipeline (the unit is busy —
// consuming useful dynamic power and ineligible for gating — until then).
type Pipe struct {
	class   isa.Class
	cluster int

	portFreeAt int64
	drainAt    int64

	gate *gating.Controller

	issuedInstrs uint64
	issuedByOp   [isa.NumOps]uint64
}

// newPipe builds a pipe for the given class/cluster with its controller.
func newPipe(class isa.Class, cluster int, gate *gating.Controller) *Pipe {
	if gate == nil {
		panic("sim: pipe requires a gating controller")
	}
	return &Pipe{class: class, cluster: cluster, gate: gate}
}

// Busy reports whether any instruction occupies the pipeline at cycle now.
func (p *Pipe) Busy(now int64) bool { return now < p.drainAt }

// CanStart reports whether a new instruction may begin at cycle now: the
// port must be free (initiation interval) and the gating controller must
// have the unit powered.
func (p *Pipe) CanStart(now int64) bool {
	return now >= p.portFreeAt && p.gate.CanIssue()
}

// Start commits an instruction to the pipe at cycle now, holding the port
// for ii cycles and the pipeline for latency cycles.
func (p *Pipe) Start(now int64, op isa.Op, ii, latency int) {
	if !p.CanStart(now) {
		panic(fmt.Sprintf("sim: Start on unavailable %s pipe (cluster %d)", p.class, p.cluster))
	}
	if ii <= 0 || latency <= 0 {
		panic(fmt.Sprintf("sim: non-positive ii/latency %d/%d", ii, latency))
	}
	p.portFreeAt = now + int64(ii)
	if d := now + int64(latency); d > p.drainAt {
		p.drainAt = d
	}
	p.issuedInstrs++
	p.issuedByOp[op]++
}

// Gate exposes the pipe's gating controller.
func (p *Pipe) Gate() *gating.Controller { return p.gate }

// Class returns the pipe's execution-unit class.
func (p *Pipe) Class() isa.Class { return p.class }

// Cluster returns the pipe's cluster index within its class.
func (p *Pipe) Cluster() int { return p.cluster }

// Issued returns the number of warp instructions this pipe executed.
func (p *Pipe) Issued() uint64 { return p.issuedInstrs }

// IssuedByOp returns per-opcode issue counts.
func (p *Pipe) IssuedByOp() [isa.NumOps]uint64 { return p.issuedByOp }
