package sim

import (
	"testing"
	"testing/quick"

	"warpedgates/internal/config"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
)

// TestSimulatorInvariantsUnderRandomConfigs drives short full-pipeline runs
// under randomized policy and gating-parameter combinations and checks the
// global invariants that must hold in every legal configuration.
func TestSimulatorInvariantsUnderRandomConfigs(t *testing.T) {
	benchNames := []string{"nw", "hotspot", "mri", "bfs"}
	f := func(benchRaw, schedRaw, gateRaw, idRaw, betRaw, wakeRaw uint8, adaptive bool) bool {
		cfg := config.Small()
		cfg.Scheduler = []config.SchedulerKind{
			config.SchedLRR, config.SchedTwoLevel, config.SchedGATES,
		}[int(schedRaw)%3]
		cfg.Gating = []config.GatingKind{
			config.GateNone, config.GateConventional,
			config.GateNaiveBlackout, config.GateCoordBlackout,
		}[int(gateRaw)%4]
		cfg.IdleDetect = int(idRaw % 12)
		cfg.BreakEven = 1 + int(betRaw%30)
		cfg.WakeupDelay = int(wakeRaw % 10)
		cfg.AdaptiveIdleDetect = adaptive && cfg.Gating == config.GateCoordBlackout
		cfg.MaxCycles = 30000

		bench := benchNames[int(benchRaw)%len(benchNames)]
		k := kernels.MustBenchmark(bench).Scale(0.08)
		gpu, err := NewGPU(cfg, k)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		rep := gpu.Run()

		// Invariant: the workload drains at this scale.
		if rep.RanOut {
			t.Logf("%s did not drain under %v/%v", bench, cfg.Scheduler, cfg.Gating)
			return false
		}
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			d := rep.Domains[c]
			// Cycle accounting partitions.
			if d.BusyCycles+d.IdleCycles != d.CellCycles() {
				return false
			}
			if d.PoweredCycles+d.GatedCycles != d.CellCycles() {
				return false
			}
			if d.UncompCycles+d.CompCycles != d.GatedCycles {
				return false
			}
			// The idle histogram accounts for every idle cycle.
			if d.IdlePeriods.Sum() != d.IdleCycles {
				return false
			}
			// No gating activity without a gating policy.
			if cfg.Gating == config.GateNone && (d.GatingEvents != 0 || d.GatedCycles != 0) {
				return false
			}
			// Blackout policies never wake uncompensated (INT/FP domains).
			if (cfg.Gating == config.GateNaiveBlackout || cfg.Gating == config.GateCoordBlackout) &&
				(c == isa.INT || c == isa.FP) && d.NegativeEvents != 0 {
				return false
			}
			// Wakeups require gating events (a unit can end the run gated,
			// so wakeups <= gating events).
			if d.Wakeups > d.GatingEvents {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkInvariantUnderRandomGatingParams checks the paper's §7.3 dynamic
// work invariant across random gating parameters: the issued instruction
// counts depend only on the workload, never on gating.
func TestWorkInvariantUnderRandomGatingParams(t *testing.T) {
	cfg := config.Small()
	cfg.MaxCycles = 60000
	k := kernels.MustBenchmark("kmeans").Scale(0.1)
	base, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Run().IssuedByClass

	f := func(idRaw, betRaw, wakeRaw uint8) bool {
		c := cfg
		c.Scheduler = config.SchedGATES
		c.Gating = config.GateCoordBlackout
		c.IdleDetect = int(idRaw % 12)
		c.BreakEven = 1 + int(betRaw%30)
		c.WakeupDelay = int(wakeRaw % 10)
		gpu, err := NewGPU(c, k)
		if err != nil {
			return false
		}
		rep := gpu.Run()
		if rep.RanOut {
			return false
		}
		return rep.IssuedByClass == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
