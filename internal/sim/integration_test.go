package sim

import (
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
)

// TestMicrokernelScheduleOnGPU runs the Figure 4 microkernel through the
// whole GPU pipeline on the figure's simplified machine and checks the exact
// issue schedules both schedulers produce.
func TestMicrokernelScheduleOnGPU(t *testing.T) {
	for _, tc := range []struct {
		sched       config.SchedulerKind
		wantCluster bool // GATES: all INT strictly before all FP
	}{
		{config.SchedTwoLevel, false},
		{config.SchedGATES, true},
	} {
		cfg := config.GTX480()
		cfg.NumSMs = 1
		cfg.NumSchedulers = 1
		cfg.NumSPClusters = 1
		cfg.Scheduler = tc.sched
		cfg.Gating = config.GateNone
		cfg.MaxCycles = 1000

		gpu, err := NewGPU(cfg, kernels.Fig4Microkernel())
		if err != nil {
			t.Fatal(err)
		}
		var classes []isa.Class
		gpu.SetIssueTracer(func(_ int, _ int64, _ int, class isa.Class, _ int) {
			classes = append(classes, class)
		})
		rep := gpu.Run()
		if rep.IssuedTotal != 12 {
			t.Fatalf("%s issued %d, want 12", tc.sched, rep.IssuedTotal)
		}
		sawFP := false
		clustered := true
		for _, c := range classes {
			if c == isa.FP {
				sawFP = true
			} else if sawFP {
				clustered = false
			}
		}
		if clustered != tc.wantCluster {
			t.Fatalf("%s clustered=%v, want %v (order %v)", tc.sched, clustered, tc.wantCluster, classes)
		}
	}
}

// TestAuxBlackoutExtension checks that the BlackoutAux knob switches the
// SFU/LDST controllers to blackout semantics (no uncompensated wakeups).
func TestAuxBlackoutExtension(t *testing.T) {
	run := func(aux bool) *Report {
		cfg := smallCfg()
		cfg.Scheduler = config.SchedGATES
		cfg.Gating = config.GateCoordBlackout
		cfg.BlackoutAux = aux
		k := kernels.MustBenchmark("mri").Scale(0.25) // SFU-heavy benchmark
		gpu, err := NewGPU(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		return gpu.Run()
	}
	with := run(true)
	without := run(false)
	if with.Domains[isa.SFU].NegativeEvents != 0 {
		t.Fatal("aux blackout produced uncompensated SFU wakeups")
	}
	if with.Domains[isa.LDST].NegativeEvents != 0 {
		t.Fatal("aux blackout produced uncompensated LDST wakeups")
	}
	// Work must be identical either way.
	if with.IssuedTotal != without.IssuedTotal {
		t.Fatalf("aux blackout changed issued work: %d vs %d", with.IssuedTotal, without.IssuedTotal)
	}
}

// TestCoordinatedKeepsOneClusterOn exercises the §5 invariant inside a full
// simulation: whenever warps of a type sit in the active subset, at least
// one cluster of that type is powered (or waking).
func TestCoordinatedKeepsOneClusterOn(t *testing.T) {
	cfg := smallCfg()
	cfg.NumSMs = 1
	cfg.Scheduler = config.SchedGATES
	cfg.Gating = config.GateCoordBlackout
	k := kernels.MustBenchmark("hotspot").Scale(0.2)
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	sm := gpu.SMs()[0]
	bothGated := func(pipes []*Pipe) bool {
		for _, p := range pipes {
			if !p.Gate().Gated() {
				return false
			}
		}
		return true
	}
	prev := map[isa.Class]bool{}
	violations, transitions := 0, 0
	for !sm.done() && gpu.cycle < 100000 {
		sm.step(gpu.cycle)
		gpu.cycle++
		for _, check := range []struct {
			class isa.Class
			pipes []*Pipe
		}{{isa.INT, sm.intPipes}, {isa.FP, sm.fpPipes}} {
			now := bothGated(check.pipes)
			if now && !prev[check.class] {
				transitions++
				// The coordinator must not have gated the last powered
				// cluster while warps of the type sat in the active
				// subset. (Once both are gated, work arriving during the
				// blackout legitimately waits — that is the technique's
				// performance cost, not a violation.)
				if sm.smState.ACTV[check.class] > 0 {
					violations++
				}
			}
			prev[check.class] = now
		}
	}
	if transitions == 0 {
		t.Skip("no both-gated transitions at this scale")
	}
	// ACTV is sampled a cycle boundary after the decision, so allow a small
	// racy residue from work arriving in the same cycle the last cluster
	// gates.
	if frac := float64(violations) / float64(transitions); frac > 0.10 {
		t.Fatalf("last powered cluster gated with waiting warps in %.0f%% of %d transitions",
			frac*100, transitions)
	}
}

// TestRetireRingHorizon ensures no writeback is ever scheduled beyond the
// retire ring's capacity, which would silently corrupt the scoreboard.
func TestRetireRingHorizon(t *testing.T) {
	cfg := smallCfg()
	cfg.DRAMSlots = 1 // maximal channel queueing pressure
	cfg.MSHRPerSM = 64
	k := kernels.MustBenchmark("bfs").Scale(0.2)
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	// Instrument: wrap step to bound-check bucket distances via the public
	// invariant instead — the workload must drain with correct results.
	rep := gpu.Run()
	if rep.RanOut {
		t.Fatal("run did not drain")
	}
	want := uint64(k.TotalWarpInstructions()) * uint64(k.WarpsPerCTA) *
		uint64(k.CTAsPerSM*cfg.NumSMs)
	if rep.IssuedTotal != want {
		t.Fatalf("issued %d, want %d — lost writebacks?", rep.IssuedTotal, want)
	}
}

// TestLRRScheduler runs the LRR baseline end to end.
func TestLRRScheduler(t *testing.T) {
	rep := runBench(t, "nw", config.SchedLRR, config.GateNone)
	if rep.IssuedTotal == 0 {
		t.Fatal("LRR issued nothing")
	}
}

// TestSFUConventionalGatingUnderBlackout verifies the SFU unit still uses
// conventional wakeups (negative events allowed) when BlackoutAux is off.
func TestSFUConventionalGatingUnderBlackout(t *testing.T) {
	rep := runBench(t, "mri", config.SchedGATES, config.GateNaiveBlackout)
	d := rep.Domains[isa.SFU]
	if d.GatingEvents == 0 {
		t.Skip("SFU never gated at this scale")
	}
	// INT/FP must have zero negative events (blackout), while SFU may have
	// some (conventional); at minimum the accounting stays consistent.
	if rep.Domains[isa.INT].NegativeEvents != 0 || rep.Domains[isa.FP].NegativeEvents != 0 {
		t.Fatal("blackout classes recorded negative events")
	}
}

// TestAdaptiveWindowMoves checks that Warped Gates actually exercises the
// adaptive mechanism on a wakeup-heavy benchmark.
func TestAdaptiveWindowMoves(t *testing.T) {
	cfg := smallCfg()
	cfg.NumSMs = 1
	cfg.Scheduler = config.SchedGATES
	cfg.Gating = config.GateCoordBlackout
	cfg.AdaptiveIdleDetect = true
	k := kernels.MustBenchmark("cutcp").Scale(0.5)
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	gpu.Run()
	sm := gpu.SMs()[0]
	incI, _, epochsI := sm.intAdapt.Stats()
	incF, _, epochsF := sm.fpAdapt.Stats()
	if epochsI == 0 && epochsF == 0 {
		t.Fatal("no adaptive epochs elapsed")
	}
	if incI+incF == 0 {
		t.Fatal("adaptive window never moved on a wakeup-heavy benchmark")
	}
}
