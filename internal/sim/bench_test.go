package sim

import (
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
)

// BenchmarkSMCycle measures the cost of one simulated SM cycle under the
// full Warped Gates configuration — the number that bounds how fast the
// figure harness can run.
func BenchmarkSMCycle(b *testing.B) {
	cfg := config.GTX480()
	cfg.NumSMs = 1
	cfg.Scheduler = config.SchedGATES
	cfg.Gating = config.GateCoordBlackout
	cfg.AdaptiveIdleDetect = true
	cfg.MaxCycles = 1 << 30
	k := kernels.MustBenchmark("hotspot").Scale(100) // effectively endless
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		b.Fatal(err)
	}
	sm := gpu.SMs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm.step(int64(i))
	}
}

// BenchmarkMatrix runs representative benchmark × technique cells as named
// sub-benchmarks, so `go test -bench Matrix -count N | benchstat` compares
// apples to apples across commits (one row per cell). Each iteration is a
// complete small-machine run; the per-cycle cost is reported alongside.
func BenchmarkMatrix(b *testing.B) {
	techs := []struct {
		name  string
		apply func(c *config.Config)
	}{
		{"Baseline", func(c *config.Config) {
			c.Scheduler = config.SchedTwoLevel
			c.Gating = config.GateNone
		}},
		{"WarpedGates", func(c *config.Config) {
			c.Scheduler = config.SchedGATES
			c.Gating = config.GateCoordBlackout
			c.AdaptiveIdleDetect = true
		}},
		{"WarpedGatesStepped", func(c *config.Config) {
			c.Scheduler = config.SchedGATES
			c.Gating = config.GateCoordBlackout
			c.AdaptiveIdleDetect = true
			c.DisableFastForward = true
		}},
	}
	for _, bench := range []string{"hotspot", "bfs"} {
		for _, tech := range techs {
			b.Run(bench+"/"+tech.name, func(b *testing.B) {
				cfg := config.Small()
				tech.apply(&cfg)
				k := kernels.MustBenchmark(bench).Scale(0.1)
				var cycles int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					gpu, err := NewGPU(cfg, k)
					if err != nil {
						b.Fatal(err)
					}
					cycles += gpu.Run().Cycles
				}
				if cycles > 0 {
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
				}
			})
		}
	}
}

// BenchmarkFullRunSmall measures a complete small-machine simulation.
func BenchmarkFullRunSmall(b *testing.B) {
	cfg := config.Small()
	k := kernels.MustBenchmark("nw").Scale(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpu, err := NewGPU(cfg, k)
		if err != nil {
			b.Fatal(err)
		}
		gpu.Run()
	}
}
