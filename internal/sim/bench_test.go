package sim

import (
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
)

// BenchmarkSMCycle measures the cost of one simulated SM cycle under the
// full Warped Gates configuration — the number that bounds how fast the
// figure harness can run.
func BenchmarkSMCycle(b *testing.B) {
	cfg := config.GTX480()
	cfg.NumSMs = 1
	cfg.Scheduler = config.SchedGATES
	cfg.Gating = config.GateCoordBlackout
	cfg.AdaptiveIdleDetect = true
	cfg.MaxCycles = 1 << 30
	k := kernels.MustBenchmark("hotspot").Scale(100) // effectively endless
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		b.Fatal(err)
	}
	sm := gpu.SMs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm.step(int64(i))
	}
}

// BenchmarkFullRunSmall measures a complete small-machine simulation.
func BenchmarkFullRunSmall(b *testing.B) {
	cfg := config.Small()
	k := kernels.MustBenchmark("nw").Scale(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpu, err := NewGPU(cfg, k)
		if err != nil {
			b.Fatal(err)
		}
		gpu.Run()
	}
}
