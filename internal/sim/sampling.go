package sim

import (
	"math"
	"sort"

	"warpedgates/internal/isa"
)

// Interval-sampled simulation (config.SampleDetailCycles / SamplePeriod).
//
// The sampler never jumps the clock and never synthesizes architectural
// state. The serial engine steps detailed windows of SampleDetailCycles
// device cycles; at each window boundary the sampler measures the work the
// window performed (issued instructions, per-domain gating counters, memory
// traffic, elapsed cycles) and then *removes* future work worth
// (SamplePeriod-SampleDetailCycles)/SampleDetailCycles times the window's
// issue count, by dequeueing whole unlaunched CTAs from the SM's launch
// queue (budget that does not cover a whole CTA carries to the next
// boundary). The removed work's contribution to the final report is
// estimated in closed form at the window's measured rates. Removing only
// queued CTAs is what keeps the estimate honest: the resident machine
// behaves exactly like a full run of a kernel with fewer CTA waves —
// occupancy, wave-transition transients and the final drain are all
// simulated detailed — and the skipped waves are statistically identical
// (same body, same geometry, different seeds) to the waves the windows
// measure. Every engine invariant — scoreboard, retire ring, gating
// controller state machines, the idle fast-forward — holds unchanged.
//
// The estimate's rate basis is the *entire* post-warm-up detailed run, not
// the windows in which splices happened to land: boundary() accumulates
// every post-warm-up window delta into a cumulative basis, and apply()
// scales that basis by skipped/measured instructions. Splices necessarily
// cluster early (the queue drains while budget accrues), and the early
// windows run on colder caches than the mix of phases the skipped waves
// would really have executed across; normalizing over the whole run folds
// the warm steady state and the drain into the per-instruction rates.
//
// Two totals are conserved exactly rather than estimated: IssuedTotal (the
// extrapolation weight is skipped/issued, so the estimated instructions
// equal the spliced instructions) and CTAsCompleted (spliced-out CTAs are
// counted directly, one each). Idle
// histograms are *not* extrapolated: a sampled report's IdlePeriods cover
// the detailed windows only (the distribution shape is preserved, the
// counts are smaller). Sampled reports set Report.Sampled and carry a
// heuristic per-run error estimate (window-rate dispersion scaled by the
// estimated fraction); the hard validation is the corpus test
// TestSampledModeCorpusErrorBound against full runs.

// sampleCounters is the flat snapshot of every extrapolated report counter.
type sampleCounters struct {
	deviceCycles float64 // GPU.cycle
	smCycles     float64 // sum over SMs of SMStats.Cycles
	warpSum      float64 // sum over SMs of SMStats.ActiveWarpSum

	issuedByClass [isa.NumClasses]float64
	issuedTotal   float64
	stallsMem     float64
	stallsGate    float64

	domains [isa.NumClasses]sampleDomain
	l1Acc   float64
	l1Miss  float64
	l2      [4]float64
}

// sampleDomain mirrors DomainStats' scalar counters.
type sampleDomain struct {
	busy, idle, powered, gated, uncomp, comp   float64
	events, wakeups, neg, crit, denied, issued float64
}

// sampler drives interval sampling for one serial run.
type sampler struct {
	g      *GPU
	detail int64 // cycles per detailed window
	ratio  float64
	// warmup is the device cycle before which no splicing happens (one full
	// period): the coldest windows — empty caches, launch transient — are
	// unrepresentative of the work a splice stands in for, and budget earned
	// during warm-up is discarded rather than carried into a burst.
	warmup int64
	// next is the device cycle of the next window boundary.
	next int64
	prev sampleCounters
	// prevIssuedSM holds the previous boundary's per-SM issue counts, the
	// basis for per-SM splice budgets; carrySM accumulates budget too small
	// to cover a whole CTA until it can (capped in splice).
	prevIssuedSM []uint64
	carrySM      []float64

	// cum accumulates every post-warm-up window delta — the rate basis the
	// estimate is scaled from. est is the scaled copy computed by apply().
	cum           sampleCounters
	est           sampleCounters
	skippedInstrs uint64
	skippedCTAs   int

	// Issue-weighted moments of the window cycles-per-instruction rates over
	// all post-warm-up windows, the basis of the error estimate: rateW is the
	// total weight (instructions measured), rateM1/rateM2 the weighted
	// first/second moments, rateN the number of windows. windows keeps the
	// raw (rate, weight) pairs for the weighted-median cycle estimate.
	rateW, rateM1, rateM2 float64
	rateN                 int
	windows               []windowRate
}

// windowRate is one post-warm-up window's cycles-per-instruction rate and
// its weight (instructions issued in the window).
type windowRate struct {
	rate, weight float64
}

// newSampler returns the run's sampler, or nil when sampling is off.
func newSampler(g *GPU) *sampler {
	if !g.cfg.Sampling() {
		return nil
	}
	s := &sampler{
		g:            g,
		detail:       int64(g.cfg.SampleDetailCycles),
		ratio:        float64(g.cfg.SamplePeriod-g.cfg.SampleDetailCycles) / float64(g.cfg.SampleDetailCycles),
		prevIssuedSM: make([]uint64, len(g.sms)),
		carrySM:      make([]float64, len(g.sms)),
		warmup:       3 * int64(g.cfg.SamplePeriod),
	}
	s.next = s.detail
	s.snapshot(&s.prev)
	return s
}

// snapshot fills dst with the device's current cumulative counters.
func (s *sampler) snapshot(dst *sampleCounters) {
	*dst = sampleCounters{deviceCycles: float64(s.g.cycle)}
	for _, sm := range s.g.sms {
		st := &sm.st
		dst.smCycles += float64(st.Cycles)
		dst.warpSum += float64(st.ActiveWarpSum)
		for c := 0; c < int(isa.NumClasses); c++ {
			dst.issuedByClass[c] += float64(st.IssuedByClass[c])
		}
		dst.issuedTotal += float64(st.IssuedTotal)
		dst.stallsMem += float64(st.IssueStallsMem)
		dst.stallsGate += float64(st.IssueStallsGate)
		for _, p := range sm.pipes {
			gs := p.Gate().Stats()
			d := &dst.domains[p.Class()]
			d.busy += float64(gs.BusyCycles)
			d.idle += float64(gs.IdleCycles)
			d.powered += float64(gs.PoweredCycles)
			d.gated += float64(gs.GatedCycles)
			d.uncomp += float64(gs.UncompCycles)
			d.comp += float64(gs.CompCycles)
			d.events += float64(gs.GatingEvents)
			d.wakeups += float64(gs.Wakeups)
			d.neg += float64(gs.NegativeEvents)
			d.crit += float64(gs.CriticalWakeups)
			d.denied += float64(gs.DeniedWakeups)
			d.issued += float64(p.Issued())
		}
		a, m := sm.memPort.L1().Stats()
		dst.l1Acc += float64(a)
		dst.l1Miss += float64(m)
	}
	a, m, d, q := s.g.gmem.Stats()
	dst.l2 = [4]float64{float64(a), float64(m), float64(d), float64(q)}
}

// boundary closes the detailed window ending at the current device cycle:
// it measures the window's deltas, splices out the proportional amount of
// future work, and folds the spliced work's estimated contribution into the
// running totals. Called from the serial loop whenever the clock crosses
// s.next (idle fast-forward can overshoot a boundary; the window then simply
// covers the actual elapsed cycles).
func (s *sampler) boundary() {
	var cur sampleCounters
	s.snapshot(&cur)
	issuedDelta := cur.issuedTotal - s.prev.issuedTotal
	if s.g.cycle >= s.warmup {
		if issuedDelta > 0 {
			// Every post-warm-up window that issued feeds the rate basis,
			// splice or not. Issue-free windows are excluded: they are idle
			// regions the fast-forward jumped over, and their cycles are a
			// fixed structural cost of the resident machine, not per-wave
			// work a skipped CTA would have multiplied.
			addScaled(&s.cum, &cur, &s.prev, 1)
			rate := (cur.deviceCycles - s.prev.deviceCycles) / issuedDelta
			s.rateW += issuedDelta
			s.rateM1 += issuedDelta * rate
			s.rateM2 += issuedDelta * rate * rate
			s.rateN++
			s.windows = append(s.windows, windowRate{rate: rate, weight: issuedDelta})
			for i, sm := range s.g.sms {
				issued := sm.st.IssuedTotal
				budget := float64(issued-s.prevIssuedSM[i])*s.ratio + s.carrySM[i]
				taken := s.splice(sm, budget)
				s.carrySM[i] = budget - float64(taken)
				s.skippedInstrs += taken
				s.prevIssuedSM[i] = issued
			}
		}
	} else {
		// Warm-up: advance the baselines without earning splice budget.
		for i, sm := range s.g.sms {
			s.prevIssuedSM[i] = sm.st.IssuedTotal
		}
	}
	s.prev = cur
	s.next = s.g.cycle + s.detail
}

// splice dequeues up to budget instructions' worth of whole unlaunched CTAs
// from one SM and returns the instructions actually removed. The resident
// wave is never touched, so draining the queue early just moves the (fully
// detailed) final drain forward — exactly a real run of a smaller kernel.
// Splicing requires every CTA slot to hold a full
// warp complement (otherwise per-CTA work varies by slot and the accounting
// would drift) and a plain loop-body kernel (microkernels with PerWarpSlice
// have one instruction per warp and nothing representative to skip).
func (s *sampler) splice(sm *SM, budget float64) uint64 {
	k := sm.kernel
	conc := len(sm.ctaLive)
	if k.PerWarpSlice || len(sm.warps) != conc*k.WarpsPerCTA {
		return 0
	}
	// At most one CTA per boundary: spreading the splices across the run
	// keeps the measurement windows representative (a burst would drain the
	// queue while the caches are still at their coldest and leave the rest
	// of the run with nothing to pace against).
	perCTA := uint64(len(k.Body)) * uint64(k.Iterations) * uint64(k.WarpsPerCTA)
	if budget >= float64(perCTA) && sm.ctasRemaining > 0 {
		sm.ctasRemaining--
		s.skippedCTAs++
		return perCTA
	}
	return 0
}

// addScaled folds (cur-prev)*w into est, counter by counter.
func addScaled(est, cur, prev *sampleCounters, w float64) {
	est.deviceCycles += (cur.deviceCycles - prev.deviceCycles) * w
	est.smCycles += (cur.smCycles - prev.smCycles) * w
	est.warpSum += (cur.warpSum - prev.warpSum) * w
	for c := 0; c < int(isa.NumClasses); c++ {
		est.issuedByClass[c] += (cur.issuedByClass[c] - prev.issuedByClass[c]) * w
		ec, cc, pc := &est.domains[c], &cur.domains[c], &prev.domains[c]
		ec.busy += (cc.busy - pc.busy) * w
		ec.idle += (cc.idle - pc.idle) * w
		ec.powered += (cc.powered - pc.powered) * w
		ec.gated += (cc.gated - pc.gated) * w
		ec.uncomp += (cc.uncomp - pc.uncomp) * w
		ec.comp += (cc.comp - pc.comp) * w
		ec.events += (cc.events - pc.events) * w
		ec.wakeups += (cc.wakeups - pc.wakeups) * w
		ec.neg += (cc.neg - pc.neg) * w
		ec.crit += (cc.crit - pc.crit) * w
		ec.denied += (cc.denied - pc.denied) * w
		ec.issued += (cc.issued - pc.issued) * w
	}
	est.issuedTotal += (cur.issuedTotal - prev.issuedTotal) * w
	est.stallsMem += (cur.stallsMem - prev.stallsMem) * w
	est.stallsGate += (cur.stallsGate - prev.stallsGate) * w
	est.l1Acc += (cur.l1Acc - prev.l1Acc) * w
	est.l1Miss += (cur.l1Miss - prev.l1Miss) * w
	for i := range est.l2 {
		est.l2[i] += (cur.l2[i] - prev.l2[i]) * w
	}
}

// apply folds the scaled estimate into the assembled report and stamps the
// sampling metadata. Called once, after finish() and report().
func (s *sampler) apply(r *Report) {
	r.Sampled = true
	r.SampledDetailCycles = s.g.cycle
	r.SampledSkippedInstrs = s.skippedInstrs
	r.SampledSkippedCTAs = s.skippedCTAs
	if s.skippedInstrs > 0 && s.cum.issuedTotal > 0 {
		// Scale the whole-run basis so the estimated instruction count equals
		// the spliced instruction count exactly.
		var zero sampleCounters
		addScaled(&s.est, &s.cum, &zero, float64(s.skippedInstrs)/s.cum.issuedTotal)
	}
	r.SampleErrorEst = s.errorEstimate()

	r.Cycles += round64(s.est.deviceCycles)
	r.CTAsCompleted += s.skippedCTAs
	for c := 0; c < int(isa.NumClasses); c++ {
		r.IssuedByClass[c] += roundU64(s.est.issuedByClass[c])
		d, e := &r.Domains[c], &s.est.domains[c]
		d.BusyCycles += roundU64(e.busy)
		d.IdleCycles += roundU64(e.idle)
		d.PoweredCycles += roundU64(e.powered)
		d.GatedCycles += roundU64(e.gated)
		d.UncompCycles += roundU64(e.uncomp)
		d.CompCycles += roundU64(e.comp)
		d.GatingEvents += roundU64(e.events)
		d.Wakeups += roundU64(e.wakeups)
		d.NegativeEvents += roundU64(e.neg)
		d.CriticalWakeups += roundU64(e.crit)
		d.DeniedWakeups += roundU64(e.denied)
		d.IssuedInstrs += roundU64(e.issued)
	}
	r.IssuedTotal += roundU64(s.est.issuedTotal)
	r.IssueStallsMem += roundU64(s.est.stallsMem)
	r.IssueStallsGate += roundU64(s.est.stallsGate)
	r.L2Stats[0] += roundU64(s.est.l2[0])
	r.L2Stats[1] += roundU64(s.est.l2[1])
	r.L2Stats[2] += roundU64(s.est.l2[2])
	r.L2Stats[3] += roundU64(s.est.l2[3])

	// Ratios are recomputed over detailed + estimated sums.
	var fin sampleCounters
	s.snapshot(&fin)
	if t := fin.smCycles + s.est.smCycles; t > 0 {
		r.ActiveWarpAvg = (fin.warpSum + s.est.warpSum) / t
	}
	if t := fin.l1Acc + s.est.l1Acc; t > 0 {
		r.L1MissRate = (fin.l1Miss + s.est.l1Miss) / t
	}
}

// errorEstimate is the report's heuristic relative error estimate for
// Cycles: the issue-weighted coefficient of variation of the window
// cycles-per-instruction rates, shrunk by the number of independent windows
// the estimate averages over (the estimate is their weighted mean scaled to
// the skipped instruction count, so uncorrelated window noise cancels as
// 1/sqrt(n); the factor 2 approximates a 95% interval), scaled by the
// fraction of the final cycle count that is estimate rather than
// measurement. Heuristic, not a guarantee — the hard ceiling is pinned by
// the corpus test against full runs.
func (s *sampler) errorEstimate() float64 {
	if s.skippedInstrs == 0 || s.rateN == 0 || s.rateW <= 0 || s.rateM1 <= 0 {
		return 0
	}
	mean := s.rateM1 / s.rateW
	variance := s.rateM2/s.rateW - mean*mean
	if variance < 0 {
		variance = 0
	}
	cv := math.Sqrt(variance) / mean
	total := s.est.deviceCycles + float64(s.g.cycle)
	if total <= 0 {
		return 0
	}
	return 2 * cv / math.Sqrt(float64(s.rateN)) * (s.est.deviceCycles / total)
}

// medianRate returns the issue-weighted median of the post-warm-up window
// cycles-per-instruction rates, or 0 when no window issued.
func (s *sampler) medianRate() float64 {
	if len(s.windows) == 0 || s.rateW <= 0 {
		return 0
	}
	w := append([]windowRate(nil), s.windows...)
	sort.Slice(w, func(i, j int) bool { return w[i].rate < w[j].rate })
	half := s.rateW / 2
	var cum float64
	for _, v := range w {
		cum += v.weight
		if cum >= half {
			return v.rate
		}
	}
	return w[len(w)-1].rate
}

func round64(v float64) int64   { return int64(math.Round(v)) }
func roundU64(v float64) uint64 { return uint64(math.Round(math.Max(v, 0))) }
