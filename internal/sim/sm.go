package sim

import (
	"fmt"
	"math/bits"

	"warpedgates/internal/config"
	"warpedgates/internal/gating"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/mem"
	"warpedgates/internal/sched"
	"warpedgates/internal/stats"
)

// retireRingSize bounds how far in the future a writeback can be scheduled;
// it must exceed the worst-case memory completion horizon (DRAM latency plus
// maximal channel queueing). Power of two for cheap masking.
const retireRingSize = 1 << 14

// retireEvent is a scheduled writeback: clear dstMask in the warp's
// scoreboard, guarded by the warp-slot generation to survive slot reuse.
// Events live in a per-SM free-list arena (retirePool) and chain through
// next, so scheduling one never allocates once the pool has grown to the
// SM's maximum in-flight count — a slice-of-slices ring converges on zero
// allocations only asymptotically, as random completion bursts keep finding
// buckets below their high-water capacity.
type retireEvent struct {
	warp    *Warp
	gen     uint32
	dstMask uint64
	next    int32 // pool index of the next event in the same bucket, -1 ends
}

// stagedRetire is the SM-side record of one staged global access: the warp
// whose load writeback must be booked once the arbitration phase computes the
// access's completion cycle, and the cycle the access was issued (under
// batched epochs one resolve may cover accesses staged at different cycles).
// Stores stage too (they occupy MSHR entries and reach the device) but have
// no destination, so their dstMask is zero.
type stagedRetire struct {
	w       *Warp
	at      int64
	dstMask uint64
}

// SMStats aggregates the per-SM counters the figures are computed from.
type SMStats struct {
	Cycles          int64
	IssuedByClass   [isa.NumClasses]uint64
	IssuedTotal     uint64
	ActiveWarpSum   uint64 // sum over cycles of active-set size (Fig. 5b avg)
	ActiveWarpMax   int    // peak active-set size (Fig. 5b max)
	IssueStallsMem  uint64 // candidate failed on MSHR/port hazard
	IssueStallsGate uint64 // candidate failed because all target pipes were gated
	CTAsCompleted   int
}

// SM is one streaming multiprocessor: warp table, dual schedulers, execution
// pipes with per-domain gating controllers, and a private memory port.
//
// The per-cycle hot path runs on incrementally maintained state instead of
// rescans: warp readiness lives in uint64 bitsets and per-class counters that
// are updated at the transition points (launch, issue, writeback, finish) by
// refreshWarp, and the retire ring keeps an occupancy bitmap so the next
// scheduled writeback can be found without walking the ring. On top of that
// state sits an idle fast-forward (see step): when no warp is ready and no
// pipe is draining, nothing can happen until the next populated retire
// bucket, so the SM advances its gating controllers to that cycle in closed
// form instead of stepping.
type SM struct {
	id  int
	cfg config.Config

	kernel *kernels.Kernel
	warps  []*Warp

	// ctasRemaining counts CTAs not yet launched; ctaLive tracks live warps
	// per resident CTA slot so finished CTAs can be replaced.
	ctasRemaining int
	ctaLive       []int
	warpSeq       uint64 // monotonically increasing warp launch counter

	// Incrementally maintained warp-table state (the paper's ACTV/RDY
	// registers, kept exact at every mutation instead of recomputed):
	// bit i of each mask refers to warp slot i, hence the 64-warp bound
	// enforced by config.Validate.
	activeMask uint64              // state == WarpActive
	readyMask  uint64              // ready(): active and no blocking operand
	liveMask   uint64              // active or pending-mem
	actv       [isa.NumClasses]int // active warps per next-instruction class
	rdy        [isa.NumClasses]int // ready warps per next-instruction class
	warpClass  []isa.Class         // next-instruction class per active warp
	emptySlots int                 // CTA slots currently holding no live warps
	drained    bool                // all CTAs launched and every warp finished

	policies []sched.Policy
	gatesPol *sched.GATES // non-nil when the GATES policy is active
	slotMask []uint64     // per scheduler slot: the bits of its warps

	intPipes []*Pipe
	fpPipes  []*Pipe
	sfuPipe  *Pipe
	ldstPipe *Pipe

	// pipes is the fixed all-pipes order (INT clusters, FP clusters, SFU,
	// LDST) used by ticking, probes and reporting; sfuPipes/ldstPipes are
	// the single-element views signalReadyDemand needs. All precomputed so
	// the hot path never allocates.
	pipes     []*Pipe
	sfuPipes  []*Pipe
	ldstPipes []*Pipe
	// maxDrainAt is the monotone maximum of every pipe's drain horizon: at
	// cycles >= maxDrainAt all pipes are idle.
	maxDrainAt int64

	intCoord *gating.Coordinator
	fpCoord  *gating.Coordinator
	intAdapt *gating.AdaptiveIdleDetect
	fpAdapt  *gating.AdaptiveIdleDetect

	memPort   *mem.SMPort
	coalescer *mem.Coalescer

	// retireHead holds each bucket's event-list head as a retirePool index
	// (-1 = empty); retireFree heads the free list threaded through the same
	// pool.
	retireHead [retireRingSize]int32
	retirePool []retireEvent
	retireFree int32
	// retireBits marks populated retire buckets (one bit per bucket) and
	// retireCount totals the pending events, so the idle fast-forward can
	// locate the next writeback in a handful of word scans.
	retireBits  [retireRingSize / 64]uint64
	retireCount int

	// ffEnabled caches !cfg.DisableFastForward; skipUntil is the first cycle
	// not yet simulated after an idle fast-forward (step returns immediately
	// for cycles below it, because they were already accounted in batch).
	ffEnabled bool
	skipUntil int64

	// candBuf holds reusable candidate slices, one per scheduler slot.
	candBuf [][]sched.Candidate
	// memBlocked marks that a global access already failed MSHR admission
	// this cycle; the MSHR is SM-wide, so further LDST candidates are
	// skipped until next cycle.
	memBlocked bool

	// memStage, set by the parallel engine, makes issueMemory stage global
	// accesses on the port instead of resolving them inline; once the
	// arbitration phase has drained the staged device ops (or there were
	// none), finishMemory books the deferred load writebacks. stagedRet
	// records one entry per staged access, in staging order (dstMask 0 for
	// stores).
	memStage  bool
	stagedRet []stagedRetire

	benchSeed uint64
	st        SMStats
	smState   sched.SMState
	tracer    IssueTracer
	probe     CycleProbe
	laneBuf   []LaneState

	// prevCritINT/FP hold the previous cumulative critical-wakeup counts so
	// the adaptive mechanism can be fed per-cycle deltas.
	prevCritINT uint64
	prevCritFP  uint64
}

// newSM builds one SM with its pipes, controllers and scheduler slots.
func newSM(id int, cfg config.Config, k *kernels.Kernel, gpuMem *mem.GPUMem, benchSeed uint64) *SM {
	sm := &SM{
		id:        id,
		cfg:       cfg,
		kernel:    k,
		memPort:   mem.NewSMPort(cfg, gpuMem),
		coalescer: mem.NewCoalescer(),
		benchSeed: benchSeed,
		ffEnabled: !cfg.DisableFastForward,
	}
	for i := range sm.retireHead {
		sm.retireHead[i] = -1
	}
	sm.retireFree = -1

	// Adaptive idle-detect state is per instruction type (paper §5.1:
	// "different idle-detect values for INT and FP").
	sm.intAdapt = gating.NewAdaptiveIdleDetect(cfg)
	sm.fpAdapt = gating.NewAdaptiveIdleDetect(cfg)

	mkCtrl := func(kind config.GatingKind, idle func() int) *gating.Controller {
		return gating.NewController(kind, idle, cfg.BreakEven, cfg.WakeupDelay)
	}
	// SFU and LDST are gated conventionally whenever gating is enabled: the
	// paper's blackout machinery targets the clustered INT/FP CUDA cores
	// (§3: conventional gating suffices for the rare SFU traffic). The
	// BlackoutAux extension applies Naive Blackout there as well (single
	// clusters cannot be coordinated).
	auxKind := cfg.Gating
	if auxKind == config.GateNaiveBlackout || auxKind == config.GateCoordBlackout {
		if cfg.BlackoutAux {
			auxKind = config.GateNaiveBlackout
		} else {
			auxKind = config.GateConventional
		}
	}
	fixedIdle := func() int { return cfg.IdleDetect }

	var intCtrls, fpCtrls []*gating.Controller
	for c := 0; c < cfg.NumSPClusters; c++ {
		ic := mkCtrl(cfg.Gating, sm.intAdapt.Value)
		fc := mkCtrl(cfg.Gating, sm.fpAdapt.Value)
		intCtrls = append(intCtrls, ic)
		fpCtrls = append(fpCtrls, fc)
		sm.intPipes = append(sm.intPipes, newPipe(isa.INT, c, ic))
		sm.fpPipes = append(sm.fpPipes, newPipe(isa.FP, c, fc))
	}
	sm.intCoord = gating.NewCoordinator(cfg.Gating, intCtrls...)
	sm.fpCoord = gating.NewCoordinator(cfg.Gating, fpCtrls...)
	sm.sfuPipe = newPipe(isa.SFU, 0, mkCtrl(auxKind, fixedIdle))
	sm.ldstPipe = newPipe(isa.LDST, 0, mkCtrl(auxKind, fixedIdle))

	sm.pipes = make([]*Pipe, 0, len(sm.intPipes)+len(sm.fpPipes)+2)
	sm.pipes = append(sm.pipes, sm.intPipes...)
	sm.pipes = append(sm.pipes, sm.fpPipes...)
	sm.pipes = append(sm.pipes, sm.sfuPipe, sm.ldstPipe)
	sm.sfuPipes = []*Pipe{sm.sfuPipe}
	sm.ldstPipes = []*Pipe{sm.ldstPipe}
	sm.laneBuf = make([]LaneState, 0, len(sm.pipes))

	// Scheduler slots. GATES shares one priority register per SM (Fig. 7),
	// so a single policy instance serves both slots.
	switch cfg.Scheduler {
	case config.SchedGATES:
		g := sched.NewGATES()
		g.MaxHold = cfg.GATESMaxHold
		sm.gatesPol = g
		for i := 0; i < cfg.NumSchedulers; i++ {
			sm.policies = append(sm.policies, g)
		}
	case config.SchedLRR:
		for i := 0; i < cfg.NumSchedulers; i++ {
			sm.policies = append(sm.policies, sched.NewLRR())
		}
	default:
		for i := 0; i < cfg.NumSchedulers; i++ {
			sm.policies = append(sm.policies, sched.NewTwoLevel())
		}
	}

	// Warp table: enough slots for the resident CTAs, capped by the SM limit.
	conc := k.MaxConcurrentCTAs
	if max := cfg.MaxWarpsPerSM / k.WarpsPerCTA; conc > max && max > 0 {
		conc = max
	}
	if conc == 0 {
		conc = 1
	}
	nWarps := conc * k.WarpsPerCTA
	if nWarps > cfg.MaxWarpsPerSM {
		nWarps = cfg.MaxWarpsPerSM
	}
	if nWarps > 64 {
		panic(fmt.Sprintf("sim: warp table of %d slots exceeds the 64-bit scheduler bitsets", nWarps))
	}
	sm.warps = make([]*Warp, nWarps)
	for i := range sm.warps {
		sm.warps[i] = &Warp{id: i, state: WarpIdleSlot}
	}
	sm.warpClass = make([]isa.Class, nWarps)
	sm.ctaLive = make([]int, conc)
	sm.ctasRemaining = k.CTAsPerSM
	sm.emptySlots = conc
	sm.smState.NumWarps = nWarps

	// Scheduler-slot warp partitions and candidate buffers, sized up front so
	// the issue stage never allocates.
	nsched := len(sm.policies)
	sm.slotMask = make([]uint64, nsched)
	for i := 0; i < nWarps; i++ {
		sm.slotMask[i%nsched] |= 1 << uint(i)
	}
	sm.candBuf = make([][]sched.Candidate, nsched)
	for s := range sm.candBuf {
		sm.candBuf[s] = make([]sched.Candidate, 0, (nWarps+nsched-1)/nsched)
	}

	// Launch the first wave.
	for slot := 0; slot < conc; slot++ {
		sm.launchCTA(slot)
	}
	return sm
}

// launchCTA fills CTA slot with fresh warps, if work remains.
func (sm *SM) launchCTA(slot int) {
	if sm.ctasRemaining <= 0 {
		return
	}
	sm.ctasRemaining--
	w0 := slot * sm.kernel.WarpsPerCTA
	n := sm.kernel.WarpsPerCTA
	launched := 0
	for i := 0; i < n && w0+i < len(sm.warps); i++ {
		w := sm.warps[w0+i]
		seed := stats.CombineSeeds(sm.benchSeed, uint64(sm.id)<<32, sm.warpSeq)
		w.reset(sm.kernel, slot, sm.warpSeq, seed)
		sm.warpSeq++
		sm.ctaLive[slot]++
		sm.refreshWarp(w0 + i)
		launched++
	}
	if launched > 0 {
		sm.emptySlots--
	}
}

// refreshWarp re-derives warp i's contribution to the scheduler bitsets and
// per-class counters from its current state. It must be called after every
// mutation that can change the warp's state, readiness or next-instruction
// class: CTA launch, issue (advance + set membership), and writeback.
func (sm *SM) refreshWarp(i int) {
	bit := uint64(1) << uint(i)
	if sm.activeMask&bit != 0 {
		c := sm.warpClass[i]
		sm.actv[c]--
		if sm.readyMask&bit != 0 {
			sm.rdy[c]--
		}
	}
	sm.activeMask &^= bit
	sm.readyMask &^= bit
	sm.liveMask &^= bit
	w := sm.warps[i]
	switch w.state {
	case WarpActive:
		sm.liveMask |= bit
		sm.activeMask |= bit
		c := w.current().Class()
		sm.warpClass[i] = c
		sm.actv[c]++
		if w.blockedMask() == 0 {
			sm.readyMask |= bit
			sm.rdy[c]++
		}
	case WarpPendingMem:
		sm.liveMask |= bit
	}
}

// done reports whether the SM has drained all its work.
func (sm *SM) done() bool {
	return sm.ctasRemaining <= 0 && sm.liveMask == 0
}

// step advances the SM from cycle now and returns the next cycle at which it
// needs stepping: now+1 after a normal cycle, or the fast-forward target when
// the SM batch-advanced across an idle stretch (calls for cycles the batch
// already covered return immediately).
func (sm *SM) step(now int64) int64 {
	if now < sm.skipUntil {
		return sm.skipUntil
	}
	if sm.canFastForward(now) {
		if t := sm.nextRetireCycle(now); t > now {
			if mc := int64(sm.cfg.MaxCycles); mc > 0 && t > mc {
				t = mc
			}
			if t > now {
				sm.advanceIdle(now, t)
				return sm.skipUntil
			}
		}
	}
	sm.st.Cycles++
	sm.memPort.Expire(now)
	sm.writeback(now)
	sm.replaceCTAs()
	sm.refreshCounters()
	if sm.gatesPol != nil {
		sm.gatesPol.UpdatePriority(&sm.smState)
	}
	sm.issue(now)
	sm.tickGating(now)
	sm.emitProbe(now)
	return now + 1
}

// canFastForward reports whether nothing observable can happen this cycle or
// any cycle before the next populated retire bucket: no warp is ready (so no
// issue, no wakeup demand, no CTA completion), every pipe has drained (so
// gating controllers see idle and Tick(busy=true) panics are impossible), at
// least one writeback is pending (otherwise the SM is deadlocked or draining
// and skipping has no target), and no CTA launch is due. MSHR expiry is
// deferred soundly: nothing reads the MSHR until the next issue attempt, and
// ExpireBefore is cumulative.
func (sm *SM) canFastForward(now int64) bool {
	return sm.ffEnabled &&
		sm.readyMask == 0 &&
		sm.retireCount > 0 &&
		now >= sm.maxDrainAt &&
		(sm.ctasRemaining <= 0 || sm.emptySlots == 0)
}

// advanceIdle advances the SM from cycle now to cycle until (exclusive)
// without issuing anything, bit-identical to stepping each cycle. It runs in
// two phases: per-cycle micro-steps while the gating controllers are still
// transitioning (idle-detect counting, break-even accounting, wakeup
// countdowns — these cross state boundaries the closed forms must not skip),
// then one closed-form batch once every controller has settled into a state
// that constant idle input cannot change.
func (sm *SM) advanceIdle(now, until int64) {
	cyc := now
	for cyc < until && !sm.idleSettled() {
		sm.microIdleCycle(cyc)
		cyc++
	}
	if n := until - cyc; n > 0 {
		sm.bulkIdleAdvance(cyc, n)
	}
	sm.skipUntil = until
}

// idleSettled reports whether every gating controller of the SM is in a state
// that sustained idle input cannot change.
func (sm *SM) idleSettled() bool {
	return sm.intCoord.IdleSettled(sm.actv[isa.INT]) &&
		sm.fpCoord.IdleSettled(sm.actv[isa.FP]) &&
		sm.sfuPipe.Gate().IdleSettled() &&
		sm.ldstPipe.Gate().IdleSettled()
}

// microIdleCycle replays exactly what step does on a cycle with no ready
// warps, no writebacks, no CTA launches and no busy pipes: statistics,
// priority update, coordinator directives, controller ticks, adaptive ticks
// and the probe. Memory-port expiry is deferred to the next real step.
func (sm *SM) microIdleCycle(now int64) {
	sm.st.Cycles++
	sm.refreshCounters()
	if sm.gatesPol != nil {
		sm.gatesPol.UpdatePriority(&sm.smState)
	}
	sm.intCoord.PreTick(sm.smState.ACTV[isa.INT])
	sm.fpCoord.PreTick(sm.smState.ACTV[isa.FP])
	for _, p := range sm.pipes {
		p.Gate().Tick(false)
	}
	// No demand, so the cumulative critical-wakeup counts cannot move.
	sm.intAdapt.Tick(0)
	sm.fpAdapt.Tick(0)
	sm.emitProbe(now)
}

// bulkIdleAdvance applies n idle cycles starting at cycle from in closed
// form: occupancy statistics scale linearly, the GATES priority register and
// the adaptive windows advance arithmetically, and every settled controller
// batch-updates its counters. The probe (when installed) still fires once
// per skipped cycle — the lane states are constant by construction, so one
// buffer serves all n calls and downstream invariant checkers observe the
// same per-cycle stream stepping would produce.
func (sm *SM) bulkIdleAdvance(from, n int64) {
	sm.st.Cycles += n
	active := bits.OnesCount64(sm.activeMask)
	sm.st.ActiveWarpSum += uint64(active) * uint64(n)
	if active > sm.st.ActiveWarpMax {
		sm.st.ActiveWarpMax = active
	}
	sm.smState.ACTV = sm.actv
	sm.smState.RDY = sm.rdy
	sm.smState.AllBlackout[isa.INT] = sm.intCoord.AllInBlackout()
	sm.smState.AllBlackout[isa.FP] = sm.fpCoord.AllInBlackout()
	if sm.gatesPol != nil {
		sm.gatesPol.AdvanceIdle(n, &sm.smState)
	}
	for _, p := range sm.pipes {
		p.Gate().AdvanceIdle(n)
	}
	sm.intAdapt.AdvanceIdle(n)
	sm.fpAdapt.AdvanceIdle(n)
	if sm.probe != nil {
		sm.laneBuf = sm.laneBuf[:0]
		for _, p := range sm.pipes {
			sm.laneBuf = append(sm.laneBuf, LaneState{
				Class:   p.Class(),
				Cluster: p.Cluster(),
				Busy:    false,
				State:   p.Gate().State(),
			})
		}
		for cyc := from; cyc < from+n; cyc++ {
			sm.probe(sm.id, cyc, sm.laneBuf)
		}
	}
}

// emitProbe reports the per-lane gating states for cycle now.
func (sm *SM) emitProbe(now int64) {
	if sm.probe == nil {
		return
	}
	sm.laneBuf = sm.laneBuf[:0]
	for _, p := range sm.pipes {
		sm.laneBuf = append(sm.laneBuf, LaneState{
			Class:   p.Class(),
			Cluster: p.Cluster(),
			Busy:    p.Busy(now),
			State:   p.Gate().State(),
		})
	}
	sm.probe(sm.id, now, sm.laneBuf)
}

// writeback retires all operations completing at cycle now. Within-bucket
// order is irrelevant: each event only clears its own warp's scoreboard
// bits, and nothing observes the intermediate states.
func (sm *SM) writeback(now int64) {
	idx := now & (retireRingSize - 1)
	n := sm.retireHead[idx]
	if n < 0 {
		return
	}
	for n >= 0 {
		ev := &sm.retirePool[n]
		if ev.gen == ev.warp.gen {
			ev.warp.clearPending(ev.dstMask)
			sm.refreshWarp(ev.warp.id)
		}
		next := ev.next
		ev.next = sm.retireFree
		sm.retireFree = n
		sm.retireCount--
		n = next
	}
	sm.retireHead[idx] = -1
	sm.retireBits[idx>>6] &^= 1 << uint(idx&63)
}

// scheduleRetire books a future writeback at cycle at (scheduled at cycle
// now). Events outside the ring horizon would silently alias a past bucket
// and corrupt the scoreboard, so they panic instead.
func (sm *SM) scheduleRetire(now, at int64, w *Warp, dstMask uint64) {
	if dstMask == 0 {
		return
	}
	delta := at - now
	if delta <= 0 || delta >= retireRingSize {
		panic(fmt.Sprintf("sim: retire scheduled %d cycles ahead, outside the ring horizon [1,%d)",
			delta, retireRingSize))
	}
	idx := at & (retireRingSize - 1)
	n := sm.retireFree
	if n >= 0 {
		sm.retireFree = sm.retirePool[n].next
	} else {
		// Pool exhausted: grow it. This stops happening once the pool
		// reaches the SM's maximum in-flight event count (a few hundred,
		// bounded by warps × scoreboard width), after which the steady
		// state is allocation-free.
		sm.retirePool = append(sm.retirePool, retireEvent{})
		n = int32(len(sm.retirePool) - 1)
	}
	ev := &sm.retirePool[n]
	ev.warp, ev.gen, ev.dstMask = w, w.gen, dstMask
	ev.next = sm.retireHead[idx]
	sm.retireHead[idx] = n
	sm.retireBits[idx>>6] |= 1 << uint(idx&63)
	sm.retireCount++
}

// nextRetireCycle returns the cycle of the earliest populated retire bucket
// at or after now. Callers must ensure retireCount > 0; the scheduling
// horizon check guarantees every pending event lies within
// [now, now+retireRingSize), so bucket order equals cycle order.
func (sm *SM) nextRetireCycle(now int64) int64 {
	start := int(now & (retireRingSize - 1))
	wordIdx := start >> 6
	if m := sm.retireBits[wordIdx] >> uint(start&63); m != 0 {
		return now + int64(bits.TrailingZeros64(m))
	}
	dist := int64(64 - start&63)
	nWords := len(sm.retireBits)
	for k := 1; k <= nWords; k++ {
		if w := sm.retireBits[(wordIdx+k)&(nWords-1)]; w != 0 {
			return now + dist + int64(64*(k-1)) + int64(bits.TrailingZeros64(w))
		}
	}
	panic("sim: retireCount > 0 but no populated retire bucket")
}

// replaceCTAs launches queued CTAs into drained slots.
func (sm *SM) replaceCTAs() {
	if sm.ctasRemaining <= 0 || sm.emptySlots == 0 {
		return
	}
	for slot := range sm.ctaLive {
		if sm.ctaLive[slot] != 0 {
			continue
		}
		sm.launchCTA(slot)
	}
}

// refreshCounters publishes the incrementally maintained per-type counters to
// the scheduler-visible snapshot (the paper's ACTV and RDY registers) and
// samples occupancy statistics.
func (sm *SM) refreshCounters() {
	sm.smState.ACTV = sm.actv
	sm.smState.RDY = sm.rdy
	sm.smState.AllBlackout[isa.INT] = sm.intCoord.AllInBlackout()
	sm.smState.AllBlackout[isa.FP] = sm.fpCoord.AllInBlackout()
	sm.smState.AllBlackout[isa.SFU] = false
	sm.smState.AllBlackout[isa.LDST] = false

	active := bits.OnesCount64(sm.activeMask)
	sm.st.ActiveWarpSum += uint64(active)
	if active > sm.st.ActiveWarpMax {
		sm.st.ActiveWarpMax = active
	}
}

// issue runs the SM's scheduler slots for one cycle. Warps are statically
// partitioned between the slots by warp index, as in Fermi.
func (sm *SM) issue(now int64) {
	sm.memBlocked = false
	for s := range sm.policies {
		cands := sm.candidates(s)
		if len(cands) == 0 {
			continue
		}
		pol := sm.policies[s]
		pol.Arrange(cands, &sm.smState)
		for _, c := range cands {
			if sm.tryIssue(now, c) {
				pol.OnIssue(c)
				break
			}
		}
	}
}

// candidates collects ready warps belonging to scheduler slot s into the
// slot's reusable buffer, in ascending warp order (the bitset walk matches
// the old striped table scan).
func (sm *SM) candidates(s int) []sched.Candidate {
	out := sm.candBuf[s][:0]
	for m := sm.readyMask & sm.slotMask[s]; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		out = append(out, sched.Candidate{WarpIdx: i, Class: sm.warpClass[i]})
	}
	sm.candBuf[s] = out
	return out
}

// tryIssue attempts to issue warp c's next instruction; it returns false on
// structural or gating hazards, in which case the arbiter tries the next
// candidate (the heterogeneity that hides Blackout's latency, §5).
func (sm *SM) tryIssue(now int64, c sched.Candidate) bool {
	w := sm.warps[c.WarpIdx]
	in := w.current()
	if in == nil {
		return false
	}
	switch in.Class() {
	case isa.INT:
		return sm.issueALU(now, w, in, sm.intPipes)
	case isa.FP:
		return sm.issueALU(now, w, in, sm.fpPipes)
	case isa.SFU:
		return sm.issueSingle(now, w, in, sm.sfuPipe)
	case isa.LDST:
		return sm.issueMemory(now, w, in)
	}
	panic(fmt.Sprintf("sim: unknown class %v", in.Class()))
}

// issueALU places an INT/FP instruction on one of the class's clusters.
// Cluster preference is static (lowest index first): consolidating work onto
// one cluster instead of balancing it coalesces the other cluster's idle
// cycles into long gateable runs — the asymmetry Coordinated Blackout is
// built around (one cluster powered and serving work, the peer sleeping).
// When every cluster is gated or port-busy, a wakeup demand is raised on the
// most wakeable gated cluster.
func (sm *SM) issueALU(now int64, w *Warp, in *isa.Instr, pipes []*Pipe) bool {
	for _, p := range pipes {
		if p.CanStart(now) {
			sm.commitIssue(now, w, in, p, in.InitiationInterval(), in.Latency())
			return true
		}
	}
	sm.noteGateStall()
	return false
}

// issueSingle places an instruction on a single-cluster pipe (SFU).
func (sm *SM) issueSingle(now int64, w *Warp, in *isa.Instr, p *Pipe) bool {
	if p.CanStart(now) {
		sm.commitIssue(now, w, in, p, in.InitiationInterval(), in.Latency())
		return true
	}
	sm.noteGateStall()
	return false
}

// issueMemory handles LDST instructions: coalescing, MSHR admission, and
// completion scheduling through the memory subsystem.
func (sm *SM) issueMemory(now int64, w *Warp, in *isa.Instr) bool {
	p := sm.ldstPipe
	if !p.CanStart(now) {
		sm.noteGateStall()
		return false
	}
	if in.Space == isa.SpaceShared {
		complete := sm.memPort.SharedAccess(now)
		sm.commitIssue(now, w, in, p, in.InitiationInterval(), in.Latency())
		if isa.IsLoad(in.Op) {
			sm.scheduleRetire(now, complete, w, 1<<uint(in.Dst))
		}
		return true
	}
	// Global/local access: coalesce (cached across structural retries) then
	// check MSHR admission.
	if sm.memBlocked {
		sm.st.IssueStallsMem++
		return false
	}
	if !w.memLinesValid {
		base := w.globalSeq*97 + w.memCounter
		w.memLines = sm.coalescer.AppendTransactions(w.memLines[:0],
			in.Pattern, in.Region, base, sm.kernel.WorkingSetLines, &w.rng)
		w.memLinesValid = true
	}
	lines := w.memLines
	if !sm.memPort.CanIssueGlobal(lines) {
		sm.st.IssueStallsMem++
		sm.memBlocked = true
		return false
	}
	// The pipe occupancy and issue latency depend only on the transaction
	// fan-out, never on where the lines hit — which is what lets the parallel
	// engine finish the cycle before the shared device has answered.
	ii := len(lines)
	if ii < 1 {
		ii = 1
	}
	latency := in.Latency() + ii - 1
	var dstMask uint64
	if isa.IsLoad(in.Op) {
		dstMask = 1 << uint(in.Dst)
	}
	if sm.memStage {
		sm.memPort.StageGlobal(now, lines)
		sm.stagedRet = append(sm.stagedRet, stagedRetire{w: w, at: now, dstMask: dstMask})
		w.memCounter++
		w.memLinesValid = false
		sm.commitIssue(now, w, in, p, ii, latency)
		return true
	}
	res := sm.memPort.GlobalAccess(now, lines)
	w.memCounter++
	w.memLinesValid = false
	sm.commitIssue(now, w, in, p, ii, latency)
	sm.scheduleRetire(now, res.CompleteAt, w, dstMask)
	return true
}

// finishMemory completes the SM's staged global accesses: it assembles each
// access's timing (from the bank-phase outcomes when the arbitration phase
// ran, or directly when no access needed the shared device) and books the
// deferred load writebacks. It touches only SM-private state, so the worker
// that owns the SM calls it without synchronization. Deferring scheduleRetire
// past the end of step is invisible: the retire ring is only read by a later
// step's writeback and fast-forward scan, both of which run afterwards.
func (sm *SM) finishMemory() {
	if len(sm.stagedRet) == 0 {
		return
	}
	sm.memPort.FinishStaged(func(i int, res mem.Result) {
		r := sm.stagedRet[i]
		sm.scheduleRetire(r.at, res.CompleteAt, r.w, r.dstMask)
	})
	sm.stagedRet = sm.stagedRet[:0]
}

// resolveMemoryInline drains the SM's staged accesses straight to the shared
// device and books the writebacks, all in one call — the coordinator uses it
// when a single SM parked, where a bank-sharded phase would cost a barrier
// round to parallelize work one worker can do in place. Only safe while every
// worker is parked at the barrier.
func (sm *SM) resolveMemoryInline() {
	if len(sm.stagedRet) == 0 {
		return
	}
	sm.memPort.ResolveStaged(func(i int, res mem.Result) {
		r := sm.stagedRet[i]
		sm.scheduleRetire(r.at, res.CompleteAt, r.w, r.dstMask)
	})
	sm.stagedRet = sm.stagedRet[:0]
}

// commitIssue performs the bookkeeping common to every successful issue.
// Non-memory register results retire after the op latency; memory loads are
// scheduled separately by the caller (their latency comes from the memory
// model), so here only ALU/SFU destinations are booked.
func (sm *SM) commitIssue(now int64, w *Warp, in *isa.Instr, p *Pipe, ii, latency int) {
	dstMask := in.DstMask()
	finished := w.advance(in)
	if dstMask != 0 && !isa.IsMemory(in.Op) {
		sm.scheduleRetire(now, now+int64(latency), w, dstMask)
	}
	p.Start(now, in.Op, ii, latency)
	if d := now + int64(latency); d > sm.maxDrainAt {
		sm.maxDrainAt = d
	}
	if sm.tracer != nil {
		sm.tracer(sm.id, now, w.id, in.Class(), p.Cluster())
	}
	sm.st.IssuedByClass[in.Class()]++
	sm.st.IssuedTotal++
	if finished {
		sm.refreshWarp(w.id)
		sm.ctaLive[w.ctaSlot]--
		if sm.ctaLive[w.ctaSlot] < 0 {
			panic("sim: CTA live count underflow")
		}
		if sm.ctaLive[w.ctaSlot] == 0 {
			sm.st.CTAsCompleted++
			sm.emptySlots++
			if sm.ctasRemaining <= 0 && sm.liveMask == 0 {
				// The transition point GPU.Run's live-SM count hinges on:
				// the last warp of the last CTA just finished.
				sm.drained = true
			}
		}
	} else {
		w.refreshState()
		sm.refreshWarp(w.id)
	}
}

// noteGateStall records that a ready instruction could not issue because
// its pipes were gated or port-busy (statistics only; wakeup demand itself
// is driven by the per-class ready-detect logic in signalReadyDemand,
// matching the paper's Figure 7 where the power-gating controller watches
// the ready counters, not the issue arbiter).
func (sm *SM) noteGateStall() {
	sm.st.IssueStallsGate++
}

// signalReadyDemand implements the ready-instruction detect logic of
// conventional power gating (Hu et al., and the paper's Fig. 7 PG_logic):
// whenever at least one ready instruction of a class exists and no powered
// pipe of the class can serve it, a wakeup demand is raised on the most
// wakeable gated pipe (compensated first, then — meaningful only under
// conventional rules — uncompensated). Exactly one pipe per class receives
// the demand so wakeup statistics are not double counted. Because demand is
// derived from readiness rather than from arbiter walk order, a unit whose
// type is currently de-prioritized by GATES starts waking while the other
// type's phase is still draining, hiding the wakeup delay.
func (sm *SM) signalReadyDemand(rdy [isa.NumClasses]int, class isa.Class, pipes []*Pipe) {
	if rdy[class] == 0 {
		return
	}
	// A unit wakes only when the powered pipes of its class cannot serve
	// the ready work: the wanted pipe count is bounded by both the ready
	// count and the SM's issue width. Without this bound the ready-detect
	// logic thrashes the sleep switch (a gated cluster would wake on every
	// cycle any warp of its type is ready, even with a powered peer
	// serving it) and every technique's savings collapse below zero.
	want := rdy[class]
	if w := len(sm.policies); want > w {
		want = w
	}
	if want > len(pipes) {
		want = len(pipes)
	}
	serving := 0
	for _, p := range pipes {
		if st := p.Gate().State(); st == gating.StActive || st == gating.StWakeup {
			serving++
		}
	}
	if serving >= want {
		return
	}
	var fallback *Pipe
	for _, p := range pipes {
		switch p.Gate().State() {
		case gating.StCompensated:
			p.Gate().RequestIssue()
			return
		case gating.StUncompensated:
			if fallback == nil {
				fallback = p
			}
		}
	}
	if fallback != nil {
		fallback.Gate().RequestIssue()
	}
}

// tickGating advances every gating controller and the adaptive windows. The
// live rdy counters already reflect this cycle's issues (refreshWarp runs at
// commit), so a warp that just issued is no longer waiting and must not wake
// a gated unit — the same post-issue view the old re-scan derived.
func (sm *SM) tickGating(now int64) {
	sm.signalReadyDemand(sm.rdy, isa.INT, sm.intPipes)
	sm.signalReadyDemand(sm.rdy, isa.FP, sm.fpPipes)
	sm.signalReadyDemand(sm.rdy, isa.SFU, sm.sfuPipes)
	sm.signalReadyDemand(sm.rdy, isa.LDST, sm.ldstPipes)
	// The coordinator sees the pre-issue ACTV snapshot (the register that
	// was latched when the cycle began), not the live post-issue counters.
	sm.intCoord.PreTick(sm.smState.ACTV[isa.INT])
	sm.fpCoord.PreTick(sm.smState.ACTV[isa.FP])
	for _, p := range sm.pipes {
		p.Gate().Tick(p.Busy(now))
	}

	// Feed per-cycle critical-wakeup deltas to the adaptive windows.
	curINT := sumCriticals(sm.intPipes)
	curFP := sumCriticals(sm.fpPipes)
	sm.intAdapt.Tick(int(curINT - sm.prevCritINT))
	sm.fpAdapt.Tick(int(curFP - sm.prevCritFP))
	sm.prevCritINT = curINT
	sm.prevCritFP = curFP
}

// sumCriticals totals critical wakeups across a class's pipes.
func sumCriticals(pipes []*Pipe) uint64 {
	var n uint64
	for _, p := range pipes {
		n += p.Gate().Stats().CriticalWakeups
	}
	return n
}

// finish closes open idle runs so histograms account for every cycle.
func (sm *SM) finish() {
	for _, p := range sm.pipes {
		p.Gate().Finish()
	}
}

// allPipes returns every pipe of the SM in the fixed reporting order.
func (sm *SM) allPipes() []*Pipe { return sm.pipes }

// Stats returns the SM's counters.
func (sm *SM) Stats() SMStats { return sm.st }
