package sim

import (
	"fmt"

	"warpedgates/internal/config"
	"warpedgates/internal/gating"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/mem"
	"warpedgates/internal/sched"
	"warpedgates/internal/stats"
)

// retireRingSize bounds how far in the future a writeback can be scheduled;
// it must exceed the worst-case memory completion horizon (DRAM latency plus
// maximal channel queueing). Power of two for cheap masking.
const retireRingSize = 1 << 14

// retireEvent is a scheduled writeback: clear dstMask in the warp's
// scoreboard, guarded by the warp-slot generation to survive slot reuse.
type retireEvent struct {
	warp    *Warp
	gen     uint32
	dstMask uint64
}

// SMStats aggregates the per-SM counters the figures are computed from.
type SMStats struct {
	Cycles          int64
	IssuedByClass   [isa.NumClasses]uint64
	IssuedTotal     uint64
	ActiveWarpSum   uint64 // sum over cycles of active-set size (Fig. 5b avg)
	ActiveWarpMax   int    // peak active-set size (Fig. 5b max)
	IssueStallsMem  uint64 // candidate failed on MSHR/port hazard
	IssueStallsGate uint64 // candidate failed because all target pipes were gated
	CTAsCompleted   int
}

// SM is one streaming multiprocessor: warp table, dual schedulers, execution
// pipes with per-domain gating controllers, and a private memory port.
type SM struct {
	id  int
	cfg config.Config

	kernel *kernels.Kernel
	warps  []*Warp

	// ctasRemaining counts CTAs not yet launched; ctaLive tracks live warps
	// per resident CTA slot so finished CTAs can be replaced.
	ctasRemaining int
	ctaLive       []int
	warpSeq       uint64 // monotonically increasing warp launch counter

	policies []sched.Policy
	gatesPol *sched.GATES // non-nil when the GATES policy is active

	intPipes []*Pipe
	fpPipes  []*Pipe
	sfuPipe  *Pipe
	ldstPipe *Pipe

	intCoord *gating.Coordinator
	fpCoord  *gating.Coordinator
	intAdapt *gating.AdaptiveIdleDetect
	fpAdapt  *gating.AdaptiveIdleDetect

	memPort   *mem.SMPort
	coalescer *mem.Coalescer

	retireRing [retireRingSize][]retireEvent

	// candBuf holds reusable candidate slices, one per scheduler slot.
	candBuf [][]sched.Candidate
	// memBlocked marks that a global access already failed MSHR admission
	// this cycle; the MSHR is SM-wide, so further LDST candidates are
	// skipped until next cycle.
	memBlocked bool

	benchSeed uint64
	st        SMStats
	smState   sched.SMState
	tracer    IssueTracer
	probe     CycleProbe
	laneBuf   []LaneState

	// prevCritINT/FP hold the previous cumulative critical-wakeup counts so
	// the adaptive mechanism can be fed per-cycle deltas.
	prevCritINT uint64
	prevCritFP  uint64
}

// newSM builds one SM with its pipes, controllers and scheduler slots.
func newSM(id int, cfg config.Config, k *kernels.Kernel, gpuMem *mem.GPUMem, benchSeed uint64) *SM {
	sm := &SM{
		id:        id,
		cfg:       cfg,
		kernel:    k,
		memPort:   mem.NewSMPort(cfg, gpuMem),
		coalescer: mem.NewCoalescer(),
		benchSeed: benchSeed,
	}

	// Adaptive idle-detect state is per instruction type (paper §5.1:
	// "different idle-detect values for INT and FP").
	sm.intAdapt = gating.NewAdaptiveIdleDetect(cfg)
	sm.fpAdapt = gating.NewAdaptiveIdleDetect(cfg)

	mkCtrl := func(kind config.GatingKind, idle func() int) *gating.Controller {
		return gating.NewController(kind, idle, cfg.BreakEven, cfg.WakeupDelay)
	}
	// SFU and LDST are gated conventionally whenever gating is enabled: the
	// paper's blackout machinery targets the clustered INT/FP CUDA cores
	// (§3: conventional gating suffices for the rare SFU traffic). The
	// BlackoutAux extension applies Naive Blackout there as well (single
	// clusters cannot be coordinated).
	auxKind := cfg.Gating
	if auxKind == config.GateNaiveBlackout || auxKind == config.GateCoordBlackout {
		if cfg.BlackoutAux {
			auxKind = config.GateNaiveBlackout
		} else {
			auxKind = config.GateConventional
		}
	}
	fixedIdle := func() int { return cfg.IdleDetect }

	var intCtrls, fpCtrls []*gating.Controller
	for c := 0; c < cfg.NumSPClusters; c++ {
		ic := mkCtrl(cfg.Gating, sm.intAdapt.Value)
		fc := mkCtrl(cfg.Gating, sm.fpAdapt.Value)
		intCtrls = append(intCtrls, ic)
		fpCtrls = append(fpCtrls, fc)
		sm.intPipes = append(sm.intPipes, newPipe(isa.INT, c, ic))
		sm.fpPipes = append(sm.fpPipes, newPipe(isa.FP, c, fc))
	}
	sm.intCoord = gating.NewCoordinator(cfg.Gating, intCtrls...)
	sm.fpCoord = gating.NewCoordinator(cfg.Gating, fpCtrls...)
	sm.sfuPipe = newPipe(isa.SFU, 0, mkCtrl(auxKind, fixedIdle))
	sm.ldstPipe = newPipe(isa.LDST, 0, mkCtrl(auxKind, fixedIdle))

	// Scheduler slots. GATES shares one priority register per SM (Fig. 7),
	// so a single policy instance serves both slots.
	switch cfg.Scheduler {
	case config.SchedGATES:
		g := sched.NewGATES()
		g.MaxHold = cfg.GATESMaxHold
		sm.gatesPol = g
		for i := 0; i < cfg.NumSchedulers; i++ {
			sm.policies = append(sm.policies, g)
		}
	case config.SchedLRR:
		for i := 0; i < cfg.NumSchedulers; i++ {
			sm.policies = append(sm.policies, sched.NewLRR())
		}
	default:
		for i := 0; i < cfg.NumSchedulers; i++ {
			sm.policies = append(sm.policies, sched.NewTwoLevel())
		}
	}

	// Warp table: enough slots for the resident CTAs, capped by the SM limit.
	conc := k.MaxConcurrentCTAs
	if max := cfg.MaxWarpsPerSM / k.WarpsPerCTA; conc > max && max > 0 {
		conc = max
	}
	if conc == 0 {
		conc = 1
	}
	nWarps := conc * k.WarpsPerCTA
	if nWarps > cfg.MaxWarpsPerSM {
		nWarps = cfg.MaxWarpsPerSM
	}
	sm.warps = make([]*Warp, nWarps)
	for i := range sm.warps {
		sm.warps[i] = &Warp{id: i, state: WarpIdleSlot}
	}
	sm.ctaLive = make([]int, conc)
	sm.ctasRemaining = k.CTAsPerSM
	sm.smState.NumWarps = nWarps

	// Launch the first wave.
	for slot := 0; slot < conc; slot++ {
		sm.launchCTA(slot)
	}
	return sm
}

// launchCTA fills CTA slot with fresh warps, if work remains.
func (sm *SM) launchCTA(slot int) {
	if sm.ctasRemaining <= 0 {
		return
	}
	sm.ctasRemaining--
	w0 := slot * sm.kernel.WarpsPerCTA
	n := sm.kernel.WarpsPerCTA
	for i := 0; i < n && w0+i < len(sm.warps); i++ {
		w := sm.warps[w0+i]
		seed := stats.CombineSeeds(sm.benchSeed, uint64(sm.id)<<32, sm.warpSeq)
		w.reset(sm.kernel, slot, sm.warpSeq, seed)
		sm.warpSeq++
		sm.ctaLive[slot]++
	}
}

// done reports whether the SM has drained all its work.
func (sm *SM) done() bool {
	if sm.ctasRemaining > 0 {
		return false
	}
	for _, w := range sm.warps {
		if w.live() {
			return false
		}
	}
	return true
}

// step advances the SM by one cycle.
func (sm *SM) step(now int64) {
	sm.st.Cycles++
	sm.memPort.Expire(now)
	sm.writeback(now)
	sm.replaceCTAs()
	sm.refreshCounters()
	if sm.gatesPol != nil {
		sm.gatesPol.UpdatePriority(&sm.smState)
	}
	sm.issue(now)
	sm.tickGating(now)
	if sm.probe != nil {
		sm.laneBuf = sm.laneBuf[:0]
		for _, p := range sm.allPipes() {
			sm.laneBuf = append(sm.laneBuf, LaneState{
				Class:   p.Class(),
				Cluster: p.Cluster(),
				Busy:    p.Busy(now),
				State:   p.Gate().State(),
			})
		}
		sm.probe(sm.id, now, sm.laneBuf)
	}
}

// writeback retires all operations completing at cycle now.
func (sm *SM) writeback(now int64) {
	bucket := &sm.retireRing[now&(retireRingSize-1)]
	for _, ev := range *bucket {
		if ev.gen != ev.warp.gen {
			continue // slot was recycled; the old warp is gone
		}
		ev.warp.clearPending(ev.dstMask)
	}
	*bucket = (*bucket)[:0]
}

// scheduleRetire books a future writeback.
func (sm *SM) scheduleRetire(at int64, w *Warp, dstMask uint64) {
	if dstMask == 0 {
		return
	}
	delta := at - (at & ^int64(retireRingSize-1))
	_ = delta
	sm.retireRing[at&(retireRingSize-1)] = append(sm.retireRing[at&(retireRingSize-1)],
		retireEvent{warp: w, gen: w.gen, dstMask: dstMask})
}

// replaceCTAs launches queued CTAs into drained slots.
func (sm *SM) replaceCTAs() {
	if sm.ctasRemaining <= 0 {
		return
	}
	for slot := range sm.ctaLive {
		if sm.ctaLive[slot] != 0 {
			continue
		}
		sm.launchCTA(slot)
	}
}

// refreshCounters recomputes the scheduler-visible per-type counters (the
// paper's ACTV and RDY registers) and samples occupancy statistics.
func (sm *SM) refreshCounters() {
	var actv, rdy [isa.NumClasses]int
	active := 0
	for _, w := range sm.warps {
		if w.state != WarpActive {
			continue
		}
		active++
		in := w.current()
		if in == nil {
			continue
		}
		c := in.Class()
		actv[c]++
		if w.ready() {
			rdy[c]++
		}
	}
	sm.smState.ACTV = actv
	sm.smState.RDY = rdy
	sm.smState.AllBlackout[isa.INT] = sm.intCoord.AllInBlackout()
	sm.smState.AllBlackout[isa.FP] = sm.fpCoord.AllInBlackout()
	sm.smState.AllBlackout[isa.SFU] = false
	sm.smState.AllBlackout[isa.LDST] = false

	sm.st.ActiveWarpSum += uint64(active)
	if active > sm.st.ActiveWarpMax {
		sm.st.ActiveWarpMax = active
	}
}

// issue runs the SM's scheduler slots for one cycle. Warps are statically
// partitioned between the slots by warp index, as in Fermi.
func (sm *SM) issue(now int64) {
	sm.memBlocked = false
	nsched := len(sm.policies)
	if sm.candBuf == nil {
		sm.candBuf = make([][]sched.Candidate, nsched)
	}
	for s := 0; s < nsched; s++ {
		cands := sm.candidates(s, nsched)
		if len(cands) == 0 {
			continue
		}
		pol := sm.policies[s]
		pol.Arrange(cands, &sm.smState)
		for _, c := range cands {
			if sm.tryIssue(now, c) {
				pol.OnIssue(c)
				break
			}
		}
	}
}

// candidates collects ready warps belonging to scheduler slot s into the
// slot's reusable buffer.
func (sm *SM) candidates(s, nsched int) []sched.Candidate {
	out := sm.candBuf[s][:0]
	for i := s; i < len(sm.warps); i += nsched {
		w := sm.warps[i]
		if !w.ready() {
			continue
		}
		out = append(out, sched.Candidate{WarpIdx: i, Class: w.current().Class()})
	}
	sm.candBuf[s] = out
	return out
}

// tryIssue attempts to issue warp c's next instruction; it returns false on
// structural or gating hazards, in which case the arbiter tries the next
// candidate (the heterogeneity that hides Blackout's latency, §5).
func (sm *SM) tryIssue(now int64, c sched.Candidate) bool {
	w := sm.warps[c.WarpIdx]
	in := w.current()
	if in == nil {
		return false
	}
	switch in.Class() {
	case isa.INT:
		return sm.issueALU(now, w, in, sm.intPipes)
	case isa.FP:
		return sm.issueALU(now, w, in, sm.fpPipes)
	case isa.SFU:
		return sm.issueSingle(now, w, in, sm.sfuPipe)
	case isa.LDST:
		return sm.issueMemory(now, w, in)
	}
	panic(fmt.Sprintf("sim: unknown class %v", in.Class()))
}

// issueALU places an INT/FP instruction on one of the class's clusters.
// Cluster preference is static (lowest index first): consolidating work onto
// one cluster instead of balancing it coalesces the other cluster's idle
// cycles into long gateable runs — the asymmetry Coordinated Blackout is
// built around (one cluster powered and serving work, the peer sleeping).
// When every cluster is gated or port-busy, a wakeup demand is raised on the
// most wakeable gated cluster.
func (sm *SM) issueALU(now int64, w *Warp, in *isa.Instr, pipes []*Pipe) bool {
	for _, p := range pipes {
		if p.CanStart(now) {
			sm.commitIssue(now, w, in, p, in.InitiationInterval(), in.Latency())
			return true
		}
	}
	sm.noteGateStall()
	return false
}

// issueSingle places an instruction on a single-cluster pipe (SFU).
func (sm *SM) issueSingle(now int64, w *Warp, in *isa.Instr, p *Pipe) bool {
	if p.CanStart(now) {
		sm.commitIssue(now, w, in, p, in.InitiationInterval(), in.Latency())
		return true
	}
	sm.noteGateStall()
	return false
}

// issueMemory handles LDST instructions: coalescing, MSHR admission, and
// completion scheduling through the memory subsystem.
func (sm *SM) issueMemory(now int64, w *Warp, in *isa.Instr) bool {
	p := sm.ldstPipe
	if !p.CanStart(now) {
		sm.noteGateStall()
		return false
	}
	if in.Space == isa.SpaceShared {
		complete := sm.memPort.SharedAccess(now)
		sm.commitIssue(now, w, in, p, in.InitiationInterval(), in.Latency())
		if isa.IsLoad(in.Op) {
			sm.scheduleRetire(complete, w, 1<<uint(in.Dst))
		}
		return true
	}
	// Global/local access: coalesce (cached across structural retries) then
	// check MSHR admission.
	if sm.memBlocked {
		sm.st.IssueStallsMem++
		return false
	}
	if !w.memLinesValid {
		base := w.globalSeq*97 + w.memCounter
		w.memLines = append(w.memLines[:0],
			sm.coalescer.Transactions(in.Pattern, in.Region, base, sm.kernel.WorkingSetLines, w.rng)...)
		w.memLinesValid = true
	}
	lines := w.memLines
	if !sm.memPort.CanIssueGlobal(lines) {
		sm.st.IssueStallsMem++
		sm.memBlocked = true
		return false
	}
	res := sm.memPort.GlobalAccess(now, lines)
	w.memCounter++
	w.memLinesValid = false
	ii := res.Transactions
	if ii < 1 {
		ii = 1
	}
	latency := in.Latency() + ii - 1
	sm.commitIssue(now, w, in, p, ii, latency)
	if isa.IsLoad(in.Op) {
		sm.scheduleRetire(res.CompleteAt, w, 1<<uint(in.Dst))
	}
	return true
}

// commitIssue performs the bookkeeping common to every successful issue.
// Non-memory register results retire after the op latency; memory loads are
// scheduled separately by the caller (their latency comes from the memory
// model), so here only ALU/SFU destinations are booked.
func (sm *SM) commitIssue(now int64, w *Warp, in *isa.Instr, p *Pipe, ii, latency int) {
	dstMask := in.DstMask()
	finished := w.advance(in)
	if dstMask != 0 && !isa.IsMemory(in.Op) {
		sm.scheduleRetire(now+int64(latency), w, dstMask)
	}
	p.Start(now, in.Op, ii, latency)
	if sm.tracer != nil {
		sm.tracer(sm.id, now, w.id, in.Class(), p.Cluster())
	}
	sm.st.IssuedByClass[in.Class()]++
	sm.st.IssuedTotal++
	if finished {
		sm.ctaLive[w.ctaSlot]--
		if sm.ctaLive[w.ctaSlot] < 0 {
			panic("sim: CTA live count underflow")
		}
		if sm.ctaLive[w.ctaSlot] == 0 {
			sm.st.CTAsCompleted++
		}
	} else {
		w.refreshState()
	}
}

// noteGateStall records that a ready instruction could not issue because
// its pipes were gated or port-busy (statistics only; wakeup demand itself
// is driven by the per-class ready-detect logic in signalReadyDemand,
// matching the paper's Figure 7 where the power-gating controller watches
// the ready counters, not the issue arbiter).
func (sm *SM) noteGateStall() {
	sm.st.IssueStallsGate++
}

// signalReadyDemand implements the ready-instruction detect logic of
// conventional power gating (Hu et al., and the paper's Fig. 7 PG_logic):
// whenever at least one ready instruction of a class exists and no powered
// pipe of the class can serve it, a wakeup demand is raised on the most
// wakeable gated pipe (compensated first, then — meaningful only under
// conventional rules — uncompensated). Exactly one pipe per class receives
// the demand so wakeup statistics are not double counted. Because demand is
// derived from readiness rather than from arbiter walk order, a unit whose
// type is currently de-prioritized by GATES starts waking while the other
// type's phase is still draining, hiding the wakeup delay.
func (sm *SM) signalReadyDemand(rdy [isa.NumClasses]int, class isa.Class, pipes []*Pipe) {
	if rdy[class] == 0 {
		return
	}
	// A unit wakes only when the powered pipes of its class cannot serve
	// the ready work: the wanted pipe count is bounded by both the ready
	// count and the SM's issue width. Without this bound the ready-detect
	// logic thrashes the sleep switch (a gated cluster would wake on every
	// cycle any warp of its type is ready, even with a powered peer
	// serving it) and every technique's savings collapse below zero.
	want := rdy[class]
	if w := len(sm.policies); want > w {
		want = w
	}
	if want > len(pipes) {
		want = len(pipes)
	}
	serving := 0
	for _, p := range pipes {
		if st := p.Gate().State(); st == gating.StActive || st == gating.StWakeup {
			serving++
		}
	}
	if serving >= want {
		return
	}
	var fallback *Pipe
	for _, p := range pipes {
		switch p.Gate().State() {
		case gating.StCompensated:
			p.Gate().RequestIssue()
			return
		case gating.StUncompensated:
			if fallback == nil {
				fallback = p
			}
		}
	}
	if fallback != nil {
		fallback.Gate().RequestIssue()
	}
}

// tickGating advances every gating controller and the adaptive windows.
func (sm *SM) tickGating(now int64) {
	// Re-derive the ready counters after issue: a warp that just issued is
	// no longer waiting, and must not wake a gated unit.
	var rdy [isa.NumClasses]int
	for _, w := range sm.warps {
		if w.ready() {
			rdy[w.current().Class()]++
		}
	}
	sm.signalReadyDemand(rdy, isa.INT, sm.intPipes)
	sm.signalReadyDemand(rdy, isa.FP, sm.fpPipes)
	sm.signalReadyDemand(rdy, isa.SFU, []*Pipe{sm.sfuPipe})
	sm.signalReadyDemand(rdy, isa.LDST, []*Pipe{sm.ldstPipe})
	sm.intCoord.PreTick(sm.smState.ACTV[isa.INT])
	sm.fpCoord.PreTick(sm.smState.ACTV[isa.FP])
	for _, p := range sm.intPipes {
		p.Gate().Tick(p.Busy(now))
	}
	for _, p := range sm.fpPipes {
		p.Gate().Tick(p.Busy(now))
	}
	sm.sfuPipe.Gate().Tick(sm.sfuPipe.Busy(now))
	sm.ldstPipe.Gate().Tick(sm.ldstPipe.Busy(now))

	// Feed per-cycle critical-wakeup deltas to the adaptive windows.
	curINT := sumCriticals(sm.intPipes)
	curFP := sumCriticals(sm.fpPipes)
	sm.intAdapt.Tick(int(curINT - sm.prevCritINT))
	sm.fpAdapt.Tick(int(curFP - sm.prevCritFP))
	sm.prevCritINT = curINT
	sm.prevCritFP = curFP
}

// sumCriticals totals critical wakeups across a class's pipes.
func sumCriticals(pipes []*Pipe) uint64 {
	var n uint64
	for _, p := range pipes {
		n += p.Gate().Stats().CriticalWakeups
	}
	return n
}

// finish closes open idle runs so histograms account for every cycle.
func (sm *SM) finish() {
	for _, p := range sm.allPipes() {
		p.Gate().Finish()
	}
}

// allPipes returns every pipe of the SM.
func (sm *SM) allPipes() []*Pipe {
	out := make([]*Pipe, 0, len(sm.intPipes)+len(sm.fpPipes)+2)
	out = append(out, sm.intPipes...)
	out = append(out, sm.fpPipes...)
	out = append(out, sm.sfuPipe, sm.ldstPipe)
	return out
}

// Stats returns the SM's counters.
func (sm *SM) Stats() SMStats { return sm.st }
