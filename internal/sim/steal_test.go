package sim

import (
	"reflect"
	"sync/atomic"
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
)

// countdownPool is a WorkerPool stub that refuses its first `refuse`
// TryAcquire calls and then grants from a fixed token balance — forcing the
// engine to grow its worker set mid-run rather than at launch. It counts
// grants and releases so tests can prove the lease accounting balances.
type countdownPool struct {
	refuse   atomic.Int64
	tokens   atomic.Int64
	granted  atomic.Int64
	released atomic.Int64
}

func newCountdownPool(refuse, tokens int) *countdownPool {
	p := &countdownPool{}
	p.refuse.Store(int64(refuse))
	p.tokens.Store(int64(tokens))
	return p
}

func (p *countdownPool) TryAcquire(max int) int {
	if p.refuse.Add(-1) >= 0 {
		return 0
	}
	for {
		cur := p.tokens.Load()
		n := int64(max)
		if n > cur {
			n = cur
		}
		if n <= 0 {
			return 0
		}
		if p.tokens.CompareAndSwap(cur, cur-n) {
			p.granted.Add(n)
			return int(n)
		}
	}
}

func (p *countdownPool) Release(n int) { p.released.Add(int64(n)) }

// poolDigests is runDigests with a WorkerPool installed before the run.
func poolDigests(t *testing.T, cfg config.Config, k *kernels.Kernel, pool WorkerPool) (*Report, []uint64) {
	t.Helper()
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatalf("NewGPU: %v", err)
	}
	gpu.SetWorkerPool(pool)
	probeD := make([]uint64, cfg.NumSMs)
	for i := range probeD {
		probeD[i] = 14695981039346656037
	}
	gpu.SetCycleProbe(func(smID int, cycle int64, lanes []LaneState) {
		h := probeD[smID]
		h = fnvMix(h, uint64(cycle))
		for _, l := range lanes {
			h = fnvMix(h, uint64(l.Class)<<32|uint64(l.Cluster))
			b := uint64(0)
			if l.Busy {
				b = 1
			}
			h = fnvMix(h, b<<8|uint64(l.State))
		}
		probeD[smID] = h
	})
	return gpu.Run(), probeD
}

// TestShardStealDisabledMatchesSerial pins the steal opt-out: with
// DisableShardSteal set the engine falls back to fixed shards and must still
// reproduce the serial engine's reports and per-SM streams at every worker
// count. (Stealing itself — the default — is covered by every other parallel
// test.)
func TestShardStealDisabledMatchesSerial(t *testing.T) {
	for _, bench := range []string{"hotspot", "bfs"} {
		k := kernels.MustBenchmark(bench).Scale(0.08)
		for _, noFF := range []bool{false, true} {
			cfg := config.Small()
			cfg.NumSMs = 4
			cfg.Scheduler = config.SchedGATES
			cfg.Gating = config.GateCoordBlackout
			cfg.AdaptiveIdleDetect = true
			cfg.DisableFastForward = noFF
			cfg.MaxCycles = 30000
			cfg.IntraRunWorkers = 1
			wantRep, wantProbe, wantIssue := runDigests(t, cfg, k)
			for _, workers := range []int{2, 3, 4} {
				pcfg := cfg
				pcfg.IntraRunWorkers = workers
				pcfg.DisableShardSteal = true
				gotRep, gotProbe, gotIssue := runDigests(t, pcfg, k)
				if !sameReport(wantRep, gotRep) {
					t.Errorf("%s noFF=%v workers=%d steal-off: report diverged\nserial: %v\ngot:    %v",
						bench, noFF, workers, wantRep, gotRep)
				}
				if !reflect.DeepEqual(wantProbe, gotProbe) || !reflect.DeepEqual(wantIssue, gotIssue) {
					t.Errorf("%s noFF=%v workers=%d steal-off: streams diverged", bench, noFF, workers)
				}
			}
		}
	}
}

// TestWorkerGrowthMidRunMatchesSerial pins tail reallocation: a pool that
// refuses the first several polls and then grants workers forces the engine
// to grow its worker set at a compute-window boundary mid-run. The result
// must still match the serial engine byte for byte, the growth must actually
// happen (granted > 0), and every granted lease must be returned. Covered
// with stealing on and off (growth recomputes static shard splits) and from
// a one-worker start (a pool-equipped run uses the parallel engine even at
// IntraRunWorkers=1 so it can absorb grants).
func TestWorkerGrowthMidRunMatchesSerial(t *testing.T) {
	for _, bench := range []string{"hotspot", "bfs"} {
		k := kernels.MustBenchmark(bench).Scale(0.08)
		scfg := config.Small()
		scfg.NumSMs = 4
		scfg.Scheduler = config.SchedGATES
		scfg.Gating = config.GateCoordBlackout
		scfg.AdaptiveIdleDetect = true
		scfg.DisableFastForward = true // stepped loop: many compute windows to grow at
		scfg.MaxCycles = 30000
		scfg.IntraRunWorkers = 1
		wantRep, wantProbe, _ := runDigests(t, scfg, k)
		for _, tc := range []struct {
			name     string
			workers  int
			stealOff bool
			refuse   int
			tokens   int
		}{
			{"grow-2to4-steal", 2, false, 5, 8},
			{"grow-2to4-static", 2, true, 5, 8},
			{"grow-1to4-steal", 1, false, 3, 8},
			{"late-grow", 2, false, 40, 8},
		} {
			cfg := scfg
			cfg.IntraRunWorkers = tc.workers
			cfg.DisableShardSteal = tc.stealOff
			pool := newCountdownPool(tc.refuse, tc.tokens)
			gotRep, gotProbe := poolDigests(t, cfg, k, pool)
			if !sameReport(wantRep, gotRep) {
				t.Errorf("%s %s: report diverged\nserial: %v\ngot:    %v", bench, tc.name, wantRep, gotRep)
			}
			if !reflect.DeepEqual(wantProbe, gotProbe) {
				t.Errorf("%s %s: probe streams diverged", bench, tc.name)
			}
			if pool.granted.Load() == 0 {
				t.Errorf("%s %s: pool never granted a worker — growth path not exercised", bench, tc.name)
			}
			if g, r := pool.granted.Load(), pool.released.Load(); g != r {
				t.Errorf("%s %s: lease leak: granted %d, released %d", bench, tc.name, g, r)
			}
			if got := int64(tc.tokens) - pool.tokens.Load(); got != pool.granted.Load() {
				t.Errorf("%s %s: token balance off: drained %d, granted %d", bench, tc.name, got, pool.granted.Load())
			}
		}
	}
}
