package sim

import (
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
)

// TestRelaxedModeCorpusErrorBound sweeps benchmark × scheduler/gating combos
// at the largest legal relaxation windows and measures the cycle-count error
// against the exact engine; the measured corpus-wide bound is recorded in
// EXPERIMENTS.md. With the bank phase's cycle-ordered merge the observed
// error is zero on the shipped machine configs — the shortest device fill
// (L2HitLatency = 120) outruns any legal window (R <= L1HitLatency = 28), so
// no completion ever lands inside the window that staged it and relaxed runs
// reproduce the serial device order op for op. The assertion leaves headroom
// (0.5%) for future machine configs where a fill could return in-window; run
// with -v for the per-cell table.
func TestRelaxedModeCorpusErrorBound(t *testing.T) {
	type combo struct {
		sched config.SchedulerKind
		gate  config.GatingKind
	}
	combos := []combo{
		{config.SchedLRR, config.GateNone},
		{config.SchedTwoLevel, config.GateConventional},
		{config.SchedGATES, config.GateCoordBlackout},
	}
	var worst float64
	for _, bench := range []string{"nw", "hotspot", "mri", "bfs", "kmeans"} {
		for ci, cb := range combos {
			k := kernels.MustBenchmark(bench).Scale(0.08)
			cfg := config.Small()
			cfg.NumSMs = 4
			cfg.Scheduler = cb.sched
			cfg.Gating = cb.gate
			cfg.AdaptiveIdleDetect = ci == 2
			cfg.MaxCycles = 400000
			cfg.IntraRunWorkers = 1
			exactRep, _, _ := runDigests(t, cfg, k)
			for _, relax := range []int{8, 28} {
				rcfg := cfg
				rcfg.EpochRelaxedCycles = relax
				rep, _, _ := runDigests(t, rcfg, k)
				if rep.RanOut || exactRep.RanOut {
					t.Fatalf("%s combo %d ran out", bench, ci)
				}
				diff := float64(rep.Cycles-exactRep.Cycles) / float64(exactRep.Cycles)
				if diff < 0 {
					diff = -diff
				}
				if diff > worst {
					worst = diff
				}
				t.Logf("%s sched=%d gate=%d R=%d: exact=%d relaxed=%d err=%.4f%%",
					bench, cb.sched, cb.gate, relax, exactRep.Cycles, rep.Cycles, diff*100)
			}
		}
	}
	t.Logf("worst |dCycles|/Cycles = %.4f%%", worst*100)
	if worst > 0.005 {
		t.Errorf("relaxed-mode corpus error %.4f%% exceeds the 0.5%% bound", worst*100)
	}
}
