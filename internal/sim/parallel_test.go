package sim

import (
	"reflect"
	"testing"
	"testing/quick"

	"warpedgates/internal/config"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
)

// fnvMix folds v into an FNV-1a style running hash.
func fnvMix(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

// runDigests executes cfg/k to completion and returns the report plus
// per-SM digests of the full probe and issue-trace streams. Per-SM digests
// (rather than one global hash) make the oracle order-independent across SMs
// — the parallel engine interleaves different SMs' callbacks arbitrarily but
// must keep each SM's own stream identical — and each slot is only written by
// the goroutine stepping that SM, so the digest slices need no locking.
func runDigests(t *testing.T, cfg config.Config, k *kernels.Kernel) (*Report, []uint64, []uint64) {
	t.Helper()
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatalf("NewGPU: %v", err)
	}
	probeD := make([]uint64, cfg.NumSMs)
	issueD := make([]uint64, cfg.NumSMs)
	for i := range probeD {
		probeD[i] = 14695981039346656037
		issueD[i] = 14695981039346656037
	}
	gpu.SetCycleProbe(func(smID int, cycle int64, lanes []LaneState) {
		h := probeD[smID]
		h = fnvMix(h, uint64(cycle))
		for _, l := range lanes {
			h = fnvMix(h, uint64(l.Class)<<32|uint64(l.Cluster))
			b := uint64(0)
			if l.Busy {
				b = 1
			}
			h = fnvMix(h, b<<8|uint64(l.State))
		}
		probeD[smID] = h
	})
	gpu.SetIssueTracer(func(smID int, cycle int64, warpIdx int, class isa.Class, cluster int) {
		h := issueD[smID]
		h = fnvMix(h, uint64(cycle))
		h = fnvMix(h, uint64(warpIdx)<<16|uint64(class)<<8|uint64(cluster))
		issueD[smID] = h
	})
	return gpu.Run(), probeD, issueD
}

// sameReport compares two reports ignoring the config they ran under (the
// worker count is the one field allowed to differ).
func sameReport(a, b *Report) bool {
	ca, cb := a.Config, b.Config
	a.Config, b.Config = config.Config{}, config.Config{}
	eq := reflect.DeepEqual(a, b)
	a.Config, b.Config = ca, cb
	return eq
}

// TestParallelEngineMatchesSerial pins the tentpole contract on a fixed
// matrix: every report field, probe stream and issue stream of the parallel
// engine is identical to the serial engine's, at several worker counts (even
// and odd shard splits, one-SM-per-worker), with the idle fast-forward both
// on and off.
func TestParallelEngineMatchesSerial(t *testing.T) {
	type tech struct {
		name  string
		sched config.SchedulerKind
		gate  config.GatingKind
		adapt bool
	}
	techs := []tech{
		{"baseline", config.SchedTwoLevel, config.GateNone, false},
		{"warpedgates", config.SchedGATES, config.GateCoordBlackout, true},
	}
	for _, bench := range []string{"hotspot", "bfs"} {
		k := kernels.MustBenchmark(bench).Scale(0.08)
		for _, tc := range techs {
			for _, noFF := range []bool{false, true} {
				cfg := config.Small()
				cfg.NumSMs = 4
				cfg.Scheduler = tc.sched
				cfg.Gating = tc.gate
				cfg.AdaptiveIdleDetect = tc.adapt
				cfg.DisableFastForward = noFF
				cfg.MaxCycles = 30000
				cfg.IntraRunWorkers = 1
				wantRep, wantProbe, wantIssue := runDigests(t, cfg, k)
				for _, workers := range []int{2, 3, 4} {
					pcfg := cfg
					pcfg.IntraRunWorkers = workers
					gotRep, gotProbe, gotIssue := runDigests(t, pcfg, k)
					if !sameReport(wantRep, gotRep) {
						t.Errorf("%s/%s noFF=%v workers=%d: report diverged\nserial:   %v\nparallel: %v",
							bench, tc.name, noFF, workers, wantRep, gotRep)
					}
					if !reflect.DeepEqual(wantProbe, gotProbe) {
						t.Errorf("%s/%s noFF=%v workers=%d: probe streams diverged", bench, tc.name, noFF, workers)
					}
					if !reflect.DeepEqual(wantIssue, gotIssue) {
						t.Errorf("%s/%s noFF=%v workers=%d: issue streams diverged", bench, tc.name, noFF, workers)
					}
				}
			}
		}
	}
}

// TestBatchedEngineInvariantToTuning pins the tentpole's tuning contract:
// batch size and bank count are pure performance knobs — any (workers, batch,
// banks) combination in exact mode produces the serial engine's reports and
// per-SM streams byte for byte, fast-forward on or off. Workers cover the
// degenerate single-goroutine case, an uneven split, and one-SM-per-worker
// (NumSMs); batch 1 degenerates to per-cycle windows, 128 is the default, 512
// exceeds every natural window. Bank 1 degenerates to the unified device.
func TestBatchedEngineInvariantToTuning(t *testing.T) {
	for _, bench := range []string{"hotspot", "bfs"} {
		k := kernels.MustBenchmark(bench).Scale(0.08)
		for _, noFF := range []bool{false, true} {
			cfg := config.Small()
			cfg.NumSMs = 4
			cfg.Scheduler = config.SchedGATES
			cfg.Gating = config.GateCoordBlackout
			cfg.AdaptiveIdleDetect = true
			cfg.DisableFastForward = noFF
			cfg.MaxCycles = 30000
			cfg.IntraRunWorkers = 1
			wantRep, wantProbe, wantIssue := runDigests(t, cfg, k)
			for _, workers := range []int{1, 2, 3, 4} {
				for _, tune := range []struct{ batch, banks int }{
					{1, 1}, {1, 8}, {7, 2}, {64, 4}, {512, 8},
				} {
					pcfg := cfg
					pcfg.IntraRunWorkers = workers
					pcfg.BatchCycles = tune.batch
					pcfg.MemBanks = tune.banks
					gotRep, gotProbe, gotIssue := runDigests(t, pcfg, k)
					if !sameReport(wantRep, gotRep) {
						t.Errorf("%s noFF=%v workers=%d batch=%d banks=%d: report diverged\nserial:   %v\ngot:      %v",
							bench, noFF, workers, tune.batch, tune.banks, wantRep, gotRep)
					}
					if !reflect.DeepEqual(wantProbe, gotProbe) || !reflect.DeepEqual(wantIssue, gotIssue) {
						t.Errorf("%s noFF=%v workers=%d batch=%d banks=%d: streams diverged",
							bench, noFF, workers, tune.batch, tune.banks)
					}
				}
			}
		}
	}
}

// TestRelaxedModeBoundedAndDeterministic pins the opt-in relaxed engine's two
// contracts. Determinism: for a given EpochRelaxedCycles the result is a
// function of the window length alone — every worker count (including one)
// reproduces it byte for byte. Bounded error: relaxation reorders device
// accesses only within an R-cycle window, so the workload still executes in
// full (same instructions issued, same CTAs completed) and the cycle count
// stays within a few percent of exact — the corpus-wide bound is measured and
// recorded in EXPERIMENTS.md; the 5% asserted here is a generous ceiling.
func TestRelaxedModeBoundedAndDeterministic(t *testing.T) {
	for _, bench := range []string{"hotspot", "bfs", "kmeans"} {
		k := kernels.MustBenchmark(bench).Scale(0.08)
		cfg := config.Small()
		cfg.NumSMs = 4
		cfg.Scheduler = config.SchedGATES
		cfg.Gating = config.GateCoordBlackout
		cfg.AdaptiveIdleDetect = true
		cfg.MaxCycles = 200000 // ample: relaxed runs must drain, not run out
		cfg.IntraRunWorkers = 1
		exactRep, _, _ := runDigests(t, cfg, k)
		for _, relax := range []int{1, 8, 28} {
			rcfg := cfg
			rcfg.EpochRelaxedCycles = relax
			baseRep, baseProbe, baseIssue := runDigests(t, rcfg, k)
			for _, workers := range []int{2, 4} {
				wcfg := rcfg
				wcfg.IntraRunWorkers = workers
				rep, probe, issue := runDigests(t, wcfg, k)
				if !sameReport(baseRep, rep) {
					t.Errorf("%s R=%d: workers=%d relaxed run differs from workers=1\none: %v\ntwo: %v",
						bench, relax, workers, baseRep, rep)
				}
				if !reflect.DeepEqual(baseProbe, probe) || !reflect.DeepEqual(baseIssue, issue) {
					t.Errorf("%s R=%d: relaxed streams depend on worker count (%d)", bench, relax, workers)
				}
			}
			if baseRep.RanOut || exactRep.RanOut {
				t.Fatalf("%s R=%d: run hit MaxCycles, bound not measurable", bench, relax)
			}
			if baseRep.IssuedTotal != exactRep.IssuedTotal || baseRep.CTAsCompleted != exactRep.CTAsCompleted {
				t.Errorf("%s R=%d: relaxed run lost work: issued %d vs %d, CTAs %d vs %d",
					bench, relax, baseRep.IssuedTotal, exactRep.IssuedTotal,
					baseRep.CTAsCompleted, exactRep.CTAsCompleted)
			}
			diff := float64(baseRep.Cycles-exactRep.Cycles) / float64(exactRep.Cycles)
			if diff < 0 {
				diff = -diff
			}
			if diff > 0.05 {
				t.Errorf("%s R=%d: relaxed cycle count off by %.2f%% (exact %d, relaxed %d)",
					bench, relax, diff*100, exactRep.Cycles, baseRep.Cycles)
			}
		}
	}
}

// TestParallelEngineMatchesSerialQuick is the randomized version: arbitrary
// benchmark, policies, gating parameters, fast-forward setting, worker count,
// batch size and bank count must all produce the serial engine's exact probe
// digests and report.
func TestParallelEngineMatchesSerialQuick(t *testing.T) {
	benchNames := []string{"nw", "hotspot", "mri", "bfs", "kmeans"}
	f := func(benchRaw, schedRaw, gateRaw, idRaw, betRaw, wakeRaw, smRaw, workerRaw uint8, adaptive, noFF bool) bool {
		cfg := config.Small()
		cfg.NumSMs = 2 + int(smRaw%3) // 2..4 SMs
		cfg.Scheduler = []config.SchedulerKind{
			config.SchedLRR, config.SchedTwoLevel, config.SchedGATES,
		}[int(schedRaw)%3]
		cfg.Gating = []config.GatingKind{
			config.GateNone, config.GateConventional,
			config.GateNaiveBlackout, config.GateCoordBlackout,
		}[int(gateRaw)%4]
		cfg.IdleDetect = int(idRaw % 12)
		cfg.BreakEven = 1 + int(betRaw%30)
		cfg.WakeupDelay = int(wakeRaw % 10)
		cfg.AdaptiveIdleDetect = adaptive
		cfg.DisableFastForward = noFF
		cfg.MaxCycles = 20000

		bench := benchNames[int(benchRaw)%len(benchNames)]
		k := kernels.MustBenchmark(bench).Scale(0.08)

		cfg.IntraRunWorkers = 1
		wantRep, wantProbe, wantIssue := runDigests(t, cfg, k)
		cfg.IntraRunWorkers = 2 + int(workerRaw)%int(cfg.NumSMs) // 2..NumSMs+1 (clamped)
		cfg.BatchCycles = []int{0, 1, 5, 64}[int(workerRaw>>2)%4]
		cfg.MemBanks = []int{0, 1, 2, 8}[int(workerRaw>>4)%4]
		gotRep, gotProbe, gotIssue := runDigests(t, cfg, k)
		if !sameReport(wantRep, gotRep) {
			t.Logf("report diverged: %s workers=%d noFF=%v\nserial:   %v\nparallel: %v",
				bench, cfg.IntraRunWorkers, noFF, wantRep, gotRep)
			return false
		}
		if !reflect.DeepEqual(wantProbe, gotProbe) || !reflect.DeepEqual(wantIssue, gotIssue) {
			t.Logf("digests diverged: %s workers=%d noFF=%v", bench, cfg.IntraRunWorkers, noFF)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
