package sim

import (
	"fmt"
	"runtime"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
)

// MeasureSteadyCycle drives a single SM of a freshly built device for warmup
// cycles and then times measure further cycles, reporting the steady-state
// wall-clock and heap-allocation cost per simulated cycle. The warmup lets
// every lazily grown buffer (the retire-event arena, per-warp transaction
// caches) reach its working capacity, so the measured window reflects the hot
// loop alone; allocsPerCycle uses the runtime's monotonic Mallocs counter and
// is therefore unaffected by garbage collections inside the window. Because
// that counter is process-wide, unrelated goroutines (GC workers, timers) can
// leak a handful of mallocs into a window; up to three windows are measured
// and the one with the fewest allocations wins — a genuine per-cycle
// allocation in the hot loop shows up in every window and survives the
// minimum. The bench harness records these numbers in BENCH_sim.json.
func MeasureSteadyCycle(cfg config.Config, k *kernels.Kernel, warmup, measure int64) (nsPerCycle, allocsPerCycle float64, err error) {
	if warmup < 0 || measure <= 0 {
		return 0, 0, fmt.Errorf("sim: invalid steady-cycle window warmup=%d measure=%d", warmup, measure)
	}
	cfg.NumSMs = 1
	cfg.MaxCycles = 0 // stepped manually; the workload must outlast the window
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		return 0, 0, err
	}
	sm := gpu.SMs()[0]
	var cyc int64
	for sm.st.Cycles < warmup && !sm.done() {
		cyc = sm.step(cyc)
	}
	if sm.done() {
		return 0, 0, fmt.Errorf("sim: workload %s drained during warmup; scale it up", k.Name)
	}
	best := false
	for attempt := 0; attempt < 3; attempt++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := sm.st.Cycles
		t0 := time.Now()
		for sm.st.Cycles < start+measure && !sm.done() {
			cyc = sm.step(cyc)
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&m1)
		cycles := sm.st.Cycles - start
		if cycles == 0 {
			return 0, 0, fmt.Errorf("sim: workload %s drained before the measured window", k.Name)
		}
		ns := float64(elapsed.Nanoseconds()) / float64(cycles)
		allocs := float64(m1.Mallocs-m0.Mallocs) / float64(cycles)
		if !best || allocs < allocsPerCycle || (allocs == allocsPerCycle && ns < nsPerCycle) {
			nsPerCycle, allocsPerCycle = ns, allocs
			best = true
		}
		if allocsPerCycle == 0 {
			break
		}
	}
	return nsPerCycle, allocsPerCycle, nil
}
