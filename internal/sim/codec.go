package sim

import (
	"encoding/json"
	"fmt"

	"warpedgates/internal/isa"
	"warpedgates/internal/stats"
)

// The report codec turns a finished *Report into the byte payload the durable
// report store persists, and back. The encoding is versioned JSON: every
// field of Report is exported and either integer-valued or a float64 (which
// encoding/json renders in its shortest exact round-trip form), and the idle
// histograms marshal deterministically (stats.Histogram.MarshalJSON), so the
// same report always encodes to the same bytes and a decoded report is
// observably identical to the original — FingerprintReport equality is the
// pinned contract (see TestReportCodecRoundTrip and the cold-store golden
// corpus test in internal/core).

// reportCodecVersion is bumped whenever Report's encoded shape changes in a
// way old readers cannot handle; DecodeReport rejects mismatches so the store
// treats entries written by a different shape as misses instead of
// misinterpreting them.
const reportCodecVersion = 1

// reportEnvelope wraps the report with its codec version on the wire.
type reportEnvelope struct {
	Version int     `json:"version"`
	Report  *Report `json:"report"`
}

// EncodeReport renders r as the canonical durable-store payload.
func EncodeReport(r *Report) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("sim: cannot encode a nil report")
	}
	data, err := json.Marshal(reportEnvelope{Version: reportCodecVersion, Report: r})
	if err != nil {
		return nil, fmt.Errorf("sim: encoding report for %s: %w", r.Benchmark, err)
	}
	return data, nil
}

// DecodeReport parses a payload produced by EncodeReport. Version mismatches
// and structural damage return an error (callers treat it as a store miss);
// a successful decode always carries non-nil idle histograms, so consumers
// never need to distinguish decoded from freshly simulated reports.
func DecodeReport(data []byte) (*Report, error) {
	var env reportEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("sim: decoding report: %w", err)
	}
	if env.Version != reportCodecVersion {
		return nil, fmt.Errorf("sim: report codec version %d, want %d", env.Version, reportCodecVersion)
	}
	if env.Report == nil {
		return nil, fmt.Errorf("sim: report payload missing")
	}
	r := env.Report
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if r.Domains[c].IdlePeriods == nil {
			r.Domains[c].IdlePeriods = stats.NewHistogram()
		}
	}
	return r, nil
}
