package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"warpedgates/internal/config"
	"warpedgates/internal/kernels"
)

// slowGPU builds a device whose run takes seconds — enough headroom that a
// cancellation landing within one epoch window is unmistakable.
func slowGPU(t *testing.T, workers int) *GPU {
	t.Helper()
	cfg := config.Small()
	cfg.IntraRunWorkers = workers
	gpu, err := NewGPU(cfg, kernels.MustBenchmark("hotspot").Scale(50))
	if err != nil {
		t.Fatal(err)
	}
	return gpu
}

// TestRunCtxBackgroundMatchesRun: the context plumbing is free — a background
// RunCtx produces the identical result to plain Run.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	cfg := config.Small()
	k := kernels.MustBenchmark("bfs").Scale(0.1)
	g1, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	r1 := g1.Run()
	r2, err := g2.RunCtx(context.Background())
	if err != nil {
		t.Fatalf("RunCtx(Background): %v", err)
	}
	if r1.Cycles != r2.Cycles || r1.IssuedTotal != r2.IssuedTotal {
		t.Fatalf("RunCtx drifted from Run: cycles %d vs %d, issued %d vs %d",
			r1.Cycles, r2.Cycles, r1.IssuedTotal, r2.IssuedTotal)
	}
}

// TestRunCtxPreCanceled: a context dead on arrival never steps the device.
func TestRunCtxPreCanceled(t *testing.T) {
	for _, workers := range []int{1, 2} {
		gpu := slowGPU(t, workers)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		rep, err := gpu.RunCtx(ctx)
		if rep != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: RunCtx(dead ctx) = %v, %v; want nil, context.Canceled", workers, rep, err)
		}
	}
}

// TestRunCtxCancelStopsBothEngines: cancel lands within an epoch boundary in
// the serial engine (per device step) and the phase-split parallel engine
// (per barrier round), and the error names the simulation and cycle.
func TestRunCtxCancelStopsBothEngines(t *testing.T) {
	for _, workers := range []int{1, 2} {
		gpu := slowGPU(t, workers)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		t0 := time.Now()
		rep, err := gpu.RunCtx(ctx)
		took := time.Since(t0)
		if rep != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: canceled RunCtx = %v, %v", workers, rep, err)
		}
		if took > 5*time.Second {
			t.Fatalf("workers=%d: cancel took %v to land", workers, took)
		}
		if !strings.Contains(err.Error(), "canceled at cycle") {
			t.Fatalf("workers=%d: cancellation error lacks cycle context: %v", workers, err)
		}
	}
}

// TestRunCtxDeadlineCause: the error surfaces context.Cause, so a watchdog's
// typed cause (not just DeadlineExceeded) survives the trip through the
// engine.
func TestRunCtxDeadlineCause(t *testing.T) {
	gpu := slowGPU(t, 1)
	cause := errors.New("watchdog fired")
	ctx, cancel := context.WithTimeoutCause(context.Background(), 20*time.Millisecond, cause)
	defer cancel()
	rep, err := gpu.RunCtx(ctx)
	if rep != nil || !errors.Is(err, cause) {
		t.Fatalf("RunCtx under timeout-with-cause = %v, %v; want the typed cause", rep, err)
	}
}
