package sim

import (
	"testing"

	"warpedgates/internal/config"
	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
)

// smallCfg returns a fast configuration for integration tests.
func smallCfg() config.Config {
	c := config.Small()
	c.MaxCycles = 200000
	return c
}

// runBench simulates one benchmark at reduced scale under the given
// scheduler/gating combination.
func runBench(t *testing.T, bench string, sched config.SchedulerKind, gate config.GatingKind) *Report {
	t.Helper()
	cfg := smallCfg()
	cfg.Scheduler = sched
	cfg.Gating = gate
	k := kernels.MustBenchmark(bench).Scale(0.25)
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	rep := gpu.Run()
	if rep.RanOut {
		t.Fatalf("%s did not drain in %d cycles", bench, cfg.MaxCycles)
	}
	return rep
}

func TestGPUValidatesInputs(t *testing.T) {
	cfg := smallCfg()
	cfg.NumSMs = 0
	if _, err := NewGPU(cfg, kernels.MustBenchmark("hotspot")); err == nil {
		t.Fatal("invalid config accepted")
	}
	bad := &kernels.Kernel{Name: ""}
	if _, err := NewGPU(smallCfg(), bad); err == nil {
		t.Fatal("invalid kernel accepted")
	}
}

func TestWorkloadDrains(t *testing.T) {
	rep := runBench(t, "hotspot", config.SchedTwoLevel, config.GateNone)
	if rep.IssuedTotal == 0 {
		t.Fatal("no instructions issued")
	}
	k := kernels.MustBenchmark("hotspot").Scale(0.25)
	wantCTAs := k.CTAsPerSM * smallCfg().NumSMs
	if rep.CTAsCompleted != wantCTAs {
		t.Fatalf("completed %d CTAs, want %d", rep.CTAsCompleted, wantCTAs)
	}
	// Total issued instructions must equal the launched work exactly
	// (concurrency clamping changes residency, never total work).
	want := uint64(k.TotalWarpInstructions()) * uint64(k.WarpsPerCTA) * uint64(wantCTAs)
	if rep.IssuedTotal != want {
		t.Fatalf("issued %d, want %d", rep.IssuedTotal, want)
	}
}

func TestDeterminism(t *testing.T) {
	a := runBench(t, "srad", config.SchedGATES, config.GateCoordBlackout)
	b := runBench(t, "srad", config.SchedGATES, config.GateCoordBlackout)
	if a.Cycles != b.Cycles || a.IssuedTotal != b.IssuedTotal {
		t.Fatalf("non-deterministic run: %d/%d vs %d/%d cycles/instrs",
			a.Cycles, a.IssuedTotal, b.Cycles, b.IssuedTotal)
	}
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if a.Domains[c].GatingEvents != b.Domains[c].GatingEvents ||
			a.Domains[c].IdleCycles != b.Domains[c].IdleCycles {
			t.Fatalf("class %s stats differ across identical runs", c)
		}
	}
}

func TestDynamicWorkInvariantAcrossTechniques(t *testing.T) {
	// The paper (§7.3): "The amount of work done ... is constant per
	// workload, irrespective of power gating." Issued instruction counts
	// must match across schedulers and gating policies.
	base := runBench(t, "kmeans", config.SchedTwoLevel, config.GateNone)
	for _, combo := range []struct {
		s config.SchedulerKind
		g config.GatingKind
	}{
		{config.SchedTwoLevel, config.GateConventional},
		{config.SchedGATES, config.GateConventional},
		{config.SchedGATES, config.GateNaiveBlackout},
		{config.SchedGATES, config.GateCoordBlackout},
		{config.SchedLRR, config.GateNone},
	} {
		rep := runBench(t, "kmeans", combo.s, combo.g)
		if rep.IssuedTotal != base.IssuedTotal {
			t.Errorf("%v/%v issued %d, baseline %d", combo.s, combo.g,
				rep.IssuedTotal, base.IssuedTotal)
		}
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			if rep.IssuedByClass[c] != base.IssuedByClass[c] {
				t.Errorf("%v/%v class %s issued %d, baseline %d", combo.s, combo.g,
					c, rep.IssuedByClass[c], base.IssuedByClass[c])
			}
		}
	}
}

func TestGatingDisabledHasNoGatingActivity(t *testing.T) {
	rep := runBench(t, "hotspot", config.SchedTwoLevel, config.GateNone)
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		d := rep.Domains[c]
		if d.GatingEvents != 0 || d.Wakeups != 0 || d.GatedCycles != 0 {
			t.Fatalf("class %s has gating activity with gating disabled", c)
		}
		if d.PoweredCycles != d.CellCycles() {
			t.Fatalf("class %s powered %d of %d cycles", c, d.PoweredCycles, d.CellCycles())
		}
	}
}

func TestCycleAccountingPartitions(t *testing.T) {
	for _, gate := range []config.GatingKind{config.GateConventional, config.GateCoordBlackout} {
		rep := runBench(t, "hotspot", config.SchedGATES, gate)
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			d := rep.Domains[c]
			if d.BusyCycles+d.IdleCycles != d.CellCycles() {
				t.Fatalf("%s busy+idle != total", c)
			}
			if d.PoweredCycles+d.GatedCycles != d.CellCycles() {
				t.Fatalf("%s powered+gated != total", c)
			}
			if d.UncompCycles+d.CompCycles != d.GatedCycles {
				t.Fatalf("%s uncomp+comp != gated", c)
			}
			// Idle-period histogram covers every idle cycle.
			if d.IdlePeriods.Sum() != d.IdleCycles {
				t.Fatalf("%s histogram sum %d != idle cycles %d",
					c, d.IdlePeriods.Sum(), d.IdleCycles)
			}
		}
	}
}

func TestBlackoutNeverWakesEarly(t *testing.T) {
	rep := runBench(t, "cutcp", config.SchedGATES, config.GateNaiveBlackout)
	for _, c := range []isa.Class{isa.INT, isa.FP} {
		if rep.Domains[c].NegativeEvents != 0 {
			t.Fatalf("%s blackout produced uncompensated wakeups", c)
		}
	}
}

func TestConventionalProducesNegativeEvents(t *testing.T) {
	// Conventional gating on a mixed workload wakes units before break-even
	// — the paper's core critique (Fig. 1b overhead component).
	rep := runBench(t, "hotspot", config.SchedTwoLevel, config.GateConventional)
	total := rep.Domains[isa.INT].NegativeEvents + rep.Domains[isa.FP].NegativeEvents
	if total == 0 {
		t.Fatal("conventional gating produced no early wakeups — implausible")
	}
}

func TestGATESIncreasesLongIdleRegions(t *testing.T) {
	// Paper Figure 3: GATES + Blackout moves idle periods into the
	// net-positive region relative to conventional gating.
	conv := runBench(t, "hotspot", config.SchedTwoLevel, config.GateConventional)
	bo := runBench(t, "hotspot", config.SchedGATES, config.GateNaiveBlackout)
	cfg := smallCfg()
	_, _, convPos := mergedIdle(conv).Regions3(cfg.IdleDetect, cfg.BreakEven)
	_, mid, boPos := mergedIdle(bo).Regions3(cfg.IdleDetect, cfg.BreakEven)
	if boPos <= convPos {
		t.Fatalf("blackout positive region %.3f not above conventional %.3f", boPos, convPos)
	}
	if mid != 0 {
		t.Fatalf("naive blackout middle region = %.4f, want exactly 0", mid)
	}
}

func TestBlackoutSavesMoreCompensatedCycles(t *testing.T) {
	conv := runBench(t, "hotspot", config.SchedTwoLevel, config.GateConventional)
	bo := runBench(t, "hotspot", config.SchedGATES, config.GateCoordBlackout)
	if bo.Domains[isa.INT].CompCycles <= conv.Domains[isa.INT].CompCycles {
		t.Fatalf("coordinated blackout compensated cycles (%d) not above conventional (%d)",
			bo.Domains[isa.INT].CompCycles, conv.Domains[isa.INT].CompCycles)
	}
}

func TestMaxCyclesStopsRun(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxCycles = 500
	gpu, err := NewGPU(cfg, kernels.MustBenchmark("hotspot"))
	if err != nil {
		t.Fatal(err)
	}
	rep := gpu.Run()
	if !rep.RanOut || rep.Cycles != 500 {
		t.Fatalf("MaxCycles not respected: ranOut=%v cycles=%d", rep.RanOut, rep.Cycles)
	}
}

func TestInstructionMixSumsToOne(t *testing.T) {
	rep := runBench(t, "srad", config.SchedTwoLevel, config.GateNone)
	mix := rep.InstructionMix()
	sum := 0.0
	for _, v := range mix {
		if v < 0 {
			t.Fatal("negative mix fraction")
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("mix sums to %v", sum)
	}
}

func TestIssueTracerObservesAllIssues(t *testing.T) {
	cfg := smallCfg()
	k := kernels.MustBenchmark("nw").Scale(0.25)
	gpu, err := NewGPU(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	var traced uint64
	gpu.SetIssueTracer(func(smID int, cycle int64, warpIdx int, class isa.Class, cluster int) {
		traced++
	})
	rep := gpu.Run()
	if traced != rep.IssuedTotal {
		t.Fatalf("tracer saw %d issues, report says %d", traced, rep.IssuedTotal)
	}
}

func TestActiveWarpStatsBounded(t *testing.T) {
	rep := runBench(t, "bfs", config.SchedTwoLevel, config.GateNone)
	if rep.ActiveWarpMax > smallCfg().MaxWarpsPerSM {
		t.Fatalf("max active warps %d exceeds SM capacity", rep.ActiveWarpMax)
	}
	if rep.ActiveWarpAvg < 0 || rep.ActiveWarpAvg > float64(rep.ActiveWarpMax) {
		t.Fatalf("avg active warps %v outside [0, max]", rep.ActiveWarpAvg)
	}
}

// mergedIdle merges INT and FP idle histograms of a report.
func mergedIdle(r *Report) *histMerge {
	m := &histMerge{}
	m.merge(r.Domains[isa.INT].IdlePeriods)
	m.merge(r.Domains[isa.FP].IdlePeriods)
	return m
}

// histMerge is a minimal view implementing Regions3 over merged histograms.
type histMerge struct {
	vals   []int
	counts []uint64
	total  uint64
}

func (m *histMerge) merge(h interface {
	Values() []int
	Count(int) uint64
}) {
	for _, v := range h.Values() {
		m.vals = append(m.vals, v)
		m.counts = append(m.counts, h.Count(v))
		m.total += h.Count(v)
	}
}

func (m *histMerge) Regions3(idle, bet int) (r1, r2, r3 float64) {
	if m.total == 0 {
		return 0, 0, 0
	}
	var a, b, c uint64
	for i, v := range m.vals {
		switch {
		case v < idle:
			a += m.counts[i]
		case v < idle+bet:
			b += m.counts[i]
		default:
			c += m.counts[i]
		}
	}
	tot := float64(m.total)
	return float64(a) / tot, float64(b) / tot, float64(c) / tot
}
