package sim

import (
	"fmt"
	"math/bits"

	"warpedgates/internal/isa"
	"warpedgates/internal/kernels"
	"warpedgates/internal/mem"
	"warpedgates/internal/stats"
)

// WarpState is the scheduling state of a warp, implementing the two-level
// scheduler's active/pending split: warps waiting on long-latency (memory)
// events live in the pending set; warps that are ready or waiting only on
// short-latency ALU results live in the active set.
type WarpState uint8

// Warp states.
const (
	WarpIdleSlot   WarpState = iota // slot not occupied by a live warp
	WarpActive                      // in the active warp set (may or may not be ready)
	WarpPendingMem                  // in the pending set, waiting on a memory value
	WarpFinished                    // ran out of instructions
)

// String names the warp state.
func (s WarpState) String() string {
	switch s {
	case WarpIdleSlot:
		return "idle-slot"
	case WarpActive:
		return "active"
	case WarpPendingMem:
		return "pending"
	case WarpFinished:
		return "finished"
	default:
		return fmt.Sprintf("WarpState(%d)", uint8(s))
	}
}

// Warp is one 32-thread SIMT warp resident on an SM.
type Warp struct {
	id      int // slot index in the SM warp table
	ctaSlot int // which resident CTA the warp belongs to
	gen     uint32

	kernel *kernels.Kernel
	pc     int
	iter   int
	state  WarpState

	// pending is the scoreboard: a bit per architectural register that has
	// an in-flight producer. An instruction is ready when none of its source
	// or destination registers are pending.
	pending uint64
	// producer records the class of the in-flight producer per register, so
	// a blocked warp can tell a short-latency ALU wait (stay active) from a
	// long-latency memory wait (move to the pending set).
	producer [isa.NumRegs]isa.Class

	// rng is held by value: warp slots are recycled across CTA launches and
	// a fresh heap generator per reset would be the only steady-state
	// allocation in the launch path.
	rng        stats.SplitMix64
	memCounter uint64 // streaming-address counter for coalesced patterns
	globalSeq  uint64 // globally unique warp sequence number for addressing

	// memLines caches the coalesced transactions of the warp's next memory
	// instruction so a structurally-stalled access retries with the same
	// addresses (hardware replays the same request; regenerating would also
	// waste time and break determinism across retry counts).
	memLines      []mem.Line
	memLinesValid bool

	issued uint64 // dynamic instructions issued by this warp
}

// reset re-initializes the slot for a fresh warp of a new CTA.
func (w *Warp) reset(k *kernels.Kernel, ctaSlot int, globalSeq uint64, seed uint64) {
	w.gen++
	w.kernel = k
	w.ctaSlot = ctaSlot
	w.pc = 0
	w.iter = 0
	w.state = WarpActive
	w.pending = 0
	for i := range w.producer {
		w.producer[i] = 0
	}
	w.rng.Seed(seed)
	w.memCounter = 0
	w.globalSeq = globalSeq
	w.memLines = w.memLines[:0]
	w.memLinesValid = false
	if k.PerWarpSlice {
		// Microkernel mode: warp i executes only Body[i] (see kernels doc).
		w.pc = int(globalSeq) % len(k.Body)
	}
}

// current returns the warp's next instruction, or nil when finished.
func (w *Warp) current() *isa.Instr {
	if w.state == WarpFinished || w.state == WarpIdleSlot || w.kernel == nil {
		return nil
	}
	return &w.kernel.Body[w.pc]
}

// blockedMask returns the pending registers that block the next instruction.
func (w *Warp) blockedMask() uint64 {
	in := w.current()
	if in == nil {
		return 0
	}
	return w.pending & (in.SrcMask() | in.DstMask())
}

// ready reports whether the warp's next instruction has all operands
// available and no WAW hazard.
func (w *Warp) ready() bool {
	return w.state == WarpActive && w.blockedMask() == 0
}

// blockedOnMemory reports whether any register blocking the next instruction
// is produced by an in-flight memory operation — the two-level scheduler's
// criterion for demoting the warp to the pending set.
func (w *Warp) blockedOnMemory() bool {
	m := w.blockedMask()
	for m != 0 {
		r := bits.TrailingZeros64(m)
		if w.producer[r] == isa.LDST {
			return true
		}
		m &= m - 1
	}
	return false
}

// refreshState moves the warp between the active and pending sets based on
// what blocks it; called after issue and after each writeback touching it.
func (w *Warp) refreshState() {
	switch w.state {
	case WarpActive:
		if w.blockedOnMemory() {
			w.state = WarpPendingMem
		}
	case WarpPendingMem:
		if !w.blockedOnMemory() {
			w.state = WarpActive
		}
	}
}

// advance moves the warp past its just-issued instruction, marking the
// destination register pending. It returns true when the warp finished its
// last instruction.
func (w *Warp) advance(in *isa.Instr) bool {
	w.issued++
	if in.Dst != isa.NoReg {
		w.pending |= in.DstMask()
		w.producer[in.Dst] = in.Class()
	}
	if w.kernel.PerWarpSlice {
		w.state = WarpFinished
		return true
	}
	w.pc++
	if w.pc >= len(w.kernel.Body) {
		w.pc = 0
		w.iter++
		if w.iter >= w.kernel.Iterations {
			w.state = WarpFinished
			return true
		}
	}
	return false
}

// clearPending clears the given destination mask after writeback and
// re-evaluates the warp's set membership.
func (w *Warp) clearPending(mask uint64) {
	w.pending &^= mask
	w.refreshState()
}

// live reports whether the slot holds a running warp.
func (w *Warp) live() bool {
	return w.state == WarpActive || w.state == WarpPendingMem
}
