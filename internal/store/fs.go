package store

import (
	"io/fs"
	"os"
)

// FS is the narrow filesystem surface the store runs on. Production uses
// OSFS; tests substitute internal/faultfs to inject write failures, torn
// writes, simulated crashes and read corruption deterministically. Every
// mutating call is a potential crash point, which is exactly what the
// fault-injection sweep enumerates.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// WriteFile creates or replaces path with data in one logical call. The
	// store never relies on it being atomic: durable commits always go
	// through a temp file plus Rename.
	WriteFile(path string, data []byte, perm os.FileMode) error
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath (POSIX rename
	// semantics); it is the store's commit point.
	Rename(oldpath, newpath string) error
	Remove(path string) error
	ReadDir(path string) ([]fs.DirEntry, error)
	Stat(path string) (fs.FileInfo, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// WriteFile implements FS.
func (OSFS) WriteFile(path string, data []byte, perm os.FileMode) error {
	return os.WriteFile(path, data, perm)
}

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// ReadDir implements FS.
func (OSFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

// Stat implements FS.
func (OSFS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }
