// Package store is the durable tier of the experiment runner's report cache:
// a content-addressed on-disk map from a canonical job key to an opaque
// payload (the report codec's bytes). It is built to survive crashes at any
// instant and bit-rot on disk:
//
//   - Commits are atomic: the entry is written to a temp file in the same
//     directory and renamed into place, so a reader observes either the whole
//     entry or none of it — never a prefix.
//   - Every entry carries the SHA-256 of its payload plus its exact length in
//     a header, verified on every read. A torn, truncated or bit-flipped
//     entry is quarantined (renamed aside, preserved for forensics), treated
//     as a miss, and surfaced in the store's health counters.
//   - Transient I/O errors are retried with bounded jittered backoff;
//     permanent classes (ENOSPC, corruption) are not.
//   - Verify walks the whole store, checks every entry, quarantines damage
//     and sweeps crash-orphaned temp files.
//
// The store never serves bytes that fail verification and never deletes a
// committed entry (quarantine moves, it does not remove), which is the pair
// of guarantees the fault-injection suite in faults_test.go pins.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// entryMagic is the first header line of every committed entry; bump the
// version when the on-disk format changes incompatibly.
const entryMagic = "warpedgates-store v1"

// entryExt and tmpExt are the filename suffixes of committed entries and
// in-flight temp files. Only *.rep files are ever treated as data; temp files
// are crash debris by definition and are swept, not quarantined.
const (
	entryExt = ".rep"
	tmpExt   = ".tmp"
)

// Store is a crash-safe content-addressed blob store. All methods are safe
// for concurrent use; Verify should not run concurrently with writers (it
// sweeps temp files and could fail an in-flight commit, which the writer then
// reports as a write error — consistent, but noisy).
type Store struct {
	dir   string
	fs    FS
	retry *retrier

	tmpSeq atomic.Uint64 // distinguishes concurrent temp files for one key

	health struct {
		Hits        atomic.Uint64
		Misses      atomic.Uint64
		Writes      atomic.Uint64
		WriteErrors atomic.Uint64
		ReadErrors  atomic.Uint64
		Quarantined atomic.Uint64
		Retries     atomic.Uint64
	}

	quarMu sync.Mutex // serializes quarantine sequence-number probing
}

// Health is a point-in-time snapshot of the store's counters — the "store
// health report" surfaced by the CLI and asserted by the fault suite.
type Health struct {
	Hits        uint64 // verified reads served
	Misses      uint64 // absent keys (including quarantined-on-read)
	Writes      uint64 // successful commits
	WriteErrors uint64 // failed commits (after retries)
	ReadErrors  uint64 // read infrastructure failures (after retries)
	Quarantined uint64 // corrupt entries moved aside
	Retries     uint64 // transient-error retries that were spent
}

// String renders the health snapshot on one line.
func (h Health) String() string {
	return fmt.Sprintf("hits=%d misses=%d writes=%d writeErrs=%d readErrs=%d quarantined=%d retries=%d",
		h.Hits, h.Misses, h.Writes, h.WriteErrors, h.ReadErrors, h.Quarantined, h.Retries)
}

// Open returns a store rooted at dir on the real filesystem with the default
// retry policy, creating the directory tree as needed.
func Open(dir string) (*Store, error) {
	return OpenFS(OSFS{}, dir, DefaultRetry())
}

// OpenFS is Open with an explicit filesystem and retry policy (tests inject
// internal/faultfs here). Opening is cheap: it only ensures the root exists,
// so a crashed process's store reopens without any recovery pass — committed
// entries are self-verifying and temp debris is ignored by readers.
func OpenFS(fsys FS, dir string, retry RetryPolicy) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	s := &Store{dir: dir, fs: fsys, retry: newRetrier(retry)}
	if err := fsys.MkdirAll(s.objectsRoot(), 0o755); err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Health returns a snapshot of the store's counters.
func (s *Store) Health() Health {
	return Health{
		Hits:        s.health.Hits.Load(),
		Misses:      s.health.Misses.Load(),
		Writes:      s.health.Writes.Load(),
		WriteErrors: s.health.WriteErrors.Load(),
		ReadErrors:  s.health.ReadErrors.Load(),
		Quarantined: s.health.Quarantined.Load(),
		Retries:     s.health.Retries.Load(),
	}
}

func (s *Store) objectsRoot() string    { return filepath.Join(s.dir, "objects") }
func (s *Store) quarantineRoot() string { return filepath.Join(s.dir, "quarantine") }

// hashKey content-addresses a key: SHA-256 hex of its bytes.
func hashKey(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

// HashKey exposes the store's content address for a key: the lowercase
// SHA-256 hex the entry is filed under. The service layer uses it as the
// stable report identifier clients fetch by, so the same job always maps to
// the same URL — across processes, machines and server restarts.
func HashKey(key string) string { return hashKey(key) }

// ValidHash reports whether s is a well-formed content address (64 lowercase
// hex characters). GetByHash rejects anything else, which also keeps
// attacker-controlled URL segments from ever reaching a filepath join.
func ValidHash(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// GetByHash is the read-through accessor for callers that hold a content
// address rather than the raw key — the HTTP report endpoint, whose clients
// fetch by the hash a submit response handed them, possibly from a process
// that never saw the original submission. Verification matches Get (full
// checksum + length, unstable-read double-check, quarantine on stable
// corruption) and additionally re-checks the stored key's hash against the
// requested address, so a colliding or mis-filed entry reads as corrupt
// rather than as someone else's report.
func (s *Store) GetByHash(hash string) (payload []byte, ok bool, err error) {
	if !ValidHash(hash) {
		s.health.Misses.Add(1)
		return nil, false, nil
	}
	return s.getVerified(s.entryPath(hash), func(raw []byte) ([]byte, error) {
		key, payload, derr := decodeEntry(raw, "")
		if derr == nil && hashKey(key) != hash {
			derr = fmt.Errorf("store: entry holds key hashing to %s, want %s", hashKey(key), hash)
		}
		return payload, derr
	})
}

// entryPath fans entries out over 256 subdirectories by hash prefix so no
// single directory grows unboundedly under fleet-scale sweeps.
func (s *Store) entryPath(hash string) string {
	return filepath.Join(s.objectsRoot(), hash[:2], hash+entryExt)
}

// encodeEntry renders the on-disk entry: a human-readable header carrying the
// full key (forensics and hash-collision paranoia), the payload checksum and
// the exact payload length, a blank separator line, then the payload bytes.
func encodeEntry(key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\nkey: %s\nsha256: %s\nlen: %d\n\n",
		entryMagic, key, hex.EncodeToString(sum[:]), len(payload))
	b.Write(payload)
	return b.Bytes()
}

// decodeEntry parses and verifies an entry. wantKey non-empty additionally
// pins the stored key (Get); Verify passes "" and instead checks the key
// hashes to the filename. Any mismatch — magic, structure, length, checksum —
// returns a non-nil error; the caller decides whether that quarantines.
func decodeEntry(raw []byte, wantKey string) (key string, payload []byte, err error) {
	sep := bytes.Index(raw, []byte("\n\n"))
	if sep < 0 {
		return "", nil, fmt.Errorf("store: entry has no header separator")
	}
	header, payload := string(raw[:sep]), raw[sep+2:]
	lines := strings.Split(header, "\n")
	if len(lines) != 4 || lines[0] != entryMagic {
		return "", nil, fmt.Errorf("store: malformed entry header")
	}
	key, ok1 := strings.CutPrefix(lines[1], "key: ")
	sumHex, ok2 := strings.CutPrefix(lines[2], "sha256: ")
	lenStr, ok3 := strings.CutPrefix(lines[3], "len: ")
	if !ok1 || !ok2 || !ok3 {
		return "", nil, fmt.Errorf("store: malformed entry header fields")
	}
	wantLen, err := strconv.Atoi(lenStr)
	if err != nil || wantLen < 0 {
		return "", nil, fmt.Errorf("store: malformed entry length %q", lenStr)
	}
	if len(payload) != wantLen {
		return "", nil, fmt.Errorf("store: entry payload is %d bytes, header says %d (truncated or padded)", len(payload), wantLen)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sumHex {
		return "", nil, fmt.Errorf("store: entry checksum mismatch")
	}
	if wantKey != "" && key != wantKey {
		return "", nil, fmt.Errorf("store: entry holds key %q, want %q", key, wantKey)
	}
	return key, payload, nil
}

// Get returns the payload committed under key. ok is false on a miss — the
// key was never committed, or its entry failed verification and was
// quarantined. err reports read infrastructure failures (after retries);
// corruption is not an error from Get's perspective, because the contract is
// "a verified payload or a miss", never bad bytes.
//
// A checksum mismatch is double-checked with a second read before
// quarantining: if the two reads disagree byte-for-byte the damage was in
// flight, not on disk (controller hiccup, torn page cache), and the entry is
// kept — quarantining a healthy entry on a transient read fault would lose a
// committed report.
func (s *Store) Get(key string) (payload []byte, ok bool, err error) {
	return s.getVerified(s.entryPath(hashKey(key)), func(raw []byte) ([]byte, error) {
		_, payload, derr := decodeEntry(raw, key)
		return payload, derr
	})
}

// getVerified is the shared verified-read loop behind Get and GetByHash:
// decode (and verify) via the supplied function, double-checking a failure
// with a second read so in-flight corruption never quarantines a healthy
// entry, while stable on-disk corruption is quarantined and reads as a miss.
func (s *Store) getVerified(path string, decode func(raw []byte) ([]byte, error)) (payload []byte, ok bool, err error) {
	var first []byte
	for attempt := 0; attempt < 2; attempt++ {
		raw, rerr := s.readFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				s.health.Misses.Add(1)
				return nil, false, nil
			}
			s.health.ReadErrors.Add(1)
			return nil, false, fmt.Errorf("store: reading %s: %w", path, rerr)
		}
		payload, derr := decode(raw)
		if derr == nil {
			if attempt > 0 {
				s.health.Retries.Add(1)
			}
			s.health.Hits.Add(1)
			return payload, true, nil
		}
		if attempt == 0 {
			first = raw
			continue
		}
		if !bytes.Equal(first, raw) {
			// The two reads disagree: in-flight corruption. The entry itself
			// may be fine; count the re-read as a spent retry and give up on
			// this read without quarantining.
			s.health.Retries.Add(1)
			s.health.ReadErrors.Add(1)
			return nil, false, fmt.Errorf("store: unstable reads of %s: %w", path, derr)
		}
		// Stable corruption: the bytes on disk are damaged.
		s.quarantine(path)
		s.health.Misses.Add(1)
		return nil, false, nil
	}
	panic("unreachable")
}

// Put commits payload under key: temp file in the entry's own directory, then
// rename. On any failure the temp file is removed best-effort and the final
// path is untouched, so a failed or crashed Put can never damage a previously
// committed entry for the same key.
func (s *Store) Put(key string, payload []byte) error {
	hash := hashKey(key)
	final := s.entryPath(hash)
	dir := filepath.Dir(final)
	entry := encodeEntry(key, payload)
	tmp := filepath.Join(dir, fmt.Sprintf("%s.%d%s", hash, s.tmpSeq.Add(1), tmpExt))

	err := func() error {
		if err := s.fsOp(func() error { return s.fs.MkdirAll(dir, 0o755) }); err != nil {
			return fmt.Errorf("store: creating %s: %w", dir, err)
		}
		if err := s.fsOp(func() error { return s.fs.WriteFile(tmp, entry, 0o644) }); err != nil {
			return fmt.Errorf("store: writing %s: %w", tmp, err)
		}
		if err := s.fsOp(func() error { return s.fs.Rename(tmp, final) }); err != nil {
			return fmt.Errorf("store: committing %s: %w", final, err)
		}
		return nil
	}()
	if err != nil {
		s.fs.Remove(tmp) // best-effort; Verify sweeps survivors
		s.health.WriteErrors.Add(1)
		return err
	}
	s.health.Writes.Add(1)
	return nil
}

// readFile is ReadFile under the retry policy.
func (s *Store) readFile(path string) ([]byte, error) {
	var raw []byte
	err := s.fsOp(func() error {
		var err error
		raw, err = s.fs.ReadFile(path)
		return err
	})
	return raw, err
}

// fsOp runs one filesystem operation under the retry policy, folding spent
// retries into the health counters.
func (s *Store) fsOp(op func() error) error {
	retries, err := s.retry.do(op)
	if retries > 0 {
		s.health.Retries.Add(retries)
	}
	return err
}

// quarantine moves a damaged entry aside, preserving the bytes for autopsy.
// Sequence-numbered destinations keep repeated damage to one key from
// overwriting earlier evidence. Failures degrade to counting: the entry then
// stays in place and keeps reading as a miss via its failed checksum.
func (s *Store) quarantine(path string) {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	if err := s.fs.MkdirAll(s.quarantineRoot(), 0o755); err != nil {
		s.health.ReadErrors.Add(1)
		return
	}
	base := filepath.Base(path)
	for seq := 0; ; seq++ {
		dst := filepath.Join(s.quarantineRoot(), fmt.Sprintf("%s.%d", base, seq))
		if _, err := s.fs.Stat(dst); err == nil {
			continue
		}
		if err := s.fs.Rename(path, dst); err != nil {
			s.health.ReadErrors.Add(1)
			return
		}
		s.health.Quarantined.Add(1)
		return
	}
}

// VerifyReport is the outcome of a Verify scrub walk.
type VerifyReport struct {
	Scanned     int      // committed entries examined
	OK          int      // entries whose checksum verified
	Quarantined []string // entry filenames moved to quarantine this walk
	TempsSwept  int      // crash-orphaned temp files removed
	Bytes       int64    // total verified payload bytes
}

// String renders the scrub outcome on one line.
func (v VerifyReport) String() string {
	return fmt.Sprintf("scanned=%d ok=%d quarantined=%d tempsSwept=%d payloadBytes=%d",
		v.Scanned, v.OK, len(v.Quarantined), v.TempsSwept, v.Bytes)
}

// Verify walks every committed entry, re-verifies its checksum and the
// key→filename binding, quarantines anything damaged, and sweeps temp files
// left by crashed writers. It returns the scrub report; err covers walk
// infrastructure failures only (damaged entries are reported, not errors).
func (s *Store) Verify() (VerifyReport, error) {
	var rep VerifyReport
	root := s.objectsRoot()
	subdirs, err := s.fs.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return rep, nil
		}
		return rep, fmt.Errorf("store: verify: %w", err)
	}
	// Sort for a deterministic walk (ReadDir is sorted for OSFS, but the FS
	// contract does not promise it).
	sort.Slice(subdirs, func(i, j int) bool { return subdirs[i].Name() < subdirs[j].Name() })
	for _, sub := range subdirs {
		if !sub.IsDir() {
			continue
		}
		dir := filepath.Join(root, sub.Name())
		entries, err := s.fs.ReadDir(dir)
		if err != nil {
			return rep, fmt.Errorf("store: verify %s: %w", dir, err)
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
		for _, ent := range entries {
			name := ent.Name()
			path := filepath.Join(dir, name)
			if strings.HasSuffix(name, tmpExt) {
				if s.fs.Remove(path) == nil {
					rep.TempsSwept++
				}
				continue
			}
			if !strings.HasSuffix(name, entryExt) {
				continue
			}
			rep.Scanned++
			raw, err := s.readFile(path)
			if err != nil {
				// Unreadable is not provably corrupt; count it and leave the
				// entry in place for a later walk.
				s.health.ReadErrors.Add(1)
				continue
			}
			key, payload, derr := decodeEntry(raw, "")
			if derr != nil || hashKey(key)+entryExt != name {
				s.quarantine(path)
				rep.Quarantined = append(rep.Quarantined, name)
				continue
			}
			rep.OK++
			rep.Bytes += int64(len(payload))
		}
	}
	return rep, nil
}
