package store

import (
	"errors"
	"sync"
	"syscall"
	"time"
)

// Transient marks an error as worth retrying: the failure is expected to
// clear on its own (momentary contention, an interrupted syscall), as opposed
// to deterministic failures like a full disk or a checksum mismatch, where a
// retry can only burn time. internal/faultfs's transient faults implement it.
type Transient interface {
	Transient() bool
}

// isTransient classifies err for the retry loop: anything implementing
// Transient (and saying so), plus the classic retryable errnos. ENOSPC is
// deliberately NOT here — a full disk does not clear in a backoff window, and
// retrying it three times before failing a Put only delays the caller.
func isTransient(err error) bool {
	var t Transient
	if errors.As(err, &t) {
		return t.Transient()
	}
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN) || errors.Is(err, syscall.EBUSY)
}

// RetryPolicy bounds the store's retry-with-jittered-backoff loop around
// individual filesystem operations. Only transient errors (see Transient) are
// retried; permanent classes fail on the first attempt.
type RetryPolicy struct {
	// Attempts is the total tries per operation (first try included).
	// Values below 1 behave as 1 (no retry).
	Attempts int
	// BaseDelay is the backoff before the first retry; each subsequent retry
	// doubles it. Zero sleeps not at all, which is what tests want.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep. Zero means no cap.
	MaxDelay time.Duration
	// Seed makes the jitter deterministic per store instance.
	Seed uint64
}

// DefaultRetry is the production policy: 4 attempts, 1ms/2ms/4ms jittered.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{Attempts: 4, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: 0x5eed}
}

// retrier is the mutable retry state of one Store (jitter PRNG stream).
// The stream is shared by every goroutine using the store, so next() locks.
type retrier struct {
	policy RetryPolicy
	mu     sync.Mutex
	rng    uint64
}

func newRetrier(p RetryPolicy) *retrier {
	seed := p.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &retrier{policy: p, rng: seed}
}

// next is a SplitMix64 step: cheap, deterministic, and good enough to
// decorrelate backoff sleeps across concurrent writers.
func (r *retrier) next() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// do runs op up to Attempts times, sleeping a jittered exponential backoff
// between transient failures. It returns the last error and how many retries
// were spent (for the health counters).
func (r *retrier) do(op func() error) (retries uint64, err error) {
	attempts := r.policy.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for i := 0; ; i++ {
		err = op()
		if err == nil || i+1 >= attempts || !isTransient(err) {
			return retries, err
		}
		retries++
		if d := r.backoff(i); d > 0 {
			time.Sleep(d)
		}
	}
}

// backoff computes the i-th retry's sleep: BaseDelay << i, scaled by a jitter
// factor in [0.5, 1.5), capped at MaxDelay.
func (r *retrier) backoff(i int) time.Duration {
	base := r.policy.BaseDelay
	if base <= 0 {
		return 0
	}
	d := base << uint(i)
	if d <= 0 { // shift overflow
		d = r.policy.MaxDelay
	}
	jitter := 0.5 + float64(r.next()>>11)/float64(1<<53) // [0.5, 1.5)
	d = time.Duration(float64(d) * jitter)
	if r.policy.MaxDelay > 0 && d > r.policy.MaxDelay {
		d = r.policy.MaxDelay
	}
	return d
}
