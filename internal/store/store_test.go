package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"warpedgates/internal/store"
)

// openT opens a store over a fresh temp dir, failing the test on error.
func openT(t *testing.T) (*store.Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, dir
}

// entryFile returns the single committed *.rep file under dir, failing the
// test unless exactly one exists.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "objects", "*", "*.rep"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("want exactly 1 committed entry under %s, found %d: %v", dir, len(matches), matches)
	}
	return matches[0]
}

func TestPutGetRoundtrip(t *testing.T) {
	s, _ := openT(t)
	keys := []string{"wg-job v1 bench=hotspot", "wg-job v1 bench=bfs", "short"}
	for i, k := range keys {
		payload := bytes.Repeat([]byte{byte('a' + i)}, 100*(i+1))
		if err := s.Put(k, payload); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
		got, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%q) = ok=%v err=%v, want hit", k, ok, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("Get(%q) returned %d bytes, want %d identical bytes", k, len(got), len(payload))
		}
	}
	h := s.Health()
	if h.Hits != 3 || h.Writes != 3 || h.Misses != 0 || h.Quarantined != 0 {
		t.Fatalf("health after roundtrip: %s", h)
	}
}

func TestGetMissingKey(t *testing.T) {
	s, _ := openT(t)
	got, ok, err := s.Get("never committed")
	if err != nil || ok || got != nil {
		t.Fatalf("Get(missing) = %v, %v, %v; want nil, false, nil", got, ok, err)
	}
	if h := s.Health(); h.Misses != 1 {
		t.Fatalf("miss not counted: %s", h)
	}
}

func TestPutOverwriteSameKey(t *testing.T) {
	s, dir := openT(t)
	if err := s.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("k")
	if err != nil || !ok || string(got) != "v2" {
		t.Fatalf("Get after overwrite = %q, %v, %v; want v2 hit", got, ok, err)
	}
	entryFile(t, dir) // still exactly one committed file for the key
}

// TestReopenSurvives is the basic durability contract: a committed entry is
// served by a brand-new store instance over the same directory.
func TestReopenSurvives(t *testing.T) {
	s, dir := openT(t)
	if err := s.Put("persist", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Get("persist")
	if err != nil || !ok || string(got) != "payload" {
		t.Fatalf("reopened Get = %q, %v, %v; want payload hit", got, ok, err)
	}
}

func TestOpenEmptyDirRejected(t *testing.T) {
	if _, err := store.Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded, want error")
	}
}

// corruptEntry flips one byte in the middle of the committed entry's payload
// region on disk.
func corruptEntry(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptEntryQuarantinedOnRead pins the central read guarantee: a
// bit-flipped entry is never served — it reads as a miss, and the damaged
// bytes move to quarantine (preserved, not deleted).
func TestCorruptEntryQuarantinedOnRead(t *testing.T) {
	s, dir := openT(t)
	if err := s.Put("victim", bytes.Repeat([]byte("x"), 64)); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, dir)
	corruptEntry(t, path)

	got, ok, err := s.Get("victim")
	if err != nil || ok || got != nil {
		t.Fatalf("Get(corrupt) = %v, %v, %v; want clean miss", got, ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still at %s after quarantine", path)
	}
	quar, err := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if err != nil || len(quar) != 1 {
		t.Fatalf("quarantine dir holds %v (err %v), want exactly the moved entry", quar, err)
	}
	h := s.Health()
	if h.Quarantined != 1 || h.Misses != 1 || h.Hits != 0 {
		t.Fatalf("health after quarantine: %s", h)
	}
	// The key now simply misses; nothing further is quarantined.
	if _, ok, err := s.Get("victim"); ok || err != nil {
		t.Fatalf("second Get = ok=%v err=%v, want plain miss", ok, err)
	}
	if h := s.Health(); h.Quarantined != 1 {
		t.Fatalf("second miss quarantined again: %s", h)
	}
}

// TestTruncatedEntryQuarantined covers the torn-tail shape of damage: the
// header's exact length field catches a truncated payload even when the
// truncation point leaves a valid checksum line intact.
func TestTruncatedEntryQuarantined(t *testing.T) {
	s, dir := openT(t)
	if err := s.Put("victim", bytes.Repeat([]byte("y"), 128)); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("victim"); ok || err != nil {
		t.Fatalf("Get(truncated) = ok=%v err=%v, want clean miss", ok, err)
	}
	if h := s.Health(); h.Quarantined != 1 {
		t.Fatalf("truncated entry not quarantined: %s", h)
	}
}

// TestVerifyScrub exercises the offline walk: it re-verifies good entries,
// quarantines a corrupted one, sweeps crash-orphaned temp files, and reports
// all of it.
func TestVerifyScrub(t *testing.T) {
	s, dir := openT(t)
	if err := s.Put("good-1", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good-2", []byte("bbbbbb")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bad", bytes.Repeat([]byte("c"), 32)); err != nil {
		t.Fatal(err)
	}
	// Find and damage exactly the "bad" entry.
	var badPath string
	matches, _ := filepath.Glob(filepath.Join(dir, "objects", "*", "*.rep"))
	for _, m := range matches {
		raw, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(raw, []byte("key: bad\n")) {
			badPath = m
		}
	}
	if badPath == "" {
		t.Fatal("could not locate the 'bad' entry on disk")
	}
	corruptEntry(t, badPath)
	// Plant crash debris: an orphaned temp file next to an entry.
	tmp := filepath.Join(filepath.Dir(badPath), "deadbeef.1.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Scanned != 3 || rep.OK != 2 || len(rep.Quarantined) != 1 || rep.TempsSwept != 1 {
		t.Fatalf("Verify report %s, want scanned=3 ok=2 quarantined=1 tempsSwept=1", rep)
	}
	if got := rep.Quarantined[0]; got != filepath.Base(badPath) {
		t.Fatalf("quarantined %q, want %q", got, filepath.Base(badPath))
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("temp debris survived the sweep")
	}
	// The two good entries still serve.
	for _, k := range []string{"good-1", "good-2"} {
		if _, ok, err := s.Get(k); !ok || err != nil {
			t.Fatalf("Get(%q) after scrub = ok=%v err=%v", k, ok, err)
		}
	}
	// A second walk is clean: quarantine does not re-fire.
	rep2, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Scanned != 2 || rep2.OK != 2 || len(rep2.Quarantined) != 0 {
		t.Fatalf("second Verify %s, want a clean 2-entry walk", rep2)
	}
}

// TestVerifyCatchesMisfiledEntry pins the key→filename binding: an entry whose
// content is internally consistent but lives under the wrong hash name (e.g.
// after a botched manual copy) is quarantined, because serving it would return
// the wrong job's report.
func TestVerifyCatchesMisfiledEntry(t *testing.T) {
	s, dir := openT(t)
	if err := s.Put("original", []byte("data")); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, dir)
	wrong := filepath.Join(filepath.Dir(path), strings.Repeat("ab", 32)+".rep")
	if err := os.Rename(path, wrong); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.OK != 0 {
		t.Fatalf("Verify on misfiled entry: %s, want it quarantined", rep)
	}
}

// TestQuarantinePreservesEvidence: repeated damage to the same key stacks
// sequence-numbered quarantine files instead of overwriting the first.
func TestQuarantinePreservesEvidence(t *testing.T) {
	s, dir := openT(t)
	for i := 0; i < 2; i++ {
		if err := s.Put("k", bytes.Repeat([]byte("z"), 40)); err != nil {
			t.Fatal(err)
		}
		corruptEntry(t, entryFile(t, dir))
		if _, ok, _ := s.Get("k"); ok {
			t.Fatal("corrupt entry served")
		}
	}
	quar, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if len(quar) != 2 {
		t.Fatalf("quarantine holds %d files, want both damage instances preserved: %v", len(quar), quar)
	}
}
