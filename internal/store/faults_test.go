package store_test

import (
	"bytes"
	"errors"
	"fmt"
	"syscall"
	"testing"

	"warpedgates/internal/faultfs"
	"warpedgates/internal/store"
)

// fastRetry is the test retry policy: same attempt budget as production,
// near-zero delays so fault sweeps stay fast.
func fastRetry() store.RetryPolicy {
	p := store.DefaultRetry()
	p.BaseDelay = 0
	p.MaxDelay = 0
	return p
}

// openFault builds a store over a fault-injecting wrapper of a fresh temp
// dir. The returned FS is armed by each test before driving the store.
func openFault(t *testing.T, dir string) (*store.Store, *faultfs.FS) {
	t.Helper()
	ffs := faultfs.New(store.OSFS{})
	s, err := store.OpenFS(ffs, dir, fastRetry())
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	return s, ffs
}

// TestTransientErrorsRetried: operations failing with a store.Transient error
// succeed once the retry budget absorbs the faults, and the spent retries are
// visible in the health counters.
func TestTransientErrorsRetried(t *testing.T) {
	s, ffs := openFault(t, t.TempDir())
	ffs.TransientErrs(2)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put with 2 transient faults: %v (retry budget is %d attempts)", err, store.DefaultRetry().Attempts)
	}
	if h := s.Health(); h.Retries < 2 || h.Writes != 1 || h.WriteErrors != 0 {
		t.Fatalf("health after absorbed transients: %s", h)
	}
	got, ok, err := s.Get("k")
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("Get after retried Put = %q, %v, %v", got, ok, err)
	}
}

// TestTransientBudgetExhausted: more consecutive transient faults than the
// retry budget fail the operation with the underlying transient error.
func TestTransientBudgetExhausted(t *testing.T) {
	s, ffs := openFault(t, t.TempDir())
	ffs.TransientErrs(100)
	err := s.Put("k", []byte("v"))
	if !errors.Is(err, faultfs.ErrTransient) {
		t.Fatalf("Put under unbounded transients = %v, want ErrTransient after budget", err)
	}
	if h := s.Health(); h.WriteErrors != 1 || h.Writes != 0 {
		t.Fatalf("health after exhausted budget: %s", h)
	}
}

// TestENOSPCNotRetried: a full disk is permanent — the store must fail
// immediately without burning its retry budget against it.
func TestENOSPCNotRetried(t *testing.T) {
	s, ffs := openFault(t, t.TempDir())
	// Mutating ops: 1 = Open's MkdirAll, 2 = Put's MkdirAll, 3 = WriteFile.
	ffs.FailAt(3, faultfs.ENOSPC)
	err := s.Put("k", []byte("v"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put on full disk = %v, want ENOSPC", err)
	}
	if h := s.Health(); h.Retries != 0 {
		t.Fatalf("ENOSPC was retried: %s", h)
	}
}

// TestPermanentInjectedFaultNotRetried mirrors ENOSPC for the generic
// permanent injected error.
func TestPermanentInjectedFaultNotRetried(t *testing.T) {
	s, ffs := openFault(t, t.TempDir())
	ffs.FailAt(3, faultfs.Fail)
	if err := s.Put("k", []byte("v")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Put = %v, want ErrInjected", err)
	}
	if h := s.Health(); h.Retries != 0 {
		t.Fatalf("permanent fault was retried: %s", h)
	}
}

// TestTornWriteNeverServed: a write torn mid-flight (power loss during the
// temp-file write) fails the Put, and the half-written bytes are never
// reachable through Get — the rename-commit never happened.
func TestTornWriteNeverServed(t *testing.T) {
	dir := t.TempDir()
	s, ffs := openFault(t, dir)
	ffs.FailAt(3, faultfs.Torn) // op 3 = the temp-file WriteFile
	if err := s.Put("k", bytes.Repeat([]byte("p"), 256)); err == nil {
		t.Fatal("torn Put reported success")
	}
	if _, ok, err := s.Get("k"); ok || err != nil {
		t.Fatalf("Get after torn write = ok=%v err=%v, want clean miss", ok, err)
	}
	// Reopen clean and scrub: any surviving temp debris is swept; nothing is
	// quarantined, because nothing was ever committed.
	clean, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := clean.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 0 || len(rep.Quarantined) != 0 {
		t.Fatalf("Verify after torn write: %s, want empty consistent store", rep)
	}
}

// TestInFlightReadCorruptionRetriedNotQuarantined: a read corrupted in flight
// (the disk is fine) is absorbed by the double-read — the entry is served on
// the second read and must NOT be quarantined, or a transient controller
// hiccup would destroy a healthy committed report.
func TestInFlightReadCorruptionRetriedNotQuarantined(t *testing.T) {
	s, ffs := openFault(t, t.TempDir())
	payload := bytes.Repeat([]byte("q"), 512)
	if err := s.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	ffs.CorruptReadAt(1)
	got, ok, err := s.Get("k")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get with in-flight corruption = ok=%v err=%v, want served on re-read", ok, err)
	}
	h := s.Health()
	if h.Quarantined != 0 {
		t.Fatalf("healthy entry quarantined on a transient read fault: %s", h)
	}
	if h.Retries == 0 {
		t.Fatalf("re-read not accounted as a retry: %s", h)
	}
}

// TestUnstableReadsErrorWithoutQuarantine: when even the re-read disagrees
// with the first read (both corrupt, differently), the store cannot tell disk
// damage from an I/O storm — it must err on the side of keeping the entry.
func TestUnstableReadsErrorWithoutQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, ffs := openFault(t, dir)
	if err := s.Put("k", bytes.Repeat([]byte("r"), 64)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the disk for real, then additionally corrupt the first read in
	// flight: read 1 and read 2 both fail verification with different bytes.
	clean, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep, _ := clean.Verify(); rep.OK != 1 {
		t.Fatal("setup: entry not committed")
	}
	damageOnDisk(t, dir)
	ffs.CorruptReadAt(1)
	_, ok, err := s.Get("k")
	if ok {
		t.Fatal("unverified bytes served")
	}
	if err == nil {
		t.Fatal("unstable reads reported as a clean miss; want an explicit error")
	}
	if h := s.Health(); h.Quarantined != 0 {
		t.Fatalf("entry quarantined on unstable (ambiguous) reads: %s", h)
	}
}

// TestCrashDuringPutLeavesOldEntry: a crash at any point while overwriting a
// key must leave the previously committed value intact and served.
func TestCrashDuringPutLeavesOldEntry(t *testing.T) {
	for step := 1; step <= 3; step++ { // MkdirAll, WriteFile, Rename
		t.Run(fmt.Sprintf("step%d", step), func(t *testing.T) {
			dir := t.TempDir()
			s, ffs := openFault(t, dir)
			if err := s.Put("k", []byte("old")); err != nil {
				t.Fatal(err)
			}
			ffs.FailAt(4+step, faultfs.Crash) // op 1 = Open, ops 2-4 = first Put
			if err := s.Put("k", []byte("new")); err == nil {
				t.Fatal("crashed Put reported success")
			}
			clean, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			got, ok, err := clean.Get("k")
			if err != nil || !ok || string(got) != "old" {
				t.Fatalf("after crash mid-overwrite: Get = %q, %v, %v; want the old committed value", got, ok, err)
			}
			rep, err := clean.Verify()
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Quarantined) != 0 {
				t.Fatalf("crash debris quarantined a committed entry: %s", rep)
			}
		})
	}
}

// TestCrashConsistencySweep is the fail-nth-write sweep of the acceptance
// criteria: a fixed two-commit scenario is re-run with a fault injected at
// every mutating operation in turn, under every fault mode. After each
// "crash" the directory is reopened with a clean filesystem and must satisfy:
//
//   - Get never returns wrong bytes: every key is either a verified hit with
//     its exact payload or a clean miss.
//   - Durability: a Put that reported success is a hit after reopen.
//   - No false positives: Verify quarantines nothing — interrupted writes
//     leave only temp debris, never a damaged committed entry.
func TestCrashConsistencySweep(t *testing.T) {
	payloads := map[string][]byte{
		"job-A": bytes.Repeat([]byte("A"), 300),
		"job-B": bytes.Repeat([]byte("B"), 700),
	}
	scenario := func(s *store.Store) map[string]error {
		return map[string]error{
			"job-A": s.Put("job-A", payloads["job-A"]),
			"job-B": s.Put("job-B", payloads["job-B"]),
		}
	}

	// Clean pass: count the scenario's mutating operations.
	s, ffs := openFault(t, t.TempDir())
	for k, err := range scenario(s) {
		if err != nil {
			t.Fatalf("clean pass Put(%s): %v", k, err)
		}
	}
	steps := ffs.Steps()
	if steps < 4 {
		t.Fatalf("clean scenario took %d mutating ops, expected at least 4", steps)
	}

	for _, mode := range []struct {
		name string
		m    faultfs.Mode
	}{{"fail", faultfs.Fail}, {"torn", faultfs.Torn}, {"crash", faultfs.Crash}, {"enospc", faultfs.ENOSPC}} {
		// Op 1 is Open's MkdirAll, already spent before the fault is armed;
		// the sweep covers every operation the scenario itself performs.
		for n := 2; n <= steps; n++ {
			t.Run(fmt.Sprintf("%s/op%d", mode.name, n), func(t *testing.T) {
				dir := t.TempDir()
				s, ffs := openFault(t, dir)
				ffs.FailAt(n, mode.m)
				putErr := scenario(s)

				clean, err := store.Open(dir)
				if err != nil {
					t.Fatalf("reopen after fault: %v", err)
				}
				for key, want := range payloads {
					got, ok, err := clean.Get(key)
					if err != nil {
						t.Fatalf("Get(%s) after reopen: %v", key, err)
					}
					if ok && !bytes.Equal(got, want) {
						t.Fatalf("Get(%s) served %d wrong bytes — corruption escaped verification", key, len(got))
					}
					if putErr[key] == nil && !ok {
						t.Fatalf("Put(%s) reported success but the entry did not survive reopen", key)
					}
				}
				rep, err := clean.Verify()
				if err != nil {
					t.Fatalf("Verify after reopen: %v", err)
				}
				if len(rep.Quarantined) != 0 {
					t.Fatalf("fault at op %d left a false-positive quarantine: %s", n, rep)
				}
				// A second scrub after the first swept temps must be fully clean.
				if rep2, _ := clean.Verify(); rep2.TempsSwept != 0 || len(rep2.Quarantined) != 0 {
					t.Fatalf("store not consistent after one scrub: %s", rep2)
				}
			})
		}
	}
}

// damageOnDisk flips a byte of the single committed entry using the real
// filesystem, bypassing any fault wrapper.
func damageOnDisk(t *testing.T, dir string) {
	t.Helper()
	corruptEntry(t, entryFile(t, dir))
}
