package stats

import (
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Add(3)
	h.Add(3)
	h.Add(7)
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
	if h.Count(3) != 2 || h.Count(7) != 1 || h.Count(4) != 0 {
		t.Fatal("counts wrong")
	}
	if h.Min() != 3 || h.Max() != 7 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got, want := h.Mean(), (3.0+3+7)/3; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if h.Sum() != 13 {
		t.Fatalf("Sum = %d, want 13", h.Sum())
	}
}

func TestHistogramAddN(t *testing.T) {
	h := NewHistogram()
	h.AddN(5, 10)
	h.AddN(5, 0) // no-op
	if h.Total() != 10 || h.Count(5) != 10 {
		t.Fatalf("AddN failed: total=%d count=%d", h.Total(), h.Count(5))
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	NewHistogram().Add(-1)
}

func TestHistogramFractions(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		h.Add(v)
	}
	if got := h.FractionBelow(5); got != 0.4 {
		t.Fatalf("FractionBelow(5) = %v, want 0.4", got)
	}
	if got := h.FractionBetween(5, 8); got != 0.3 {
		t.Fatalf("FractionBetween(5,8) = %v, want 0.3", got)
	}
	if got := h.FractionAtLeast(8); got != 0.3 {
		t.Fatalf("FractionAtLeast(8) = %v, want 0.3", got)
	}
}

func TestHistogramRegions3SumToOne(t *testing.T) {
	// Property: for any non-empty histogram and any idleDetect/bet, the
	// three regions of the paper's Figure 3 partition sum to 1.
	f := func(values []uint8, idRaw, betRaw uint8) bool {
		if len(values) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range values {
			h.Add(int(v))
		}
		id := int(idRaw % 30)
		bet := 1 + int(betRaw%30)
		r1, r2, r3 := h.Regions3(id, bet)
		sum := r1 + r2 + r3
		return sum > 0.999999 && sum < 1.000001 && r1 >= 0 && r2 >= 0 && r3 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram()
	b := NewHistogram()
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(30)
	a.Merge(b)
	if a.Total() != 4 || a.Count(2) != 2 || a.Max() != 30 {
		t.Fatalf("merge failed: %s", a)
	}
	if b.Total() != 2 {
		t.Fatal("merge mutated the source")
	}
}

func TestHistogramValuesSorted(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{9, 1, 5, 1, 9, 3} {
		h.Add(v)
	}
	vs := h.Values()
	want := []int{1, 3, 5, 9}
	if len(vs) != len(want) {
		t.Fatalf("Values = %v, want %v", vs, want)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("Values = %v, want %v", vs, want)
		}
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram()
	if h.FractionBelow(5) != 0 || h.FractionBetween(1, 2) != 0 || h.FractionAtLeast(0) != 0 {
		t.Fatal("empty histogram fractions should be 0")
	}
}

func TestHistogramAddNOverflowFreeTotals(t *testing.T) {
	// AddN must accumulate huge observation counts directly in uint64 —
	// no int truncation, no loop. A device-scale run can log ~2^40 idle
	// cycles, far beyond what per-observation Add could replay in a test.
	h := NewHistogram()
	const n = uint64(1) << 40
	h.AddN(3, n)
	h.AddN(5, n)
	if got := h.Total(); got != 2*n {
		t.Fatalf("Total = %d, want %d", got, 2*n)
	}
	if want := 3*n + 5*n; h.Sum() != want {
		t.Fatalf("Sum = %d, want %d", h.Sum(), want)
	}
	if h.Count(3) != n || h.Count(5) != n {
		t.Fatalf("Count(3)=%d Count(5)=%d, want %d each", h.Count(3), h.Count(5), n)
	}
	if h.Min() != 3 || h.Max() != 5 {
		t.Fatalf("Min/Max = %d/%d, want 3/5", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 4.0; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestHistogramAddNZeroIsNoOp(t *testing.T) {
	h := NewHistogram()
	h.AddN(7, 0)
	if h.Total() != 0 || h.Count(7) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("AddN(v, 0) mutated the histogram: %s", h)
	}
	// In particular a zero-count AddN must not establish v as min/max.
	h.Add(3)
	h.AddN(1, 0)
	if h.Min() != 3 {
		t.Fatalf("Min = %d after AddN(1, 0), want 3", h.Min())
	}
}

func TestHistogramCountSumConsistency(t *testing.T) {
	// Total and Sum are caches of the per-value counts; they must always
	// agree with a fold over Values/Count.
	h := NewHistogram()
	h.Add(2)
	h.AddN(9, 4)
	h.Add(0)
	h.AddN(2, 7)
	var total, sum uint64
	for _, v := range h.Values() {
		total += h.Count(v)
		sum += uint64(v) * h.Count(v)
	}
	if total != h.Total() {
		t.Fatalf("fold total %d != Total %d", total, h.Total())
	}
	if sum != h.Sum() {
		t.Fatalf("fold sum %d != Sum %d", sum, h.Sum())
	}
}

func TestHistogramEmptyMinMaxMean(t *testing.T) {
	h := NewHistogram()
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram Min/Max/Mean = %d/%d/%v, want zeros", h.Min(), h.Max(), h.Mean())
	}
	// Zero is an observable value and distinct from emptiness: after Add(0)
	// the min is still 0 but Total proves it was observed.
	h.Add(0)
	if h.Min() != 0 || h.Total() != 1 {
		t.Fatalf("Add(0): Min=%d Total=%d, want 0/1", h.Min(), h.Total())
	}
}

func TestHistogramJSONRoundtrip(t *testing.T) {
	h := NewHistogram()
	h.AddN(7, 3)
	h.AddN(1, 5)
	h.AddN(100, 1)
	data, err := h.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	// Deterministic rendering: values ascending, so the bytes are stable for
	// content-addressed storage.
	if want := `{"values":[1,7,100],"counts":[5,3,1]}`; string(data) != want {
		t.Fatalf("MarshalJSON = %s, want %s", data, want)
	}
	got := NewHistogram()
	if err := got.UnmarshalJSON(data); err != nil {
		t.Fatalf("UnmarshalJSON: %v", err)
	}
	if !got.Equal(h) {
		t.Fatalf("round-trip drifted: %s vs %s", got, h)
	}
	if got.Total() != h.Total() || got.Sum() != h.Sum() || got.Min() != h.Min() || got.Max() != h.Max() {
		t.Fatal("aggregates drifted through JSON")
	}
}

func TestHistogramJSONEmpty(t *testing.T) {
	h := NewHistogram()
	data, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got := NewHistogram()
	if err := got.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(h) || got.Total() != 0 {
		t.Fatal("empty histogram round-trip drifted")
	}
}

func TestHistogramJSONRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`{"values":[1,2],"counts":[1]}`,  // length mismatch
		`{"values":[-1],"counts":[1]}`,   // negative value
		`{"values":[1],"counts":[0]}`,    // zero count
		`not json`,
	} {
		h := NewHistogram()
		if err := h.UnmarshalJSON([]byte(bad)); err == nil {
			t.Errorf("UnmarshalJSON(%s) accepted", bad)
		}
	}
}

func TestHistogramEqual(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	if !a.Equal(b) || !a.Equal(a) {
		t.Fatal("empty histograms must be equal")
	}
	a.Add(4)
	if a.Equal(b) {
		t.Fatal("unequal totals reported equal")
	}
	b.Add(4)
	if !a.Equal(b) {
		t.Fatal("identical histograms reported unequal")
	}
	b.Add(5)
	a.Add(6)
	if a.Equal(b) {
		t.Fatal("same totals, different values reported equal")
	}
}
