package stats

import (
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Add(3)
	h.Add(3)
	h.Add(7)
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
	if h.Count(3) != 2 || h.Count(7) != 1 || h.Count(4) != 0 {
		t.Fatal("counts wrong")
	}
	if h.Min() != 3 || h.Max() != 7 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got, want := h.Mean(), (3.0+3+7)/3; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if h.Sum() != 13 {
		t.Fatalf("Sum = %d, want 13", h.Sum())
	}
}

func TestHistogramAddN(t *testing.T) {
	h := NewHistogram()
	h.AddN(5, 10)
	h.AddN(5, 0) // no-op
	if h.Total() != 10 || h.Count(5) != 10 {
		t.Fatalf("AddN failed: total=%d count=%d", h.Total(), h.Count(5))
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	NewHistogram().Add(-1)
}

func TestHistogramFractions(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		h.Add(v)
	}
	if got := h.FractionBelow(5); got != 0.4 {
		t.Fatalf("FractionBelow(5) = %v, want 0.4", got)
	}
	if got := h.FractionBetween(5, 8); got != 0.3 {
		t.Fatalf("FractionBetween(5,8) = %v, want 0.3", got)
	}
	if got := h.FractionAtLeast(8); got != 0.3 {
		t.Fatalf("FractionAtLeast(8) = %v, want 0.3", got)
	}
}

func TestHistogramRegions3SumToOne(t *testing.T) {
	// Property: for any non-empty histogram and any idleDetect/bet, the
	// three regions of the paper's Figure 3 partition sum to 1.
	f := func(values []uint8, idRaw, betRaw uint8) bool {
		if len(values) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range values {
			h.Add(int(v))
		}
		id := int(idRaw % 30)
		bet := 1 + int(betRaw%30)
		r1, r2, r3 := h.Regions3(id, bet)
		sum := r1 + r2 + r3
		return sum > 0.999999 && sum < 1.000001 && r1 >= 0 && r2 >= 0 && r3 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram()
	b := NewHistogram()
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(30)
	a.Merge(b)
	if a.Total() != 4 || a.Count(2) != 2 || a.Max() != 30 {
		t.Fatalf("merge failed: %s", a)
	}
	if b.Total() != 2 {
		t.Fatal("merge mutated the source")
	}
}

func TestHistogramValuesSorted(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{9, 1, 5, 1, 9, 3} {
		h.Add(v)
	}
	vs := h.Values()
	want := []int{1, 3, 5, 9}
	if len(vs) != len(want) {
		t.Fatalf("Values = %v, want %v", vs, want)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("Values = %v, want %v", vs, want)
		}
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram()
	if h.FractionBelow(5) != 0 || h.FractionBetween(1, 2) != 0 || h.FractionAtLeast(0) != 0 {
		t.Fatal("empty histogram fractions should be 0")
	}
}
