package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of strings and renders them with aligned columns.
// The figure-regeneration harness uses it to print the same rows/series the
// paper's figures report.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row. Rows shorter than the header are padded with empty
// cells; longer rows extend the column count.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row where each cell is produced by fmt.Sprint on the
// corresponding value; float64 values are formatted with 4 significant digits.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case float32:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table as plain text with aligned columns.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	pad := func(row []string) {
		for i := 0; i < ncol; i++ {
			var cell string
			if i < len(row) {
				cell = row[i]
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	pad(t.header)
	for _, r := range t.rows {
		pad(r)
	}

	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(row []string) {
		for i := 0; i < ncol; i++ {
			var cell string
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		for i := 0; i < ncol; i++ {
			b.WriteString(strings.Repeat("-", widths[i]) + "  ")
		}
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// WriteCSV emits the table (header, then rows) as RFC-4180 CSV, for plotting
// the regenerated figures with external tools. The title is not included.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.header) > 0 {
		if err := cw.Write(t.header); err != nil {
			return fmt.Errorf("stats: writing CSV header: %w", err)
		}
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("stats: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Title returns the table's title.
func (t *Table) Title() string { return t.title }
