package stats

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSplitMix64DifferentSeedsDiffer(t *testing.T) {
	a := NewSplitMix64(1)
	b := NewSplitMix64(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values out of 100", same)
	}
}

func TestSplitMix64KnownVector(t *testing.T) {
	// Reference value of splitmix64 with seed 0: first output.
	s := NewSplitMix64(0)
	got := s.Uint64()
	const want uint64 = 0xe220a8397b1dcdaf
	if got != want {
		t.Fatalf("splitmix64(0) first output = %#x, want %#x", got, want)
	}
}

func TestIntnRange(t *testing.T) {
	s := NewSplitMix64(7)
	for i := 0; i < 10000; i++ {
		v := s.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) returned %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewSplitMix64(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := NewSplitMix64(9)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 returned %v", v)
		}
	}
}

func TestFloat64RoughlyUniform(t *testing.T) {
	s := NewSplitMix64(11)
	var buckets [10]int
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[int(s.Float64()*10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Fatalf("bucket %d has fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := NewSplitMix64(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) hit fraction %v", frac)
	}
}

func TestBoolExtremes(t *testing.T) {
	s := NewSplitMix64(17)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1.1) {
			t.Fatal("Bool(>1) returned false")
		}
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("hotspot") != HashString("hotspot") {
		t.Fatal("HashString not stable")
	}
	if HashString("hotspot") == HashString("hotspo") {
		t.Fatal("HashString collision on near-identical inputs")
	}
	if HashString("") == HashString("a") {
		t.Fatal("HashString collision on empty input")
	}
}

func TestCombineSeedsOrderMatters(t *testing.T) {
	if CombineSeeds(1, 2) == CombineSeeds(2, 1) {
		t.Fatal("CombineSeeds should be order-sensitive")
	}
}

func TestCombineSeedsProperty(t *testing.T) {
	// Property: combining any (a, b) is deterministic and differs from
	// combining (a, b+1) — no trivial collisions on adjacent seeds.
	f := func(a, b uint64) bool {
		x := CombineSeeds(a, b)
		y := CombineSeeds(a, b)
		z := CombineSeeds(a, b+1)
		return x == y && x != z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
