// Package stats provides the statistical primitives used throughout the
// Warped Gates reproduction: deterministic PRNG streams, integer histograms
// (idle-period distributions), Pearson correlation (paper Figure 6), geometric
// means (paper Figures 8 and 10), and plain-text table rendering for the
// figure-regeneration harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples xs and ys. It returns 0 when fewer than two pairs are given
// or when either series has zero variance (the coefficient is undefined; the
// paper reports near-zero r for benchmarks whose runtime never moves, so 0 is
// the faithful degenerate answer).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(xs), len(ys)))
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Geomean returns the geometric mean of vs. Non-positive entries are clamped
// to a tiny positive value so that a single degenerate sample cannot zero the
// whole mean; empty input returns 0.
func Geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		if v <= 0 {
			v = 1e-12
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Mean returns the arithmetic mean of vs, or 0 for empty input.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// MinMax returns the minimum and maximum of vs. It panics on empty input.
func MinMax(vs []float64) (lo, hi float64) {
	if len(vs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Median returns the median of vs (average of middle two for even length),
// or 0 for empty input. The input slice is not modified.
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	cp := append([]float64(nil), vs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// Ratio divides a by b, returning 0 when b is 0. Convenient for normalizing
// counters that may legitimately be zero (e.g. wakeups in a benchmark that
// never gates).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
