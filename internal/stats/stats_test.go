package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect positive correlation: r = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect negative correlation: r = %v", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("zero-variance x should give 0, got %v", r)
	}
	if r := Pearson([]float64{5}, []float64{6}); r != 0 {
		t.Fatalf("single point should give 0, got %v", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Fatalf("empty should give 0, got %v", r)
	}
}

func TestPearsonMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestPearsonBounded(t *testing.T) {
	// Property: |r| <= 1 for any paired samples.
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs, ys := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r := Pearson(xs, ys)
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("Geomean(nil) = %v, want 0", g)
	}
	if g := Geomean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-12 {
		t.Fatalf("Geomean(1,1,1) = %v", g)
	}
	// Non-positive entries are clamped, not fatal.
	if g := Geomean([]float64{0, 4}); g <= 0 {
		t.Fatalf("Geomean with zero entry = %v, want positive", g)
	}
}

func TestMeanAndMedian(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("Median odd = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("Median even = %v", m)
	}
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(empty) did not panic")
		}
	}()
	MinMax(nil)
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("Ratio(6,3) != 2")
	}
	if Ratio(6, 0) != 0 {
		t.Fatal("Ratio by zero should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta", 2.5)
	out := tab.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "beta", "2.5000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("xxxxxxx", "y")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header+separator+row, got %d lines:\n%s", len(lines), out)
	}
	// The 'b' header must start at the same column as 'y'.
	if strings.Index(lines[0], "b") != strings.Index(lines[2], "y") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := NewTable("title ignored", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("with,comma", "2")
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := "name,value\nalpha,1\n\"with,comma\",2\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
	if tab.Title() != "title ignored" {
		t.Fatalf("Title = %q", tab.Title())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("t", "a")
	tab.AddRow("1", "2", "3") // longer than header
	tab.AddRow()              // empty row
	out := tab.String()
	if !strings.Contains(out, "3") {
		t.Fatalf("extra cells dropped:\n%s", out)
	}
}
