package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Histogram counts integer-valued observations (e.g. idle-period lengths in
// cycles). It is the backing store for the paper's Figure 3 idle-period
// distributions.
type Histogram struct {
	counts map[int]uint64
	total  uint64
	sum    uint64
	max    int
	min    int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]uint64), min: -1}
}

// Add records one observation of value v. Negative values are rejected because
// every quantity we histogram (cycle counts) is non-negative.
func (h *Histogram) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative histogram value %d", v))
	}
	h.counts[v]++
	h.total++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
	if h.min < 0 || v < h.min {
		h.min = v
	}
}

// AddN records n observations of value v.
func (h *Histogram) AddN(v int, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		panic(fmt.Sprintf("stats: negative histogram value %d", v))
	}
	h.counts[v] += n
	h.total += n
	h.sum += uint64(v) * n
	if v > h.max {
		h.max = v
	}
	if h.min < 0 || v < h.min {
		h.min = v
	}
}

// Count returns the number of observations equal to v.
func (h *Histogram) Count(v int) uint64 { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observed value, or 0 if empty.
func (h *Histogram) Max() int {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest observed value, or 0 if empty.
func (h *Histogram) Min() int {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Mean returns the arithmetic mean of observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// FractionBelow returns the fraction of observations strictly less than v.
func (h *Histogram) FractionBelow(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var n uint64
	for val, c := range h.counts {
		if val < v {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// FractionBetween returns the fraction of observations in [lo, hi).
func (h *Histogram) FractionBetween(lo, hi int) float64 {
	if h.total == 0 {
		return 0
	}
	var n uint64
	for val, c := range h.counts {
		if val >= lo && val < hi {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// FractionAtLeast returns the fraction of observations >= v.
func (h *Histogram) FractionAtLeast(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var n uint64
	for val, c := range h.counts {
		if val >= v {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// Merge adds all observations from other into h.
func (h *Histogram) Merge(other *Histogram) {
	for v, c := range other.counts {
		h.AddN(v, c)
	}
}

// Values returns the distinct observed values in ascending order.
func (h *Histogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Regions3 partitions the distribution into the paper's three idle-period
// regions for a given idle-detect window and break-even time:
//
//	region 1: length <  idleDetect          (wasted — too short to gate)
//	region 2: idleDetect <= length < idleDetect+bet  (gated but uncompensated)
//	region 3: length >= idleDetect+bet      (net energy savings)
//
// The returned fractions sum to 1 for a non-empty histogram.
func (h *Histogram) Regions3(idleDetect, bet int) (r1, r2, r3 float64) {
	return h.FractionBelow(idleDetect),
		h.FractionBetween(idleDetect, idleDetect+bet),
		h.FractionAtLeast(idleDetect + bet)
}

// histogramJSON is the wire form of a Histogram: parallel value/count slices
// in ascending value order. The derived aggregates (total, sum, min, max) are
// rebuilt on decode, so the encoding cannot drift from them, and the sorted
// order makes the bytes deterministic — a requirement of the durable report
// store, whose entries are checksummed.
type histogramJSON struct {
	Values []int    `json:"values"`
	Counts []uint64 `json:"counts"`
}

// MarshalJSON encodes the histogram deterministically (values ascending).
func (h *Histogram) MarshalJSON() ([]byte, error) {
	enc := histogramJSON{Values: h.Values()}
	enc.Counts = make([]uint64, len(enc.Values))
	for i, v := range enc.Values {
		enc.Counts[i] = h.counts[v]
	}
	return json.Marshal(enc)
}

// UnmarshalJSON decodes a histogram produced by MarshalJSON, replacing h's
// contents and recomputing every derived aggregate.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var dec histogramJSON
	if err := json.Unmarshal(data, &dec); err != nil {
		return err
	}
	if len(dec.Values) != len(dec.Counts) {
		return fmt.Errorf("stats: histogram decode: %d values but %d counts", len(dec.Values), len(dec.Counts))
	}
	*h = Histogram{counts: make(map[int]uint64, len(dec.Values)), min: -1}
	for i, v := range dec.Values {
		if v < 0 {
			return fmt.Errorf("stats: histogram decode: negative value %d", v)
		}
		if dec.Counts[i] == 0 {
			return fmt.Errorf("stats: histogram decode: zero count for value %d", v)
		}
		h.AddN(v, dec.Counts[i])
	}
	return nil
}

// Equal reports whether two histograms hold identical observations.
func (h *Histogram) Equal(other *Histogram) bool {
	if h.total != other.total || h.sum != other.sum || len(h.counts) != len(other.counts) {
		return false
	}
	for v, c := range h.counts {
		if other.counts[v] != c {
			return false
		}
	}
	return true
}

// String renders a compact textual summary of the histogram.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.2f min=%d max=%d", h.total, h.Mean(), h.Min(), h.Max())
	return b.String()
}
