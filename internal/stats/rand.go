package stats

// SplitMix64 is a tiny, fast, deterministic pseudo-random number generator.
// Every stochastic choice in the simulator derives from a SplitMix64 stream
// seeded from stable identifiers (benchmark name, SM id, warp id), which makes
// whole-GPU simulations bit-reproducible across runs and platforms.
//
// The algorithm is the public-domain splitmix64 generator by Sebastiano Vigna.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Seed rewinds the generator to the stream defined by seed, equivalent to
// replacing it with NewSplitMix64(seed). It exists so owners can embed the
// generator by value and reseed in place instead of allocating.
func (s *SplitMix64) Seed(seed uint64) { s.state = seed }

// Uint64 returns the next 64-bit value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *SplitMix64) Bool(p float64) bool {
	return s.Float64() < p
}

// HashString folds a string into a 64-bit seed using FNV-1a. It is used to
// derive per-benchmark seeds from benchmark names.
func HashString(str string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(str); i++ {
		h ^= uint64(str[i])
		h *= prime
	}
	return h
}

// CombineSeeds mixes several seed components into one stream seed.
func CombineSeeds(parts ...uint64) uint64 {
	var h uint64 = 0x51f2cd7aa7a0f1e5
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	return h
}
